(* Coverage for API surface not exercised elsewhere: pretty-printers,
   small accessors, and edge cases across the libraries. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq

let vs = Varset.of_list
let q = Rat.of_int

let test_bigint_misc () =
  let a = Bigint.of_int 7 and b = Bigint.of_int (-3) in
  Alcotest.(check string) "min" "-3" (Bigint.to_string (Bigint.min a b));
  Alcotest.(check string) "max" "7" (Bigint.to_string (Bigint.max a b));
  Alcotest.(check string) "succ" "8" (Bigint.to_string (Bigint.succ a));
  Alcotest.(check string) "pred" "-4" (Bigint.to_string (Bigint.pred b));
  Alcotest.(check bool) "hash distinguishes" true
    (Bigint.hash a <> Bigint.hash b);
  Alcotest.(check (float 1e-9)) "to_float" 7.0 (Bigint.to_float a);
  (* to_float on a large number. *)
  let big = Bigint.pow (Bigint.of_int 2) 100 in
  Alcotest.(check bool) "to_float large" true
    (Float.abs (Bigint.to_float big -. Float.pow 2.0 100.0) < 1e85);
  Alcotest.(check string) "of_string plus" "42" (Bigint.to_string (Bigint.of_string "+42"))

let test_rat_misc () =
  Alcotest.(check bool) "min" true
    (Rat.equal (Rat.min (Rat.of_ints 1 3) Rat.half) (Rat.of_ints 1 3));
  Alcotest.(check bool) "max" true
    (Rat.equal (Rat.max (Rat.of_ints 1 3) Rat.half) Rat.half);
  Alcotest.(check bool) "hash distinguishes" true
    (Rat.hash Rat.half <> Rat.hash Rat.one);
  let open Rat.Infix in
  Alcotest.(check bool) "infix" true
    (Rat.one +/ Rat.one =/ Rat.two
     && Rat.one -/ Rat.half =/ Rat.half
     && Rat.half */ Rat.two =/ Rat.one
     && Rat.one // Rat.two =/ Rat.half
     && Rat.half </ Rat.one && Rat.half <=/ Rat.half
     && Rat.one >/ Rat.half && Rat.one >=/ Rat.one);
  Alcotest.check_raises "of_string garbage"
    (Invalid_argument "Bigint.of_string: invalid character") (fun () ->
      ignore (Rat.of_string "x/y"))

let test_logint_misc () =
  let t = Logint.add (Logint.log_int 6) (Logint.scale Rat.minus_one (Logint.log_int 2)) in
  (* log 6 - log 2 = log 3: terms list normalizes to {2:? ...}; value-level
     equality with log 3 holds even though term lists differ. *)
  Alcotest.(check bool) "value equality across bases" true
    (Logint.equal t (Logint.log_int 3));
  Alcotest.(check int) "terms nonempty" 2 (List.length (Logint.terms t));
  Alcotest.(check string) "pp zero" "0" (Format.asprintf "%a" Logint.pp Logint.zero);
  Alcotest.(check bool) "pp nonzero mentions log" true
    (String.length (Format.asprintf "%a" Logint.pp t) > 3)

let test_varset_pp () =
  Alcotest.(check string) "default names" "{X1,X3}"
    (Format.asprintf "%a" (Varset.pp ()) (vs [ 0; 2 ]));
  Alcotest.(check string) "custom names" "{a,c}"
    (Format.asprintf "%a" (Varset.pp ~names:(fun i -> String.make 1 (Char.chr (97 + i))) ())
       (vs [ 0; 2 ]));
  Alcotest.check_raises "full out of range" (Invalid_argument "Varset.full: out of range")
    (fun () -> ignore (Varset.full 100))

let test_printers () =
  let e =
    Linexpr.sum
      [ Linexpr.term (vs [ 0; 1 ]); Linexpr.term ~coeff:(q (-2)) (vs [ 1 ]) ]
  in
  Alcotest.(check string) "linexpr pp" "-2*h(X2) + h(X1X2)"
    (Format.asprintf "%a" (Linexpr.pp ()) e);
  Alcotest.(check string) "linexpr pp zero" "0"
    (Format.asprintf "%a" (Linexpr.pp ()) Linexpr.zero);
  let cx = Cexpr.add (Cexpr.entropy (vs [ 0 ])) (Cexpr.part (vs [ 1 ]) (vs [ 0 ])) in
  Alcotest.(check string) "cexpr pp" "h(X1) + h(X2|X1)"
    (Format.asprintf "%a" (Cexpr.pp ()) cx);
  let m = Maxii.conditional ~n:2 ~q:Rat.one [ cx ] in
  Alcotest.(check string) "maxii pp" "h(X1X2) <= max(h(X1) + h(X2|X1))"
    (Format.asprintf "%a" (Maxii.pp ()) m);
  (* Relation / Value / Database printers don't crash and mention content. *)
  let r = Relation.of_int_rows ~arity:2 [ [ 1; 2 ] ] in
  Alcotest.(check string) "relation pp" "{(1,2)}" (Format.asprintf "%a" Relation.pp r);
  Alcotest.(check string) "value pp" "X:(1,<2,3>)"
    (Value.to_string (Value.Tag ("X", Value.Pair (Value.Int 1, Value.Tuple [ Value.Int 2; Value.Int 3 ]))));
  let db = Database.add_relation "R" r Database.empty in
  Alcotest.(check int) "total rows" 1 (Database.total_rows db);
  Alcotest.(check bool) "db pp mentions R" true
    (String.length (Format.asprintf "%a" Database.pp db) > 3)

let test_polymatroid_misc () =
  let h = Polymatroid.uniform_step_max [| q 1; q 3; q 2 |] in
  Alcotest.(check bool) "max-construction value" true
    (Rat.equal (Polymatroid.value h (vs [ 0; 2 ])) (q 2));
  Alcotest.(check bool) "max-construction normal (Lemma C.2)" true
    (Polymatroid.is_normal h);
  Alcotest.(check bool) "is_entropic_known on normal" true
    (Polymatroid.is_entropic_known h);
  Alcotest.(check bool) "is_entropic_known is incomplete on parity" false
    (Polymatroid.is_entropic_known Polymatroid.parity);
  Alcotest.(check bool) "dominates reflexive" true (Polymatroid.dominates h h);
  Alcotest.(check bool) "scale" true
    (Rat.equal (Polymatroid.value (Polymatroid.scale Rat.two h) (vs [ 1 ])) (q 6));
  Alcotest.check_raises "add arity mismatch"
    (Invalid_argument "Polymatroid.add: arity mismatch") (fun () ->
      ignore (Polymatroid.add (Polymatroid.zero 2) Polymatroid.parity))

let test_elemental_count () =
  (* n + C(n,2)·2^(n−2) elemental inequalities. *)
  let count n = List.length (Cones.elemental ~n) in
  Alcotest.(check int) "n=2" 3 (count 2);
  Alcotest.(check int) "n=3" 9 (count 3);
  Alcotest.(check int) "n=4" 28 (count 4);
  Alcotest.(check int) "n=5" 85 (count 5)

let test_query_misc () =
  let a = Parser.parse "R(x,y)" and b = Parser.parse "S(u,v,w)" in
  let u = Query.disjoint_union a b in
  Alcotest.(check int) "disjoint union vars" 5 (Query.nvars u);
  Alcotest.(check int) "disjoint union atoms" 2 (List.length (Query.atoms u));
  Alcotest.check_raises "power 0" (Invalid_argument "Query.power") (fun () ->
      ignore (Query.power 0 a));
  Alcotest.(check string) "query to_string" "Q() :- R(x,y)" (Query.to_string a)

let test_graph_misc () =
  let g = Graph.make 5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check int) "components" 2 (List.length (Graph.connected_components g));
  Alcotest.(check bool) "neighbours" true (Varset.equal (Graph.neighbours g 1) (vs [ 0; 2 ]));
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2); (3, 4) ] (Graph.edges g);
  Alcotest.check_raises "bad vertex" (Invalid_argument "Graph.make: vertex out of range")
    (fun () -> ignore (Graph.make 2 [ (0, 5) ]))

let test_treedec_misc () =
  let t = Treedec.make ~bags:[| vs [ 0; 1; 2 ]; vs [ 2; 3 ] |] ~edges:[ (0, 1) ] in
  Alcotest.(check int) "width" 2 (Treedec.width t);
  Alcotest.(check bool) "pp mentions bags" true
    (String.length (Format.asprintf "%a" Treedec.pp t) > 5)

let test_hom_multi_head () =
  let qq = Parser.parse "Q(x,y) :- R(x,y), R(y,x)" in
  let db = Database.of_int_rows [ ("R", [ [ 0; 1 ]; [ 1; 0 ]; [ 0; 2 ] ]) ] in
  let ans = Hom.answers qq db in
  Alcotest.(check int) "two symmetric answers" 2 (List.length ans);
  List.iter (fun (_, c) -> Alcotest.(check int) "multiplicity 1" 1 c) ans

let test_bagdb_support () =
  let db = Bagdb.of_int_rows [ ("R", [ ([ 0; 1 ], 5) ]) ] in
  let s = Bagdb.support db in
  Alcotest.(check int) "support drops multiplicity" 1 (Database.total_rows s)

let test_dist_misc () =
  let d = Dist.uniform (Relation.of_int_rows ~arity:1 [ [ 0 ]; [ 1 ]; [ 2 ] ]) in
  Alcotest.(check bool) "total is 1" true (Rat.equal (Dist.total d) Rat.one);
  Alcotest.(check int) "support" 3 (Relation.cardinal (Dist.support d));
  Alcotest.(check bool) "pp" true (String.length (Format.asprintf "%a" Dist.pp d) > 3);
  Alcotest.check_raises "empty uniform" (Invalid_argument "Dist.uniform: empty relation")
    (fun () -> ignore (Dist.uniform (Relation.of_list ~arity:1 [])))

let test_group_misc () =
  let g, subs = Group.klein_parity in
  Alcotest.(check int) "degree" 4 (Group.degree g);
  Alcotest.(check int) "elements" 4 (List.length (Group.elements g));
  Alcotest.(check bool) "mem identity" true (Group.mem g (Group.Perm.identity 4));
  List.iter
    (fun s ->
      Alcotest.(check bool) "subgroup of g" true (Group.is_subgroup_of ~sub:s g))
    subs;
  Alcotest.(check bool) "entropy of empty set" true
    (Logint.equal (Group.entropy g subs Varset.empty) Logint.zero)

let suite =
  [ ("bigint misc", `Quick, test_bigint_misc);
    ("rat misc", `Quick, test_rat_misc);
    ("logint misc", `Quick, test_logint_misc);
    ("varset pp", `Quick, test_varset_pp);
    ("printers", `Quick, test_printers);
    ("polymatroid misc", `Quick, test_polymatroid_misc);
    ("elemental count", `Quick, test_elemental_count);
    ("query misc", `Quick, test_query_misc);
    ("graph misc", `Quick, test_graph_misc);
    ("treedec misc", `Quick, test_treedec_misc);
    ("hom multi head", `Quick, test_hom_multi_head);
    ("bagdb support", `Quick, test_bagdb_support);
    ("dist misc", `Quick, test_dist_misc);
    ("group misc", `Quick, test_group_misc) ]
