test/test_entropy.ml: Alcotest Array Bagcqc_entropy Bagcqc_num Cexpr Cones Format Hashtbl Linexpr List Maxii Normalize Polymatroid QCheck QCheck_alcotest Rat Result String Varset
