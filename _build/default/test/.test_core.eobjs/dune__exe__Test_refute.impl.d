test/test_refute.ml: Alcotest Array Bagcqc_entropy Bagcqc_num Bagcqc_relation Cexpr Cones Float Format Linexpr List Logint Maxii QCheck QCheck_alcotest Rat Refute Relation Result String Varset
