test/test_relation.ml: Alcotest Array Bagcqc_entropy Bagcqc_num Bagcqc_relation Format List Logint Option Polymatroid Printf QCheck QCheck_alcotest Rat Relation String Value Varset
