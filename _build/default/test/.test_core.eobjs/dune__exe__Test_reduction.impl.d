test/test_reduction.ml: Alcotest Bagcqc_core Bagcqc_cq Bagcqc_entropy Bagcqc_num Cones Containment Format Hom Linexpr List Maxii Parser QCheck QCheck_alcotest Query Rat Reduction Treedec Varset
