test/test_lp.ml: Alcotest Array Bagcqc_lp Bagcqc_num List Printf QCheck QCheck_alcotest Rat Simplex String
