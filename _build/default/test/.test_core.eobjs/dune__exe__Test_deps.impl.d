test/test_deps.ml: Alcotest Bagcqc_cq Bagcqc_entropy Bagcqc_relation Dependencies Format Fun Linexpr List Option Parser Printf QCheck QCheck_alcotest Query Relation Treedec Varset
