test/test_bagdb.ml: Alcotest Bagcqc_core Bagcqc_cq Bagcqc_relation Bagdb Containment Hom List Parser Printf QCheck QCheck_alcotest Query String Value
