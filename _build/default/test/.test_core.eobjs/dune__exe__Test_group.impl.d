test/test_group.ml: Alcotest Bagcqc_entropy Bagcqc_num Bagcqc_relation Format Group List Logint QCheck QCheck_alcotest Rat Relation String Varset
