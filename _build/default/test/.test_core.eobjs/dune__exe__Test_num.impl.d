test/test_num.ml: Alcotest Bagcqc_num Bigint Float List Logint QCheck QCheck_alcotest Rat
