(* Tests for exact rational distributions and the Appendix D transport
   construction: the proof of Theorem 4.2 executed and machine-checked
   (Eqs. 48-49 verified with exact log arithmetic). *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq
open Bagcqc_core

let vs = Varset.of_list

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)
(* ------------------------------------------------------------------ *)

let test_dist_basic () =
  let d =
    Dist.of_weights ~arity:2
      [ ([| Value.Int 0; Value.Int 0 |], Rat.of_int 1);
        ([| Value.Int 0; Value.Int 1 |], Rat.of_int 2);
        ([| Value.Int 1; Value.Int 0 |], Rat.of_int 1) ]
  in
  Alcotest.(check bool) "is distribution" true (Dist.is_distribution d);
  Alcotest.(check bool) "prob normalized" true
    (Rat.equal (Dist.prob d [| Value.Int 0; Value.Int 1 |]) Rat.half);
  (* Marginal on column 0: P(0) = 3/4, P(1) = 1/4. *)
  let m = Dist.marginal d (vs [ 0 ]) in
  Alcotest.(check bool) "marginal" true
    (Rat.equal (Dist.prob m [| Value.Int 0 |]) (Rat.of_ints 3 4));
  (* Entropy of the marginal: H(3/4,1/4) = 2 - (3/4) log 3. *)
  let h = Dist.entropy d (vs [ 0 ]) in
  let expected =
    Logint.sub
      (Logint.scale Rat.two (Logint.log_int 2))
      (Logint.scale (Rat.of_ints 3 4) (Logint.log_int 3))
  in
  Alcotest.(check bool) "exact marginal entropy" true (Logint.equal h expected);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dist.of_weights: negative weight") (fun () ->
      ignore (Dist.of_weights ~arity:1 [ ([| Value.Int 0 |], Rat.minus_one) ]))

let test_dist_uniform_matches_relation () =
  let p =
    Relation.of_int_rows ~arity:3
      [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]
  in
  let d = Dist.uniform p in
  Varset.iter_subsets (Varset.full 3) (fun x ->
      Alcotest.(check bool) "entropy matches relation entropy" true
        (Logint.equal (Dist.entropy d x) (Relation.entropy_logint p x)))

let test_dist_pullback () =
  (* Example 4.1: pullback along Y1↦X1, Y2,Y3↦X2. *)
  let d =
    Dist.uniform
      (Relation.of_int_rows ~arity:3 [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 5; 1; 6 ] ])
  in
  let pb = Dist.pullback d [| 0; 1; 1 |] in
  Alcotest.(check int) "arity" 3 (Dist.arity pb);
  (* (0,1,1) has probability p(X1X2 = 01) = 1/3. *)
  Alcotest.(check bool) "pullback prob" true
    (Rat.equal
       (Dist.prob pb [| Value.Int 0; Value.Int 1; Value.Int 1 |])
       (Rat.of_ints 1 3));
  (* Pullback entropies: h'(Z) = h(φ(Z)). *)
  Alcotest.(check bool) "h'(Y2Y3) = h(X2)" true
    (Logint.equal (Dist.entropy pb (vs [ 1; 2 ])) (Dist.entropy d (vs [ 1 ])))

(* ------------------------------------------------------------------ *)
(* Transport: Appendix D on Example 4.3                                *)
(* ------------------------------------------------------------------ *)

let triangle = Parser.parse "R(x,y), R(y,z), R(z,x)"
let vee = Parser.parse "R(y1,y2), R(y1,y3)"

let hom_relation q db =
  Relation.of_list ~arity:(Query.nvars q) (Hom.enumerate q db)

let check_appendix_d db =
  (* Follows the proof of Theorem 4.2 step by step on the vee instance. *)
  let p1_rel = hom_relation triangle db in
  if Relation.is_empty p1_rel then true
  else begin
    let p1 = Dist.uniform p1_rel in
    let h1 = Dist.entropy_all p1 in
    let t = Option.get (Treedec.join_tree vee) in
    let homs = Hom.enumerate_between vee triangle in
    let phi, value = Option.get (Transport.best_side t ~homs h1) in
    (* Example 3.8's Max-II guarantees the best side dominates h1(V). *)
    let dominates =
      Logint.compare value (h1 (Varset.full 3)) >= 0
    in
    let p' = Transport.stitched t ~phi p1 ~nvars2:(Query.nvars vee) in
    (* (a) p' is a genuine distribution. *)
    let a = Dist.is_distribution p' in
    (* (b) its support consists of homomorphisms of Q2 (Lemmas D.1/D.2). *)
    let hom2 = hom_relation vee db in
    let b =
      List.for_all
        (fun row -> Relation.mem row hom2)
        (Relation.to_list (Dist.support p'))
    in
    (* (c) Eq. 48: h'(vars Q2) = E_T(h'). *)
    let h' = Dist.entropy_all p' in
    let c =
      Logint.equal (h' (Varset.full (Query.nvars vee))) (Transport.et_value t h')
    in
    (* (d) Eq. 49: E_T(h') = (E_T ∘ φ)(h1). *)
    let et_phi =
      Transport.(eval_logint h1 (Cexpr.to_linexpr (apply_phi (Treedec.et t) phi)))
    in
    let d = Logint.equal (Transport.et_value t h') et_phi in
    (* (e) the chain gives log|hom(Q2,D)| >= log|hom(Q1,D)|. *)
    let e = Relation.cardinal hom2 >= Relation.cardinal p1_rel in
    dominates && a && b && c && d && e
  end

let test_appendix_d_k2 () =
  let k2 = Database.of_int_rows [ ("R", [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]) ] in
  Alcotest.(check bool) "Appendix D chain on K2" true (check_appendix_d k2)

let test_appendix_d_asymmetric () =
  let db =
    Database.of_int_rows
      [ ("R", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ]; [ 0; 0 ]; [ 0; 2 ] ]) ]
  in
  Alcotest.(check bool) "Appendix D chain on an asymmetric digraph" true
    (check_appendix_d db)

let prop_appendix_d_random =
  QCheck.Test.make ~name:"Appendix D equalities hold on random digraphs" ~count:40
    (QCheck.make
       ~print:(fun edges ->
         String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges))
       QCheck.Gen.(list_size (int_range 1 10) (pair (int_range 0 3) (int_range 0 3))))
    (fun edges ->
      let db =
        List.fold_left
          (fun db (a, b) -> Database.add_row "R" [| Value.Int a; Value.Int b |] db)
          Database.empty edges
      in
      check_appendix_d db)

(* Stitching along a path decomposition of a path query. *)
let test_transport_path () =
  let path = Parser.parse "R(a,b), S(b,c)" in
  let db =
    Database.of_int_rows
      [ ("R", [ [ 0; 1 ]; [ 2; 1 ]; [ 0; 3 ] ]); ("S", [ [ 1; 4 ]; [ 1; 5 ]; [ 3; 4 ] ]) ]
  in
  let p1 = Dist.uniform (hom_relation path db) in
  let h1 = Dist.entropy_all p1 in
  let t = Option.get (Treedec.join_tree path) in
  (* Identity homomorphism path -> path. *)
  let phi = [| 0; 1; 2 |] in
  let p' = Transport.stitched t ~phi p1 ~nvars2:3 in
  Alcotest.(check bool) "distribution" true (Dist.is_distribution p');
  let h' = Dist.entropy_all p' in
  Alcotest.(check bool) "Eq. 48" true
    (Logint.equal (h' (Varset.full 3)) (Transport.et_value t h'));
  Alcotest.(check bool) "Eq. 49" true
    (Logint.equal (Transport.et_value t h') (Transport.et_value t h1))

let qtests = List.map QCheck_alcotest.to_alcotest [ prop_appendix_d_random ]

let suite =
  [ ("dist basic", `Quick, test_dist_basic);
    ("dist uniform = relation entropy", `Quick, test_dist_uniform_matches_relation);
    ("dist pullback (Ex 4.1)", `Quick, test_dist_pullback);
    ("Appendix D on K2", `Quick, test_appendix_d_k2);
    ("Appendix D, asymmetric", `Quick, test_appendix_d_asymmetric);
    ("transport along a path", `Quick, test_transport_path) ]
  @ qtests
