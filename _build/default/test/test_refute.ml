(* Tests for the Lemma B.9 counterexample search (Refute), exact
   general-relation entropies, and the Theorem 6.1 convex-combination
   interface. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation

let vs = Varset.of_list
let q = Rat.of_int

let parity_rel =
  Relation.of_int_rows ~arity:3
    [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]

let test_entropy_logint () =
  (* Agrees with entropy_exact on uniform marginals. *)
  Varset.iter_subsets (Varset.full 3) (fun x ->
      match Relation.entropy_exact parity_rel x with
      | Some e ->
        Alcotest.(check bool) "agrees with exact" true
          (Logint.equal e (Relation.entropy_logint parity_rel x))
      | None -> Alcotest.fail "parity is totally uniform");
  (* Non-uniform case: H(2/3, 1/3) = log 3 - 2/3 log 2. *)
  let p = Relation.of_int_rows ~arity:2 [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ] in
  let h = Relation.entropy_logint p (vs [ 0 ]) in
  let expected =
    Logint.sub (Logint.log_int 3) (Logint.scale (Rat.of_ints 2 3) (Logint.log_int 2))
  in
  Alcotest.(check bool) "skewed marginal exact" true (Logint.equal h expected);
  (* Exact value is consistent with the float evaluation. *)
  Alcotest.(check bool) "consistent with float" true
    (Float.abs (Logint.to_float h -. Relation.entropy_float p (vs [ 0 ])) < 1e-9)

(* The g-empty functional: E = sum over nonempty Y of (-1)^(|Y|+1) h(Y);
   it is
   non-negative on every normal function (it equals the step coefficient
   c_∅) but equals −1 on the parity function. *)
let g_empty_functional =
  Linexpr.sum
    (List.filter_map
       (fun y ->
         if Varset.is_empty y then None
         else
           Some
             (Linexpr.term
                ~coeff:(q (if Varset.cardinal y land 1 = 1 then 1 else -1))
                y))
       (Varset.fold_subsets (Varset.full 3) (fun s acc -> s :: acc) []))

let test_parity_gap () =
  (* Valid over the normal cone... *)
  Alcotest.(check bool) "valid over Nn" true
    (Result.is_ok (Cones.valid Cones.Normal ~n:3 g_empty_functional));
  (* ...but the parity relation refutes it exactly. *)
  Alcotest.(check bool) "parity refutes" true
    (Refute.refutes parity_rel [ g_empty_functional ]);
  let v = Refute.eval parity_rel g_empty_functional in
  Alcotest.(check int) "value is -1" 0
    (Logint.compare v (Logint.scale Rat.minus_one (Logint.log_int 2)));
  (* And the search finds some certified uniform-relation refuter. *)
  (match Refute.search ~n:3 [ g_empty_functional ] with
   | Some p -> Alcotest.(check bool) "found refuter verifies" true
                 (Refute.refutes p [ g_empty_functional ])
   | None -> Alcotest.fail "search must find a refuter (parity qualifies)")

let test_search_basic () =
  (* 0 ≤ −h(X1): the two-row unary relation refutes it. *)
  (match Refute.search ~n:1 [ Linexpr.term ~coeff:Rat.minus_one (vs [ 0 ]) ] with
   | Some p ->
     Alcotest.(check int) "two rows suffice" 2 (Relation.cardinal p)
   | None -> Alcotest.fail "must find");
  (* Submodularity is valid: no refutation exists anywhere. *)
  let submod =
    Linexpr.sum
      [ Linexpr.term (vs [ 0 ]); Linexpr.term (vs [ 1 ]);
        Linexpr.term ~coeff:Rat.minus_one (vs [ 0; 1 ]) ]
  in
  Alcotest.(check bool) "no refuter for submodularity" true
    (Refute.search ~n:2 [ submod ] = None);
  (* Max semantics: refuter must defeat BOTH sides. *)
  let h1 = Linexpr.term (vs [ 0 ]) in
  (match Refute.search ~n:1 [ Linexpr.neg h1; h1 ] with
   | None -> ()
   | Some _ -> Alcotest.fail "max(−h,h) ≥ 0 has no refuter")

let test_search_maxii () =
  (* Example 3.8 single-sided version is invalid; search certifies it. *)
  let e1 =
    Cexpr.add (Cexpr.entropy (vs [ 0; 1 ])) (Cexpr.part (vs [ 1 ]) (vs [ 0 ]))
  in
  let m = Maxii.conditional ~n:3 ~q:Rat.one [ e1 ] in
  (match Refute.search_maxii m with
   | Some p -> Alcotest.(check bool) "refutes" true (Refute.refutes p (Maxii.sides m))
   | None -> Alcotest.fail "expected a refuter");
  (* The full three-sided Example 3.8 is valid: no refuter. *)
  let e2 = Cexpr.add (Cexpr.entropy (vs [ 1; 2 ])) (Cexpr.part (vs [ 2 ]) (vs [ 1 ])) in
  let e3 = Cexpr.add (Cexpr.entropy (vs [ 0; 2 ])) (Cexpr.part (vs [ 0 ]) (vs [ 2 ])) in
  Alcotest.(check bool) "Example 3.8 has no refuter" true
    (Refute.search_maxii (Maxii.conditional ~n:3 ~q:Rat.one [ e1; e2; e3 ]) = None)

let test_search_guards () =
  Alcotest.check_raises "space too large"
    (Invalid_argument "Refute.search: tuple space too large") (fun () ->
      ignore (Refute.search ~domain:3 ~n:3 [ Linexpr.term (vs [ 0 ]) ]));
  Alcotest.check_raises "bad n" (Invalid_argument "Refute.search: n must be positive")
    (fun () -> ignore (Refute.search ~n:0 []))

(* Agreement between the refutation search and the cone machinery: if the
   search finds a refuter, the inequality must fail over Γn (since actual
   entropies are polymatroids). *)
let prop_search_consistent_with_gamma =
  let n = 2 in
  let gen =
    QCheck.Gen.(
      let* terms =
        list_size (int_range 1 3)
          (pair (int_range 1 3) (int_range (-2) 2))
      in
      return
        (Linexpr.sum (List.map (fun (m, c) -> Linexpr.term ~coeff:(q c) m) terms)))
  in
  QCheck.Test.make ~name:"refuter found ⇒ not valid over Γn" ~count:80
    (QCheck.make ~print:(Format.asprintf "%a" (Linexpr.pp ())) gen)
    (fun e ->
      match Refute.search ~n [ e ] with
      | None -> true
      | Some p ->
        Refute.refutes p [ e ] && not (Cones.valid_max_quick Cones.Gamma ~n [ e ]))

(* Theorem 6.1: max valid over Γn iff a convex combination is valid. *)
let test_max_to_convex () =
  let e1 = Linexpr.sub (Linexpr.term (vs [ 0 ])) (Linexpr.term (vs [ 1 ])) in
  let sides = [ e1; Linexpr.neg e1 ] in
  (match Cones.max_to_convex ~n:2 sides with
   | None -> Alcotest.fail "valid max must have convex weights"
   | Some mu ->
     let total = Array.fold_left Rat.add Rat.zero mu in
     Alcotest.(check bool) "weights sum to 1" true (Rat.equal total Rat.one);
     let combined =
       Linexpr.sum (List.mapi (fun i e -> Linexpr.scale mu.(i) e) sides)
     in
     Alcotest.(check bool) "combination is Shannon" true
       (Cones.valid_shannon ~n:2 combined));
  (* An invalid max has no convex certificate. *)
  Alcotest.(check bool) "invalid max: none" true
    (Cones.max_to_convex ~n:2 [ e1 ] = None
     || Cones.valid_shannon ~n:2 e1)

let prop_max_to_convex_iff_valid =
  let n = 2 in
  let gen =
    QCheck.Gen.(
      let gen_e =
        let* terms =
          list_size (int_range 1 3) (pair (int_range 1 3) (int_range (-2) 2))
        in
        return
          (Linexpr.sum (List.map (fun (m, c) -> Linexpr.term ~coeff:(q c) m) terms))
      in
      list_size (int_range 1 3) gen_e)
  in
  QCheck.Test.make ~name:"Theorem 6.1 over Γn: convex weights iff valid" ~count:80
    (QCheck.make
       ~print:(fun es -> String.concat " | " (List.map (Format.asprintf "%a" (Linexpr.pp ())) es))
       gen)
    (fun es ->
      let valid = Cones.valid_max_quick Cones.Gamma ~n es in
      match Cones.max_to_convex ~n es with
      | None -> not valid
      | Some mu ->
        valid
        && Rat.equal (Array.fold_left Rat.add Rat.zero mu) Rat.one
        && Array.for_all (fun m -> Rat.sign m >= 0) mu
        && Cones.valid_shannon ~n
             (Linexpr.sum (List.mapi (fun i e -> Linexpr.scale mu.(i) e) es)))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_search_consistent_with_gamma; prop_max_to_convex_iff_valid ]

let suite =
  [ ("entropy_logint", `Quick, test_entropy_logint);
    ("parity gap (Nn vs Γ*)", `Quick, test_parity_gap);
    ("search basic", `Quick, test_search_basic);
    ("search on Maxii (Ex 3.8)", `Quick, test_search_maxii);
    ("search guards", `Quick, test_search_guards);
    ("Theorem 6.1 interface", `Quick, test_max_to_convex) ]
  @ qtests
