(* Tests for the Section 6 material: Lee's information-theoretic
   characterizations of FDs, MVDs and lossless joins, and the
   inclusion-exclusion form of E_T (Eq. 32).  The headline property tests
   run Lee's theorems as executable statements: the relational definition
   and the entropy characterization must coincide on random relations. *)

open Bagcqc_entropy
open Bagcqc_cq
open Bagcqc_relation

let vs = Varset.of_list

let parity_rel =
  Relation.of_int_rows ~arity:3
    [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]

(* ------------------------------------------------------------------ *)
(* FDs                                                                 *)
(* ------------------------------------------------------------------ *)

let test_fd () =
  (* In parity, any two columns determine the third. *)
  Alcotest.(check bool) "XY -> Z" true
    (Dependencies.fd_holds parity_rel ~x:(vs [ 0; 1 ]) ~y:(vs [ 2 ]));
  Alcotest.(check bool) "X -/-> Z" false
    (Dependencies.fd_holds parity_rel ~x:(vs [ 0 ]) ~y:(vs [ 2 ]));
  (* The entropy characterization agrees (Lee Part I). *)
  Alcotest.(check bool) "entropy: XY -> Z" true
    (Dependencies.fd_holds_entropy parity_rel ~x:(vs [ 0; 1 ]) ~y:(vs [ 2 ]));
  Alcotest.(check bool) "entropy: X -/-> Z" false
    (Dependencies.fd_holds_entropy parity_rel ~x:(vs [ 0 ]) ~y:(vs [ 2 ]))

(* ------------------------------------------------------------------ *)
(* MVDs                                                                *)
(* ------------------------------------------------------------------ *)

let test_mvd () =
  (* The classic course ↠ teacher | book relation: teachers and books of
     a course vary independently. *)
  let p =
    Relation.of_int_rows ~arity:3
      [ (* course 0: teachers {0,1} x books {0,1} *)
        [ 0; 0; 0 ]; [ 0; 0; 1 ]; [ 0; 1; 0 ]; [ 0; 1; 1 ];
        (* course 1: teacher {2} x books {0} *)
        [ 1; 2; 0 ] ]
  in
  Alcotest.(check bool) "course ->> teacher" true
    (Dependencies.mvd_holds p ~x:(vs [ 0 ]) ~y:(vs [ 1 ]));
  Alcotest.(check bool) "entropy agrees" true
    (Dependencies.mvd_holds_entropy p ~x:(vs [ 0 ]) ~y:(vs [ 1 ]));
  (* Remove one tuple: the MVD breaks. *)
  let p' =
    Relation.of_int_rows ~arity:3
      [ [ 0; 0; 0 ]; [ 0; 0; 1 ]; [ 0; 1; 0 ]; [ 1; 2; 0 ] ]
  in
  Alcotest.(check bool) "broken MVD" false
    (Dependencies.mvd_holds p' ~x:(vs [ 0 ]) ~y:(vs [ 1 ]));
  Alcotest.(check bool) "entropy agrees on broken" false
    (Dependencies.mvd_holds_entropy p' ~x:(vs [ 0 ]) ~y:(vs [ 1 ]));
  (* FDs are MVDs. *)
  Alcotest.(check bool) "FD implies MVD" true
    (Dependencies.mvd_holds parity_rel ~x:(vs [ 0; 1 ]) ~y:(vs [ 2 ]))

(* ------------------------------------------------------------------ *)
(* Lossless joins                                                      *)
(* ------------------------------------------------------------------ *)

let path_dec =
  Treedec.make ~bags:[| vs [ 0; 1 ]; vs [ 1; 2 ] |] ~edges:[ (0, 1) ]

let test_lossless_join () =
  (* Parity does NOT decompose along {01}-{12}: E_T(h) = 3 > 2 = h(V). *)
  Alcotest.(check bool) "parity not lossless" false
    (Dependencies.lossless_join parity_rel path_dec);
  Alcotest.(check bool) "entropy agrees" false
    (Dependencies.lossless_join_entropy parity_rel path_dec);
  (* A relation built as a join IS lossless. *)
  let p =
    Dependencies.join_of_projections
      (Relation.of_int_rows ~arity:3 [ [ 0; 0; 0 ]; [ 1; 0; 1 ]; [ 0; 1; 1 ] ])
      [ vs [ 0; 1 ]; vs [ 1; 2 ] ]
  in
  Alcotest.(check bool) "join is lossless" true
    (Dependencies.lossless_join p path_dec);
  Alcotest.(check bool) "entropy agrees on lossless" true
    (Dependencies.lossless_join_entropy p path_dec);
  Alcotest.check_raises "bags must cover"
    (Invalid_argument "Dependencies.join_of_projections: bags do not cover all columns")
    (fun () -> ignore (Dependencies.join_of_projections parity_rel [ vs [ 0; 1 ] ]))

(* ------------------------------------------------------------------ *)
(* Property tests: Lee's theorems                                      *)
(* ------------------------------------------------------------------ *)

let arb_relation =
  let gen =
    QCheck.Gen.(
      let* rows = list_size (int_range 1 8) (list_repeat 3 (int_range 0 2)) in
      return (Relation.of_int_rows ~arity:3 rows))
  in
  QCheck.make ~print:(Format.asprintf "%a" Relation.pp) gen

let arb_xy =
  QCheck.make
    QCheck.Gen.(
      let* x = int_range 0 7 in
      let* y = int_range 1 7 in
      return (x, y))

let prop_fd_lee =
  QCheck.Test.make ~name:"Lee: FD X->Y iff h(Y|X)=0" ~count:300
    (QCheck.pair arb_relation arb_xy)
    (fun (p, (x, y)) ->
      Dependencies.fd_holds p ~x ~y = Dependencies.fd_holds_entropy p ~x ~y)

let prop_mvd_lee =
  QCheck.Test.make ~name:"Lee: MVD X->>Y iff I(Y;Z|X)=0" ~count:300
    (QCheck.pair arb_relation arb_xy)
    (fun (p, (x, y)) ->
      Dependencies.mvd_holds p ~x ~y = Dependencies.mvd_holds_entropy p ~x ~y)

let prop_lossless_lee =
  QCheck.Test.make ~name:"Lee: lossless along T iff E_T(h)=h(V)" ~count:300
    arb_relation
    (fun p ->
      Dependencies.lossless_join p path_dec
      = Dependencies.lossless_join_entropy p path_dec)

let prop_fd_implies_mvd =
  QCheck.Test.make ~name:"FD implies MVD" ~count:200
    (QCheck.pair arb_relation arb_xy)
    (fun (p, (x, y)) ->
      (not (Dependencies.fd_holds p ~x ~y)) || Dependencies.mvd_holds p ~x ~y)

(* ------------------------------------------------------------------ *)
(* Eq. 32                                                              *)
(* ------------------------------------------------------------------ *)

let test_eq32_examples () =
  (* Vee: E_T = h(Y1Y2) + h(Y1Y3) - h(Y1). *)
  let vee = Parser.parse "R(y1,y2), R(y1,y3)" in
  let t = Option.get (Treedec.join_tree vee) in
  Alcotest.(check bool) "vee" true
    (Linexpr.equal (Treedec.et_inclusion_exclusion t) (Treedec.et_via_separators t));
  (* Star with three leaves around a shared variable. *)
  let star =
    Treedec.make
      ~bags:[| vs [ 0 ]; vs [ 0; 1 ]; vs [ 0; 2 ]; vs [ 0; 3 ] |]
      ~edges:[ (0, 1); (0, 2); (0, 3) ]
  in
  Alcotest.(check bool) "star" true
    (Linexpr.equal (Treedec.et_inclusion_exclusion star) (Treedec.et_via_separators star))

let arb_small_query =
  let gen =
    QCheck.Gen.(
      let* nv = int_range 1 4 in
      let* natoms = int_range 1 3 in
      let* atoms =
        list_repeat natoms
          (let* arity = int_range 1 3 in
           let* args = list_repeat arity (int_range 0 (nv - 1)) in
           return (Query.atom (Printf.sprintf "P%d" arity) args))
      in
      let cover = Query.atom "COV" (List.init nv Fun.id) in
      return (Query.make ~nvars:nv (cover :: atoms)))
  in
  QCheck.make ~print:Query.to_string gen

let prop_eq32 =
  QCheck.Test.make ~name:"Eq. 32 equals Eq. 7 on tree decompositions" ~count:200
    arb_small_query
    (fun q ->
      let t = Treedec.of_query q in
      Linexpr.equal (Treedec.et_inclusion_exclusion t) (Treedec.et_via_separators t))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_fd_lee; prop_mvd_lee; prop_lossless_lee; prop_fd_implies_mvd; prop_eq32 ]

let suite =
  [ ("FD (Lee Part I)", `Quick, test_fd);
    ("MVD", `Quick, test_mvd);
    ("lossless join", `Quick, test_lossless_join);
    ("Eq. 32 examples", `Quick, test_eq32_examples) ]
  @ qtests
