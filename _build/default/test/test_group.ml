(* Tests for group-characterizable relations (Chan-Yeung / Lemma 4.8). *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation

let vs = Varset.of_list

let test_perm () =
  let p = Group.Perm.of_cycles 3 [ [ 0; 1 ] ] in
  Alcotest.(check bool) "transposition" true (p = [| 1; 0; 2 |]);
  let q = Group.Perm.of_cycles 3 [ [ 0; 1; 2 ] ] in
  Alcotest.(check bool) "3-cycle" true (q = [| 1; 2; 0 |]);
  (* compose p q applies q first. *)
  Alcotest.(check bool) "composition" true
    (Group.Perm.compose p q = [| 0; 2; 1 |]);
  Alcotest.(check bool) "inverse" true
    (Group.Perm.compose q (Group.Perm.inverse q) = Group.Perm.identity 3);
  Alcotest.check_raises "overlapping cycles"
    (Invalid_argument "Perm.of_cycles: cycles not disjoint") (fun () ->
      ignore (Group.Perm.of_cycles 3 [ [ 0; 1 ]; [ 1; 2 ] ]))

let s3 = Group.generate 3 [ Group.Perm.of_cycles 3 [ [ 0; 1 ] ];
                            Group.Perm.of_cycles 3 [ [ 0; 1; 2 ] ] ]

let test_generate () =
  Alcotest.(check int) "S3 order" 6 (Group.order s3);
  let z3 = Group.generate 3 [ Group.Perm.of_cycles 3 [ [ 0; 1; 2 ] ] ] in
  Alcotest.(check int) "Z3 order" 3 (Group.order z3);
  Alcotest.(check bool) "Z3 <= S3" true (Group.is_subgroup_of ~sub:z3 s3);
  Alcotest.check_raises "foreign generator"
    (Invalid_argument "Group.subgroup: generator not in group") (fun () ->
      ignore (Group.subgroup z3 [ Group.Perm.of_cycles 3 [ [ 0; 1 ] ] ]))

let test_klein_parity () =
  (* The Klein four-group with its three order-2 subgroups characterizes
     the parity function of Example B.4. *)
  let g, subs = Group.klein_parity in
  Alcotest.(check int) "order 4" 4 (Group.order g);
  List.iter
    (fun s -> Alcotest.(check int) "subgroup order 2" 2 (Group.order s))
    subs;
  let one_bit k = Logint.scale (Rat.of_int k) (Logint.log_int 2) in
  let check_h x bits =
    Alcotest.(check bool)
      (Format.asprintf "h%a = %d bits" (Varset.pp ()) x bits)
      true
      (Logint.equal (Group.entropy g subs x) (one_bit bits))
  in
  check_h (vs [ 0 ]) 1;
  check_h (vs [ 1 ]) 1;
  check_h (vs [ 0; 1 ]) 2;
  check_h (vs [ 0; 2 ]) 2;
  check_h (Varset.full 3) 2;
  (* And the induced coset relation realizes exactly these entropies. *)
  let p = Group.coset_relation g subs in
  Alcotest.(check int) "4 rows" 4 (Relation.cardinal p);
  Alcotest.(check bool) "totally uniform" true (Relation.is_totally_uniform p);
  Varset.iter_subsets (Varset.full 3) (fun x ->
      Alcotest.(check bool) "relation entropy = closed form" true
        (Logint.equal (Relation.entropy_logint p x) (Group.entropy g subs x)))

let test_s3_stabilizers () =
  (* S3 with the three point stabilizers: h(i) = log 3, h(ij) = log 6. *)
  let stab i =
    let others = List.filter (fun j -> j <> i) [ 0; 1; 2 ] in
    Group.subgroup s3 [ Group.Perm.of_cycles 3 [ others ] ]
  in
  let subs = [ stab 0; stab 1; stab 2 ] in
  Alcotest.(check bool) "h(1) = log 3" true
    (Logint.equal (Group.entropy s3 subs (vs [ 0 ])) (Logint.log_int 3));
  Alcotest.(check bool) "h(12) = log 6" true
    (Logint.equal (Group.entropy s3 subs (vs [ 0; 1 ])) (Logint.log_int 6));
  let p = Group.coset_relation s3 subs in
  Alcotest.(check int) "6 rows" 6 (Relation.cardinal p);
  Alcotest.(check bool) "totally uniform" true (Relation.is_totally_uniform p)

(* Property: random subgroup tuples of S3 give totally uniform relations
   whose entropies match the closed form - Lemma 4.8's key step. *)
let prop_group_relations_uniform =
  let gens =
    [ Group.Perm.of_cycles 3 [ [ 0; 1 ] ];
      Group.Perm.of_cycles 3 [ [ 0; 2 ] ];
      Group.Perm.of_cycles 3 [ [ 1; 2 ] ];
      Group.Perm.of_cycles 3 [ [ 0; 1; 2 ] ];
      Group.Perm.identity 3 ]
  in
  let arb =
    QCheck.make
      ~print:(fun picks -> String.concat ";" (List.map string_of_int picks))
      QCheck.Gen.(list_size (int_range 1 3) (int_range 0 4))
  in
  QCheck.Test.make ~name:"group relations are totally uniform with closed-form entropy"
    ~count:60 arb
    (fun picks ->
      let subs = List.map (fun i -> Group.subgroup s3 [ List.nth gens i ]) picks in
      let p = Group.coset_relation s3 subs in
      let n = List.length subs in
      Relation.is_totally_uniform p
      && Varset.fold_subsets (Varset.full n)
           (fun x acc ->
             acc
             && Logint.equal (Relation.entropy_logint p x) (Group.entropy s3 subs x))
           true)

(* Group entropies are polymatroids (they are entropic): check Shannon
   inequalities via exact Logint arithmetic on the relation. *)
let prop_group_entropy_submodular =
  let arb = QCheck.make QCheck.Gen.(list_repeat 3 (int_range 0 2)) in
  QCheck.Test.make ~name:"group entropies satisfy submodularity" ~count:30 arb
    (fun picks ->
      let cycles = [ [ [ 0; 1 ] ]; [ [ 0; 2 ] ]; [ [ 0; 1; 2 ] ] ] in
      let subs =
        List.map
          (fun i -> Group.subgroup s3 [ Group.Perm.of_cycles 3 (List.nth cycles i) ])
          picks
      in
      let p = Group.coset_relation s3 subs in
      let h x = Relation.entropy_logint p x in
      let full = Varset.full 3 in
      Varset.fold_subsets full
        (fun a acc ->
          acc
          && Varset.fold_subsets full
               (fun b acc ->
                 acc
                 && Logint.sign
                      (Logint.sub
                         (Logint.add (h a) (h b))
                         (Logint.add (h (Varset.union a b)) (h (Varset.inter a b))))
                    >= 0)
               true)
        true)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_group_relations_uniform; prop_group_entropy_submodular ]

let suite =
  [ ("permutations", `Quick, test_perm);
    ("generate", `Quick, test_generate);
    ("Klein four-group = parity (Ex B.4)", `Quick, test_klein_parity);
    ("S3 stabilizers", `Quick, test_s3_stabilizers) ]
  @ qtests
