open Bagcqc_cq

(** The domination problem (paper Section 2.1).

    [B] {e dominates} [A] when [|hom(A,D)| ≤ |hom(B,D)|] for every
    database [D] — written [A ⪯ B].  Viewing Boolean conjunctive queries
    as structures (Section 2.2: "DOM and BagCQC are essentially the same
    problem"), this is exactly bag containment, and the
    exponent-domination problem of Kopparty–Rossman (Problem 2.2) reduces
    to it by taking disjoint copies: [|hom(c·A, D)| = |hom(A,D)|^c]. *)

val dominates : ?max_factors:int -> Query.t -> Query.t -> Containment.verdict
(** [dominates a b] decides [A ⪯ B] (both queries Boolean). *)

val exponent_dominates :
  ?max_factors:int -> num:int -> den:int -> Query.t -> Query.t -> Containment.verdict
(** [exponent_dominates ~num ~den a b] decides
    [|hom(A,D)|^(num/den) ≤ |hom(B,D)|] for all [D], by the reduction
    [A^num ⪯ B^den] (Lemma 2.2 of Kopparty–Rossman).
    @raise Invalid_argument unless [num ≥ 1] and [den ≥ 1]. *)
