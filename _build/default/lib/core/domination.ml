open Bagcqc_cq

let dominates ?max_factors a b = Containment.decide ?max_factors a b

let exponent_dominates ?max_factors ~num ~den a b =
  if num < 1 || den < 1 then invalid_arg "Domination.exponent_dominates";
  Containment.decide ?max_factors (Query.power num a) (Query.power den b)
