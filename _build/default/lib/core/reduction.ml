open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_cq

type uniform = {
  n0 : int;
  n : int;
  p : int;
  q : int;
  chains : (Varset.t * Varset.t) array array;
}

(* ------------------------------------------------------------------ *)
(* Lemma 5.3: uniformization.                                          *)
(* ------------------------------------------------------------------ *)

let clear_denominators e =
  (* Scale a side to integer coefficients (validity is scale-invariant). *)
  let lcm =
    List.fold_left
      (fun acc (_, c) ->
        let d = Rat.den c in
        Bigint.mul acc (Bigint.div d (Bigint.gcd acc d)))
      Bigint.one (Linexpr.terms e)
  in
  Linexpr.scale (Rat.of_bigint lcm) e

let expand_terms e =
  (* Positive / negative multisets of sets, unit multiplicities. *)
  List.fold_left
    (fun (pos, neg) (s, c) ->
      match Bigint.to_int_opt (Rat.num c) with
      | None -> invalid_arg "Reduction.uniformize: coefficient too large"
      | Some k ->
        if k > 0 then (pos @ List.init k (fun _ -> s), neg)
        else (pos, neg @ List.init (-k) (fun _ -> s)))
    ([], []) (Linexpr.terms e)

let uniformize maxii =
  let n0 = Maxii.n_vars maxii in
  let full = Varset.full n0 in
  let u = n0 in
  let uset = Varset.singleton u in
  let sides = List.map clear_denominators (Maxii.sides maxii) in
  let expanded = List.map expand_terms sides in
  let n =
    List.fold_left (fun acc (_, neg) -> max acc (List.length neg)) 0 expanded
  in
  (* Pre-U chain for one side (Eq. 23/24):
     h(V|∅) · [h(V|Xj)]j · [h(Yi|∅)]i · padding h(V|∅). *)
  let chains_pre =
    List.map
      (fun (pos, neg) ->
        [ (full, Varset.empty) ]
        @ List.map (fun x -> (full, x)) neg
        @ List.map (fun y -> (y, Varset.empty)) pos
        @ List.init (n - List.length neg) (fun _ -> (full, Varset.empty)))
      expanded
  in
  (* U-ification (Eq. 25): prepend h(U|∅) and adjoin U to every Y and X. *)
  let chains_u =
    List.map
      (fun chain ->
        (uset, Varset.empty)
        :: List.map
             (fun (y, x) ->
               (Varset.union (Varset.union y x) uset, Varset.union x uset))
             chain)
      chains_pre
  in
  (* Equalize chain lengths with h(U|U) padding. *)
  let p = List.fold_left (fun acc c -> max acc (List.length c - 1)) 0 chains_u in
  let chains =
    List.map
      (fun chain ->
        let pad = p + 1 - List.length chain in
        Array.of_list (chain @ List.init pad (fun _ -> (uset, uset))))
      chains_u
  in
  { n0; n; p; q = n + 1; chains = Array.of_list chains }

let uniform_maxii u =
  let nvars = u.n0 + 1 in
  let uvar = Varset.singleton u.n0 in
  let sides =
    Array.to_list
      (Array.map
         (fun chain ->
           Cexpr.add
             (Cexpr.entropy ~coeff:(Rat.of_int u.n) uvar)
             (Cexpr.sum
                (Array.to_list
                   (Array.map (fun (y, x) -> Cexpr.part y x) chain))))
         u.chains)
  in
  Maxii.conditional ~n:nvars ~q:(Rat.of_int u.q) sides

let check_uniform u =
  let uvar = u.n0 in
  let fullu = Varset.full (u.n0 + 1) in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if u.q <> u.n + 1 then err "q = %d but n + 1 = %d" u.q (u.n + 1)
  else begin
    let check_chain i chain =
      if Array.length chain <> u.p + 1 then
        err "chain %d has length %d, expected %d" i (Array.length chain) (u.p + 1)
      else begin
        let rec go j =
          if j > u.p then Ok ()
          else begin
            let y, x = chain.(j) in
            if not (Varset.subset x y) then err "chain %d part %d: X ⊄ Y" i j
            else if not (Varset.subset y fullu) then
              err "chain %d part %d: Y out of range" i j
            else if j = 0 && not (Varset.is_empty x) then
              err "chain %d: X₀ ≠ ∅" i
            else if j >= 1 && not (Varset.mem uvar x) then
              err "chain %d part %d: U ∉ X (connectedness)" i j
            else if
              j >= 1
              && not
                   (Varset.subset x
                      (Varset.inter (fst chain.(j - 1)) y))
            then err "chain %d part %d: chain condition X ⊆ Y₋₁ ∩ Y fails" i j
            else go (j + 1)
          end
        in
        go 0
      end
    in
    let rec all i =
      if i >= Array.length u.chains then Ok ()
      else
        match check_chain i u.chains.(i) with
        | Ok () -> all (i + 1)
        | Error _ as e -> e
    in
    all 0
  end

(* ------------------------------------------------------------------ *)
(* Section 5.3: the query construction.                                *)
(* ------------------------------------------------------------------ *)

type constructed = {
  q1 : Query.t;
  q2 : Query.t;
  dec2 : Treedec.t;
}

(* A "slot" is an attribute position carrier: an original variable, or one
   of the two halves of the split distinguished variable U = U₁U₂. *)
type slot = Orig of int | U1 | U2

let slots_of_set ~uvar s =
  List.concat_map
    (fun v -> if v = uvar then [ U1; U2 ] else [ Orig v ])
    (Varset.to_list s)

let to_queries u =
  (match check_uniform u with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Reduction.to_queries: " ^ msg));
  let k = Array.length u.chains in
  if k = 0 then invalid_arg "Reduction.to_queries: no sides";
  let uvar = u.n0 in
  let ylist i j = slots_of_set ~uvar (fst u.chains.(i).(j)) in
  let xlist i j = slots_of_set ~uvar (snd u.chains.(i).(j)) in

  (* ---------------- Q2 ---------------- *)
  (* Variable registry for Q2. *)
  let q2_vars = Hashtbl.create 64 in
  let q2_names = ref [] in
  let q2_count = ref 0 in
  let q2_var key name =
    match Hashtbl.find_opt q2_vars key with
    | Some idx -> idx
    | None ->
      let idx = !q2_count in
      incr q2_count;
      Hashtbl.add q2_vars key idx;
      q2_names := name :: !q2_names;
      idx
  in
  let slot_name = function
    | Orig v -> Varset.default_name v
    | U1 -> "U1"
    | U2 -> "U2"
  in
  let yvar i j slot =
    q2_var
      (`Y (i, j, slot))
      (Printf.sprintf "%s_%d_%d" (slot_name slot) i j)
  in
  let zvar i = q2_var (`Z i) (Printf.sprintf "z%d" i) in
  let uvar2 j b = q2_var (`U (j, b)) (Printf.sprintf "u%d_%d" j b) in
  let s_rel j = Printf.sprintf "S%d" j in
  let r_rel j = Printf.sprintf "R%d" j in
  let s_atoms_q2 =
    List.init u.n (fun j -> Query.atom (s_rel (j + 1)) [ uvar2 (j + 1) 1; uvar2 (j + 1) 2 ])
  in
  let r_atom_q2 j =
    let xblock =
      if j = 0 then []
      else
        List.concat
          (List.init k (fun i -> List.map (fun s -> yvar i (j - 1) s) (xlist i j)))
    in
    let yblock =
      List.concat (List.init k (fun i -> List.map (fun s -> yvar i j s) (ylist i j)))
    in
    let zblock = List.init k (fun i -> zvar i) in
    Query.atom (r_rel j) (xblock @ yblock @ zblock)
  in
  let r_atoms_q2 = List.init (u.p + 1) r_atom_q2 in
  let q2_atoms = s_atoms_q2 @ r_atoms_q2 in
  let q2 =
    Query.make ~nvars:!q2_count
      ~names:(Array.of_list (List.rev !q2_names))
      q2_atoms
  in

  (* The paper's tree decomposition (29): isolated S bags + the R chain. *)
  let dec2 =
    let bags =
      Array.of_list (List.map Query.atom_vars q2_atoms)
    in
    let edges =
      List.init u.p (fun j -> (u.n + j, u.n + j + 1))
    in
    Treedec.make ~bags ~edges
  in

  (* ---------------- Q1 ---------------- *)
  let q1_vars = Hashtbl.create 64 in
  let q1_names = ref [] in
  let q1_count = ref 0 in
  let q1_var key name =
    match Hashtbl.find_opt q1_vars key with
    | Some idx -> idx
    | None ->
      let idx = !q1_count in
      incr q1_count;
      Hashtbl.add q1_vars key idx;
      q1_names := name :: !q1_names;
      idx
  in
  let ovar ell v = q1_var (`O (ell, v)) (Printf.sprintf "%s_%d" (Varset.default_name v) ell) in
  let u1 ell = q1_var (`U1 ell) (Printf.sprintf "U1_%d" ell) in
  let u2 ell = q1_var (`U2 ell) (Printf.sprintf "U2_%d" ell) in
  let slotvar ell = function
    | Orig v -> ovar ell v
    | U1 -> u1 ell
    | U2 -> u2 ell
  in
  let q1_atoms =
    List.concat
      (List.init u.q (fun ell0 ->
           let ell = ell0 + 1 in
           let s_atoms =
             List.init u.n (fun j -> Query.atom (s_rel (j + 1)) [ u1 ell; u2 ell ])
           in
           let sub i =
             List.init (u.p + 1) (fun j ->
                 let block get_slots =
                   List.concat
                     (List.init k (fun i' ->
                          List.map
                            (fun s ->
                              if i' = i then slotvar ell s else u1 ell)
                            (get_slots i' j)))
                 in
                 let xblock = if j = 0 then [] else block xlist in
                 let yblock = block ylist in
                 let zblock =
                   List.init k (fun i'' -> if i'' = i then u2 ell else u1 ell)
                 in
                 Query.atom (r_rel j) (xblock @ yblock @ zblock))
           in
           s_atoms @ List.concat (List.init k sub)))
  in
  (* Touch every original variable so Q1's variable set is complete even if
     a variable never occurs in any chain part of some copy: chain part 1
     always has Y = UV, so all variables do occur; the registry created
     them in atom order. *)
  let q1 =
    Query.dedup_atoms
      (Query.make ~nvars:!q1_count
         ~names:(Array.of_list (List.rev !q1_names))
         q1_atoms)
  in
  { q1; q2; dec2 }

let reduce maxii = to_queries (uniformize maxii)
