open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq

let apply_phi e phi = Cexpr.rename (fun v -> phi.(v)) e

let eval_logint h e =
  Linexpr.eval_general ~zero:Logint.zero ~add:Logint.add ~scale:Logint.scale h e

let et_value t h = eval_logint h (Cexpr.to_linexpr (Treedec.et t))

let best_side t ~homs h =
  let et = Treedec.et t in
  List.fold_left
    (fun best phi ->
      let v = eval_logint h (Cexpr.to_linexpr (apply_phi et phi)) in
      match best with
      | None -> Some (phi, v)
      | Some (_, v0) -> if Logint.compare v v0 > 0 then Some (phi, v) else best)
    None homs

(* Parent-first node order, as in the E_T orientation. *)
let parent_order t =
  let n = Treedec.n_nodes t in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    (Treedec.tree_edges t);
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let order = ref [] in
  for root = 0 to n - 1 do
    if not seen.(root) then begin
      let queue = Queue.create () in
      Queue.add root queue;
      seen.(root) <- true;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        order := v :: !order;
        List.iter
          (fun u ->
            if not seen.(u) then begin
              seen.(u) <- true;
              parent.(u) <- v;
              Queue.add u queue
            end)
          adj.(v)
      done
    end
  done;
  (List.rev !order, parent)

let stitched t ~phi p ~nvars2 =
  let bags = Treedec.bags t in
  let covered = Array.fold_left Varset.union Varset.empty bags in
  if not (Varset.equal covered (Varset.full nvars2)) then
    invalid_arg "Transport.stitched: bags do not cover the variables";
  let order, parent = parent_order t in
  (* Partial joint over Q2 variables: (assignment, probability). *)
  let extend partials node =
    let bag = bags.(node) in
    let cols = Varset.to_list bag in
    let sep =
      if parent.(node) < 0 then Varset.empty
      else Varset.inter bag bags.(parent.(node))
    in
    (* Pullback of p onto the bag, and its separator marginal. *)
    let pull = Dist.pullback p (Array.of_list (List.map (fun v -> phi.(v)) cols)) in
    let sep_positions =
      (* Positions of the separator variables within [cols]. *)
      List.mapi (fun i v -> (i, v)) cols
      |> List.filter (fun (_, v) -> Varset.mem v sep)
      |> List.map fst
    in
    let sep_marginal = Dist.pullback pull (Array.of_list sep_positions) in
    let support_rows = Relation.to_list (Dist.support pull) in
    List.concat_map
      (fun ((assignment : Value.t option array), pr) ->
        List.filter_map
          (fun row ->
            (* Consistency with already-assigned variables (by running
               intersection these are exactly the separator variables). *)
            let ok = ref true in
            let next = Array.copy assignment in
            List.iteri
              (fun i v ->
                match next.(v) with
                | Some x -> if not (Value.equal x row.(i)) then ok := false
                | None -> next.(v) <- Some row.(i))
              cols;
            if not !ok then None
            else begin
              let p_row = Dist.prob pull row in
              let conditional =
                if Varset.is_empty sep then p_row
                else begin
                  let sep_row =
                    Array.of_list (List.map (fun i -> row.(i)) sep_positions)
                  in
                  Rat.div p_row (Dist.prob sep_marginal sep_row)
                end
              in
              let pr' = Rat.mul pr conditional in
              if Rat.is_zero pr' then None else Some (next, pr')
            end)
          support_rows)
      partials
  in
  let partials =
    List.fold_left extend
      [ (Array.make nvars2 None, Rat.one) ]
      order
  in
  Dist.of_weights ~arity:nvars2
    (List.map
       (fun (assignment, pr) -> (Array.map Option.get assignment, pr))
       partials)
