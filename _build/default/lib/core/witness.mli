(** Witness structure theory — Theorem 3.4 of the paper.

    When [Q₁ ⋢ Q₂], Fact 3.2 supplies a witnessing V-relation [P] with
    [|P| > |hom(Q₂, Π_Q₁(P))|].  Theorem 3.4 pins down how simple the
    witness can be taken, depending on [Q₂]'s junction tree:

    - totally disconnected junction tree ⇒ a {e product} witness exists
      (iff non-containment), realizable from a refuter in the modular
      cone [Mn];
    - simple junction tree ⇒ a {e normal} witness exists, realizable
      from a refuter in the normal cone [Nn].

    Example 3.5 separates the two: its non-containment has a normal
    witness but provably no product witness. *)

open Bagcqc_cq
open Bagcqc_relation

type kind = Product | Normal

val applicable : Query.t -> kind option
(** Which witness class Theorem 3.4 guarantees for the containing query:
    [Some Product] if its junction tree is totally disconnected,
    [Some Normal] if simple, [None] otherwise. *)

val product_witness :
  ?max_rows:int -> Query.t -> Query.t -> (Relation.t * int * int) option
(** Search for a product witness of [q1 ⋢ q2]: refute Eq. 8 over the
    modular cone, realize the modular refuter as a product relation
    [∏ᵢ [2^{wᵢ}]] (scaled up as needed, capped at [max_rows] rows,
    default 4096), and verify by counting.  Returns
    [(P, |P|, |hom(q2, Π_q1 P)|)].  [None] if no modular refuter exists
    or the budget runs out. *)

val normal_witness :
  ?max_factors:int -> Query.t -> Query.t -> Containment.witness option
(** Search for a normal witness via a normal-cone refuter — the engine
    behind {!Containment.decide}'s negative answers. *)

val locality_holds : Query.t -> Query.t -> Relation.t -> phi:int array -> bool
(** The locality property, Eq. (17) in the proof of Theorem 4.4 /
    Lemma E.1: for every bag [t] of [q2]'s decomposition, every answer of
    the sub-query [Q_t] on [D = Π_{q1}(P)] (annotated) that decodes to
    [φ|χ(t)] lies in a single row of [P], i.e. belongs to
    [Π_{φ|χ(t)}(P)].  Holds when [q2] is acyclic (each bag is one atom)
    or when [q2] is chordal and [P] is a normal relation (Lemma E.1);
    Example E.2 shows it {e fails} for the parity relation — that failure
    is reproduced in the tests.
    @raise Invalid_argument if [P]'s arity differs from [q1]'s variable
    count or [phi] has the wrong length. *)
