(** The many-one reduction [Max-IIP ≤m BagCQC-A] (paper Section 5,
    Theorem 5.1), together with the uniformization of Lemma 5.3.

    Combined with the converse direction (Eq. 8, implemented by
    {!Containment.eq8} and justified by Theorems 4.2/4.4), this realizes
    the paper's first main result, Theorem 2.7:
    [Max-IIP ≡m BagCQC-A]. *)

open Bagcqc_entropy
open Bagcqc_cq

(** An [(n,p,q)]-uniform Max-IIP (Section 5.1): every side has the form
    [E = n·h(U) + Σ_{j=0..p} h(Yⱼ|Xⱼ) − q·h(V)] over the variables
    [V ∪ {U}], where [U] is the distinguished variable (index [n0]),
    [X₀ = ∅], the chain condition [Xⱼ ⊆ Yⱼ₋₁ ∩ Yⱼ] holds, and [U ∈ Xⱼ]
    for [j ≥ 1]. *)
type uniform = {
  n0 : int;  (** number of original variables; [U] has index [n0] *)
  n : int;   (** multiplicity of the [h(U)] term *)
  p : int;   (** chain length minus one (all chains have [p+1] parts) *)
  q : int;   (** coefficient of [h(UV)]; equals [n + 1] *)
  chains : (Varset.t * Varset.t) array array;
      (** [chains.(i).(j) = (Yᵢⱼ, Xᵢⱼ)] over variables [0..n0] *)
}

val uniformize : Maxii.t -> uniform
(** Lemma 5.3: polynomial-time transformation of an arbitrary Max-IIP
    into an equivalent uniform one (validity is preserved in both
    directions, over [Γ*] and in fact over every cone closed under the
    constructions in the proof — tests check equivalence over [Γn]).
    Rational coefficients are cleared side-by-side first. *)

val uniform_maxii : uniform -> Maxii.t
(** The uniform instance as a Max-II over [n0 + 1] variables, for
    validity checks. *)

val check_uniform : uniform -> (unit, string) result
(** Verify the syntactic invariants (chain condition, connectedness,
    equal chain lengths, [q = n+1]). *)

type constructed = {
  q1 : Query.t;
  q2 : Query.t;
  dec2 : Bagcqc_cq.Treedec.t;
      (** the paper's tree decomposition (29) of [Q₂]: the [R₀—...—R_p]
          chain plus one isolated bag per [Sⱼ] atom *)
}

val to_queries : uniform -> constructed
(** The Section 5.3 construction: Boolean queries [(Q₁, Q₂)] with [Q₂]
    acyclic, such that [Q₁ ⊑ Q₂] iff the uniform Max-IIP is valid.
    [Q₁] consists of [q] disjoint adorned copies (Lemma 5.4's adornment
    argument); [Q₂] is a chain [R₀ — ... — R_p] plus [n] isolated binary
    atoms [S₁..Sₙ]. *)

val reduce : Maxii.t -> constructed
(** [to_queries ∘ uniformize]. *)
