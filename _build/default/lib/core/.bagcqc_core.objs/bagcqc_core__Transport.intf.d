lib/core/transport.mli: Bagcqc_cq Bagcqc_entropy Bagcqc_num Bagcqc_relation Cexpr Dist Linexpr Logint Treedec Varset
