lib/core/reduction.ml: Array Bagcqc_cq Bagcqc_entropy Bagcqc_num Bigint Cexpr Format Hashtbl Linexpr List Maxii Printf Query Rat Treedec Varset
