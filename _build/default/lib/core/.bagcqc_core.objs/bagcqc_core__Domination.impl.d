lib/core/domination.ml: Bagcqc_cq Containment Query
