lib/core/domination.mli: Bagcqc_cq Containment Query
