lib/core/reduction.mli: Bagcqc_cq Bagcqc_entropy Maxii Query Varset
