lib/core/transport.ml: Array Bagcqc_cq Bagcqc_entropy Bagcqc_num Bagcqc_relation Cexpr Dist Linexpr List Logint Option Queue Rat Relation Treedec Value Varset
