lib/core/witness.mli: Bagcqc_cq Bagcqc_relation Containment Query Relation
