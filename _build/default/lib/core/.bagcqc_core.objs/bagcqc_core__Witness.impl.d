lib/core/witness.ml: Array Bagcqc_cq Bagcqc_entropy Bagcqc_relation Cones Containment Database Graph Hashtbl Hom List Maxii Polymatroid Query Relation Treedec Value Varset
