lib/core/containment.mli: Bagcqc_cq Bagcqc_entropy Bagcqc_num Bagcqc_relation Database Maxii Polymatroid Query Rat Relation Treedec Varset
