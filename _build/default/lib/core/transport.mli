(** The entropy-transport construction of Appendix D (proof of
    Theorem 4.2), executable.

    Given a database [D], the uniform distribution [p] on
    [hom(Q₁, D)], a homomorphism [φ : Q₂ → Q₁] and a tree decomposition
    [(T, χ)] of [Q₂], the paper stitches together the pullback
    distributions [Π_{φ|χ(t)}(p)] along the tree — each bag conditionally
    independent of the past given its separator — into a distribution
    [p'] on tuples over [vars(Q₂)] satisfying (Eqs. 48–49):

    - [support(p') ⊆ hom(Q₂, D)],
    - [h'(vars Q₂) = E_T(h') = (E_T ∘ φ)(h)],

    whence [log |hom(Q₂,D)| ≥ (E_T∘φ)(h)].  All probabilities are
    rational and the entropy equalities are checked {e exactly} in the
    test suite. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq

val stitched : Treedec.t -> phi:int array -> Dist.t -> nvars2:int -> Dist.t
(** [stitched t ~phi p ~nvars2]: the distribution [p'] over
    [nvars2]-tuples.  [t] must be a valid decomposition covering
    [0..nvars2-1]; [phi.(v)] is the [Q₁]-variable that [Q₂]-variable [v]
    maps to; [p] is a distribution over [Q₁]-variable tuples.
    @raise Invalid_argument if the bags do not cover [0..nvars2-1]. *)

val best_side :
  Treedec.t -> homs:int array list -> (Varset.t -> Logint.t) ->
  (int array * Logint.t) option
(** The maximizing homomorphism of Eq. 8's right-hand side: the [φ] (and
    value) maximizing [(E_T ∘ φ)(h)], compared exactly.  [None] if
    [homs] is empty. *)

val et_value : Treedec.t -> (Varset.t -> Logint.t) -> Logint.t
(** [E_T(h)] evaluated exactly. *)

val apply_phi : Cexpr.t -> int array -> Cexpr.t
(** [E ∘ φ] for an explicit variable map. *)

val eval_logint : (Varset.t -> Logint.t) -> Linexpr.t -> Logint.t
(** Evaluate a linear expression at an exact entropy vector. *)
