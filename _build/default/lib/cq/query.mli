(** Conjunctive queries over arbitrary relational vocabularies
    (paper Section 2.2).

    A query [Q(x) = A₁ ∧ ... ∧ A_k] has variables indexed [0 .. nvars-1];
    each atom [A_j = R(x_j)] carries a relation name and a function from
    attribute positions to variables (repeated variables are allowed, as
    the paper requires — its reduction in Section 5 constructs atoms such
    as [R₂(X₁,X₂,X₁,X₂,X₃)]).  Head variables are kept so that the
    Appendix A reduction to Boolean queries can be exercised; the core
    containment algorithms work on Boolean queries, as in the paper. *)

open Bagcqc_entropy

type atom = {
  rel : string;          (** relation symbol *)
  args : int array;      (** position [i] holds variable [args.(i)] *)
}

type t

val make : ?head:int list -> nvars:int -> ?names:string array -> atom list -> t
(** @raise Invalid_argument if an argument or head variable is out of
    range, if [names] has the wrong length, or if two atoms share a
    relation name with different arities. *)

val atom : string -> int list -> atom

val nvars : t -> int
val atoms : t -> atom list
val head : t -> int list
val is_boolean : t -> bool
val var_name : t -> int -> string
val var_names : t -> string array

val vocabulary : t -> (string * int) list
(** Relation symbols with arities, sorted by name. *)

val atom_vars : atom -> Varset.t
val all_vars : t -> Varset.t
(** [full (nvars q)] — every variable must occur in the body. *)

val dedup_atoms : t -> t
(** Remove duplicate atoms (sound under bag-set semantics, Sec. 2.2). *)

val connected_components : t -> Varset.t list
(** Variable sets of the connected components of the query's hypergraph
    (isolated components of the paper's Section 5 construction). *)

val disjoint_union : t -> t -> t
(** Conjunction with disjoint variables: the paper's [n · A] construction
    ([Q₁ ∧ Q₂] after shifting [Q₂]'s variables); heads concatenate. *)

val power : int -> t -> t
(** [power k q]: [k] disjoint copies of [q] (Lemma 2.2 of [21], used to
    reduce exponent-domination to domination).
    @raise Invalid_argument if [k < 1]. *)

val equal : t -> t -> bool
(** Structural equality (same indices, names ignored). *)

val pp : Format.formatter -> t -> unit
(** Datalog-ish rendering, e.g. [Q(x) :- R(x,y), S(y,y)]. *)

val to_string : t -> string
