(** Database instances: finite relational structures.

    A database maps relation symbols to {!Bagcqc_relation.Relation}s.  The
    constructions the paper performs on databases are provided here:
    canonical databases of queries (Chandra–Merlin), and the induced
    instance [Π_Q₁(P)] of a V-relation (Eq. 4), optionally with the
    value annotation [c ↦ ("X", c)] used in the proof of Theorem 4.4. *)

open Bagcqc_relation

type t

val empty : t
val add_relation : string -> Relation.t -> t -> t
(** Replaces any previous relation under that name. *)

val add_row : string -> Value.t array -> t -> t
(** Adds to the named relation, creating it if absent.
    @raise Invalid_argument on arity mismatch with existing rows. *)

val relation : t -> string -> arity:int -> Relation.t
(** The named relation, or an empty one of the given arity. *)

val relations : t -> (string * Relation.t) list
val total_rows : t -> int

val of_int_rows : (string * int list list) list -> t

val canonical : Query.t -> t
(** The canonical database of a query: one distinct constant per variable
    (the frozen query).  Used both for set-semantics containment and for
    counting [hom(Q₂, Q₁)] between queries. *)

val of_vrelation : ?annotate:bool -> Query.t -> Relation.t -> t
(** [of_vrelation q p] is [Π_Q(P)] from Eq. 4: for every atom [A] of [q],
    the generalized projection [Π_{vars(A)}(P)] is unioned into [rel(A)].
    [~annotate:true] first tags every value with its column's variable
    name ([c ↦ Tag(var, c)]), the trick that makes the proof of
    Theorem 4.4 work (see its footnote 7).
    @raise Invalid_argument if [Relation.arity p <> Query.nvars q]. *)

val pp : Format.formatter -> t -> unit
