open Bagcqc_entropy

type atom = { rel : string; args : int array }

type t = {
  head : int list;
  nvars : int;
  names : string array;
  atoms : atom list;
}

let atom rel args = { rel; args = Array.of_list args }

let make ?(head = []) ~nvars ?names atoms =
  if nvars < 0 || nvars > Varset.max_vars then
    invalid_arg "Query.make: variable count out of range";
  let names =
    match names with
    | None -> Array.init nvars Varset.default_name
    | Some a ->
      if Array.length a <> nvars then
        invalid_arg "Query.make: names length mismatch"
      else a
  in
  List.iter
    (fun a ->
      Array.iter
        (fun v ->
          if v < 0 || v >= nvars then
            invalid_arg "Query.make: atom argument out of range")
        a.args)
    atoms;
  List.iter
    (fun v ->
      if v < 0 || v >= nvars then
        invalid_arg "Query.make: head variable out of range")
    head;
  (* Every variable must occur in the body (paper Sec. 2.2); otherwise the
     homomorphism count would depend on the database domain. *)
  let occurring =
    List.fold_left
      (fun acc a ->
        Array.fold_left (fun acc v -> Varset.add v acc) acc a.args)
      Varset.empty atoms
  in
  if not (Varset.equal occurring (Varset.full nvars)) then
    invalid_arg "Query.make: every variable must occur in some atom";
  (* Consistent arities per relation symbol. *)
  let arities = Hashtbl.create 8 in
  List.iter
    (fun a ->
      match Hashtbl.find_opt arities a.rel with
      | None -> Hashtbl.add arities a.rel (Array.length a.args)
      | Some k ->
        if k <> Array.length a.args then
          invalid_arg ("Query.make: inconsistent arity for " ^ a.rel))
    atoms;
  { head; nvars; names; atoms }

let nvars q = q.nvars
let atoms q = q.atoms
let head q = q.head
let is_boolean q = q.head = []
let var_name q i = q.names.(i)
let var_names q = Array.copy q.names

let vocabulary q =
  let tbl = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace tbl a.rel (Array.length a.args)) q.atoms;
  List.sort compare (Hashtbl.fold (fun r k acc -> (r, k) :: acc) tbl [])

let atom_vars a =
  Array.fold_left (fun acc v -> Varset.add v acc) Varset.empty a.args

let all_vars q = Varset.full q.nvars

let dedup_atoms q =
  let seen = Hashtbl.create 16 in
  let atoms =
    List.filter
      (fun a ->
        let key = (a.rel, Array.to_list a.args) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      q.atoms
  in
  { q with atoms }

let connected_components q =
  (* Union-find over variables, merged within each atom. *)
  let parent = Array.init q.nvars (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter
    (fun a ->
      match Array.to_list a.args with
      | [] -> ()
      | v0 :: rest -> List.iter (union v0) rest)
    q.atoms;
  let comps = Hashtbl.create 8 in
  for i = 0 to q.nvars - 1 do
    let r = find i in
    let prev = try Hashtbl.find comps r with Not_found -> Varset.empty in
    Hashtbl.replace comps r (Varset.add i prev)
  done;
  List.sort compare (Hashtbl.fold (fun _ s acc -> s :: acc) comps [])

let shift_atom k a = { a with args = Array.map (fun v -> v + k) a.args }

let disjoint_union q1 q2 =
  let k = q1.nvars in
  make
    ~head:(q1.head @ List.map (fun v -> v + k) q2.head)
    ~nvars:(q1.nvars + q2.nvars)
    ~names:
      (Array.append q1.names
         (Array.map (fun s -> s ^ "'") q2.names))
    (q1.atoms @ List.map (shift_atom k) q2.atoms)

let power k q =
  if k < 1 then invalid_arg "Query.power";
  let rec go acc i = if i >= k then acc else go (disjoint_union acc q) (i + 1) in
  go q 1

let equal a b =
  a.head = b.head && a.nvars = b.nvars
  && List.length a.atoms = List.length b.atoms
  && List.for_all2
       (fun x y -> x.rel = y.rel && x.args = y.args)
       a.atoms b.atoms

let pp fmt q =
  Format.fprintf fmt "Q(%s) :- "
    (String.concat "," (List.map (fun v -> q.names.(v)) q.head));
  if q.atoms = [] then Format.pp_print_string fmt "true"
  else
    List.iteri
      (fun i a ->
        if i > 0 then Format.pp_print_string fmt ", ";
        Format.fprintf fmt "%s(%s)" a.rel
          (String.concat ","
             (List.map (fun v -> q.names.(v)) (Array.to_list a.args))))
      q.atoms

let to_string q = Format.asprintf "%a" pp q
