lib/cq/hom.mli: Bagcqc_relation Database Query Value
