lib/cq/reductions.mli: Database Query
