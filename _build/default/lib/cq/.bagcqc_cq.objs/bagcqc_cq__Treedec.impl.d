lib/cq/treedec.ml: Array Bagcqc_entropy Bagcqc_num Cexpr Format Fun Graph Hashtbl Linexpr List Query Queue Varset
