lib/cq/hom.ml: Array Bagcqc_relation Database Hashtbl List Option Query Relation Value
