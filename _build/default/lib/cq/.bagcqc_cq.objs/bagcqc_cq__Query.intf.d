lib/cq/query.mli: Bagcqc_entropy Format Varset
