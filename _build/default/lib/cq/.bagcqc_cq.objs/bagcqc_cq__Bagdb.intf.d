lib/cq/bagdb.mli: Bagcqc_relation Database Query Value
