lib/cq/reductions.ml: Array Bagcqc_relation Database Fun Hashtbl List Query Relation String
