lib/cq/treedec.mli: Bagcqc_entropy Cexpr Format Graph Linexpr Query Varset
