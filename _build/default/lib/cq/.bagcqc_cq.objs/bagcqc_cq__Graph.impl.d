lib/cq/graph.ml: Array Bagcqc_entropy List Query Varset
