lib/cq/database.ml: Array Bagcqc_relation Format List Map Query Relation String Value
