lib/cq/database.mli: Bagcqc_relation Format Query Relation Value
