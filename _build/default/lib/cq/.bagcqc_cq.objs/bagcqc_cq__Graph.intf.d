lib/cq/graph.mli: Bagcqc_entropy Query Varset
