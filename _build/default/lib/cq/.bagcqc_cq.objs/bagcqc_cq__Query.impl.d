lib/cq/query.ml: Array Bagcqc_entropy Format Hashtbl List String Varset
