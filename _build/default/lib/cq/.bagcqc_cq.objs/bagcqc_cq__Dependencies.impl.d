lib/cq/dependencies.ml: Array Bagcqc_entropy Bagcqc_num Bagcqc_relation Cexpr Linexpr List Logint Option Relation Treedec Value Varset
