lib/cq/bagdb.ml: Array Bagcqc_relation Database Hom List Map Printf Query Stdlib String Value
