lib/cq/dependencies.mli: Bagcqc_entropy Bagcqc_relation Relation Treedec Varset
