lib/cq/parser.ml: Array Hashtbl List Option Printf Query String
