(** Undirected graphs on integer vertices, and the chordality toolkit.

    The paper's second main result hinges on graph structure: a query is
    {e chordal} if its Gaifman graph is chordal, and a {e junction tree}
    is a tree decomposition whose bags are the maximal cliques
    (Section 3.1).  Chordality is decided by maximum-cardinality search:
    a graph is chordal iff the MCS order reversed is a perfect
    elimination order. *)

open Bagcqc_entropy

type t

val make : int -> (int * int) list -> t
(** [make n edges]; self-loops are ignored, duplicates merged.
    @raise Invalid_argument on vertices outside [0..n-1]. *)

val n_vertices : t -> int
val neighbours : t -> int -> Varset.t
val has_edge : t -> int -> int -> bool
val edges : t -> (int * int) list

val gaifman : Query.t -> t
(** Vertices = query variables; edges join co-occurring variables. *)

val mcs_order : t -> int array
(** A maximum-cardinality search order (position [k] holds the k-th
    visited vertex). *)

val perfect_elimination_order : t -> int array option
(** A PEO if the graph is chordal ([Some] of an order [v₀.. v_{n-1}] where
    each [vᵢ]'s later neighbours form a clique), [None] otherwise. *)

val is_chordal : t -> bool

val maximal_cliques_chordal : t -> Varset.t list
(** The maximal cliques of a {e chordal} graph (linearly many), derived
    from a PEO.  @raise Invalid_argument if the graph is not chordal. *)

val is_clique : t -> Varset.t -> bool

val min_fill_triangulation : t -> t
(** A chordal supergraph via the min-fill heuristic (used to build valid —
    not necessarily optimal — tree decompositions of arbitrary queries). *)

val connected_components : t -> Varset.t list
