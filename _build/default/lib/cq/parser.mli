(** Concrete syntax for conjunctive queries.

    Datalog-style:
    {[
      Q(x,z) :- R(x,y), S(y,z), T(z,z).
      Q() :- R(x,y), R(y,x)
      R(x,y), S(y,z)                      (* headless = Boolean *)
    ]}
    Variables are identifiers; their indices are assigned in order of first
    occurrence (head first).  The trailing period is optional. *)

exception Parse_error of string
(** Carries a human-readable position + message. *)

val parse : string -> Query.t
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (Query.t, string) result
