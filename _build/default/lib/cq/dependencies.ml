open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation

let entropy p = Relation.entropy_logint p

let eval_linexpr p e =
  Linexpr.eval_general ~zero:Logint.zero ~add:Logint.add ~scale:Logint.scale
    (entropy p) e

(* ---------------- functional dependencies ---------------- *)

let fd_holds p ~x ~y =
  match Relation.degree p ~y ~x with
  | Some d -> d <= 1
  | None -> false

let fd_holds_entropy p ~x ~y =
  let h = entropy p in
  Logint.sign (Logint.sub (h (Varset.union x y)) (h x)) = 0

(* ---------------- joins of projections ---------------- *)

let join_of_projections p bags =
  let arity = Relation.arity p in
  let union = List.fold_left Varset.union Varset.empty bags in
  if not (Varset.equal union (Varset.full arity)) then
    invalid_arg "Dependencies.join_of_projections: bags do not cover all columns";
  let extend partials bag =
    let cols = Varset.to_list bag in
    let rows = Relation.to_list (Relation.project_set bag p) in
    List.concat_map
      (fun (partial : Value.t option array) ->
        List.filter_map
          (fun row ->
            (* row.(i) corresponds to cols_i. *)
            let ok = ref true in
            let next = Array.copy partial in
            List.iteri
              (fun i c ->
                match next.(c) with
                | Some v -> if not (Value.equal v row.(i)) then ok := false
                | None -> next.(c) <- Some row.(i))
              cols;
            if !ok then Some next else None)
          rows)
      partials
  in
  let partials =
    List.fold_left extend [ Array.make arity None ] bags
  in
  Relation.of_list ~arity
    (List.map (fun partial -> Array.map Option.get partial) partials)

(* ---------------- multivalued dependencies ---------------- *)

let mvd_holds p ~x ~y =
  let arity = Relation.arity p in
  let full = Varset.full arity in
  let xy = Varset.union x y in
  let xz = Varset.union x (Varset.diff full y) in
  if Relation.is_empty p then true
  else Relation.equal p (join_of_projections p [ xy; xz ])

let mvd_holds_entropy p ~x ~y =
  let full = Varset.full (Relation.arity p) in
  let z = Varset.diff full (Varset.union x y) in
  let h = entropy p in
  (* I(Y; Z | X) = h(XY) + h(XZ) - h(XYZ) - h(X). *)
  let v =
    Logint.sub
      (Logint.add (h (Varset.union x y)) (h (Varset.union x z)))
      (Logint.add (h (Varset.union (Varset.union x y) z)) (h x))
  in
  Logint.sign v = 0

(* ---------------- lossless joins ---------------- *)

let lossless_join p t =
  let bags = Array.to_list (Treedec.bags t) in
  if Relation.is_empty p then true
  else Relation.equal p (join_of_projections p bags)

let lossless_join_entropy p t =
  let et = Cexpr.to_linexpr (Treedec.et t) in
  let h = entropy p in
  Logint.sign (Logint.sub (eval_linexpr p et) (h (Varset.full (Relation.arity p)))) = 0
