open Bagcqc_entropy

type t = { n : int; adj : Varset.t array }

let make n edges =
  if n < 0 || n > Varset.max_vars then invalid_arg "Graph.make: size out of range";
  let adj = Array.make n Varset.empty in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Graph.make: vertex out of range";
      if a <> b then begin
        adj.(a) <- Varset.add b adj.(a);
        adj.(b) <- Varset.add a adj.(b)
      end)
    edges;
  { n; adj }

let n_vertices g = g.n
let neighbours g v = g.adj.(v)
let has_edge g a b = Varset.mem b g.adj.(a)

let edges g =
  let acc = ref [] in
  for a = 0 to g.n - 1 do
    Varset.fold_elements
      (fun b () -> if b > a then acc := (a, b) :: !acc)
      g.adj.(a) ()
  done;
  List.rev !acc

let gaifman q =
  let edges =
    List.concat_map
      (fun a ->
        let vars = Varset.to_list (Query.atom_vars a) in
        List.concat_map
          (fun x -> List.filter_map (fun y -> if y > x then Some (x, y) else None) vars)
          vars)
      (Query.atoms q)
  in
  make (Query.nvars q) edges

let mcs_order g =
  let n = g.n in
  let visited = Array.make n false in
  let weight = Array.make n 0 in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    (* Pick the unvisited vertex with the largest weight. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not visited.(v)) && (!best < 0 || weight.(v) > weight.(!best)) then
        best := v
    done;
    let v = !best in
    visited.(v) <- true;
    order.(k) <- v;
    Varset.fold_elements
      (fun u () -> if not visited.(u) then weight.(u) <- weight.(u) + 1)
      g.adj.(v) ()
  done;
  order

let is_clique g s =
  let ok = ref true in
  Varset.fold_elements
    (fun a () ->
      Varset.fold_elements
        (fun b () -> if a < b && not (has_edge g a b) then ok := false)
        s ())
    s ();
  !ok

let perfect_elimination_order g =
  let n = g.n in
  let order = mcs_order g in
  (* Reverse MCS order is a candidate PEO; verify it. *)
  let peo = Array.init n (fun i -> order.(n - 1 - i)) in
  let position = Array.make n 0 in
  Array.iteri (fun i v -> position.(v) <- i) peo;
  let ok = ref true in
  Array.iteri
    (fun i v ->
      (* Later neighbours of v must form a clique. *)
      let later =
        Varset.fold_elements
          (fun u acc -> if position.(u) > i then Varset.add u acc else acc)
          g.adj.(v) Varset.empty
      in
      if not (is_clique g later) then ok := false)
    peo;
  if !ok then Some peo else None

let is_chordal g = perfect_elimination_order g <> None

let maximal_cliques_chordal g =
  match perfect_elimination_order g with
  | None -> invalid_arg "Graph.maximal_cliques_chordal: graph is not chordal"
  | Some peo ->
    let n = g.n in
    let position = Array.make n 0 in
    Array.iteri (fun i v -> position.(v) <- i) peo;
    (* Candidate cliques: v together with its later neighbours. *)
    let candidates =
      Array.to_list
        (Array.mapi
           (fun i v ->
             Varset.add v
               (Varset.fold_elements
                  (fun u acc ->
                    if position.(u) > i then Varset.add u acc else acc)
                  g.adj.(v) Varset.empty))
           peo)
    in
    (* Keep only maximal ones. *)
    List.filter
      (fun c ->
        not
          (List.exists
             (fun c' -> (not (Varset.equal c c')) && Varset.subset c c')
             candidates))
      candidates
    |> List.sort_uniq compare

let min_fill_triangulation g =
  let n = g.n in
  let adj = Array.map (fun s -> s) g.adj in
  let eliminated = Array.make n false in
  let fill_edges = ref [] in
  let fill_count v =
    (* Missing edges among v's uneliminated neighbours. *)
    let ns =
      Varset.fold_elements
        (fun u acc -> if eliminated.(u) then acc else Varset.add u acc)
        adj.(v) Varset.empty
    in
    let cnt = ref 0 in
    Varset.fold_elements
      (fun a () ->
        Varset.fold_elements
          (fun b () -> if a < b && not (Varset.mem b adj.(a)) then incr cnt)
          ns ())
      ns ();
    !cnt
  in
  for _ = 1 to n do
    let best = ref (-1) and best_fill = ref max_int in
    for v = 0 to n - 1 do
      if not eliminated.(v) then begin
        let f = fill_count v in
        if f < !best_fill then begin
          best := v;
          best_fill := f
        end
      end
    done;
    if !best >= 0 then begin
      let v = !best in
      let ns =
        Varset.fold_elements
          (fun u acc -> if eliminated.(u) then acc else Varset.add u acc)
          adj.(v) Varset.empty
      in
      Varset.fold_elements
        (fun a () ->
          Varset.fold_elements
            (fun b () ->
              if a < b && not (Varset.mem b adj.(a)) then begin
                adj.(a) <- Varset.add b adj.(a);
                adj.(b) <- Varset.add a adj.(b);
                fill_edges := (a, b) :: !fill_edges
              end)
            ns ())
        ns ();
      eliminated.(v) <- true
    end
  done;
  make n (edges g @ !fill_edges)

let connected_components g =
  let n = g.n in
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let comp = ref Varset.empty in
      let rec dfs u =
        if not seen.(u) then begin
          seen.(u) <- true;
          comp := Varset.add u !comp;
          Varset.fold_elements (fun w () -> dfs w) g.adj.(u) ()
        end
      in
      dfs v;
      comps := !comp :: !comps
    end
  done;
  List.rev !comps
