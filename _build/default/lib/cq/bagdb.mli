(** Bag databases and the bag-bag ⟶ bag-set reduction (paper Section 2.2).

    Under the {e bag-bag} variant of containment the input database may
    contain duplicates, and a valuation contributes the product of the
    multiplicities of the tuples its atoms map to; note that repeated
    atoms then change a query's meaning.  Jayram–Kolaitis–Vee showed the
    bag-bag variant reduces to the bag-set variant "by adding a new
    attribute to each relation": give every stored copy of a tuple a
    distinct id, and give every {e atom occurrence} a fresh existential
    id variable.  Both halves are implemented here, and the test suite
    checks the reduction identity
    [count_bag q db = Hom.count (lift_query q) (to_set_database db)]
    on random instances. *)

open Bagcqc_relation

type t
(** A bag database: relation name ↦ tuple ↦ multiplicity. *)

val empty : t

val add_row : ?count:int -> string -> Value.t array -> t -> t
(** Adds [count] (default 1) copies.
    @raise Invalid_argument on non-positive [count] or arity mismatch. *)

val of_int_rows : (string * (int list * int) list) list -> t
(** Rows with multiplicities. *)

val multiplicity : t -> string -> Value.t array -> int

val support : t -> Database.t
(** The underlying set database (multiplicities dropped). *)

val count_bag : Query.t -> t -> int
(** The bag-bag value of the (Boolean reading of the) query:
    [Σ_{f ∈ hom(Q, support)} Π_{A ∈ atoms(Q)} multiplicity(f(A))]. *)

val to_set_database : t -> Database.t
(** Each copy of a tuple becomes a distinct tuple with an id value
    appended as a last column. *)

val lift_query : Query.t -> Query.t
(** Appends a fresh existential id variable to every atom occurrence
    (so duplicates of an atom become distinct constraints, as bag-bag
    semantics demands). *)
