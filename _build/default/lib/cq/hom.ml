open Bagcqc_relation

exception Limit_reached

(* Backtracking homomorphism search.  [assignment] maps query variables to
   values (None = unbound).  At each step pick the atom with the most bound
   variables (ties: smaller relation), scan its relation for rows
   consistent with the assignment, bind and recurse. *)

let iter_homs q db yield =
  let nv = Query.nvars q in
  let assignment : Value.t option array = Array.make nv None in
  let atoms =
    List.map
      (fun a ->
        let arity = Array.length a.Query.args in
        (a, Relation.to_list (Database.relation db a.Query.rel ~arity)))
      (Query.atoms q)
  in
  let bound_count a =
    Array.fold_left
      (fun acc v -> if assignment.(v) <> None then acc + 1 else acc)
      0 a.Query.args
  in
  let rec go remaining =
    match remaining with
    | [] ->
      (* Every variable occurs in some atom (all atoms processed), except
         for queries with variables in no atom — those are rejected at
         query construction, but guard anyway. *)
      if Array.for_all Option.is_some assignment then
        yield (Array.map Option.get assignment)
    | _ :: _ ->
      (* Most-constrained atom first. *)
      let best =
        List.fold_left
          (fun best ((a, rows) as cand) ->
            match best with
            | None -> Some cand
            | Some (b, brows) ->
              let ca = bound_count a and cb = bound_count b in
              if ca > cb || (ca = cb && List.length rows < List.length brows)
              then Some cand
              else best)
          None remaining
      in
      let (atom, rows) = Option.get best in
      let rest = List.filter (fun (a, _) -> a != atom) remaining in
      List.iter
        (fun row ->
          (* Try to unify the row with the atom under the current
             assignment; record which variables we newly bind. *)
          let newly = ref [] in
          let ok = ref true in
          Array.iteri
            (fun pos v ->
              if !ok then
                match assignment.(v) with
                | Some x -> if not (Value.equal x row.(pos)) then ok := false
                | None ->
                  assignment.(v) <- Some row.(pos);
                  newly := v :: !newly)
            atom.Query.args;
          if !ok then go rest;
          List.iter (fun v -> assignment.(v) <- None) !newly)
        rows
  in
  go atoms

let count ?limit q db =
  let n = ref 0 in
  (try
     iter_homs q db (fun _ ->
         incr n;
         match limit with
         | Some l when !n >= l -> raise Limit_reached
         | _ -> ())
   with Limit_reached -> ());
  !n

let exists q db = count ~limit:1 q db > 0

let enumerate q db =
  let acc = ref [] in
  iter_homs q db (fun h -> acc := Array.copy h :: !acc);
  List.rev !acc

let answers q db =
  let head = Array.of_list (Query.head q) in
  let tbl = Hashtbl.create 64 in
  iter_homs q db (fun h ->
      let key = Array.map (fun v -> h.(v)) head in
      let prev = try Hashtbl.find tbl key with Not_found -> 0 in
      Hashtbl.replace tbl key (prev + 1));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let contained_on q1 q2 db =
  if List.length (Query.head q1) <> List.length (Query.head q2) then
    invalid_arg "Hom.contained_on: head arity mismatch";
  let a2 = answers q2 db in
  let find key =
    match List.find_opt (fun (k, _) -> k = key) a2 with
    | Some (_, c) -> c
    | None -> 0
  in
  List.for_all (fun (key, c1) -> c1 <= find key) (answers q1 db)

(* Queries as structures: the canonical database uses Str values carrying
   variable names, which we decode back to indices. *)

let boolean q = Query.make ~nvars:(Query.nvars q) ~names:(Query.var_names q) (Query.atoms q)

let enumerate_between qa qb =
  let db = Database.canonical qb in
  let name_to_index = Hashtbl.create 16 in
  Array.iteri
    (fun i name -> Hashtbl.replace name_to_index name i)
    (Query.var_names qb);
  let decode v =
    match v with
    | Value.Str s -> Hashtbl.find name_to_index s
    | Value.Int _ | Value.Pair _ | Value.Tag _ | Value.Tuple _ ->
      invalid_arg "Hom.enumerate_between: unexpected value"
  in
  List.map (Array.map decode) (enumerate (boolean qa) db)

let count_between qa qb = count (boolean qa) (Database.canonical qb)
