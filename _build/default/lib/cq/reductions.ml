open Bagcqc_relation

let head_rel i = "__head_" ^ string_of_int i

let booleanize q1 q2 =
  let h1 = Query.head q1 and h2 = Query.head q2 in
  if List.length h1 <> List.length h2 then
    invalid_arg "Reductions.booleanize: head arity mismatch";
  let extend q hd =
    let extra = List.mapi (fun i v -> Query.atom (head_rel i) [ v ]) hd in
    Query.make ~nvars:(Query.nvars q) ~names:(Query.var_names q)
      (Query.atoms q @ extra)
  in
  (extend q1 h1, extend q2 h2)

let proj_rel rel positions =
  rel ^ "__" ^ String.concat "_" (List.map string_of_int positions)

let proper_position_subsets arity =
  (* Nonempty proper subsets of positions [0..arity-1], as sorted lists. *)
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun l -> x :: l) s
  in
  subsets (List.init arity Fun.id)
  |> List.filter (fun l -> l <> [] && List.length l < arity)

let atom_closure q =
  let seen = Hashtbl.create 16 in
  let extra =
    List.concat_map
      (fun a ->
        let arity = Array.length a.Query.args in
        List.filter_map
          (fun positions ->
            let rel = proj_rel a.Query.rel positions in
            let args = List.map (fun p -> a.Query.args.(p)) positions in
            let key = (rel, args) in
            if Hashtbl.mem seen key then None
            else begin
              Hashtbl.add seen key ();
              Some (Query.atom rel args)
            end)
          (proper_position_subsets arity))
      (Query.atoms q)
  in
  Query.make ~head:(Query.head q) ~nvars:(Query.nvars q)
    ~names:(Query.var_names q)
    (Query.atoms q @ extra)

let close_database q db =
  List.fold_left
    (fun db (rel, arity) ->
      let r = Database.relation db rel ~arity in
      List.fold_left
        (fun db positions ->
          let proj = Relation.project (Array.of_list positions) r in
          Database.add_relation (proj_rel rel positions) proj db)
        db
        (proper_position_subsets arity))
    db (Query.vocabulary q)
