(** Tree decompositions, junction trees, and the expression [E_T].

    Definitions from the paper (Definition 2.6, Section 3.1):
    a tree decomposition of a query is a forest of bags satisfying running
    intersection and atom coverage; a query is {e acyclic} if some tree
    decomposition uses only atom variable-sets as bags; a {e junction
    tree} of a chordal query is a tree decomposition whose bags are the
    maximal cliques of the Gaifman graph; a decomposition is {e simple} if
    adjacent bags share at most one variable, {e totally disconnected} if
    they share none.

    [E_T] is the paper's "remarkable formula" (Eq. 7):
    [E_T(h) = Σ_t h(χ(t) | χ(t) ∩ χ(parent t))], independent of the
    choice of roots; equivalently
    [Σ_t h(χ(t)) − Σ_{(t,t')∈edges} h(χ(t) ∩ χ(t'))]. *)

open Bagcqc_entropy

type t

val make : bags:Varset.t array -> edges:(int * int) list -> t
(** @raise Invalid_argument if [edges] mention nodes out of range or
    contain a cycle (the node graph must be a forest). *)

val bags : t -> Varset.t array
val tree_edges : t -> (int * int) list
val n_nodes : t -> int
val width : t -> int
(** Max bag size minus one. *)

val is_valid_for : Query.t -> t -> bool
(** Running intersection + coverage of every atom (Definition 2.6). *)

val is_simple : t -> bool
val is_totally_disconnected : t -> bool

val et : t -> Cexpr.t
(** Eq. 7, rooting each forest component at its smallest node.  The
    result is a conditional linear expression; it is {e simple} in the
    Theorem 3.6 sense exactly when the decomposition is simple. *)

val et_via_separators : t -> Linexpr.t
(** The root-free form [Σ_t h(χ(t)) − Σ_{edges} h(χ(t)∩χ(t'))]; equal to
    the flattening of {!et} (checked by tests). *)

val et_inclusion_exclusion : t -> Linexpr.t
(** Lee's inclusion–exclusion form, Eq. (32) of the paper:
    [E_T = Σ_{∅≠S⊆nodes} (−1)^(1+#S) · CC(T∩S) · h(χ(S))] where
    [χ(S) = ⋂_{t∈S} χ(t)] and [CC(T∩S)] counts the connected components
    of the subgraph of [T] induced by the nodes whose bag meets
    [⋃_{t∈S} χ(t)].  Exponential in the number of nodes; equal to {!et}
    on valid tree decompositions (checked by tests). *)

(** {2 Construction} *)

val prune : t -> t
(** Remove redundant nodes: while some bag is contained in an adjacent
    bag, contract it into that neighbour.  Preserves validity, [E_T]
    evaluates the same on the pruned decomposition (the removed node
    contributes [h(χ(t)|χ(t)) = 0]). *)

val junction_tree : Graph.t -> t option
(** Maximal cliques of a chordal graph, joined by a maximum-weight
    spanning forest on separator sizes (only positive separators are
    joined, so distinct connected components stay distinct trees).
    [None] if the graph is not chordal. *)

val join_tree : Query.t -> t option
(** GYO reduction: [Some] of a tree decomposition whose bags are atom
    variable-sets iff the query is α-acyclic. *)

val is_acyclic : Query.t -> bool

val of_query : Query.t -> t
(** A valid tree decomposition for any query: the GYO join tree if
    acyclic, else the junction tree of the (possibly min-fill
    triangulated) Gaifman graph. *)

val pp : Format.formatter -> t -> unit
