(** Information-theoretic characterizations of database dependencies
    (Tony Lee 1987, as retold in Section 6 of the paper).

    For the uniform distribution on a relation [P] with entropy [h]:

    - a functional dependency [X → Y] holds iff [h(Y|X) = 0];
    - a multivalued dependency [X ↠ Y] holds iff [I(Y; V−XY | X) = 0];
    - [P] decomposes losslessly along an (acyclic) join tree [T] iff
      [E_T(h) = h(V)].

    Each dependency is implemented twice — by its relational-algebra
    definition and by its entropy characterization (decided {e exactly}
    with {!Bagcqc_num.Logint} arithmetic) — and the test suite checks the
    two agree on random relations, which is Lee's theorem run as a
    property test. *)

open Bagcqc_entropy
open Bagcqc_relation

(** {2 Functional dependencies} *)

val fd_holds : Relation.t -> x:Varset.t -> y:Varset.t -> bool
(** Relational definition: any two tuples agreeing on [x] agree on [y]. *)

val fd_holds_entropy : Relation.t -> x:Varset.t -> y:Varset.t -> bool
(** Lee's characterization: [h(Y|X) = 0], decided exactly. *)

(** {2 Multivalued dependencies} *)

val mvd_holds : Relation.t -> x:Varset.t -> y:Varset.t -> bool
(** Relational definition: [P = Π_{XY}(P) ⋈ Π_{X(V−Y)}(P)]. *)

val mvd_holds_entropy : Relation.t -> x:Varset.t -> y:Varset.t -> bool
(** Lee's characterization: [I(Y; V−XY | X) = 0], decided exactly. *)

(** {2 Lossless join decompositions} *)

val join_of_projections : Relation.t -> Varset.t list -> Relation.t
(** [⋈_B Π_B(P)] over the given bags, as a relation over the union of the
    bags' columns (in increasing column order).
    @raise Invalid_argument if the bags do not cover all columns. *)

val lossless_join : Relation.t -> Treedec.t -> bool
(** Relational definition: [P = ⋈_t Π_{χ(t)}(P)] for the decomposition's
    bags.  (True for any valid tree decomposition iff the decomposition
    is lossless for [P].) *)

val lossless_join_entropy : Relation.t -> Treedec.t -> bool
(** Lee's characterization: [E_T(h) = h(V)], decided exactly. *)
