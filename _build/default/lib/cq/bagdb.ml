open Bagcqc_relation

module SMap = Map.Make (String)

module Row = struct
  type t = Value.t array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else
      let rec loop i =
        if i >= la then 0
        else
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0
end

module RMap = Map.Make (Row)

type t = int RMap.t SMap.t

let empty = SMap.empty

let add_row ?(count = 1) name row db =
  if count <= 0 then invalid_arg "Bagdb.add_row: count must be positive";
  let rel = match SMap.find_opt name db with Some r -> r | None -> RMap.empty in
  (match RMap.choose_opt rel with
   | Some (r0, _) when Array.length r0 <> Array.length row ->
     invalid_arg "Bagdb.add_row: arity mismatch"
   | Some _ | None -> ());
  let rel =
    RMap.update row
      (function None -> Some count | Some c -> Some (c + count))
      rel
  in
  SMap.add name rel db

let of_int_rows spec =
  List.fold_left
    (fun db (name, rows) ->
      List.fold_left
        (fun db (row, count) ->
          add_row ~count name
            (Array.of_list (List.map (fun i -> Value.Int i) row))
            db)
        db rows)
    empty spec

let multiplicity db name row =
  match SMap.find_opt name db with
  | None -> 0
  | Some rel -> (match RMap.find_opt row rel with Some c -> c | None -> 0)

let support db =
  SMap.fold
    (fun name rel acc ->
      RMap.fold (fun row _ acc -> Database.add_row name row acc) rel acc)
    db Database.empty

let count_bag q db =
  let atoms = Query.atoms q in
  let set_db = support db in
  List.fold_left
    (fun acc f ->
      let weight =
        List.fold_left
          (fun w a ->
            let image = Array.map (fun v -> f.(v)) a.Query.args in
            w * multiplicity db a.Query.rel image)
          1 atoms
      in
      acc + weight)
    0
    (Hom.enumerate q set_db)

let to_set_database db =
  SMap.fold
    (fun name rel acc ->
      RMap.fold
        (fun row count acc ->
          let rec add acc i =
            if i >= count then acc
            else
              add
                (Database.add_row name (Array.append row [| Value.Int i |]) acc)
                (i + 1)
          in
          add acc 0)
        rel acc)
    db Database.empty

let lift_query q =
  let nv = Query.nvars q in
  let atoms = Query.atoms q in
  let lifted =
    List.mapi
      (fun i a ->
        { a with Query.args = Array.append a.Query.args [| nv + i |] })
      atoms
  in
  let extra = List.length atoms in
  let names =
    Array.append (Query.var_names q)
      (Array.init extra (fun i -> Printf.sprintf "__id%d" i))
  in
  Query.make ~head:(Query.head q) ~nvars:(nv + extra) ~names lifted
