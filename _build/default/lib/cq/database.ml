open Bagcqc_relation

module SMap = Map.Make (String)

type t = Relation.t SMap.t

let empty = SMap.empty

let add_relation name r db = SMap.add name r db

let add_row name row db =
  let r =
    match SMap.find_opt name db with
    | Some r -> Relation.add row r
    | None -> Relation.of_list ~arity:(Array.length row) [ row ]
  in
  SMap.add name r db

let relation db name ~arity =
  match SMap.find_opt name db with
  | Some r -> r
  | None -> Relation.of_list ~arity []

let relations db = SMap.bindings db

let total_rows db =
  SMap.fold (fun _ r acc -> acc + Relation.cardinal r) db 0

let of_int_rows l =
  List.fold_left
    (fun db (name, rows) ->
      match rows with
      | [] -> db
      | first :: _ ->
        add_relation name
          (Relation.of_int_rows ~arity:(List.length first) rows)
          db)
    empty l

let canonical q =
  List.fold_left
    (fun db a ->
      add_row a.Query.rel
        (Array.map (fun v -> Value.Str (Query.var_name q v)) a.Query.args)
        db)
    empty (Query.atoms q)

let of_vrelation ?(annotate = false) q p =
  if Relation.arity p <> Query.nvars q then
    invalid_arg "Database.of_vrelation: arity must equal the query's variable count";
  let p =
    if not annotate then p
    else
      Relation.of_list ~arity:(Relation.arity p)
        (List.map
           (fun row ->
             Array.mapi (fun i v -> Value.Tag (Query.var_name q i, v)) row)
           (Relation.to_list p))
  in
  List.fold_left
    (fun db a ->
      let proj = Relation.project a.Query.args p in
      let prev = relation db a.Query.rel ~arity:(Relation.arity proj) in
      add_relation a.Query.rel (Relation.union prev proj) db)
    empty (Query.atoms q)

let pp fmt db =
  SMap.iter
    (fun name r -> Format.fprintf fmt "%s = %a@." name Relation.pp r)
    db
