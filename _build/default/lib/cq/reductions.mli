(** Query transformations from Appendix A of the paper.

    - {!booleanize}: Lemma A.1 — containment with head variables reduces
      to Boolean containment by adding fresh unary "head" atoms [Uᵢ(xᵢ)];
      the reduction preserves acyclicity, chordality and simplicity.
    - {!atom_closure}: Fact A.3 — adding, for every atom [R(x̄)] and
      proper subset [S] of its positions, a projection atom [R_S(x̄_S)]
      under a fresh name, so that every bag of a tree decomposition is
      covered by atoms ([vars(Q_t) = χ(t)]).  Containment is preserved
      when both queries are closed over the same vocabulary. *)

val booleanize : Query.t -> Query.t -> Query.t * Query.t
(** [booleanize q1 q2] implements Lemma A.1.  Head variable lists must
    have equal length; the [i]-th head variables of both queries get the
    same fresh unary relation [__head_i].
    @raise Invalid_argument if head lengths differ. *)

val atom_closure : Query.t -> Query.t
(** Fact A.3 for one query.  Projection relation names are deterministic
    ([R__S] with [S] the position list), so closing two queries over a
    shared vocabulary is consistent. *)

val close_database : Query.t -> Database.t -> Database.t
(** Extend a database with the projection relations matching
    {!atom_closure} ([R_S := Π_S(R)]), per the ⇐ direction of the proof
    of Fact A.3. *)
