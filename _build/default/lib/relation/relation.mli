(** Finite relations (sets of fixed-arity tuples) and the special relation
    classes of the paper.

    A {e V-relation} [P ⊆ D^V] (Section 3.1) is a relation whose columns
    are indexed by the variables of a query; we index columns by integers
    [0 .. arity-1], matching {!Bagcqc_entropy.Varset} masks.  The classes
    from Definition 3.3 / Appendix B (Table 1):

    - {e product} relations [∏ₓ Sₓ] — entropy is modular;
    - {e step} relations [P_W] (two rows) — entropy is the step function [h_W];
    - {e normal} relations — domain products of step relations,
      equivalently [{ψ·f}] images of products — entropy is normal;
    - {e domain products} [P₁ ⊗ P₂] — entropies add;
    - {e totally uniform} relations (Definition 4.5) — every marginal of
      the uniform distribution is uniform. *)

open Bagcqc_num
open Bagcqc_entropy

type t

val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val of_list : arity:int -> Value.t array list -> t
(** @raise Invalid_argument if some row has the wrong length. *)

val of_int_rows : arity:int -> int list list -> t
(** Convenience: rows of machine integers. *)

val to_list : t -> Value.t array list
(** Rows in a deterministic (lexicographic) order. *)

val add : Value.t array -> t -> t
val mem : Value.t array -> t -> bool
val equal : t -> t -> bool
val union : t -> t -> t
(** @raise Invalid_argument on arity mismatch. *)

val project : int array -> t -> t
(** Generalized projection [Π_φ] (Section 3.1): [project phi p] has arity
    [Array.length phi] and rows [fun j -> row.(phi.(j))].  Repeated and
    permuted columns are allowed, e.g. [Π_{xxy}].
    @raise Invalid_argument if an index is out of range. *)

val project_set : Varset.t -> t -> t
(** Standard projection [Π_X] onto the columns in [X], in increasing
    column order. *)

(** {2 Constructions (Definition 3.3, Definition B.1, Section 3.2)} *)

val product : Value.t list list -> t
(** [product [s0; s1; ...]] is the product relation [S₀ × S₁ × ...]. *)

val product_of_sizes : int list -> t
(** [product_of_sizes [n0; ...]] is [[n0] × [n1] × ...] over integer
    domains [{0..nᵢ-1}]. *)

val step_relation : n:int -> Varset.t -> t
(** The two-row relation [P_W] realizing the step function [h_W]: rows
    agree on the columns in [W] and differ elsewhere.
    @raise Invalid_argument if [W] is the full column set. *)

val domain_product : t -> t -> t
(** [P₁ ⊗ P₂] (Definition B.1): rows [{f ⊗ g}], entropies add.
    @raise Invalid_argument on arity mismatch. *)

val of_normal_steps : n:int -> (Varset.t * int) list -> t
(** The normal relation [P_{W₁} ⊗ ... ⊗ P_{Wₘ}] realizing the normal
    entropic function [Σ cᵢ·h_{Wᵢ}] with positive integer multiplicities
    [cᵢ] (each [Wᵢ] repeated [cᵢ] times).
    @raise Invalid_argument on non-positive multiplicities. *)

val normal_of_map : psi:Varset.t array -> t -> t
(** [normal_of_map ~psi p] is [{ψ·f | f ∈ p}] (Definition 3.3): output
    column [j] holds the tuple of [f]'s values on the columns [psi.(j)].
    Applied to a product relation this produces a normal relation. *)

(** {2 Statistics (Definition 4.5, Lemma 4.6)} *)

val marginal_counts : t -> Varset.t -> (Value.t array * int) list
(** Fiber sizes of the projection onto [X]. *)

val is_totally_uniform : t -> bool
(** Every marginal of the uniform distribution on [P] is uniform. *)

val degree : t -> y:Varset.t -> x:Varset.t -> int option
(** [degree p ~y ~x] is the common degree [deg_P(Y|X)] when it is
    well-defined (all [X]-fibers have the same number of distinct
    [Y]-projections — guaranteed for totally uniform [P] by Lemma 4.6),
    [None] otherwise.  [deg_P(Y|X) = |Π_{XY}(P)| / |Π_X(P)|] then. *)

(** {2 Entropy} *)

val entropy_float : t -> Varset.t -> float
(** Entropy in bits of the [X]-marginal of the uniform distribution on
    the relation (Section 3.1: "the entropy of a relation"). *)

val entropy_exact : t -> Varset.t -> Logint.t option
(** Exact entropy [log |Π_X(P)|], available when the [X]-marginal is
    uniform (in particular for every [X] when the relation is totally
    uniform). *)

val entropy_logint : t -> Varset.t -> Logint.t
(** Exact marginal entropy of the uniform distribution on any relation:
    [H(X) = log|P| − (1/|P|)·Σ_t c_t·log c_t] over the [X]-marginal fiber
    sizes [c_t] — a formal sum of logarithms, comparable exactly.  Agrees
    with {!entropy_exact} when that is defined and with {!entropy_float}
    up to rounding. *)

val pp : Format.formatter -> t -> unit
