open Bagcqc_num
open Bagcqc_entropy

module Row = struct
  type t = Value.t array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else
      let rec loop i =
        if i >= la then 0
        else
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0
end

module RSet = Set.Make (Row)

type t = { arity : int; rows : RSet.t }

let arity p = p.arity
let cardinal p = RSet.cardinal p.rows
let is_empty p = RSet.is_empty p.rows

let check_row ~arity row =
  if Array.length row <> arity then
    invalid_arg "Relation: row arity mismatch"

let of_list ~arity rows =
  List.iter (check_row ~arity) rows;
  { arity; rows = RSet.of_list rows }

let of_int_rows ~arity rows =
  of_list ~arity
    (List.map (fun r -> Array.of_list (List.map (fun i -> Value.Int i) r)) rows)

let to_list p = RSet.elements p.rows

let add row p =
  check_row ~arity:p.arity row;
  { p with rows = RSet.add row p.rows }

let mem row p = Array.length row = p.arity && RSet.mem row p.rows

let equal a b = a.arity = b.arity && RSet.equal a.rows b.rows

let union a b =
  if a.arity <> b.arity then invalid_arg "Relation.union: arity mismatch";
  { arity = a.arity; rows = RSet.union a.rows b.rows }

let project phi p =
  Array.iter
    (fun i ->
      if i < 0 || i >= p.arity then
        invalid_arg "Relation.project: column index out of range")
    phi;
  let rows =
    RSet.fold
      (fun row acc -> RSet.add (Array.map (fun i -> row.(i)) phi) acc)
      p.rows RSet.empty
  in
  { arity = Array.length phi; rows }

let project_set x p = project (Array.of_list (Varset.to_list x)) p

let product columns =
  let arity = List.length columns in
  let rec build prefix = function
    | [] -> [ Array.of_list (List.rev prefix) ]
    | col :: rest ->
      List.concat_map (fun v -> build (v :: prefix) rest) col
  in
  if List.exists (fun c -> c = []) columns then { arity; rows = RSet.empty }
  else of_list ~arity (build [] columns)

let product_of_sizes sizes =
  product (List.map (fun n -> List.init n (fun i -> Value.Int i)) sizes)

let step_relation ~n w =
  if Varset.equal w (Varset.full n) then
    invalid_arg "Relation.step_relation: W must be proper";
  let f1 = Array.make n (Value.Int 1) in
  let f2 = Array.init n (fun i -> if Varset.mem i w then Value.Int 1 else Value.Int 2) in
  of_list ~arity:n [ f1; f2 ]

let domain_product a b =
  if a.arity <> b.arity then
    invalid_arg "Relation.domain_product: arity mismatch";
  let rows =
    RSet.fold
      (fun fa acc ->
        RSet.fold
          (fun fb acc ->
            RSet.add (Array.map2 (fun x y -> Value.Pair (x, y)) fa fb) acc)
          b.rows acc)
      a.rows RSet.empty
  in
  { arity = a.arity; rows }

let of_normal_steps ~n coeffs =
  List.iter
    (fun (_, c) ->
      if c <= 0 then
        invalid_arg "Relation.of_normal_steps: multiplicities must be positive")
    coeffs;
  let factors =
    List.concat_map (fun (w, c) -> List.init c (fun _ -> step_relation ~n w)) coeffs
  in
  match factors with
  | [] ->
    (* Empty product: the single constant row. *)
    of_list ~arity:n [ Array.make n (Value.Int 0) ]
  | first :: rest -> List.fold_left domain_product first rest

let normal_of_map ~psi p =
  let rows =
    RSet.fold
      (fun row acc ->
        let out =
          Array.map
            (fun w ->
              Value.Tuple (List.map (fun i -> row.(i)) (Varset.to_list w)))
            psi
        in
        RSet.add out acc)
      p.rows RSet.empty
  in
  { arity = Array.length psi; rows }

let marginal_counts p x =
  let phi = Array.of_list (Varset.to_list x) in
  let tbl = Hashtbl.create 64 in
  RSet.iter
    (fun row ->
      let key = Array.map (fun i -> row.(i)) phi in
      let prev = try Hashtbl.find tbl key with Not_found -> 0 in
      Hashtbl.replace tbl key (prev + 1))
    p.rows;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let marginal_uniform p x =
  match marginal_counts p x with
  | [] -> true
  | (_, c0) :: rest -> List.for_all (fun (_, c) -> c = c0) rest

let is_totally_uniform p =
  let full = Varset.full p.arity in
  let ok = ref true in
  Varset.iter_subsets full (fun x ->
      if not (Varset.is_empty x) && not (marginal_uniform p x) then ok := false);
  !ok

let distinct_projection_count p x =
  cardinal (project_set x p)

let degree p ~y ~x =
  (* deg_P(Y|X=f0) = number of distinct Y-projections within the fiber at
     f0; well-defined when this count is the same for all fibers. *)
  let phi_x = Array.of_list (Varset.to_list x) in
  let phi_y = Array.of_list (Varset.to_list y) in
  let tbl : (Row.t, RSet.t) Hashtbl.t = Hashtbl.create 64 in
  RSet.iter
    (fun row ->
      let kx = Array.map (fun i -> row.(i)) phi_x in
      let ky = Array.map (fun i -> row.(i)) phi_y in
      let prev = try Hashtbl.find tbl kx with Not_found -> RSet.empty in
      Hashtbl.replace tbl kx (RSet.add ky prev))
    p.rows;
  let degrees = Hashtbl.fold (fun _ s acc -> RSet.cardinal s :: acc) tbl [] in
  match degrees with
  | [] -> Some 0
  | d :: rest -> if List.for_all (( = ) d) rest then Some d else None

let entropy_float p x =
  if Varset.is_empty x || is_empty p then 0.0
  else begin
    let total = float_of_int (cardinal p) in
    List.fold_left
      (fun acc (_, c) ->
        let pr = float_of_int c /. total in
        acc -. (pr *. (Float.log pr /. Float.log 2.0)))
      0.0 (marginal_counts p x)
  end

let entropy_exact p x =
  if Varset.is_empty x || is_empty p then Some Logint.zero
  else if marginal_uniform p x then
    Some (Logint.log (Bigint.of_int (distinct_projection_count p x)))
  else None

let entropy_logint p x =
  if Varset.is_empty x || is_empty p then Logint.zero
  else begin
    let total = cardinal p in
    (* H(X) = log N - (1/N) Σ c_t log c_t  with N = |P|. *)
    let sum_c_log_c =
      List.fold_left
        (fun acc (_, c) ->
          Logint.add acc (Logint.scale (Rat.of_int c) (Logint.log_int c)))
        Logint.zero (marginal_counts p x)
    in
    Logint.sub
      (Logint.log (Bigint.of_int total))
      (Logint.scale (Rat.of_ints 1 total) sum_c_log_c)
  end

let pp fmt p =
  Format.fprintf fmt "{";
  let first = ref true in
  RSet.iter
    (fun row ->
      if not !first then Format.pp_print_string fmt "; ";
      first := false;
      Format.pp_print_char fmt '(';
      Array.iteri
        (fun i v ->
          if i > 0 then Format.pp_print_char fmt ',';
          Value.pp fmt v)
        row;
      Format.pp_print_char fmt ')')
    p.rows;
  Format.fprintf fmt "}"
