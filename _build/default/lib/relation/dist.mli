(** Finite probability distributions with exact rational probabilities.

    The proofs of Theorems 4.2 and 4.4 manipulate distributions on
    homomorphism sets: uniform distributions, marginals, pullbacks along
    substitutions, and joints stitched from conditionals along a tree
    decomposition (Appendix D).  This module provides those operations
    with rational probabilities and {e exact} entropies — the entropy of
    a rational distribution is a formal sum [Σ pᵢ·log(1/pᵢ)] of
    logarithms of rationals, decided exactly by {!Bagcqc_num.Logint} —
    so Appendix D's equalities (48)–(49) can be machine-checked rather
    than approximated. *)

open Bagcqc_num
open Bagcqc_entropy

type t
(** A distribution over tuples of a fixed arity. *)

val arity : t -> int

val of_weights : arity:int -> (Value.t array * Rat.t) list -> t
(** Normalizes the non-negative weights to total mass 1, merging duplicate
    tuples.
    @raise Invalid_argument on negative weights, zero total mass, or rows
    of the wrong length. *)

val uniform : Relation.t -> t
(** The uniform distribution on the support of a relation (the paper's
    "entropy of a relation" construction, Sec. 3.1).
    @raise Invalid_argument on an empty relation. *)

val support : t -> Relation.t
val prob : t -> Value.t array -> Rat.t
val total : t -> Rat.t
(** Always 1 (exposed for tests). *)

val marginal : t -> Varset.t -> t
(** Marginal on the given columns; the result's columns are re-indexed in
    increasing order of the originals. *)

val pullback : t -> int array -> t
(** [pullback p phi] is the [φ]-pullback [Π_φ(p)] of Section 4: the
    distribution of the tuple [(f(φ(0)), ..., f(φ(k-1)))] when [f ~ p].
    (Example 4.1.) *)

val entropy : t -> Varset.t -> Logint.t
(** Exact marginal entropy [H(X)] in bits. *)

val entropy_all : t -> (Varset.t -> Logint.t)
(** The full entropy vector (memoized per call site). *)

val is_distribution : t -> bool
(** Invariant check: non-negative, sums to one (exposed for tests). *)

val pp : Format.formatter -> t -> unit
