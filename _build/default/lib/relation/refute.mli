(** Counterexample search for max-information inequalities over finite
    relations — a bounded form of the semi-decision procedure of
    Lemma B.9.

    The paper proves Max-IIP is co-recursively enumerable: enumerate
    finite probability distributions with rational probabilities and test
    the inequality exactly on each.  This module implements the search
    restricted to {e uniform} distributions on relations over small
    domains; entropies of such distributions are formal sums
    [Σ c·log a] decided exactly by {!Bagcqc_num.Logint}, so every
    reported refutation is certified, never a rounding artifact.

    Uniform distributions already witness the failure of every inequality
    refutable by step-function combinations (the normal cone), the parity
    function, and more generally every group-characterizable entropy —
    the class that is dense in [Γ*n] (Chan–Yeung, used in the paper's
    Lemma 4.8). *)

open Bagcqc_num
open Bagcqc_entropy

val entropy_of : Relation.t -> Varset.t -> Logint.t
(** Alias of {!Relation.entropy_logint}: the exact entropy vector used by
    the search. *)

val eval : Relation.t -> Linexpr.t -> Logint.t
(** Exact value [E(h_P)] of a linear expression at the entropy of the
    uniform distribution on [P]. *)

val refutes : Relation.t -> Linexpr.t list -> bool
(** Does the relation's entropy make {e every} side negative
    ([max_ℓ Eℓ(h_P) < 0])?  Exact. *)

val search :
  ?domain:int -> ?max_rows:int -> n:int -> Linexpr.t list -> Relation.t option
(** [search ~n sides] enumerates relations [P ⊆ [domain]^n] (default
    domain size 2) with at most [max_rows] rows (default [domain^n]) and
    returns the first certified refutation of [0 ≤ max_ℓ sides_ℓ(h)].
    Exhaustive over the stated space, exponential in it; meant for small
    [n].  [None] means no refutation in the space — the inequality may
    still be invalid over [Γ*n]. *)

val search_maxii : ?domain:int -> ?max_rows:int -> Maxii.t -> Relation.t option
(** {!search} applied to the sides of a {!Maxii.t}. *)
