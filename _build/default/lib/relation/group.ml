open Bagcqc_num
open Bagcqc_entropy

module Perm = struct
  type t = int array

  let identity m = Array.init m Fun.id

  let compose p q =
    if Array.length p <> Array.length q then
      invalid_arg "Perm.compose: degree mismatch";
    Array.map (fun i -> p.(i)) q

  let is_permutation p =
    let m = Array.length p in
    let seen = Array.make m false in
    Array.for_all
      (fun i ->
        if i < 0 || i >= m || seen.(i) then false
        else begin
          seen.(i) <- true;
          true
        end)
      p

  let inverse p =
    let inv = Array.make (Array.length p) 0 in
    Array.iteri (fun i j -> inv.(j) <- i) p;
    inv

  let compare (a : t) (b : t) = Stdlib.compare a b

  let of_cycles m cycles =
    let p = identity m in
    List.iter
      (fun cycle ->
        match cycle with
        | [] -> ()
        | first :: _ ->
          let rec go = function
            | [ last ] ->
              if last < 0 || last >= m then invalid_arg "Perm.of_cycles: point out of range";
              p.(last) <- first
            | a :: (b :: _ as rest) ->
              if a < 0 || a >= m then invalid_arg "Perm.of_cycles: point out of range";
              p.(a) <- b;
              go rest
            | [] -> ()
          in
          go cycle)
      cycles;
    if not (is_permutation p) then invalid_arg "Perm.of_cycles: cycles not disjoint";
    p
end

module PSet = Set.Make (struct
  type t = Perm.t
  let compare = Perm.compare
end)

type group = { deg : int; elems : PSet.t }

let max_order = 10_000

let generate deg gens =
  List.iter
    (fun g ->
      if Array.length g <> deg || not (Perm.is_permutation g) then
        invalid_arg "Group.generate: invalid generator")
    gens;
  let seen = ref (PSet.singleton (Perm.identity deg)) in
  let queue = Queue.create () in
  Queue.add (Perm.identity deg) queue;
  while not (Queue.is_empty queue) do
    let a = Queue.pop queue in
    List.iter
      (fun g ->
        let b = Perm.compose g a in
        if not (PSet.mem b !seen) then begin
          if PSet.cardinal !seen >= max_order then
            invalid_arg "Group.generate: group too large";
          seen := PSet.add b !seen;
          Queue.add b queue
        end)
      gens
  done;
  { deg; elems = !seen }

let order g = PSet.cardinal g.elems
let degree g = g.deg
let elements g = PSet.elements g.elems
let mem g p = PSet.mem p g.elems
let is_subgroup_of ~sub g = sub.deg = g.deg && PSet.subset sub.elems g.elems

let subgroup g gens =
  List.iter
    (fun p ->
      if not (mem g p) then invalid_arg "Group.subgroup: generator not in group")
    gens;
  generate g.deg gens

let value_of_perm p =
  Value.Tuple (Array.to_list (Array.map (fun i -> Value.Int i) p))

let coset_value a sub =
  (* Left coset aG_i as a canonical (sorted) tuple of its elements. *)
  let members =
    PSet.fold (fun g acc -> Perm.compose a g :: acc) sub.elems []
  in
  let sorted = List.sort Perm.compare members in
  Value.Tuple (List.map value_of_perm sorted)

let coset_relation g subs =
  List.iter
    (fun s ->
      if not (is_subgroup_of ~sub:s g) then
        invalid_arg "Group.coset_relation: not a subgroup")
    subs;
  let subs = Array.of_list subs in
  let rows =
    PSet.fold
      (fun a acc -> Array.map (fun s -> coset_value a s) subs :: acc)
      g.elems []
  in
  Relation.of_list ~arity:(Array.length subs) rows

let entropy g subs x =
  let subs = Array.of_list subs in
  Array.iter
    (fun s ->
      if not (is_subgroup_of ~sub:s g) then
        invalid_arg "Group.entropy: not a subgroup")
    subs;
  if Varset.is_empty x then Logint.zero
  else begin
    let inter =
      Varset.fold_elements
        (fun i acc -> PSet.inter acc subs.(i).elems)
        x g.elems
    in
    Logint.sub
      (Logint.log (Bigint.of_int (order g)))
      (Logint.log (Bigint.of_int (PSet.cardinal inter)))
  end

let klein_parity =
  (* Z2 × Z2 acting regularly on 4 points: a = (01)(23), b = (02)(13). *)
  let a = Perm.of_cycles 4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let b = Perm.of_cycles 4 [ [ 0; 2 ]; [ 1; 3 ] ] in
  let ab = Perm.compose a b in
  let g = generate 4 [ a; b ] in
  (g, [ subgroup g [ a ]; subgroup g [ b ]; subgroup g [ ab ] ])
