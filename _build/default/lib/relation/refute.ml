open Bagcqc_num
open Bagcqc_entropy

let entropy_of = Relation.entropy_logint

let eval p e =
  Linexpr.eval_general ~zero:Logint.zero ~add:Logint.add ~scale:Logint.scale
    (Relation.entropy_logint p) e

let refutes p sides =
  (not (Relation.is_empty p))
  && sides <> []
  && List.for_all (fun e -> Logint.sign (eval p e) < 0) sides

(* Enumerate subsets of [domain]^n by bit masks over the tuple space,
   smallest supports first so that reported witnesses are minimal-ish. *)
let search ?(domain = 2) ?max_rows ~n sides =
  if n < 1 then invalid_arg "Refute.search: n must be positive";
  let space = int_of_float (float_of_int domain ** float_of_int n) in
  if space > 16 then invalid_arg "Refute.search: tuple space too large";
  let max_rows = match max_rows with Some m -> m | None -> space in
  let pow b e =
    let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
    go 1 e
  in
  let tuple_of_index idx =
    Array.init n (fun pos -> Value.Int (idx / pow domain pos mod domain))
  in
  let tuples = Array.init space tuple_of_index in
  let result = ref None in
  (* Enumerate by popcount layer to prefer small witnesses. *)
  let masks = List.init (1 lsl space) Fun.id in
  let sorted =
    List.sort
      (fun a b ->
        let pop m =
          let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
          go 0 m
        in
        compare (pop a) (pop b))
      masks
  in
  (try
     List.iter
       (fun mask ->
         let rows = ref [] in
         for b = 0 to space - 1 do
           if mask land (1 lsl b) <> 0 then rows := tuples.(b) :: !rows
         done;
         let rows = !rows in
         if rows <> [] && List.length rows <= max_rows then begin
           let p = Relation.of_list ~arity:n rows in
           if refutes p sides then begin
             result := Some p;
             raise Exit
           end
         end)
       sorted
   with Exit -> ());
  !result

let search_maxii ?domain ?max_rows m =
  search ?domain ?max_rows ~n:(Maxii.n_vars m) (Maxii.sides m)
