open Bagcqc_num
open Bagcqc_entropy

module Row = struct
  type t = Value.t array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else
      let rec loop i =
        if i >= la then 0
        else
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0
end

module RMap = Map.Make (Row)

type t = { arity : int; probs : Rat.t RMap.t }
(* Invariant: probabilities positive, summing to one. *)

let arity d = d.arity

let of_weights ~arity weights =
  let merged =
    List.fold_left
      (fun acc (row, w) ->
        if Array.length row <> arity then
          invalid_arg "Dist.of_weights: row arity mismatch";
        if Rat.sign w < 0 then invalid_arg "Dist.of_weights: negative weight";
        if Rat.is_zero w then acc
        else
          RMap.update row
            (function None -> Some w | Some w0 -> Some (Rat.add w0 w))
            acc)
      RMap.empty weights
  in
  let total = RMap.fold (fun _ w acc -> Rat.add acc w) merged Rat.zero in
  if Rat.sign total <= 0 then invalid_arg "Dist.of_weights: zero total mass";
  { arity; probs = RMap.map (fun w -> Rat.div w total) merged }

let uniform r =
  if Relation.is_empty r then invalid_arg "Dist.uniform: empty relation";
  of_weights ~arity:(Relation.arity r)
    (List.map (fun row -> (row, Rat.one)) (Relation.to_list r))

let support d =
  Relation.of_list ~arity:d.arity
    (List.map fst (RMap.bindings d.probs))

let prob d row =
  match RMap.find_opt row d.probs with Some p -> p | None -> Rat.zero

let total d = RMap.fold (fun _ p acc -> Rat.add acc p) d.probs Rat.zero

let push d phi =
  (* Distribution of row ↦ (row.(phi.(0)), ...). *)
  let probs =
    RMap.fold
      (fun row p acc ->
        let image = Array.map (fun i -> row.(i)) phi in
        RMap.update image
          (function None -> Some p | Some p0 -> Some (Rat.add p0 p))
          acc)
      d.probs RMap.empty
  in
  { arity = Array.length phi; probs }

let marginal d x = push d (Array.of_list (Varset.to_list x))

let pullback d phi =
  Array.iter
    (fun i ->
      if i < 0 || i >= d.arity then invalid_arg "Dist.pullback: index out of range")
    phi;
  push d phi

let entropy d x =
  if Varset.is_empty x then Logint.zero
  else begin
    let m = marginal d x in
    (* H = Σ p log(1/p) with p rational: log(1/p) = log den − log num. *)
    RMap.fold
      (fun _ p acc ->
        let term =
          Logint.sub (Logint.log (Rat.den p)) (Logint.log (Rat.num p))
        in
        Logint.add acc (Logint.scale p term))
      m.probs Logint.zero
  end

let entropy_all d =
  let cache = Hashtbl.create 16 in
  fun x ->
    match Hashtbl.find_opt cache x with
    | Some e -> e
    | None ->
      let e = entropy d x in
      Hashtbl.add cache x e;
      e

let is_distribution d =
  RMap.for_all (fun _ p -> Rat.sign p > 0) d.probs
  && Rat.equal (total d) Rat.one

let pp fmt d =
  Format.pp_print_char fmt '{';
  let first = ref true in
  RMap.iter
    (fun row p ->
      if not !first then Format.pp_print_string fmt "; ";
      first := false;
      Format.pp_print_char fmt '(';
      Array.iteri
        (fun i v ->
          if i > 0 then Format.pp_print_char fmt ',';
          Value.pp fmt v)
        row;
      Format.fprintf fmt ")↦%a" Rat.pp p)
    d.probs;
  Format.pp_print_char fmt '}'
