lib/relation/dist.mli: Bagcqc_entropy Bagcqc_num Format Logint Rat Relation Value Varset
