lib/relation/refute.ml: Array Bagcqc_entropy Bagcqc_num Fun Linexpr List Logint Maxii Relation Value
