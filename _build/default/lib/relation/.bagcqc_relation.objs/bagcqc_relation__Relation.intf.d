lib/relation/relation.mli: Bagcqc_entropy Bagcqc_num Format Logint Value Varset
