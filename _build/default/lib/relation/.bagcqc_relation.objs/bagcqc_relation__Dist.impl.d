lib/relation/dist.ml: Array Bagcqc_entropy Bagcqc_num Format Hashtbl List Logint Map Rat Relation Stdlib Value Varset
