lib/relation/value.ml: Format Hashtbl List Stdlib
