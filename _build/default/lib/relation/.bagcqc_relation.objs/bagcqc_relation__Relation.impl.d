lib/relation/relation.ml: Array Bagcqc_entropy Bagcqc_num Bigint Float Format Hashtbl List Logint Rat Set Stdlib Value Varset
