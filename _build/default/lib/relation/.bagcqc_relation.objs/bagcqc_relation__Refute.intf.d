lib/relation/refute.mli: Bagcqc_entropy Bagcqc_num Linexpr Logint Maxii Relation Varset
