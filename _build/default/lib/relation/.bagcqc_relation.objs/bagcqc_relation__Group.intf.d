lib/relation/group.mli: Bagcqc_entropy Bagcqc_num Logint Relation Varset
