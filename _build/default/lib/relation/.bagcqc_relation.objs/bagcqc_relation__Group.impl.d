lib/relation/group.ml: Array Bagcqc_entropy Bagcqc_num Bigint Fun List Logint Queue Relation Set Stdlib Value Varset
