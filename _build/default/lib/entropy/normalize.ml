open Bagcqc_num
open Rat.Infix

let require_polymatroid h =
  if not (Polymatroid.is_polymatroid h) then
    invalid_arg "Normalize: input is not a polymatroid"

let modularize h =
  require_polymatroid h;
  let n = Polymatroid.n_vars h in
  (* h'(X) = Σ_{i∈X} h(i | {0..i−1}): telescoping gives h'(V) = h(V);
     submodularity gives h(i|[i−1]) ≤ h(i|X∩[i−1]) hence h' ≤ h. *)
  let weights =
    Array.init n (fun i ->
        let prefix = if i = 0 then Varset.empty else Varset.full i in
        Polymatroid.cond h (Varset.singleton i) prefix)
  in
  Polymatroid.modular_of_weights weights

(* Theorem C.3, in its primal form (Eqs. 42–43 of the paper): split on the
   top variable v, recursively normalize the conditional polymatroid
   h2(X) = h(X|v), replace the L1 part by the Lemma C.2 max-construction
   over the mutual informations I(i; v), and recombine. *)
let rec normalize_rec h =
  let n = Polymatroid.n_vars h in
  if n <= 1 then h
  else begin
    let v = n - 1 in
    let vset = Varset.singleton v in
    let hv = Polymatroid.value h vset in
    let h2 =
      Polymatroid.make (n - 1) (fun x ->
          Polymatroid.cond h x vset)
    in
    let h2' = normalize_rec h2 in
    let mutual_with_v =
      Array.init (n - 1) (fun i ->
          Polymatroid.mutual h (Varset.singleton i) vset Varset.empty)
    in
    let h1' = Polymatroid.uniform_step_max mutual_with_v in
    Polymatroid.make n (fun x ->
        if Varset.mem v x then hv +/ Polymatroid.value h2' (Varset.remove v x)
        else Polymatroid.value h1' x +/ Polymatroid.value h2' x)
  end

let normalize h =
  require_polymatroid h;
  normalize_rec h
