(** Rational-valued set functions [h : 2^V → Q] with [h(∅) = 0], and the
    cone structure of Section 3.2 of the paper.

    The chain studied by the paper is [Mn ⊊ Nn ⊊ Γ*n ⊊ Γn]:
    modular functions, normal functions (non-negative I-measure), entropic
    functions, polymatroids.  [Γ*n] is not computable; everything here
    concerns the three polyhedral members of the chain plus constructions
    of specific entropic points (step functions, parity). *)

open Bagcqc_num

type t

val make : int -> (Varset.t -> Rat.t) -> t
(** [make n f] tabulates [f] on all subsets of [full n].  [f empty] is
    forced to zero. *)

val n_vars : t -> int
val value : t -> Varset.t -> Rat.t
val cond : t -> Varset.t -> Varset.t -> Rat.t
(** [cond h y x = h(y ∪ x) − h(x)]. *)

val mutual : t -> Varset.t -> Varset.t -> Varset.t -> Rat.t
(** [mutual h a b x = I(a; b | x)]. *)

val equal : t -> t -> bool
val zero : int -> t
val add : t -> t -> t
val scale : Rat.t -> t -> t

val dominates : t -> t -> bool
(** [dominates g h] iff [g(X) ≥ h(X)] for every [X]. *)

(** {2 Constructions} *)

val step : int -> Varset.t -> t
(** The step function [h_W] at [W ⊊ V] (paper Sec. 3.2): 0 on subsets of
    [W], 1 elsewhere.  @raise Invalid_argument if [W] is the full set. *)

val modular_of_weights : Rat.t array -> t
(** [h(X) = Σ_{i∈X} wᵢ] for non-negative weights.
    @raise Invalid_argument on a negative weight. *)

val normal_of_steps : int -> (Varset.t * Rat.t) list -> t
(** Non-negative combination [Σ c_W · h_W] of step functions.
    @raise Invalid_argument on a negative coefficient or [W = V]. *)

val parity : t
(** The parity function on 3 variables (paper Example B.4): the entropy of
    [{(x,y,z) ∈ {0,1}³ | x ⊕ y ⊕ z = 0}] — entropic but not normal. *)

val uniform_step_max : Rat.t array -> t
(** The max-construction of Lemma C.2: [h(X) = max{aᵢ | i ∈ X}] for
    non-negative [aᵢ]; always a normal polymatroid. *)

(** {2 Predicates} *)

val is_polymatroid : t -> bool
(** Monotone and submodular (Shannon's basic inequalities, Eq. 5),
    checked on the elemental inequalities. *)

val is_modular : t -> bool
val is_normal : t -> bool
(** Non-negative I-measure; equivalently the Möbius inverse [g] satisfies
    [g(X) ≤ 0] for every [X ≠ V] (paper Fact B.7). *)

val is_entropic_known : t -> bool
(** Sound, incomplete membership test for [Γ*n]: true iff the function is
    normal (every normal function is entropic, Sec. 3.2).  Deciding
    membership in [Γ*n] in general is precisely the open problem the paper
    studies, so no complete test exists. *)

(** {2 Möbius / I-measure} *)

val mobius : t -> Varset.t -> Rat.t
(** The Möbius inverse [g(X) = Σ_{Y ⊇ X} (−1)^#(Y−X) h(Y)] (Eq. 33). *)

val of_mobius : int -> (Varset.t -> Rat.t) -> t
(** Inverse transform: [h(X) = Σ_{Y ⊇ X} g(Y)]. *)

val normal_decomposition : t -> (Varset.t * Rat.t) list option
(** If [h] is normal, the canonical step decomposition
    [h = Σ_W c_W h_W] with [c_W = −g(W) ≥ 0] for [W ⊊ V];
    [None] otherwise. *)

(** {2 Interplay with expressions} *)

val eval : t -> Linexpr.t -> Rat.t
val eval_cexpr : t -> Cexpr.t -> Rat.t

val pp : ?names:(int -> string) -> unit -> Format.formatter -> t -> unit
