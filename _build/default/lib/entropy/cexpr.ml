open Bagcqc_num

type part = { y : Varset.t; x : Varset.t; d : Rat.t }

type t = part list

let zero = []

let part ?(coeff = Rat.one) y x =
  if Rat.sign coeff < 0 then
    invalid_arg "Cexpr.part: negative coefficient";
  if Rat.is_zero coeff || Varset.subset y x then []
  else [ { y = Varset.diff y x; x; d = coeff } ]

let entropy ?coeff y = part ?coeff y Varset.empty

let add a b = a @ b
let sum = List.concat
let parts t = t

let is_unconditioned = List.for_all (fun p -> Varset.is_empty p.x)
let is_simple = List.for_all (fun p -> Varset.cardinal p.x <= 1)

let to_linexpr t =
  Linexpr.sum (List.map (fun p -> Linexpr.cond ~coeff:p.d p.y p.x) t)

let rename f t =
  let rename_set s =
    Varset.fold_elements (fun i acc -> Varset.add (f i) acc) s Varset.empty
  in
  List.filter_map
    (fun p ->
      let x = rename_set p.x in
      let y = Varset.diff (rename_set p.y) x in
      if Varset.is_empty y then None else Some { y; x; d = p.d })
    t

let max_var t =
  List.fold_left
    (fun acc p ->
      Varset.fold_elements
        (fun i m -> if i > m then i else m)
        (Varset.union p.y p.x) acc)
    (-1) t

let pp ?(names = Varset.default_name) () fmt t =
  match t with
  | [] -> Format.pp_print_string fmt "0"
  | _ ->
    let first = ref true in
    List.iter
      (fun p ->
        if not !first then Format.pp_print_string fmt " + ";
        first := false;
        if not (Rat.equal p.d Rat.one) then Format.fprintf fmt "%a*" Rat.pp p.d;
        let str s = String.concat "" (List.map names (Varset.to_list s)) in
        if Varset.is_empty p.x then Format.fprintf fmt "h(%s)" (str p.y)
        else Format.fprintf fmt "h(%s|%s)" (str p.y) (str p.x))
      t
