type t = int

let max_vars = 62

let empty = 0

let full n =
  if n < 0 || n > max_vars then invalid_arg "Varset.full: out of range";
  if n = 0 then 0 else (1 lsl n) - 1

let singleton i = 1 lsl i
let mem i s = s land (1 lsl i) <> 0
let add i s = s lor (1 lsl i)
let remove i s = s land lnot (1 lsl i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let is_empty s = s = 0
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let cardinal s =
  let rec loop acc s = if s = 0 then acc else loop (acc + 1) (s land (s - 1)) in
  loop 0 s

let fold_elements f s init =
  let rec loop acc s =
    if s = 0 then acc
    else
      let low = s land -s in
      let i =
        (* Index of the lowest set bit. *)
        let rec idx i m = if m = 1 then i else idx (i + 1) (m lsr 1) in
        idx 0 low
      in
      loop (f i acc) (s lxor low)
  in
  loop init s

let to_list s = List.rev (fold_elements (fun i acc -> i :: acc) s [])
let of_list l = List.fold_left (fun acc i -> add i acc) empty l

let iter_subsets s f =
  (* Standard submask enumeration: descending submasks of s, plus empty. *)
  let sub = ref s in
  let continue = ref true in
  while !continue do
    f !sub;
    if !sub = 0 then continue := false else sub := (!sub - 1) land s
  done

let fold_subsets s f init =
  let acc = ref init in
  iter_subsets s (fun sub -> acc := f sub !acc);
  !acc

let iter_supersets ~n s f =
  let fullset = full n in
  let comp = diff fullset s in
  iter_subsets comp (fun extra -> f (union s extra))

let default_name i = "X" ^ string_of_int (i + 1)

let pp ?(names = default_name) () fmt s =
  Format.pp_print_char fmt '{';
  let first = ref true in
  List.iter
    (fun i ->
      if not !first then Format.pp_print_char fmt ',';
      first := false;
      Format.pp_print_string fmt (names i))
    (to_list s);
  Format.pp_print_char fmt '}'
