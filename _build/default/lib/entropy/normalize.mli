(** The approximation constructions of Lemma 3.7 / Theorem C.3.

    Both take an arbitrary polymatroid [h ∈ Γn] and produce a smaller,
    better-behaved function agreeing with [h] where it matters:

    - {!modularize} (Lemma 3.7 (1), the "modularization lemma" of
      Abo Khamis–Ngo–Suciu 2017): a modular [h' ≤ h] with
      [h'(V) = h(V)];
    - {!normalize} (Lemma 3.7 (2) = Theorem C.3, the novel construction):
      a {e normal} [h' ≤ h] with [h'(V) = h(V)] and [h'({i}) = h({i})]
      for every single variable.

    These are exactly what powers Theorem 3.6: a violation of a simple
    (resp. unconditioned) max-inequality by some polymatroid transfers to
    a violation by a normal (resp. modular) function, which is entropic —
    realizable by an actual relation. *)

val modularize : Polymatroid.t -> Polymatroid.t
(** Chain-rule modularization along the natural variable order:
    [h'(X) = Σ_{i∈X} h({i} | {0..i−1})].
    @raise Invalid_argument if the input is not a polymatroid. *)

val normalize : Polymatroid.t -> Polymatroid.t
(** The recursive lattice-splitting construction of Theorem C.3.
    @raise Invalid_argument if the input is not a polymatroid. *)
