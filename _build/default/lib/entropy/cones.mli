(** Deciding (max-)information inequalities over the polyhedral cones
    [Γn ⊇ Nn ⊇ Mn] by exact linear programming.

    This is the computational engine behind the paper's decidability
    results: Theorem 3.6 shows certain max-inequalities are "essentially
    Shannon" — valid over the entropic cone [Γ*n] iff valid over the
    Shannon cone [Γn] (or valid over [Nn] / [Mn] iff over [Γn]) — and
    "any essentially Shannon class is decidable, because [Γn] is
    polyhedral".

    A max-inequality [0 ≤ max_ℓ Eℓ(h)] is valid over a closed convex cone
    [K] iff the LP [{h ∈ K, Eℓ(h) ≤ −1 ∀ℓ}] is infeasible (by scale
    invariance, a point with [max_ℓ Eℓ < 0] can be scaled to gap 1).
    Failures return the witnessing point of [K]. *)

type cone =
  | Gamma   (** the Shannon cone [Γn] of all polymatroids *)
  | Normal  (** [Nn]: non-negative combinations of step functions *)
  | Modular (** [Mn]: non-negative modular functions *)

val elemental : n:int -> Linexpr.t list
(** The elemental Shannon inequalities generating [Γn]: monotonicity
    [h(V) − h(V∖i) ≥ 0] and elemental submodularities
    [h(iW) + h(jW) − h(ijW) − h(W) ≥ 0].  Every Shannon inequality is a
    non-negative combination of these. *)

val valid_max : cone -> n:int -> Linexpr.t list -> (unit, Polymatroid.t) result
(** [valid_max k ~n es] decides [∀h ∈ K. 0 ≤ max_ℓ es_ℓ(h)].
    [Error h] carries a point of [K] with [es_ℓ(h) < 0] for all [ℓ].
    The empty max is (vacuously) invalid, witnessed by the zero function.
    @raise Invalid_argument if an expression mentions a variable [≥ n]. *)

val valid_max_quick : cone -> n:int -> Linexpr.t list -> bool
(** Like {!valid_max} but boolean only: for [Gamma] this runs just the
    (much smaller) Farkas-certificate LP and skips extracting an explicit
    refuting polymatroid when invalid. *)

val valid : cone -> n:int -> Linexpr.t -> (unit, Polymatroid.t) result
(** Validity of a single linear inequality [0 ≤ E(h)] over the cone. *)

val valid_shannon : n:int -> Linexpr.t -> bool
(** [valid_shannon ~n e] iff [0 ≤ e(h)] is a Shannon inequality (valid over
    [Γn]); a sound (and, for non-max linear inequalities with at most
    3 variables, complete) test of information-inequality validity. *)

val max_to_convex : n:int -> Linexpr.t list -> Bagcqc_num.Rat.t array option
(** Theorem 6.1 of the paper, instantiated at the Shannon cone: a
    max-linear inequality [0 ≤ max_ℓ Eℓ] is valid over [Γn] iff there are
    [λℓ ≥ 0] with [Σλℓ = 1] such that the single {e linear} inequality
    [0 ≤ Σ λℓ·Eℓ] is valid over [Γn].  Returns those convex weights when
    they exist, [None] otherwise.  (Over [Γn] the weights are rational —
    the paper leaves rationality over [Γ*n] open.) *)

val shannon_certificate : n:int -> Linexpr.t -> (Linexpr.t * Bagcqc_num.Rat.t) list option
(** If [0 ≤ e(h)] is valid over [Γn], a Farkas certificate: pairs of
    elemental inequalities and non-negative multipliers with
    [Σ λᵢ·elemᵢ = e] exactly, proving the inequality is Shannon.
    [None] if the inequality is not Shannon. *)
