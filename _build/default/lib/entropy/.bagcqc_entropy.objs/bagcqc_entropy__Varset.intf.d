lib/entropy/varset.mli: Format
