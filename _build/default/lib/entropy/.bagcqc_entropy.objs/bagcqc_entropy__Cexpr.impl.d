lib/entropy/cexpr.ml: Bagcqc_num Format Linexpr List Rat String Varset
