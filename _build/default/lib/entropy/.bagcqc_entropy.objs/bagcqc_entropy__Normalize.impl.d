lib/entropy/normalize.ml: Array Bagcqc_num Polymatroid Rat Varset
