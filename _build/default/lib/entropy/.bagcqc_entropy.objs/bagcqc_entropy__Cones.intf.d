lib/entropy/cones.mli: Bagcqc_num Linexpr Polymatroid
