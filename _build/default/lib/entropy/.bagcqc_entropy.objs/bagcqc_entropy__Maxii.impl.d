lib/entropy/maxii.ml: Bagcqc_num Cexpr Cones Format Linexpr List Polymatroid Rat String Varset
