lib/entropy/varset.ml: Format List Stdlib
