lib/entropy/maxii.mli: Bagcqc_num Cexpr Cones Format Linexpr Polymatroid Rat
