lib/entropy/normalize.mli: Polymatroid
