lib/entropy/polymatroid.ml: Array Bagcqc_num Cexpr Format Linexpr List Rat String Varset
