lib/entropy/polymatroid.mli: Bagcqc_num Cexpr Format Linexpr Rat Varset
