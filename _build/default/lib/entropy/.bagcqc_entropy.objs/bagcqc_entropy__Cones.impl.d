lib/entropy/cones.ml: Array Bagcqc_lp Bagcqc_num Linexpr List Polymatroid Rat Result Simplex Varset
