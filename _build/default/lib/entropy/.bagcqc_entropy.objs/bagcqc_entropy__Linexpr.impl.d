lib/entropy/linexpr.ml: Array Bagcqc_num Format Int List Map Rat String Varset
