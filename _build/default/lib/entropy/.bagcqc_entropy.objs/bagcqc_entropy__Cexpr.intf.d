lib/entropy/cexpr.mli: Bagcqc_num Format Linexpr Rat Varset
