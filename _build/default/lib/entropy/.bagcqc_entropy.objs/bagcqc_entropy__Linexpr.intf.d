lib/entropy/linexpr.mli: Bagcqc_num Format Rat Varset
