open Bagcqc_num
open Rat.Infix

type t = { n : int; v : Rat.t array } (* v.(mask) = h(mask); v.(0) = 0 *)

let make n f =
  if n < 0 || n > Varset.max_vars then invalid_arg "Polymatroid.make";
  let size = 1 lsl n in
  let v = Array.init size (fun m -> if m = 0 then Rat.zero else f m) in
  { n; v }

let n_vars h = h.n
let value h x =
  if x < 0 || x >= Array.length h.v then invalid_arg "Polymatroid.value: set out of range";
  h.v.(x)

let cond h y x = value h (Varset.union y x) -/ value h x

let mutual h a b x =
  value h (Varset.union a x) +/ value h (Varset.union b x)
  -/ value h (Varset.union (Varset.union a b) x)
  -/ value h x

let equal a b = a.n = b.n && Array.for_all2 Rat.equal a.v b.v

let zero n = make n (fun _ -> Rat.zero)

let add a b =
  if a.n <> b.n then invalid_arg "Polymatroid.add: arity mismatch";
  { n = a.n; v = Array.map2 Rat.add a.v b.v }

let scale c h = { h with v = Array.map (Rat.mul c) h.v }

let dominates g h =
  g.n = h.n && Array.for_all2 (fun a b -> a >=/ b) g.v h.v

let step n w =
  let full = Varset.full n in
  if Varset.equal w full then invalid_arg "Polymatroid.step: W must be proper";
  make n (fun x -> if Varset.subset x w then Rat.zero else Rat.one)

let modular_of_weights weights =
  Array.iter
    (fun w -> if Rat.sign w < 0 then invalid_arg "Polymatroid.modular_of_weights: negative weight")
    weights;
  let n = Array.length weights in
  make n (fun x ->
      Varset.fold_elements (fun i acc -> acc +/ weights.(i)) x Rat.zero)

let normal_of_steps n coeffs =
  List.iter
    (fun (w, c) ->
      if Rat.sign c < 0 then invalid_arg "Polymatroid.normal_of_steps: negative coefficient";
      if Varset.equal w (Varset.full n) then
        invalid_arg "Polymatroid.normal_of_steps: W must be proper")
    coeffs;
  make n (fun x ->
      List.fold_left
        (fun acc (w, c) -> if Varset.subset x w then acc else acc +/ c)
        Rat.zero coeffs)

let parity =
  make 3 (fun x -> if Varset.cardinal x = 1 then Rat.one else Rat.two)

let uniform_step_max weights =
  Array.iter
    (fun w -> if Rat.sign w < 0 then invalid_arg "Polymatroid.uniform_step_max: negative weight")
    weights;
  let n = Array.length weights in
  make n (fun x ->
      Varset.fold_elements (fun i acc -> Rat.max acc weights.(i)) x Rat.zero)

let is_polymatroid h =
  let full = Varset.full h.n in
  (* Elemental monotonicity: h(V) >= h(V \ {i}). *)
  let mono =
    List.for_all
      (fun i -> value h full >=/ value h (Varset.remove i full))
      (Varset.to_list full)
  in
  (* Elemental submodularity: for i <> j, W ⊆ V \ {i,j}:
     h(iW) + h(jW) >= h(ijW) + h(W). *)
  let submod = ref true in
  for i = 0 to h.n - 1 do
    for j = i + 1 to h.n - 1 do
      let rest = Varset.diff full (Varset.of_list [ i; j ]) in
      Varset.iter_subsets rest (fun w ->
          let iw = Varset.add i w and jw = Varset.add j w in
          let ijw = Varset.add j iw in
          if not (value h iw +/ value h jw >=/ (value h ijw +/ value h w)) then
            submod := false)
    done
  done;
  Rat.is_zero h.v.(0) && mono && !submod

let is_modular h =
  let full = Varset.full h.n in
  let ok = ref true in
  Varset.iter_subsets full (fun x ->
      let expected =
        Varset.fold_elements
          (fun i acc -> acc +/ value h (Varset.singleton i))
          x Rat.zero
      in
      if not (Rat.equal (value h x) expected) then ok := false);
  !ok
  && Varset.to_list full
     |> List.for_all (fun i -> Rat.sign (value h (Varset.singleton i)) >= 0)

let mobius h x =
  let acc = ref Rat.zero in
  Varset.iter_supersets ~n:h.n x (fun y ->
      let d = Varset.cardinal (Varset.diff y x) in
      let v = value h y in
      acc := !acc +/ (if d land 1 = 0 then v else Rat.neg v));
  !acc

let of_mobius n g =
  make n (fun x ->
      let acc = ref Rat.zero in
      Varset.iter_supersets ~n x (fun y -> acc := !acc +/ g y);
      !acc)

let is_normal h =
  let full = Varset.full h.n in
  let ok = ref true in
  Varset.iter_subsets full (fun x ->
      if not (Varset.equal x full) && Rat.sign (mobius h x) > 0 then ok := false);
  !ok && Rat.is_zero h.v.(0)

let is_entropic_known = is_normal

let normal_decomposition h =
  if not (is_normal h) then None
  else begin
    let full = Varset.full h.n in
    let coeffs = ref [] in
    Varset.iter_subsets full (fun w ->
        if not (Varset.equal w full) then begin
          let c = Rat.neg (mobius h w) in
          if Rat.sign c > 0 then coeffs := (w, c) :: !coeffs
        end);
    Some !coeffs
  end

let eval h e = Linexpr.eval (value h) e
let eval_cexpr h e = eval h (Cexpr.to_linexpr e)

let pp ?(names = Varset.default_name) () fmt h =
  let full = Varset.full h.n in
  Format.pp_print_char fmt '[';
  let first = ref true in
  (* Print by increasing cardinality then mask, matching hand conventions. *)
  let subsets = Varset.fold_subsets full (fun s acc -> s :: acc) [] in
  let subsets =
    List.sort
      (fun a b ->
        let c = compare (Varset.cardinal a) (Varset.cardinal b) in
        if c <> 0 then c else compare a b)
      subsets
  in
  List.iter
    (fun s ->
      if not (Varset.is_empty s) then begin
        if not !first then Format.pp_print_string fmt ", ";
        first := false;
        Format.fprintf fmt "h(%s)=%a"
          (String.concat "" (List.map names (Varset.to_list s)))
          Rat.pp (value h s)
      end)
    subsets;
  Format.pp_print_char fmt ']'
