(** Conditional linear expressions: [E(h) = Σ d·h(Y|X)] with [d ≥ 0].

    Theorem 3.6 of the paper restricts the shape of the right-hand sides of
    a max-inequality {e syntactically}: each [Eℓ] must be a non-negative
    combination of conditional entropies, {e unconditioned} ([X = ∅]) for
    the modular case or {e simple} ([|X| ≤ 1]) for the normal case.  The
    tree-decomposition expression [E_T] of Eq. (7) is born in this form,
    so we keep the conditional structure explicit rather than recovering
    it from a flattened linear expression. *)

open Bagcqc_num

type part = {
  y : Varset.t;  (** the conditioned set; the term is [h(y ∪ x | x)] *)
  x : Varset.t;  (** the conditioning set *)
  d : Rat.t;     (** non-negative coefficient *)
}

type t

val zero : t

val part : ?coeff:Rat.t -> Varset.t -> Varset.t -> t
(** [part y x] is the term [coeff · h(y|x)] (the conditioned set first,
    like [Linexpr.cond]).
    @raise Invalid_argument on a negative coefficient. *)

val entropy : ?coeff:Rat.t -> Varset.t -> t
(** [entropy y] is the unconditioned [h(y)]. *)

val add : t -> t -> t
val sum : t list -> t
val parts : t -> part list

val is_unconditioned : t -> bool
(** Every part has [x = ∅] (Theorem 3.6 (i)). *)

val is_simple : t -> bool
(** Every part has [|x| ≤ 1] (Theorem 3.6 (ii)). *)

val to_linexpr : t -> Linexpr.t
(** Flatten: [h(y|x) = h(y ∪ x) − h(x)]. *)

val rename : (int -> int) -> t -> t
(** Apply a variable substitution [φ] to every part (the paper's
    [E_T ∘ φ]). *)

val max_var : t -> int

val pp : ?names:(int -> string) -> unit -> Format.formatter -> t -> unit
