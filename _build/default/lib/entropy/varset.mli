(** Sets of (random / query) variables, represented as bit masks.

    The paper works with a ground set [V = {X1, ..., Xn}] and constantly
    quantifies over all subsets of [V]; every entropic object in this
    library is indexed by such subsets.  A set is an [int] bit mask over
    variable indices [0 .. n-1], which makes subset iteration and lattice
    operations cheap — the cone LPs already have 2{^n} columns, so [n]
    never approaches the 62-bit limit. *)

type t = int
(** Bit mask; bit [i] set iff variable [i] is in the set. *)

val max_vars : int
(** Hard upper bound on the number of ground variables (62). *)

val empty : t
val full : int -> t
(** [full n] is [{0, ..., n-1}].  @raise Invalid_argument if [n] exceeds
    {!max_vars} or is negative. *)

val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] iff [a ⊆ b]. *)

val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val cardinal : t -> int

val to_list : t -> int list
(** Elements in increasing order. *)

val of_list : int list -> t

val fold_elements : (int -> 'a -> 'a) -> t -> 'a -> 'a

val iter_subsets : t -> (t -> unit) -> unit
(** All subsets of the given set, including [empty] and the set itself. *)

val fold_subsets : t -> (t -> 'a -> 'a) -> 'a -> 'a

val iter_supersets : n:int -> t -> (t -> unit) -> unit
(** All supersets within [full n]. *)

val pp : ?names:(int -> string) -> unit -> Format.formatter -> t -> unit
(** Prints e.g. [{X1,X3}]; default names are [X1 .. Xn] (1-based, matching
    the paper). *)

val default_name : int -> string
