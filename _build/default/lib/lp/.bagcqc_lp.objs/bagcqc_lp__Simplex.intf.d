lib/lp/simplex.mli: Bagcqc_num Rat
