lib/lp/simplex.ml: Array Bagcqc_num List Rat
