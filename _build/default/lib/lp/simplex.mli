(** Exact linear programming over rationals.

    A dense two-phase primal simplex with Bland's anti-cycling rule,
    computing over {!Bagcqc_num.Rat} so every answer is exact — the
    decidability results of the paper (Theorem 3.1, Theorem 3.6) reduce
    validity of (max-)information inequalities to LPs over the polyhedral
    cones Γn, Nn, Mn, and a floating-point solver could misclassify
    inequalities that hold with slack 0 (most interesting ones do).

    All variables are implicitly constrained to be non-negative; callers
    model free variables by splitting into differences (none of the cones
    used in this project need that). *)

open Bagcqc_num

type op = Le | Ge | Eq

type constr = {
  coeffs : Rat.t array; (** dense row, length [num_vars] *)
  op : op;
  rhs : Rat.t;
}

type problem = {
  num_vars : int;
  (** Objective to {b minimize}. *)
  objective : Rat.t array;
  constraints : constr list;
}

type outcome =
  | Optimal of Rat.t * Rat.t array  (** optimal value and a primal solution *)
  | Unbounded
  | Infeasible

val constr : Rat.t array -> op -> Rat.t -> constr

val solve : problem -> outcome
(** @raise Invalid_argument if a row length differs from [num_vars]. *)

val feasible : num_vars:int -> constr list -> Rat.t array option
(** [feasible ~num_vars cs] is a point of the polyhedron
    [{x >= 0 | cs}] if one exists. *)

val maximize : problem -> outcome
(** Same problem record, but the objective is maximized.  The reported
    optimal value is the maximum. *)
