(* Two-phase dense primal simplex over exact rationals.

   Tableau layout: [m] rows of length [ncols + 1]; column [ncols] is the
   right-hand side.  [basis.(r)] is the column basic in row [r].  Row
   operations keep the basic columns at identity.  Bland's rule (smallest
   eligible index for both the entering and the leaving variable) guarantees
   termination. *)

open Bagcqc_num
open Rat.Infix

type op = Le | Ge | Eq

type constr = { coeffs : Rat.t array; op : op; rhs : Rat.t }

type problem = {
  num_vars : int;
  objective : Rat.t array;
  constraints : constr list;
}

type outcome =
  | Optimal of Rat.t * Rat.t array
  | Unbounded
  | Infeasible

let constr coeffs op rhs = { coeffs; op; rhs }

type tableau = {
  rows : Rat.t array array; (* m rows, each of length ncols + 1 *)
  mutable obj : Rat.t array; (* reduced-cost row, length ncols + 1 *)
  basis : int array; (* column basic in each row *)
  ncols : int;
}

let rhs_col t = t.ncols

(* Gaussian pivot on (row, col): scale the row so the pivot becomes 1, then
   eliminate the column from all other rows and from the objective. *)
let pivot t r c =
  let row = t.rows.(r) in
  let p = row.(c) in
  assert (not (Rat.is_zero p));
  let inv_p = Rat.inv p in
  for j = 0 to t.ncols do
    row.(j) <- row.(j) */ inv_p
  done;
  let eliminate target =
    let f = target.(c) in
    if not (Rat.is_zero f) then
      for j = 0 to t.ncols do
        target.(j) <- target.(j) -/ (f */ row.(j))
      done
  in
  Array.iteri (fun i target -> if i <> r then eliminate target) t.rows;
  eliminate t.obj;
  t.basis.(r) <- c

(* One phase of simplex: minimize the current objective row over the columns
   [allowed].  Returns [`Optimal] or [`Unbounded].

   Pivoting rule: Dantzig (most negative reduced cost) for speed, falling
   back permanently to Bland's rule (smallest eligible indices) once a long
   run of degenerate pivots suggests cycling — Bland guarantees
   termination. *)
let degenerate_limit = 60

let run_phase t ~allowed =
  let m = Array.length t.rows in
  let bland = ref false in
  let degenerate_run = ref 0 in
  let rec iterate () =
    let entering = ref (-1) in
    if !bland then begin
      (try
         for j = 0 to t.ncols - 1 do
           if allowed j && Rat.sign t.obj.(j) < 0 then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ())
    end
    else begin
      let best = ref Rat.zero in
      for j = 0 to t.ncols - 1 do
        if allowed j && Rat.compare t.obj.(j) !best < 0 then begin
          best := t.obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let c = !entering in
      (* Leaving: min ratio rhs/coeff over rows with coeff > 0; ties broken
         by the smallest basis column. *)
      let best_row = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(c) in
        if Rat.sign a > 0 then begin
          let ratio = t.rows.(i).(rhs_col t) // a in
          if !best_row < 0
             || Rat.compare ratio !best_ratio < 0
             || (Rat.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        if Rat.is_zero !best_ratio then begin
          incr degenerate_run;
          if !degenerate_run > degenerate_limit then bland := true
        end
        else degenerate_run := 0;
        pivot t !best_row c;
        iterate ()
      end
    end
  in
  iterate ()

let solution_of t ~num_vars =
  let x = Array.make num_vars Rat.zero in
  Array.iteri
    (fun r c -> if c < num_vars then x.(c) <- t.rows.(r).(rhs_col t))
    t.basis;
  x

let solve { num_vars; objective; constraints } =
  if Array.length objective <> num_vars then
    invalid_arg "Simplex.solve: objective length mismatch";
  List.iter
    (fun c ->
      if Array.length c.coeffs <> num_vars then
        invalid_arg "Simplex.solve: constraint length mismatch")
    constraints;
  let constraints = Array.of_list constraints in
  let m = Array.length constraints in
  (* Normalize rows to non-negative rhs. *)
  let rows_data =
    Array.map
      (fun { coeffs; op; rhs } ->
        if Rat.sign rhs < 0 then
          ( Array.map Rat.neg coeffs,
            (match op with Le -> Ge | Ge -> Le | Eq -> Eq),
            Rat.neg rhs )
        else (Array.copy coeffs, op, rhs))
      constraints
  in
  (* Column layout: [0, num_vars) structural, then one slack/surplus column
     per inequality, then one artificial column per Ge/Eq row. *)
  let num_slack =
    Array.fold_left
      (fun acc (_, op, _) -> match op with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows_data
  in
  let num_art =
    Array.fold_left
      (fun acc (_, op, _) -> match op with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows_data
  in
  let ncols = num_vars + num_slack + num_art in
  let art_start = num_vars + num_slack in
  let rows = Array.init m (fun _ -> Array.make (ncols + 1) Rat.zero) in
  let basis = Array.make m (-1) in
  let next_slack = ref num_vars and next_art = ref art_start in
  Array.iteri
    (fun i (coeffs, op, rhs) ->
      Array.blit coeffs 0 rows.(i) 0 num_vars;
      rows.(i).(ncols) <- rhs;
      (match op with
       | Le ->
         rows.(i).(!next_slack) <- Rat.one;
         basis.(i) <- !next_slack;
         incr next_slack
       | Ge ->
         rows.(i).(!next_slack) <- Rat.minus_one;
         incr next_slack;
         rows.(i).(!next_art) <- Rat.one;
         basis.(i) <- !next_art;
         incr next_art
       | Eq ->
         rows.(i).(!next_art) <- Rat.one;
         basis.(i) <- !next_art;
         incr next_art))
    rows_data;
  let t = { rows; obj = Array.make (ncols + 1) Rat.zero; basis; ncols } in
  (* ---------------- Phase 1: minimize the sum of artificials. ------- *)
  if num_art > 0 then begin
    let obj = Array.make (ncols + 1) Rat.zero in
    for j = art_start to ncols - 1 do
      obj.(j) <- Rat.one
    done;
    t.obj <- obj;
    (* Price out: artificials are basic, so subtract their rows. *)
    Array.iteri
      (fun i c ->
        if c >= art_start then
          for j = 0 to ncols do
            obj.(j) <- obj.(j) -/ t.rows.(i).(j)
          done)
      t.basis;
    (match run_phase t ~allowed:(fun _ -> true) with
     | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
     | `Optimal -> ());
    (* obj.(ncols) holds -(phase-1 value). *)
    if Rat.sign t.obj.(ncols) < 0 then raise Exit
  end;
  (* Drive remaining artificials out of the basis where possible; rows where
     it is impossible are redundant (all-zero) and harmless. *)
  Array.iteri
    (fun r c ->
      if c >= art_start then begin
        let found = ref (-1) in
        (try
           for j = 0 to art_start - 1 do
             if not (Rat.is_zero t.rows.(r).(j)) then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot t r !found
      end)
    t.basis;
  (* ---------------- Phase 2: the real objective. --------------------- *)
  let obj = Array.make (ncols + 1) Rat.zero in
  Array.blit objective 0 obj 0 num_vars;
  t.obj <- obj;
  Array.iteri
    (fun i c ->
      if c < ncols && not (Rat.is_zero obj.(c)) then begin
        let f = obj.(c) in
        for j = 0 to ncols do
          obj.(j) <- obj.(j) -/ (f */ t.rows.(i).(j))
        done
      end)
    t.basis;
  let allowed j = j < art_start in
  match run_phase t ~allowed with
  | `Unbounded -> Unbounded
  | `Optimal ->
    (* obj.(ncols) = -(objective value). *)
    Optimal (Rat.neg t.obj.(ncols), solution_of t ~num_vars)

let solve p = try solve p with Exit -> Infeasible

let feasible ~num_vars constraints =
  match solve { num_vars; objective = Array.make num_vars Rat.zero; constraints } with
  | Optimal (_, x) -> Some x
  | Infeasible -> None
  | Unbounded -> assert false (* constant objective cannot be unbounded *)

let maximize p =
  match solve { p with objective = Array.map Rat.neg p.objective } with
  | Optimal (v, x) -> Optimal (Rat.neg v, x)
  | (Unbounded | Infeasible) as o -> o
