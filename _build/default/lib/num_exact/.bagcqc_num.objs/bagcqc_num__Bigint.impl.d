lib/num_exact/bigint.ml: Array Buffer Char Format List Printf String
