lib/num_exact/logint.ml: Bigint Float Format Map Rat
