lib/num_exact/logint.mli: Bigint Format Rat
