lib/num_exact/bigint.mli: Format
