lib/num_exact/rat.ml: Bigint Format String
