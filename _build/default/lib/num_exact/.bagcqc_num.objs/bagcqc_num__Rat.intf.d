lib/num_exact/rat.mli: Bigint Format
