(* Sign-magnitude bignums over base-2^30 limbs, little-endian.

   Invariants: [mag] has no most-significant zero limb; [sign = 0] iff [mag]
   is empty; every limb is in [0, base).  Division follows Knuth's
   Algorithm D; with 63-bit native ints and 30-bit limbs every intermediate
   product (at most 61 bits) fits without overflow. *)

type t = { sign : int; mag : int array }

let base_bits = 30
let base = 1 lsl base_bits
let limb_mask = base - 1

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned little-endian int array) primitives.            *)
(* ------------------------------------------------------------------ *)

let mag_norm a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_of_int n =
  (* n >= 0; [min_int] is handled by the caller. *)
  if n = 0 then [||]
  else if n < base then [| n |]
  else if n lsr base_bits < base then [| n land limb_mask; n lsr base_bits |]
  else
    [| n land limb_mask;
       (n lsr base_bits) land limb_mask;
       n lsr (2 * base_bits) |]

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  mag_norm r

(* Precondition: a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_norm r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let p = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- p land limb_mask;
        carry := p lsr base_bits
      done;
      (* Propagate the final carry (it can exceed one limb only by 0). *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let p = r.(!k) + !carry in
        r.(!k) <- p land limb_mask;
        carry := p lsr base_bits;
        incr k
      done
    done;
    mag_norm r
  end

let mag_shift_left a bits =
  if Array.length a = 0 || bits = 0 then a
  else begin
    let limbs = bits / base_bits and rest = bits mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl rest in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr base_bits
    done;
    mag_norm r
  end

let mag_shift_right a bits =
  let limbs = bits / base_bits and rest = bits mod base_bits in
  let la = Array.length a in
  if limbs >= la then [||]
  else begin
    let lr = la - limbs in
    let r = Array.make lr 0 in
    for i = 0 to lr - 1 do
      let lo = a.(i + limbs) lsr rest in
      let hi = if i + limbs + 1 < la && rest > 0 then a.(i + limbs + 1) lsl (base_bits - rest) else 0 in
      r.(i) <- (lo lor hi) land limb_mask
    done;
    mag_norm r
  end

let limb_leading_zeros v =
  (* Zeros within the 30-bit limb width; v in (0, base). *)
  let rec loop n m = if m land (base lsr 1) <> 0 then n else loop (n + 1) (m lsl 1) in
  loop 0 v

(* Division of magnitudes by a single limb d > 0: returns (quotient, rem). *)
let mag_divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_norm q, !r)

(* Knuth Algorithm D.  Precondition: Array.length v >= 2, u >= v. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  let shift = limb_leading_zeros v.(n - 1) in
  let vn = mag_shift_left v shift in
  let un0 = mag_shift_left u shift in
  let m = Array.length un0 - n in
  (* Working copy with one guaranteed extra high limb. *)
  let un = Array.make (Array.length un0 + 1) 0 in
  Array.blit un0 0 un 0 (Array.length un0);
  let m = if m < 0 then 0 else m in
  let q = Array.make (m + 1) 0 in
  let v_hi = vn.(n - 1) and v_lo = if n >= 2 then vn.(n - 2) else 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (num / v_hi) and rhat = ref (num mod v_hi) in
    let continue_adjust = ref true in
    while !continue_adjust do
      if !qhat >= base || !qhat * v_lo > (!rhat lsl base_bits) lor un.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + v_hi;
        if !rhat >= base then continue_adjust := false
      end
      else continue_adjust := false
    done;
    (* Multiply and subtract qhat * vn from un[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * vn.(i) + !carry in
      carry := p lsr base_bits;
      let d = un.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin un.(i + j) <- d + base; borrow := 1 end
      else begin un.(i + j) <- d; borrow := 0 end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add vn back. *)
      un.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = un.(i + j) + vn.(i) + !c in
        un.(i + j) <- s land limb_mask;
        c := s lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land limb_mask
    end
    else un.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right (mag_norm (Array.sub un 0 n)) shift in
  (mag_norm q, r)

let mag_divmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | _ when mag_cmp u v < 0 -> ([||], u)
  | 1 ->
    let q, r = mag_divmod_limb u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> mag_divmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Signed interface.                                                   *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = mag_norm mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* |min_int| overflows; build it as -(2^62). *)
    make (-1) (mag_shift_left [| 1 |] 62)
  else if n > 0 then { sign = 1; mag = mag_of_int n }
  else { sign = -1; mag = mag_of_int (-n) }

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_cmp a.mag b.mag
  else mag_cmp b.mag a.mag

let equal a b = compare a b = 0

let hash x =
  Array.fold_left (fun acc limb -> (acc * 1000003) lxor limb) (x.sign + 1) x.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else
    let c = mag_cmp a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else
    let qm, rm = mag_divmod a.mag b.mag in
    (make (a.sign * b.sign) qm, make a.sign rm)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let shift_left x bits =
  if bits = 0 || x.sign = 0 then x
  else make x.sign (mag_shift_left x.mag bits)

let num_bits x =
  let n = Array.length x.mag in
  if n = 0 then 0
  else (n - 1) * base_bits + (base_bits - limb_leading_zeros x.mag.(n - 1))

let is_even x = x.sign = 0 || x.mag.(0) land 1 = 0

(* Binary GCD: avoids the cost of full divisions on large operands. *)
let gcd a b =
  let rec twos x n = if x.sign <> 0 && is_even x then twos (make 1 (mag_shift_right x.mag 1)) (n + 1) else (x, n) in
  let a = abs a and b = abs b in
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else begin
    let a, ka = twos a 0 in
    let b, kb = twos b 0 in
    let k = if ka < kb then ka else kb in
    let rec loop a b =
      (* Both odd. *)
      if equal a b then a
      else
        let big, small = if compare a b > 0 then (a, b) else (b, a) in
        let d, _ = twos (sub big small) 0 in
        loop d small
    in
    shift_left (loop a b) k
  end

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else if k land 1 = 1 then go (mul acc b) (mul b b) (k lsr 1)
    else go acc (mul b b) (k lsr 1)
  in
  go one x k

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int_opt x =
  (* Fast path: at most three limbs can fit in 62 bits. *)
  let n = Array.length x.mag in
  if n = 0 then Some 0
  else if num_bits x > 62 then None
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl base_bits) lor x.mag.(i)
    done;
    Some (x.sign * !v)
  end

let to_float x =
  let m = Array.length x.mag in
  let v = ref 0.0 in
  for i = m - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  float_of_int x.sign *. !v

let ten = of_int 10

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    (* Extract base-10^9 digits, least significant first. *)
    let rec chunks acc m =
      if Array.length m = 0 then acc
      else
        let q, r = mag_divmod_limb m 1_000_000_000 in
        chunks (r :: acc) q
    in
    (match chunks [] x.mag with
     | [] -> assert false
     | d :: rest ->
       if x.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int d);
       List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%09d" d)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
      acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
    | _ -> invalid_arg "Bigint.of_string: invalid character"
  done;
  if neg_sign then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)
