(** Exact arithmetic on formal sums [Σ cᵢ · log₂ aᵢ].

    Entropies of (totally) uniform relations are logarithms of positive
    integers, and the expressions the paper compares — [log |P|] against
    [(E_T ∘ φ)(h)] in Theorem 4.4, the Vee example 4.3, witness
    verification — are rational combinations of such logarithms.  This
    module decides their sign {i exactly}: [Σ cᵢ log aᵢ ≥ 0] iff
    [Π aᵢ^{cᵢ·D} ≥ 1] for a common denominator [D], which is an integer
    comparison. *)

type t

val zero : t

val log : Bigint.t -> t
(** [log a] is the formal [log₂ a].  @raise Invalid_argument if [a <= 0]. *)

val log_int : int -> t

val scale : Rat.t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val sign : t -> int
(** Exact sign of the real number denoted: [-1], [0] or [1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_float : t -> float
(** Floating-point approximation (for display only). *)

val terms : t -> (Bigint.t * Rat.t) list
(** The normalized term list [(base, coefficient)], bases distinct, > 1,
    coefficients nonzero, sorted by base. *)

val pp : Format.formatter -> t -> unit
