(* Formal sums of logarithms with rational coefficients, compared exactly by
   exponentiating back to integers. *)

module BMap = Map.Make (struct
  type t = Bigint.t
  let compare = Bigint.compare
end)

type t = Rat.t BMap.t
(* Invariant: keys > 1, values nonzero. *)

let zero = BMap.empty

let log a =
  if Bigint.sign a <= 0 then invalid_arg "Logint.log: non-positive argument";
  if Bigint.equal a Bigint.one then BMap.empty else BMap.singleton a Rat.one

let log_int n = log (Bigint.of_int n)

let add_term base coeff m =
  if Bigint.equal base Bigint.one || Rat.is_zero coeff then m
  else
    BMap.update base
      (function
        | None -> Some coeff
        | Some c ->
          let c' = Rat.add c coeff in
          if Rat.is_zero c' then None else Some c')
      m

let add a b = BMap.fold add_term b a
let neg a = BMap.map Rat.neg a
let sub a b = add a (neg b)

let scale c a = if Rat.is_zero c then zero else BMap.map (Rat.mul c) a

let sign t =
  if BMap.is_empty t then 0
  else begin
    (* Common denominator D of all coefficients, then compare
       Π base^(num·D/den)  over positive vs. negative exponents. *)
    let d =
      BMap.fold
        (fun _ c acc ->
          let g = Bigint.gcd acc (Rat.den c) in
          Bigint.mul acc (Bigint.div (Rat.den c) g))
        t Bigint.one
    in
    let pos = ref Bigint.one and neg_acc = ref Bigint.one in
    BMap.iter
      (fun base c ->
        let e = Bigint.mul (Rat.num c) (Bigint.div d (Rat.den c)) in
        match Bigint.to_int_opt (Bigint.abs e) with
        | None -> failwith "Logint.sign: exponent too large"
        | Some k ->
          let p = Bigint.pow base k in
          if Bigint.sign e > 0 then pos := Bigint.mul !pos p
          else neg_acc := Bigint.mul !neg_acc p)
      t;
    Bigint.compare !pos !neg_acc
  end

let compare a b = sign (sub a b)
let equal a b = compare a b = 0

let to_float t =
  BMap.fold
    (fun base c acc -> acc +. (Rat.to_float c *. (Float.log (Bigint.to_float base) /. Float.log 2.0)))
    t 0.0

let terms t = BMap.bindings t

let pp fmt t =
  if BMap.is_empty t then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    BMap.iter
      (fun base c ->
        if not !first then Format.pp_print_string fmt " + ";
        first := false;
        Format.fprintf fmt "%a*log(%a)" Rat.pp c Bigint.pp base)
      t
  end
