(* Scenario: information-theoretic schema analysis.

   Section 6 of the paper credits Tony Lee (1987) with the formula E_T and
   with entropy characterizations of classical database dependencies:

     FD  X -> Y      iff  h(Y|X) = 0
     MVD X ->> Y     iff  I(Y; V-XY | X) = 0
     lossless join   iff  E_T(h) = h(V)

   This example analyzes a small course-enrollment relation both ways -
   relational algebra and exact entropy - and decides which decompositions
   are lossless.

   Run with:  dune exec examples/schema_design.exe *)

open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq

let vs = Varset.of_list

(* Attributes: 0 = course, 1 = teacher, 2 = book, 3 = room. *)
let names = [| "course"; "teacher"; "book"; "room" |]

let enrollment =
  Relation.of_int_rows ~arity:4
    [ (* course 0 taught by teachers 0,1 from books 0,1, always room 0 *)
      [ 0; 0; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 0; 1; 0; 0 ]; [ 0; 1; 1; 0 ];
      (* course 1 taught by teacher 2 from book 0, room 1 *)
      [ 1; 2; 0; 1 ] ]

let show_set s =
  String.concat "," (List.map (fun i -> names.(i)) (Varset.to_list s))

let check_fd x y =
  let rel = Dependencies.fd_holds enrollment ~x ~y in
  let ent = Dependencies.fd_holds_entropy enrollment ~x ~y in
  Format.printf "FD  %-18s -> %-10s : %-5b (h(Y|X)=0: %b)@."
    (show_set x) (show_set y) rel ent

let check_mvd x y =
  let rel = Dependencies.mvd_holds enrollment ~x ~y in
  let ent = Dependencies.mvd_holds_entropy enrollment ~x ~y in
  Format.printf "MVD %-18s ->> %-9s : %-5b (I=0: %b)@."
    (show_set x) (show_set y) rel ent

let check_decomposition name bags edges =
  let t = Treedec.make ~bags ~edges in
  let rel = Dependencies.lossless_join enrollment t in
  let ent = Dependencies.lossless_join_entropy enrollment t in
  Format.printf "decomposition %-28s lossless: %-5b (E_T(h)=h(V): %b)@."
    name rel ent

let () =
  Format.printf "schema analysis of enrollment(course, teacher, book, room)@.@.";
  Format.printf "%a@.@." Relation.pp enrollment;

  check_fd (vs [ 0 ]) (vs [ 3 ]);            (* course -> room: yes *)
  check_fd (vs [ 0 ]) (vs [ 1 ]);            (* course -> teacher: no *)
  check_fd (vs [ 1 ]) (vs [ 0 ]);            (* teacher -> course: yes here *)
  Format.printf "@.";
  check_mvd (vs [ 0 ]) (vs [ 1 ]);           (* course ->> teacher: yes *)
  check_mvd (vs [ 0 ]) (vs [ 2 ]);           (* course ->> book: yes (complement) *)
  check_mvd (vs [ 1 ]) (vs [ 2 ]);           (* teacher ->> book: also yes,
                                                since teacher -> course *)
  Format.printf "@.";
  (* 4NF-style decomposition driven by the MVD course ->> teacher. *)
  check_decomposition "{course,teacher} {course,book,room}"
    [| vs [ 0; 1 ]; vs [ 0; 2; 3 ] |] [ (0, 1) ];
  (* A lossy decomposition that forgets the course-teacher link. *)
  check_decomposition "{course,book} {teacher,book,room}"
    [| vs [ 0; 2 ]; vs [ 1; 2; 3 ] |] [ (0, 1) ];
  (* The FD course -> room also splits off. *)
  check_decomposition "{course,room} {course,teacher,book}"
    [| vs [ 0; 3 ]; vs [ 0; 1; 2 ] |] [ (0, 1) ];

  Format.printf "@.exact entropies (bits):@.";
  List.iter
    (fun x ->
      Format.printf "  h(%s) = %.3f@." (show_set x)
        (Bagcqc_num.Logint.to_float (Relation.entropy_logint enrollment x)))
    [ vs [ 0 ]; vs [ 1 ]; vs [ 0; 1 ]; vs [ 0; 1; 2; 3 ] ]
