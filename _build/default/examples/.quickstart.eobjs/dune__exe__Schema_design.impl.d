examples/schema_design.ml: Array Bagcqc_cq Bagcqc_entropy Bagcqc_num Bagcqc_relation Dependencies Format List Relation String Treedec Varset
