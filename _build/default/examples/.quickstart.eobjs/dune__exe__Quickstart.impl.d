examples/quickstart.ml: Bagcqc_core Bagcqc_cq Containment Format Parser Query
