examples/query_optimizer.ml: Bagcqc_core Bagcqc_cq Containment Format List Parser
