examples/quickstart.mli:
