examples/graph_motifs.mli:
