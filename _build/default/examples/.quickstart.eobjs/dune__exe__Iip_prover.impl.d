examples/iip_prover.ml: Bagcqc_core Bagcqc_cq Bagcqc_entropy Bagcqc_num Cexpr Cones Containment Format Linexpr List Maxii Normalize Polymatroid Rat Reduction Varset
