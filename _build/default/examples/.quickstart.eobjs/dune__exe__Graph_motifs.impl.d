examples/graph_motifs.ml: Bagcqc_core Bagcqc_cq Containment Domination Format List Parser
