examples/iip_prover.mli:
