examples/schema_design.mli:
