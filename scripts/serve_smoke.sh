#!/usr/bin/env bash
# End-to-end smoke of the containment daemon over a real Unix socket:
# boots `bagcqc serve` as a separate process with a persistent store and
# tracing on, drives it with `bagcqc client`, and checks the full
# lifecycle the unit tests can only approximate in-process:
#
#   1. in-process protocol selftest (`serve --selftest`)
#   2. cold check answered with a verified certificate
#   3. cached re-check + stats (store gains exactly one entry)
#   4. malformed line and zero deadline answered with typed errors,
#      connection and daemon both surviving
#   5. graceful drain on SIGTERM: exit 0, socket file removed, trace
#      artifact written and readable by `bagcqc report`
#   6. warm restart: verdict served from the store with zero simplex pivots
#   7. corrupted store entry: rejected (counted) on load, never served,
#      and the re-check still answers correctly by re-solving
#   8. telemetry surface: /metrics is valid Prometheus exposition
#      (validated by `bagcqc promlint`) with serve latency histograms,
#      queue/in-flight gauges and rolling 1m rates; /healthz answers ok;
#      the slow request's access-log line carries its span subtree
#   9. /readyz flips to 503 during a SIGTERM drain (observed while a
#      burst of cold checks is still being answered) and the drain
#      still answers every admitted request
#
# Run from the repo root (CI's serve-smoke job, or `make serve-smoke`).
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/main.exe
BIN=_build/default/bin/main.exe

DIR=$(mktemp -d)
SOCK="$DIR/serve.sock"
STORE="$DIR/store.log"
TRACE="${TRACE_OUT:-$DIR/serve-trace.json}"
ACCESS="${ACCESS_OUT:-$DIR/serve-access.jsonl}"
LOG="$DIR/serve.log"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$LOG" >&2 2>/dev/null || true
  exit 1
}

step() { echo "serve_smoke: $*"; }

start_daemon() {
  "$BIN" serve --socket "$SOCK" --store "$STORE" --jobs 2 "$@" \
    >>"$LOG" 2>&1 &
  SERVER_PID=$!
}

stop_daemon() {
  kill -TERM "$SERVER_PID"
  local code=0
  wait "$SERVER_PID" || code=$?
  SERVER_PID=""
  [ "$code" -eq 0 ] || fail "daemon exited $code on SIGTERM (want 0)"
  [ -S "$SOCK" ] && fail "socket file survived the drain"
  return 0
}

# client REQUEST...: send each line on one connection, print the replies.
client() {
  local args=()
  local r
  for r in "$@"; do args+=(--send "$r"); done
  "$BIN" client --socket "$SOCK" --retry-ms 5000 "${args[@]}"
}

CHECK_CONTAINED='{"id":1,"op":"check","q1":"R(x,y), R(y,z), R(z,x)","q2":"R(u,v), R(u,w)","certificate":true}'
STATS='{"id":"s","op":"stats"}'

step "1: protocol selftest"
"$BIN" serve --selftest >"$LOG" 2>&1 || fail "serve --selftest failed"

step "2: cold check over the socket"
start_daemon --trace "$TRACE"
out=$(client "$CHECK_CONTAINED") || fail "client exited nonzero"
echo "$out" | grep -q '"verdict":"contained"' || fail "expected a contained verdict, got: $out"
echo "$out" | grep -q '"certificate"' || fail "expected a certificate in: $out"

step "3: cached re-check + stats"
out=$(client "$CHECK_CONTAINED" "$STATS") || fail "client exited nonzero"
echo "$out" | grep -q '"store_appends":1' || fail "expected one store append in: $out"

step "4: malformed line and zero deadline get typed errors"
out=$(client 'this is not JSON' \
  '{"id":4,"op":"check","q1":"R(x,y)","q2":"R(x,y)","deadline_ms":0}' \
  '{"id":5,"op":"ping"}') || fail "client exited nonzero"
echo "$out" | grep -q '"kind":"parse"' || fail "expected a parse error in: $out"
echo "$out" | grep -q '"kind":"deadline_exceeded"' || fail "expected a deadline error in: $out"
echo "$out" | grep -q '"pong":true' || fail "connection should survive the errors: $out"

step "5: graceful drain on SIGTERM + trace artifact"
stop_daemon
[ -s "$TRACE" ] || fail "trace artifact missing or empty"
# grep without -q: it must read to EOF, or report dies with SIGPIPE and
# pipefail turns a successful match into a failure.
"$BIN" report "$TRACE" | grep 'serve.request' >/dev/null \
  || fail "trace artifact has no serve.request spans"

step "6: warm restart serves the verdict from the store"
start_daemon
out=$(client "$CHECK_CONTAINED" "$STATS") || fail "client exited nonzero"
echo "$out" | grep -q '"verdict":"contained"' || fail "warm verdict wrong: $out"
echo "$out" | grep -q '"store_loaded":1' || fail "expected one store entry loaded in: $out"
echo "$out" | grep -q '"store_hits":1' || fail "expected a store hit in: $out"
echo "$out" | grep -q '"lp_pivots":0' || fail "warm check should not pivot: $out"
stop_daemon

step "7: corrupted store entry is rejected, verdict still correct"
# Flip one digit inside the recorded outcome: the record stays parseable
# JSON but the solution point no longer verifies, so the loader must
# drop it (store_rejected) and the daemon must re-solve from scratch.
python3 - "$STORE" <<'EOF'
import re, sys
path = sys.argv[1]
text = open(path).read()
at = text.index('"outcome"')
m = re.compile(r"[0-9]").search(text, at)
text = text[:m.start()] + ("3" if m.group() != "3" else "4") + text[m.end():]
open(path, "w").write(text)
EOF
start_daemon
out=$(client "$CHECK_CONTAINED" "$STATS") || fail "client exited nonzero"
echo "$out" | grep -q '"verdict":"contained"' || fail "post-corruption verdict wrong: $out"
echo "$out" | grep -q '"store_rejected":1' || fail "expected the corrupt entry rejected in: $out"
echo "$out" | grep -q '"store_loaded":0' || fail "corrupt entry must not load: $out"
stop_daemon

# Wait for the daemon's banner to announce the (ephemeral) metrics port.
metrics_port() {
  local i port
  for i in $(seq 1 100); do
    port=$(grep -o 'metrics on 127.0.0.1:[0-9]*' "$LOG" | tail -1 | grep -o '[0-9]*$') || true
    [ -n "${port:-}" ] && { echo "$port"; return 0; }
    sleep 0.05
  done
  return 1
}

step "8: telemetry surface (/metrics, /healthz, access log with spans)"
: >"$LOG"
start_daemon --metrics-port 0 --access-log "$ACCESS" --slow-ms 0.001
PORT=$(metrics_port) || fail "daemon never announced a metrics port"
out=$(client "$CHECK_CONTAINED") || fail "client exited nonzero"
echo "$out" | grep -q '"verdict":"contained"' || fail "telemetry check wrong: $out"
curl -sf "http://127.0.0.1:$PORT/healthz" | grep -q ok || fail "/healthz not ok"
curl -sf "http://127.0.0.1:$PORT/readyz" | grep -q ready || fail "/readyz not ready"
# Let the rolling windows take a sample past the coalescing gap so the
# 1m rate has real coverage, then scrape.
sleep 0.7
METRICS="$DIR/metrics.txt"
curl -sf "http://127.0.0.1:$PORT/metrics" >"$METRICS" || fail "/metrics scrape failed"
"$BIN" promlint "$METRICS" || fail "/metrics is not valid Prometheus exposition"
grep -q '^bagcqc_serve_request_us_bucket{le="+Inf"}' "$METRICS" \
  || fail "serve.request_us histogram missing from /metrics"
grep -q '^bagcqc_serve_queue_depth ' "$METRICS" || fail "queue-depth gauge missing"
grep -q '^bagcqc_serve_in_flight ' "$METRICS" || fail "in-flight gauge missing"
rate=$(grep '^bagcqc_rate_per_sec{counter="serve.requests",window="1m"}' "$METRICS" \
  | awk '{print $2}')
[ -n "$rate" ] || fail "rolling 1m request rate missing from /metrics"
awk -v r="$rate" 'BEGIN { exit (r > 0 ? 0 : 1) }' \
  || fail "rolling 1m request rate is not positive: $rate"
grep -q '"type":"access"' "$ACCESS" || fail "access log has no access lines"
grep -q '"verdict":"contained"' "$ACCESS" || fail "access line lacks the verdict"
grep '"slow":true' "$ACCESS" | grep -q '"spans":' \
  || fail "slow request's access line lacks its span subtree"
grep '"slow":true' "$ACCESS" | grep -q '"pivots":' \
  || fail "slow request's access line lacks its pivot count"
stop_daemon

step "9: /readyz flips to 503 during the SIGTERM drain"
: >"$LOG"
start_daemon --metrics-port 0 --access-log "$DIR/access-drain.jsonl"
PORT=$(metrics_port) || fail "daemon never announced a metrics port"
# A burst of cold, moderately expensive checks (distinct relation
# symbols defeat every cache tier) keeps the dispatcher busy while we
# deliver SIGTERM mid-batch and watch /readyz through the drain.
BURST=32
for i in $(seq 1 "$BURST"); do
  q=$(python3 -c "import sys; i=int(sys.argv[1]); print(', '.join(f'S{i}(x{j},x{j+1})' for j in range(6)))" "$i")
  client "{\"id\":$i,\"op\":\"check\",\"q1\":\"$q\",\"q2\":\"$q\"}" \
    >>"$DIR/burst-replies.txt" &
done
sleep 0.2
kill -TERM "$SERVER_PID"
saw_draining=0
for _ in $(seq 1 500); do
  body=$(curl -s "http://127.0.0.1:$PORT/readyz" || true)
  if echo "$body" | grep -q draining; then saw_draining=1; break; fi
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.01
done
[ "$saw_draining" -eq 1 ] || fail "/readyz never answered 503 draining during the drain"
code=0
wait "$SERVER_PID" || code=$?
SERVER_PID=""
[ "$code" -eq 0 ] || fail "daemon exited $code on SIGTERM (want 0)"
wait  # burst clients
answered=$(grep -c '"ok":' "$DIR/burst-replies.txt" || true)
[ "$answered" -eq "$BURST" ] || fail "drain answered $answered of $BURST burst requests"

echo "serve_smoke: OK (9 steps)"
