#!/usr/bin/env python3
"""Turn sweep JSONL (bench/sweep.exe run/audit output) into markdown tables.

Reads one or more JSONL files whose records look like

    {"type":"sweep","label":...,"corpus":...,"kind":"check",
     "config":{"cone":...,"lp":...,"jobs":...,"transport":...},
     "total":N,"wall_s":...,"dps":...,"cache_hit_rate":...,
     "mismatches":0,"cert_failures":0,"counters":{...},
     "strata":[{"stratum":...,"count":...,"dps":...,"p50_us":...,
                "p99_us":...,"max_us":...,"mean_us":...,
                "cache_hit_rate":...,"store_hit_rate":...,
                "mismatches":0,"cert_failures":0,...}, ...]}

and prints, per record, a summary line plus a per-stratum table ready to
paste into EXPERIMENTS.md.  With --summary-only, prints just a
cross-record comparison table (one row per record) — the shape used for
the engine-matrix audit section.  Exits 1 if any record reports a
verdict mismatch or certificate failure, so CI can gate on it.

stdlib only; no third-party imports.
"""

import argparse
import json
import sys


def load_records(paths):
    records = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    sys.exit(f"{path}:{lineno}: bad JSON: {exc}")
                if rec.get("type") == "sweep":
                    records.append(rec)
    return records


def fmt_rate(x):
    return f"{100.0 * float(x):.1f}%"


def fmt_dps(x):
    return f"{float(x):,.0f}"


def fmt_us(x):
    x = float(x)
    if x >= 1000.0:
        return f"{x / 1000.0:,.1f} ms"
    return f"{x:,.0f} µs"


def config_label(rec):
    cfg = rec.get("config", {})
    return "{} / {} / jobs={} / {}".format(
        cfg.get("cone", "?"), cfg.get("lp", "?"), cfg.get("jobs", "?"),
        cfg.get("transport", "?"))


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def record_table(rec):
    rows = []
    for s in rec.get("strata", []):
        rows.append([
            s["stratum"], s["count"], fmt_dps(s["dps"]),
            fmt_us(s["p50_us"]), fmt_us(s["p99_us"]), fmt_us(s["max_us"]),
            fmt_rate(s["cache_hit_rate"]), fmt_rate(s["store_hit_rate"]),
            s["mismatches"], s["cert_failures"],
        ])
    rows.append([
        "**overall**", rec["total"], fmt_dps(rec["dps"]), "", "", "",
        fmt_rate(rec["cache_hit_rate"]), "",
        rec["mismatches"], rec["cert_failures"],
    ])
    return table(
        ["stratum", "count", "dec/s", "p50", "p99", "max",
         "cache hit", "store hit", "mism.", "cert fail"],
        rows)


def summary_table(records):
    rows = []
    for rec in records:
        rows.append([
            rec.get("label", ""), config_label(rec), rec["total"],
            fmt_dps(rec["dps"]), fmt_rate(rec["cache_hit_rate"]),
            rec["mismatches"], rec["cert_failures"],
        ])
    return table(
        ["label", "config (cone / lp / jobs / transport)", "total",
         "dec/s", "cache hit", "mism.", "cert fail"],
        rows)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="sweep JSONL file(s)")
    ap.add_argument("--summary-only", action="store_true",
                    help="one comparison table across records, "
                         "no per-stratum detail")
    args = ap.parse_args()

    records = load_records(args.files)
    if not records:
        sys.exit("no sweep records found")

    bad = 0
    if args.summary_only:
        print(summary_table(records))
    else:
        for rec in records:
            print(f"### {rec.get('label', 'sweep')} — {config_label(rec)}")
            print()
            print(f"Corpus `{rec.get('corpus', '?')}` "
                  f"({rec.get('kind', '?')}, {rec['total']} instances), "
                  f"wall {float(rec['wall_s']):.2f} s, "
                  f"{fmt_dps(rec['dps'])} decisions/s overall.")
            print()
            print(record_table(rec))
            print()
    for rec in records:
        bad += int(rec["mismatches"]) + int(rec["cert_failures"])
    if bad:
        print(f"AUDIT FAILURE: {bad} mismatch/certificate failure(s) "
              f"across {len(records)} record(s)", file=sys.stderr)
        return 1
    print(f"audit clean: {len(records)} record(s), 0 mismatches, "
          f"0 certificate failures", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
