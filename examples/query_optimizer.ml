(* Scenario: a cardinality-safe rewrite checker for a SQL optimizer.

   Under bag semantics (SQL's default), replacing a query Q1 by a cheaper
   query Q2 is only safe for upper-bound purposes when Q1 ⊑ Q2, i.e. the
   rewrite can never under-report and the original can never out-count the
   replacement on ANY database.  Chaudhuri-Vardi raised exactly this
   problem for COUNT-GROUP-BY queries; this example uses the library as
   such an oracle on a small workload of candidate rewrites.

   Run with:  dune exec examples/query_optimizer.exe *)

open Bagcqc_cq
open Bagcqc_core

type candidate = {
  name : string;
  original : string;   (* with head variables: a COUNT-GROUP-BY query *)
  rewrite : string;
  expect : string;     (* documentation only *)
}

let workload =
  [ { name = "drop-redundant-self-join";
      original = "Q(x) :- Orders(x,y), Orders(x,y)";
      rewrite = "Q(x) :- Orders(x,y)";
      expect = "equivalent (duplicate atoms collapse under bag-set semantics)" };
    { name = "widen-join-to-star";
      original = "Q(x) :- Orders(x,y)";
      rewrite = "Q(x) :- Orders(x,y), Orders(x,z)";
      expect = "safe upper bound: deg(x) <= deg(x)^2" };
    { name = "narrow-star-to-join";
      original = "Q(x) :- Orders(x,y), Orders(x,z)";
      rewrite = "Q(x) :- Orders(x,y)";
      expect = "UNSAFE: a customer with 2 orders counts 4 vs 2" };
    { name = "triangle-to-vee";
      original = "Q() :- Follows(x,y), Follows(y,z), Follows(z,x)";
      rewrite = "Q() :- Follows(u,v), Follows(u,w)";
      expect = "safe: #triangles <= #vees (Example 4.3)" };
    { name = "path-extension";
      original = "Q() :- Follows(x,y), Follows(y,z)";
      rewrite = "Q() :- Follows(x,y)";
      expect = "UNSAFE: a long path out-counts its edges" } ]

let () =
  Format.printf "cardinality-safe rewrite checking (bag-set semantics)@.@.";
  List.iter
    (fun c ->
      let q1 = Parser.parse c.original in
      let q2 = Parser.parse c.rewrite in
      let verdict =
        match Containment.decide_with_heads ~max_factors:12 q1 q2 with
        | Containment.Contained _ -> "SAFE      (Q1 \xe2\x8a\x91 Q2 proved)"
        | Containment.Not_contained w ->
          Format.asprintf "UNSAFE    (witness: %d vs %d on a %d-row database)"
            w.Containment.card_p w.Containment.hom2
            (Bagcqc_cq.Database.total_rows w.Containment.db)
        | Containment.Unknown { reason = _; _ } -> "UNDECIDED (outside the decidable classes)"
      in
      Format.printf "%-28s %s@.    original: %s@.    rewrite:  %s@.    note:     %s@.@."
        c.name verdict c.original c.rewrite c.expect)
    workload
