(* Quickstart: decide bag containment for the paper's running examples.

   Run with:  dune exec examples/quickstart.exe *)

open Bagcqc_cq
open Bagcqc_core

let report q1 q2 =
  Format.printf "@.Q1 = %a@.Q2 = %a@." Query.pp q1 Query.pp q2;
  Format.printf "Q2 class: %s@."
    (match Containment.classify q2 with
     | Containment.Acyclic_simple -> "acyclic + simple (decidable)"
     | Containment.Chordal_simple -> "chordal + simple (decidable, Thm 3.1)"
     | Containment.Acyclic -> "acyclic"
     | Containment.Chordal -> "chordal"
     | Containment.General -> "general");
  match Containment.decide q1 q2 with
  | Containment.Contained _ ->
    Format.printf "=> CONTAINED (Shannon proof of Eq. 8, Theorem 4.2)@."
  | Containment.Not_contained w ->
    Format.printf
      "=> NOT CONTAINED: witness P with |P| = %d rows, |hom(Q2, Pi_Q1(P))| = %d@."
      w.Containment.card_p w.Containment.hom2
  | Containment.Unknown { reason; _ } -> Format.printf "=> UNKNOWN (%s)@." reason

let () =
  Format.printf "bagcqc quickstart: conjunctive query containment under bag semantics@.";

  (* Example 4.3 (attributed to Eric Vee in Kopparty-Rossman): the number
     of triangles in a graph is at most the number of "vees". *)
  let triangle = Parser.parse "R(x,y), R(y,z), R(z,x)" in
  let vee = Parser.parse "R(y1,y2), R(y1,y3)" in
  report triangle vee;
  report vee triangle;

  (* Example 3.5: needs a NORMAL witness - no product relation works. *)
  let q1 =
    Parser.parse
      "A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')"
  in
  let q2 = Parser.parse "A(y1,y2), B(y1,y3), C(y4,y2)" in
  report q1 q2;

  (* A containment with a genuinely information-theoretic proof:
     deg(x) <= sum of deg(x)^2. *)
  report (Parser.parse "R(x,y)") (Parser.parse "R(x,y), R(x,z)")
