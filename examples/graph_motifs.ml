(* Scenario: homomorphism-count inequalities between graph motifs.

   Extremal graph theory asks which inequalities hold between motif
   counts: is #triangles <= #vees on every graph?  does #paths-of-3
   dominate #edges^2?  These are exactly domination questions (Section 2.1
   of the paper, after Kopparty-Rossman), and the library answers them
   with Shannon proofs or explicit counterexample graphs.

   Run with:  dune exec examples/graph_motifs.exe *)

open Bagcqc_cq
open Bagcqc_core

let motifs =
  [ ("edge", "E(x,y)");
    ("vee", "E(x,y), E(x,z)");           (* out-star with 2 leaves *)
    ("path2", "E(x,y), E(y,z)");         (* directed 2-path *)
    ("triangle", "E(x,y), E(y,z), E(z,x)") ]

let query name = Parser.parse (List.assoc name motifs)

let check a b =
  let qa = query a and qb = query b in
  let verdict =
    match Domination.dominates qa qb with
    | Containment.Contained _ -> "<=  (always)"
    | Containment.Not_contained w ->
      Format.asprintf ">   on a witness graph (%d vs %d)"
        w.Containment.card_p w.Containment.hom2
    | Containment.Unknown _ -> "?   (undecided)"
  in
  Format.printf "#%-9s vs #%-9s : %s@." a b verdict

let check_power (a, na) (b, nb) =
  let qa = query a and qb = query b in
  let verdict =
    match Domination.exponent_dominates ~num:na ~den:nb qa qb with
    | Containment.Contained _ -> "holds on every graph"
    | Containment.Not_contained _ -> "fails on a witness graph"
    | Containment.Unknown _ -> "undecided"
  in
  Format.printf "#%s^%d <= #%s^%d : %s@." a na b nb verdict

let () =
  Format.printf "pairwise motif domination:@.";
  List.iter
    (fun (a, b) -> check a b)
    [ ("triangle", "vee"); ("vee", "triangle");
      ("triangle", "path2"); ("path2", "edge"); ("edge", "path2");
      ("vee", "edge"); ("path2", "vee"); ("vee", "path2") ];
  Format.printf "@.exponent domination (Kopparty-Rossman, Problem 2.2):@.";
  (* #vee <= #edge^2 is Cauchy-Schwarz; #edge^2 <= #vee fails. *)
  check_power ("vee", 1) ("edge", 2);
  check_power ("edge", 2) ("vee", 1);
  (* #path2^2 <= #vee * ... : classic Sidorenko-style check at small scale:
     #path2 <= #edge^2? *)
  check_power ("path2", 1) ("edge", 2);
  (* #triangle^2 <= #vee^3?  (a K-R style fractional exponent: 2/3) *)
  check_power ("triangle", 2) ("vee", 3)
