(* Scenario: an information-inequality prover.

   The flip side of the paper's equivalence: use the library as a prover /
   refuter for (max-)information inequalities, including the machinery the
   paper builds - Shannon certificates, normal-cone refutation, the
   Lemma 3.7 constructions, and the reduction to query containment.

   Run with:  dune exec examples/iip_prover.exe *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_core

let vs = Varset.of_list
let q = Rat.of_int
let i_pair a b x = Linexpr.mutual (vs [ a ]) (vs [ b ]) (vs x)

let show name m =
  Format.printf "@.%s:@.  %a@." name (Maxii.pp ()) m;
  match Maxii.decide m with
  | Maxii.Valid _ -> Format.printf "  => VALID (Shannon)@."
  | Maxii.Invalid h ->
    Format.printf "  => INVALID, refuted by the normal entropic function@.     %a@."
      (Polymatroid.pp ()) h
  | Maxii.Unknown h ->
    Format.printf
      "  => NOT derivable from Shannon inequalities, yet valid on all normal \
       functions:@.     open territory (c.f. Zhang-Yeung). Polymatroid refuter:@.     %a@."
      (Polymatroid.pp ()) h

let () =
  Format.printf "information-inequality prover@.";

  (* Shannon: submodularity. *)
  show "submodularity h(X)+h(Y) >= h(XY)"
    (Maxii.general ~n:2
       [ Linexpr.sum
           [ Linexpr.term (vs [ 0 ]); Linexpr.term (vs [ 1 ]);
             Linexpr.term ~coeff:(q (-1)) (vs [ 0; 1 ]) ] ]);

  (* Example 3.8 from the paper: a genuinely max-linear Shannon fact. *)
  let e1 = Cexpr.add (Cexpr.entropy (vs [ 0; 1 ])) (Cexpr.part (vs [ 1 ]) (vs [ 0 ])) in
  let e2 = Cexpr.add (Cexpr.entropy (vs [ 1; 2 ])) (Cexpr.part (vs [ 2 ]) (vs [ 1 ])) in
  let e3 = Cexpr.add (Cexpr.entropy (vs [ 0; 2 ])) (Cexpr.part (vs [ 0 ]) (vs [ 2 ])) in
  show "Example 3.8: h(X1X2X3) <= max(E1,E2,E3)"
    (Maxii.conditional ~n:3 ~q:Rat.one [ e1; e2; e3 ]);
  show "...but no single side suffices"
    (Maxii.conditional ~n:3 ~q:Rat.one [ e1 ]);

  (* Ingleton: fails over Gamma_4, holds over N_4: genuinely open region. *)
  show "Ingleton I(A;B) <= I(A;B|C)+I(A;B|D)+I(C;D)"
    (Maxii.general ~n:4
       [ Linexpr.sub
           (Linexpr.sum [ i_pair 0 1 [ 2 ]; i_pair 0 1 [ 3 ]; i_pair 2 3 [] ])
           (i_pair 0 1 []) ]);

  (* Zhang-Yeung 1998: valid over Gamma*, not Shannon. *)
  show "Zhang-Yeung: 2I(C;D) <= I(A;B)+I(A;CD)+3I(C;D|A)+I(C;D|B)"
    (Maxii.general ~n:4
       [ Linexpr.sub
           (Linexpr.sum
              [ i_pair 0 1 [];
                Linexpr.mutual (vs [ 0 ]) (vs [ 2; 3 ]) Varset.empty;
                Linexpr.scale (q 3) (i_pair 2 3 [ 0 ]);
                i_pair 2 3 [ 1 ] ])
           (Linexpr.scale (q 2) (i_pair 2 3 [])) ]);

  (* A Shannon certificate, printed. *)
  Format.printf "@.Farkas certificate that h(X)+h(Y) >= h(XY):@.";
  let e =
    Linexpr.sum
      [ Linexpr.term (vs [ 0 ]); Linexpr.term (vs [ 1 ]);
        Linexpr.term ~coeff:(q (-1)) (vs [ 0; 1 ]) ]
  in
  (match Cones.shannon_certificate ~n:2 e with
   | Some cert ->
     List.iter
       (fun (el, lambda) ->
         Format.printf "  %a * [ %a >= 0 ]@." Rat.pp lambda (Linexpr.pp ()) el)
       cert
   | None -> Format.printf "  (not Shannon)@.");

  (* Lemma 3.7 in action on the parity function. *)
  Format.printf "@.Lemma 3.7 on the parity function (Example B.4):@.";
  let h = Polymatroid.parity in
  Format.printf "  h  = %a (normal: %b)@." (Polymatroid.pp ()) h (Polymatroid.is_normal h);
  let h' = Normalize.normalize h in
  Format.printf "  h' = %a (normal: %b)  -- Figure 1@."
    (Polymatroid.pp ()) h' (Polymatroid.is_normal h');

  (* And the reduction: turn an invalid IIP into a non-containment. *)
  Format.printf "@.Reduction (Theorem 5.1): 0 <= -h(X1) becomes:@.";
  let c =
    Reduction.reduce
      (Maxii.general ~n:1 [ Linexpr.term ~coeff:(q (-1)) (vs [ 0 ]) ])
  in
  Format.printf "  Q1 = %a@.  Q2 = %a@." Bagcqc_cq.Query.pp c.Reduction.q1
    Bagcqc_cq.Query.pp c.Reduction.q2;
  (match Containment.decide ~max_factors:16 c.Reduction.q1 c.Reduction.q2 with
   | Containment.Not_contained w ->
     Format.printf "  decided NOT CONTAINED (witness %d > %d), as the IIP is invalid@."
       w.Containment.card_p w.Containment.hom2
   | Containment.Contained _ -> Format.printf "  unexpectedly contained?!@."
   | Containment.Unknown { reason; _ } -> Format.printf "  unknown: %s@." reason)
