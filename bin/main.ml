(* bagcqc — command-line interface to the library.

   Subcommands:
     check    decide Q1 ⊑ Q2 under bag-set semantics
     classify report Q2's structural class
     eq8      print the Eq. 8 max-information inequality for a pair
     iip      decide a (max-)information inequality over Γn / Nn / Mn
     reduce   run the Section 5 reduction Max-IIP → BagCQC-A
     homcount count homomorphisms between two queries
     report   print the span tree and histograms of a --trace file
     serve    long-running containment daemon over a Unix/TCP socket
     client   drive a serve daemon from the command line or a script
     top      live dashboard over a daemon's stats verb
     promlint validate a Prometheus text exposition (e.g. /metrics) *)

open Bagcqc_num
open Bagcqc_engine
open Bagcqc_entropy
open Bagcqc_cq
open Bagcqc_core
module Obs = Bagcqc_obs
open Cmdliner

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"After the command finishes, print solver-engine counters to \
               stderr: LP solves and pivots, LP-cache and elemental-table \
               hits/misses, homomorphism enumerations, and wall time per \
               pipeline stage.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a trace of this invocation (span tree plus metric \
               histograms) and write it to $(docv) on exit.  A '.jsonl' \
               extension writes one JSON event per line; any other name \
               writes Chrome trace-event JSON, loadable in Perfetto or \
               chrome://tracing and readable by 'bagcqc report'.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N"
         ~doc:"Size of the domain pool for parallel execution.  Defaults to \
               $(b,BAGCQC_JOBS) if set, else the machine's recommended \
               domain count minus one; 1 runs the sequential code paths \
               unchanged.")

let lp_engine_arg =
  let mode_conv =
    Arg.enum
      [ ("float_first", Bagcqc_lp.Simplex.Float_first);
        ("exact", Bagcqc_lp.Simplex.Exact) ]
  in
  Arg.(value & opt (some mode_conv) None & info [ "lp-engine" ] ~docv:"MODE"
         ~doc:"LP solving strategy: $(b,float_first) (the default) proposes \
               each simplex basis in floating point and repairs it to an \
               exact, certificate-checked rational answer, falling back to \
               the exact simplex on any numerical doubt; $(b,exact) runs \
               the exact simplex for every solve.  Both modes return exact \
               verdicts.  Defaults to $(b,BAGCQC_LP) if set.")

let cone_engine_arg =
  let engine_conv =
    Arg.enum [ ("full", Cones.Full); ("lazy", Cones.Lazy) ]
  in
  Arg.(value & opt (some engine_conv) None & info [ "cone-engine" ]
         ~docv:"ENGINE"
         ~doc:"Shannon-cone (Γn) decision strategy: $(b,lazy) (the default) \
               generates elemental inequalities on demand by cutting-plane \
               separation with symmetry reduction; $(b,full) materializes \
               the whole elemental family into every LP.  Both engines \
               return identical verdicts, and validity always carries a \
               Farkas certificate re-checked with exact arithmetic.  \
               Defaults to $(b,BAGCQC_CONE) if set.")

(* Every subcommand runs under this wrapper so [--stats] and [--trace]
   mean the same thing everywhere: counters and spans cover exactly this
   invocation, under a root span named after the subcommand.  The pool is
   sized first — before tracing is enabled — per the initialization-order
   contract of {!Bagcqc_obs} (pool size, then enable/reset, then work). *)
let with_obs ~cmd ?jobs ?lp_engine ?cone_engine stats trace run =
  Option.iter Bagcqc_par.Pool.set_jobs jobs;
  Option.iter (fun m -> Bagcqc_lp.Simplex.default_mode := m) lp_engine;
  Option.iter (fun e -> Cones.default_engine := e) cone_engine;
  Stats.reset ();
  if stats || trace <> None then begin
    Obs.enable ();
    Obs.reset ()
  end
  else Obs.disable ();
  let code = Obs.Span.with_span ~name:("cli." ^ cmd) run in
  (match trace with Some path -> Obs.Export.write path | None -> ());
  if stats then Format.eprintf "%a@?" Stats.pp (Stats.snapshot ());
  code

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"PATH"
           ~env:(Cmd.Env.info "BAGCQC_STORE"
                   ~doc:"Default value of $(b,--store).")
           ~doc:"Persistent solve store: an append-only log of LP solves \
                 keyed by the canonical problem.  Opened (and created on \
                 first use) before solving starts; every entry is \
                 re-verified with exact arithmetic when the file is loaded \
                 — corrupt or forged entries are dropped, never served.  \
                 Warm runs answer repeated LP problems from the store \
                 without re-solving (visible under $(b,--stats)).")

let with_store_opt store f =
  match store with None -> f () | Some path -> Store.with_store path f

let query_conv =
  let parse s =
    match Parser.parse_result s with
    | Ok q -> Ok q
    | Error msg -> Error (`Msg ("query syntax: " ^ msg))
  in
  Arg.conv (parse, fun fmt q -> Query.pp fmt q)

let q1_arg =
  Arg.(required & pos 0 (some query_conv) None & info [] ~docv:"Q1"
         ~doc:"Contained query, e.g. 'R(x,y), R(y,z), R(z,x)'.")

let q2_arg =
  Arg.(required & pos 1 (some query_conv) None & info [] ~docv:"Q2"
         ~doc:"Containing query, e.g. 'R(x,y), R(x,z)'.")

(* check accepts either two positional queries or --batch FILE, so its
   positionals are optional at the Cmdliner layer and validated by hand. *)
let q1_opt_arg =
  Arg.(value & pos 0 (some query_conv) None & info [] ~docv:"Q1"
         ~doc:"Contained query, e.g. 'R(x,y), R(y,z), R(z,x)'.")

let q2_opt_arg =
  Arg.(value & pos 1 (some query_conv) None & info [] ~docv:"Q2"
         ~doc:"Containing query, e.g. 'R(x,y), R(x,z)'.")

let max_factors_arg =
  Arg.(value & opt int 14 & info [ "max-factors" ]
         ~doc:"Budget for witness search: the candidate witness is a domain \
               product of at most this many two-row step relations.")

let names_of q i = Query.var_name q i

(* ---------------- check ---------------- *)

let certificate_arg =
  Arg.(value & flag & info [ "certificate" ]
         ~doc:"On a CONTAINED verdict, print the Farkas certificate (convex \
               weights and elemental-inequality multipliers) after \
               re-verifying it with exact arithmetic, independent of the LP \
               solver.")

let batch_arg =
  Arg.(value & opt (some string) None & info [ "batch" ] ~docv:"FILE"
         ~doc:"Decide many instances at once: one per line in $(docv), \
               written 'Q1 ; Q2'.  Blank lines and lines starting with '#' \
               are skipped.  The instances are fanned out over the domain \
               pool (see $(b,--jobs)); verdicts are printed in file order \
               and are identical to running $(b,check) on each line.")

(* --batch FILE: parse every line up front (a syntax error anywhere aborts
   the whole batch before any deciding starts), then decide the instances
   concurrently over the pool.  Returns (source line, Q1, Q2) triples. *)
let parse_batch_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | line ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc
      else begin
        match String.index_opt trimmed ';' with
        | None ->
          Error (Printf.sprintf "%s:%d: expected 'Q1 ; Q2'" path lineno)
        | Some i ->
          let s1 = String.sub trimmed 0 i in
          let s2 =
            String.sub trimmed (i + 1) (String.length trimmed - i - 1)
          in
          (match
             ( Parser.parse_result (String.trim s1),
               Parser.parse_result (String.trim s2) )
           with
           | Ok q1, Ok q2 -> go (lineno + 1) ((lineno, q1, q2) :: acc)
           | Error msg, _ | _, Error msg ->
             Error (Printf.sprintf "%s:%d: query syntax: %s" path lineno msg))
      end
  in
  go 1 []

let run_batch ~max_factors file =
  match parse_batch_file file with
  | exception Sys_error msg ->
    Format.eprintf "check: %s@." msg;
    Cmd.Exit.cli_error
  | Error msg ->
    Format.eprintf "check: %s@." msg;
    Cmd.Exit.cli_error
  | Ok instances ->
    let pairs =
      List.map
        (fun (_, q1, q2) ->
          if Query.is_boolean q1 && Query.is_boolean q2 then (q1, q2)
          else Reductions.booleanize q1 q2)
        instances
    in
    let verdicts = Containment.decide_many ~max_factors pairs in
    let unknowns = ref 0 in
    List.iter2
      (fun (lineno, q1, q2) verdict ->
        let tag =
          match verdict with
          | Containment.Contained _ -> "CONTAINED"
          | Containment.Not_contained _ -> "NOT CONTAINED"
          | Containment.Unknown _ ->
            incr unknowns;
            "UNKNOWN"
        in
        Format.printf "line %-4d %-14s %a ; %a@." lineno tag Query.pp q1
          Query.pp q2)
      instances verdicts;
    Format.printf "%d instance(s): %d unknown@." (List.length instances)
      !unknowns;
    if !unknowns > 0 then 2 else 0

let check_cmd =
  let run q1 q2 batch max_factors store jobs lp_engine cone_engine stats trace
      print_cert =
    with_obs ~cmd:"check" ?jobs ?lp_engine ?cone_engine stats trace
    @@ fun () ->
    with_store_opt store @@ fun () ->
    match batch, q1, q2 with
    | Some file, None, None -> run_batch ~max_factors file
    | Some _, _, _ ->
      Format.eprintf
        "check: --batch and positional queries are mutually exclusive@.";
      Cmd.Exit.cli_error
    | None, Some q1, Some q2 ->
      let boolean = Query.is_boolean q1 && Query.is_boolean q2 in
      let verdict =
        if boolean then Containment.decide ~max_factors q1 q2
        else Containment.decide_with_heads ~max_factors q1 q2
      in
      (match verdict with
       | Containment.Contained cert ->
         Format.printf
           "CONTAINED: certified by a Shannon proof of Eq. 8 (Theorem 4.2).@.";
         if print_cert then begin
           if not (Certificate.check cert) then begin
             Format.printf
               "ERROR: certificate failed independent verification@.";
             exit 3
           end;
           (* The Boolean reduction renumbers variables, so name them only
              when the certificate speaks about Q1's own variables. *)
           let pp_cert =
             if boolean then Certificate.pp ~names:(names_of q1) ()
             else Certificate.pp ()
           in
           Format.printf "%a" pp_cert cert
         end;
         0
       | Containment.Not_contained w ->
         Format.printf
           "NOT CONTAINED: witness relation with %d rows; \
            |hom(Q1,D)| >= %d > %d = |hom(Q2,D)| (Fact 3.2).@."
           w.Containment.card_p w.Containment.card_p w.Containment.hom2;
         Format.printf "Witness database:@.%a" Database.pp w.Containment.db;
         0
       | Containment.Unknown { reason; _ } ->
         Format.printf "UNKNOWN: %s@." reason;
         2)
    | None, _, _ ->
      Format.eprintf "check: expected Q1 and Q2 (or --batch FILE)@.";
      Cmd.Exit.cli_error
  in
  let term =
    Term.(const run $ q1_opt_arg $ q2_opt_arg $ batch_arg $ max_factors_arg
          $ store_arg $ jobs_arg $ lp_engine_arg $ cone_engine_arg $ stats_arg
          $ trace_arg $ certificate_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Decide Q1 ⊑ Q2 under bag-set semantics (complete when Q2 is \
             chordal with a simple junction tree, Theorem 3.1); with \
             $(b,--batch), decide a file of instances concurrently.")
    term

(* ---------------- classify ---------------- *)

let classify_cmd =
  let run q2 stats trace =
    with_obs ~cmd:"classify" stats trace @@ fun () ->
    let cls =
      match Containment.classify q2 with
      | Containment.Acyclic_simple ->
        "acyclic with a simple join tree (containment decidable, Thm 3.1)"
      | Containment.Chordal_simple ->
        "chordal with a simple junction tree (containment decidable, Thm 3.1)"
      | Containment.Acyclic ->
        "acyclic, junction tree not simple (Eq. 8 exact, validity over Γ* open)"
      | Containment.Chordal -> "chordal, junction tree not simple"
      | Containment.General -> "neither acyclic nor chordal"
    in
    Format.printf "%s@." cls;
    let t = Treedec.of_query q2 in
    Format.printf "decomposition: %a@." Treedec.pp t;
    Format.printf "E_T = %a@."
      (Cexpr.pp ~names:(names_of q2) ())
      (Treedec.et t);
    0
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Report the structural class of a query.")
    Term.(const run $ Arg.(required & pos 0 (some query_conv) None
                           & info [] ~docv:"Q" ~doc:"The query.")
          $ stats_arg $ trace_arg)

(* ---------------- eq8 ---------------- *)

let eq8_cmd =
  let run q1 q2 jobs lp_engine cone_engine stats trace =
    with_obs ~cmd:"eq8" ?jobs ?lp_engine ?cone_engine stats trace @@ fun () ->
    let ineq = Containment.eq8 q1 q2 in
    Format.printf "%a@." (Maxii.pp ~names:(names_of q1) ()) ineq;
    (match Maxii.decide ineq with
     | Maxii.Valid cert ->
       Format.printf
         "valid over Γn (hence over Γ*n): Q1 ⊑ Q2 \
          (Farkas certificate cites %d elemental inequalities)@."
         (Certificate.size cert)
     | Maxii.Invalid h ->
       Format.printf "refuted by the normal entropic function:@.%a@."
         (Polymatroid.pp ~names:(names_of q1) ()) h
     | Maxii.Unknown h ->
       Format.printf
         "fails over Γn but holds over Nn; refuting polymatroid (possibly \
          non-entropic):@.%a@."
         (Polymatroid.pp ~names:(names_of q1) ()) h);
    0
  in
  Cmd.v
    (Cmd.info "eq8"
       ~doc:"Print and decide the Eq. 8 max-information inequality for a pair \
             of Boolean queries.")
    Term.(const run $ q1_arg $ q2_arg $ jobs_arg $ lp_engine_arg
          $ cone_engine_arg $ stats_arg $ trace_arg)

(* ---------------- iip ---------------- *)

let expr_conv =
  (* Linear expressions as "+2 h(1,2) -1 h(2)" — coefficient then a
     1-based variable list.  Every malformed shape gets its own message
     and a clean [`Msg] (cmdliner turns it into a usage error, exit 124);
     no catch-all [try] hiding a raw exception behind [Printexc]. *)
  let err fmt = Printf.ksprintf (fun m -> Error (`Msg ("expression syntax: " ^ m))) fmt in
  let parse_var v =
    match int_of_string_opt (String.trim v) with
    | Some i when i >= 1 && i <= Varset.max_vars -> Ok (i - 1)
    | Some i -> err "variable %d out of range (variables are 1..%d)" i Varset.max_vars
    | None -> err "invalid variable %S (expected a 1-based integer)" v
  in
  let rec parse_vars acc = function
    | [] -> Ok (List.rev acc)
    | v :: rest ->
      (match parse_var v with
       | Ok i -> parse_vars (i :: acc) rest
       | Error _ as e -> e)
  in
  let parse s =
    let toks = String.split_on_char ' ' s |> List.filter (fun t -> t <> "") in
    let rec go acc = function
      | [] -> Ok acc
      | c :: h :: rest ->
        (match Rat.of_string_opt c with
         | None -> err "invalid coefficient %S (expected an integer or n/d)" c
         | Some coeff ->
           if String.length h < 4
              || String.sub h 0 2 <> "h("
              || h.[String.length h - 1] <> ')'
           then err "expected h(vars) after coefficient %s, got %S" c h
           else
             let inner = String.sub h 2 (String.length h - 3) in
             (match parse_vars [] (String.split_on_char ',' inner) with
              | Error _ as e -> e
              | Ok vars ->
                go (Linexpr.add acc (Linexpr.term ~coeff (Varset.of_list vars))) rest))
      | [ t ] -> err "dangling token %S (terms come as coefficient h(vars) pairs)" t
    in
    go Linexpr.zero toks
  in
  Arg.conv (parse, fun fmt e -> Linexpr.pp () fmt e)

let iip_cmd =
  let run n sides jobs lp_engine cone_engine stats trace print_cert =
    with_obs ~cmd:"iip" ?jobs ?lp_engine ?cone_engine stats trace @@ fun () ->
    let m = Maxii.general ~n sides in
    Format.printf "%a@." (Maxii.pp ()) m;
    (match Maxii.decide m with
     | Maxii.Valid cert ->
       Format.printf "VALID over Γ%d (hence over Γ*)@." n;
       if print_cert then begin
         if not (Certificate.check cert) then begin
           Format.printf "ERROR: certificate failed independent verification@.";
           exit 3
         end;
         Format.printf "%a" (Certificate.pp ()) cert
       end;
       0
     | Maxii.Invalid h ->
       Format.printf "INVALID: refuted by the normal (entropic) function@.%a@."
         (Polymatroid.pp ()) h;
       0
     | Maxii.Unknown h ->
       Format.printf
         "NOT SHANNON, no normal refuter: undecided over Γ* \
          (refuting polymatroid below may not be entropic)@.%a@."
         (Polymatroid.pp ()) h;
       2)
  in
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n"; "vars" ] ~doc:"Number of variables.")
  in
  let sides_arg =
    Arg.(non_empty & pos_all expr_conv [] & info [] ~docv:"EXPR"
           ~doc:"Sides of the max, e.g. '1 h(1,2) -1 h(1)'.")
  in
  Cmd.v
    (Cmd.info "iip"
       ~doc:"Decide validity of 0 ≤ max(EXPR...) over the entropic cone, via \
             the Shannon relaxation and normal-cone refutation.")
    Term.(const run $ n_arg $ sides_arg $ jobs_arg $ lp_engine_arg
          $ cone_engine_arg $ stats_arg $ trace_arg $ certificate_arg)

(* ---------------- reduce ---------------- *)

let reduce_cmd =
  let run n sides stats trace =
    with_obs ~cmd:"reduce" stats trace @@ fun () ->
    let m = Maxii.general ~n sides in
    let c = Reduction.reduce m in
    Format.printf "Q1: %a@.Q2: %a@." Query.pp c.Reduction.q1 Query.pp c.Reduction.q2;
    Format.printf "Q2 is acyclic: %b@." (Treedec.is_acyclic c.Reduction.q2);
    Format.printf "Q2 decomposition (29): %a@." Treedec.pp c.Reduction.dec2;
    0
  in
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n"; "vars" ] ~doc:"Number of variables.")
  in
  let sides_arg =
    Arg.(non_empty & pos_all expr_conv [] & info [] ~docv:"EXPR"
           ~doc:"Sides of the max.")
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Reduce a Max-IIP to a bag-containment instance with acyclic Q2 \
             (Theorem 5.1).")
    Term.(const run $ n_arg $ sides_arg $ stats_arg $ trace_arg)

(* ---------------- homcount ---------------- *)

let homcount_cmd =
  let run qa qb jobs stats trace =
    with_obs ~cmd:"homcount" ?jobs stats trace @@ fun () ->
    Format.printf "%d@." (Hom.count_between qa qb);
    0
  in
  Cmd.v
    (Cmd.info "homcount"
       ~doc:"Count homomorphisms from Q1 to Q2 (queries as structures).")
    Term.(const run $ q1_arg $ q2_arg $ jobs_arg $ stats_arg $ trace_arg)

(* ---------------- report ---------------- *)

let report_cmd =
  let run path =
    match Obs.Report.load path with
    | exception Sys_error msg ->
      Format.eprintf "report: %s@." msg;
      2
    | exception Obs.Json.Parse_error msg ->
      Format.eprintf "report: %s: %s@." path msg;
      2
    | r ->
      if Obs.Report.span_count r = 0 then begin
        Format.eprintf "report: %s contains no spans@." path;
        1
      end
      else begin
        Format.printf "%a@?" Obs.Report.pp r;
        0
      end
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE"
           ~doc:"Trace file written by --trace (Chrome JSON or JSONL).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Read a --trace file and print its span tree (inclusive/self \
             time, pivots, cache traffic per node) and histogram \
             percentiles.")
    Term.(const run $ path_arg)

(* ---------------- serve / client ---------------- *)

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Listen on (resp. connect to) a Unix-domain stream socket at \
               $(docv).  Mutually exclusive with $(b,--port).")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"Listen on (resp. connect to) TCP $(b,--host):$(docv).")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Host for $(b,--port) (default 127.0.0.1).")

let addr_of socket port host =
  match (socket, port) with
  | Some path, None -> Ok (Bagcqc_serve.Protocol.Unix_path path)
  | None, Some port -> Ok (Bagcqc_serve.Protocol.Tcp (host, port))
  | Some _, Some _ -> Error "--socket and --port are mutually exclusive"
  | None, None -> Error "expected --socket PATH or --port N"

let serve_cmd =
  let run socket port host max_queue deadline_ms metrics_port access_log
      log_sample slow_ms store selftest jobs lp_engine cone_engine stats trace =
    with_obs ~cmd:"serve" ?jobs ?lp_engine ?cone_engine stats trace
    @@ fun () ->
    (* Slow-request capture reconstructs each request's span subtree, so
       an access log forces tracing on even without --stats/--trace. *)
    if access_log <> None && not (stats || trace <> None) then begin
      Obs.enable ();
      Obs.reset ()
    end;
    with_store_opt store @@ fun () ->
    if selftest then begin
      match Bagcqc_serve.Selftest.run ~verbose:true () with
      | Ok steps ->
        Format.printf "serve selftest: %d checks passed@." (List.length steps);
        0
      | Error msg ->
        Format.eprintf "serve selftest: FAILED: %s@." msg;
        1
    end
    else
      match addr_of socket port host with
      | Error msg ->
        Format.eprintf "serve: %s@." msg;
        Cmd.Exit.cli_error
      | Ok addr ->
        let cfg =
          { (Bagcqc_serve.Server.default_config addr) with
            Bagcqc_serve.Server.max_queue;
            default_deadline_ms = deadline_ms;
            metrics_port; access_log; log_sample; slow_ms }
        in
        Bagcqc_serve.Server.run cfg;
        0
  in
  let max_queue_arg =
    Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission-queue bound: check requests beyond $(docv) \
                 outstanding are refused with an 'overloaded' error instead \
                 of buffering without bound.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Default per-request deadline applied to check requests that \
                 carry no deadline_ms of their own.  A request still queued \
                 when its deadline expires is answered with \
                 'deadline_exceeded' instead of being solved.")
  in
  let metrics_port_arg =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ] ~docv:"PORT"
             ~env:(Cmd.Env.info "BAGCQC_METRICS_PORT"
                     ~doc:"Default for $(b,--metrics-port).")
             ~doc:"Serve Prometheus $(b,GET /metrics) plus $(b,/healthz) \
                   and $(b,/readyz) on 127.0.0.1:$(docv) (0 picks an \
                   ephemeral port, printed with the banner).  /readyz \
                   answers 503 from the moment a drain starts, and the \
                   endpoint stays up through the drain so load balancers \
                   see the flip.")
  in
  let access_log_arg =
    Arg.(value & opt (some string) None
         & info [ "access-log" ] ~docv:"FILE"
             ~doc:"Write one JSON line per completed check request to \
                   $(docv): id, verdict or error kind, wall/queue/solve \
                   microseconds, per-request pivots and cache tier, and \
                   deadline slack.  Implies tracing (span capture) for \
                   the daemon's lifetime.")
  in
  let log_sample_arg =
    Arg.(value & opt int 1 & info [ "log-sample" ] ~docv:"N"
           ~doc:"With $(b,--access-log), keep every $(docv)th request \
                 line; slow and errored requests always log.")
  in
  let slow_ms_arg =
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"With $(b,--access-log), a request whose wall time \
                 exceeds $(docv) gets its span subtree attached to its \
                 log line — a p99 outlier arrives with its own trace.")
  in
  let selftest_arg =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Do not serve: boot an in-process daemon on a throwaway \
                 socket, drive a scripted client session across the whole \
                 protocol surface (including graceful drain), report, and \
                 exit 0/1.  Used by CI.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the containment daemon: newline-delimited JSON requests \
             over a Unix or TCP socket, fanned out over the domain pool, \
             with typed errors, per-request deadlines, bounded admission \
             and graceful drain on SIGTERM or a 'shutdown' request.  With \
             $(b,--store), solved LPs persist across restarts (entries are \
             re-verified with exact arithmetic on load).  With \
             $(b,--metrics-port), exposes Prometheus metrics and health \
             endpoints; with $(b,--access-log), structured request logging \
             with slow-request span capture.")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ max_queue_arg
          $ deadline_arg $ metrics_port_arg $ access_log_arg $ log_sample_arg
          $ slow_ms_arg $ store_arg $ selftest_arg $ jobs_arg $ lp_engine_arg
          $ cone_engine_arg $ stats_arg $ trace_arg)

let client_cmd =
  let run socket port host retry_ms sends =
    match addr_of socket port host with
    | Error msg ->
      Format.eprintf "client: %s@." msg;
      Cmd.Exit.cli_error
    | Ok addr -> (
      match Bagcqc_serve.Client.connect ~retry_ms addr with
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "client: cannot connect to %a: %s@."
          Bagcqc_serve.Protocol.pp_addr addr (Unix.error_message e);
        1
      | c ->
        Fun.protect ~finally:(fun () -> Bagcqc_serve.Client.close c)
        @@ fun () ->
        (* Strict request/reply alternation; stop quietly on server EOF
           (the expected end of a session that sent 'shutdown'). *)
        let exchange line =
          Bagcqc_serve.Client.send_line c line;
          match Bagcqc_serve.Client.recv_line c with
          | Some reply ->
            print_endline reply;
            true
          | None -> false
        in
        (match sends with
         | _ :: _ -> List.iter (fun l -> ignore (exchange l)) sends
         | [] ->
           let continue = ref true in
           while !continue do
             match input_line stdin with
             | exception End_of_file -> continue := false
             | line ->
               if String.trim line <> "" && not (exchange line) then
                 continue := false
           done);
        0)
  in
  let retry_arg =
    Arg.(value & opt int 2000 & info [ "retry-ms" ] ~docv:"MS"
           ~doc:"Keep retrying a refused or absent socket for $(docv) \
                 milliseconds before giving up — lets scripts start the \
                 daemon and the client concurrently.")
  in
  let send_arg =
    Arg.(value & opt_all string [] & info [ "send" ] ~docv:"JSON"
           ~doc:"Send this request line and print the reply; repeatable, \
                 sent in order.  Without $(b,--send), request lines are \
                 read from stdin.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Drive a running serve daemon: send newline-delimited JSON \
             requests (from $(b,--send) or stdin) and print one reply line \
             per request.")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ retry_arg $ send_arg)

let top_cmd =
  let run socket port host interval once =
    match addr_of socket port host with
    | Error msg ->
      Format.eprintf "top: %s@." msg;
      Cmd.Exit.cli_error
    | Ok addr -> Bagcqc_serve.Top.run ~addr ~interval ~once
  in
  let interval_arg =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Refresh period between stats polls (default 2s).")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ]
           ~doc:"Print a single frame and exit instead of refreshing — \
                 for scripts and tests.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live monitor for a running serve daemon: polls the stats \
             verb and redraws queue depth, in-flight work, rolling 1m/5m \
             request and hit rates, and latency-histogram percentiles \
             (p50/p90/p99).  Exits when the daemon drains.")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ interval_arg
          $ once_arg)

let promlint_cmd =
  let run path =
    match
      if path = "-" then In_channel.input_all stdin
      else In_channel.with_open_text path In_channel.input_all
    with
    | exception Sys_error msg ->
      Format.eprintf "promlint: %s@." msg;
      2
    | text -> (
      match Obs.Prom.lint text with
      | Ok families ->
        Format.printf "promlint: OK (%d metric families)@." families;
        0
      | Error msg ->
        Format.eprintf "promlint: %s@." msg;
        1)
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Prometheus text exposition to validate ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "promlint"
       ~doc:"Validate a Prometheus text-exposition document (e.g. a curl \
             of the daemon's /metrics) against the format invariants the \
             encoder promises: declared families, strictly increasing \
             cumulative histogram buckets, +Inf equal to _count, \
             _sum/_count present.  Exits 0 when clean.")
    Term.(const run $ path_arg)

let store_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH"
           ~doc:"Store file (the argument of --store / BAGCQC_STORE).")
  in
  let compact_cmd =
    let run path =
      match Store.compact path with
      | exception Sys_error msg ->
        Format.eprintf "store compact: %s@." msg;
        2
      | c ->
        Format.printf
          "store compact: %s: kept %d, dropped %d duplicate%s and %d \
           unverified%s@."
          path c.Store.kept c.Store.duplicates
          (if c.Store.duplicates = 1 then "" else "s")
          c.Store.dropped
          (if c.Store.had_truncated_tail then " (plus a truncated tail)"
           else "");
        0
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:"Rewrite an append-only store log keeping the last verified \
               entry per canonical problem, dropping rejected records, \
               duplicates and crash tails, and atomically rename the \
               rewrite over the original.  Run it offline — not while a \
               daemon is appending to the same file.")
      Term.(const run $ path_arg)
  in
  let stats_cmd =
    let run path =
      let t = Store.open_ path in
      Fun.protect
        ~finally:(fun () -> Store.close t)
        (fun () ->
          Format.printf
            "store stats: %s: %d verified entr%s (%d rejected, %s tail)@."
            path (Store.size t)
            (if Store.size t = 1 then "y" else "ies")
            (Store.rejected t)
            (if Store.truncated t > 0 then "truncated" else "clean");
          if Store.rejected t > 0 then 1 else 0)
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Load a store file through the verify-on-load pipeline and \
               report how many entries survive; exits 1 when any entry \
               was rejected (a signal the file is worth compacting).")
      Term.(const run $ path_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Maintenance for the persistent solve store: compaction and \
             verification statistics.")
    [ compact_cmd; stats_cmd ]

let main_cmd =
  Cmd.group
    (Cmd.info "bagcqc" ~version:"1.0.0"
       ~doc:"Bag query containment via information inequalities \
             (Abo Khamis–Kolaitis–Ngo–Suciu, PODS 2020).")
    [ check_cmd; classify_cmd; eq8_cmd; iip_cmd; reduce_cmd; homcount_cmd;
      report_cmd; serve_cmd; client_cmd; top_cmd; promlint_cmd; store_cmd ]

let () =
  (* Typed internal-invariant errors (Bagcqc_error) escape as a dedicated
     exit code so scripts can tell "the tool found a bug in itself" apart
     from usage errors (124) and stray exceptions (125, matching
     cmdliner's default catch, which we disable to see the typed ones). *)
  match Cmd.eval' ~catch:false main_cmd with
  | code -> exit code
  | exception Bagcqc_num.Bagcqc_error.Error e ->
    Format.eprintf "bagcqc: internal error: %a@." Bagcqc_num.Bagcqc_error.pp e;
    exit 4
  | exception e ->
    let bt = Printexc.get_backtrace () in
    Format.eprintf "bagcqc: uncaught exception: %s@.%s@?"
      (Printexc.to_string e) bt;
    exit 125
