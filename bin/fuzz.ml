(* bagcqc-fuzz — differential fuzzing harness over lib/check.

   Each suite cross-checks a production path against an independent
   oracle (see Bagcqc_check.Suites); a run is a pure function of
   (--suite, --iters, --seed).  On a finding the shrunk case, the error
   and a reproduction line are printed and also written to
   fuzz-repro-<suite>.txt, and the exit code is 1. *)

open Bagcqc_check
open Bagcqc_engine
module Obs = Bagcqc_obs
open Cmdliner

let suite_names = List.map Runner.name Suites.all

let suite_arg =
  Arg.(value & opt string "all"
       & info [ "suite" ] ~docv:"SUITE"
           ~doc:
             (Printf.sprintf
                "Suite to run: %s, or $(b,all) (the default) for every one."
                (String.concat ", " suite_names)))

let iters_arg =
  Arg.(value & opt int 1000
       & info [ "iters" ] ~docv:"N"
           ~doc:"Iterations per suite (each derives its own RNG stream \
                 from the seed, so a failing iteration replays alone).")

let seed_arg =
  Arg.(value & opt int 42
       & info [ "seed" ] ~docv:"S"
           ~doc:"Base seed; the whole run is deterministic in it.")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print solver-engine counters (LP solves, pivots, cache \
                 traffic) to stderr after the run — the suites drive the \
                 real pipeline, so the counters show what was exercised.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a span trace of the run to $(docv) (same formats \
                 as the main CLI: '.jsonl' or Chrome trace JSON).")

let repro_path suite = Printf.sprintf "fuzz-repro-%s.txt" suite

let run suite iters seed stats trace =
  (* The decide suite manages the pool level itself; start sequential. *)
  Bagcqc_par.Pool.set_jobs 1;
  Stats.reset ();
  if stats || trace <> None then begin
    Obs.enable ();
    Obs.reset ()
  end
  else Obs.disable ();
  let code =
    Obs.Span.with_span ~name:"cli.fuzz" @@ fun () ->
    let selected =
      if String.equal suite "all" then Ok Suites.all
      else
        match Suites.find suite with
        | Some s -> Ok [ s ]
        | None ->
          Error
            (Printf.sprintf "bagcqc-fuzz: unknown suite %S (have: %s, all)"
               suite
               (String.concat ", " suite_names))
    in
    match selected with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok suites ->
      let failed = ref false in
      List.iter
        (fun s ->
          let r =
            Obs.Span.with_span ~name:("fuzz." ^ Runner.name s) (fun () ->
                Runner.run ~iters ~seed s)
          in
          Printf.printf "%-8s %8d iterations in %6.2fs (%7.0f/s)  %s\n%!"
            r.Runner.suite r.Runner.iters r.Runner.elapsed
            (float_of_int r.Runner.iters /. Float.max 1e-9 r.Runner.elapsed)
            (match r.Runner.failure with None -> "ok" | Some _ -> "FAILED");
          match r.Runner.failure with
          | None ->
            (* A clean suite retires its reproducer: the file records a
               bug that no longer reproduces, and leaving it behind
               misleads the next reader into chasing a fixed failure. *)
            let path = repro_path r.Runner.suite in
            if Sys.file_exists path then begin
              (try Sys.remove path with Sys_error _ -> ());
              Printf.eprintf "stale reproducer %s removed (suite is clean)\n%!"
                path
            end
          | Some f ->
            failed := true;
            let text =
              Format.asprintf "%a" (Runner.pp_failure ~suite:r.Runner.suite) f
            in
            prerr_string text;
            let path = repro_path r.Runner.suite in
            Out_channel.with_open_text path (fun oc -> output_string oc text);
            Printf.eprintf "reproducer written to %s\n%!" path)
        suites;
      if !failed then 1 else 0
  in
  (match trace with Some path -> Obs.Export.write path | None -> ());
  if stats then Format.eprintf "%a@?" Stats.pp (Stats.snapshot ());
  code

let cmd =
  Cmd.v
    (Cmd.info "bagcqc-fuzz" ~version:"1.0.0"
       ~doc:"Differential fuzzing harness: exact Logint sign, sparse vs \
             dense simplex, sequential vs parallel decide, and parser \
             totality, each against independent oracles.")
    Term.(const run $ suite_arg $ iters_arg $ seed_arg $ stats_arg $ trace_arg)

let () = exit (Cmd.eval' cmd)
