(** The elemental Shannon inequalities generating [Γn], memoized per [n].

    Monotonicity [h(V) − h(V∖i) ≥ 0] and elemental submodularity
    [I(i;j|W) ≥ 0]; every Shannon inequality is a non-negative
    combination of these (paper Sec. 3.2).  The family has
    [n + C(n,2)·2^(n−2)] members and used to be regenerated on every
    cone check; both the cone backends and the independent certificate
    verifier now share this one lazy table. *)

val list : n:int -> Linexpr.t list
(** The elemental family for [n] variables, in a fixed deterministic
    order (memoized; do not mutate assumptions about identity, only
    structure).  @raise Invalid_argument if [n] is negative or exceeds
    {!Varset.max_vars}. *)

val count : n:int -> int
(** [List.length (list ~n)] without forcing a fresh traversal. *)

val is_elemental : n:int -> Linexpr.t -> bool
(** Structural membership in the family — the certificate checker's
    ground truth that a claimed axiom really is one. *)
