(** The elemental Shannon inequalities generating [Γn], memoized per [n].

    Monotonicity [h(V) − h(V∖i) ≥ 0] and elemental submodularity
    [I(i;j|W) ≥ 0]; every Shannon inequality is a non-negative
    combination of these (paper Sec. 3.2).  The family has
    [n + C(n,2)·2^(n−2)] members and used to be regenerated on every
    cone check; both the cone backends and the independent certificate
    verifier now share this one lazy table.

    The family also exists in an {e implicit} form: a {!desc} names one
    member without materializing its expression, and {!eval_desc}
    evaluates it against a set function with at most 4 lookups.  The
    lazy-separation cone driver ({!Separation}) scans the implicit
    family to find violated cuts, so it never pays for the
    [n²·2^(n−2)] expressions the full driver builds. *)

open Bagcqc_num

val list : n:int -> Linexpr.t list
(** The elemental family for [n] variables, in a fixed deterministic
    order (memoized; do not mutate assumptions about identity, only
    structure).  @raise Invalid_argument if [n] is negative or exceeds
    {!Varset.max_vars}. *)

val count : n:int -> int
(** [List.length (list ~n)] without forcing a fresh traversal. *)

val is_elemental : n:int -> Linexpr.t -> bool
(** Structural membership in the family — the certificate checker's
    ground truth that a claimed axiom really is one.  Hashed-set lookup,
    O(size of the expression). *)

(** {1 Implicit family} *)

type desc =
  | Mono of int  (** [h(V) − h(V∖i) ≥ 0] *)
  | Submod of int * int * Varset.t
      (** [I(i;j|W) ≥ 0] with [i < j] and [W ⊆ V∖{i,j}]. *)

val desc_compare : desc -> desc -> int
(** Total order on descriptors (for deterministic worklists). *)

val iter_descs : n:int -> (desc -> unit) -> unit
(** Iterate the implicit family in a fixed deterministic order without
    materializing any expression.
    @raise Invalid_argument like {!list}. *)

val desc_count : n:int -> int
(** [n + C(n,2)·2^(n−2)] in O(1) — the number of descriptors
    {!iter_descs} visits, equal to [count ~n] without forcing the
    materialized table. *)

val expr_of_desc : n:int -> desc -> Linexpr.t
(** Materialize one member; structurally equal to the corresponding
    entry of [list ~n]. *)

val eval_desc : n:int -> (Varset.t -> Rat.t) -> desc -> Rat.t
(** [eval_desc ~n h d = Linexpr.eval h (expr_of_desc ~n d)] without
    allocating the expression — the separation oracle's inner loop. *)
