(* Sparse linear expressions over entropic terms: mask -> rational. *)

open Bagcqc_num

module IMap = Map.Make (Int)

type t = Rat.t IMap.t
(* Invariant: no zero coefficients; no binding for the empty set. *)

let zero = IMap.empty

let add_term x c e =
  if Varset.is_empty x || Rat.is_zero c then e
  else
    IMap.update x
      (function
        | None -> Some c
        | Some c0 ->
          let c' = Rat.add c0 c in
          if Rat.is_zero c' then None else Some c')
      e

let term ?(coeff = Rat.one) x = add_term x coeff zero

let cond ?(coeff = Rat.one) y x =
  add_term (Varset.union y x) coeff (add_term x (Rat.neg coeff) zero)

let mutual ?(coeff = Rat.one) a b x =
  let open Varset in
  add_term (union a x) coeff
    (add_term (union b x) coeff
       (add_term (union (union a b) x) (Rat.neg coeff)
          (add_term x (Rat.neg coeff) zero)))

let add a b = IMap.fold add_term b a
let neg e = IMap.map Rat.neg e
let sub a b = add a (neg b)
let scale c e = if Rat.is_zero c then zero else IMap.map (Rat.mul c) e
let sum = List.fold_left add zero

let coeff e x = match IMap.find_opt x e with Some c -> c | None -> Rat.zero
let support e = List.map fst (IMap.bindings e)
let terms e = IMap.bindings e
let is_zero e = IMap.is_empty e
let equal a b = IMap.equal Rat.equal a b

(* FNV-style mixing over the canonical bindings (ascending masks, no
   zeros), consistent with [equal] because [Rat.hash] is structural. *)
let hash e =
  IMap.fold
    (fun x c acc -> ((acc * 16777619) lxor x) * 16777619 lxor Rat.hash c)
    e 0x811c9dc5
  land max_int

let eval h e =
  IMap.fold (fun x c acc -> Rat.add acc (Rat.mul c (h x))) e Rat.zero

let eval_general ~zero:z ~add:( +! ) ~scale:( *! ) h e =
  IMap.fold (fun x c acc -> acc +! (c *! h x)) e z

let rename f e =
  IMap.fold
    (fun x c acc ->
      let x' = Varset.fold_elements (fun i s -> Varset.add (f i) s) x Varset.empty in
      add_term x' c acc)
    e zero

let max_var e =
  IMap.fold
    (fun x _ acc ->
      Varset.fold_elements (fun i m -> if i > m then i else m) x acc)
    e (-1)

let to_dense ~n e =
  let a = Array.make (1 lsl n) Rat.zero in
  IMap.iter
    (fun x c ->
      if x >= Array.length a then invalid_arg "Linexpr.to_dense: variable out of range";
      a.(x) <- c)
    e;
  a

let pp ?(names = Varset.default_name) () fmt e =
  if IMap.is_empty e then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    IMap.iter
      (fun x c ->
        let s = Rat.sign c in
        if !first then begin
          if s < 0 then Format.pp_print_string fmt "-"
        end
        else Format.pp_print_string fmt (if s < 0 then " - " else " + ");
        first := false;
        let a = Rat.abs c in
        if not (Rat.equal a Rat.one) then Format.fprintf fmt "%a*" Rat.pp a;
        Format.fprintf fmt "h(%s)"
          (String.concat "" (List.map names (Varset.to_list x))))
      e
  end
