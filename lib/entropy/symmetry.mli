(** Variable-permutation symmetry of cone queries.

    A max-inequality over [Γn] (or [Nn]/[Mn]) is invariant under
    renaming the [n] variables: the elemental family is closed under
    permutation.  {!analyze} finds, by brute force over the [n!]
    permutations ([n ≤ 8]), the canonical representative of an
    instance's orbit together with the stabilizer of that
    representative.  The lazy cone driver ({!Separation}) solves the
    canonical instance — so the solver cache and the persistent store
    hit across symmetric variants — and uses the stabilizer to add
    separation cuts orbit-at-a-time. *)

type perm = int array
(** [p.(i)] is the image of variable [i]; a bijection on [0..n-1]. *)

val max_vars : int
(** Largest [n] the brute-force sweep runs at (8; [8! = 40320]).  Above
    it {!analyze} returns the trivial analysis — only sharing is lost. *)

val identity : int -> perm
val is_identity : perm -> bool
val inverse : perm -> perm

val apply_mask : perm -> Varset.t -> Varset.t
val apply_expr : perm -> Linexpr.t -> Linexpr.t
val apply_desc : perm -> Elemental.desc -> Elemental.desc
(** Image of an elemental descriptor; the family is closed under
    permutation, so the result names an elemental inequality (with the
    [Submod] endpoints re-normalized to [i < j]). *)

val orbit_desc : perm list -> Elemental.desc -> Elemental.desc list
(** Deduplicated orbit of a descriptor, in {!Elemental.desc_compare}
    order. *)

type analysis = {
  n : int;
  to_canon : perm;  (** [π]: original variables → canonical variables *)
  canonical : Linexpr.t list;
      (** [π·es], side order preserved — the instance actually solved *)
  stabilizer : perm list;
      (** permutations fixing the canonical side multiset (≥ the
          identity); used for orbit cuts *)
}

val analyze : n:int -> Linexpr.t list -> analysis
(** Canonicalize an instance.  Deterministic: the canonical image is
    the least side-multiset under an exact term-list order
    ({!Bagcqc_num.Rat.compare} on coefficients), and ties pick the
    first minimizing permutation in a fixed enumeration.  Validity is
    preserved: [valid ~n es ⇔ valid ~n (analyze ~n es).canonical]. *)
