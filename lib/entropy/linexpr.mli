(** Linear expressions over entropic terms: [E(h) = Σ_X c_X · h(X)].

    These are the objects on both sides of every information inequality in
    the paper (Eq. 2, Eq. 3), the tree-decomposition expression [E_T]
    (Eq. 7), and the building blocks of the reductions of Sections 4–5.
    Coefficients are exact rationals; terms are variable sets ({!Varset}). *)

open Bagcqc_num

type t

val zero : t

val term : ?coeff:Rat.t -> Varset.t -> t
(** [term x] is [h(x)]; [term ~coeff x] is [coeff · h(x)].  The [h(∅)]
    term is identically 0 and never stored. *)

val cond : ?coeff:Rat.t -> Varset.t -> Varset.t -> t
(** [cond y x] is the conditional entropy [h(y | x) = h(y ∪ x) − h(x)]
    (paper Sec. 3.2). *)

val mutual : ?coeff:Rat.t -> Varset.t -> Varset.t -> Varset.t -> t
(** [mutual a b x] is the conditional mutual information
    [I(a; b | x) = h(ax) + h(bx) − h(abx) − h(x)]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val sum : t list -> t

val coeff : t -> Varset.t -> Rat.t
val support : t -> Varset.t list
(** Sets with nonzero coefficient, ascending mask order. *)

val terms : t -> (Varset.t * Rat.t) list

val is_zero : t -> bool
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with {!equal} (expressions are stored
    canonically), suitable for [Hashtbl.Make]. *)

val eval : (Varset.t -> Rat.t) -> t -> Rat.t
(** [eval h e] is [e(h)] for a rational-valued set function. *)

val eval_general : zero:'a -> add:('a -> 'a -> 'a) -> scale:(Rat.t -> 'a -> 'a) ->
  (Varset.t -> 'a) -> t -> 'a
(** Evaluation into any module over the rationals (used with {!Logint}
    values for exact entropies of uniform relations). *)

val rename : (int -> int) -> t -> t
(** [rename f e] applies the variable substitution [f] to every term:
    [h(X) ↦ h(f(X))].  This is the paper's [E ∘ φ] (Sec. 4, Example 4.1);
    [f] need not be injective — collapsed variables merge, and terms
    mapped to [∅] vanish. *)

val max_var : t -> int
(** Largest variable index occurring (-1 for the zero expression). *)

val to_dense : n:int -> t -> Rat.t array
(** Coefficient vector indexed by mask, length [2^n]. *)

val pp : ?names:(int -> string) -> unit -> Format.formatter -> t -> unit
