open Bagcqc_num
open Bagcqc_engine

(* ---------------- implicit (descriptor) view ----------------

   A descriptor names one elemental inequality without materializing its
   [Linexpr]: the lazy separation driver evaluates descriptors directly
   against an LP point (≤ 4 set lookups each), so scanning the whole
   family at n = 7–8 costs thousands of rational additions, not
   thousands of allocated expressions. *)

type desc =
  | Mono of int
  | Submod of int * int * Varset.t

let desc_compare (a : desc) (b : desc) =
  match (a, b) with
  | Mono i, Mono j -> compare i j
  | Mono _, Submod _ -> -1
  | Submod _, Mono _ -> 1
  | Submod (i, j, w), Submod (i', j', w') -> compare (i, j, w) (i', j', w')

let iter_descs ~n f =
  let full = Varset.full n (* range check, even for n = 0 *) in
  for i = 0 to n - 1 do
    f (Mono i)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let rest = Varset.diff full (Varset.of_list [ i; j ]) in
      Varset.iter_subsets rest (fun w -> f (Submod (i, j, w)))
    done
  done

let expr_of_desc ~n = function
  | Mono i ->
    let full = Varset.full n in
    Linexpr.sub (Linexpr.term full) (Linexpr.term (Varset.remove i full))
  | Submod (i, j, w) ->
    Linexpr.mutual (Varset.singleton i) (Varset.singleton j) w

(* [eval_desc h d] is the elemental inequality's left-hand side at the
   set function [h] — exactly [Linexpr.eval h (expr_of_desc ~n d)], but
   allocation-free. *)
let eval_desc ~n h = function
  | Mono i ->
    let full = Varset.full n in
    Rat.sub (h full) (h (Varset.remove i full))
  | Submod (i, j, w) ->
    let iw = Varset.add i w and jw = Varset.add j w in
    Rat.sub
      (Rat.add (h iw) (h jw))
      (Rat.add (h (Varset.add i jw)) (h w))

let generate n =
  let mono = ref [] and submod = ref [] in
  iter_descs ~n (fun d ->
      match d with
      | Mono _ -> mono := expr_of_desc ~n d :: !mono
      | Submod _ -> submod := expr_of_desc ~n d :: !submod);
  (* Historical family order: monotonicity ascending in i, then the
     submodularity block in reverse generation order. *)
  List.rev !mono @ !submod

module Eset = Hashtbl.Make (struct
  type t = Linexpr.t

  let equal = Linexpr.equal
  let hash = Linexpr.hash
end)

(* Per-n lazy table; `Varset.full` bounds n at max_vars, so the table
   stays tiny for the life of the process.  Generation happens inside the
   mutex on purpose: when pool workers race on a fresh [n], exactly one
   generates (one miss) and the rest block until the entry lands (hits) —
   the same hit/miss totals a sequential run would record. *)
let table_mutex = Mutex.create ()

let table : (int, Linexpr.t list * unit Eset.t) Hashtbl.t = Hashtbl.create 8

let entry ~n =
  Mutex.lock table_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_mutex) @@ fun () ->
  match Hashtbl.find_opt table n with
  | Some e ->
    Stats.note_elemental_hit ();
    e
  | None ->
    ignore (Varset.full n) (* range check, even for n = 0 *);
    Stats.note_elemental_miss ();
    let es =
      Bagcqc_obs.Span.with_span ~name:"elemental.generate"
        ~attrs:[ ("n", Bagcqc_obs.Span.Int n) ]
        (fun () -> generate n)
    in
    let set = Eset.create (2 * List.length es) in
    List.iter (fun e -> Eset.replace set e ()) es;
    let e = (es, set) in
    Hashtbl.add table n e;
    e

let list ~n = fst (entry ~n)
let count ~n = List.length (list ~n)

(* Hashed membership: the certificate checker calls this once per
   multiplier, so the old O(|family|) [List.exists] scan made checking a
   λ with k entries O(k·n²·2ⁿ). *)
let is_elemental ~n e = Eset.mem (snd (entry ~n)) e

let desc_count ~n =
  ignore (Varset.full n);
  if n < 2 then n else n + (n * (n - 1) / 2 * (1 lsl (n - 2)))
