open Bagcqc_engine

let generate n =
  let full = Varset.full n in
  let mono =
    List.map
      (fun i ->
        Linexpr.sub (Linexpr.term full) (Linexpr.term (Varset.remove i full)))
      (Varset.to_list full)
  in
  let submod = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let rest = Varset.diff full (Varset.of_list [ i; j ]) in
      Varset.iter_subsets rest (fun w ->
          submod :=
            Linexpr.mutual (Varset.singleton i) (Varset.singleton j) w
            :: !submod)
    done
  done;
  mono @ !submod

(* Per-n lazy table; `Varset.full` bounds n at max_vars, so the table
   stays tiny for the life of the process.  Generation happens inside the
   mutex on purpose: when pool workers race on a fresh [n], exactly one
   generates (one miss) and the rest block until the entry lands (hits) —
   the same hit/miss totals a sequential run would record. *)
let table_mutex = Mutex.create ()
let table : (int, Linexpr.t list) Hashtbl.t = Hashtbl.create 8

let list ~n =
  Mutex.lock table_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_mutex) @@ fun () ->
  match Hashtbl.find_opt table n with
  | Some es ->
    Stats.note_elemental_hit ();
    es
  | None ->
    ignore (Varset.full n) (* range check, even for n = 0 *);
    Stats.note_elemental_miss ();
    let es =
      Bagcqc_obs.Span.with_span ~name:"elemental.generate"
        ~attrs:[ ("n", Bagcqc_obs.Span.Int n) ]
        (fun () -> generate n)
    in
    Hashtbl.add table n es;
    es

let count ~n = List.length (list ~n)

let is_elemental ~n e = List.exists (Linexpr.equal e) (list ~n)
