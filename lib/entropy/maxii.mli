(** Max-information inequalities (Max-II, paper Eq. 3) and their decision
    problems (IIP, Max-IIP — Problems 2.4 and 2.5).

    A Max-II over [n] variables is [0 ≤ max_{ℓ∈[k]} Eℓ(h)]; it is valid
    if it holds for every entropic [h ∈ Γ*n].  Validity over [Γ*n] is not
    known to be decidable — that is the paper's central open problem — but:

    - validity over the Shannon cone [Γn] implies validity (soundness);
    - invalidity over the normal cone [Nn] implies invalidity, because
      every normal function is entropic (refutation soundness);
    - for the {e conditional} forms of Theorem 3.6
      ([q·h(V) ≤ max_ℓ Eℓ] with every [Eℓ] unconditioned, resp. simple)
      the two tests coincide and {!decide} is a decision procedure. *)

open Bagcqc_num

type t

type form =
  | General of Linexpr.t list
      (** arbitrary sides [Eℓ]; the inequality is [0 ≤ max_ℓ Eℓ(h)] *)
  | Conditional of { q : Rat.t; sides : Cexpr.t list }
      (** the Theorem 3.6 shape [q·h(V) ≤ max_ℓ Eℓ(h)] with conditional
          linear expressions [Eℓ] *)

val make : n:int -> form -> t
(** @raise Invalid_argument if a side mentions a variable [≥ n], or if a
    conditional form has [q ≤ 0]. *)

val general : n:int -> Linexpr.t list -> t
val conditional : n:int -> q:Rat.t -> Cexpr.t list -> t

val n_vars : t -> int
val form : t -> form

val sides : t -> Linexpr.t list
(** The sides as plain linear expressions ([Eℓ − q·h(V)] for the
    conditional form), so that the inequality is always [0 ≤ max_ℓ sideℓ]. *)

val is_iip : t -> bool
(** Exactly one side ([k = 1]): an ordinary information inequality. *)

type shape = Unconditioned | Simple | Conditional_general | Unrestricted

val shape : t -> shape
(** Syntactic classification against Theorem 3.6's hypotheses.  Only
    [Conditional] forms can be [Unconditioned] or [Simple]. *)

type verdict =
  | Valid of Certificate.t
      (** valid over [Γn], hence over [Γ*n]; the attached Farkas
          certificate re-proves it by exact arithmetic alone
          ({!Certificate.check}) — no trust in the LP solver needed *)
  | Invalid of Polymatroid.t
      (** refuted by an explicitly {e entropic} function (a point of [Nn]
          or [Mn]); the attached function is normal *)
  | Unknown of Polymatroid.t
      (** refuted over [Γn] but not over [Nn]: the attached polymatroid
          counterexample may fail to be entropic, and the instance is
          outside the classes known to be decidable *)

val decide : t -> verdict
(** Sound decision procedure, complete on the Theorem 3.6 fragments: an
    [Unknown] verdict is impossible when {!shape} is [Unconditioned] or
    [Simple] (that is Theorem 3.6), and also whenever the refutation
    search over [Nn] happens to succeed.

    With the pool sized above 1 ({!Bagcqc_par.Pool.jobs}), the [Nn]
    refutation and the [Γn] certificate LPs run concurrently; the verdict
    is identical to the sequential path (only solver-effort counters may
    differ, because the [Γn] side is speculative). *)

val decide_result : t -> (verdict, Bagcqc_error.t) result
(** {!decide} with internal invariant violations (broken LP duality,
    Theorem 3.6 contradictions) reified as a typed [Error] instead of an
    exception. *)

val decide_many : t list -> verdict list
(** Decide a batch concurrently over the pool, each instance on the
    sequential path.  Equals [List.map decide] run at [jobs = 1] —
    verdicts {e and} per-instance solver counters included. *)

val valid_over : Cones.cone -> t -> (unit, Polymatroid.t) result
(** Validity over a single polyhedral cone. *)

val is_valid_over : Cones.cone -> t -> bool
(** Boolean-only validity; over [Γn] this avoids the expensive refuter
    extraction ({!Cones.valid_max_quick}). *)

val pp : ?names:(int -> string) -> unit -> Format.formatter -> t -> unit
