open Bagcqc_num

type t = {
  n : int;
  cone : string;
  sides : Linexpr.t list;
  lambda : (Linexpr.t * Rat.t) list;
  mu : Rat.t list;
}

let make ~n ~cone ~sides ~lambda ~mu =
  if List.length mu <> List.length sides then
    invalid_arg "Certificate.make: one convex weight per side required";
  { n; cone; sides; lambda; mu }

let n_vars c = c.n
let cone_name c = c.cone
let sides c = c.sides
let lambda c = c.lambda
let convex_weights c = c.mu
let size c = List.length c.lambda

let check_explain c =
  Bagcqc_obs.Span.with_span ~name:"certificate.check"
    ~attrs:
      [ ("cone", Bagcqc_obs.Span.Str c.cone);
        ("n", Bagcqc_obs.Span.Int c.n);
        ("size", Bagcqc_obs.Span.Int (List.length c.lambda)) ]
  @@ fun () ->
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let ensure b msg = if b then Ok () else Error msg in
  let* () =
    ensure
      (List.for_all (fun m -> Rat.sign m >= 0) c.mu)
      "negative convex weight"
  in
  let* () =
    ensure
      (Rat.equal (List.fold_left Rat.add Rat.zero c.mu) Rat.one)
      "convex weights do not sum to 1"
  in
  let* () =
    ensure
      (List.for_all (fun (_, l) -> Rat.sign l >= 0) c.lambda)
      "negative elemental multiplier"
  in
  let* () =
    ensure
      (List.for_all
         (fun (e, _) -> Elemental.is_elemental ~n:c.n e)
         c.lambda)
      "cited inequality is not elemental"
  in
  let* () =
    ensure
      (List.for_all (fun e -> Linexpr.max_var e < c.n) c.sides)
      "side mentions a variable out of range"
  in
  let combination =
    Linexpr.sum (List.map (fun (e, l) -> Linexpr.scale l e) c.lambda)
  in
  let goal =
    Linexpr.sum (List.map2 (fun m e -> Linexpr.scale m e) c.mu c.sides)
  in
  ensure (Linexpr.equal combination goal)
    "multipliers do not reproduce the convex combination of the sides"

let check c = Result.is_ok (check_explain c)

(* Multiset equality of expression lists under Linexpr.equal. *)
let multiset_equal xs ys =
  let remove_one e l =
    let rec go acc = function
      | [] -> None
      | x :: rest ->
        if Linexpr.equal x e then Some (List.rev_append acc rest)
        else go (x :: acc) rest
    in
    go [] l
  in
  let rec go xs ys =
    match xs with
    | [] -> ys = []
    | x :: rest ->
      (match remove_one x ys with
       | Some ys' -> go rest ys'
       | None -> false)
  in
  List.length xs = List.length ys && go xs ys

let proves c ~n es = c.n = n && multiset_equal c.sides es && check c

let pp ?(names = Varset.default_name) () fmt c =
  Format.fprintf fmt
    "Farkas certificate over %s (n=%d): %d elemental inequalities@." c.cone
    c.n (List.length c.lambda);
  List.iteri
    (fun l m ->
      Format.fprintf fmt "  mu_%d = %a@." (l + 1) Rat.pp m)
    c.mu;
  List.iter
    (fun (e, l) ->
      Format.fprintf fmt "  %a * [0 <= %a]@." Rat.pp l (Linexpr.pp ~names ()) e)
    c.lambda
