(** Deciding (max-)information inequalities over polyhedral cones
    [Γn ⊇ Nn ⊇ Mn] by exact linear programming — routed through the
    solver engine ({!Bagcqc_engine.Solver}), so structurally identical
    checks hit its LP cache, and instrumented via {!Bagcqc_engine.Stats}.

    This is the computational engine behind the paper's decidability
    results: Theorem 3.6 shows certain max-inequalities are "essentially
    Shannon" — valid over the entropic cone [Γ*n] iff valid over the
    Shannon cone [Γn] (or valid over [Nn] / [Mn] iff over [Γn]) — and
    "any essentially Shannon class is decidable, because [Γn] is
    polyhedral".

    A max-inequality [0 ≤ max_ℓ Eℓ(h)] is valid over a closed convex cone
    [K] iff the LP [{h ∈ K, Eℓ(h) ≤ −1 ∀ℓ}] is infeasible (by scale
    invariance, a point with [max_ℓ Eℓ < 0] can be scaled to gap 1).
    Failures return the witnessing point of [K]; for [Γn], successes
    additionally return a Farkas {!Certificate.t} that can be re-verified
    without the solver.

    Each cone is a {!backend} value; {!register} adds new cones without
    touching any caller of the decision functions. *)

open Bagcqc_engine

type cone =
  | Gamma   (** the Shannon cone [Γn] of all polymatroids *)
  | Normal  (** [Nn]: non-negative combinations of step functions *)
  | Modular (** [Mn]: non-negative modular functions *)
  | Registered of string
      (** A backend added via {!register}, looked up by name at use time. *)

val elemental : n:int -> Linexpr.t list
(** The elemental Shannon inequalities generating [Γn] (see
    {!Elemental.list}, which memoizes the family per [n]). *)

(** {1 Cone engine}

    Two interchangeable Γn drivers (DESIGN.md §4i).  [Full]
    materializes the whole elemental family into each LP — the original
    path, kept as the cross-checked oracle.  [Lazy] (default) decides
    via {!Separation}: cutting-plane generation over the implicit
    family plus symmetry canonicalization.  Both return identical
    verdicts; validity always carries a certificate passing the same
    exact {!Certificate.check}, so the choice affects speed, never
    trust.  Nn/Mn solves are tiny and take the direct path under either
    engine. *)

type engine = Full | Lazy

val engine_name : engine -> string
(** ["full"] / ["lazy"] — the spellings accepted by {!engine_of_string},
    [BAGCQC_CONE] and the [--cone-engine] CLI flag. *)

val engine_of_string : string -> engine option

val default_engine : engine ref
(** Γn driver used by the decision procedures below.  Initialized from
    the [BAGCQC_CONE] environment variable ([full] or [lazy]; an
    invalid value is reported on stderr and ignored); defaults to
    [Lazy].  Same mutation discipline as
    {!Bagcqc_lp.Simplex.default_mode}: CLI entry points and test/bench
    harnesses may set it (restoring under [Fun.protect]); library code
    never writes here. *)

(** {1 Backends} *)

type backend = {
  name : string;
  refutation : n:int -> Linexpr.t list -> Problem.t;
      (** Feasibility system for [{h ∈ K, Eℓ(h) ≤ −1 ∀ℓ}] — a point
          refutes the max-inequality over the cone. *)
  refuter_of_point : n:int -> Bagcqc_num.Rat.t array -> Polymatroid.t;
      (** Reconstruct the refuting set function from a point of the
          refutation system. *)
  farkas :
    (n:int -> Linexpr.t list -> Problem.t * Linexpr.t list) option;
      (** Optional validity-certificate LP: feasible iff the
          max-inequality is valid over the cone, with solutions laid out
          as multipliers [λ] over the returned axiom list followed by one
          convex weight [μℓ] per side.  Present for [Γn]; cones without
          one still decide via {!field-refutation} but yield no
          certificate. *)
}

val register : backend -> unit
(** Make [Registered backend.name] usable everywhere a {!cone} is taken.
    @raise Invalid_argument if the name is already registered (the three
    built-in cones occupy ["gamma"], ["normal"], ["modular"]). *)

val find_backend : string -> backend option
val backend_names : unit -> string list
(** Sorted names of all registered backends. *)

(** {1 Decision procedures} *)

val valid_max_cert :
  cone -> n:int -> Linexpr.t list ->
  (Certificate.t option, Polymatroid.t) result
(** [valid_max_cert k ~n es] decides [∀h ∈ K. 0 ≤ max_ℓ es_ℓ(h)].
    [Ok (Some c)] proves validity with a Farkas certificate (always, for
    cones with a [farkas] builder — in particular [Gamma]); [Ok None]
    states validity for a cone without certificate support.  [Error h]
    carries a point of [K] with [es_ℓ(h) < 0] for all [ℓ].  The empty max
    is (vacuously) invalid, witnessed by the zero function.
    @raise Invalid_argument if an expression mentions a variable [≥ n]. *)

val valid_max : cone -> n:int -> Linexpr.t list -> (unit, Polymatroid.t) result
(** {!valid_max_cert} with the certificate dropped. *)

val valid_max_quick : cone -> n:int -> Linexpr.t list -> bool
(** Like {!valid_max} but boolean only: a single feasibility solve, no
    refuter extraction and no certificate packaging. *)

val valid : cone -> n:int -> Linexpr.t -> (unit, Polymatroid.t) result
(** Validity of a single linear inequality [0 ≤ E(h)] over the cone. *)

val valid_shannon : n:int -> Linexpr.t -> bool
(** [valid_shannon ~n e] iff [0 ≤ e(h)] is a Shannon inequality (valid over
    [Γn]); a sound (and, for non-max linear inequalities with at most
    3 variables, complete) test of information-inequality validity. *)

val valid_shannon_many : n:int -> Linexpr.t list -> bool list
(** {!valid_shannon} on each expression, fanned out over the domain pool
    ({!Bagcqc_par.Pool}); results are in input order and identical to
    [List.map (valid_shannon ~n) es].  Structurally identical
    expressions are deduplicated before the fan-out, so a batch with
    repeats solves each distinct inequality once. *)

val max_to_convex : n:int -> Linexpr.t list -> Bagcqc_num.Rat.t array option
(** Theorem 6.1 of the paper, instantiated at the Shannon cone: a
    max-linear inequality [0 ≤ max_ℓ Eℓ] is valid over [Γn] iff there are
    [λℓ ≥ 0] with [Σλℓ = 1] such that the single {e linear} inequality
    [0 ≤ Σ λℓ·Eℓ] is valid over [Γn].  Returns those convex weights when
    they exist, [None] otherwise.  (Over [Γn] the weights are rational —
    the paper leaves rationality over [Γ*n] open.) *)

val shannon_certificate : n:int -> Linexpr.t -> (Linexpr.t * Bagcqc_num.Rat.t) list option
(** If [0 ≤ e(h)] is valid over [Γn], a Farkas certificate: pairs of
    elemental inequalities and non-negative multipliers with
    [Σ λᵢ·elemᵢ = e] exactly, proving the inequality is Shannon.
    [None] if the inequality is not Shannon. *)
