(* Lazy constraint generation for the Shannon cone (ISSUE 9, ROADMAP 3).

   The full Γn drivers in [Cones] materialize all n + C(n,2)·2^(n−2)
   elemental inequalities into every LP — which is exactly why exact
   decisions stopped at n ≈ 5–6.  This driver solves the same two LPs
   over a small *working set* W of elemental inequalities and grows W
   on demand:

     loop:
       solve  R(W) = { elem_d(h) ≥ 0 ∀d ∈ W,  Eℓ(h) ≤ −1 ∀ℓ }
       infeasible ⇒ the max-inequality is valid over the W-cone, a
         superset of Γn, hence valid over Γn.  Certificate: the
         restricted Farkas system F(W) (feasible by LP duality over the
         W-cone) yields λ over W ⊆ elemental family, so the assembled
         [Certificate.t] passes the unchanged exact [Certificate.check].

   Intermediate rounds run in pure floats ([Simplex.solve_float]): the
   per-round point only steers which cuts enter W, so it needs no exact
   repair — which is where a naive lazy loop loses to the full driver,
   paying one exact repair per round against the full driver's one per
   decision.  Exact arithmetic appears only at terminal rounds, on the
   small working set:
     - float probe infeasible ⇒ certify: solve F(W) through the hybrid
       engine and accept iff the assembled certificate passes the exact
       [Certificate.check] — that check proves validity unconditionally,
       so the float infeasibility claim is never trusted.  F(W)
       infeasible means the probe lied: fall through to one exact R(W)
       round and keep cutting.
     - float probe optimal with no float-violated cut ⇒ one exact
       hybrid R(W) round: its exact point either passes the exact
       separation scan (genuine refuter) or yields exact cuts the float
       scan missed.

   One subtlety in F(W): the simplex keeps its variables implicitly
   nonnegative, so R(W)'s feasible region is {h ≥ 0} ∩ W-cone ∩
   {E ≤ −1} — still a superset of Γn (h(S) ≥ 0 is a Shannon
   consequence), so verdicts are sound, but the h ≥ 0 facets can be
   load-bearing for infeasibility while not lying in the cone spanned
   by W.  The true Farkas dual therefore carries one extra multiplier
   ν_S ≥ 0 per coordinate axiom h(S) ≥ 0:  Σλ·W + Σν_S·e_S = Σμ·E.
   Certificates must cite only elemental inequalities, and h(S) ≥ 0 is
   exactly the chain expansion  h(S) = Σ_t h(i_t | {i_1..i_{t−1}}),
   h(i|B) = h(i|V∖i) + Σ_j I(i;j|·)  — a unit-coefficient sum of
   elemental rows ([nonneg_decomp]).  So F(W) gets the ν columns and
   certificate assembly expands each positive ν_S into those elemental
   axioms, keeping the assembled certificate inside the contract of the
   unchanged exact [Certificate.check].
       feasible at x ⇒ scan the *implicit* elemental family for the
         most-violated inequality (≤ 4 lookups per member, nothing
         materialized; float evaluation on probe points, exact Rat
         evaluation on exact points).  No violation on an *exact* point
         ⇒ x lies in Γn itself and genuinely refutes — refuters are
         only ever emitted from exact rounds.  Otherwise add a batch of
         the most-violated cuts — each with its symmetry orbit when the
         orbit is small — and re-solve, warm-starting the float simplex
         from the previous round's basis.

   Every exact round that continues adds a cut (its point satisfies W
   exactly, so a violated member cannot already be in W), and a float
   round that fails to add one escalates — possibly through one pruned
   confirmation round — to an exact round, so at most three rounds are
   spent per cut and the loop terminates within 3·|family| rounds; a
   defensive invariant enforces the bound.

   Symmetry: the instance is first canonicalized modulo variable
   permutation ([Symmetry.analyze]), so every per-round LP — keyed on
   the canonical [Engine.Problem] — hits the sharded solver cache and
   the persistent store across all symmetric variants of a query.
   Verdicts are mapped back through the permutation: refuters by
   relabeling the point, certificates by renaming λ's axioms (the
   elemental family is closed under permutation).

   Trust model: unchanged.  Every LP a verdict rests on goes through
   the hybrid engine whose answers are exact after repair (float probes
   decide nothing — they only choose cuts and when to attempt the
   terminal solves); validity carries a Farkas certificate judged by
   the same LP-independent [Certificate.check] as the full driver, and
   refuters satisfy every elemental inequality by exact evaluation (the
   exact separation scan found no violation).  The full-materialization
   driver remains available as the cross-checked oracle
   (--cone-engine full, lazy_vs_full fuzz). *)

open Bagcqc_num
open Bagcqc_lp
open Bagcqc_engine
module Obs = Bagcqc_obs

let where = "Separation"

let c_solves = Obs.Metrics.counter "cone.lazy.solves"
let c_rounds = Obs.Metrics.counter "cone.lazy.rounds"
let c_cuts = Obs.Metrics.counter "cone.lazy.cuts"
let c_fallbacks = Obs.Metrics.counter "cone.lazy.fallbacks"
let c_orbit_cuts = Obs.Metrics.counter "cone.orbit.cuts"
let c_canonicalized = Obs.Metrics.counter "cone.orbit.canonicalized"

(* Same mask−1 variable indexing as the full gamma backend. *)
let gamma_sparse e = List.map (fun (s, c) -> (s - 1, c)) (Linexpr.terms e)

(* Cone rows enter R(W) as [−a·h ≤ 0] rather than [a·h ≥ 0].  The
   polyhedron is identical, but the Le form with a zero right-hand side
   starts slack-basic: only the k target rows carry phase-1 artificial
   columns, so a probe's phase 1 walks a handful of pivots instead of
   one per working-set row — the difference between the lazy driver
   beating the full one and losing to it from n = 6 up. *)
let cone_row_sparse e =
  List.map (fun (s, c) -> (s - 1, Rat.neg c)) (Linexpr.terms e)

(* Per-descriptor row constructions, memoized across decides: the same
   Mono/Submod rows recur in every working set at a given n, and once
   the solves are warm, rebuilding them (expr_of_desc, negation, sparse
   normalization) is a visible slice of a decide.  Rows and constraints
   are immutable once built, so sharing is safe; the keyspace is the
   elemental family itself (≤ a few thousand entries across all n ≤ 8).
   Same mutex discipline as the [Elemental] table. *)
let row_memo_mutex = Mutex.create ()

let memo_row (tbl : (int * Elemental.desc, 'a) Hashtbl.t) ~n d
    (build : unit -> 'a) =
  Mutex.lock row_memo_mutex;
  let cached = Hashtbl.find_opt tbl (n, d) in
  Mutex.unlock row_memo_mutex;
  match cached with
  | Some v -> v
  | None ->
    let v = build () in
    Mutex.lock row_memo_mutex;
    Hashtbl.replace tbl (n, d) v;
    Mutex.unlock row_memo_mutex;
    v

let cone_prow_tbl : (int * Elemental.desc, Problem.row) Hashtbl.t =
  Hashtbl.create 2048

let cone_prow ~n d =
  memo_row cone_prow_tbl ~n d (fun () ->
      Problem.row
        (cone_row_sparse (Elemental.expr_of_desc ~n d))
        Simplex.Le Rat.zero)

let cone_fconstr_tbl : (int * Elemental.desc, Simplex.constr) Hashtbl.t =
  Hashtbl.create 2048

let cone_fconstr ~n d =
  memo_row cone_fconstr_tbl ~n d (fun () ->
      Simplex.sparse_constr
        (cone_row_sparse (Elemental.expr_of_desc ~n d))
        Simplex.Le Rat.zero)

(* ---------------- seed ----------------

   All monotonicity rows plus two submodularity slices per pair:
   unconditioned I(i;j) and fully-conditioned I(i;j | V∖{i,j}).  Small
   (n + 2·C(n,2) rows), and in practice enough that many valid
   inequalities finish in one round. *)
let seed_descs ~n =
  let acc = ref [] in
  for i = n - 1 downto 0 do
    acc := Elemental.Mono i :: !acc
  done;
  let full = Varset.full n in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      let rest = Varset.diff full (Varset.of_list [ i; j ]) in
      acc := Elemental.Submod (i, j, Varset.empty) :: !acc;
      if not (Varset.is_empty rest) then
        acc := Elemental.Submod (i, j, rest) :: !acc
    done
  done;
  !acc

(* ---------------- warm-start bookkeeping ----------------

   Rows only ever get added between rounds, and [Problem] keeps its rows
   in one canonical sorted order — so the previous round's rows appear
   as a sorted subsequence of the new round's rows.  A single merge walk
   recovers where each old row went; structural columns are shared,
   every row here is an inequality (exactly one slack/surplus column,
   assigned in row order by [Lp_layout]), so old slack column
   [num_vars + i] becomes [num_vars + map(i)] and artificial columns
   are dropped.  Any mismatch just forfeits the hint ([None]) — warmth
   is an optimization, never a soundness input. *)

let row_equal (p1, o1, r1) (p2, o2, r2) =
  o1 = o2 && Rat.equal r1 r2
  && List.equal (fun (j1, c1) (j2, c2) -> j1 = j2 && Rat.equal c1 c2) p1 p2

let warm_hint ~num_vars prev prob =
  match prev with
  | None -> None
  | Some (old_rows, basis) ->
    let new_rows = Array.of_list (Problem.rows_list prob) in
    let n_new = Array.length new_rows in
    let map = Array.make (List.length old_rows) (-1) in
    let exception Lost in
    (try
       let j = ref 0 in
       List.iteri
         (fun i r ->
           while !j < n_new && not (row_equal r new_rows.(!j)) do
             incr j
           done;
           if !j >= n_new then raise Lost;
           map.(i) <- !j;
           incr j)
         old_rows;
       let m_old = Array.length map in
       Some
         (Array.map
            (fun c ->
              if c < num_vars then c
              else if c < num_vars + m_old then num_vars + map.(c - num_vars)
              else -1 (* artificial: not reusable across rounds *))
            basis)
     with Lost -> None)

(* ---------------- restricted Farkas ----------------

   [Cones.gamma_farkas] with the axiom columns drawn from W instead of
   the full family, under its own tag: entries persisted from this
   problem shape are pure-feasibility (verified point-wise by the store
   on load) and must not be offered to the full-family
   "gamma/farkas" semantic verifier, whose column layout they do not
   share.

   Column layout: λ over the W axioms, then the k convex weights μ,
   then one ν_S per coordinate mask S — the dual multipliers of the
   simplex's implicit h(S) ≥ 0 (see the header):
     Σλ·W + Σ ν_S·e_S = Σμ·E,  Σμ = 1,  everything ≥ 0. *)
let farkas_of_axioms ~n axioms es =
  let n_ax = List.length axioms in
  let k = List.length es in
  let nv = (1 lsl n) - 1 in
  let num_vars = n_ax + k + nv in
  let buckets = Array.make nv [] in
  List.iteri
    (fun i e ->
      List.iter (fun (s, c) -> buckets.(s) <- (i, c) :: buckets.(s))
        (gamma_sparse e))
    axioms;
  List.iteri
    (fun l e ->
      List.iter
        (fun (s, c) -> buckets.(s) <- (n_ax + l, Rat.neg c) :: buckets.(s))
        (gamma_sparse e))
    es;
  let rows =
    List.init nv (fun s ->
        Problem.row ((n_ax + k + s, Rat.one) :: buckets.(s)) Simplex.Eq
          Rat.zero)
    @ [ Problem.row
          (List.init k (fun l -> (n_ax + l, Rat.one)))
          Simplex.Eq Rat.one ]
  in
  Problem.make ~tag:"gamma/farkas_lazy" ~num_vars rows

(* h(S) ≥ 0 as an exact unit-coefficient sum of elemental rows:
     h(S) = Σ_{t} h(i_t | {i_1..i_{t−1}})       (ascending i_t ∈ S)
     h(i | B) = h(i | V∖i) + Σ_j I(i; j | B_j)  (j over V∖B∖{i},
                                                 ascending, B_j growing)
   — Mono and Submod descriptors throughout, possibly with repeats
   (the assembler accumulates coefficients per descriptor). *)
let nonneg_decomp ~n s =
  let acc = ref [] in
  let prefix = ref Varset.empty in
  for i = 0 to n - 1 do
    if Varset.mem i s then begin
      let b = ref !prefix in
      for j = 0 to n - 1 do
        if j <> i && not (Varset.mem j !b) then begin
          acc := Elemental.Submod (min i j, max i j, !b) :: !acc;
          b := Varset.add j !b
        end
      done;
      acc := Elemental.Mono i :: !acc;
      prefix := Varset.add i !prefix
    end
  done;
  !acc

(* ---------------- the separation loop ---------------- *)

type 'a verdict =
  | Valid of Elemental.desc list  (* W at termination, reverse add order *)
  | Certified of 'a  (* [certify] accepted W after a float-infeasible probe *)
  | Refuted_at of Rat.t array

(* A float probe must clear this to count as a violation.  Pure
   heuristic: too tight admits noise cuts (W grows a little), too loose
   defers real cuts to the exact round — never a soundness input. *)
let float_eps = 1e-7

(* Flattened per-n scan table: descriptor idx scores
   h(s1) + h(s2) − h(s3) − h(s4) with the four masks at [masks.(4·idx)..],
   mask 0 standing for the empty set (h = 0).  Mono i is
   (full, ∅, full∖i, ∅); Submod (i,j,b) is (b∪i, b∪j, b∪i∪j, b).  Built
   once per n: the float scan runs on every optimal probe and must not
   re-allocate the descriptor stream each round. *)
let scan_tbl_mutex = Mutex.create ()

let scan_tbls : (int, Elemental.desc array * int array) Hashtbl.t =
  Hashtbl.create 8

let scan_table ~n =
  Mutex.lock scan_tbl_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock scan_tbl_mutex) @@ fun () ->
  match Hashtbl.find_opt scan_tbls n with
  | Some t -> t
  | None ->
    let ds = ref [] in
    Elemental.iter_descs ~n (fun d -> ds := d :: !ds);
    let descs = Array.of_list (List.rev !ds) in
    let masks = Array.make (4 * Array.length descs) 0 in
    Array.iteri
      (fun idx d ->
        let o = 4 * idx in
        match d with
        | Elemental.Mono i ->
          let full = Varset.full n in
          masks.(o) <- full;
          masks.(o + 2) <- Varset.remove i full
        | Elemental.Submod (i, j, b) ->
          masks.(o) <- Varset.add i b;
          masks.(o + 1) <- Varset.add j b;
          masks.(o + 2) <- Varset.add j (Varset.add i b);
          masks.(o + 3) <- b)
      descs;
    let t = (descs, masks) in
    Hashtbl.add scan_tbls n t;
    t

(* Run the loop on the *canonical* instance.  Returns the witness point
   (refutation), the final working set (validity, confirmed by an exact
   R(W) solve), or — when [certify] is provided — whatever it returned
   for the final working set after a float-infeasible probe.  [certify]
   receiving W in add order must prove validity on its own authority
   (Farkas + exact certificate check); [None] sends the loop into an
   exact round instead of trusting the probe. *)
let run ~n ~stabilizer ~certify es =
  let num_vars = (1 lsl n) - 1 in
  let target_rows =
    List.map
      (fun e -> Problem.row (gamma_sparse e) Simplex.Le Rat.minus_one)
      es
  in
  let seen : (Elemental.desc, unit) Hashtbl.t = Hashtbl.create 64 in
  let w = ref [] in
  (* The float probe's rows, newest first: cuts over the reversed target
     rows.  Targets sit at fixed row positions and cuts are only ever
     appended, so structural and slack columns keep their meaning across
     rounds and the previous basis works as a warm hint verbatim (no
     merge walk; artificial columns are masked out below). *)
  let frows_rev = ref (List.rev_map
      (fun e -> Simplex.sparse_constr (gamma_sparse e) Simplex.Le Rat.minus_one)
      es)
  in
  let nrows = ref (List.length es) in
  let add_desc d =
    if Hashtbl.mem seen d then false
    else begin
      Hashtbl.add seen d ();
      w := d :: !w;
      frows_rev := cone_fconstr ~n d :: !frows_rev;
      incr nrows;
      true
    end
  in
  List.iter (fun d -> ignore (add_desc d)) (seed_descs ~n);
  let zero_obj = Array.make num_vars Rat.zero in
  (* Warm hints, two chains: [fwarm] feeds the next float probe (kept to
     structural + slack columns, which appending rows cannot renumber);
     [prev] feeds the next exact round through the canonical-order merge
     walk.  Cache hits yield no basis and break the exact chain — they
     also cost nothing to re-solve. *)
  let fwarm = ref None in
  let prev = ref None in
  (* Add the [cut_batch] most-violated of [ranked] (pre-sorted by
     violation, ties broken by descriptor order, so the cut sequence —
     and with it every per-round system, cache key and store line — is
     deterministic per build), plus small symmetry orbits.  Unbounded
     orbit expansion is a trap: a highly symmetric target has stabilizer
     orbits of size up to (n−1)!, and materializing one recreates the
     full-family row count the lazy driver exists to avoid. *)
  let cut_batch = 2 * n in
  let orbit_cap = 2 * n in
  let add_ranked ranked =
    let added = ref 0 and orbit_added = ref 0 and taken = ref 0 in
    (try
       List.iter
         (fun (d, _) ->
           if !taken >= cut_batch then raise Exit;
           if add_desc d then begin
             incr added;
             incr taken;
             let orbit = Symmetry.orbit_desc stabilizer d in
             if List.compare_length_with orbit orbit_cap <= 0 then
               List.iter
                 (fun d' ->
                   if add_desc d' then begin
                     incr added;
                     incr orbit_added
                   end)
                 orbit
           end)
         ranked
     with Exit -> ());
    Obs.Metrics.add c_cuts !added;
    Obs.Metrics.add c_orbit_cuts !orbit_added;
    !added
  in
  (* Each exact round that continues adds a cut; a float round either
     adds one or escalates, possibly through one pruned confirm round —
     at most three rounds per cut, so 3·|family| bounds the loop. *)
  let limit = (3 * Elemental.desc_count ~n) + 6 in
  let check_limit round =
    if round > limit then
      Bagcqc_error.invariant ~where
        (Printf.sprintf
           "separation failed to terminate within %d rounds at n=%d" limit n)
  in
  let k_targets = List.length es in
  (* Support of a float infeasibility claim: rows whose slack column is
     nonbasic in the phase-1 terminal basis.  A Farkas proof over
     [num_vars] unknowns needs at most [num_vars + 1] rows, so this is
     usually a small fraction of W — the exact confirmation (or Farkas
     assembly) then runs on the pruned system.  Purely a size heuristic:
     if pruning dropped a needed row, the exact solve comes back
     feasible and the loop falls back to the full working set. *)
  let tight_working_set basis =
    let bound = num_vars + !nrows in
    let basic = Array.make bound false in
    Array.iter
      (fun c -> if c >= 0 && c < bound then basic.(c) <- true)
      basis;
    let j = ref 0 in
    let keep =
      List.filter
        (fun _ ->
          let slack = num_vars + k_targets + !j in
          incr j;
          not basic.(slack))
        (List.rev !w)
    in
    if keep = [] then List.rev !w else keep
  in
  let rec loop round =
    check_limit round;
    Obs.Metrics.bump c_rounds;
    let fprob =
      { Simplex.num_vars;
        objective = zero_obj;
        constraints = List.rev !frows_rev }
    in
    (* Keep only columns whose meaning survives appended rows: artificial
       columns start at [num_vars + m] (every row is an inequality, one
       slack each) and shift as rows arrive. *)
    let keep_structural_and_slack basis =
      let bound = num_vars + !nrows in
      Some (Array.map (fun c -> if c < bound then c else -1) basis)
    in
    match Simplex.solve_float ?warm:!fwarm fprob with
    | Simplex.Float_unknown ->
      fwarm := None;
      exact_round round
    | Simplex.Float_infeasible basis ->
      fwarm := keep_structural_and_slack basis;
      let pruned = tight_working_set basis in
      (match certify with
       | Some f ->
         (match f pruned with
          | Some c -> Certified c
          | None ->
            (* The probe's infeasibility claim did not certify — an
               exact round settles what is actually true of R(W). *)
            exact_round round)
       | None -> confirm_round pruned round)
    | Simplex.Float_optimal (xf, basis) ->
      fwarm := keep_structural_and_slack basis;
      let violated = ref [] in
      let descs, masks = scan_table ~n in
      let g m = if m = 0 then 0.0 else Array.unsafe_get xf (m - 1) in
      for idx = 0 to Array.length descs - 1 do
        let o = 4 * idx in
        let v =
          g (Array.unsafe_get masks o)
          +. g (Array.unsafe_get masks (o + 1))
          -. g (Array.unsafe_get masks (o + 2))
          -. g (Array.unsafe_get masks (o + 3))
        in
        if v < -.float_eps then violated := (descs.(idx), v) :: !violated
      done;
      let ranked =
        List.sort
          (fun (d1, v1) (d2, v2) ->
            let c = Float.compare v1 v2 in
            if c <> 0 then c else Elemental.desc_compare d1 d2)
          !violated
      in
      if ranked <> [] && add_ranked ranked > 0 then loop (round + 1)
      else
        (* No float-violated cut (or only noise already in W): the probe
           cannot distinguish a genuine Γn refuter from tolerance slack —
           only an exact point can. *)
        exact_round round
  and solve_exact descs =
    let cone_rows = List.rev_map (fun d -> cone_prow ~n d) descs in
    let prob =
      Problem.make ~tag:"gamma/refute_lazy" ~num_vars
        (List.rev_append cone_rows target_rows)
    in
    let solver p =
      let warm = warm_hint ~num_vars !prev p in
      let outcome, basis = Simplex.solve_warm ?warm (Problem.to_simplex p) in
      prev :=
        (match basis with
         | Some b -> Some (Problem.rows_list p, b)
         | None -> None);
      outcome
    in
    Solver.solve_using prob ~solver
  and confirm_round pruned round =
    check_limit round;
    Obs.Metrics.bump c_rounds;
    match solve_exact pruned with
    | Simplex.Infeasible ->
      (* R(W') ⊇ R(W) is already empty: the pruned subset alone proves
         validity, and a downstream certificate only needs its rows. *)
      Valid (List.rev pruned)
    | Simplex.Unbounded ->
      Bagcqc_error.invariant ~where
        "pure feasibility system reported unbounded"
    | Simplex.Optimal _ ->
      (* Pruning lost a needed row, or the probe's claim was wrong
         outright — settle on the full working set. *)
      exact_round (round + 1)
  and exact_round round =
    check_limit round;
    Obs.Metrics.bump c_rounds;
    match solve_exact (List.rev !w) with
    | Simplex.Infeasible -> Valid !w
    | Simplex.Unbounded ->
      Bagcqc_error.invariant ~where
        "pure feasibility system reported unbounded"
    | Simplex.Optimal (_, x) ->
      let h m = if m = 0 then Rat.zero else x.(m - 1) in
      let violated = ref [] in
      Elemental.iter_descs ~n (fun d ->
          let v = Elemental.eval_desc ~n h d in
          if Rat.sign v < 0 then violated := (d, v) :: !violated);
      (match !violated with
       | [] ->
         (* x satisfies every elemental inequality: a genuine point of
            Γn refuting the max-inequality. *)
         Refuted_at x
       | vs ->
         let ranked =
           List.sort
             (fun (d1, v1) (d2, v2) ->
               let c = Rat.compare v1 v2 in
               if c <> 0 then c else Elemental.desc_compare d1 d2)
             vs
         in
         if add_ranked ranked = 0 then
           (* The exact LP point satisfies W exactly, so a violated
              inequality cannot already be in W. *)
           Bagcqc_error.invariant ~where "separation cut made no progress";
         loop (round + 1))
  in
  loop 1

let with_span ~n ~kind es f =
  Obs.Span.with_span ~name:"cone.lazy"
    ~attrs:
      [ ("kind", Obs.Span.Str kind);
        ("n", Obs.Span.Int n);
        ("sides", Obs.Span.Int (List.length es)) ]
    f

let analyze ~n es =
  let sym = Symmetry.analyze ~n es in
  if not (Symmetry.is_identity sym.Symmetry.to_canon) then
    Obs.Metrics.bump c_canonicalized;
  sym

(* Map a refuting point of the canonical instance back to the original
   variables: h_orig(S) = h_canon(π S). *)
let refuter_of_point ~n ~(sym : Symmetry.analysis) x =
  Polymatroid.make n (fun s ->
      let m = Symmetry.apply_mask sym.Symmetry.to_canon s in
      if Varset.is_empty m then Rat.zero else x.(m - 1))

let valid_max_quick ~n es =
  with_span ~n ~kind:"quick" es @@ fun () ->
  Obs.Metrics.bump c_solves;
  let sym = analyze ~n es in
  match
    run ~n ~stabilizer:sym.Symmetry.stabilizer ~certify:None
      sym.Symmetry.canonical
  with
  | Valid _ -> true
  | Certified () -> true
  | Refuted_at _ -> false

(* Prove validity of the canonical instance over the working set
   [w_descs] (add order): solve the restricted Farkas system and accept
   only a certificate the exact [Certificate.check] passes.  [None]
   means F(W) is infeasible — the caller's infeasibility claim for R(W)
   was wrong (or, from an exact round, genuinely contradictory). *)
let certify_working_set ~n ~sym ~es w_descs =
  let es_c = sym.Symmetry.canonical in
  let inv = Symmetry.inverse sym.Symmetry.to_canon in
  let axioms = List.map (Elemental.expr_of_desc ~n) w_descs in
  let n_ax = List.length axioms in
  let k = List.length es in
  let nv = (1 lsl n) - 1 in
  let fprob = farkas_of_axioms ~n axioms es_c in
  let assemble x =
    (* λ accumulates per elemental *descriptor*: the W columns
       directly, and each positive ν_S expanded through the chain
       decomposition of h(S) ≥ 0.  Sorted for a deterministic
       certificate rendering. *)
    let tbl : (Elemental.desc, Rat.t ref) Hashtbl.t = Hashtbl.create 64 in
    let bump d c =
      match Hashtbl.find_opt tbl d with
      | Some r -> r := Rat.add !r c
      | None -> Hashtbl.add tbl d (ref c)
    in
    List.iteri (fun i d -> if Rat.sign x.(i) > 0 then bump d x.(i)) w_descs;
    for s = 1 to nv do
      let nu = x.(n_ax + k + s - 1) in
      if Rat.sign nu > 0 then
        List.iter (fun d -> bump d nu) (nonneg_decomp ~n s)
    done;
    let lambda =
      Hashtbl.fold (fun d r acc -> (d, !r) :: acc) tbl []
      |> List.filter (fun (_, c) -> Rat.sign c > 0)
      |> List.sort (fun (d1, _) (d2, _) -> Elemental.desc_compare d1 d2)
      |> List.map (fun (d, c) ->
             (Symmetry.apply_expr inv (Elemental.expr_of_desc ~n d), c))
    in
    let mu = List.init k (fun l -> x.(n_ax + l)) in
    (* Sides are the caller's original expressions: renaming the
       canonical identity Σλ·a = Σμ·Eᶜ through π⁻¹ lands exactly on
       them, and the renamed axioms stay elemental (the family is
       closed under permutation), so [Certificate.check] applies
       unchanged. *)
    Certificate.make ~n ~cone:"gamma" ~sides:es ~lambda ~mu
  in
  match Solver.feasible fprob with
  | None -> None
  | Some x ->
    let cert = assemble x in
    (* Same defense-in-depth as the full driver (DESIGN.md §4f/§4i):
       under float-first, accept only certificates that pass the
       exact check; a rejection is a solver bug repaired by an exact
       re-solve, never an uncertified answer.  Under the exact LP mode
       the Farkas point is already exact-verified by construction. *)
    if !Simplex.default_mode = Simplex.Exact || Certificate.check cert
    then Some cert
    else begin
      Obs.Metrics.bump c_fallbacks;
      match
        Simplex.solve ~mode:Simplex.Exact (Problem.to_simplex fprob)
      with
      | Simplex.Optimal (_, x) -> Some (assemble x)
      | Simplex.Infeasible | Simplex.Unbounded ->
        Bagcqc_error.invariant ~where
          "float-first lazy Farkas point rejected by Certificate.check \
           and the exact re-solve found no feasible point"
    end

let valid_max_cert ~n es =
  with_span ~n ~kind:"cert" es @@ fun () ->
  Obs.Metrics.bump c_solves;
  let sym = analyze ~n es in
  let certify = certify_working_set ~n ~sym ~es in
  match
    run ~n ~stabilizer:sym.Symmetry.stabilizer ~certify:(Some certify)
      sym.Symmetry.canonical
  with
  | Refuted_at x -> Error (refuter_of_point ~n ~sym x)
  | Certified cert -> Ok cert
  | Valid w_rev ->
    (* Reached only through an exact round's infeasibility (a probe that
       went Float_unknown / cut-less optimal, or whose certify attempt
       failed).  F(W) is then feasible by duality over the W-cone; both
       empty means the two independently-built LPs disagree. *)
    (match certify (List.rev w_rev) with
     | Some cert -> Ok cert
     | None ->
       Bagcqc_error.invariant ~where
         "restricted Farkas LP infeasible though the restricted \
          refutation LP was infeasible too (duality violated)")
