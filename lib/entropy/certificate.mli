(** Farkas certificates for (max-)information-inequality validity, and
    their independent exact verifier.

    A {e Contained}/{e Valid} verdict in this repro ultimately rests on a
    claim of the form "[0 ≤ max_ℓ Eℓ(h)] is valid over the Shannon cone
    [Γn]" (paper Theorem 4.2 via Theorem 6.1).  The LP that establishes
    it also produces a proof object: convex weights [μℓ ≥ 0, Σμ = 1] and
    non-negative multipliers [λᵢ] over the elemental Shannon inequalities
    with

    {[ Σᵢ λᵢ · elemᵢ  =  Σℓ μℓ · Eℓ      (exact Linexpr equality) ]}

    Any [h ∈ Γn] satisfies every [elemᵢ(h) ≥ 0], hence
    [Σℓ μℓ·Eℓ(h) ≥ 0], hence [max_ℓ Eℓ(h) ≥ 0] — soundness needs only
    the identity above, checked by exact rational arithmetic.  {!check}
    performs exactly that: it re-derives the elemental family itself and
    never touches the simplex, so a verdict can be audited without
    trusting the solver (or the cache) that produced it. *)

open Bagcqc_num

type t

val make :
  n:int ->
  cone:string ->
  sides:Linexpr.t list ->
  lambda:(Linexpr.t * Rat.t) list ->
  mu:Rat.t list ->
  t
(** Package a certificate; no validation beyond length agreement between
    [mu] and [sides] — {!check} is the judge.
    @raise Invalid_argument if [List.length mu <> List.length sides]. *)

val n_vars : t -> int
val cone_name : t -> string
(** The backend that produced it (e.g. ["gamma"]). *)

val sides : t -> Linexpr.t list
val lambda : t -> (Linexpr.t * Rat.t) list
(** Elemental inequality / multiplier pairs, positive multipliers only. *)

val convex_weights : t -> Rat.t list
(** The [μℓ], one per side in order. *)

val size : t -> int
(** Number of elemental inequalities cited. *)

val check : t -> bool
(** Exact re-verification as described above; no LP solve. *)

val check_explain : t -> (unit, string) result
(** Like {!check} but says which clause failed — for diagnostics and the
    tamper-detection tests. *)

val proves : t -> n:int -> Linexpr.t list -> bool
(** [proves c ~n es]: [c] checks {e and} certifies exactly the
    max-inequality [0 ≤ max es] over [n] variables (sides matched as a
    multiset, so side order is irrelevant). *)

val pp : ?names:(int -> string) -> unit -> Format.formatter -> t -> unit
