(* Variable-permutation symmetry of a cone query (ISSUE 9 / ROADMAP 3).

   A max-inequality over Γn is invariant under any permutation π of the
   n variables applied to every side: the elemental family is closed
   under renaming, so [valid ~n es] iff [valid ~n (π·es)].  We exploit
   that twice:

   - {e canonicalization}: before solving, rename the instance to the
     lexicographically least member of its orbit.  Every LP the lazy
     driver builds is then keyed on the canonical instance, so the
     sharded solver cache and the persistent store hit across all n!
     symmetric variants of a query.

   - {e orbit cuts}: the stabilizer of the canonical instance maps
     violated elemental inequalities to violated (or about-to-be
     violated) ones, so the separation loop adds a whole orbit of cuts
     per round instead of rediscovering each image one re-solve at a
     time.

   The group is found by brute force over all n! permutations — fine
   for the n ≤ 8 this engine targets (8! = 40320 cheap renamings, done
   once per decide); beyond {!max_vars} we fall back to the trivial
   group, which costs only the missed sharing. *)

open Bagcqc_num

type perm = int array

let max_vars = 8

let identity n = Array.init n (fun i -> i)
let is_identity p = Array.for_all (fun x -> p.(x) = x) (identity (Array.length p))

let inverse p =
  let q = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> q.(x) <- i) p;
  q

let apply_mask p m =
  Varset.fold_elements
    (fun i acc -> Varset.add p.(i) acc)
    m Varset.empty

let apply_expr p e = Linexpr.rename (fun i -> p.(i)) e

let apply_desc p = function
  | Elemental.Mono i -> Elemental.Mono p.(i)
  | Elemental.Submod (i, j, w) ->
    let i' = p.(i) and j' = p.(j) in
    Elemental.Submod (min i' j', max i' j', apply_mask p w)

(* Orbit of a descriptor under a set of permutations, deduplicated and
   in a deterministic order. *)
let orbit_desc perms d =
  List.sort_uniq Elemental.desc_compare (List.map (fun p -> apply_desc p d) perms)

(* ---------------- canonicalization ---------------- *)

(* Comparison key of an instance: the multiset of per-side term lists,
   each term list ordered by mask (as [Linexpr.terms] already is) and
   the k keys sorted.  Compared with [Rat.compare] on coefficients —
   never a stringification. *)
let compare_terms a b =
  List.compare
    (fun (m1, c1) (m2, c2) ->
      let c = compare (m1 : int) m2 in
      if c <> 0 then c else Rat.compare c1 c2)
    a b

let key_of es = List.sort compare_terms (List.map Linexpr.terms es)

let compare_key = List.compare compare_terms

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        List.map (fun rest -> x :: rest)
          (permutations (List.filter (fun y -> y <> x) xs)))
      xs

(* n! permutation arrays, memoized per n (n ≤ {!max_vars}, so at most a
   few tables of ≤ 40320 arrays live at once): [analyze] runs once per
   cone decide, and rebuilding 5040 arrays per decide at n = 7 costs
   more than the sweep that uses them.  Same mutex discipline as the
   [Elemental] table — the lazy driver is called from pool workers. *)
let perms_mutex = Mutex.create ()
let perms_table : (int, perm list) Hashtbl.t = Hashtbl.create 8

let all_perms n =
  Mutex.lock perms_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock perms_mutex) @@ fun () ->
  match Hashtbl.find_opt perms_table n with
  | Some ps -> ps
  | None ->
    let ps =
      List.map Array.of_list (permutations (List.init n (fun i -> i)))
    in
    Hashtbl.add perms_table n ps;
    ps

type analysis = {
  n : int;
  to_canon : perm;          (* π : original vars → canonical vars *)
  canonical : Linexpr.t list;  (* π·es, in input side order *)
  stabilizer : perm list;   (* group fixing the canonical multiset *)
}

let trivial ~n es =
  { n; to_canon = identity n; canonical = es; stabilizer = [ identity n ] }

(* Analyses are pure in (n, es) and a serving process decides the same
   handful of instances over and over (repeated queries, bench reps,
   every round of a fuzz shrink), so the sweep is memoized.  Bounded:
   the table is dropped wholesale when it outgrows [memo_cap] — fuzzing
   streams millions of distinct instances through here and must not
   turn the memo into a leak.  The record is immutable and shared. *)
module Akey = struct
  type t = int * Linexpr.t list

  let equal (n1, es1) (n2, es2) =
    n1 = n2 && List.equal Linexpr.equal es1 es2

  let hash (n, es) = Hashtbl.hash (n, List.map Linexpr.hash es)
end

module Atbl = Hashtbl.Make (Akey)

let memo_cap = 4096
let memo_mutex = Mutex.create ()
let memo : analysis Atbl.t = Atbl.create 256

let analyze_uncached ~n es =
  if n < 2 || n > max_vars then trivial ~n es
  else begin
    (* One sweep finds both the minimal image and every permutation
       attaining it; σ·π_min⁻¹ for each minimizer σ fixes the canonical
       multiset, and every stabilizer element arises this way. *)
    let best_key = ref (key_of es) in
    let minimizers = ref [] in
    List.iter
      (fun p ->
        let k = key_of (List.map (apply_expr p) es) in
        let c = compare_key k !best_key in
        if c < 0 then begin
          best_key := k;
          minimizers := [ p ]
        end
        else if c = 0 then minimizers := p :: !minimizers)
      (all_perms n);
    let minimizers = List.rev !minimizers in
    let to_canon =
      match minimizers with
      | p :: _ -> p
      | [] -> identity n (* unreachable: the sweep includes the identity *)
    in
    let inv = inverse to_canon in
    let stabilizer =
      List.map (fun s -> Array.map (fun i -> s.(inv.(i))) (identity n))
        minimizers
    in
    { n; to_canon;
      canonical = List.map (apply_expr to_canon) es;
      stabilizer }
  end

let analyze ~n es =
  let key = (n, es) in
  Mutex.lock memo_mutex;
  let cached = Atbl.find_opt memo key in
  Mutex.unlock memo_mutex;
  match cached with
  | Some a -> a
  | None ->
    let a = analyze_uncached ~n es in
    Mutex.lock memo_mutex;
    if Atbl.length memo >= memo_cap then Atbl.reset memo;
    Atbl.replace memo key a;
    Mutex.unlock memo_mutex;
    a
