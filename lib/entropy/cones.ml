open Bagcqc_num
open Bagcqc_lp

type cone = Gamma | Normal | Modular

let check_range ~n es =
  List.iter
    (fun e ->
      if Linexpr.max_var e >= n then
        invalid_arg "Cones: expression mentions a variable out of range")
    es

let elemental ~n =
  let full = Varset.full n in
  let mono =
    List.map
      (fun i ->
        Linexpr.sub (Linexpr.term full) (Linexpr.term (Varset.remove i full)))
      (Varset.to_list full)
  in
  let submod = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let rest = Varset.diff full (Varset.of_list [ i; j ]) in
      Varset.iter_subsets rest (fun w ->
          submod :=
            Linexpr.mutual (Varset.singleton i) (Varset.singleton j) w
            :: !submod)
    done
  done;
  mono @ !submod

(* ------------------------------------------------------------------ *)
(* Γn: LP variables are h(S) for nonempty S, indexed by [mask - 1].    *)
(* ------------------------------------------------------------------ *)

(* LP variables for Γn are h(S) for nonempty S, indexed by [mask − 1];
   expressions translate to sparse rows directly off their term lists
   (elemental inequalities have at most 4 nonzero terms, so the LPs below
   never materialize the 2^n − 1 mostly-zero coefficients). *)
let gamma_sparse e =
  List.map (fun (s, c) -> (s - 1, c)) (Linexpr.terms e)

(* Farkas certificate search: is some convex combination Σ μℓ·Eℓ a
   non-negative combination Σ λᵢ·elemᵢ of elemental inequalities?  By LP
   duality over the polyhedral cone Γn (this is the paper's Theorem 6.1
   instantiated at Γn), such (λ, μ) exist iff the max-inequality is valid
   over Γn.  The LP has only 2^n equality rows — far smaller than the
   primal feasibility system, whose rows are the thousands of elemental
   inequalities. *)
let gamma_dual_multipliers ~n es =
  let elems = elemental ~n in
  let n_elem = List.length elems in
  let k = List.length es in
  let num_vars = n_elem + k in
  (* Transpose the sparse columns (one per multiplier) into sparse rows
     (one per nonempty mask S): Σ λᵢ elemᵢ(S) − Σ μℓ Eℓ(S) = 0. *)
  let buckets = Array.make ((1 lsl n) - 1) [] in
  List.iteri
    (fun i e ->
      List.iter (fun (s, c) -> buckets.(s) <- (i, c) :: buckets.(s)) (gamma_sparse e))
    elems;
  List.iteri
    (fun l e ->
      List.iter
        (fun (s, c) -> buckets.(s) <- (n_elem + l, Rat.neg c) :: buckets.(s))
        (gamma_sparse e))
    es;
  let constraints =
    List.init ((1 lsl n) - 1) (fun s ->
        Simplex.sparse_constr buckets.(s) Simplex.Eq Rat.zero)
    @ [ Simplex.sparse_constr
          (List.init k (fun l -> (n_elem + l, Rat.one)))
          Simplex.Eq Rat.one ]
  in
  match Simplex.feasible ~num_vars constraints with
  | None -> None
  | Some x -> Some (Array.sub x 0 n_elem, Array.sub x n_elem k, elems)

let valid_max_gamma ~n es =
  match gamma_dual_multipliers ~n es with
  | Some _ -> Ok ()
  | None ->
    (* No certificate ⇒ (duality) the primal violation system is feasible;
       solve it to hand back an explicit refuting polymatroid. *)
    let num_vars = (1 lsl n) - 1 in
    let cone_rows =
      List.map
        (fun e -> Simplex.sparse_constr (gamma_sparse e) Simplex.Ge Rat.zero)
        (elemental ~n)
    in
    let target_rows =
      List.map
        (fun e -> Simplex.sparse_constr (gamma_sparse e) Simplex.Le Rat.minus_one)
        es
    in
    (match Simplex.feasible ~num_vars (cone_rows @ target_rows) with
     | None -> assert false (* contradicts Farkas infeasibility above *)
     | Some x -> Error (Polymatroid.make n (fun s -> x.(s - 1))))

(* ------------------------------------------------------------------ *)
(* Mn: LP variables are the n per-variable weights.                    *)
(* ------------------------------------------------------------------ *)

let modular_row ~n e =
  (* E(h_w) = Σ_S c_S Σ_{i∈S} w_i: the coefficient of w_i is the total
     weight of terms containing i. *)
  let row = Array.make n Rat.zero in
  List.iter
    (fun (s, c) ->
      Varset.fold_elements (fun i () -> row.(i) <- Rat.add row.(i) c) s ())
    (Linexpr.terms e);
  row

let valid_max_modular ~n es =
  let target_rows =
    List.map
      (fun e -> Simplex.constr (modular_row ~n e) Simplex.Le Rat.minus_one)
      es
  in
  match Simplex.feasible ~num_vars:n target_rows with
  | None -> Ok ()
  | Some w -> Error (Polymatroid.modular_of_weights w)

(* ------------------------------------------------------------------ *)
(* Nn: LP variables are the step coefficients c_W, W ⊊ V, indexed by    *)
(* the mask W (the full mask is excluded).                              *)
(* ------------------------------------------------------------------ *)

let normal_row ~n e =
  (* E(Σ_W c_W h_W) = Σ_W c_W E(h_W) with E(h_W) = Σ_{S ⊄ W} c_S. *)
  let num_vars = (1 lsl n) - 1 in
  let row = Array.make num_vars Rat.zero in
  let terms = Linexpr.terms e in
  for w = 0 to num_vars - 1 do
    row.(w) <-
      List.fold_left
        (fun acc (s, c) -> if Varset.subset s w then acc else Rat.add acc c)
        Rat.zero terms
  done;
  row

let valid_max_normal ~n es =
  let num_vars = (1 lsl n) - 1 in
  let target_rows =
    List.map
      (fun e -> Simplex.constr (normal_row ~n e) Simplex.Le Rat.minus_one)
      es
  in
  match Simplex.feasible ~num_vars target_rows with
  | None -> Ok ()
  | Some c ->
    let coeffs = ref [] in
    Array.iteri
      (fun w cw -> if Rat.sign cw > 0 then coeffs := (w, cw) :: !coeffs)
      c;
    Error (Polymatroid.normal_of_steps n !coeffs)

let valid_max cone ~n es =
  check_range ~n es;
  match es with
  | [] -> Error (Polymatroid.zero n)
  | _ ->
    (match cone with
     | Gamma -> valid_max_gamma ~n es
     | Normal -> valid_max_normal ~n es
     | Modular -> valid_max_modular ~n es)

let valid_max_quick cone ~n es =
  check_range ~n es;
  match es with
  | [] -> false
  | _ ->
    (match cone with
     | Gamma -> gamma_dual_multipliers ~n es <> None
     | Normal -> Result.is_ok (valid_max_normal ~n es)
     | Modular -> Result.is_ok (valid_max_modular ~n es))

let valid cone ~n e = valid_max cone ~n [ e ]

let valid_shannon ~n e = valid_max_quick Gamma ~n [ e ]

let max_to_convex ~n es =
  check_range ~n es;
  match es with
  | [] -> None
  | _ ->
    (match gamma_dual_multipliers ~n es with
     | None -> None
     | Some (_, mu, _) -> Some mu)

let shannon_certificate ~n e =
  check_range ~n [ e ];
  match gamma_dual_multipliers ~n [ e ] with
  | None -> None
  | Some (lambda, _mu, elems) ->
    (* With k = 1 the convexity row forces μ = 1, so Σ λᵢ·elemᵢ = e. *)
    let pairs = List.combine elems (Array.to_list lambda) in
    Some (List.filter (fun (_, l) -> Rat.sign l > 0) pairs)
