open Bagcqc_num
open Bagcqc_lp
open Bagcqc_engine
module Obs = Bagcqc_obs

type cone = Gamma | Normal | Modular | Registered of string

type engine = Full | Lazy

let engine_name = function Full -> "full" | Lazy -> "lazy"

let engine_of_string = function
  | "full" -> Some Full
  | "lazy" -> Some Lazy
  | _ -> None

(* Same discipline (and env-var pattern) as [Simplex.default_mode]:
   initialized once from BAGCQC_CONE, set by CLI entry points or
   test/bench harnesses under [Fun.protect], never written by library
   code.  Lazy is the default: like the float-first LP default it only
   changes how fast the answer arrives — every verdict is certified or
   witnessed identically — and [--cone-engine full] restores the
   previous behaviour byte-for-byte. *)
let default_engine =
  ref
    (match Sys.getenv_opt "BAGCQC_CONE" with
     | None | Some "" -> Lazy
     | Some s ->
       (match engine_of_string s with
        | Some e -> e
        | None ->
          Printf.eprintf
            "bagcqc: ignoring invalid BAGCQC_CONE=%s (expected full or lazy)\n%!"
            s;
          Lazy))

let check_range ~n es =
  List.iter
    (fun e ->
      if Linexpr.max_var e >= n then
        invalid_arg "Cones: expression mentions a variable out of range")
    es

let elemental ~n = Elemental.list ~n

(* Certificates rejected by the exact [Certificate.check] under the
   float-first LP mode (expected 0; any bump is a solver bug that was
   caught and repaired by the exact oracle). *)
let c_cert_repair_fallbacks = Obs.Metrics.counter "cone.cert_check_fallbacks"

(* ------------------------------------------------------------------ *)
(* Pluggable backends: each cone contributes how to {e build} its LPs   *)
(* as canonical engine problems; the generic driver below owns the      *)
(* decide/certify/refute control flow, and the engine owns solving and  *)
(* caching.  New cones register without touching any caller.            *)
(* ------------------------------------------------------------------ *)

type backend = {
  name : string;
  refutation : n:int -> Linexpr.t list -> Problem.t;
      (** Feasibility system for [{h ∈ K, Eℓ(h) ≤ −1 ∀ℓ}] — a point
          refutes the max-inequality over the cone. *)
  refuter_of_point : n:int -> Rat.t array -> Polymatroid.t;
      (** Reconstruct the refuting set function from an LP point. *)
  farkas : (n:int -> Linexpr.t list -> Problem.t * Linexpr.t list) option;
      (** Optional validity-certificate LP: the returned problem is
          feasible iff the max-inequality is valid, and a solution is laid
          out as [λ] over the returned axiom list followed by the convex
          weights [μ] (one per side).  Present for [Γn]. *)
}

(* ---------------- Γn ---------------- *)

(* LP variables for Γn are h(S) for nonempty S, indexed by [mask − 1];
   expressions translate to sparse rows directly off their term lists
   (elemental inequalities have at most 4 nonzero terms, so the LPs below
   never materialize the 2^n − 1 mostly-zero coefficients). *)
let gamma_sparse e =
  List.map (fun (s, c) -> (s - 1, c)) (Linexpr.terms e)

(* Farkas certificate search: is some convex combination Σ μℓ·Eℓ a
   non-negative combination Σ λᵢ·elemᵢ of elemental inequalities?  By LP
   duality over the polyhedral cone Γn (this is the paper's Theorem 6.1
   instantiated at Γn), such (λ, μ) exist iff the max-inequality is valid
   over Γn.  The LP has only 2^n equality rows — far smaller than the
   primal feasibility system, whose rows are the thousands of elemental
   inequalities. *)
let gamma_farkas ~n es =
  let elems = Elemental.list ~n in
  let n_elem = List.length elems in
  let k = List.length es in
  let num_vars = n_elem + k in
  (* Transpose the sparse columns (one per multiplier) into sparse rows
     (one per nonempty mask S): Σ λᵢ elemᵢ(S) − Σ μℓ Eℓ(S) = 0. *)
  let buckets = Array.make ((1 lsl n) - 1) [] in
  List.iteri
    (fun i e ->
      List.iter (fun (s, c) -> buckets.(s) <- (i, c) :: buckets.(s)) (gamma_sparse e))
    elems;
  List.iteri
    (fun l e ->
      List.iter
        (fun (s, c) -> buckets.(s) <- (n_elem + l, Rat.neg c) :: buckets.(s))
        (gamma_sparse e))
    es;
  let rows =
    List.init ((1 lsl n) - 1) (fun s ->
        Problem.row buckets.(s) Simplex.Eq Rat.zero)
    @ [ Problem.row
          (List.init k (fun l -> (n_elem + l, Rat.one)))
          Simplex.Eq Rat.one ]
  in
  (Problem.make ~tag:"gamma/farkas" ~num_vars rows, elems)

(* ---- store verifier: reconstruct the certificate a stored Farkas
   point encodes, and let the exact [Certificate.check] judge it ---- *)

(* A persistent-store entry for a "gamma/farkas" problem claims that the
   recorded point is a Farkas certificate for *some* max-inequality.
   The canonical row sort of [Problem] forgot which Eq-0 row belongs to
   which mask S, so we first re-derive that correspondence: the λ-part
   of row S is the column pattern [(i, elemᵢ(S))], which is distinct per
   mask for the elemental family (it spans the dual space).  We match
   rows to masks by that pattern, read each side Eℓ back off the negated
   μ-part coefficients, assemble the [Certificate], and accept the entry
   only if [Certificate.check] passes — the same exact, LP-independent
   judge the live pipeline uses.  Any structural surprise (ambiguous
   pattern, stray op, bad convexity row) conservatively rejects: a
   rejection only costs a re-solve, never soundness. *)
let farkas_certificate_of_point prob x =
  let exception Bad in
  try
    let nrows = Problem.num_rows prob in
    let rec log2 k acc =
      if k = 1 then acc
      else if k land 1 = 1 || k <= 0 then raise Bad
      else log2 (k lsr 1) (acc + 1)
    in
    let n = log2 nrows 0 in
    if n < 1 || n > Varset.max_vars then raise Bad;
    if Problem.objective prob <> [] then raise Bad;
    let elems = Elemental.list ~n in
    let n_elem = List.length elems in
    let k = Problem.num_vars prob - n_elem in
    if k < 1 || Array.length x <> n_elem + k then raise Bad;
    (* Signature of each mask's λ-column pattern, ascending in i. *)
    let nmasks = 1 lsl n in
    let lam_pattern = Array.make nmasks [] in
    List.iteri
      (fun i e ->
        List.iter
          (fun (s, c) -> lam_pattern.(s) <- (i, c) :: lam_pattern.(s))
          (Linexpr.terms e))
      elems;
    let sig_of pairs =
      let b = Buffer.create 64 in
      List.iter
        (fun (i, c) ->
          Buffer.add_string b (string_of_int i);
          Buffer.add_char b ':';
          Buffer.add_string b (Rat.to_string c);
          Buffer.add_char b ';')
        pairs;
      Buffer.contents b
    in
    let masks_by_sig : (string, int list ref) Hashtbl.t =
      Hashtbl.create nmasks
    in
    for s = 1 to nmasks - 1 do
      let key = sig_of (List.rev lam_pattern.(s)) in
      match Hashtbl.find_opt masks_by_sig key with
      | Some l -> l := s :: !l
      | None -> Hashtbl.add masks_by_sig key (ref [ s ])
    done;
    let sides = Array.make k Linexpr.zero in
    let convexity_seen = ref false in
    List.iter
      (fun (pairs, op, rhs) ->
        if op <> Simplex.Eq then raise Bad;
        if Rat.equal rhs Rat.one then begin
          (* The convexity row Σ μℓ = 1: exactly the k μ-columns, unit
             coefficients, exactly once. *)
          if !convexity_seen then raise Bad;
          convexity_seen := true;
          if List.length pairs <> k then raise Bad;
          List.iteri
            (fun l (j, c) ->
              if j <> n_elem + l || not (Rat.equal c Rat.one) then raise Bad)
            pairs
        end
        else if Rat.is_zero rhs then begin
          let lam_part, mu_part =
            List.partition (fun (j, _) -> j < n_elem) pairs
          in
          let key = sig_of lam_part in
          let s =
            match Hashtbl.find_opt masks_by_sig key with
            | Some ({ contents = s :: rest } as l) ->
              l := rest;
              s
            | Some { contents = [] } | None -> raise Bad
          in
          List.iter
            (fun (j, c) ->
              let l = j - n_elem in
              if l < 0 || l >= k then raise Bad;
              (* The builder wrote −Eℓ(S) into column n_elem+l. *)
              sides.(l) <-
                Linexpr.add sides.(l)
                  (Linexpr.term ~coeff:(Rat.neg c) s))
            mu_part
        end
        else raise Bad)
      (Problem.rows_list prob);
    if not !convexity_seen then raise Bad;
    (* Every mask matched exactly once: (2^n − 1) Eq-0 rows popped one
       mask each, so all per-signature pools must now be empty. *)
    Hashtbl.iter
      (fun _ l -> if !l <> [] then raise Bad)
      masks_by_sig;
    let lambda =
      List.filteri (fun _ (_, l) -> Rat.sign l > 0)
        (List.mapi (fun i e -> (e, x.(i))) elems)
    in
    let mu = List.init k (fun l -> x.(n_elem + l)) in
    Some
      (Certificate.make ~n ~cone:"gamma" ~sides:(Array.to_list sides)
         ~lambda ~mu)
  with _ -> None

let () =
  Store.register_verifier ~tag:"gamma/farkas" (fun prob x ->
      match farkas_certificate_of_point prob x with
      | Some cert -> Certificate.check cert
      | None -> false)

let gamma_refutation ~n es =
  let num_vars = (1 lsl n) - 1 in
  let cone_rows =
    List.map
      (fun e -> Problem.row (gamma_sparse e) Simplex.Ge Rat.zero)
      (Elemental.list ~n)
  in
  let target_rows =
    List.map
      (fun e -> Problem.row (gamma_sparse e) Simplex.Le Rat.minus_one)
      es
  in
  Problem.make ~tag:"gamma/refute" ~num_vars (cone_rows @ target_rows)

let gamma_backend =
  { name = "gamma";
    refutation = gamma_refutation;
    refuter_of_point = (fun ~n x -> Polymatroid.make n (fun s -> x.(s - 1)));
    farkas = Some gamma_farkas }

(* ---------------- Mn ---------------- *)

(* LP variables are the n per-variable weights: E(h_w) = Σ_S c_S Σ_{i∈S}
   w_i, so the coefficient of w_i is the total weight of terms
   containing i. *)
let modular_sparse ~n e =
  let row = Array.make n Rat.zero in
  List.iter
    (fun (s, c) ->
      Varset.fold_elements (fun i () -> row.(i) <- Rat.add row.(i) c) s ())
    (Linexpr.terms e);
  List.concat
    (List.init n (fun i ->
         if Rat.is_zero row.(i) then [] else [ (i, row.(i)) ]))

let modular_backend =
  { name = "modular";
    refutation =
      (fun ~n es ->
        Problem.make ~tag:"modular/refute" ~num_vars:n
          (List.map
             (fun e ->
               Problem.row (modular_sparse ~n e) Simplex.Le Rat.minus_one)
             es));
    refuter_of_point = (fun ~n:_ w -> Polymatroid.modular_of_weights w);
    farkas = None }

(* ---------------- Nn ---------------- *)

(* LP variables are the step coefficients c_W, W ⊊ V, indexed by the mask
   W (the full mask is excluded): E(Σ_W c_W h_W) = Σ_W c_W E(h_W) with
   E(h_W) = Σ_{S ⊄ W} c_S. *)
let normal_sparse ~n e =
  let num_vars = (1 lsl n) - 1 in
  let terms = Linexpr.terms e in
  List.concat
    (List.init num_vars (fun w ->
         let coeff =
           List.fold_left
             (fun acc (s, c) -> if Varset.subset s w then acc else Rat.add acc c)
             Rat.zero terms
         in
         if Rat.is_zero coeff then [] else [ (w, coeff) ]))

let normal_backend =
  { name = "normal";
    refutation =
      (fun ~n es ->
        Problem.make ~tag:"normal/refute" ~num_vars:((1 lsl n) - 1)
          (List.map
             (fun e -> Problem.row (normal_sparse ~n e) Simplex.Le Rat.minus_one)
             es));
    refuter_of_point =
      (fun ~n c ->
        let coeffs = ref [] in
        Array.iteri
          (fun w cw -> if Rat.sign cw > 0 then coeffs := (w, cw) :: !coeffs)
          c;
        Polymatroid.normal_of_steps n !coeffs);
    farkas = None }

(* ---------------- registry ---------------- *)

let registry : (string, backend) Hashtbl.t = Hashtbl.create 8

let register b =
  if Hashtbl.mem registry b.name then
    invalid_arg ("Cones.register: backend already registered: " ^ b.name);
  Hashtbl.add registry b.name b

let () =
  register gamma_backend;
  register normal_backend;
  register modular_backend

let find_backend name = Hashtbl.find_opt registry name

let backend_names () =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) registry [])

let backend_of_cone = function
  | Gamma -> gamma_backend
  | Normal -> normal_backend
  | Modular -> modular_backend
  | Registered name ->
    (match find_backend name with
     | Some b -> b
     | None -> invalid_arg ("Cones: unknown backend " ^ name))

(* ---------------- generic driver ---------------- *)

(* Problem construction (cone axioms → canonical LP rows) is its own
   span: for Γn it enumerates the full elemental family, which can rival
   the solve itself on larger n. *)
let build_span b ~kind ~n es build =
  Obs.Span.with_span ~name:"cone.build"
    ~attrs:
      [ ("backend", Obs.Span.Str b.name);
        ("kind", Obs.Span.Str kind);
        ("n", Obs.Span.Int n);
        ("sides", Obs.Span.Int (List.length es)) ]
    build

let build_refutation b ~n es =
  build_span b ~kind:"refutation" ~n es (fun () -> b.refutation ~n es)

let refute b ~n es =
  match Solver.feasible (build_refutation b ~n es) with
  | Some x -> Some (b.refuter_of_point ~n x)
  | None -> None

(* The lazy driver targets Γn — the only cone whose axiom family
   explodes with n.  Nn/Mn LPs are small ([n] or [2^n − 1] variables,
   one row per side) and stay on the direct path under either engine. *)
let use_lazy b = b.name = "gamma" && !default_engine = Lazy

let valid_max_cert cone ~n es =
  check_range ~n es;
  match es with
  | [] -> Error (Polymatroid.zero n)
  | _ when use_lazy (backend_of_cone cone) ->
    (match Separation.valid_max_cert ~n es with
     | Ok cert -> Ok (Some cert)
     | Error h -> Error h)
  | _ ->
    let b = backend_of_cone cone in
    (match b.farkas with
     | Some build ->
       let prob, elems =
         build_span b ~kind:"farkas" ~n es (fun () -> build ~n es)
       in
       let n_elem = List.length elems in
       let k = List.length es in
       (match Solver.feasible prob with
        | Some x ->
          let assemble x =
            let lambda =
              List.filteri (fun _ (_, l) -> Rat.sign l > 0)
                (List.mapi (fun i e -> (e, x.(i))) elems)
            in
            let mu = List.init k (fun l -> x.(n_elem + l)) in
            Certificate.make ~n ~cone:b.name ~sides:es ~lambda ~mu
          in
          let cert = assemble x in
          (* Defense in depth for the float-first LP mode (DESIGN.md
             §4f): a hybrid answer is only accepted once its Farkas
             certificate passes the exact, LP-independent
             [Certificate.check].  Repair already verified the solution
             exactly, so a failure here means a solver bug — re-derive
             the point with the exact oracle (bypassing the solver cache,
             which holds the rejected point) rather than returning an
             uncertified answer. *)
          if !Simplex.default_mode = Simplex.Exact || Certificate.check cert
          then Ok (Some cert)
          else begin
            Obs.Metrics.bump c_cert_repair_fallbacks;
            match
              Simplex.solve ~mode:Simplex.Exact (Problem.to_simplex prob)
            with
            | Simplex.Optimal (_, x) -> Ok (Some (assemble x))
            | Simplex.Infeasible | Simplex.Unbounded ->
              Bagcqc_error.invariant ~where:"Cones.valid_max_cert"
                (Printf.sprintf
                   "backend %s: float-first Farkas point rejected by \
                    Certificate.check and the exact re-solve found no \
                    feasible point"
                   b.name)
          end
        | None ->
          (match refute b ~n es with
           | Some h -> Error h
           | None ->
             (* LP duality (Theorem 6.1 at this cone): the Farkas system
                is infeasible iff the refutation system has a point.  Both
                coming back empty means the two independently-built LPs
                disagree — a solver bug, reported as a typed error. *)
             Bagcqc_error.invariant ~where:"Cones.valid_max_cert"
               (Printf.sprintf
                  "backend %s: Farkas LP infeasible but refutation LP \
                   infeasible too (duality violated)"
                  b.name)))
     | None ->
       (match refute b ~n es with
        | None -> Ok None
        | Some h -> Error h))

let valid_max cone ~n es =
  match valid_max_cert cone ~n es with
  | Ok _ -> Ok ()
  | Error h -> Error h

let valid_max_quick cone ~n es =
  check_range ~n es;
  match es with
  | [] -> false
  | _ when use_lazy (backend_of_cone cone) -> Separation.valid_max_quick ~n es
  | _ ->
    let b = backend_of_cone cone in
    (match b.farkas with
     | Some build ->
       let prob =
         build_span b ~kind:"farkas" ~n es (fun () -> fst (build ~n es))
       in
       Solver.feasible prob <> None
     | None -> Solver.feasible (build_refutation b ~n es) = None)

let valid cone ~n e = valid_max cone ~n [ e ]

let valid_shannon ~n e = valid_max_quick Gamma ~n [ e ]

module Etbl = Hashtbl.Make (struct
  type t = Linexpr.t

  let equal = Linexpr.equal
  let hash = Linexpr.hash
end)

let valid_shannon_many ~n es =
  (* Warm the elemental family once before fanning out, so the workers
     race on LP solving rather than on the elemental-table mutex. *)
  (match es with [] -> () | _ -> ignore (Elemental.list ~n));
  (* Dedup before fanning out: a batch with repeated inequalities (bulk
     clients, generated batches) solves each distinct expression once
     and fans the verdict back out — cheaper than relying on the solver
     cache, which would still pay one canonical-LP build per repeat. *)
  let index = Etbl.create (List.length es) in
  let distinct = ref [] and n_distinct = ref 0 in
  List.iter
    (fun e ->
      if not (Etbl.mem index e) then begin
        Etbl.add index e !n_distinct;
        distinct := e :: !distinct;
        incr n_distinct
      end)
    es;
  let verdicts =
    Array.of_list
      (Bagcqc_par.Pool.parallel_map_list
         (fun e -> valid_shannon ~n e)
         (List.rev !distinct))
  in
  List.map (fun e -> verdicts.(Etbl.find index e)) es

(* [valid_max_cert] can only return [Ok None] for a backend without a
   Farkas builder; Γn registers one, so a certificate-less Ok from the
   gamma backend is a broken invariant, not a reachable state. *)
let gamma_always_certifies ~where =
  Bagcqc_error.invariant ~where
    "gamma backend returned Ok without a certificate despite its Farkas \
     builder"

let max_to_convex ~n es =
  match valid_max_cert Gamma ~n es with
  | Ok (Some cert) -> Some (Array.of_list (Certificate.convex_weights cert))
  | Ok None -> gamma_always_certifies ~where:"Cones.max_to_convex"
  | Error _ -> None

let shannon_certificate ~n e =
  match valid_max_cert Gamma ~n [ e ] with
  | Ok (Some cert) ->
    (* With k = 1 the convexity row forces μ = 1, so Σ λᵢ·elemᵢ = e. *)
    Some (Certificate.lambda cert)
  | Ok None -> gamma_always_certifies ~where:"Cones.shannon_certificate"
  | Error _ -> None
