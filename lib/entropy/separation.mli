(** Lazy constraint generation + symmetry reduction for the Shannon
    cone — the [--cone-engine lazy] driver behind {!Cones} (DESIGN.md
    §4i).

    Instead of materializing all [n + C(n,2)·2^(n−2)] elemental
    inequalities into every Γn LP, the instance is canonicalized modulo
    variable permutation ({!Symmetry.analyze}) and decided by a
    cutting-plane loop: solve the refutation LP over a small working
    set W of elemental inequalities (monotonicity + two submodularity
    slices), separate over the {e implicit} family
    ({!Elemental.eval_desc} — exact rationals, nothing materialized),
    add the most-violated cut orbit-at-a-time, and re-solve
    warm-starting the float simplex from the previous round's basis
    ({!Bagcqc_lp.Simplex.solve_warm}).  Every per-round LP is routed
    through {!Bagcqc_engine.Solver.solve_using}, so rounds hit the
    sharded cache and the persistent store — across restarts {e and}
    across symmetric instances.

    Soundness is engine-independent: "valid" means the refutation LP
    over W ⊇'s cone is infeasible (a cone {e containing} Γn, so the
    verdict transfers), and carries a Farkas certificate over W ⊆
    elemental family that the unchanged exact
    {!Certificate.check} judges; "refuted" returns a point that passed
    the full separation scan, i.e. satisfies {e every} elemental
    inequality.  The full-materialization driver in {!Cones} stays
    available as the cross-checked oracle. *)

val valid_max_cert :
  n:int -> Linexpr.t list -> (Certificate.t, Polymatroid.t) result
(** Decide [∀h ∈ Γn. 0 ≤ max_ℓ es_ℓ(h)] for a non-empty [es] whose
    variables all lie below [n] (the {!Cones} driver enforces both).
    [Ok cert] proves validity — [cert] passes {!Certificate.check} and
    cites the caller's expressions verbatim; [Error h] is a polymatroid
    with [es_ℓ(h) < 0] for all ℓ. *)

val valid_max_quick : n:int -> Linexpr.t list -> bool
(** Verdict only: runs the separation loop but skips the Farkas solve
    and certificate packaging on the valid side. *)
