open Bagcqc_num

type form =
  | General of Linexpr.t list
  | Conditional of { q : Rat.t; sides : Cexpr.t list }

type t = { n : int; form : form }

let sides_of_form ~n = function
  | General es -> es
  | Conditional { q; sides } ->
    let qhv = Linexpr.term ~coeff:q (Varset.full n) in
    List.map (fun e -> Linexpr.sub (Cexpr.to_linexpr e) qhv) sides

let make ~n form =
  (match form with
   | Conditional { q; _ } when Rat.sign q <= 0 ->
     invalid_arg "Maxii.make: q must be positive"
   | Conditional _ | General _ -> ());
  List.iter
    (fun e ->
      if Linexpr.max_var e >= n then
        invalid_arg "Maxii.make: side mentions a variable out of range")
    (sides_of_form ~n form);
  { n; form }

let general ~n es = make ~n (General es)
let conditional ~n ~q sides = make ~n (Conditional { q; sides })

let n_vars t = t.n
let form t = t.form
let sides t = sides_of_form ~n:t.n t.form

let is_iip t = List.length (sides t) = 1

type shape = Unconditioned | Simple | Conditional_general | Unrestricted

let shape t =
  match t.form with
  | General _ -> Unrestricted
  | Conditional { sides; _ } ->
    if List.for_all Cexpr.is_unconditioned sides then Unconditioned
    else if List.for_all Cexpr.is_simple sides then Simple
    else Conditional_general

type verdict =
  | Valid of Certificate.t
  | Invalid of Polymatroid.t
  | Unknown of Polymatroid.t

let valid_over cone t = Cones.valid_max cone ~n:t.n (sides t)

let is_valid_over cone t = Cones.valid_max_quick cone ~n:t.n (sides t)

let combine_verdict t normal gamma =
  match normal with
  | Error h_normal -> Invalid h_normal
  | Ok () ->
    (match gamma with
     | Ok (Some cert) -> Valid cert
     | Ok None ->
       (* The Γn backend registers a Farkas builder, so a certificate-less
          Ok cannot be produced by construction. *)
       Bagcqc_error.invariant ~where:"Maxii.combine_verdict"
         "gamma backend returned Ok without a certificate"
     | Error h_gamma ->
       (* Refuted over Γn but not over Nn: Theorem 3.6 proves the two
          cones agree on Unconditioned/Simple forms, so landing here on
          one of those shapes means an LP gave a wrong answer. *)
       (match shape t with
        | Unconditioned | Simple ->
          Bagcqc_error.invariant ~where:"Maxii.combine_verdict"
            "Γn refutes but Nn validates a decidable (Unconditioned or \
             Simple) shape, contradicting Theorem 3.6"
        | Conditional_general | Unrestricted -> ());
       Unknown h_gamma)

let decide t =
  if Bagcqc_par.Pool.(jobs () > 1 && not (inside_task ())) then
    (* Speculate on the two cones concurrently: the Γn certificate work is
       wasted when Nn refutes, but that is the expensive side we would
       otherwise wait on in the common (valid) case.  The verdict is
       identical to the sequential path; only the solve/cache counters may
       differ (the speculative Γn solve). *)
    let normal, gamma =
      Bagcqc_par.Pool.both
        (fun () -> valid_over Cones.Normal t)
        (fun () -> Cones.valid_max_cert Cones.Gamma ~n:t.n (sides t))
    in
    combine_verdict t normal gamma
  else
    (* Cheapest first: the Nn refutation LP is tiny (one row per side), and
       a normal refuter is entropic, settling the instance outright. *)
    match valid_over Cones.Normal t with
    | Error h_normal -> Invalid h_normal
    | Ok () -> combine_verdict t (Ok ()) (Cones.valid_max_cert Cones.Gamma ~n:t.n (sides t))

let decide_result t = Bagcqc_error.protect (fun () -> decide t)

let decide_many ts =
  (* Batch fan-out: each instance is decided sequentially on its worker
     (the nested [decide] sees [inside_task] and takes the sequential
     path), so per-instance verdicts {e and} counters match a sequential
     run exactly. *)
  Bagcqc_par.Pool.parallel_map_list decide ts

let pp ?(names = Varset.default_name) () fmt t =
  let pp_sides pp_side sides =
    Format.pp_print_string fmt "max(";
    List.iteri
      (fun i s ->
        if i > 0 then Format.pp_print_string fmt ", ";
        pp_side fmt s)
      sides;
    Format.pp_print_string fmt ")"
  in
  match t.form with
  | General es ->
    Format.pp_print_string fmt "0 <= ";
    pp_sides (fun fmt e -> Linexpr.pp ~names () fmt e) es
  | Conditional { q; sides } ->
    let full = Varset.full t.n in
    if not (Rat.equal q Rat.one) then Format.fprintf fmt "%a*" Rat.pp q;
    Format.fprintf fmt "h(%s) <= "
      (String.concat "" (List.map names (Varset.to_list full)));
    pp_sides (fun fmt e -> Cexpr.pp ~names () fmt e) sides
