open Bagcqc_relation
module Obs = Bagcqc_obs

exception Limit_reached

(* Size of the candidate row set scanned at each search node: the whole
   relation when no argument is bound yet, otherwise the index bucket.
   The distribution tells apart index-driven runs (mass near 1) from
   degenerate cross-product scans (mass near the relation sizes). *)
let h_candidates = Obs.Metrics.histogram "hom.candidates"

(* Tuples hash/compare element-wise through Value so hash tables never fall
   back on polymorphic comparison (which walks arbitrary Value structure). *)
module RowTbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash a =
    Array.fold_left (fun acc v -> (acc * 65599) + Value.hash v) (Array.length a) a
end)

(* Backtracking homomorphism search.  [assignment] maps query variables to
   values (None = unbound).  At each step pick the atom with the most bound
   argument positions (ties: smaller relation) and extend the assignment
   with each consistent row of its relation.

   Consistent rows are found through lazy hash indexes: for an atom and a
   bitmask of currently-bound argument positions, an index maps the values
   at those positions to the matching rows (kept in relation order, so the
   enumeration order is the same as a plain filtering scan).  The search
   binds variables in a data-dependent order, so only the handful of masks
   that actually occur get an index — built once on first use, then every
   later visit of that atom at the same mask is a single lookup instead of
   a scan of the whole relation. *)

(* [root_slice (lo, hi)] restricts the search to rows [lo, hi) of the
   {e root} atom's candidate set — the first atom expanded, where nothing
   is bound yet.  Root selection is deterministic (all bound-counts are
   zero, so the first smallest relation wins), so slicing its rows
   partitions the search space exactly: the pool fans [count] and
   [contained_on] out over such slices and sums/merges.  [note] is false
   on slices so the enumeration is counted (and spanned) once, keeping
   the hom.enumerations counter equal to a sequential run. *)
let iter_homs_body ?root_slice q db yield =
  let nv = Query.nvars q in
  let assignment : Value.t option array = Array.make nv None in
  let atoms = Array.of_list (Query.atoms q) in
  let natoms = Array.length atoms in
  let rows =
    Array.map
      (fun a ->
        let arity = Array.length a.Query.args in
        Array.of_list (Relation.to_list (Database.relation db a.Query.rel ~arity)))
      atoms
  in
  let rec lsb_pos m i = if m land 1 = 1 then i else lsb_pos (m lsr 1) (i + 1) in
  (* [selected mask npos fetch] = values of [fetch] at the set positions of
     [mask], lowest position first; [npos] is the popcount of [mask] ≥ 1. *)
  let selected mask npos fetch =
    let key = Array.make npos (fetch (lsb_pos mask 0)) in
    let k = ref 0 and pos = ref 0 and m = ref mask in
    while !m <> 0 do
      if !m land 1 = 1 then begin
        key.(!k) <- fetch !pos;
        incr k
      end;
      incr pos;
      m := !m lsr 1
    done;
    key
  in
  let index_cache : (int, Value.t array list RowTbl.t) Hashtbl.t array =
    Array.init natoms (fun _ -> Hashtbl.create 4)
  in
  let index ai mask npos =
    match Hashtbl.find_opt index_cache.(ai) mask with
    | Some tbl -> tbl
    | None ->
      let tbl = RowTbl.create (2 * Array.length rows.(ai)) in
      Array.iter
        (fun (row : Value.t array) ->
          let key = selected mask npos (Array.get row) in
          RowTbl.replace tbl key
            (row :: (try RowTbl.find tbl key with Not_found -> [])))
        rows.(ai);
      (* Buckets were built by consing; flip them back to relation order. *)
      RowTbl.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) tbl;
      Hashtbl.add index_cache.(ai) mask tbl;
      tbl
  in
  (* Bitmask of argument positions whose variable is bound, plus its
     popcount (the seed's bound-variable count, per position). *)
  let bound_info ai =
    let mask = ref 0 and cnt = ref 0 in
    Array.iteri
      (fun pos v ->
        if assignment.(v) <> None then begin
          mask := !mask lor (1 lsl pos);
          incr cnt
        end)
      atoms.(ai).Query.args;
    (!mask, !cnt)
  in
  (* [pending] carries each atom's row count so the selection heuristic
     never recounts a relation.  [root] marks the first expansion, the
     only place a [root_slice] applies. *)
  let rec go ~root pending =
    match pending with
    | [] ->
      (* Every variable occurs in some atom (all atoms processed), except
         for queries with variables in no atom — those are rejected at
         query construction, but guard anyway. *)
      if Array.for_all Option.is_some assignment then
        yield (Array.map Option.get assignment)
    | _ :: _ ->
      (* Most-constrained atom first; first maximum wins, as in a fold. *)
      let best_i = ref (-1)
      and best_cnt = ref (-1)
      and best_size = ref 0
      and best_mask = ref 0 in
      List.iter
        (fun (i, size) ->
          let mask, cnt = bound_info i in
          if cnt > !best_cnt || (cnt = !best_cnt && size < !best_size) then begin
            best_i := i;
            best_cnt := cnt;
            best_size := size;
            best_mask := mask
          end)
        pending;
      let ai = !best_i in
      let rest = List.filter (fun (i, _) -> i <> ai) pending in
      let args = atoms.(ai).Query.args in
      let try_row (row : Value.t array) =
        (* Unify the row with the atom under the current assignment,
           recording newly-bound variables.  Index candidates already agree
           on the bound positions, but the loop re-checks them to handle
           repeated variables (one occurrence bound, another not). *)
        let newly = ref [] in
        let ok = ref true in
        Array.iteri
          (fun pos v ->
            if !ok then
              match assignment.(v) with
              | Some x -> if not (Value.equal x row.(pos)) then ok := false
              | None ->
                assignment.(v) <- Some row.(pos);
                newly := v :: !newly)
          args;
        if !ok then go ~root:false rest;
        List.iter (fun v -> assignment.(v) <- None) !newly
      in
      if !best_mask = 0 then begin
        let cands =
          match root_slice with
          | Some (lo, hi) when root -> Array.sub rows.(ai) lo (hi - lo)
          | _ -> rows.(ai)
        in
        if !Obs.Runtime.enabled then
          Obs.Metrics.observe h_candidates (Array.length cands);
        Array.iter try_row cands
      end
      else begin
        let key =
          selected !best_mask !best_cnt (fun pos ->
              Option.get assignment.(args.(pos)))
        in
        match RowTbl.find_opt (index ai !best_mask !best_cnt) key with
        | None -> if !Obs.Runtime.enabled then Obs.Metrics.observe h_candidates 0
        | Some bucket ->
          if !Obs.Runtime.enabled then
            Obs.Metrics.observe h_candidates (List.length bucket);
          List.iter try_row bucket
      end
  in
  go ~root:true (List.init natoms (fun i -> (i, Array.length rows.(i))))

let iter_homs q db yield =
  Bagcqc_engine.Stats.note_hom_enumeration ();
  Obs.Span.with_span ~name:"hom.enumerate"
    ~attrs:
      [ ("vars", Obs.Span.Int (Query.nvars q));
        ("atoms", Obs.Span.Int (List.length (Query.atoms q))) ]
  @@ fun () -> iter_homs_body q db yield

(* Row count of the root atom — the first smallest relation, mirroring
   the selection rule in [go] when nothing is bound yet.  This is how
   many candidate rows a parallel fan-out can slice. *)
let root_rows q db =
  List.fold_left
    (fun best a ->
      let arity = Array.length a.Query.args in
      let sz = Relation.cardinal (Database.relation db a.Query.rel ~arity) in
      match best with Some b when b <= sz -> best | _ -> Some sz)
    None (Query.atoms q)
  |> Option.value ~default:0

(* Parallel fan-out applies only when the full enumeration is needed
   ([limit] cuts across slices) and the pool can actually help. *)
let slices_for q db =
  let module P = Bagcqc_par.Pool in
  if P.jobs () <= 1 || P.inside_task () then None
  else begin
    let n = root_rows q db in
    if n <= 1 then None
    else begin
      let nsl = min n (P.jobs () * 4) in
      Some (Array.init nsl (fun i -> (i * n / nsl, (i + 1) * n / nsl)))
    end
  end

let with_enumeration_span q f =
  Bagcqc_engine.Stats.note_hom_enumeration ();
  Obs.Span.with_span ~name:"hom.enumerate"
    ~attrs:
      [ ("vars", Obs.Span.Int (Query.nvars q));
        ("atoms", Obs.Span.Int (List.length (Query.atoms q)));
        ("par", Obs.Span.Bool true) ]
    f

let count ?limit q db =
  let seq () =
    let n = ref 0 in
    (try
       iter_homs q db (fun _ ->
           incr n;
           match limit with
           | Some l when !n >= l -> raise Limit_reached
           | _ -> ())
     with Limit_reached -> ());
    !n
  in
  match limit with
  | Some _ -> seq ()
  | None ->
    (match slices_for q db with
     | None -> seq ()
     | Some slices ->
       with_enumeration_span q @@ fun () ->
       Bagcqc_par.Pool.parallel_map
         (fun (lo, hi) ->
           let n = ref 0 in
           iter_homs_body ~root_slice:(lo, hi) q db (fun _ -> incr n);
           !n)
         slices
       |> Array.fold_left ( + ) 0)

let exists q db = count ~limit:1 q db > 0

let enumerate q db =
  let acc = ref [] in
  iter_homs q db (fun h -> acc := Array.copy h :: !acc);
  List.rev !acc

(* Bag-set answers as a multiplicity table.  The parallel path merges the
   per-slice tables by adding multiplicities — addition is the same fold
   the sequential scan performs, so the merged table is identical (only
   hash-bucket insertion order can differ). *)
let answers_tbl q db =
  let head = Array.of_list (Query.head q) in
  let accumulate tbl h =
    let key = Array.map (fun v -> h.(v)) head in
    let prev = try RowTbl.find tbl key with Not_found -> 0 in
    RowTbl.replace tbl key (prev + 1)
  in
  match slices_for q db with
  | None ->
    let tbl = RowTbl.create 64 in
    iter_homs q db (accumulate tbl);
    tbl
  | Some slices ->
    with_enumeration_span q @@ fun () ->
    let parts =
      Bagcqc_par.Pool.parallel_map
        (fun (lo, hi) ->
          let t = RowTbl.create 64 in
          iter_homs_body ~root_slice:(lo, hi) q db (accumulate t);
          t)
        slices
    in
    let tbl = RowTbl.create 64 in
    Array.iter
      (fun t ->
        RowTbl.iter
          (fun key c ->
            let prev = try RowTbl.find tbl key with Not_found -> 0 in
            RowTbl.replace tbl key (prev + c))
          t)
      parts;
    tbl

let answers q db =
  RowTbl.fold (fun k v acc -> (k, v) :: acc) (answers_tbl q db) []

let contained_on q1 q2 db =
  if List.length (Query.head q1) <> List.length (Query.head q2) then
    invalid_arg "Hom.contained_on: head arity mismatch";
  let a2 = answers_tbl q2 db in
  let a1 = answers_tbl q1 db in
  RowTbl.fold
    (fun key c1 acc ->
      acc && c1 <= (match RowTbl.find_opt a2 key with Some c -> c | None -> 0))
    a1 true

(* Queries as structures: the canonical database uses Str values carrying
   variable names, which we decode back to indices. *)

let boolean q = Query.make ~nvars:(Query.nvars q) ~names:(Query.var_names q) (Query.atoms q)

let enumerate_between qa qb =
  let db = Database.canonical qb in
  let name_to_index = Hashtbl.create 16 in
  Array.iteri
    (fun i name -> Hashtbl.replace name_to_index name i)
    (Query.var_names qb);
  let decode v =
    match v with
    | Value.Str s -> Hashtbl.find name_to_index s
    | Value.Int _ | Value.Pair _ | Value.Tag _ | Value.Tuple _ ->
      invalid_arg "Hom.enumerate_between: unexpected value"
  in
  List.map (Array.map decode) (enumerate (boolean qa) db)

let count_between qa qb = count (boolean qa) (Database.canonical qb)
