(** Concrete syntax for conjunctive queries.

    Datalog-style:
    {[
      Q(x,z) :- R(x,y), S(y,z), T(z,z).
      Q() :- R(x,y), R(y,x)
      R(x,y), S(y,z)                      (* headless = Boolean *)
    ]}
    Variables are identifiers; their indices are assigned in order of first
    occurrence (head first).  The trailing period is optional. *)

exception Parse_error of string
(** Carries a human-readable position + message. *)

val parse : string -> Query.t
(** @raise Parse_error on malformed input — including inputs the
    tokenizer and grammar accept but {!Query.make} rejects (too many
    variables, inconsistent relation arities) and body atoms with no
    arguments.  Duplicate head variables are legal ([Q(x,x) :- R(x,y)]
    outputs the tuple [(x,x)]). *)

val parse_result : string -> (Query.t, string) result
(** Total: returns [Error _] on every malformed input and never raises,
    whatever the string (the differential fuzzer checks exactly that). *)
