open Bagcqc_entropy

type t = { bags : Varset.t array; edges : (int * int) list }

let make ~bags ~edges =
  let n = Array.length bags in
  (* Union-find cycle check: the edge set must form a forest. *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Treedec.make: edge endpoint out of range";
      let ra = find a and rb = find b in
      if ra = rb then invalid_arg "Treedec.make: edges contain a cycle";
      parent.(ra) <- rb)
    edges;
  { bags; edges }

let bags t = Array.copy t.bags
let tree_edges t = t.edges
let n_nodes t = Array.length t.bags

let width t =
  Array.fold_left (fun acc b -> max acc (Varset.cardinal b - 1)) (-1) t.bags

let neighbours t v =
  List.filter_map
    (fun (a, b) -> if a = v then Some b else if b = v then Some a else None)
    t.edges

let is_valid_for q t =
  let n = Array.length t.bags in
  (* Coverage: every atom inside some bag. *)
  let covered =
    List.for_all
      (fun a ->
        let av = Query.atom_vars a in
        Array.exists (fun b -> Varset.subset av b) t.bags)
      (Query.atoms q)
  in
  (* Running intersection: for each variable, the nodes containing it are
     connected in the forest. *)
  let connected_for x =
    let holds = List.filter (fun i -> Varset.mem x t.bags.(i)) (List.init n Fun.id) in
    match holds with
    | [] -> false
    | start :: _ ->
      let seen = Hashtbl.create 8 in
      let rec dfs v =
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          List.iter
            (fun u -> if Varset.mem x t.bags.(u) then dfs u)
            (neighbours t v)
        end
      in
      dfs start;
      List.for_all (Hashtbl.mem seen) holds
  in
  covered
  && List.for_all connected_for (Varset.to_list (Varset.full (Query.nvars q)))

let is_simple t =
  List.for_all
    (fun (a, b) -> Varset.cardinal (Varset.inter t.bags.(a) t.bags.(b)) <= 1)
    t.edges

let is_totally_disconnected t =
  List.for_all
    (fun (a, b) -> Varset.is_empty (Varset.inter t.bags.(a) t.bags.(b)))
    t.edges

let et t =
  let n = Array.length t.bags in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  (* Root each component at its smallest node; BFS to set parents. *)
  for root = 0 to n - 1 do
    if not seen.(root) then begin
      let queue = Queue.create () in
      Queue.add root queue;
      seen.(root) <- true;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun u ->
            if not seen.(u) then begin
              seen.(u) <- true;
              parent.(u) <- v;
              Queue.add u queue
            end)
          (neighbours t v)
      done
    end
  done;
  Cexpr.sum
    (List.init n (fun v ->
         let x =
           if parent.(v) < 0 then Varset.empty
           else Varset.inter t.bags.(v) t.bags.(parent.(v))
         in
         Cexpr.part t.bags.(v) x))

let et_via_separators t =
  Linexpr.sub
    (Linexpr.sum (Array.to_list (Array.map (fun b -> Linexpr.term b) t.bags)))
    (Linexpr.sum
       (List.map
          (fun (a, b) -> Linexpr.term (Varset.inter t.bags.(a) t.bags.(b)))
          t.edges))

let et_inclusion_exclusion t =
  let n = Array.length t.bags in
  if n > 20 then invalid_arg "Treedec.et_inclusion_exclusion: too many nodes";
  let cc_of nodes =
    (* Connected components of the subgraph induced by the node set. *)
    let seen = Hashtbl.create 8 in
    let components = ref 0 in
    let rec dfs v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        List.iter
          (fun u -> if Varset.mem u nodes then dfs u)
          (neighbours t v)
      end
    in
    Varset.fold_elements
      (fun v () ->
        if not (Hashtbl.mem seen v) then begin
          incr components;
          dfs v
        end)
      nodes ();
    !components
  in
  let acc = ref Linexpr.zero in
  Varset.iter_subsets (Varset.full n) (fun s ->
      if not (Varset.is_empty s) then begin
        let chi =
          Varset.fold_elements
            (fun v inter -> Varset.inter inter t.bags.(v))
            s
            (Varset.fold_elements (fun v _ -> t.bags.(v)) s Varset.empty)
        in
        let union_vars =
          Varset.fold_elements
            (fun v u -> Varset.union u t.bags.(v))
            s Varset.empty
        in
        let touching =
          List.fold_left
            (fun set v ->
              if Varset.is_empty (Varset.inter t.bags.(v) union_vars) then set
              else Varset.add v set)
            Varset.empty
            (List.init n Fun.id)
        in
        let cc = cc_of touching in
        let sign = if Varset.cardinal s land 1 = 1 then 1 else -1 in
        acc :=
          Linexpr.add !acc
            (Linexpr.term ~coeff:(Bagcqc_num.Rat.of_int (sign * cc)) chi)
      end);
  !acc

let prune t =
  let n = Array.length t.bags in
  let alive = Array.make n true in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    t.edges;
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let u =
          List.find_opt
            (fun u -> alive.(u) && u <> v && Varset.subset t.bags.(v) t.bags.(u))
            adj.(v)
        in
        match u with
        | Some u ->
          (* Contract v into u: reattach v's other neighbours to u. *)
          alive.(v) <- false;
          changed := true;
          let others = List.filter (fun w -> w <> u && alive.(w)) adj.(v) in
          List.iter
            (fun w ->
              adj.(u) <- w :: adj.(u);
              adj.(w) <- u :: List.filter (fun x -> x <> v) adj.(w))
            others;
          adj.(u) <- List.filter (fun x -> x <> v) adj.(u);
          adj.(v) <- []
        | None -> ()
      end
    done
  done;
  (* Compact the surviving nodes. *)
  let remap = Array.make n (-1) in
  let new_bags = ref [] in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if alive.(v) then begin
      remap.(v) <- !count;
      incr count;
      new_bags := t.bags.(v) :: !new_bags
    end
  done;
  let new_edges = ref [] in
  for v = 0 to n - 1 do
    if alive.(v) then
      List.iter
        (fun u ->
          if alive.(u) && remap.(u) > remap.(v) then
            new_edges := (remap.(v), remap.(u)) :: !new_edges)
        adj.(v)
  done;
  make
    ~bags:(Array.of_list (List.rev !new_bags))
    ~edges:(List.sort_uniq compare !new_edges)

(* Junction tree: maximum-weight spanning forest of the clique graph,
   weights = separator cardinalities, positive separators only. *)
let junction_tree g =
  if not (Graph.is_chordal g) then None
  else begin
    let cliques = Array.of_list (Graph.maximal_cliques_chordal g) in
    let n = Array.length cliques in
    let candidate_edges = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        let w = Varset.cardinal (Varset.inter cliques.(a) cliques.(b)) in
        if w > 0 then candidate_edges := (w, a, b) :: !candidate_edges
      done
    done;
    let sorted =
      List.sort (fun (w1, _, _) (w2, _, _) -> compare w2 w1) !candidate_edges
    in
    let parent = Array.init n (fun i -> i) in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let edges =
      List.filter_map
        (fun (_, a, b) ->
          let ra = find a and rb = find b in
          if ra = rb then None
          else begin
            parent.(ra) <- rb;
            Some (a, b)
          end)
        sorted
    in
    Some (make ~bags:cliques ~edges)
  end

(* GYO ear removal.  An ear is a hyperedge e for which some other
   hyperedge f contains every vertex of e that also occurs elsewhere. *)
let join_tree q =
  let q = Query.dedup_atoms q in
  let atom_sets = List.map Query.atom_vars (Query.atoms q) in
  (* Merge duplicate variable-sets (two atoms over the same variables are
     interchangeable for the decomposition). *)
  let atom_sets = List.sort_uniq compare atom_sets in
  let bags = Array.of_list atom_sets in
  let n = Array.length bags in
  if n = 0 then Some (make ~bags:[||] ~edges:[])
  else begin
    let alive = Array.make n true in
    let edges = ref [] in
    let occurrence_count x =
      Array.to_list bags
      |> List.mapi (fun i b -> (i, b))
      |> List.filter (fun (i, b) -> alive.(i) && Varset.mem x b)
      |> List.length
    in
    let find_ear () =
      let result = ref None in
      for e = 0 to n - 1 do
        if !result = None && alive.(e) then begin
          (* Vertices of e occurring in other alive edges. *)
          let shared =
            Varset.fold_elements
              (fun x acc ->
                if occurrence_count x > 1 then Varset.add x acc else acc)
              bags.(e) Varset.empty
          in
          (* Find a witness f ⊇ shared. *)
          let witness = ref None in
          for f = 0 to n - 1 do
            if !witness = None && f <> e && alive.(f)
               && Varset.subset shared bags.(f)
            then witness := Some f
          done;
          match !witness with
          | Some f -> result := Some (e, f)
          | None -> ()
        end
      done;
      !result
    in
    let rec reduce () =
      match find_ear () with
      | Some (e, f) ->
        alive.(e) <- false;
        edges := (e, f) :: !edges;
        reduce ()
      | None -> ()
    in
    reduce ();
    (* Acyclic iff within each group of alive edges sharing variables there
       remains exactly one edge: i.e. no two alive edges share a variable,
       AND no alive edge shares a variable with... after exhaustion, any
       two alive hyperedges sharing a vertex witness a cycle. *)
    let alive_idx =
      List.filter (fun i -> alive.(i)) (List.init n Fun.id)
    in
    let cyclic =
      List.exists
        (fun i ->
          List.exists
            (fun j ->
              j <> i && not (Varset.is_empty (Varset.inter bags.(i) bags.(j))))
            alive_idx)
        alive_idx
    in
    if cyclic then None else Some (prune (make ~bags ~edges:!edges))
  end

let is_acyclic q = join_tree q <> None

let of_query q =
  match join_tree q with
  | Some t -> t
  | None ->
    let g = Graph.gaifman q in
    let g = if Graph.is_chordal g then g else Graph.min_fill_triangulation g in
    (match junction_tree g with
     | Some t -> t
     | None ->
       (* [min_fill_triangulation] returns a chordal supergraph by
          construction, and [junction_tree] succeeds on every chordal
          graph; failure here means one of the two is buggy. *)
       Bagcqc_num.Bagcqc_error.invariant ~where:"Treedec.of_query"
         "junction_tree failed on a min-fill triangulated (hence chordal) \
          graph")

let pp fmt t =
  Array.iteri
    (fun i b ->
      if i > 0 then Format.pp_print_string fmt " ";
      Format.fprintf fmt "%d:%a" i (Varset.pp ()) b)
    t.bags;
  Format.pp_print_string fmt " edges:";
  List.iter (fun (a, b) -> Format.fprintf fmt " %d-%d" a b) t.edges
