(** Homomorphism enumeration and counting — the semantics side of the
    paper.

    [hom(Q, D)] is the set of assignments [vars(Q) → dom(D)] mapping every
    atom into the database; its cardinality is the bag-set answer of the
    Boolean query (Section 2.2).  [hom(Q₂, Q₁)] between queries (viewed as
    structures) drives both directions of the paper's main reduction.

    The implementation is a backtracking join that always expands a
    most-constrained atom next (maximal number of already-bound variables,
    then smallest relation).

    When the pool ({!Bagcqc_par.Pool}) is sized above 1, full
    enumerations ([count] without [~limit], [answers], [contained_on])
    partition the root atom's candidate rows across worker domains —
    root selection is deterministic, so the slices partition the search
    space exactly and the parallel results equal the sequential ones. *)

open Bagcqc_relation

val count : ?limit:int -> Query.t -> Database.t -> int
(** Number of homomorphisms from the query's {e body} to the database
    (head variables are ignored; this is [|hom(Q,D)|] for the Boolean
    version of [Q]).  With [~limit], stops early and returns [limit] once
    that many are found — use for existence checks on large instances. *)

val exists : Query.t -> Database.t -> bool

val enumerate : Query.t -> Database.t -> Value.t array list
(** All homomorphisms, each an array indexed by query variable. *)

val answers : Query.t -> Database.t -> (Value.t array * int) list
(** Bag-set semantics (Section 2.2): the function [d ↦ |Q(D)[d]|],
    restricted to its (finite) support, as pairs of head-tuple and
    multiplicity. *)

val contained_on : Query.t -> Query.t -> Database.t -> bool
(** [contained_on q1 q2 d]: does [q1(d) ≤ q2(d)] hold pointwise under
    bag-set semantics on this particular database?  (Used to refute
    containment with explicit witnesses, and in randomized tests.)
    @raise Invalid_argument if head lengths differ. *)

val count_between : Query.t -> Query.t -> int
(** [count_between qa qb] is [|hom(Qa, Qb)|]: homomorphisms from the
    structure of [qa] to the canonical structure of [qb]
    (both queries treated as Boolean). *)

val enumerate_between : Query.t -> Query.t -> int array list
(** The homomorphisms themselves, as variable maps
    [vars(qa) → vars(qb)]. *)
