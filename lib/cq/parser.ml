exception Parse_error of string

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile
  | Period
  | Eof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9') || c = '_' || c = '\''

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !i msg)) in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then begin toks := Lparen :: !toks; incr i end
    else if c = ')' then begin toks := Rparen :: !toks; incr i end
    else if c = ',' then begin toks := Comma :: !toks; incr i end
    else if c = '.' then begin toks := Period :: !toks; incr i end
    else if c = ':' then begin
      if !i + 1 < n && s.[!i + 1] = '-' then begin
        toks := Turnstile :: !toks;
        i := !i + 2
      end
      else fail "expected ':-'"
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      toks := Ident (String.sub s start (!i - start)) :: !toks
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev (Eof :: !toks)

(* Recursive-descent over the token list. *)
let parse input =
  let toks = ref (tokenize input) in
  let peek () = match !toks with t :: _ -> t | [] -> Eof in
  let advance () = match !toks with _ :: r -> toks := r | [] -> () in
  let fail msg = raise (Parse_error msg) in
  let expect t msg =
    if peek () = t then advance () else fail ("expected " ^ msg)
  in
  let vars = Hashtbl.create 16 in
  let var_order = ref [] in
  let var_index name =
    match Hashtbl.find_opt vars name with
    | Some i -> i
    | None ->
      let i = Hashtbl.length vars in
      Hashtbl.add vars name i;
      var_order := name :: !var_order;
      i
  in
  let parse_var_list () =
    (* Inside parens; possibly empty. *)
    if peek () = Rparen then []
    else begin
      let rec loop acc =
        match peek () with
        | Ident v ->
          advance ();
          let acc = var_index v :: acc in
          if peek () = Comma then begin advance (); loop acc end
          else List.rev acc
        | _ -> fail "expected a variable name"
      in
      loop []
    end
  in
  (* Body atoms must have at least one argument (a 0-ary atom constrains
     nothing and [Query.make] requires every variable to occur in the
     body); an empty {e head} is the ordinary Boolean-query syntax. *)
  let parse_atom ~body () =
    match peek () with
    | Ident rel ->
      advance ();
      expect Lparen "'('";
      let args = parse_var_list () in
      expect Rparen "')'";
      if body && args = [] then
        fail (Printf.sprintf "atom %s() has no arguments" rel);
      { Query.rel; args = Array.of_list args }
    | _ -> fail "expected an atom"
  in
  (* Detect an optional head: Ident '(' ... ')' ':-'. *)
  let head =
    let saved = !toks in
    match peek () with
    | Ident _ ->
      (try
         let a = parse_atom ~body:false () in
         if peek () = Turnstile then begin
           advance ();
           Some (Array.to_list a.Query.args)
         end
         else begin
           toks := saved;
           (* Head variables registered speculatively must be forgotten. *)
           Hashtbl.reset vars;
           var_order := [];
           None
         end
       with Parse_error _ ->
         toks := saved;
         Hashtbl.reset vars;
         var_order := [];
         None)
    | _ -> None
  in
  (* Duplicate head variables are legal: [Q(x,x) :- R(x,y)] outputs the
     tuple [(x,x)], a meaningful shape under bag semantics (and the
     round-trip suite pins that down).  Validation of the head against
     the body happens below and in [Query.make]. *)
  let atoms =
    let rec loop acc =
      let a = parse_atom ~body:true () in
      if peek () = Comma then begin
        advance ();
        loop (a :: acc)
      end
      else List.rev (a :: acc)
    in
    (* [true] is the empty body — the form the printer emits for a query
       with no atoms — unless it opens an atom of a relation named
       "true". *)
    match !toks with
    | Ident "true" :: next :: _ when next <> Lparen ->
      advance ();
      []
    | _ -> if peek () = Period || peek () = Eof then [] else loop []
  in
  if peek () = Period then advance ();
  if peek () <> Eof then fail "trailing input after query";
  let nvars = Hashtbl.length vars in
  let names = Array.make nvars "" in
  List.iter (fun name -> names.(Hashtbl.find vars name) <- name) !var_order;
  List.iter
    (fun v ->
      if not (List.exists (fun a -> Array.exists (( = ) v) a.Query.args) atoms)
      then fail "head variable does not occur in the body")
    (Option.value head ~default:[]);
  (* [Query.make] still validates (variable count against [Varset.max_vars],
     consistent arities, …); surface its rejections as parse errors so
     [parse]'s contract — [Parse_error] on any bad input — is accurate. *)
  match Query.make ?head ~nvars ~names atoms with
  | q -> q
  | exception Invalid_argument msg -> fail msg

let parse_result s =
  match parse s with
  | q -> Ok q
  | exception Parse_error msg -> Error msg
  (* Defense in depth: no current path raises [Invalid_argument] out of
     [parse], but this function is the total entry point the CLI and the
     fuzzer rely on — never raise on a string. *)
  | exception Invalid_argument msg -> Error msg
