(** Fixed-size domain pool for the fan-out-shaped hot paths.

    The decision procedures are embarrassingly parallel at three grains:
    deciding a max-inequality solves independent cone LPs, homomorphism
    counting partitions the top-level candidate set, and batch workloads
    decide many instances at once.  This module owns the domains all of
    those share: a single process-global pool of worker domains, spawned
    lazily on the first parallel call, consuming chunked work queues with
    deterministic result ordering.

    {2 Initialization order}

    The pool size is fixed once workers exist.  Configure the process in
    this order:

    + pick the parallelism level — [BAGCQC_JOBS] in the environment, or
      {!set_jobs} (CLI [--jobs]) before the first parallel call;
    + enable/disable observability ({!Bagcqc_obs} — see its docs; the obs
      layer refuses to flip recording inside a parallel region);
    + run parallel work ({!parallel_map} and friends, or the higher-level
      entry points in [Maxii]/[Hom]/[Containment]).

    {!set_jobs} may raise the level between regions (more workers are
    spawned on demand) — it only fails {e inside} a region.  With
    [jobs = 1] nothing is ever spawned and every combinator runs its
    sequential fallback, byte-for-byte the pre-pool code path.

    {2 Memory model}

    Each region establishes a happens-before edge between the caller and
    every chunk (work hand-off and completion both go through the pool
    mutex), so results — and any per-domain instrumentation the chunks
    wrote — are visible to the caller when a combinator returns.  Worker
    domains are parked between regions; an [at_exit] hook shuts them down
    so process exit never races a parked domain. *)

val default_jobs : unit -> int
(** The level used when neither [BAGCQC_JOBS] nor {!set_jobs} spoke:
    [max 1 (Domain.recommended_domain_count () - 1)] — one slot is left
    for the coordinating domain, which also executes chunks. *)

val jobs : unit -> int
(** Current parallelism level (≥ 1).  First call resolves [BAGCQC_JOBS]:
    a positive integer is used as-is; anything else (non-numeric, zero,
    negative) prints a one-line warning on stderr and falls back to
    {!default_jobs}.  An unset variable falls back silently. *)

val set_jobs : int -> unit
(** Override the level (clamped to ≥ 1).  Raising it after workers exist
    spawns more on the next parallel call; lowering it just caps how many
    participate.
    @raise Invalid_argument when called inside a parallel region. *)

val in_parallel_region : unit -> bool
(** True while a region is executing — from the coordinating domain's
    point of view, only ever observed true {e inside} a task (the
    coordinator is otherwise blocked in the combinator).  The obs layer
    and the solver cache use this to guard lifecycle mutations. *)

val inside_task : unit -> bool
(** True on a domain currently executing a pool task (including the
    coordinator while it participates).  Nested parallel combinators
    detect this and run sequentially instead of deadlocking the pool. *)

val started : unit -> bool
(** True once at least one worker domain has been spawned. *)

val parallel_map : ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs], computed by chunking [xs]
    over the pool.  Results are in input order regardless of scheduling.
    If several [f] applications raise, the exception of the
    smallest-indexed chunk is re-raised (with its backtrace), so failure
    is deterministic.  Falls back to [Array.map] when [jobs () = 1], the
    input has fewer than 2 elements, or the caller is itself a pool
    task. *)

val parallel_filter_map : ('a -> 'b option) -> 'a array -> 'b array
(** Chunked [filter_map]; survivors keep input order. *)

val parallel_map_list : ('a -> 'b) -> 'a list -> 'b list
(** List clothing over {!parallel_map}. *)

val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run two thunks as one two-chunk region; sequential fallback is
    [let a = f () in let b = g () in (a, b)]. *)

val quiesce : unit -> unit
(** Block until no parallel region is executing — the drain hook used by
    the [serve] daemon's graceful shutdown.  Quiescence is observed, not
    reserved: stop submitting work before relying on it.
    @raise Invalid_argument when called from inside a pool task (that
    region would be waiting on itself). *)

val shutdown : unit -> unit
(** Stop and join every worker (idempotent; installed via [at_exit]).
    The pool restarts lazily if parallel work arrives afterwards. *)
