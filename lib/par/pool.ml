(* One process-global pool of worker domains behind a chunked work queue.

   A parallel call ("region") publishes a bag of chunk tasks; up to
   jobs−1 parked workers join in, and the calling domain drains chunks
   too, so a level of [jobs] uses exactly [jobs] domains.  All hand-off
   goes through one mutex: chunk indices are taken under it, completions
   are counted under it, and the caller returns only after the last
   completion — which is the happens-before edge that makes every chunk's
   writes (results, per-domain metrics) visible to the caller.

   Determinism: chunks are contiguous index ranges assigned statically,
   each chunk's results land in its own slot, and exception reporting
   picks the smallest failing chunk index.  Scheduling order can vary;
   observable results cannot.

   jobs = 1 never touches any of this machinery: the combinators reduce
   to their sequential bodies and no domain is ever spawned. *)

let mutex = Mutex.create ()
let work_cond = Condition.create () (* workers: tickets available *)
let done_cond = Condition.create () (* caller: region completed *)

type region = {
  run : int -> unit; (* execute chunk i; must not raise *)
  nchunks : int;
  mutable next : int;
  mutable completed : int;
}

let current : region option ref = ref None
let tickets = ref 0
let region_active = ref false
let shutting_down = ref false
let workers : unit Domain.t list ref = ref []
let n_workers = ref 0
let exit_hook_installed = ref false

(* True on a domain while it executes a pool task (workers and the
   participating caller alike): nested combinators check this and run
   sequentially — the pool has exactly one region at a time, so a nested
   region would deadlock against its own caller. *)
let in_task_key = Domain.DLS.new_key (fun () -> ref false)
let inside_task () = !(Domain.DLS.get in_task_key)

(* ---------------- sizing ---------------- *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let env_jobs () =
  match Sys.getenv_opt "BAGCQC_JOBS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> Some n
     | Some _ | None ->
       (* A typo'd level silently running at the machine default is the
          kind of misconfiguration that only shows up as a perf mystery;
          say what happened, once, and fall back. *)
       Printf.eprintf
         "bagcqc: warning: ignoring invalid BAGCQC_JOBS=%S (expected a \
          positive integer); using the default of %d\n%!"
         s (default_jobs ());
       None)
let jobs_level : int option ref = ref None

let jobs () =
  match !jobs_level with
  | Some n -> n
  | None ->
    let n = match env_jobs () with Some n -> n | None -> default_jobs () in
    jobs_level := Some n;
    n

let in_parallel_region () = !region_active

let set_jobs n =
  if !region_active then
    invalid_arg "Pool.set_jobs: cannot resize inside a parallel region";
  jobs_level := Some (max 1 n)

let started () = !n_workers > 0

(* ---------------- workers ---------------- *)

let run_chunk r i =
  let flag = Domain.DLS.get in_task_key in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) (fun () -> r.run i)

(* Drain chunks of [r] until none are left.  Called with [mutex] held;
   returns with it held. *)
let drain r =
  while r.next < r.nchunks do
    let i = r.next in
    r.next <- r.next + 1;
    Mutex.unlock mutex;
    run_chunk r i;
    Mutex.lock mutex;
    r.completed <- r.completed + 1;
    if r.completed = r.nchunks then Condition.broadcast done_cond
  done

let worker_body () =
  Mutex.lock mutex;
  let continue = ref true in
  while !continue do
    if !shutting_down then continue := false
    else if !tickets > 0 then begin
      decr tickets;
      match !current with
      | Some r -> drain r
      | None -> () (* stale ticket from an already-finished region *)
    end
    else Condition.wait work_cond mutex
  done;
  Mutex.unlock mutex

(* Called with [mutex] held. *)
let ensure_workers want =
  while !n_workers < want && not !shutting_down do
    incr n_workers;
    workers := Domain.spawn worker_body :: !workers;
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit (fun () ->
          Mutex.lock mutex;
          shutting_down := true;
          Condition.broadcast work_cond;
          let ws = !workers in
          workers := [];
          n_workers := 0;
          Mutex.unlock mutex;
          List.iter Domain.join ws)
    end
  done

let shutdown () =
  Mutex.lock mutex;
  if !region_active then begin
    Mutex.unlock mutex;
    invalid_arg "Pool.shutdown: cannot shut down inside a parallel region"
  end;
  shutting_down := true;
  Condition.broadcast work_cond;
  let ws = !workers in
  workers := [];
  n_workers := 0;
  Mutex.unlock mutex;
  List.iter Domain.join ws;
  (* Allow a later parallel call to restart the pool. *)
  Mutex.lock mutex;
  shutting_down := false;
  Mutex.unlock mutex

(* ---------------- regions ---------------- *)

(* Execute [nchunks] calls of [run] across the pool.  [run] must not
   raise (combinators wrap their chunk bodies to capture exceptions). *)
let run_region ~nchunks run =
  let j = jobs () in
  Mutex.lock mutex;
  region_active := true;
  let r = { run; nchunks; next = 0; completed = 0 } in
  current := Some r;
  let helpers = min (j - 1) nchunks in
  ensure_workers helpers;
  tickets := min helpers !n_workers;
  if !tickets > 0 then Condition.broadcast work_cond;
  drain r;
  while r.completed < r.nchunks do
    Condition.wait done_cond mutex
  done;
  current := None;
  tickets := 0;
  region_active := false;
  (* Wake [quiesce] waiters: the completion broadcast above fired while
     [region_active] was still true, so a drain hook that woke on it
     would otherwise go back to sleep with nobody left to signal. *)
  Condition.broadcast done_cond;
  Mutex.unlock mutex

(* Deterministic failure: re-raise the exception of the smallest failing
   chunk, with the backtrace captured where it was thrown. *)
let reraise_first errors =
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors

let run_tasks tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let errors = Array.make n None in
    run_region ~nchunks:n (fun i ->
        try tasks.(i) ()
        with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
    reraise_first errors
  end

(* Contiguous chunk ranges: a few chunks per participant evens out
   imbalanced chunk costs without starving the queue. *)
let chunks_per_job = 4

let chunk_ranges n j =
  let nchunks = min n (max 1 (j * chunks_per_job)) in
  Array.init nchunks (fun i ->
      let lo = i * n / nchunks and hi = (i + 1) * n / nchunks in
      (lo, hi))

let sequential () = jobs () <= 1 || inside_task ()

let map_range f xs lo hi =
  let rec go k acc =
    if k >= hi then Array.of_list (List.rev acc) else go (k + 1) (f xs.(k) :: acc)
  in
  go lo []

let parallel_map f xs =
  let n = Array.length xs in
  if n <= 1 || sequential () then Array.map f xs
  else begin
    let ranges = chunk_ranges n (jobs ()) in
    let nchunks = Array.length ranges in
    let slots = Array.make nchunks [||] in
    let errors = Array.make nchunks None in
    run_region ~nchunks (fun i ->
        let lo, hi = ranges.(i) in
        try slots.(i) <- map_range f xs lo hi
        with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
    reraise_first errors;
    Array.concat (Array.to_list slots)
  end

let filter_map_range f xs lo hi =
  let rec go k acc =
    if k >= hi then Array.of_list (List.rev acc)
    else
      match f xs.(k) with
      | Some y -> go (k + 1) (y :: acc)
      | None -> go (k + 1) acc
  in
  go lo []

let parallel_filter_map f xs =
  let n = Array.length xs in
  if n <= 1 || sequential () then filter_map_range f xs 0 n
  else begin
    let ranges = chunk_ranges n (jobs ()) in
    let nchunks = Array.length ranges in
    let slots = Array.make nchunks [||] in
    let errors = Array.make nchunks None in
    run_region ~nchunks (fun i ->
        let lo, hi = ranges.(i) in
        try slots.(i) <- filter_map_range f xs lo hi
        with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
    reraise_first errors;
    Array.concat (Array.to_list slots)
  end

let parallel_map_list f l = Array.to_list (parallel_map f (Array.of_list l))

(* Drain hook for long-running hosts (the serve daemon's graceful
   shutdown): block until no region is executing.  Quiescence is
   observed, not reserved — a caller that wants the pool to *stay* idle
   must stop feeding it work first (the server stops its dispatcher
   before calling this). *)
let quiesce () =
  if inside_task () then
    invalid_arg "Pool.quiesce: cannot wait for the pool from inside a task";
  Mutex.lock mutex;
  while !region_active do
    Condition.wait done_cond mutex
  done;
  Mutex.unlock mutex

let both f g =
  if sequential () then begin
    let a = f () in
    let b = g () in
    (a, b)
  end
  else begin
    let ra = ref None and rb = ref None in
    run_tasks [| (fun () -> ra := Some (f ())); (fun () -> rb := Some (g ())) |];
    match (!ra, !rb) with
    | Some a, Some b -> (a, b)
    | _ -> assert false (* run_tasks re-raises before we get here *)
  end
