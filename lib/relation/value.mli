(** Domain values for relations and databases.

    The paper's constructions manufacture structured constants:
    annotated values [("X", c)] in the proof of Theorem 4.4, concatenated
    values [uv] in normal relations (Definition 3.3), and pairs in the
    domain product [P₁ ⊗ P₂] (Definition B.1).  A small recursive value
    type covers them all with a total order, so relations can be stored in
    balanced trees. *)

type t =
  | Int of int
  | Str of string
  | Pair of t * t        (** domain product [f ⊗ g] *)
  | Tag of string * t    (** annotation [("X", c)] from Theorem 4.4 *)
  | Tuple of t list      (** concatenation [ψ·f] from Definition 3.3 *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
(** Structural hash, always non-negative, consistent with {!equal}.
    Constructor-tagged FNV-style mixing: swapping the annotation order of
    nested [Tag]s (or the components of a [Pair]) changes the hash. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
