type t =
  | Int of int
  | Str of string
  | Pair of t * t
  | Tag of string * t
  | Tuple of t list

let rec compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> Stdlib.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | Tag (s1, v1), Tag (s2, v2) ->
    let c = Stdlib.compare s1 s2 in
    if c <> 0 then c else compare v1 v2
  | Tag _, _ -> -1
  | _, Tag _ -> 1
  | Tuple l1, Tuple l2 -> compare_list l1 l2

and compare_list l1 l2 =
  match l1, l2 with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: r1, y :: r2 ->
    let c = compare x y in
    if c <> 0 then c else compare_list r1 r2

let equal a b = compare a b = 0

(* FNV-1a-style mixing, the same scheme as [Bagcqc_engine.Problem]'s
   hasher.  Each constructor contributes a tag before its payload, so
   structurally different nestings mix different sequences — the previous
   additive scheme was symmetric enough that [Tag ("a", Tag ("b", v))]
   and [Tag ("b", Tag ("a", v))] always collided — and the final
   [land max_int] keeps the result non-negative after multiplication
   overflow. *)
let hash v =
  let mix h x = (h * 16777619) lxor x in
  let rec go h = function
    | Int x -> mix (mix h 1) x
    | Str s -> mix (mix h 2) (Hashtbl.hash s)
    | Pair (a, b) -> go (go (mix h 3) a) b
    | Tag (s, v) -> go (mix (mix h 4) (Hashtbl.hash s)) v
    | Tuple l -> List.fold_left go (mix (mix h 5) (List.length l)) l
  in
  go 0x811c9dc5 v land max_int

let rec pp fmt = function
  | Int x -> Format.pp_print_int fmt x
  | Str s -> Format.pp_print_string fmt s
  | Pair (a, b) -> Format.fprintf fmt "(%a,%a)" pp a pp b
  | Tag (s, v) -> Format.fprintf fmt "%s:%a" s pp v
  | Tuple l ->
    Format.pp_print_char fmt '<';
    List.iteri
      (fun i v ->
        if i > 0 then Format.pp_print_char fmt ',';
        pp fmt v)
      l;
    Format.pp_print_char fmt '>'

let to_string v = Format.asprintf "%a" pp v
