(** Shared LP ingestion for the solvers of this library.

    {!Simplex} (exact dense/sparse), {!Fsimplex} (floating-point basis
    proposer) and {!Repair} (exact basis repair) all normalize problems
    through this one module, so a simplex {e basis} — an array mapping
    each row to the column basic in it — means exactly the same thing to
    all of them.  The column layout contract:

    - columns [0, num_vars) are the structural variables;
    - then one slack/surplus column per inequality row ([Le]: +1 slack,
      [Ge]: −1 surplus), assigned in row order;
    - then, starting at [art_start], one artificial column per [Ge]/[Eq]
      row, in row order;
    - rows are flipped to a non-negative right-hand side before columns
      are assigned ([Le] ↔ [Ge] under negation).

    Callers outside [lib/lp] should use the re-exports in {!Simplex};
    this interface exists for the solver implementations. *)

open Bagcqc_num

type op = Le | Ge | Eq

val pivot_count : unit -> int
(** Per-domain pivot odometer shared by every solver; see
    {!Simplex.pivot_count} for the public contract. *)

val note_pivot : unit -> unit

type constr = {
  cols : int array;  (** strictly increasing column indices *)
  vals : Rat.t array;  (** matching nonzero coefficients *)
  width : int;  (** declared dense width, [-1] if built sparsely *)
  op : op;
  rhs : Rat.t;
}

type problem = {
  num_vars : int;
  objective : Rat.t array;  (** objective to {b minimize} *)
  constraints : constr list;
}

val constr : Rat.t array -> op -> Rat.t -> constr
(** Dense row; zero coefficients are dropped on ingestion. *)

val sparse_constr : (int * Rat.t) list -> op -> Rat.t -> constr
(** Sparse row as [(column, coefficient)] pairs in any order.
    @raise Invalid_argument on a negative or duplicated column. *)

val validate : problem -> unit
(** @raise Invalid_argument if a dense row length differs from
    [num_vars] or a sparse row mentions a column [>= num_vars]. *)

type layout = {
  m : int;  (** number of rows *)
  ncols : int;  (** structural + slack + artificial columns *)
  art_start : int;  (** first artificial column *)
  num_art : int;
  rows_data : (int array * Rat.t array * op * Rat.t) array;
      (** per row: sparse structural coefficients, op, rhs ([rhs >= 0]) *)
}

val layout_of : problem -> layout

val columns : layout -> num_vars:int -> (int * Rat.t) list array
(** Sparse column view of the full constraint matrix (structural, slack
    and artificial columns), indexed by column per the layout contract.
    Used by the repair step's reduced-cost checks. *)
