(* Shared LP ingestion: the problem representation and the normalized
   row/column layout used by every solver in this library — the exact
   dense and sparse simplex engines in {!Simplex}, the floating-point
   basis proposer {!Fsimplex}, and the exact basis repair {!Repair}.

   Keeping ingestion in one place is load-bearing for the hybrid
   (float-first) pipeline: a basis is communicated between the float and
   exact worlds as an array of {e column indices}, so both sides must
   agree exactly on what each column index means.  The layout contract:

   - columns [0, num_vars) are the structural variables;
   - then one slack/surplus column per inequality row ([Le]: +1 slack,
     [Ge]: -1 surplus), assigned in row order;
   - then, starting at [art_start], one artificial column per [Ge]/[Eq]
     row, assigned in row order;
   - every row is flipped to a non-negative right-hand side before any
     column is assigned ([Le] becomes [Ge] and vice versa). *)

open Bagcqc_num

type op = Le | Ge | Eq

(* Per-domain pivot odometer, shared by every solver (exact dense/sparse
   and the float proposer): bumped once per Gaussian pivot.  Callers read
   it as a delta around a solve, which only stays exact if no other
   domain's pivots leak into the window — hence one cell per domain
   rather than one shared counter.  Lives here (not in Simplex) so
   {!Fsimplex} can feed the same odometer without a dependency cycle. *)
let pivots_key = Domain.DLS.new_key (fun () -> ref 0)
let pivot_count () = !(Domain.DLS.get pivots_key)
let note_pivot () = incr (Domain.DLS.get pivots_key)

(* Constraints are stored sparsely: parallel arrays of strictly increasing
   column indices and their (nonzero) coefficients.  [width] remembers the
   declared row length for constraints built from dense arrays ([-1] for
   natively sparse ones), so [validate] can reproduce the historical
   dimension check. *)
type constr = {
  cols : int array;
  vals : Rat.t array;
  width : int;
  op : op;
  rhs : Rat.t;
}

type problem = {
  num_vars : int;
  objective : Rat.t array;
  constraints : constr list;
}

let constr coeffs op rhs =
  let nnz = Array.fold_left (fun n c -> if Rat.is_zero c then n else n + 1) 0 coeffs in
  let cols = Array.make nnz 0 and vals = Array.make nnz Rat.zero in
  let k = ref 0 in
  Array.iteri
    (fun j c ->
      if not (Rat.is_zero c) then begin
        cols.(!k) <- j;
        vals.(!k) <- c;
        incr k
      end)
    coeffs;
  { cols; vals; width = Array.length coeffs; op; rhs }

let sparse_constr pairs op rhs =
  let pairs =
    List.filter (fun (_, c) -> not (Rat.is_zero c)) pairs
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let n = List.length pairs in
  let cols = Array.make n 0 and vals = Array.make n Rat.zero in
  List.iteri
    (fun k (j, c) ->
      if j < 0 then invalid_arg "Simplex.sparse_constr: negative column";
      if k > 0 && cols.(k - 1) = j then
        invalid_arg "Simplex.sparse_constr: duplicate column";
      cols.(k) <- j;
      vals.(k) <- c)
    pairs;
  { cols; vals; width = -1; op; rhs }

let validate { num_vars; objective; constraints } =
  if Array.length objective <> num_vars then
    invalid_arg "Simplex.solve: objective length mismatch";
  List.iter
    (fun c ->
      if c.width >= 0 then begin
        if c.width <> num_vars then
          invalid_arg "Simplex.solve: constraint length mismatch"
      end
      else if Array.length c.cols > 0 && c.cols.(Array.length c.cols - 1) >= num_vars
      then invalid_arg "Simplex.solve: constraint column out of range")
    constraints

(* Normalized ingestion shared by all solvers: flip rows to non-negative
   rhs and compute the column layout — [0, num_vars) structural, then one
   slack/surplus column per inequality, then one artificial column per
   Ge/Eq row. *)
type layout = {
  m : int;
  ncols : int;
  art_start : int;
  num_art : int;
  (* per row: sparse structural coefficients, op, rhs (rhs >= 0) *)
  rows_data : (int array * Rat.t array * op * Rat.t) array;
}

let layout_of { num_vars; constraints; _ } =
  let rows_data =
    Array.of_list constraints
    |> Array.map (fun { cols; vals; op; rhs; _ } ->
           if Rat.sign rhs < 0 then
             ( cols,
               Array.map Rat.neg vals,
               (match op with Le -> Ge | Ge -> Le | Eq -> Eq),
               Rat.neg rhs )
           else (cols, Array.copy vals, op, rhs))
  in
  let m = Array.length rows_data in
  let num_slack =
    Array.fold_left
      (fun acc (_, _, op, _) -> match op with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows_data
  in
  let num_art =
    Array.fold_left
      (fun acc (_, _, op, _) -> match op with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows_data
  in
  let ncols = num_vars + num_slack + num_art in
  { m; ncols; art_start = num_vars + num_slack; num_art; rows_data }

(* Sparse column view of the full constraint matrix (structural, slack
   and artificial columns), for the repair step's reduced-cost checks.
   [columns lay ~num_vars] is an array of [(row, coeff)] lists indexed by
   column, following the layout contract above. *)
let columns { m = _; ncols; art_start; rows_data; _ } ~num_vars =
  let cols : (int * Rat.t) list array = Array.make ncols [] in
  let next_slack = ref num_vars and next_art = ref art_start in
  Array.iteri
    (fun i (cs, vs, op, _rhs) ->
      Array.iteri (fun k j -> cols.(j) <- (i, vs.(k)) :: cols.(j)) cs;
      match op with
      | Le ->
        cols.(!next_slack) <- [ (i, Rat.one) ];
        incr next_slack
      | Ge ->
        cols.(!next_slack) <- [ (i, Rat.minus_one) ];
        incr next_slack;
        cols.(!next_art) <- [ (i, Rat.one) ];
        incr next_art
      | Eq ->
        cols.(!next_art) <- [ (i, Rat.one) ];
        incr next_art)
    rows_data;
  cols
