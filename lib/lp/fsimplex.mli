(** Floating-point simplex proposing a basis for exact repair.

    The "float" half of the hybrid LP pipeline (DESIGN.md §4f): runs the
    same two-phase primal simplex as the exact engines — same
    {!Lp_layout} column layout, same pricing and ratio rules — over
    machine floats with tolerance-based comparisons, and returns only a
    {e basis proposal}.  {!Repair} reconstructs the exact rational
    solution for that basis and verifies it; this module therefore
    affects performance and the fallback rate, never correctness. *)

type proposal =
  | Optimal_basis of int array
      (** Phase-2 terminated optimal; [basis.(r)] is the column basic in
          row [r] of the proposed optimal basis. *)
  | Infeasible_basis of int array
      (** Phase-1 terminated with a clearly positive artificial sum; the
          phase-1 basis supports an exact dual infeasibility proof. *)
  | Unbounded_direction
      (** Phase 2 found no blocking row.  Unboundedness is not repaired
          (there is no finite basis to certify); callers fall back to the
          exact engine. *)

val propose :
  ?warm:int array ->
  Lp_layout.problem -> Lp_layout.layout -> (proposal, Bagcqc_num.Bagcqc_error.t) result
(** [propose p (Lp_layout.layout_of p)] runs the float simplex.

    [?warm] is a basis (column indices) from a previous solve of a
    related problem under the {e same column layout} (e.g. the previous
    round of a cutting-plane loop, whose old rows kept their structural
    and slack columns).  Before phase 1 each warm column is crashed into
    the basis by a guided minimum-ratio pivot, which preserves phase-1
    feasibility; unusable hints are skipped.  Warm-starting affects only
    how many pivots the search needs — never which verdict is proposed,
    and {!Repair} re-verifies whatever basis comes out.

    Returns [Error] with kind [Overflow] — never a silent NaN/inf
    propagated into pricing — when float arithmetic fails: a coefficient
    of [p] overflows to infinity on lowering ([Rat.to_float] of a huge
    rational), a pivot produces a non-finite tableau entry, or the pivot
    budget is exhausted (tolerance-masked cycling).  Callers treat any
    [Error] as "fall back to the exact engine". *)

val propose_point :
  ?warm:int array ->
  Lp_layout.problem -> Lp_layout.layout ->
  (proposal * float array option, Bagcqc_num.Bagcqc_error.t) result
(** {!propose} that additionally returns, for [Optimal_basis], the float
    primal values of the structural variables at the proposed vertex
    ([None] otherwise).  The point is {e heuristic} data — a
    cutting-plane loop reads it to pick the next cuts without paying for
    an exact repair — and never a verdict: tolerances make it at best an
    approximately feasible, approximately optimal point. *)
