(** Exact linear programming over rationals.

    Two-phase primal simplex with Bland's anti-cycling fallback, computing
    over {!Bagcqc_num.Rat} so every answer is exact — the decidability
    results of the paper (Theorem 3.1, Theorem 3.6) reduce validity of
    (max-)information inequalities to LPs over the polyhedral cones Γn,
    Nn, Mn, and a floating-point solver could misclassify inequalities
    that hold with slack 0 (most interesting ones do).

    Two interchangeable engines are provided.  {!Sparse} (the default)
    ingests constraints as [(column, coefficient)] pairs, pivots only over
    the nonzero columns of the pivot row, and finds entering columns by
    block partial pricing — built for the entropic LPs of this project,
    whose elemental rows have at most 4 nonzeros.  {!Dense} is the
    original straightforward tableau implementation, kept as a reference
    oracle; the test suite checks the two agree on randomized problems.

    All variables are implicitly constrained to be non-negative; callers
    model free variables by splitting into differences (none of the cones
    used in this project need that). *)

open Bagcqc_num

type op = Le | Ge | Eq

type constr
(** One linear constraint [row · x op rhs].  Stored sparsely regardless of
    how it was built. *)

type problem = {
  num_vars : int;
  (** Objective to {b minimize}. *)
  objective : Rat.t array;
  constraints : constr list;
}

type outcome =
  | Optimal of Rat.t * Rat.t array  (** optimal value and a primal solution *)
  | Unbounded
  | Infeasible

val constr : Rat.t array -> op -> Rat.t -> constr
(** Dense row of length [num_vars]; zero coefficients are dropped on
    ingestion. *)

val sparse_constr : (int * Rat.t) list -> op -> Rat.t -> constr
(** Sparse row as [(column, coefficient)] pairs in any order; columns not
    mentioned are zero.
    @raise Invalid_argument on a negative or duplicated column. *)

type engine = Dense | Sparse

val default_engine : engine ref
(** Engine used when {!solve}, {!feasible} or {!maximize} is called without
    an explicit [?engine].  Defaults to [Sparse].

    {b Mutation discipline (test/bench only).}  This global exists solely
    so the benchmark harness and the dense/sparse agreement tests can run
    the same call tree under both engines.  Library code must never write
    to it: a library caller that flips the engine mid-pipeline silently
    changes the behaviour of every other caller in the process
    (action-at-a-distance).  Production callers that need a specific
    engine pass [?engine] explicitly; anything that does flip this ref
    must restore the previous value with [Fun.protect]. *)

type mode = Exact | Float_first

val mode_name : mode -> string
(** ["exact"] / ["float_first"] — the spellings accepted by
    {!mode_of_string}, [BAGCQC_LP] and the [--lp-engine] CLI flag. *)

val mode_of_string : string -> mode option

val default_mode : mode ref
(** Solving strategy used when {!solve}, {!feasible} or {!maximize} is
    called without an explicit [?mode].  Initialized from the
    [BAGCQC_LP] environment variable ([exact] or [float_first]; an
    invalid value is reported on stderr and ignored); defaults to
    [Float_first].

    [Exact] runs today's exact simplex unchanged.  [Float_first] runs
    the hybrid pipeline (DESIGN.md §4f): {!Fsimplex} proposes a basis in
    machine floats, {!Repair} reconstructs the exact rational solution
    and dual multipliers for that basis and verifies them exactly, and
    any failure falls back to the exact engine — so both modes return
    exact, certified outcomes; [Float_first] only changes which (equally
    optimal) vertex may be reported and how fast the answer arrives.

    Same mutation discipline as {!default_engine}: the CLI entry points
    and the test/bench harnesses may set it once at startup or around a
    measured region ([Fun.protect]); library code must pass [?mode]
    instead of writing here. *)

val solve : ?engine:engine -> ?mode:mode -> problem -> outcome
(** Solves with [engine] (default [!default_engine]) under [mode]
    (default [!default_mode]).
    @raise Invalid_argument if a dense row length differs from [num_vars]
    or a sparse row mentions a column [>= num_vars]. *)

val solve_warm :
  ?engine:engine -> ?mode:mode -> ?warm:int array -> problem ->
  outcome * int array option
(** {!solve} extended for cutting-plane loops: [?warm] is the basis
    returned by a previous [solve_warm] on a related problem sharing
    the column layout of its common rows (see {!Fsimplex.propose}), and
    the returned basis is the one the hybrid pipeline accepted after
    exact repair ([None] on an exact-engine fallback).  Under [Exact]
    mode the hint is ignored and no basis is returned — the exact
    engines expose none; verdicts are identical to {!solve} in both
    modes. *)

type float_outcome =
  | Float_optimal of float array * int array
      (** Float primal values of the structural variables at the proposed
          vertex, and the basis (feed it back as [?warm]). *)
  | Float_infeasible of int array
      (** Phase 1 saw a clearly positive artificial sum; the basis is
          returned for warm reuse. *)
  | Float_unknown  (** Unbounded direction or numerical failure. *)

val solve_float : ?warm:int array -> problem -> float_outcome
(** The floating-point half of the hybrid pipeline alone — no exact
    repair, no fallback, {e never a verdict}.  A cutting-plane loop runs
    its intermediate rounds on this: the returned point only steers
    which cuts are added next, so tolerance noise costs extra rounds,
    never soundness; the loop's terminal rounds must re-derive their
    verdicts exactly ({!solve} / a Farkas certificate).  Ignores
    [!default_mode] by design — callers opt into float arithmetic
    explicitly and locally. *)

val solve_with : engine -> problem -> outcome
(** [solve_with e p = solve ~engine:e ~mode:Exact p]: always the exact
    engine, bypassing [!default_mode] — kept for the cross-check tests,
    where [e] is the oracle under test. *)

val solve_result :
  ?engine:engine -> ?mode:mode -> problem -> (outcome, Bagcqc_error.t) result
(** {!solve} with internal invariant violations (a pivoting bug making a
    bounded phase-1 objective look unbounded, …) reified as a typed
    [Error] instead of an exception.  Caller-precondition violations
    still raise [Invalid_argument]. *)

val feasible :
  ?engine:engine -> ?mode:mode -> num_vars:int -> constr list -> Rat.t array option
(** [feasible ~num_vars cs] is a point of the polyhedron
    [{x >= 0 | cs}] if one exists. *)

val maximize : ?engine:engine -> ?mode:mode -> problem -> outcome
(** Same problem record, but the objective is maximized.  The reported
    optimal value is the maximum. *)

val pivot_count : unit -> int
(** Monotonically increasing count of Gaussian pivots performed by either
    engine {e on the calling domain} since that domain started.
    Instrumentation reads deltas around a solve; the odometer is
    per-domain ([Domain.DLS]) and never reset, so a delta window is never
    polluted by another domain's pivots. *)
