(** Exact repair of a float-proposed simplex basis.

    The "exact" half of the hybrid LP pipeline (DESIGN.md §4f): given a
    basis proposed by {!Fsimplex}, reconstruct the exact rational basic
    solution [x_B = B⁻¹b] and dual multipliers [y = B⁻ᵀc_B] (one
    Gaussian solve each, no pivoting) and accept the proposed verdict
    only if it verifies in exact arithmetic:

    - an optimal basis must have [x_B ≥ 0], every basic artificial at 0,
      and all nonbasic reduced costs [c_j − y·A_j ≥ 0] — then the value
      and point returned are the exact optimum, with [y] the optimality
      proof;
    - an infeasible (phase-1) basis must yield a [y] that is
      dual-feasible for the phase-1 LP over every column with [y·b > 0]
      — an exact Farkas certificate of infeasibility.

    No tolerances: every comparison is on [Rat].  A rejected repair
    costs the caller one exact fallback solve, never a wrong answer. *)

open Bagcqc_num

type verdict =
  | Repaired_optimal of Rat.t * Rat.t array
      (** exact optimal value and structural solution, interchangeable
          with an exact engine's [Optimal] *)
  | Repaired_infeasible
  | Rejected of string
      (** stable reason tag for the fallback taxonomy: ["unbounded"],
          ["bad_basis"], ["singular_basis"], ["infeasible_point"],
          ["artificial_nonzero"], ["dual_infeasible"],
          ["not_infeasible"] *)

val repair :
  Lp_layout.problem -> Lp_layout.layout -> Fsimplex.proposal -> verdict
(** [repair p (Lp_layout.layout_of p) proposal] — the layout must be the
    one the proposal's basis indices refer to. *)
