(* Floating-point two-phase simplex: the "float-first" half of the hybrid
   LP pipeline (DESIGN.md §4f).

   This solver never answers a query by itself.  It runs the same
   two-phase primal simplex as the exact engines — same column layout
   (via {!Lp_layout}), same Dantzig-with-Bland-fallback pricing, same
   minimum-ratio leaving rule with smallest-basis-column tie-break — but
   over machine floats with tolerance-based comparisons, and returns only
   the final {e basis} (an array of column indices).  {!Repair} then
   reconstructs the exact rational solution and dual multipliers for that
   basis and accepts the verdict only if it verifies exactly; anything
   this module gets wrong costs a fallback to the exact engine, never a
   wrong answer.

   Total-error discipline: floats fail in ways exact rationals cannot —
   overflow to [infinity] on ingestion of huge rationals, NaN out of
   inf/inf pivots, and cycling that Bland's rule cannot see through
   tolerances.  All three surface as a typed {!Bagcqc_error} with kind
   [Overflow] (never a NaN silently poisoning the pricing loop, which
   would make every comparison false and stall the solve): coefficients
   are checked finite on ingestion, the touched rows are re-checked after
   every pivot, and a pivot-count cap bounds the search. *)

open Bagcqc_num

type proposal =
  | Optimal_basis of int array
  | Infeasible_basis of int array
  | Unbounded_direction

let where = "Fsimplex.propose"

(* An entering reduced cost must clear [eps_price] to be considered
   negative, a pivot element must clear [eps_pivot] to be usable, and the
   phase-1 objective must exceed [eps_feas] for the float solver to claim
   infeasibility.  The values are conventional simplex tolerances; they
   affect only which basis gets proposed (and hence the fallback rate),
   never the final verdict. *)
let eps_price = 1e-9
let eps_pivot = 1e-9
let eps_feas = 1e-7

let degenerate_limit = 60

exception Numerical of string
exception Infeasible_at of int array

let check_finite_row ~what row =
  let n = Array.length row in
  for j = 0 to n - 1 do
    let v = Array.unsafe_get row j in
    if v <> v || v = infinity || v = neg_infinity then
      raise (Numerical (Printf.sprintf "non-finite %s entry" what))
  done

let pivot rows obj basis ~ncols r c =
  Lp_layout.note_pivot ();
  let row = rows.(r) in
  let p = row.(c) in
  let inv_p = 1.0 /. p in
  for j = 0 to ncols do
    row.(j) <- row.(j) *. inv_p
  done;
  let eliminate target =
    let f = target.(c) in
    if f <> 0.0 then begin
      for j = 0 to ncols do
        target.(j) <- target.(j) -. (f *. row.(j))
      done;
      (* Clamp the pivot column exactly: the algebraic value is 0, and
         leaving the rounding residue in place would let later ratio
         tests divide by it. *)
      target.(c) <- 0.0
    end
  in
  for i = 0 to Array.length rows - 1 do
    if i <> r then eliminate rows.(i)
  done;
  eliminate obj;
  row.(c) <- 1.0;
  basis.(r) <- c;
  check_finite_row ~what:"pivot-row" row;
  check_finite_row ~what:"objective" obj;
  (* The right-hand sides feed every subsequent ratio test: a NaN there
     would silently disable rows (every comparison false) instead of
     failing, so check the whole column, not just the pivot row. *)
  for i = 0 to Array.length rows - 1 do
    let v = rows.(i).(ncols) in
    if v <> v || v = infinity || v = neg_infinity then
      raise (Numerical "non-finite right-hand side entry")
  done

let run_phase rows obj basis ~ncols ~allowed ~budget =
  let m = Array.length rows in
  let bland = ref false in
  let degenerate_run = ref 0 in
  let rec iterate () =
    if !budget <= 0 then raise (Numerical "pivot budget exhausted");
    let entering = ref (-1) in
    if !bland then begin
      (try
         for j = 0 to ncols - 1 do
           if allowed j && obj.(j) < -.eps_price then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ())
    end
    else begin
      let best = ref (-.eps_price) in
      for j = 0 to ncols - 1 do
        if allowed j && obj.(j) < !best then begin
          best := obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let c = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref 0.0 in
      for i = 0 to m - 1 do
        let a = rows.(i).(c) in
        if a > eps_pivot then begin
          let ratio = rows.(i).(ncols) /. a in
          if !best_row < 0
             || ratio < !best_ratio
             || (ratio = !best_ratio && basis.(i) < basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        if !best_ratio <= eps_pivot then begin
          incr degenerate_run;
          if !degenerate_run > degenerate_limit then bland := true
        end
        else degenerate_run := 0;
        decr budget;
        pivot rows obj basis ~ncols !best_row c;
        iterate ()
      end
    end
  in
  iterate ()

(* Warm-start crash: before phase 1, try to pivot each remembered basis
   column into the basis with a {e guided} primal pivot — entering
   column fixed, leaving row by the usual minimum-ratio rule.  Min-ratio
   preserves the phase-1 invariant (all right-hand sides ≥ 0), so this
   only relocates the starting vertex closer to the previous optimum;
   arbitrary crash pivoting would break phase-1 feasibility.  Columns
   with no usable pivot element are skipped, and every crash pivot draws
   on the same budget as the solve proper, so a useless hint degrades
   into at worst a slightly shorter search, never a hang. *)
let crash_warm rows basis ~ncols ~art_start ~budget warm =
  let m = Array.length rows in
  let scratch_obj = Array.make (ncols + 1) 0.0 in
  let in_basis = Array.make (ncols + 1) false in
  Array.iter (fun c -> if c >= 0 && c <= ncols then in_basis.(c) <- true) basis;
  Array.iter
    (fun c ->
      if c >= 0 && c < art_start && not in_basis.(c) && !budget > 1 then begin
        let best_row = ref (-1) and best_ratio = ref 0.0 in
        for i = 0 to m - 1 do
          let a = rows.(i).(c) in
          if a > eps_pivot then begin
            let ratio = rows.(i).(ncols) /. a in
            if !best_row < 0 || ratio < !best_ratio
               || (ratio = !best_ratio
                   (* Prefer evicting an artificial over a structural/
                      slack column the hint may still want basic. *)
                   && basis.(i) >= art_start && basis.(!best_row) < art_start)
            then begin
              best_row := i;
              best_ratio := ratio
            end
          end
        done;
        if !best_row >= 0 then begin
          decr budget;
          in_basis.(basis.(!best_row)) <- false;
          in_basis.(c) <- true;
          pivot rows scratch_obj basis ~ncols !best_row c
        end
      end)
    warm

let propose_point ?warm p (lay : Lp_layout.layout) =
  Bagcqc_error.protect @@ fun () ->
  let { Lp_layout.m; ncols; art_start; num_art; rows_data } = lay in
  try
    let rows = Array.init m (fun _ -> Array.make (ncols + 1) 0.0) in
    let basis = Array.make m (-1) in
    let next_slack = ref p.Lp_layout.num_vars and next_art = ref art_start in
    Array.iteri
      (fun i (cols, vals, op, rhs) ->
        Array.iteri
          (fun k j -> rows.(i).(j) <- Rat.to_float vals.(k))
          cols;
        rows.(i).(ncols) <- Rat.to_float rhs;
        (match op with
         | Lp_layout.Le ->
           rows.(i).(!next_slack) <- 1.0;
           basis.(i) <- !next_slack;
           incr next_slack
         | Lp_layout.Ge ->
           rows.(i).(!next_slack) <- -1.0;
           incr next_slack;
           rows.(i).(!next_art) <- 1.0;
           basis.(i) <- !next_art;
           incr next_art
         | Lp_layout.Eq ->
           rows.(i).(!next_art) <- 1.0;
           basis.(i) <- !next_art;
           incr next_art);
        check_finite_row ~what:"ingested-row" rows.(i))
      rows_data;
    (* Pivot cap: generous for any LP this project builds (the exact
       engines finish these in far fewer), tight enough that tolerance-
       blinded cycling degrades into a fallback instead of a hang. *)
    let budget = ref (200 + (50 * (m + ncols))) in
    Option.iter (crash_warm rows basis ~ncols ~art_start ~budget) warm;
    (* Phase 1: minimize the sum of artificials. *)
    if num_art > 0 then begin
      let obj = Array.make (ncols + 1) 0.0 in
      for j = art_start to ncols - 1 do
        obj.(j) <- 1.0
      done;
      Array.iteri
        (fun i c ->
          if c >= art_start then
            for j = 0 to ncols do
              obj.(j) <- obj.(j) -. rows.(i).(j)
            done)
        basis;
      check_finite_row ~what:"objective" obj;
      (match run_phase rows obj basis ~ncols ~allowed:(fun _ -> true) ~budget with
       | `Unbounded -> raise (Numerical "phase-1 objective looked unbounded")
       | `Optimal -> ());
      (* obj.(ncols) holds -(phase-1 value). *)
      if -.obj.(ncols) > eps_feas then raise (Infeasible_at (Array.copy basis));
      (* Drive remaining artificials out of the basis where the pivot
         element is numerically usable; rows where it is not are either
         redundant or will be caught by the repair step. *)
      Array.iteri
        (fun r c ->
          if c >= art_start then begin
            let found = ref (-1) in
            (try
               for j = 0 to art_start - 1 do
                 if Float.abs rows.(r).(j) > eps_pivot then begin
                   found := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !found >= 0 then begin
              decr budget;
              if !budget <= 0 then raise (Numerical "pivot budget exhausted");
              pivot rows obj basis ~ncols r !found
            end
          end)
        basis
    end;
    (* Phase 2: the real objective. *)
    let obj = Array.make (ncols + 1) 0.0 in
    Array.iteri (fun j c -> obj.(j) <- Rat.to_float c) p.Lp_layout.objective;
    check_finite_row ~what:"objective" obj;
    Array.iteri
      (fun i c ->
        if c < ncols && obj.(c) <> 0.0 then begin
          let f = obj.(c) in
          for j = 0 to ncols do
            obj.(j) <- obj.(j) -. (f *. rows.(i).(j))
          done
        end)
      basis;
    check_finite_row ~what:"objective" obj;
    let allowed j = j < art_start in
    match run_phase rows obj basis ~ncols ~allowed ~budget with
    | `Unbounded -> (Unbounded_direction, None)
    | `Optimal ->
      (* The float primal point of the final basis: each basic structural
         column reads its row's right-hand side, every nonbasic variable
         is 0.  Heuristic data for cutting-plane separation — verdicts
         still come only from exact repair of the proposed basis. *)
      let point = Array.make p.Lp_layout.num_vars 0.0 in
      Array.iteri
        (fun i c ->
          if c >= 0 && c < p.Lp_layout.num_vars then point.(c) <- rows.(i).(ncols))
        basis;
      (Optimal_basis (Array.copy basis), Some point)
  with
  | Numerical msg -> Bagcqc_error.overflow ~where msg
  | Infeasible_at basis -> (Infeasible_basis basis, None)

let propose ?warm p lay = Result.map fst (propose_point ?warm p lay)
