(* Two-phase primal simplex over exact rationals, in two flavours.

   The {e dense} solver is the original reference implementation: [m] rows
   of length [ncols + 1] (column [ncols] is the right-hand side),
   Gaussian pivots touching every column of every affected row.  It is kept
   verbatim as the correctness oracle.

   The {e sparse} solver (the default) exploits the structure of the
   entropic LPs this project actually solves — elemental Shannon
   inequalities have at most 4 nonzero coefficients, almost all ±1/±2 —
   in three ways:

   - constraints are ingested as sorted [(col, coeff)] pairs, so building
     the tableau never materializes the zero coefficients;
   - each Gaussian pivot first collects the nonzero columns of the pivot
     row and then eliminates only those columns from the touched rows
     (rows with a zero entry in the pivot column are never visited at
     all), instead of re-walking all [ncols + 1] columns of every row;
   - entering columns are found by block partial pricing: reduced costs
     are scanned in fixed-size blocks starting after the previous entering
     column, and the most negative eligible cost of the first block that
     has one is taken.  Optimality is only declared after a full wrap
     finds no eligible column.

   Both flavours share Bland's anti-cycling fallback: after a long run of
   degenerate pivots the pricing rule permanently switches to smallest
   eligible index, which guarantees termination.  [basis.(r)] is the
   column basic in row [r]; row operations keep basic columns at
   identity. *)

open Bagcqc_num
open Rat.Infix

(* Problem representation and normalized ingestion live in {!Lp_layout},
   shared with the float-first pipeline ({!Fsimplex} + {!Repair}) so a
   basis means the same columns to every solver.  Re-exported here so
   callers keep a single entry point. *)
type op = Lp_layout.op = Le | Ge | Eq

type constr = Lp_layout.constr = {
  cols : int array;
  vals : Rat.t array;
  width : int;
  op : op;
  rhs : Rat.t;
}

type problem = Lp_layout.problem = {
  num_vars : int;
  objective : Rat.t array;
  constraints : constr list;
}

type outcome =
  | Optimal of Rat.t * Rat.t array
  | Unbounded
  | Infeasible

type engine = Dense | Sparse

let default_engine = ref Sparse

type mode = Exact | Float_first

let mode_name = function Exact -> "exact" | Float_first -> "float_first"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "exact" -> Some Exact
  | "float_first" | "float-first" -> Some Float_first
  | _ -> None

(* BAGCQC_LP picks the process-wide default mode, mirroring BAGCQC_JOBS
   for the pool: an invalid value is reported once and ignored rather
   than aborting (the CLI flag --lp-engine still overrides). *)
let default_mode =
  ref
    (match Sys.getenv_opt "BAGCQC_LP" with
     | None -> Float_first
     | Some s ->
       (match mode_of_string s with
        | Some m -> m
        | None ->
          Printf.eprintf
            "bagcqc: ignoring invalid BAGCQC_LP=%s (expected exact or \
             float_first)\n%!"
            s;
          Float_first))

(* Per-domain pivot odometer (see the .mli): the cell itself lives in
   {!Lp_layout} so the float proposer feeds the same meter. *)
let pivot_count = Lp_layout.pivot_count
let note_pivot = Lp_layout.note_pivot

(* ---- observability ----
   Per-solve spans and two histograms: pivots per solve, and the bigint
   bit-width of pivot elements (numerator + denominator bits), the
   quantity that actually prices a pivot under exact arithmetic.  The
   bit-width probe runs on the per-pivot hot path, so it is gated on the
   tracing switch and sampled every k-th pivot. *)

module Obs = Bagcqc_obs

let h_pivot_bits = Obs.Metrics.histogram "lp.pivot_bits"
let h_pivots_per_solve = Obs.Metrics.histogram "lp.pivots_per_solve"
let pivot_tick_key = Domain.DLS.new_key (fun () -> ref 0)

(* Sample the 1st, (k+1)-th, (2k+1)-th, ... pivot so short solves still
   contribute at least one observation.  The tick is per-domain so the
   sampling phase of concurrent solves stays deterministic per solve
   stream. *)
let observe_pivot_magnitude (p : Rat.t) =
  if !Obs.Runtime.enabled then begin
    let pivot_tick = Domain.DLS.get pivot_tick_key in
    incr pivot_tick;
    if (!pivot_tick - 1) mod !Obs.Runtime.sample_every = 0 then
      Obs.Metrics.observe h_pivot_bits
        (Bigint.num_bits (Rat.num p) + Bigint.num_bits (Rat.den p))
  end

let constr = Lp_layout.constr
let sparse_constr = Lp_layout.sparse_constr
let validate = Lp_layout.validate

type layout = Lp_layout.layout = {
  m : int;
  ncols : int;
  art_start : int;
  num_art : int;
  rows_data : (int array * Rat.t array * op * Rat.t) array;
}

let layout_of = Lp_layout.layout_of

(* ================================================================== *)
(* Dense reference solver (the seed implementation, kept as oracle).    *)
(* ================================================================== *)

module Dense_impl = struct
  type tableau = {
    rows : Rat.t array array;
    mutable obj : Rat.t array;
    basis : int array;
    ncols : int;
  }

  let rhs_col t = t.ncols

  let pivot t r c =
    note_pivot ();
    let row = t.rows.(r) in
    let p = row.(c) in
    assert (not (Rat.is_zero p));
    observe_pivot_magnitude p;
    let inv_p = Rat.inv p in
    for j = 0 to t.ncols do
      row.(j) <- row.(j) */ inv_p
    done;
    let eliminate target =
      let f = target.(c) in
      if not (Rat.is_zero f) then
        for j = 0 to t.ncols do
          target.(j) <- target.(j) -/ (f */ row.(j))
        done
    in
    Array.iteri (fun i target -> if i <> r then eliminate target) t.rows;
    eliminate t.obj;
    t.basis.(r) <- c

  (* One phase of simplex: minimize the current objective row over the
     columns [allowed].  Dantzig pricing with a permanent fallback to
     Bland's rule once a long degenerate run suggests cycling. *)
  let degenerate_limit = 60

  let run_phase t ~allowed =
    let m = Array.length t.rows in
    let bland = ref false in
    let degenerate_run = ref 0 in
    let rec iterate () =
      let entering = ref (-1) in
      if !bland then begin
        (try
           for j = 0 to t.ncols - 1 do
             if allowed j && Rat.sign t.obj.(j) < 0 then begin
               entering := j;
               raise Exit
             end
           done
         with Exit -> ())
      end
      else begin
        let best = ref Rat.zero in
        for j = 0 to t.ncols - 1 do
          if allowed j && Rat.compare t.obj.(j) !best < 0 then begin
            best := t.obj.(j);
            entering := j
          end
        done
      end;
      if !entering < 0 then `Optimal
      else begin
        let c = !entering in
        (* Leaving: min ratio rhs/coeff over rows with coeff > 0; ties
           broken by the smallest basis column. *)
        let best_row = ref (-1) in
        let best_ratio = ref Rat.zero in
        for i = 0 to m - 1 do
          let a = t.rows.(i).(c) in
          if Rat.sign a > 0 then begin
            let ratio = t.rows.(i).(rhs_col t) // a in
            if !best_row < 0
               || Rat.compare ratio !best_ratio < 0
               || (Rat.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
            then begin
              best_row := i;
              best_ratio := ratio
            end
          end
        done;
        if !best_row < 0 then `Unbounded
        else begin
          if Rat.is_zero !best_ratio then begin
            incr degenerate_run;
            if !degenerate_run > degenerate_limit then bland := true
          end
          else degenerate_run := 0;
          pivot t !best_row c;
          iterate ()
        end
      end
    in
    iterate ()

  let solution_of t ~num_vars =
    let x = Array.make num_vars Rat.zero in
    Array.iteri
      (fun r c -> if c < num_vars then x.(c) <- t.rows.(r).(rhs_col t))
      t.basis;
    x

  let solve ({ num_vars; objective; _ } as p) =
    let { m; ncols; art_start; num_art; rows_data } = layout_of p in
    let rows = Array.init m (fun _ -> Array.make (ncols + 1) Rat.zero) in
    let basis = Array.make m (-1) in
    let next_slack = ref num_vars and next_art = ref art_start in
    Array.iteri
      (fun i (cols, vals, op, rhs) ->
        Array.iteri (fun k j -> rows.(i).(j) <- vals.(k)) cols;
        rows.(i).(ncols) <- rhs;
        (match op with
         | Le ->
           rows.(i).(!next_slack) <- Rat.one;
           basis.(i) <- !next_slack;
           incr next_slack
         | Ge ->
           rows.(i).(!next_slack) <- Rat.minus_one;
           incr next_slack;
           rows.(i).(!next_art) <- Rat.one;
           basis.(i) <- !next_art;
           incr next_art
         | Eq ->
           rows.(i).(!next_art) <- Rat.one;
           basis.(i) <- !next_art;
           incr next_art))
      rows_data;
    let t = { rows; obj = Array.make (ncols + 1) Rat.zero; basis; ncols } in
    (* ---------------- Phase 1: minimize the sum of artificials. ------- *)
    if num_art > 0 then begin
      let obj = Array.make (ncols + 1) Rat.zero in
      for j = art_start to ncols - 1 do
        obj.(j) <- Rat.one
      done;
      t.obj <- obj;
      (* Price out: artificials are basic, so subtract their rows. *)
      Array.iteri
        (fun i c ->
          if c >= art_start then
            for j = 0 to ncols do
              obj.(j) <- obj.(j) -/ t.rows.(i).(j)
            done)
        t.basis;
      (match run_phase t ~allowed:(fun _ -> true) with
       | `Unbounded ->
         (* The phase-1 objective (a sum of non-negative artificials) is
            bounded below by 0; an unbounded verdict means a pivoting bug. *)
         Bagcqc_error.invariant ~where:"Simplex.Dense_impl.solve"
           "phase-1 objective reported unbounded"
       | `Optimal -> ());
      (* obj.(ncols) holds -(phase-1 value). *)
      if Rat.sign t.obj.(ncols) < 0 then raise Exit
    end;
    (* Drive remaining artificials out of the basis where possible; rows
       where it is impossible are redundant (all-zero) and harmless. *)
    Array.iteri
      (fun r c ->
        if c >= art_start then begin
          let found = ref (-1) in
          (try
             for j = 0 to art_start - 1 do
               if not (Rat.is_zero t.rows.(r).(j)) then begin
                 found := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !found >= 0 then pivot t r !found
        end)
      t.basis;
    (* ---------------- Phase 2: the real objective. --------------------- *)
    let obj = Array.make (ncols + 1) Rat.zero in
    Array.blit objective 0 obj 0 num_vars;
    t.obj <- obj;
    Array.iteri
      (fun i c ->
        if c < ncols && not (Rat.is_zero obj.(c)) then begin
          let f = obj.(c) in
          for j = 0 to ncols do
            obj.(j) <- obj.(j) -/ (f */ t.rows.(i).(j))
          done
        end)
      t.basis;
    let allowed j = j < art_start in
    match run_phase t ~allowed with
    | `Unbounded -> Unbounded
    | `Optimal ->
      (* obj.(ncols) = -(objective value). *)
      Optimal (Rat.neg t.obj.(ncols), solution_of t ~num_vars)
end

(* ================================================================== *)
(* Sparse solver: nonzero-driven pivots and block partial pricing.      *)
(* ================================================================== *)

module Sparse_impl = struct
  type tableau = {
    rows : Rat.t array array;
    mutable obj : Rat.t array;
    basis : int array;
    ncols : int;
    nzbuf : int array; (* scratch: nonzero columns of the pivot row *)
  }

  let rhs_col t = t.ncols

  (* Gaussian pivot on (row, col) that touches only the nonzero columns of
     the pivot row.  Rows with a zero coefficient in the pivot column are
     untouched (as in the dense solver); every touched row is updated only
     at the pivot row's nonzeros — all other columns are unchanged by the
     elimination [target.(j) <- target.(j) - f * row.(j)] anyway. *)
  let pivot t r c =
    note_pivot ();
    let row = t.rows.(r) in
    let p = row.(c) in
    assert (not (Rat.is_zero p));
    observe_pivot_magnitude p;
    let scale = not (Rat.equal p Rat.one) in
    let inv_p = if scale then Rat.inv p else Rat.one in
    let nnz = ref 0 in
    for j = 0 to t.ncols do
      if not (Rat.is_zero row.(j)) then begin
        if scale then row.(j) <- row.(j) */ inv_p;
        t.nzbuf.(!nnz) <- j;
        incr nnz
      end
    done;
    let nnz = !nnz in
    let eliminate target =
      let f = target.(c) in
      if not (Rat.is_zero f) then
        for k = 0 to nnz - 1 do
          let j = t.nzbuf.(k) in
          target.(j) <- target.(j) -/ (f */ row.(j))
        done
    in
    let rows = t.rows in
    for i = 0 to Array.length rows - 1 do
      if i <> r then eliminate rows.(i)
    done;
    eliminate t.obj;
    t.basis.(r) <- c

  let degenerate_limit = 60
  let price_block = 48

  (* Block partial pricing: scan reduced costs in blocks of [price_block]
     columns starting just after the previous entering column; return the
     most negative eligible cost of the first block containing one.  A
     full wrap with no hit proves optimality (every column was priced). *)
  let price t ~allowed ~cursor =
    let n = t.ncols in
    let entering = ref (-1) in
    let best = ref Rat.zero in
    let scanned = ref 0 in
    let j = ref (cursor mod max 1 n) in
    (try
       while !scanned < n do
         let stop = Stdlib.min (!scanned + price_block) n in
         while !scanned < stop do
           let col = !j in
           if allowed col && Rat.sign t.obj.(col) < 0
              && (!entering < 0 || Rat.compare t.obj.(col) !best < 0)
           then begin
             best := t.obj.(col);
             entering := col
           end;
           incr scanned;
           j := if col + 1 >= n then 0 else col + 1
         done;
         if !entering >= 0 then raise Exit
       done
     with Exit -> ());
    !entering

  let run_phase t ~allowed =
    let m = Array.length t.rows in
    let bland = ref false in
    let degenerate_run = ref 0 in
    let cursor = ref 0 in
    let rec iterate () =
      let entering = ref (-1) in
      if !bland then begin
        (try
           for j = 0 to t.ncols - 1 do
             if allowed j && Rat.sign t.obj.(j) < 0 then begin
               entering := j;
               raise Exit
             end
           done
         with Exit -> ())
      end
      else entering := price t ~allowed ~cursor:!cursor;
      if !entering < 0 then `Optimal
      else begin
        let c = !entering in
        cursor := c + 1;
        let best_row = ref (-1) in
        let best_ratio = ref Rat.zero in
        for i = 0 to m - 1 do
          let a = t.rows.(i).(c) in
          if Rat.sign a > 0 then begin
            let ratio = t.rows.(i).(rhs_col t) // a in
            if !best_row < 0
               || Rat.compare ratio !best_ratio < 0
               || (Rat.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
            then begin
              best_row := i;
              best_ratio := ratio
            end
          end
        done;
        if !best_row < 0 then `Unbounded
        else begin
          if Rat.is_zero !best_ratio then begin
            incr degenerate_run;
            if !degenerate_run > degenerate_limit then bland := true
          end
          else degenerate_run := 0;
          pivot t !best_row c;
          iterate ()
        end
      end
    in
    iterate ()

  let solution_of t ~num_vars =
    let x = Array.make num_vars Rat.zero in
    Array.iteri
      (fun r c -> if c < num_vars then x.(c) <- t.rows.(r).(rhs_col t))
      t.basis;
    x

  let solve ({ num_vars; objective; _ } as p) =
    let { m; ncols; art_start; num_art; rows_data } = layout_of p in
    let rows = Array.init m (fun _ -> Array.make (ncols + 1) Rat.zero) in
    let basis = Array.make m (-1) in
    let next_slack = ref num_vars and next_art = ref art_start in
    Array.iteri
      (fun i (cols, vals, op, rhs) ->
        Array.iteri (fun k j -> rows.(i).(j) <- vals.(k)) cols;
        rows.(i).(ncols) <- rhs;
        (match op with
         | Le ->
           rows.(i).(!next_slack) <- Rat.one;
           basis.(i) <- !next_slack;
           incr next_slack
         | Ge ->
           rows.(i).(!next_slack) <- Rat.minus_one;
           incr next_slack;
           rows.(i).(!next_art) <- Rat.one;
           basis.(i) <- !next_art;
           incr next_art
         | Eq ->
           rows.(i).(!next_art) <- Rat.one;
           basis.(i) <- !next_art;
           incr next_art))
      rows_data;
    let t =
      { rows; obj = Array.make (ncols + 1) Rat.zero; basis; ncols;
        nzbuf = Array.make (ncols + 1) 0 }
    in
    (* Phase 1: minimize the sum of artificials. *)
    if num_art > 0 then begin
      let obj = Array.make (ncols + 1) Rat.zero in
      for j = art_start to ncols - 1 do
        obj.(j) <- Rat.one
      done;
      t.obj <- obj;
      (* Price out basic artificials; subtracting whole rows is a one-off,
         so iterate their sparse support only. *)
      Array.iteri
        (fun i c ->
          if c >= art_start then
            for j = 0 to ncols do
              if not (Rat.is_zero t.rows.(i).(j)) then
                obj.(j) <- obj.(j) -/ t.rows.(i).(j)
            done)
        t.basis;
      (match run_phase t ~allowed:(fun _ -> true) with
       | `Unbounded ->
         (* Bounded below by 0, as in the dense solver. *)
         Bagcqc_error.invariant ~where:"Simplex.Sparse_impl.solve"
           "phase-1 objective reported unbounded"
       | `Optimal -> ());
      if Rat.sign t.obj.(ncols) < 0 then raise Exit
    end;
    (* Drive remaining artificials out of the basis where possible. *)
    Array.iteri
      (fun r c ->
        if c >= art_start then begin
          let found = ref (-1) in
          (try
             for j = 0 to art_start - 1 do
               if not (Rat.is_zero t.rows.(r).(j)) then begin
                 found := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !found >= 0 then pivot t r !found
        end)
      t.basis;
    (* Phase 2: the real objective. *)
    let obj = Array.make (ncols + 1) Rat.zero in
    Array.blit objective 0 obj 0 num_vars;
    t.obj <- obj;
    Array.iteri
      (fun i c ->
        if c < ncols && not (Rat.is_zero obj.(c)) then begin
          let f = obj.(c) in
          for j = 0 to ncols do
            if not (Rat.is_zero t.rows.(i).(j)) then
              obj.(j) <- obj.(j) -/ (f */ t.rows.(i).(j))
          done
        end)
      t.basis;
    let allowed j = j < art_start in
    match run_phase t ~allowed with
    | `Unbounded -> Unbounded
    | `Optimal -> Optimal (Rat.neg t.obj.(ncols), solution_of t ~num_vars)
end

(* ================================================================== *)
(* Public interface.                                                    *)
(* ================================================================== *)

let outcome_name = function
  | Optimal _ -> "optimal"
  | Unbounded -> "unbounded"
  | Infeasible -> "infeasible"

let solve_with engine p =
  validate p;
  Obs.Span.with_span ~name:"simplex.solve"
    ~attrs:
      [ ("engine",
         Obs.Span.Str (match engine with Dense -> "dense" | Sparse -> "sparse"));
        ("rows", Obs.Span.Int (List.length p.constraints));
        ("vars", Obs.Span.Int p.num_vars) ]
  @@ fun () ->
  let p0 = pivot_count () in
  let outcome =
    try
      (match engine with Dense -> Dense_impl.solve p | Sparse -> Sparse_impl.solve p)
    with Exit -> Infeasible
  in
  if !Obs.Runtime.enabled then begin
    let dp = pivot_count () - p0 in
    Obs.Metrics.observe h_pivots_per_solve dp;
    Obs.Span.add_attr "pivots" (Obs.Span.Int dp);
    Obs.Span.add_attr "outcome" (Obs.Span.Str (outcome_name outcome))
  end;
  outcome

(* ---- float-first hybrid (DESIGN.md §4f) ----
   Propose a basis in floats, repair it exactly, fall back to the exact
   engine on any hiccup.  The four counters make the fallback rate
   measurable from --stats, `report` and the bench JSON. *)

let c_float_solves = Obs.Metrics.counter "lp.hybrid.float_solves"
let c_repairs = Obs.Metrics.counter "lp.hybrid.repairs"
let c_repair_failures = Obs.Metrics.counter "lp.hybrid.repair_failures"
let c_fallbacks = Obs.Metrics.counter "lp.hybrid.fallbacks"

(* The generalized hybrid: optionally warm-started, and reporting the
   accepted basis back to the caller so a cutting-plane loop can feed it
   into the next round.  [solve_hybrid] below is this with no warm hint
   and the basis dropped — same spans, counters and fallbacks as ever. *)
let solve_hybrid_basis ?warm engine p =
  validate p;
  Obs.Span.with_span ~name:"simplex.solve"
    ~attrs:
      [ ("engine", Obs.Span.Str "float_first");
        ("rows", Obs.Span.Int (List.length p.constraints));
        ("vars", Obs.Span.Int p.num_vars) ]
  @@ fun () ->
  let fallback reason =
    Obs.Metrics.bump c_fallbacks;
    if !Obs.Runtime.enabled then
      Obs.Span.add_attr "fallback" (Obs.Span.Str reason);
    (* The exact solve opens its own nested simplex.solve span, so a
       trace shows both the failed float attempt and the oracle solve. *)
    solve_with engine p
  in
  Obs.Metrics.bump c_float_solves;
  let p0 = pivot_count () in
  let lay = layout_of p in
  let outcome, basis =
    match Fsimplex.propose ?warm p lay with
    | Error e ->
      (* Typed numerical failure (NaN/inf/pivot budget): never a verdict,
         always a fallback. *)
      ( fallback
          (match e.Bagcqc_error.kind with
           | Bagcqc_error.Overflow msg -> "float_error:" ^ msg
           | Bagcqc_error.Invariant msg -> "float_invariant:" ^ msg
           | Bagcqc_error.Unsupported msg -> "float_unsupported:" ^ msg),
        None )
    | Ok Fsimplex.Unbounded_direction ->
      (* No finite basis to certify; let the exact engine decide. *)
      (fallback "unbounded", None)
    | Ok proposal ->
      let proposed_basis =
        match proposal with
        | Fsimplex.Optimal_basis b | Fsimplex.Infeasible_basis b -> b
        | Fsimplex.Unbounded_direction -> assert false
      in
      (match Repair.repair p lay proposal with
       | Repair.Repaired_optimal (v, x) ->
         Obs.Metrics.bump c_repairs;
         (Optimal (v, x), Some proposed_basis)
       | Repair.Repaired_infeasible ->
         Obs.Metrics.bump c_repairs;
         (Infeasible, Some proposed_basis)
       | Repair.Rejected reason ->
         Obs.Metrics.bump c_repair_failures;
         (fallback ("repair:" ^ reason), None))
  in
  if !Obs.Runtime.enabled then begin
    (* On a fallback the nested exact solve_with already observed its own
       pivots-per-solve; observing the combined delta again would double-
       count, so the hybrid span only reports the accepted-repair case. *)
    if basis <> None then begin
      let dp = pivot_count () - p0 in
      Obs.Metrics.observe h_pivots_per_solve dp;
      Obs.Span.add_attr "pivots" (Obs.Span.Int dp)
    end;
    Obs.Span.add_attr "outcome" (Obs.Span.Str (outcome_name outcome))
  end;
  (outcome, basis)

let solve_hybrid engine p = fst (solve_hybrid_basis engine p)

let solve ?engine ?mode p =
  let engine = match engine with Some e -> e | None -> !default_engine in
  match (match mode with Some m -> m | None -> !default_mode) with
  | Exact -> solve_with engine p
  | Float_first -> solve_hybrid engine p

let solve_warm ?engine ?mode ?warm p =
  let engine = match engine with Some e -> e | None -> !default_engine in
  match (match mode with Some m -> m | None -> !default_mode) with
  | Exact ->
    (* The exact engines expose no basis, so there is nothing to warm
       or to return; warm hints are float-pipeline-only by design. *)
    (solve_with engine p, None)
  | Float_first -> solve_hybrid_basis ?warm engine p

(* ---- pure-float probe ----
   The float half of the pipeline alone, with its primal point, and no
   exact repair: a cutting-plane loop runs its intermediate rounds on
   this (the point only steers which cuts get added next) and pays for
   exact solves only at terminal rounds.  Never a verdict. *)

type float_outcome =
  | Float_optimal of float array * int array
  | Float_infeasible of int array
  | Float_unknown

let c_float_probes = Obs.Metrics.counter "lp.float.probes"

let solve_float ?warm p =
  validate p;
  Obs.Metrics.bump c_float_probes;
  match Fsimplex.propose_point ?warm p (layout_of p) with
  | Ok (Fsimplex.Optimal_basis b, Some x) -> Float_optimal (x, b)
  | Ok (Fsimplex.Infeasible_basis b, _) -> Float_infeasible b
  | Ok _ | Error _ -> Float_unknown

let solve_result ?engine ?mode p =
  Bagcqc_error.protect (fun () -> solve ?engine ?mode p)

let feasible ?engine ?mode ~num_vars constraints =
  match
    solve ?engine ?mode
      { num_vars; objective = Array.make num_vars Rat.zero; constraints }
  with
  | Optimal (_, x) -> Some x
  | Infeasible -> None
  | Unbounded ->
    Bagcqc_error.invariant ~where:"Simplex.feasible"
      "constant (zero) objective reported unbounded"

let maximize ?engine ?mode p =
  match
    solve ?engine ?mode { p with objective = Array.map Rat.neg p.objective }
  with
  | Optimal (v, x) -> Optimal (Rat.neg v, x)
  | (Unbounded | Infeasible) as o -> o
