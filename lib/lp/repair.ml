(* Exact repair of a float-proposed simplex basis (DESIGN.md §4f).

   Given a basis B (as column indices, one per row) proposed by
   {!Fsimplex}, reconstruct in exact rational arithmetic everything the
   verdict depends on — one linear solve per side, no pivoting:

   - the primal basic solution   x_B = B⁻¹ b,
   - the dual multipliers        y   = B⁻ᵀ c_B,

   and accept only if the (x, y) pair verifies the claim exactly:

   {e Optimality} (phase-2 basis): x_B ≥ 0; every basic artificial is 0
   (so x solves the original system, not the phase-1 relaxation); and
   every nonbasic non-artificial column j has reduced cost
   c_j − y·A_j ≥ 0.  Then x is feasible, y proves no descent direction
   exists, and c·x = y·b is the exact optimum.

   {e Infeasibility} (phase-1 basis): y is dual-feasible for the phase-1
   LP over {b all} columns (y·A_j ≤ 1 for artificials, ≤ 0 otherwise)
   and y·b > 0.  Then for any x ≥ 0 over the original columns with
   Ax = b we would get 0 ≥ Σ (y·A_j)x_j = y·b > 0 — a Farkas
   contradiction, so the original system is infeasible.

   Every check is an exact [Rat] comparison; no tolerance anywhere.  Any
   failure — singular basis, negative basic variable, nonzero basic
   artificial, negative reduced cost, non-positive phase-1 dual value —
   is reported as [Rejected reason] and costs the caller one exact solve
   (the fallback), never a wrong answer.  The reason strings are stable
   tags, surfaced as span attributes for the fallback taxonomy. *)

open Bagcqc_num
open Rat.Infix

type verdict =
  | Repaired_optimal of Rat.t * Rat.t array
      (** exact optimal value and structural solution *)
  | Repaired_infeasible
  | Rejected of string  (** stable reason tag, e.g. ["dual_infeasible"] *)

(* Solve the square system [a · x = b] by Gaussian elimination with
   first-nonzero pivoting, destructively on copies.  Returns [None] when
   [a] is singular.  Exactness makes partial pivoting for stability
   unnecessary; any nonzero pivot is as good as any other. *)
let solve_square a b =
  let m = Array.length b in
  let a = Array.init m (fun i -> Array.copy a.(i)) in
  let b = Array.copy b in
  let ok = ref true in
  (try
     for k = 0 to m - 1 do
       (* Find a row with a nonzero entry in column k. *)
       let piv = ref (-1) in
       (try
          for i = k to m - 1 do
            if not (Rat.is_zero a.(i).(k)) then begin
              piv := i;
              raise Exit
            end
          done
        with Exit -> ());
       if !piv < 0 then begin
         ok := false;
         raise Exit
       end;
       if !piv <> k then begin
         let t = a.(k) in
         a.(k) <- a.(!piv);
         a.(!piv) <- t;
         let t = b.(k) in
         b.(k) <- b.(!piv);
         b.(!piv) <- t
       end;
       let inv_p = Rat.inv a.(k).(k) in
       for j = k to m - 1 do
         a.(k).(j) <- a.(k).(j) */ inv_p
       done;
       b.(k) <- b.(k) */ inv_p;
       for i = 0 to m - 1 do
         if i <> k then begin
           let f = a.(i).(k) in
           if not (Rat.is_zero f) then begin
             for j = k to m - 1 do
               a.(i).(j) <- a.(i).(j) -/ (f */ a.(k).(j))
             done;
             b.(i) <- b.(i) -/ (f */ b.(k))
           end
         end
       done
     done
   with Exit -> ());
  if !ok then Some b else None

let dot_col y entries =
  List.fold_left (fun acc (i, v) -> acc +/ (y.(i) */ v)) Rat.zero entries

let repair (p : Lp_layout.problem) (lay : Lp_layout.layout) proposal =
  let { Lp_layout.m; ncols; art_start; rows_data; _ } = lay in
  let num_vars = p.Lp_layout.num_vars in
  match (proposal : Fsimplex.proposal) with
  | Fsimplex.Unbounded_direction -> Rejected "unbounded"
  | Fsimplex.Optimal_basis basis | Fsimplex.Infeasible_basis basis ->
    let phase1 =
      match proposal with Fsimplex.Infeasible_basis _ -> true | _ -> false
    in
    (* Defensive shape check: the basis came from the float world. *)
    let shape_ok =
      Array.length basis = m
      && Array.for_all (fun c -> c >= 0 && c < ncols) basis
      &&
      let seen = Array.make ncols false in
      Array.for_all
        (fun c ->
          if seen.(c) then false
          else begin
            seen.(c) <- true;
            true
          end)
        basis
    in
    if not shape_ok then Rejected "bad_basis"
    else begin
      let cols = Lp_layout.columns lay ~num_vars in
      (* B in row-major (bm.(i).(r) = entry of basis column r in row i)
         and its transpose, plus rhs and the basic cost vector. *)
      let bm = Array.init m (fun _ -> Array.make m Rat.zero) in
      let bt = Array.init m (fun _ -> Array.make m Rat.zero) in
      Array.iteri
        (fun r c ->
          List.iter
            (fun (i, v) ->
              bm.(i).(r) <- v;
              bt.(r).(i) <- v)
            cols.(c))
        basis;
      let b_rhs = Array.map (fun (_, _, _, rhs) -> rhs) rows_data in
      let cost j =
        if phase1 then if j >= art_start then Rat.one else Rat.zero
        else if j < num_vars then p.Lp_layout.objective.(j)
        else Rat.zero
      in
      let c_b = Array.map cost basis in
      match solve_square bt c_b with
      | None -> Rejected "singular_basis"
      | Some y ->
        if phase1 then begin
          (* Dual feasibility over every column, basic ones included
             (for those the reduced cost is 0 by construction; checking
             them costs little and catches solve bugs). *)
          let dual_ok = ref true in
          for j = 0 to ncols - 1 do
            if !dual_ok && Rat.sign (cost j -/ dot_col y cols.(j)) < 0 then
              dual_ok := false
          done;
          if not !dual_ok then Rejected "dual_infeasible"
          else begin
            let value = ref Rat.zero in
            for i = 0 to m - 1 do
              value := !value +/ (y.(i) */ b_rhs.(i))
            done;
            let value = !value in
            (* y·b is the exact phase-1 dual objective; the Farkas
               argument needs it strictly positive. *)
            if Rat.sign value > 0 then Repaired_infeasible
            else Rejected "not_infeasible"
          end
        end
        else begin
          match solve_square bm b_rhs with
          | None -> Rejected "singular_basis"
          | Some x_b ->
            if Array.exists (fun v -> Rat.sign v < 0) x_b then
              Rejected "infeasible_point"
            else begin
              let art_zero = ref true in
              Array.iteri
                (fun r c ->
                  if c >= art_start && not (Rat.is_zero x_b.(r)) then
                    art_zero := false)
                basis;
              if not !art_zero then Rejected "artificial_nonzero"
              else begin
                let basic = Array.make ncols false in
                Array.iter (fun c -> basic.(c) <- true) basis;
                let dual_ok = ref true in
                for j = 0 to art_start - 1 do
                  if (not basic.(j)) && !dual_ok
                     && Rat.sign (cost j -/ dot_col y cols.(j)) < 0
                  then dual_ok := false
                done;
                if not !dual_ok then Rejected "dual_infeasible"
                else begin
                  let value = ref Rat.zero in
                  let x = Array.make num_vars Rat.zero in
                  Array.iteri
                    (fun r c ->
                      value := !value +/ (c_b.(r) */ x_b.(r));
                      if c < num_vars then x.(c) <- x_b.(r))
                    basis;
                  Repaired_optimal (!value, x)
                end
              end
            end
        end
    end
