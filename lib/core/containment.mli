(** Conjunctive query containment under bag-set semantics via information
    inequalities — the paper's core contribution.

    The pipeline, following Sections 3–4 and Appendix E:

    + associate to [(Q₁, Q₂)] the max-information inequality of Eq. (8),
      [h(vars Q₁) ≤ max_{T ∈ TD(Q₂)} max_{φ ∈ hom(Q₂,Q₁)} (E_T ∘ φ)(h)];
    + if the inequality is valid over the Shannon cone [Γn] it is valid
      over [Γ*n], hence [Q₁ ⊑ Q₂] (Theorem 4.2) — answer {e contained};
    + if it is refuted by a {e normal} entropic function, realize that
      function as a normal relation [P] (a domain product of two-row step
      relations), project to the annotated database [Π_Q₁(P)] (Eq. 4 +
      Theorem 4.4's annotation), take enough domain-product copies, and
      {e verify} [|P| > |hom(Q₂, Π_Q₁(P))|] by explicit counting —
      answer {e not contained} with a checked witness (Fact 3.2);
    + otherwise answer {e unknown}.

    When [Q₂] is chordal with a simple junction tree, Theorem 3.6(ii)
    guarantees step 3 succeeds whenever step 2 fails, so the procedure is
    a decision procedure (Theorem 3.1).  Soundness of both definitive
    answers is unconditional. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq

type witness = {
  p : Relation.t;
      (** the witnessing V-relation (annotated, per Theorem 4.4) *)
  db : Database.t;  (** [Π_Q₁(P)] *)
  card_p : int;     (** [|P| ≤ |hom(Q₁, db)|] *)
  hom2 : int;       (** [|hom(Q₂, db)| < card_p] — verified by counting *)
}

type verdict =
  | Contained of Certificate.t
      (** proved by Theorem 4.2 over the Shannon cone; the certificate
          re-derives Eq. 8's validity by exact arithmetic alone
          ({!Bagcqc_entropy.Certificate.check}), independent of the LP
          solver and its cache *)
  | Not_contained of witness  (** explicit counterexample, verified *)
  | Unknown of { reason : string; refuter : Polymatroid.t option }

type query_class =
  | Acyclic_simple   (** acyclic with a simple join tree: decidable *)
  | Chordal_simple   (** chordal with a simple junction tree: decidable
                         (Theorem 3.1) *)
  | Acyclic          (** acyclic, junction tree not simple: Eq. 8 is
                         necessary and sufficient (Theorem 2.7) but its
                         validity over [Γ*n] is open *)
  | Chordal          (** chordal, not simple *)
  | General          (** tree decompositions come from a triangulation;
                         Eq. 8 is only a sufficient condition *)

val classify : Query.t -> query_class
(** Classification of the {e containing} query [Q₂]. *)

val eq8 : ?dedup:bool -> ?decs:Treedec.t list -> Query.t -> Query.t -> Maxii.t
(** The max-information inequality of Eq. (8) for [Q₁ ⊑ Q₂], with one side
    [(E_T ∘ φ)] per tree decomposition [T] and homomorphism
    [φ : Q₂ → Q₁].  [decs] defaults to the canonical decomposition of
    [Q₂] ({!Bagcqc_cq.Treedec.of_query}); per the paper's remark after
    Theorem 4.4, a single junction tree suffices for the necessity
    direction, and fewer decompositions only make the sufficient test
    more conservative.  [dedup] (default true) removes syntactically equal
    sides — an optimization only, the max is insensitive to duplicates.
    @raise Invalid_argument if either query is not Boolean. *)

val decide : ?max_factors:int -> Query.t -> Query.t -> verdict
(** [decide q1 q2] checks [q1 ⊑ q2] (both Boolean; duplicate atoms are
    removed first, which is sound under bag-set semantics).
    [max_factors] (default 14) bounds the witness search: the candidate
    relation is a domain product of at most that many two-row step
    relations, i.e. at most [2^max_factors] rows.
    @raise Invalid_argument if either query is not Boolean. *)

val decide_result :
  ?max_factors:int -> Query.t -> Query.t -> (verdict, Bagcqc_error.t) result
(** {!decide} with internal invariant violations anywhere in the pipeline
    (simplex phase-1 anomalies, LP-duality disagreements, junction-tree
    failures on chordal graphs) reified as a typed [Error].
    Caller-side precondition failures still raise [Invalid_argument]. *)

val decide_many : ?max_factors:int -> (Query.t * Query.t) list -> verdict list
(** Decide a batch of containment instances concurrently over the domain
    pool ({!Bagcqc_par.Pool}); order is preserved and each verdict equals
    what {!decide} returns on that pair (per-instance solver counters
    included — each instance runs the sequential pipeline on one
    worker).  This is the engine behind [check --batch]. *)

val decide_with_heads : ?max_factors:int -> Query.t -> Query.t -> verdict
(** Containment for queries with head variables, via the Boolean
    reduction of Lemma A.1.
    @raise Invalid_argument if head lengths differ. *)

val contained_set : Query.t -> Query.t -> bool
(** Containment under classical {e set} semantics (Chandra–Merlin 1977):
    [Q₁ ⊑_set Q₂] iff a homomorphism [Q₂ → Q₁] exists.  Provided for
    contrast — set containment is NP-complete and decidable, bag
    containment is the paper's open problem; e.g. [R(x,y)] and
    [R(x,y),R(x,z)] are set-equivalent but bag-incomparable one way. *)

val decide_bag_bag : ?max_factors:int -> Query.t -> Query.t -> verdict
(** Containment under {e bag-bag} semantics (duplicate tuples in the
    database), via the id-attribute reduction to bag-set semantics
    (Section 2.2 / {!Bagcqc_cq.Bagdb.lift_query}).  Note duplicate atoms
    are {e not} removed here — they matter under bag-bag semantics. *)

val witness_from_normal :
  ?max_factors:int -> Query.t -> Query.t -> Polymatroid.t -> witness option
(** Realize a normal refuter of Eq. 8 as a verified witness: scale its
    step decomposition to integers, realize [k] domain-product copies for
    growing [k], and stop at the first [k] whose induced database
    verifies [|P| > |hom(Q₂, Π_Q₁(P))|].  [None] if the bound
    [max_factors] is exhausted (or the function is not normal). *)

val verify_witness :
  ?annotate:bool -> Query.t -> Query.t -> Relation.t -> (int * int) option
(** [verify_witness q1 q2 p] checks Fact 3.2 directly: [Some (|P|, m)]
    with [m = |hom(q2, Π_q1(P))| < |P|] if [p] witnesses non-containment,
    [None] otherwise.  [annotate] (default true) applies Theorem 4.4's
    value annotation first — itself sound, since the annotated relation is
    also a V-relation; pass [false] to test the plain projection the
    examples of the paper compute by hand.
    @raise Invalid_argument if [p]'s arity differs from [q1]'s variable
    count. *)

val scale_steps : (Varset.t * Rat.t) list -> (Varset.t * int) list
(** Clear denominators: multiply a rational step decomposition by the
    least common denominator, returning positive integer multiplicities
    (dropping zero terms).  Refutation is scale-invariant, so the scaled
    function refutes whatever the original refuted. *)
