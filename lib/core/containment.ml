open Bagcqc_num
open Bagcqc_engine
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq

type witness = {
  p : Relation.t;
  db : Database.t;
  card_p : int;
  hom2 : int;
}

type verdict =
  | Contained of Certificate.t
  | Not_contained of witness
  | Unknown of { reason : string; refuter : Polymatroid.t option }

type query_class =
  | Acyclic_simple
  | Chordal_simple
  | Acyclic
  | Chordal
  | General

let canonical_dec q2 =
  match Treedec.join_tree q2 with
  | Some t -> t
  | None ->
    (match Treedec.junction_tree (Graph.gaifman q2) with
     | Some t -> t
     | None -> Treedec.of_query q2)

let classify q2 =
  let acyclic = Treedec.is_acyclic q2 in
  let chordal = Graph.is_chordal (Graph.gaifman q2) in
  if acyclic || chordal then begin
    let simple = Treedec.is_simple (canonical_dec q2) in
    match acyclic, simple with
    | true, true -> Acyclic_simple
    | true, false -> Acyclic
    | false, true -> Chordal_simple
    | false, false -> Chordal
  end
  else General

let require_boolean q =
  if not (Query.is_boolean q) then
    invalid_arg "Containment: queries must be Boolean (use decide_with_heads)"

let eq8 ?(dedup = true) ?decs q1 q2 =
  require_boolean q1;
  require_boolean q2;
  let q1 = Query.dedup_atoms q1 and q2 = Query.dedup_atoms q2 in
  let decs = match decs with Some ds -> ds | None -> [ canonical_dec q2 ] in
  let homs = Hom.enumerate_between q2 q1 in
  let sides =
    List.concat_map
      (fun t ->
        let et = Treedec.et t in
        List.map (fun phi -> Cexpr.rename (fun v -> phi.(v)) et) homs)
      decs
  in
  (* Distinct homomorphisms frequently induce the same expression (e.g.
     they differ only on isolated components); the max is insensitive to
     duplicates, and every duplicate side costs an LP row. *)
  let sides =
    if not dedup then sides
    else begin
      let seen = Hashtbl.create 16 in
      List.filter
        (fun cx ->
          let key = Linexpr.terms (Cexpr.to_linexpr cx) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        sides
    end
  in
  Maxii.conditional ~n:(Query.nvars q1) ~q:Rat.one sides

let scale_steps coeffs =
  let lcm_den =
    List.fold_left
      (fun acc (_, c) ->
        let d = Rat.den c in
        Bigint.mul acc (Bigint.div d (Bigint.gcd acc d)))
      Bigint.one coeffs
  in
  List.filter_map
    (fun (w, c) ->
      let scaled = Rat.mul c (Rat.of_bigint lcm_den) in
      assert (Rat.is_integer scaled);
      match Bigint.to_int_opt (Rat.num scaled) with
      | Some 0 -> None
      | Some k when k > 0 -> Some (w, k)
      | Some _ -> invalid_arg "Containment.scale_steps: negative multiplicity"
      | None -> invalid_arg "Containment.scale_steps: multiplicity overflow")
    coeffs

let verify_witness ?(annotate = true) q1 q2 p =
  if Relation.arity p <> Query.nvars q1 then
    invalid_arg "Containment.verify_witness: arity mismatch";
  let db = Database.of_vrelation ~annotate q1 p in
  let card = Relation.cardinal p in
  let hom2 = Hom.count ~limit:card q2 db in
  if hom2 < card then Some (card, hom2) else None

let witness_from_normal ?(max_factors = 14) q1 q2 h =
  match Polymatroid.normal_decomposition h with
  | None -> None
  | Some coeffs ->
    let base = scale_steps coeffs in
    let base_factors = List.fold_left (fun acc (_, c) -> acc + c) 0 base in
    let n = Query.nvars q1 in
    let rec try_k k =
      if base_factors * k > max_factors && not (base_factors = 0 && k = 1) then
        None
      else begin
        let p =
          Relation.of_normal_steps ~n
            (List.map (fun (w, c) -> (w, c * k)) base)
        in
        let db = Database.of_vrelation ~annotate:true q1 p in
        let card = Relation.cardinal p in
        let hom2 = Hom.count ~limit:card q2 db in
        if hom2 < card then Some { p; db; card_p = card; hom2 }
        else if base_factors = 0 then None
        else try_k (k + 1)
      end
    in
    try_k 1

let decide ?max_factors q1 q2 =
  require_boolean q1;
  require_boolean q2;
  Bagcqc_obs.Span.with_span ~name:"containment.decide"
    ~attrs:
      [ ("vars1", Bagcqc_obs.Span.Int (Query.nvars q1));
        ("vars2", Bagcqc_obs.Span.Int (Query.nvars q2)) ]
  @@ fun () ->
  let verdict_attr v =
    Bagcqc_obs.Span.add_attr "verdict" (Bagcqc_obs.Span.Str v)
  in
  let q1 = Query.dedup_atoms q1 and q2 = Query.dedup_atoms q2 in
  let ineq = Stats.time_stage "eq8" (fun () -> eq8 q1 q2) in
  match Stats.time_stage "maxii" (fun () -> Maxii.decide ineq) with
  | Maxii.Valid cert ->
    verdict_attr "contained";
    Contained cert
  | Maxii.Unknown refuter ->
    verdict_attr "unknown";
    Unknown
      { reason =
          "Eq. 8 fails over the Shannon cone but holds over the normal cone: \
           the refuting polymatroid may not be entropic (Q2 is outside the \
           decidable classes)";
        refuter = Some refuter }
  | Maxii.Invalid h_normal ->
    (match
       Stats.time_stage "witness" (fun () ->
           witness_from_normal ?max_factors q1 q2 h_normal)
     with
     | Some w ->
       verdict_attr "not_contained";
       Not_contained w
     | None ->
       verdict_attr "unknown";
       Unknown
         { reason =
             "a normal refuter of Eq. 8 exists but realizing it as a witness \
              database exceeded the max_factors budget";
           refuter = Some h_normal })

let decide_result ?max_factors q1 q2 =
  Bagcqc_error.protect (fun () -> decide ?max_factors q1 q2)

let decide_many ?max_factors pairs =
  (* Batch fan-out over the pool: each pair runs the full sequential
     pipeline on its worker (every nested parallel entry point sees
     [inside_task] and stays sequential), so per-instance verdicts and
     solver counters match a one-by-one run exactly. *)
  Bagcqc_par.Pool.parallel_map_list
    (fun (q1, q2) -> decide ?max_factors q1 q2)
    pairs

let decide_with_heads ?max_factors q1 q2 =
  let b1, b2 = Reductions.booleanize q1 q2 in
  decide ?max_factors b1 b2

let contained_set q1 q2 =
  (* Chandra–Merlin: evaluate Q2 on the canonical database of Q1; head
     variables must be matched identically, which the canonical-database
     trick encodes by comparing head tuples. *)
  if List.length (Query.head q1) <> List.length (Query.head q2) then
    invalid_arg "Containment.contained_set: head arity mismatch";
  let db = Database.canonical q1 in
  let head1 =
    List.map (fun v -> Value.Str (Query.var_name q1 v)) (Query.head q1)
  in
  List.exists
    (fun (key, _) -> key = Array.of_list head1)
    (Hom.answers q2 db)

let decide_bag_bag ?max_factors q1 q2 =
  let l1 = Bagdb.lift_query q1 and l2 = Bagdb.lift_query q2 in
  if Query.is_boolean l1 && Query.is_boolean l2 then decide ?max_factors l1 l2
  else decide_with_heads ?max_factors l1 l2
