open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq

type kind = Product | Normal

let applicable q2 =
  let acyclic = Treedec.is_acyclic q2 in
  let chordal = Graph.is_chordal (Graph.gaifman q2) in
  if not (acyclic || chordal) then None
  else begin
    let t =
      match Treedec.join_tree q2 with
      | Some t -> t
      | None ->
        (match Treedec.junction_tree (Graph.gaifman q2) with
         | Some t -> t
         | None ->
           (* Guarded by the acyclic/chordal test above: a non-acyclic
              query only reaches here when its Gaifman graph is chordal,
              and [junction_tree] succeeds on every chordal graph. *)
           Bagcqc_num.Bagcqc_error.invariant ~where:"Witness.applicable"
             "junction_tree failed on a chordal Gaifman graph")
    in
    if Treedec.is_totally_disconnected t then Some Product
    else if Treedec.is_simple t then Some Normal
    else None
  end

let product_witness ?(max_rows = 4096) q1 q2 =
  let ineq = Containment.eq8 q1 q2 in
  match Maxii.valid_over Cones.Modular ineq with
  | Ok () -> None
  | Error h_modular ->
    let n = Query.nvars (Query.dedup_atoms q1) in
    (* Integer weights: scale the modular refuter like a step
       decomposition (a modular function IS a combination of the
       co-singleton steps with its singleton values as coefficients). *)
    let weights =
      List.init n (fun i -> Polymatroid.value h_modular (Varset.singleton i))
    in
    let scaled =
      Containment.scale_steps
        (List.mapi (fun i w -> (Varset.singleton i, w)) weights)
    in
    let weight_of i =
      match List.assoc_opt (Varset.singleton i) scaled with
      | Some w -> w
      | None -> 0
    in
    let rec try_k k =
      let sizes = List.init n (fun i -> 1 lsl (k * weight_of i)) in
      let rows = List.fold_left ( * ) 1 sizes in
      if rows > max_rows then None
      else begin
        let p = Relation.product_of_sizes sizes in
        match Containment.verify_witness q1 q2 p with
        | Some (card, hom2) -> Some (p, card, hom2)
        | None -> try_k (k + 1)
      end
    in
    try_k 1

let locality_holds q1 q2 p ~phi =
  let q1 = Query.dedup_atoms q1 and q2 = Query.dedup_atoms q2 in
  if Relation.arity p <> Query.nvars q1 then
    invalid_arg "Witness.locality_holds: arity mismatch";
  if Array.length phi <> Query.nvars q2 then
    invalid_arg "Witness.locality_holds: phi length mismatch";
  let db = Database.of_vrelation ~annotate:true q1 p in
  let annotated_p =
    Relation.of_list ~arity:(Relation.arity p)
      (List.map
         (fun row ->
           Array.mapi (fun i v -> Value.Tag (Query.var_name q1 i, v)) row)
         (Relation.to_list p))
  in
  let name_to_var = Hashtbl.create 16 in
  Array.iteri
    (fun i name -> Hashtbl.replace name_to_var name i)
    (Query.var_names q1);
  let decode = function
    | Value.Tag (name, _) -> Hashtbl.find_opt name_to_var name
    | Value.Int _ | Value.Str _ | Value.Pair _ | Value.Tuple _ -> None
  in
  let t = Treedec.of_query q2 in
  let bags = Treedec.bags t in
  Array.for_all
    (fun bag ->
      let bag_vars = Varset.to_list bag in
      let reindex = Hashtbl.create 8 in
      List.iteri (fun i v -> Hashtbl.replace reindex v i) bag_vars;
      let atoms_t =
        List.filter_map
          (fun a ->
            if Varset.subset (Query.atom_vars a) bag then
              Some
                { a with
                  Query.args =
                    Array.map (fun v -> Hashtbl.find reindex v) a.Query.args }
            else None)
          (Query.atoms q2)
      in
      (* Variables of the bag not covered by any atom never constrain the
         check; restrict to the covered ones. *)
      let covered =
        List.fold_left
          (fun acc a -> Varset.union acc (Query.atom_vars a))
          Varset.empty atoms_t
      in
      match atoms_t with
      | [] -> true
      | _ ->
        (* Build the sub-query Q_t over the covered re-indexed variables
           (compact the indices once more). *)
        let compact = Hashtbl.create 8 in
        let next = ref 0 in
        Varset.fold_elements
          (fun v () ->
            Hashtbl.replace compact v !next;
            incr next)
          covered ();
        let qt =
          Query.make ~nvars:!next
            (List.map
               (fun a ->
                 { a with
                   Query.args =
                     Array.map (fun v -> Hashtbl.find compact v) a.Query.args })
               atoms_t)
        in
        let covered_orig =
          List.filter (fun v -> Varset.mem (Hashtbl.find reindex v) covered) bag_vars
        in
        let proj_cols = Array.of_list (List.map (fun v -> phi.(v)) covered_orig) in
        let projected = Relation.project proj_cols annotated_p in
        List.for_all
          (fun g ->
            (* Does g decode to φ on the covered bag variables? *)
            let matches_phi =
              List.for_all
                (fun v ->
                  let slot = Hashtbl.find compact (Hashtbl.find reindex v) in
                  match decode g.(slot) with
                  | Some q1_var -> q1_var = phi.(v)
                  | None -> false)
                covered_orig
            in
            if not matches_phi then true
            else begin
              let tuple =
                Array.of_list
                  (List.map
                     (fun v -> g.(Hashtbl.find compact (Hashtbl.find reindex v)))
                     covered_orig)
              in
              Relation.mem tuple projected
            end)
          (Hom.enumerate qt db))
    bags

let normal_witness ?max_factors q1 q2 =
  let ineq = Containment.eq8 q1 q2 in
  match Maxii.valid_over Cones.Normal ineq with
  | Ok () -> None
  | Error h_normal ->
    Containment.witness_from_normal ?max_factors (Query.dedup_atoms q1)
      (Query.dedup_atoms q2) h_normal
