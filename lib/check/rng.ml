(* SplitMix64 (Steele–Lea–Flood), the usual seeding PRNG of JDK /
   xoshiro fame: a 64-bit counter stream through a bijective finalizer.
   State is one int64, so [derive] can jump to any iteration in O(1). *)

type t = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { s = Int64.mul (Int64.of_int seed) 0x632BE59BD9B4E019L }

let next t =
  t.s <- Int64.add t.s golden;
  let z = t.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let derive seed i =
  (* Mix the iteration index through one finalizer round before adding,
     so [derive s 0, derive s 1, …] are not merely shifted streams. *)
  let t = create seed in
  let k = next { s = Int64.mul (Int64.of_int i) golden } in
  t.s <- Int64.add t.s k;
  t

let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty interval";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))
