(** The differential suites: each cross-checks a fast production path
    against an independent oracle.

    - [logint]: the three-stage exact {!Bagcqc_num.Logint.sign} against a
      slow common-denominator [Bigint.pow] oracle (when the exponents
      permit one — the seed algorithm, kept here as the reference),
      against the float-interval screen whenever it is decisive, and
      against algebraic sign laws (negation, cancellation, doubling,
      positive scaling).
    - [simplex]: sparse vs dense engines on random LPs — same status,
      equal optimal value, and each engine's point checked feasible and
      on-objective by exact arithmetic.
    - [decide]: the full containment pipeline at [jobs = 1] vs
      [jobs = 2] (sequential vs speculative-parallel control flow), plus
      the internal soundness oracles: a [Contained] certificate must
      re-verify ({!Bagcqc_entropy.Certificate.check}) and a
      [Not_contained] witness must actually separate the counts.
    - [parser]: {!Bagcqc_cq.Parser.parse_result} never raises on
      arbitrary near-grammar strings, and accepted queries survive a
      print/reparse round trip. *)

val all : Runner.t list
(** In fixed order: logint, simplex, decide, parser. *)

val find : string -> Runner.t option
