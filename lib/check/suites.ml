open Bagcqc_num
open Bagcqc_lp
open Bagcqc_cq
open Bagcqc_core

let ( let* ) = Result.bind

let require cond fmt =
  Printf.ksprintf (fun msg -> if cond then Ok () else Error msg) fmt

(* ---------------- logint ---------------- *)

(* The seed implementation of [Logint.sign], kept as the reference
   oracle: clear denominators, materialize both sides as full [Bigint]
   powers, compare.  Only usable when every cleared exponent fits an
   [int] and the products stay small — exactly the regime the seed
   supported; outside it the suite falls back to the other oracles. *)
let slow_exact_sign terms =
  let d =
    List.fold_left
      (fun acc (_, c) ->
        let den = Rat.den c in
        Bigint.mul acc (Bigint.div den (Bigint.gcd acc den)))
      Bigint.one terms
  in
  let exps =
    List.map
      (fun (b, c) -> (b, Bigint.mul (Rat.num c) (Bigint.div d (Rat.den c))))
      terms
  in
  let feasible =
    List.fold_left
      (fun bits (b, e) ->
        match bits, Bigint.to_int_opt e with
        | Some bits, Some e when abs e <= 100_000 ->
          Some (bits + (abs e * Bigint.num_bits b))
        | _ -> None)
      (Some 0) exps
  in
  match feasible with
  | None | Some 0 -> if exps = [] then Some 0 else None
  | Some bits when bits > 40_000 -> None
  | Some _ ->
    let pos = ref Bigint.one and neg = ref Bigint.one in
    List.iter
      (fun (b, e) ->
        match Bigint.to_int_opt e with
        | Some e when e > 0 -> pos := Bigint.mul !pos (Bigint.pow b e)
        | Some e when e < 0 -> neg := Bigint.mul !neg (Bigint.pow b (-e))
        | _ -> ())
      exps;
    let c = Bigint.compare !pos !neg in
    Some (if c > 0 then 1 else if c < 0 then -1 else 0)

let check_logint case =
  let t = Gen.build_logint case in
  let s = Logint.sign t in
  let* () = require (s >= -1 && s <= 1) "sign returned %d" s in
  let* () =
    match Logint.sign_float_interval t with
    | Some fs -> require (fs = s) "float-interval oracle says %d, sign says %d" fs s
    | None -> Ok ()
  in
  let* () =
    match slow_exact_sign (Logint.terms t) with
    | Some es -> require (es = s) "slow exact oracle says %d, sign says %d" es s
    | None -> Ok ()
  in
  let* () =
    require (Logint.sign (Logint.neg t) = -s) "sign(-t) <> -sign(t) (= %d)" s
  in
  let* () =
    require (Logint.sign (Logint.sub t t) = 0) "sign(t - t) <> 0"
  in
  let* () = require (Logint.sign (Logint.add t t) = s) "sign(t + t) <> sign(t)" in
  require
    (Logint.sign (Logint.scale (Rat.of_ints 2 3) t) = s)
    "sign(2/3 * t) <> sign(t)"

let logint_suite =
  Runner.Suite
    { name = "logint";
      doc = "exact Logint.sign vs float-interval, slow-exact and sign laws";
      gen = Gen.logint_case;
      show = Gen.show_logint;
      shrink = Gen.shrink_logint;
      check = check_logint }

(* ---------------- simplex ---------------- *)

let eval_row x row =
  List.fold_left
    (fun acc (i, c) -> Rat.add acc (Rat.mul c x.(i)))
    Rat.zero row

let point_feasible (case : Gen.lp_case) x =
  Array.for_all (fun v -> Rat.sign v >= 0) x
  && List.for_all
       (fun (row, op, b) ->
         let v = eval_row x row in
         match op with
         | Simplex.Le -> Rat.compare v b <= 0
         | Simplex.Ge -> Rat.compare v b >= 0
         | Simplex.Eq -> Rat.equal v b)
       case.Gen.rows

let objective_value (case : Gen.lp_case) x =
  List.fold_left
    (fun (acc, i) c -> (Rat.add acc (Rat.mul c x.(i)), i + 1))
    (Rat.zero, 0) case.Gen.obj
  |> fst

let check_lp case =
  let p = Gen.build_lp case in
  let check_point engine x v =
    let* () =
      require (point_feasible case x) "%s point violates a constraint" engine
    in
    require
      (Rat.equal (objective_value case x) v)
      "%s point is off its reported objective" engine
  in
  match Simplex.solve_with Dense p, Simplex.solve_with Sparse p with
  | Simplex.Optimal (v1, x1), Simplex.Optimal (v2, x2) ->
    let* () =
      require (Rat.equal v1 v2) "optimal values differ: dense %s, sparse %s"
        (Rat.to_string v1) (Rat.to_string v2)
    in
    let* () = check_point "dense" x1 v1 in
    check_point "sparse" x2 v2
  | Simplex.Unbounded, Simplex.Unbounded
  | Simplex.Infeasible, Simplex.Infeasible -> Ok ()
  | o1, o2 ->
    let name = function
      | Simplex.Optimal _ -> "Optimal"
      | Simplex.Unbounded -> "Unbounded"
      | Simplex.Infeasible -> "Infeasible"
    in
    Error (Printf.sprintf "status mismatch: dense %s, sparse %s" (name o1) (name o2))

let simplex_suite =
  Runner.Suite
    { name = "simplex";
      doc = "sparse vs dense simplex: status, value, exact feasibility";
      gen = Gen.lp_case;
      show = Gen.show_lp;
      shrink = Gen.shrink_lp;
      check = check_lp }

(* ---------------- float_vs_exact ---------------- *)

(* Differential check for the hybrid LP pipeline (DESIGN.md §4f): the
   float-first mode must agree with the exact oracle on every verdict,
   its optimal points must be exactly feasible at exactly the reported
   value, and every certificate the cone layer accepts must pass the
   exact, LP-independent [Certificate.check].  Global-state discipline:
   the mode flip and the cache bypass are scoped with [Fun.protect], and
   the solver cache is cleared around the cone runs so the two modes
   cannot answer each other's queries from the cache. *)

let with_lp_mode mode f =
  let saved = !Simplex.default_mode in
  Simplex.default_mode := mode;
  Fun.protect ~finally:(fun () -> Simplex.default_mode := saved) f

let without_solver_cache f =
  let saved = !Bagcqc_engine.Solver.caching in
  Bagcqc_engine.Solver.caching := false;
  Bagcqc_engine.Solver.clear ();
  Fun.protect
    ~finally:(fun () ->
      Bagcqc_engine.Solver.caching := saved;
      Bagcqc_engine.Solver.clear ())
    f

let outcome_name = function
  | Simplex.Optimal _ -> "Optimal"
  | Simplex.Unbounded -> "Unbounded"
  | Simplex.Infeasible -> "Infeasible"

let check_hybrid_lp case =
  let p = Gen.build_lp case in
  match Simplex.solve ~mode:Simplex.Exact p,
        Simplex.solve ~mode:Simplex.Float_first p
  with
  | Simplex.Optimal (ve, _), Simplex.Optimal (vh, xh) ->
    let* () =
      require (Rat.equal ve vh) "optimal values differ: exact %s, hybrid %s"
        (Rat.to_string ve) (Rat.to_string vh)
    in
    let* () =
      require (point_feasible case xh) "hybrid point violates a constraint"
    in
    require
      (Rat.equal (objective_value case xh) vh)
      "hybrid point is off its reported objective"
  | Simplex.Unbounded, Simplex.Unbounded
  | Simplex.Infeasible, Simplex.Infeasible -> Ok ()
  | oe, oh ->
    Error
      (Printf.sprintf "status mismatch: exact %s, hybrid %s"
         (outcome_name oe) (outcome_name oh))

let build_side terms =
  List.fold_left
    (fun acc (mask, c) ->
      Bagcqc_entropy.Linexpr.add acc
        (Bagcqc_entropy.Linexpr.term ~coeff:c mask))
    Bagcqc_entropy.Linexpr.zero terms

let check_hybrid_cone ~n sides =
  let module Cones = Bagcqc_entropy.Cones in
  let module Certificate = Bagcqc_entropy.Certificate in
  let es = List.map build_side sides in
  without_solver_cache @@ fun () ->
  let run mode = with_lp_mode mode (fun () -> Cones.valid_max_cert Cones.Gamma ~n es) in
  let ve = run Simplex.Exact in
  let vh = run Simplex.Float_first in
  match ve, vh with
  | Ok (Some ce), Ok (Some ch) ->
    let* () =
      require (Certificate.check ce) "exact-mode certificate fails check"
    in
    require (Certificate.check ch) "hybrid-mode certificate fails check"
  | Error _, Error _ ->
    (* Both modes refute; the refuting polymatroids may be different
       vertices of the same polyhedron, which is fine — the refuters
       were already exact-verified inside the cone layer's duality
       cross-check. *)
    Ok ()
  | Ok None, _ | _, Ok None ->
    Error "gamma backend returned Ok without a certificate"
  | Ok (Some _), Error _ ->
    Error "verdict mismatch: exact says valid, hybrid refutes"
  | Error _, Ok (Some _) ->
    Error "verdict mismatch: exact refutes, hybrid says valid"

let check_hybrid = function
  | Gen.Raw_lp case -> check_hybrid_lp case
  | Gen.Cone_gamma { n; sides } -> check_hybrid_cone ~n sides

let float_vs_exact_suite =
  Runner.Suite
    { name = "float_vs_exact";
      doc =
        "hybrid (float-first) vs exact LP: verdicts, exact feasibility, \
         certificate checks";
      gen = Gen.hybrid_case;
      show = Gen.show_hybrid;
      shrink = Gen.shrink_hybrid;
      check = check_hybrid }

(* ---------------- lazy_vs_full ---------------- *)

(* Differential check for the lazy cone engine (DESIGN.md §4i): on every
   Γn instance the lazy separation driver must return the same verdict
   as the full materialization, its certificates must pass the exact,
   LP-independent [Certificate.check] *and* prove exactly the generated
   sides, and its refuters must be genuine polymatroids with every side
   strictly negative (a real point of Γn beating the max).  The quick
   (boolean) path is cross-checked against the certificate path too. *)

let with_cone_engine engine f =
  let saved = !Bagcqc_entropy.Cones.default_engine in
  Bagcqc_entropy.Cones.default_engine := engine;
  Fun.protect
    ~finally:(fun () -> Bagcqc_entropy.Cones.default_engine := saved)
    f

let check_lazy_vs_full ({ n; sides } : Gen.lazy_case) =
  let module Cones = Bagcqc_entropy.Cones in
  let module Certificate = Bagcqc_entropy.Certificate in
  let module Polymatroid = Bagcqc_entropy.Polymatroid in
  let module Linexpr = Bagcqc_entropy.Linexpr in
  let es = List.map build_side sides in
  without_solver_cache @@ fun () ->
  let run engine =
    with_cone_engine engine (fun () -> Cones.valid_max_cert Cones.Gamma ~n es)
  in
  let vf = run Cones.Full in
  let vl = run Cones.Lazy in
  let quick engine =
    with_cone_engine engine (fun () -> Cones.valid_max_quick Cones.Gamma ~n es)
  in
  let qf = quick Cones.Full and ql = quick Cones.Lazy in
  let* () =
    require (qf = ql) "quick verdicts differ: full %b, lazy %b" qf ql
  in
  match vf, vl with
  | Ok (Some cf), Ok (Some cl) ->
    let* () = require ql "certificates say valid, quick paths say invalid" in
    let* () =
      require (Certificate.check cf) "full certificate fails check"
    in
    let* () =
      require (Certificate.check cl) "lazy certificate fails check"
    in
    require (Certificate.proves cl ~n es)
      "lazy certificate proves a different inequality"
  | Error hf, Error hl ->
    (* The refuting vertices may differ between engines; each must
       independently be a point of Γn with every side negative. *)
    let* () = require (not ql) "refuted, but quick paths say valid" in
    let refutes tag h =
      let* () =
        require (Polymatroid.is_polymatroid h) "%s refuter not in Γn" tag
      in
      require
        (List.for_all
           (fun e -> Rat.sign (Linexpr.eval (Polymatroid.value h) e) < 0)
           es)
        "%s refuter leaves some side non-negative" tag
    in
    let* () = refutes "full" hf in
    refutes "lazy" hl
  | Ok None, _ | _, Ok None ->
    Error "gamma backend returned Ok without a certificate"
  | Ok (Some _), Error _ ->
    Error "verdict mismatch: full says valid, lazy refutes"
  | Error _, Ok (Some _) ->
    Error "verdict mismatch: full refutes, lazy says valid"

let lazy_vs_full_suite =
  Runner.Suite
    { name = "lazy_vs_full";
      doc =
        "lazy (cutting-plane) vs full (materialized) cone engine: verdicts, \
         certificate checks, refuter soundness";
      gen = Gen.lazy_case;
      show = Gen.show_lazy;
      shrink = Gen.shrink_lazy;
      check = check_lazy_vs_full }

(* ---------------- decide ---------------- *)

let verdict_name = function
  | Containment.Contained _ -> "Contained"
  | Containment.Not_contained _ -> "Not_contained"
  | Containment.Unknown _ -> "Unknown"

let decide_at jobs q1 q2 =
  let prev = Bagcqc_par.Pool.jobs () in
  Bagcqc_par.Pool.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Bagcqc_par.Pool.set_jobs prev)
    (fun () -> Containment.decide q1 q2)

let check_decide (q1, q2) =
  let v1 = decide_at 1 q1 q2 in
  let v2 = decide_at 2 q1 q2 in
  let* () =
    require
      (String.equal (verdict_name v1) (verdict_name v2))
      "verdicts differ: sequential %s, parallel %s" (verdict_name v1)
      (verdict_name v2)
  in
  let sound tag = function
    | Containment.Contained cert ->
      require (Bagcqc_entropy.Certificate.check cert)
        "%s Contained certificate fails Certificate.check" tag
    | Containment.Not_contained w ->
      require
        (w.Containment.card_p > w.Containment.hom2)
        "%s witness does not separate: |P| = %d vs hom2 = %d" tag
        w.Containment.card_p w.Containment.hom2
    | Containment.Unknown _ -> Ok ()
  in
  let* () = sound "sequential" v1 in
  let* () = sound "parallel" v2 in
  match v1, v2 with
  | Containment.Unknown { reason = r1; _ }, Containment.Unknown { reason = r2; _ }
    ->
    require (String.equal r1 r2) "Unknown reasons differ: %S vs %S" r1 r2
  | _ -> Ok ()

let decide_suite =
  Runner.Suite
    { name = "decide";
      doc = "Containment.decide at jobs=1 vs jobs=2, plus verdict soundness";
      gen = Gen.query_pair;
      show = Gen.show_query_pair;
      shrink = Gen.shrink_query_pair;
      check = check_decide }

(* ---------------- parser ---------------- *)

let check_parser s =
  match Parser.parse_result s with
  | Error _ -> Ok () (* rejection is fine; raising is the bug *)
  | Ok q ->
    let printed = Query.to_string q in
    (match Parser.parse_result printed with
     | Ok q' ->
       require (Query.equal q q') "print/reparse changed the query: %S" printed
     | Error msg ->
       Error
         (Printf.sprintf "accepted, but its printing %S is rejected: %s"
            printed msg))

let parser_suite =
  Runner.Suite
    { name = "parser";
      doc = "Parser.parse_result totality and print/reparse stability";
      gen = Gen.parser_case;
      show = Gen.show_string;
      shrink = Gen.shrink_string;
      check = check_parser }

let all =
  [ logint_suite; simplex_suite; float_vs_exact_suite; lazy_vs_full_suite;
    decide_suite; parser_suite ]

let find name = List.find_opt (fun s -> String.equal (Runner.name s) name) all
