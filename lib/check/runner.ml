type t =
  | Suite : {
      name : string;
      doc : string;
      gen : Rng.t -> 'c;
      show : 'c -> string;
      shrink : 'c -> 'c list;
      check : 'c -> (unit, string) result;
    }
      -> t

let name (Suite s) = s.name
let doc (Suite s) = s.doc

type failure = {
  iteration : int;
  seed : int;
  case : string;
  original : string;
  message : string;
  shrink_steps : int;
}

type outcome = {
  suite : string;
  iters : int;
  elapsed : float;
  failure : failure option;
}

(* An exception out of a check is itself a finding — "never raises" is
   one of the properties under test — so it must not abort the run. *)
let run_case check c =
  match check c with
  | Ok () -> None
  | Error msg -> Some msg
  | exception e -> Some ("exception: " ^ Printexc.to_string e)

let max_shrink_steps = 500

let shrink_to_fixpoint shrink check c0 msg0 =
  let cur = ref c0 and msg = ref msg0 and steps = ref 0 in
  let improving = ref true in
  while !improving && !steps < max_shrink_steps do
    match
      List.find_map
        (fun cand ->
          match run_case check cand with
          | Some m -> Some (cand, m)
          | None -> None)
        (shrink !cur)
    with
    | Some (cand, m) ->
      cur := cand;
      msg := m;
      incr steps
    | None -> improving := false
  done;
  (!cur, !msg, !steps)

let run ~iters ~seed (Suite s) =
  let t0 = Unix.gettimeofday () in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < iters do
    let rng = Rng.derive seed !i in
    let case = s.gen rng in
    (match run_case s.check case with
     | None -> ()
     | Some msg ->
       let shrunk, msg', steps = shrink_to_fixpoint s.shrink s.check case msg in
       failure :=
         Some
           { iteration = !i;
             seed;
             case = s.show shrunk;
             original = s.show case;
             message = msg';
             shrink_steps = steps });
    incr i
  done;
  { suite = s.name;
    iters = !i;
    elapsed = Unix.gettimeofday () -. t0;
    failure = !failure }

let pp_failure ~suite fmt f =
  Format.fprintf fmt
    "suite %s: FAILED at iteration %d (seed %d)@\n\
    \  case:     %s@\n\
     %s\
    \  error:    %s@\n\
    \  reproduce: fuzz --suite %s --iters %d --seed %d@\n"
    suite f.iteration f.seed f.case
    (if String.equal f.case f.original then ""
     else
       Format.asprintf "  original: %s@\n  (shrunk in %d steps)@\n" f.original
         f.shrink_steps)
    f.message suite (f.iteration + 1) f.seed
