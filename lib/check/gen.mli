(** Seeded case generators (and their shrinkers and printers) for the
    differential fuzzing suites.

    Each case is a plain recipe — term lists, sparse rows, atom lists,
    raw strings — rather than the built value, so a failing case can be
    printed as a reproducer and shrunk structurally before being
    rebuilt. *)

open Bagcqc_num
open Bagcqc_lp
open Bagcqc_cq

(** {2 Logint terms} *)

type logint_case = (int * Rat.t) list
(** Raw [(base, coefficient)] terms: bases [>= 2], possibly composite and
    repeated; coefficients possibly huge (to push cleared-denominator
    exponents past native-int range). *)

val logint_case : Rng.t -> logint_case
val build_logint : logint_case -> Logint.t
val shrink_logint : logint_case -> logint_case list
val show_logint : logint_case -> string

(** {2 LP problems} *)

type lp_case = {
  nv : int;
  obj : Rat.t list;  (** dense objective, length [nv] *)
  rows : ((int * Rat.t) list * Simplex.op * Rat.t) list;
      (** sparse row, relation, right-hand side *)
}

val lp_case : Rng.t -> lp_case
val build_lp : lp_case -> Simplex.problem
val shrink_lp : lp_case -> lp_case list
val show_lp : lp_case -> string

(** {2 Hybrid (float-first vs exact) LP cases} *)

type hybrid_case =
  | Raw_lp of lp_case  (** a random LP, solved in both modes directly *)
  | Cone_gamma of { n : int; sides : (int * Rat.t) list list }
      (** a Γn max-inequality as raw [(mask, coeff)] sides, driven
          through [Cones.valid_max_cert] in both modes *)

val hybrid_case : Rng.t -> hybrid_case
val shrink_hybrid : hybrid_case -> hybrid_case list
val show_hybrid : hybrid_case -> string

(** {2 Lazy vs full cone-engine cases} *)

type lazy_case = { n : int; sides : (int * Rat.t) list list }
(** A Γn max-inequality as raw [(mask, coeff)] sides, decided under both
    cone engines by the [lazy_vs_full] suite.  Sized n = 2..4 — large
    enough that the separation loop and the symmetry layer do real work,
    small enough for tens of thousands of iterations. *)

val lazy_case : Rng.t -> lazy_case
val shrink_lazy : lazy_case -> lazy_case list
val show_lazy : lazy_case -> string

(** {2 Boolean query pairs} *)

val compact_atoms : (string * int list) list -> Query.t
(** Build a Boolean query from raw [(rel, args)] atoms, remapping the
    variables actually used onto [0 .. n-1] so [Query.make]'s
    every-variable-occurs rule holds by construction.  Shared with the
    stratified corpus generator ({!Corpus}). *)

val query : Rng.t -> Query.t
(** Small random Boolean query over the vocabulary
    [R/2, S/2, T/1] — sized for full [Containment.decide] pipelines. *)

val query_pair : Rng.t -> Query.t * Query.t
val shrink_query_pair : Query.t * Query.t -> (Query.t * Query.t) list
val show_query_pair : Query.t * Query.t -> string

(** {2 Parser inputs} *)

val parser_case : Rng.t -> string
(** A mix of unconstrained strings over a query-ish alphabet and
    well-formed queries damaged by a few random edits — the latter sit
    near the grammar's boundary where partial-parse bugs live. *)

val shrink_string : string -> string list
val show_string : string -> string
