(** Suite runner: deterministic iteration, greedy shrinking, reproducer
    text.

    A suite packages a generator with a differential check.  The runner
    derives one RNG stream per iteration from [(seed, iteration)], so a
    failure report names the exact pair that rebuilds the case; on
    failure it shrinks greedily (first failing candidate wins, bounded
    steps) before printing. *)

type t =
  | Suite : {
      name : string;
      doc : string;  (** one line: what is cross-checked against what *)
      gen : Rng.t -> 'c;
      show : 'c -> string;
      shrink : 'c -> 'c list;
      check : 'c -> (unit, string) result;
          (** [Error msg] {e or} any exception is a finding *)
    }
      -> t

val name : t -> string
val doc : t -> string

type failure = {
  iteration : int;  (** 0-based iteration that failed *)
  seed : int;
  case : string;      (** shrunk case *)
  original : string;  (** as generated, before shrinking *)
  message : string;   (** from the shrunk case *)
  shrink_steps : int;
}

type outcome = {
  suite : string;
  iters : int;     (** iterations executed (stops at first failure) *)
  elapsed : float; (** wall-clock seconds *)
  failure : failure option;
}

val run : iters:int -> seed:int -> t -> outcome

val pp_failure : suite:string -> Format.formatter -> failure -> unit
(** Human-readable block including the [--suite … --iters … --seed …]
    reproduction line. *)
