open Bagcqc_num
open Bagcqc_lp
open Bagcqc_cq

(* ---------------- Logint ---------------- *)

type logint_case = (int * Rat.t) list

(* Coefficient pools: small rationals exercise the refinement and float
   stages; the huge numerators (scaled by ~1e15) push the cleared-
   denominator exponents past [Bigint.to_int_opt] range, the regime where
   the seed implementation died. *)
let coeff rng =
  let num = (if Rng.bool rng then 1 else -1) * Rng.range rng 1 12 in
  let den = Rng.range rng 1 6 in
  let num = if Rng.int rng 4 = 0 then num * 1_000_000_000_000_003 else num in
  Rat.of_ints num den

let base rng =
  match Rng.int rng 4 with
  | 0 -> Rng.range rng 2 12
  | 1 -> Rng.range rng 2 3000
  | 2 ->
    (* Products of small primes: rich gcd structure for the coprime
       refinement to chew on. *)
    let primes = [ 2; 3; 5; 7; 11 ] in
    let p () = Rng.choose rng primes in
    p () * p () * (if Rng.bool rng then p () else 1)
  | _ -> Rng.range rng 2 64

let logint_case rng =
  let k = Rng.range rng 1 5 in
  let plain = List.init k (fun _ -> (base rng, coeff rng)) in
  if Rng.int rng 3 = 0 then begin
    (* Append an exactly-cancelling bundle c·log(ab) − c·log a − c·log b:
       invisible to floats at these magnitudes, found only by the exact
       stages. *)
    let a = Rng.range rng 2 50 and b = Rng.range rng 2 50 in
    let c = coeff rng in
    (a * b, c) :: (a, Rat.neg c) :: (b, Rat.neg c) :: plain
  end
  else plain

let build_logint case =
  List.fold_left
    (fun acc (b, c) -> Logint.add acc (Logint.scale c (Logint.log_int b)))
    Logint.zero case

let shrink_logint case =
  let removals =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) case) case
  in
  let simplified =
    List.concat
      (List.mapi
         (fun i (b, c) ->
           let unit = Rat.of_int (Rat.sign c) in
           if Rat.equal c unit then []
           else
             [ List.mapi (fun j t -> if j = i then (b, unit) else t) case ])
         case)
  in
  List.filter (fun c -> c <> []) removals @ simplified

let show_logint case =
  String.concat " + "
    (List.map
       (fun (b, c) -> Printf.sprintf "%s*log(%d)" (Rat.to_string c) b)
       case)

(* ---------------- LP problems ---------------- *)

type lp_case = {
  nv : int;
  obj : Rat.t list;
  rows : ((int * Rat.t) list * Simplex.op * Rat.t) list;
}

let small_rat ?(lo = -3) ?(hi = 3) rng =
  Rat.of_ints (Rng.range rng lo hi) (Rng.range rng 1 3)

let lp_row rng nv =
  let cols =
    List.filter (fun _ -> Rng.int rng 3 > 0) (List.init nv Fun.id)
  in
  let cols = if cols = [] then [ Rng.int rng nv ] else cols in
  let row =
    List.filter_map
      (fun i ->
        let c = small_rat rng in
        if Rat.is_zero c then None else Some (i, c))
      cols
  in
  let op = Rng.choose rng [ Simplex.Le; Simplex.Ge; Simplex.Eq ] in
  (row, op, small_rat ~lo:(-4) ~hi:4 rng)

let lp_case rng =
  let nv = Rng.range rng 1 4 in
  let nrows = Rng.range rng 1 7 in
  { nv;
    obj = List.init nv (fun _ -> small_rat rng);
    rows = List.init nrows (fun _ -> lp_row rng nv) }

let build_lp { nv; obj; rows } =
  { Simplex.num_vars = nv;
    objective = Array.of_list obj;
    constraints =
      List.map (fun (r, op, b) -> Simplex.sparse_constr r op b) rows }

let shrink_lp case =
  let drop_row =
    List.mapi
      (fun i _ -> { case with rows = List.filteri (fun j _ -> j <> i) case.rows })
      case.rows
  in
  let zero_obj =
    if List.for_all Rat.is_zero case.obj then []
    else [ { case with obj = List.map (fun _ -> Rat.zero) case.obj } ]
  in
  drop_row @ zero_obj

let show_op = function
  | Simplex.Le -> "<="
  | Simplex.Ge -> ">="
  | Simplex.Eq -> "="

let show_lp { nv; obj; rows } =
  Printf.sprintf "nv=%d min[%s] s.t. %s" nv
    (String.concat " " (List.map Rat.to_string obj))
    (String.concat "; "
       (List.map
          (fun (r, op, b) ->
            Printf.sprintf "%s %s %s"
              (String.concat "+"
                 (List.map
                    (fun (i, c) -> Printf.sprintf "%s*x%d" (Rat.to_string c) i)
                    r))
              (show_op op) (Rat.to_string b))
          rows))

(* ---------------- hybrid (float-first vs exact) LP cases ------------ *)

(* Two populations: raw random LPs (reusing [lp_case], which skews small
   and degenerate — the regime where float tolerances misjudge bases),
   and Γn cone instances driven through the full Cones pipeline, whose
   Farkas/refutation LPs are the workload the hybrid mode exists for.
   Sides are raw [(mask, coeff)] term lists so failures print and shrink
   structurally. *)
type hybrid_case =
  | Raw_lp of lp_case
  | Cone_gamma of { n : int; sides : (int * Rat.t) list list }

let cone_side rng ~n =
  let nterms = Rng.range rng 1 3 in
  List.init nterms (fun _ ->
      let mask = Rng.range rng 1 ((1 lsl n) - 1) in
      let c = small_rat rng in
      (mask, (if Rat.is_zero c then Rat.one else c)))

let hybrid_case rng =
  if Rng.int rng 3 < 2 then Raw_lp (lp_case rng)
  else begin
    let n = Rng.range rng 2 3 in
    let k = Rng.range rng 1 3 in
    Cone_gamma { n; sides = List.init k (fun _ -> cone_side rng ~n) }
  end

let shrink_hybrid = function
  | Raw_lp case -> List.map (fun c -> Raw_lp c) (shrink_lp case)
  | Cone_gamma { n; sides } ->
    let drop_side =
      if List.length sides <= 1 then []
      else
        List.mapi
          (fun i _ ->
            Cone_gamma { n; sides = List.filteri (fun j _ -> j <> i) sides })
          sides
    in
    let drop_term =
      List.concat
        (List.mapi
           (fun i side ->
             if List.length side <= 1 then []
             else
               List.mapi
                 (fun t _ ->
                   Cone_gamma
                     { n;
                       sides =
                         List.mapi
                           (fun j s ->
                             if j = i then List.filteri (fun u _ -> u <> t) s
                             else s)
                           sides })
                 side)
           sides)
    in
    drop_side @ drop_term

let show_hybrid = function
  | Raw_lp case -> "lp: " ^ show_lp case
  | Cone_gamma { n; sides } ->
    Printf.sprintf "gamma n=%d max(%s)" n
      (String.concat " ; "
         (List.map
            (fun side ->
              String.concat " + "
                (List.map
                   (fun (mask, c) ->
                     Printf.sprintf "%s*h(%d)" (Rat.to_string c) mask)
                   side))
            sides))

(* ---------------- lazy vs full cone cases ---------------- *)

(* Γn instances for the lazy-vs-full cone differential suite: the same
   raw [(mask, coeff)] side encoding as [hybrid_case]'s cone population,
   one size further out — the separation loop and the symmetry layer
   only do interesting work from n = 3 up, and n = 4 reaches instances
   (Ingleton-like) where the two engines walk genuinely different row
   sets to the same verdict. *)
type lazy_case = { n : int; sides : (int * Rat.t) list list }

let lazy_case rng =
  let n = Rng.range rng 2 4 in
  let k = Rng.range rng 1 3 in
  { n; sides = List.init k (fun _ -> cone_side rng ~n) }

let shrink_lazy { n; sides } =
  List.filter_map
    (function
      | Cone_gamma { n; sides } -> Some { n; sides }
      | Raw_lp _ -> None)
    (shrink_hybrid (Cone_gamma { n; sides }))

let show_lazy { n; sides } = show_hybrid (Cone_gamma { n; sides })

(* ---------------- Boolean query pairs ---------------- *)

let vocabulary = [ ("R", 2); ("S", 2); ("T", 1) ]

let compact_atoms atoms =
  (* Remap the variables actually used onto 0..n-1 so [Query.make]'s
     every-variable-occurs rule holds by construction. *)
  let seen = Hashtbl.create 8 in
  let next = ref 0 in
  let remap v =
    match Hashtbl.find_opt seen v with
    | Some i -> i
    | None ->
      let i = !next in
      Hashtbl.add seen v i;
      incr next;
      i
  in
  let atoms =
    List.map
      (fun (rel, args) -> { Query.rel; args = Array.of_list (List.map remap args) })
      atoms
  in
  Query.make ~nvars:!next atoms

let query rng =
  let nv = Rng.range rng 1 3 in
  let natoms = Rng.range rng 1 3 in
  compact_atoms
    (List.init natoms (fun _ ->
         let rel, arity = Rng.choose rng vocabulary in
         (rel, List.init arity (fun _ -> Rng.int rng nv))))

let query_pair rng = (query rng, query rng)

let shrink_query rebuild_pair q =
  let atoms = List.map (fun a -> (a.Query.rel, Array.to_list a.Query.args)) (Query.atoms q) in
  if List.length atoms <= 1 then []
  else
    List.mapi
      (fun i _ ->
        rebuild_pair (compact_atoms (List.filteri (fun j _ -> j <> i) atoms)))
      atoms

let shrink_query_pair (q1, q2) =
  shrink_query (fun q -> (q, q2)) q1 @ shrink_query (fun q -> (q1, q)) q2

let show_query_pair (q1, q2) =
  Printf.sprintf "%s ; %s" (Query.to_string q1) (Query.to_string q2)

(* ---------------- Parser inputs ---------------- *)

let alphabet = "RSTQxyzw()(),,.:-- '\t_019"

let random_string rng =
  let n = Rng.int rng 41 in
  String.init n (fun _ -> alphabet.[Rng.int rng (String.length alphabet)])

let mutate rng s =
  let n = String.length s in
  let c () = alphabet.[Rng.int rng (String.length alphabet)] in
  match Rng.int rng 3 with
  | 0 when n > 0 ->
    (* delete *)
    let i = Rng.int rng n in
    String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
  | 1 ->
    (* insert *)
    let i = Rng.int rng (n + 1) in
    String.sub s 0 i ^ String.make 1 (c ()) ^ String.sub s i (n - i)
  | _ when n > 0 ->
    (* replace *)
    let i = Rng.int rng n in
    String.sub s 0 i ^ String.make 1 (c ()) ^ String.sub s (i + 1) (n - i - 1)
  | _ -> String.make 1 (c ())

let parser_case rng =
  if Rng.bool rng then random_string rng
  else begin
    let s = ref (Query.to_string (query rng)) in
    for _ = 1 to Rng.range rng 1 3 do
      s := mutate rng !s
    done;
    !s
  end

let shrink_string s =
  List.init (String.length s) (fun i ->
      String.sub s 0 i ^ String.sub s (i + 1) (String.length s - i - 1))

let show_string s = Printf.sprintf "%S" s
