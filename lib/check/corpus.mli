(** Seeded, stratified evaluation corpora (ROADMAP item 5).

    A corpus is a list of labeled decision instances — bag-containment
    pairs or Max-IIP inequalities — generated deterministically from an
    integer seed and stratified along the axes the sweep harness reports
    on: instance size [n], relation arity, acyclicity of the containing
    query, and the {e expected verdict} as labeled by the production
    oracle ({!Bagcqc_core.Containment.decide} /
    {!Bagcqc_entropy.Maxii.decide}) at generation time.

    Determinism is byte-level: the same [(kind, seed, total)] triple
    produces the identical serialized file, so checked-in corpora are
    regenerable and diffable ([bench/sweep.exe gen]).  Each stratum is
    filled by rejection sampling from a generator biased toward that
    stratum, with the oracle supplying the label; a stratum that cannot
    be filled within its attempt budget fails loudly rather than
    silently under-filling.

    The declared verdict makes every corpus double as a correctness
    audit: any engine configuration that disagrees with the label (or
    with another configuration) on any instance is a bug — the sweep
    runner checks exactly that, across the cone × LP × jobs matrix. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_cq

type kind = Check | Iip

val kind_name : kind -> string
val kind_of_name : string -> kind option

type payload =
  | Check_pair of { q1 : Query.t; q2 : Query.t }
      (** a Boolean bag-containment instance [Q1 ⊑? Q2] *)
  | Iip_sides of { n : int; sides : (Varset.t * Rat.t) list list }
      (** a Max-IIP [0 ≤? max sides] over [n] variables, sides as raw
          [(mask, coeff)] term lists (the {!Gen} cone encoding) *)

type instance = {
  id : int;            (** position in the corpus, 0-based *)
  stratum : string;    (** e.g. ["chk/contained/acyclic/small"] *)
  n : int;             (** [Q1]'s variable count, resp. the IIP's [n] *)
  arity : int;         (** max relation arity, resp. max side length *)
  acyclic : bool;      (** [Treedec.is_acyclic q2]; always false for IIP *)
  verdict : string;    (** oracle label: [contained]/[not_contained],
                           resp. [valid]/[invalid] *)
  payload : payload;
}

val strata : kind -> (string * int) list
(** The stratum names and their full-profile weights, in generation
    order.  Quotas for a [total] below the weight sum scale down
    proportionally (each stratum keeps at least one instance). *)

val quotas : kind -> total:int -> (string * int) list
(** The actual per-stratum quotas used for a given [total]
    (@raise Invalid_argument if [total < 1]). *)

val build_side : (Varset.t * Rat.t) list -> Linexpr.t
(** Fold a raw term list into the linear expression it denotes — the
    bridge from [Iip_sides] payloads to {!Bagcqc_entropy.Maxii.general}. *)

val oracle : payload -> string
(** The production oracle's verdict tag for this payload, under the
    ambient engine configuration ([Simplex.default_mode],
    [Cones.default_engine]).  [unknown] is possible but never appears in
    a generated corpus (such candidates are rejected). *)

val generate : kind -> seed:int -> total:int -> instance list
(** Generate a corpus: [total] instances distributed over {!strata},
    ids [0 .. total-1] in stratum order.  Pure function of its
    arguments (given a fixed engine configuration for the oracle).
    @raise Invalid_argument if [total < 1].
    @raise Failure if a stratum exhausts its rejection budget. *)

(** {2 Serialization}

    One JSON object per line in the repo's one JSON dialect
    ({!Bagcqc_obs.Json}): a header line carrying [(kind, seed, count)]
    and the stratum table, then one line per instance.  Queries are
    serialized with {!Query.to_string} (print/reparse stability is
    fuzz-verified); rationals as exact [Rat.to_string] strings. *)

type header = { h_kind : kind; h_seed : int; h_count : int }

val header_line : kind -> seed:int -> count:int -> string
val instance_line : instance -> string

val write : out_channel -> kind -> seed:int -> instance list -> unit
(** Header plus one line per instance, ['\n']-terminated (write through
    a binary channel for byte-stable output). *)

val load : string -> (header * instance list, string) result
(** Parse a corpus file back.  Total: malformed lines produce [Error]
    with the offending line number, never an exception. *)
