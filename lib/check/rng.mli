(** Deterministic pseudo-random generator for the differential fuzzer.

    SplitMix64: the whole fuzzing run is a pure function of [(seed,
    iteration)], independent of [Random.State]'s global self-init and of
    the standard library's generator changing across OCaml releases — a
    reproducer line printed on one machine replays bit-for-bit on
    another.  Not cryptographic; statistical quality is ample for test
    generation. *)

type t

val create : int -> t
(** Fresh stream from an integer seed (any int, including 0). *)

val derive : int -> int -> t
(** [derive seed i]: the stream for iteration [i] of a run seeded with
    [seed].  Streams for different [i] are decorrelated, so a failing
    iteration can be replayed without generating its predecessors. *)

val bits : t -> int
(** Next 62 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t n] is uniform-ish on [0 .. n-1].  @raise Invalid_argument if
    [n <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform-ish on the inclusive interval
    [lo .. hi]. *)

val bool : t -> bool

val choose : t -> 'a list -> 'a
(** Uniform pick.  @raise Invalid_argument on an empty list. *)
