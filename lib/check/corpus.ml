open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_cq
open Bagcqc_core
module Json = Bagcqc_obs.Json

type kind = Check | Iip

let kind_name = function Check -> "check" | Iip -> "iip"

let kind_of_name = function
  | "check" -> Some Check
  | "iip" -> Some Iip
  | _ -> None

type payload =
  | Check_pair of { q1 : Query.t; q2 : Query.t }
  | Iip_sides of { n : int; sides : (Varset.t * Rat.t) list list }

type instance = {
  id : int;
  stratum : string;
  n : int;
  arity : int;
  acyclic : bool;
  verdict : string;
  payload : payload;
}

(* ---------------- strata ---------------- *)

(* Each stratum pins a target region (verdict × structure × size) and a
   full-profile weight; the check profile sums to 10_000 and the IIP
   profile to 2_000, so the checked-in corpora use the weights as-is.
   The shape axes for containment: acyclicity of the *containing* query
   Q2 (the axis Theorem 2.7 cares about), Q1's variable count n (the LP
   dimension), and max relation arity (binary base vocabulary vs a
   ternary one). *)

type size = Small | Large | Any_size

type spec =
  | Chk of { verdict : string; cyclic : bool option; size : size; ternary : bool }
      (** [cyclic = None] leaves the acyclicity axis free (ternary strata) *)
  | Ii of { verdict : string; n : int }

let check_specs =
  [
    ("chk/contained/acyclic/small", 1100,
     Chk { verdict = "contained"; cyclic = Some false; size = Small; ternary = false });
    ("chk/contained/acyclic/large", 1100,
     Chk { verdict = "contained"; cyclic = Some false; size = Large; ternary = false });
    ("chk/contained/cyclic/small", 1100,
     Chk { verdict = "contained"; cyclic = Some true; size = Small; ternary = false });
    ("chk/contained/cyclic/large", 1100,
     Chk { verdict = "contained"; cyclic = Some true; size = Large; ternary = false });
    ("chk/not_contained/acyclic/small", 1100,
     Chk { verdict = "not_contained"; cyclic = Some false; size = Small; ternary = false });
    ("chk/not_contained/acyclic/large", 1100,
     Chk { verdict = "not_contained"; cyclic = Some false; size = Large; ternary = false });
    ("chk/not_contained/cyclic/small", 1100,
     Chk { verdict = "not_contained"; cyclic = Some true; size = Small; ternary = false });
    ("chk/not_contained/cyclic/large", 1100,
     Chk { verdict = "not_contained"; cyclic = Some true; size = Large; ternary = false });
    ("chk/contained/ternary", 600,
     Chk { verdict = "contained"; cyclic = None; size = Any_size; ternary = true });
    ("chk/not_contained/ternary", 600,
     Chk { verdict = "not_contained"; cyclic = None; size = Any_size; ternary = true });
  ]

let iip_specs =
  [
    ("iip/valid/n2", 300, Ii { verdict = "valid"; n = 2 });
    ("iip/invalid/n2", 300, Ii { verdict = "invalid"; n = 2 });
    ("iip/valid/n3", 300, Ii { verdict = "valid"; n = 3 });
    ("iip/invalid/n3", 300, Ii { verdict = "invalid"; n = 3 });
    ("iip/valid/n4", 300, Ii { verdict = "valid"; n = 4 });
    ("iip/invalid/n4", 300, Ii { verdict = "invalid"; n = 4 });
    ("iip/valid/n5", 100, Ii { verdict = "valid"; n = 5 });
    ("iip/invalid/n5", 100, Ii { verdict = "invalid"; n = 5 });
  ]

let specs = function Check -> check_specs | Iip -> iip_specs
let strata kind = List.map (fun (name, w, _) -> (name, w)) (specs kind)

let quotas kind ~total =
  if total < 1 then invalid_arg "Corpus.quotas: total < 1";
  let weights = strata kind in
  let k = List.length weights in
  if total <= k then
    (* degenerate profile: one instance each to a prefix of the strata *)
    List.mapi (fun i (name, _) -> (name, if i < total then 1 else 0)) weights
  else begin
    let wsum = List.fold_left (fun a (_, w) -> a + w) 0 weights in
    (* largest-remainder apportionment with a floor of 1 per stratum *)
    let floors = List.map (fun (name, w) -> (name, max 1 (w * total / wsum))) weights in
    let assigned = List.fold_left (fun a (_, q) -> a + q) 0 floors in
    let rem = total - assigned in
    let by_frac =
      List.mapi (fun i (_, w) -> (i, w * total mod wsum)) weights
      |> List.stable_sort (fun (_, a) (_, b) -> compare b a)
      |> List.map fst
    in
    let bump = Array.make k 0 in
    let rec spread rem idxs =
      if rem = 0 then ()
      else
        match idxs with
        | [] -> spread rem by_frac (* rem > k only for tiny weight sums *)
        | i :: tl ->
          if rem > 0 then begin
            bump.(i) <- bump.(i) + 1;
            spread (rem - 1) tl
          end
          else begin
            (* floors overshot (rounding + min-1): trim largest quotas *)
            let j, _ =
              List.fold_left
                (fun (bj, bq) (idx, (_, q)) ->
                  let q = q + bump.(idx) in
                  if q > bq then (idx, q) else (bj, bq))
                (-1, 1)
                (List.mapi (fun idx f -> (idx, f)) floors)
            in
            bump.(j) <- bump.(j) - 1;
            spread (rem + 1) []
          end
    in
    spread rem by_frac;
    List.mapi (fun i (name, q) -> (name, q + bump.(i))) floors
  end

(* ---------------- oracle ---------------- *)

let build_side terms =
  List.fold_left
    (fun acc (mask, c) -> Linexpr.add acc (Linexpr.term ~coeff:c mask))
    Linexpr.zero terms

let oracle = function
  | Check_pair { q1; q2 } -> begin
    match Containment.decide q1 q2 with
    | Containment.Contained _ -> "contained"
    | Containment.Not_contained _ -> "not_contained"
    | Containment.Unknown _ -> "unknown"
  end
  | Iip_sides { n; sides } -> begin
    match Maxii.decide (Maxii.general ~n (List.map build_side sides)) with
    | Maxii.Valid _ -> "valid"
    | Maxii.Invalid _ -> "invalid"
    | Maxii.Unknown _ -> "unknown"
  end

(* ---------------- candidate generators ---------------- *)

let base_vocab = [ ("R", 2); ("S", 2); ("T", 1) ]
let ternary_vocab = [ ("R", 2); ("S", 2); ("T", 1); ("U", 3) ]

let gen_atoms rng ~vocab ~nv ~natoms =
  List.init natoms (fun _ ->
      let rel, arity = Rng.choose rng vocab in
      (rel, List.init arity (fun _ -> Rng.int rng nv)))

let gen_query rng ~vocab ~nv ~natoms =
  Gen.compact_atoms (gen_atoms rng ~vocab ~nv ~natoms)

(* A containing query biased cyclic: an R-triangle (the smallest
   non-α-acyclic hypergraph over a binary vocabulary) plus a few noise
   atoms over the same three variables. *)
let cyclic_query rng ~vocab =
  let tri = [ ("R", [ 0; 1 ]); ("R", [ 1; 2 ]); ("R", [ 2; 0 ]) ] in
  let extra = gen_atoms rng ~vocab ~nv:3 ~natoms:(Rng.int rng 2) in
  Gen.compact_atoms (tri @ extra)

(* A candidate Q1 biased toward [Q1 ⊑ Q2]: collapse Q2's variables onto
   at most [target_nv] names (so the collapse map is a homomorphism
   Q2 → Q1 by construction) and optionally conjoin one extra atom —
   extra atoms only shrink Q1's bag, preserving the homomorphism. *)
let collapse rng ~vocab ~target_nv q2 =
  let map = Array.init (Query.nvars q2) (fun _ -> Rng.int rng target_nv) in
  let collapsed =
    List.map
      (fun a ->
        (a.Query.rel, List.map (fun v -> map.(v)) (Array.to_list a.Query.args)))
      (Query.atoms q2)
  in
  let extra =
    if Rng.bool rng then gen_atoms rng ~vocab ~nv:target_nv ~natoms:1 else []
  in
  Gen.compact_atoms (collapsed @ extra)

let max_arity q1 q2 =
  List.fold_left
    (fun a (_, ar) -> max a ar)
    0
    (Query.vocabulary q1 @ Query.vocabulary q2)

let size_bounds = function Small -> (1, 2) | Large -> (3, 4) | Any_size -> (1, 3)

(* One structural candidate for a containment stratum, before the oracle
   is consulted; [None] when a structural constraint (acyclicity class,
   Q1 size, arity) missed. *)
let chk_candidate rng ~cyclic ~size ~ternary ~verdict =
  let vocab = if ternary then ternary_vocab else base_vocab in
  let q2 =
    match cyclic with
    | Some true -> cyclic_query rng ~vocab
    | Some false | None ->
      if ternary then
        (* force one ternary atom so the stratum actually covers arity 3 *)
        let nv = Rng.range rng 2 3 in
        let u = ("U", List.init 3 (fun _ -> Rng.int rng nv)) in
        Gen.compact_atoms (u :: gen_atoms rng ~vocab ~nv ~natoms:(Rng.range rng 0 2))
      else gen_query rng ~vocab ~nv:(Rng.range rng 1 3) ~natoms:(Rng.range rng 1 3)
  in
  let acyclic = Treedec.is_acyclic q2 in
  match cyclic with
  | Some want when want = acyclic -> None
  | _ ->
    let nv_lo, nv_hi = size_bounds size in
    let target_nv = Rng.range rng nv_lo nv_hi in
    let q1 =
      if verdict = "contained" then collapse rng ~vocab ~target_nv q2
      else gen_query rng ~vocab ~nv:target_nv ~natoms:(Rng.range rng 1 3)
    in
    let n = Query.nvars q1 in
    if n < nv_lo || n > nv_hi then None
    else
      let arity = max_arity q1 q2 in
      if ternary && arity < 3 then None
      else Some { id = 0; stratum = ""; n; arity; acyclic; verdict; payload = Check_pair { q1; q2 } }

let random_side rng ~n =
  let nterms = Rng.range rng 1 3 in
  List.init nterms (fun _ ->
      let mask = Rng.range rng 1 ((1 lsl n) - 1) in
      let c = Rat.of_ints (Rng.range rng (-3) 3) (Rng.range rng 1 3) in
      (mask, if Rat.is_zero c then Rat.one else c))

(* Valid bias: one side that is a non-negative combination of elemental
   Shannon inequalities is ≥ 0 on all of Γn, and max only grows with
   extra sides — so the instance is Γn-valid by construction and the
   oracle call merely produces the certificate. *)
let iip_candidate rng ~n ~verdict =
  let sides =
    if verdict = "valid" then begin
      let elems = Cones.elemental ~n in
      let combo =
        List.fold_left
          (fun acc _ ->
            let c = Rat.of_ints (Rng.range rng 1 3) (Rng.range rng 1 2) in
            Linexpr.add acc (Linexpr.scale c (Rng.choose rng elems)))
          Linexpr.zero
          (List.init (Rng.range rng 1 3) Fun.id)
      in
      Linexpr.terms combo
      :: List.init (Rng.int rng 2) (fun _ -> random_side rng ~n)
    end
    else List.init (Rng.range rng 1 3) (fun _ -> random_side rng ~n)
  in
  let sides = List.filter (fun s -> s <> []) sides in
  if sides = [] then None
  else
    let arity = List.fold_left (fun a s -> max a (List.length s)) 0 sides in
    Some
      { id = 0; stratum = ""; n; arity; acyclic = false; verdict;
        payload = Iip_sides { n; sides } }

(* ---------------- generation ---------------- *)

let attempt_budget = 500

let fill_stratum ~seed ~index ~name ~spec ~quota =
  let rng = Rng.derive seed index in
  let out = ref [] and got = ref 0 and attempts = ref 0 in
  while !got < quota do
    incr attempts;
    if !attempts > attempt_budget * quota then
      failwith
        (Printf.sprintf
           "Corpus: stratum %s exhausted its budget (%d attempts for quota %d, seed %d)"
           name !attempts quota seed);
    let cand =
      match spec with
      | Chk { verdict; cyclic; size; ternary } ->
        chk_candidate rng ~cyclic ~size ~ternary ~verdict
      | Ii { verdict; n } -> iip_candidate rng ~n ~verdict
    in
    match cand with
    | None -> ()
    | Some inst ->
      if oracle inst.payload = inst.verdict then begin
        out := { inst with stratum = name } :: !out;
        incr got
      end
  done;
  List.rev !out

let generate kind ~seed ~total =
  if total < 1 then invalid_arg "Corpus.generate: total < 1";
  let qs = quotas kind ~total in
  let insts =
    List.concat
      (List.mapi
         (fun index ((name, quota), (_, _, spec)) ->
           if quota = 0 then []
           else fill_stratum ~seed ~index ~name ~spec ~quota)
         (List.combine qs (specs kind)))
  in
  List.mapi (fun id inst -> { inst with id }) insts

(* ---------------- serialization ---------------- *)

type header = { h_kind : kind; h_seed : int; h_count : int }

let num i = Json.Num (float_of_int i)

let header_line kind ~seed ~count =
  Json.to_string
    (Obj
       [
         ("v", num 1);
         ("type", Str "corpus");
         ("kind", Str (kind_name kind));
         ("seed", num seed);
         ("count", num count);
         ("strata", Arr (List.map (fun (s, w) -> Json.Arr [ Str s; num w ]) (strata kind)));
       ])

let json_of_sides sides =
  Json.Arr
    (List.map
       (fun side ->
         Json.Arr
           (List.map
              (fun (mask, c) -> Json.Arr [ num mask; Json.Str (Rat.to_string c) ])
              side))
       sides)

let instance_line inst =
  let payload_fields =
    match inst.payload with
    | Check_pair { q1; q2 } ->
      [ ("q1", Json.Str (Query.to_string q1)); ("q2", Json.Str (Query.to_string q2)) ]
    | Iip_sides { n = _; sides } -> [ ("sides", json_of_sides sides) ]
  in
  Json.to_string
    (Obj
       ([
          ("id", num inst.id);
          ("stratum", Json.Str inst.stratum);
          ("n", num inst.n);
          ("arity", num inst.arity);
          ("acyclic", Json.Bool inst.acyclic);
          ("verdict", Json.Str inst.verdict);
        ]
       @ payload_fields))

let write oc kind ~seed insts =
  output_string oc (header_line kind ~seed ~count:(List.length insts));
  output_char oc '\n';
  List.iter
    (fun inst ->
      output_string oc (instance_line inst);
      output_char oc '\n')
    insts

let parse_header line =
  let j = Json.parse line in
  if Json.as_int (Json.member "v" j) <> 1 then failwith "unsupported corpus version";
  let kind =
    match kind_of_name (Json.as_str (Json.member "kind" j)) with
    | Some k -> k
    | None -> failwith "unknown corpus kind"
  in
  { h_kind = kind;
    h_seed = Json.as_int (Json.member "seed" j);
    h_count = Json.as_int (Json.member "count" j) }

let parse_instance kind line =
  let j = Json.parse line in
  let n = Json.as_int (Json.member "n" j) in
  let payload =
    match kind with
    | Check ->
      let parse_q field =
        match Parser.parse_result (Json.as_str (Json.member field j)) with
        | Ok q -> q
        | Error msg -> failwith (field ^ ": " ^ msg)
      in
      Check_pair { q1 = parse_q "q1"; q2 = parse_q "q2" }
    | Iip ->
      let sides =
        List.map
          (fun side ->
            List.map
              (fun term ->
                match Json.as_arr term with
                | [ mask; c ] -> (Json.as_int mask, Rat.of_string (Json.as_str c))
                | _ -> failwith "malformed side term")
              (Json.as_arr side))
          (Json.as_arr (Json.member "sides" j))
      in
      Iip_sides { n; sides }
  in
  {
    id = Json.as_int (Json.member "id" j);
    stratum = Json.as_str (Json.member "stratum" j);
    n;
    arity = Json.as_int (Json.member "arity" j);
    acyclic = (match Json.member "acyclic" j with Bool b -> b | _ -> failwith "acyclic: expected bool");
    verdict = Json.as_str (Json.member "verdict" j);
    payload;
  }

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      let next () =
        match input_line ic with
        | line ->
          incr lineno;
          Some line
        | exception End_of_file -> None
      in
      match next () with
      | None -> Error (path ^ ": empty corpus file")
      | Some first -> (
        match parse_header first with
        | exception (Json.Parse_error msg | Failure msg) ->
          Error (Printf.sprintf "%s:%d: %s" path !lineno msg)
        | header ->
          let rec go acc =
            match next () with
            | None -> Ok (header, List.rev acc)
            | Some "" -> go acc
            | Some line -> (
              match parse_instance header.h_kind line with
              | inst -> go (inst :: acc)
              | exception (Json.Parse_error msg | Failure msg) ->
                Error (Printf.sprintf "%s:%d: %s" path !lineno msg)
              | exception Invalid_argument msg ->
                Error (Printf.sprintf "%s:%d: %s" path !lineno msg))
          in
          go []))
