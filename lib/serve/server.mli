(** The [bagcqc serve] daemon: containment-as-a-service over the
    {!Protocol} wire format.

    {2 Threading model}

    The process-global domain pool ({!Bagcqc_par.Pool}) admits exactly
    one parallel region at a time, so the server funnels all solving
    through {e one} dispatcher thread:

    - the calling thread runs the accept loop ([select] over the listen
      socket and a self-pipe that signal handlers and the [shutdown]
      verb write to);
    - each connection gets a reader thread that parses lines, answers
      [ping]/[stats] inline, and pushes [check] requests onto a bounded
      admission queue (full queue → ["overloaded"], draining →
      ["shutting_down"], already-expired deadline →
      ["deadline_exceeded"] — the queue sheds load, it never hangs);
    - the single dispatcher thread drains the queue in batches and fans
      each batch across the pool with
      {!Bagcqc_core.Containment.decide_result}, so concurrent clients
      get multicore fan-out while the pool's single-region invariant
      holds.

    Replies are written under a per-connection mutex, so inline replies
    from the reader never interleave bytes with solved verdicts from the
    dispatcher.

    {2 Graceful drain}

    [SIGTERM], [SIGINT] and the [shutdown] verb all trigger the same
    drain: stop accepting, refuse new work with ["shutting_down"],
    finish every queued request, wait for the pool to go idle
    ({!Bagcqc_par.Pool.quiesce}), then close the connections and join
    all threads.  Every admitted request is answered before the socket
    closes. *)

type config = {
  addr : Protocol.addr;
  max_queue : int;
      (** admission-queue bound; requests beyond it are refused with
          ["overloaded"], never buffered unboundedly *)
  default_deadline_ms : float option;
      (** applied to [check] requests that carry no [deadline_ms] *)
  banner : bool;
      (** print a one-line "listening on …" banner on stdout once the
          socket is ready (scripts wait on it) *)
  metrics_port : int option;
      (** when set, serve Prometheus [GET /metrics] plus [/healthz] and
          [/readyz] on [127.0.0.1:port] ([0] picks an ephemeral port,
          printed with the banner).  [/readyz] answers 503 from the
          moment a drain starts until the process exits, and the
          listener outlives the drain so that flip is observable. *)
  access_log : string option;
      (** when set, write one JSONL access line per completed [check]
          to this path (see {!Access_log}) *)
  log_sample : int;
      (** keep every [N]th access line ([<= 1] keeps all); slow and
          errored requests always log *)
  slow_ms : float option;
      (** requests whose wall time exceeds this get their span subtree
          attached to their access-log line (needs tracing enabled) *)
}

val default_config : Protocol.addr -> config
(** [max_queue = 256], no default deadline, banner on, no metrics port,
    no access log ([log_sample = 1], no slow threshold). *)

val run : config -> unit
(** Bind, serve until drained, release the socket.  Returns only after
    every admitted request has been answered and all threads joined.
    Installs [SIGTERM]/[SIGINT] handlers for the duration of the call
    (restored on return) and ignores [SIGPIPE].
    @raise Unix.Unix_error if the address cannot be bound. *)
