module Json = Bagcqc_obs.Json

exception Failed of string

let failf fmt = Printf.ksprintf (fun m -> raise (Failed m)) fmt

let get reply name =
  match Json.find_opt name reply with
  | Some v -> v
  | None -> failf "reply %s lacks field %S" (Json.to_string reply) name

let get_num reply name =
  match get reply name with
  | Json.Num f -> f
  | _ -> failf "reply field %S is not a number" name

let get_str reply name =
  match get reply name with
  | Json.Str s -> s
  | _ -> failf "reply field %S is not a string" name

let expect_ok reply =
  match get reply "ok" with
  | Json.Bool true -> ()
  | _ -> failf "expected ok reply, got %s" (Json.to_string reply)

let expect_error kind reply =
  (match get reply "ok" with
   | Json.Bool false -> ()
   | _ -> failf "expected error reply, got %s" (Json.to_string reply));
  let e = get reply "error" in
  let k = get_str e "kind" in
  if k <> Protocol.kind_name kind then
    failf "expected error kind %S, got %s" (Protocol.kind_name kind)
      (Json.to_string reply)

let roundtrip c json =
  match Client.request c json with
  | Some reply -> reply
  | None -> failf "connection closed while waiting for a reply to %s"
              (Json.to_string json)

let check_req ?deadline_ms ?(certificate = false) ~id q1 q2 =
  Json.Obj
    ([ ("id", Json.Str id); ("op", Json.Str "check");
       ("q1", Json.Str q1); ("q2", Json.Str q2) ]
    @ (if certificate then [ ("certificate", Json.Bool true) ] else [])
    @ match deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Num ms) ]
      | None -> [])

let stats c = roundtrip c (Json.Obj [ ("id", Json.Null); ("op", Json.Str "stats") ])

let run ?(verbose = false) () =
  (* Fresh socket path: temp_file reserves the name; the server refuses
     to clobber non-socket files, so hand it a vacant path. *)
  let sock = Filename.temp_file "bagcqc_selftest" ".sock" in
  Sys.remove sock;
  let cfg =
    { (Server.default_config (Protocol.Unix_path sock)) with
      max_queue = 64; banner = false }
  in
  let server = Thread.create Server.run cfg in
  let steps = ref [] in
  let pass name =
    steps := name :: !steps;
    if verbose then Printf.eprintf "serve selftest: %-24s ok\n%!" name
  in
  let finish () = List.rev !steps in
  match
    let c = Client.connect ~retry_ms:5000 (Protocol.Unix_path sock) in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (* ping *)
    let r = roundtrip c (Json.Obj [ ("id", Json.Str "p"); ("op", Json.Str "ping") ]) in
    expect_ok r;
    (match get r "pong" with
     | Json.Bool true -> ()
     | _ -> failf "ping did not pong: %s" (Json.to_string r));
    (match get r "id" with
     | Json.Str "p" -> ()
     | _ -> failf "ping reply did not echo the id: %s" (Json.to_string r));
    pass "ping";
    (* contained verdict, with certificate *)
    let triangle = "R(x,y), R(y,z), R(z,x)" and vee = "R(u,v), R(u,w)" in
    let r1 = roundtrip c (check_req ~id:"c1" ~certificate:true triangle vee) in
    expect_ok r1;
    if get_str r1 "verdict" <> "contained" then
      failf "expected contained, got %s" (Json.to_string r1);
    let cert1 = get_str r1 "certificate" in
    pass "check contained";
    (* the same instance again must not cost a single new LP solve *)
    let solves_before = get_num (stats c) "lp_solves" in
    let r2 = roundtrip c (check_req ~id:"c2" ~certificate:true triangle vee) in
    expect_ok r2;
    let solves_after = get_num (stats c) "lp_solves" in
    if solves_after <> solves_before then
      failf "repeated check cost %g new LP solves" (solves_after -. solves_before);
    if get_str r2 "certificate" <> cert1 then
      failf "repeated check produced a different certificate";
    pass "cached re-check";
    (* not-contained verdict *)
    let r = roundtrip c (check_req ~id:"n" "R(x,y), S(y,z)" "R(x,y)") in
    expect_ok r;
    if get_str r "verdict" <> "not_contained" then
      failf "expected not_contained, got %s" (Json.to_string r);
    if get_num r "hom2" >= get_num r "card_p" then
      failf "witness counts do not refute: %s" (Json.to_string r);
    pass "check not contained";
    (* head variables exercise the booleanization path *)
    let r = roundtrip c (check_req ~id:"h" "Q(x) :- R(x,y)" "Q(x) :- R(x,y), R(x,z)") in
    expect_ok r;
    if get_str r "verdict" <> "contained" then
      failf "head-variable check: expected contained, got %s" (Json.to_string r);
    pass "check with heads";
    (* malformed line: typed parse error, connection survives *)
    Client.send_line c "this is not JSON";
    (match Client.recv_line c with
     | Some line -> expect_error Protocol.Parse (Json.parse line)
     | None -> failf "connection died on a malformed line");
    pass "malformed line";
    (* query syntax error: typed bad_request *)
    expect_error Protocol.Bad_request (roundtrip c (check_req ~id:"b" "R(x," "R(x,y)"));
    pass "bad query";
    (* unknown op *)
    expect_error Protocol.Bad_request
      (roundtrip c (Json.Obj [ ("id", Json.Null); ("op", Json.Str "frobnicate") ]));
    pass "unknown op";
    (* an already-expired deadline is shed, not solved *)
    expect_error Protocol.Deadline_exceeded
      (roundtrip c (check_req ~id:"d" ~deadline_ms:0.0 triangle vee));
    let s = stats c in
    if get_num s "deadline_expired" < 1.0 then
      failf "stats did not count the expired deadline: %s" (Json.to_string s);
    pass "deadline exceeded";
    (* the extended stats surface: gauges, histograms and rolling rates
       (what `bagcqc top` and /metrics are built from) *)
    let s = stats c in
    ignore (get_num s "queue_depth");
    ignore (get_num s "in_flight");
    ignore (get_num s "cache_size");
    (match get s "histograms" with
     | Json.Obj hists ->
       (match List.assoc_opt "serve.request_us" hists with
        | Some h ->
          if get_num h "count" < 1.0 then
            failf "serve.request_us histogram is empty after checks";
          if get_num h "p99" < get_num h "p50" then
            failf "histogram percentiles not monotone: %s" (Json.to_string h)
        | None -> failf "stats histograms lack serve.request_us")
     | _ -> failf "stats \"histograms\" is not an object");
    (match get s "rates_per_sec" with
     | Json.Obj rates ->
       (match List.assoc_opt "serve.requests" rates with
        | Some r -> ignore (get_num r "1m"); ignore (get_num r "5m")
        | None -> failf "rates_per_sec lacks serve.requests")
     | _ -> failf "stats \"rates_per_sec\" is not an object");
    pass "extended stats";
    (* graceful drain: shutdown is acknowledged, then the socket EOFs
       and the server thread joins *)
    let r = roundtrip c (Json.Obj [ ("id", Json.Str "s"); ("op", Json.Str "shutdown") ]) in
    expect_ok r;
    (match Client.recv_line c with
     | None -> ()
     | Some line -> failf "expected EOF after drain, got %S" line);
    Thread.join server;
    if Sys.file_exists sock then failf "drained server left the socket behind";
    pass "graceful drain"
  with
  | () -> Ok (finish ())
  | exception Failed msg ->
    (* Best effort not to leak the daemon on a failed step. *)
    (try
       let c = Client.connect ~retry_ms:100 (Protocol.Unix_path sock) in
       ignore (Client.request c (Json.Obj [ ("id", Json.Null); ("op", Json.Str "shutdown") ]));
       Client.close c;
       Thread.join server
     with _ -> ());
    Error msg
  | exception e ->
    (try Thread.join server with _ -> ());
    Error (Printexc.to_string e)
