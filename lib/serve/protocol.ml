open Bagcqc_cq
open Bagcqc_core
open Bagcqc_entropy
module Json = Bagcqc_obs.Json

type addr = Unix_path of string | Tcp of string * int

let pp_addr fmt = function
  | Unix_path p -> Format.fprintf fmt "unix:%s" p
  | Tcp (h, p) -> Format.fprintf fmt "tcp:%s:%d" h p

type error_kind =
  | Parse
  | Bad_request
  | Deadline_exceeded
  | Overloaded
  | Shutting_down
  | Internal

let kind_name = function
  | Parse -> "parse"
  | Bad_request -> "bad_request"
  | Deadline_exceeded -> "deadline_exceeded"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let kind_of_name = function
  | "parse" -> Some Parse
  | "bad_request" -> Some Bad_request
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "overloaded" -> Some Overloaded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

type request =
  | Check of {
      q1 : Query.t;
      q2 : Query.t;
      max_factors : int;
      want_certificate : bool;
    }
  | Stats
  | Ping
  | Shutdown

type envelope = {
  id : Json.t;
  deadline_ms : float option;
  request : request;
}

type error = { id : Json.t; kind : error_kind; message : string }

(* ---------------- request parsing ---------------- *)

let default_max_factors = 14

let parse_line line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
    Error { id = Json.Null; kind = Parse; message = "invalid JSON: " ^ msg }
  | Json.Obj _ as j ->
    (* The id is echoed verbatim, so any JSON scalar works; composite
       ids are refused to keep replies greppable. *)
    let id =
      match Json.find_opt "id" j with
      | Some ((Json.Str _ | Json.Num _ | Json.Null) as v) -> v
      | Some _ | None -> Json.Null
    in
    let bad message = Error { id; kind = Bad_request; message } in
    (match Json.find_opt "id" j with
     | Some (Json.Obj _ | Json.Arr _ | Json.Bool _) ->
       bad "\"id\" must be a string, number or null"
     | _ ->
       let deadline_ms =
         match Json.find_opt "deadline_ms" j with
         | Some (Json.Num ms) when ms >= 0.0 -> Ok (Some ms)
         | None -> Ok None
         | Some _ -> Error ()
       in
       (match deadline_ms with
        | Error () -> bad "\"deadline_ms\" must be a non-negative number"
        | Ok deadline_ms ->
          (match Json.find_opt "op" j with
           | Some (Json.Str "ping") ->
             Ok { id; deadline_ms; request = Ping }
           | Some (Json.Str "stats") ->
             Ok { id; deadline_ms; request = Stats }
           | Some (Json.Str "shutdown") ->
             Ok { id; deadline_ms; request = Shutdown }
           | Some (Json.Str "check") ->
             let query field =
               match Json.find_opt field j with
               | Some (Json.Str s) ->
                 (match Parser.parse_result s with
                  | Ok q -> Ok q
                  | Error msg ->
                    Error
                      (Printf.sprintf "%S: query syntax: %s" field msg))
               | Some _ -> Error (Printf.sprintf "%S must be a string" field)
               | None -> Error (Printf.sprintf "missing %S" field)
             in
             (match (query "q1", query "q2") with
              | Error m, _ | _, Error m -> bad m
              | Ok q1, Ok q2 ->
                let max_factors =
                  match Json.find_opt "max_factors" j with
                  | Some (Json.Num f)
                    when Float.is_integer f && f >= 1.0 && f <= 62.0 ->
                    Ok (int_of_float f)
                  | None -> Ok default_max_factors
                  | Some _ -> Error ()
                in
                let want_certificate =
                  match Json.find_opt "certificate" j with
                  | Some (Json.Bool b) -> Ok b
                  | None -> Ok false
                  | Some _ -> Error ()
                in
                (match (max_factors, want_certificate) with
                 | Error (), _ ->
                   bad "\"max_factors\" must be an integer in [1,62]"
                 | _, Error () -> bad "\"certificate\" must be a boolean"
                 | Ok max_factors, Ok want_certificate ->
                   Ok
                     { id; deadline_ms;
                       request =
                         Check { q1; q2; max_factors; want_certificate } }))
           | Some (Json.Str op) -> bad ("unknown op " ^ op)
           | Some _ -> bad "\"op\" must be a string"
           | None -> bad "missing \"op\"")))
  | _ ->
    Error
      { id = Json.Null; kind = Parse;
        message = "request must be a JSON object" }

(* ---------------- replies ---------------- *)

let ok id fields = Json.Obj (("id", id) :: ("ok", Json.Bool true) :: fields)

let error_reply { id; kind; message } =
  Json.Obj
    [ ("id", id); ("ok", Json.Bool false);
      ("error",
       Json.Obj
         [ ("kind", Json.Str (kind_name kind));
           ("message", Json.Str message) ]) ]

let internal_error ~id e =
  error_reply
    { id; kind = Internal;
      message = Format.asprintf "%a" Bagcqc_num.Bagcqc_error.pp e }

let verdict_name = function
  | Containment.Contained _ -> "contained"
  | Containment.Not_contained _ -> "not_contained"
  | Containment.Unknown _ -> "unknown"

let verdict_fields ~want_certificate = function
  | Containment.Contained cert ->
    ("verdict", Json.Str "contained")
    :: ("certificate_size",
        Json.Num (float_of_int (Certificate.size cert)))
    :: (if want_certificate then
          (* Same discipline as the CLI's --certificate: a certificate
             is only ever shown after the exact independent check. *)
          if Certificate.check cert then
            [ ("certificate",
               Json.Str (Format.asprintf "%a" (Certificate.pp ()) cert)) ]
          else
            [ ("certificate_error",
               Json.Str "certificate failed independent verification") ]
        else [])
  | Containment.Not_contained w ->
    [ ("verdict", Json.Str "not_contained");
      ("card_p", Json.Num (float_of_int w.Containment.card_p));
      ("hom2", Json.Num (float_of_int w.Containment.hom2)) ]
  | Containment.Unknown { reason; _ } ->
    [ ("verdict", Json.Str "unknown"); ("reason", Json.Str reason) ]
