(** Wire protocol of the [bagcqc serve] daemon.

    Newline-delimited JSON over a stream socket: each request is one
    JSON object on one line, each reply is one JSON object on one line,
    and replies echo the request's ["id"] verbatim (or [null] when the
    request carried none / was unparseable).  The JSON dialect is the
    in-tree {!Bagcqc_obs.Json} — no external dependency.

    {2 Requests}

    {v
    {"id":ID, "op":"check", "q1":"R(x,y),R(y,z)", "q2":"R(x,y)",
     "max_factors":14?, "certificate":false?, "deadline_ms":MS?}
    {"id":ID, "op":"stats"}
    {"id":ID, "op":"ping"}
    {"id":ID, "op":"shutdown"}
    v}

    [deadline_ms] is a relative budget: a [check] still queued when it
    expires is answered with a [deadline_exceeded] error instead of
    being solved (admission-time and dequeue-time checks; a request
    whose deadline passes {e mid-solve} is completed and answered — the
    deadline sheds queued load, it does not abort exponential work
    already running).

    {2 Replies}

    {v
    {"id":ID, "ok":true,  ...verb-specific fields}
    {"id":ID, "ok":false, "error":{"kind":KIND, "message":MSG}}
    v}

    Error kinds: ["parse"] (line is not a JSON object),
    ["bad_request"] (unknown op, missing field, query syntax),
    ["deadline_exceeded"], ["overloaded"] (admission queue full),
    ["shutting_down"] (request arrived during drain), and ["internal"]
    (a typed {!Bagcqc_num.Bagcqc_error} from the decision pipeline). *)

open Bagcqc_cq
open Bagcqc_core
module Json = Bagcqc_obs.Json

(** Where a server listens / a client connects. *)
type addr =
  | Unix_path of string  (** Unix-domain stream socket at this path *)
  | Tcp of string * int  (** TCP on (host, port) *)

val pp_addr : Format.formatter -> addr -> unit

type error_kind =
  | Parse
  | Bad_request
  | Deadline_exceeded
  | Overloaded
  | Shutting_down
  | Internal

val kind_name : error_kind -> string
val kind_of_name : string -> error_kind option

type request =
  | Check of {
      q1 : Query.t;
      q2 : Query.t;
      max_factors : int;
      want_certificate : bool;
    }
  | Stats
  | Ping
  | Shutdown

type envelope = {
  id : Json.t;  (** echoed verbatim in the reply; [Null] when absent *)
  deadline_ms : float option;  (** relative budget, milliseconds *)
  request : request;
}

type error = { id : Json.t; kind : error_kind; message : string }

val parse_line : string -> (envelope, error) result
(** Total: every malformed input becomes a typed [error] (with the
    request id when one could still be extracted), never an exception. *)

(** {2 Reply construction} *)

val ok : Json.t -> (string * Json.t) list -> Json.t
(** [ok id fields] is [{"id":id,"ok":true,...fields}]. *)

val error_reply : error -> Json.t

val internal_error : id:Json.t -> Bagcqc_num.Bagcqc_error.t -> Json.t
(** Map a typed pipeline error onto an ["internal"] protocol error. *)

val verdict_name : Containment.verdict -> string
(** ["contained"], ["not_contained"] or ["unknown"] — the same string
    the ["verdict"] field of a reply carries. *)

val verdict_fields :
  want_certificate:bool -> Containment.verdict -> (string * Json.t) list
(** The verb-specific fields of a [check] reply: ["verdict"] of
    ["contained"] (with ["certificate_size"], plus the pretty-printed
    certificate when asked — re-verified with {!Bagcqc_entropy.Certificate.check}
    before printing), ["not_contained"] (with the witness counts), or
    ["unknown"] (with the reason). *)
