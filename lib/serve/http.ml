(* Minimal HTTP/1.x GET responder for the telemetry surface.

   This is deliberately not a web server: it exists so a Prometheus
   scraper, a load balancer health check, or `curl` can read /metrics,
   /healthz and /readyz off a running daemon without any dependency
   beyond the Unix module.  One thread accepts on 127.0.0.1:<port> (or a
   caller-chosen bind host) and answers each connection inline —
   scrapes are rare, tiny, and serialized by design — with
   [Connection: close] semantics.  Everything protocol-shaped beyond
   "parse the request line of a GET, answer, close" is out of scope.

   The lifecycle mirrors the main server's accept loop: a self-pipe
   wakes the select so [stop] can join the thread deterministically.
   The listener stays up through the main socket's drain on purpose —
   /readyz must be observable *while* the daemon drains. *)

type response = { status : int; content_type : string; body : string }

type t = {
  fd : Unix.file_descr;
  port : int; (* actual port (resolves port 0) *)
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  thread : Thread.t;
}

let text status body = { status; content_type = "text/plain; charset=utf-8"; body }

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | 0 -> off := n
    | k -> off := !off + k
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      off := n
  done

let respond fd (r : response) =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       r.status (reason r.status) r.content_type (String.length r.body) r.body)

(* Request line of a GET, e.g. "GET /metrics?x=1 HTTP/1.1" -> "/metrics".
   Headers are read to be polite (and to keep clients that send them
   happy) but ignored. *)
let handle_conn handler fd =
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
   with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  match input_line ic with
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  | request_line ->
    (* Drain headers up to the blank line; tolerate EOF mid-headers. *)
    (try
       let fin = ref false in
       while not !fin do
         let l = input_line ic in
         if l = "" || l = "\r" then fin := true
       done
     with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
    let resp =
      match String.split_on_char ' ' (String.trim request_line) with
      | "GET" :: target :: _ ->
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        (try handler path
         with e -> text 500 ("internal error: " ^ Printexc.to_string e ^ "\n"))
      | _ :: _ :: _ -> text 405 "only GET is supported\n"
      | _ -> text 400 "malformed request line\n"
    in
    respond fd resp

let accept_loop ~listen_fd ~pipe_r handler =
  let continue = ref true in
  while !continue do
    match Unix.select [ listen_fd; pipe_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      if List.mem pipe_r ready then continue := false
      else if List.mem listen_fd ready then (
        match Unix.accept ~cloexec:true listen_fd with
        | fd, _ -> handle_conn handler fd
        | exception Unix.Unix_error _ -> ())
  done

let start ?(host = "127.0.0.1") ~port handler =
  let inet = Unix.inet_addr_of_string host in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (inet, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  let thread =
    Thread.create (fun () -> accept_loop ~listen_fd:fd ~pipe_r handler) ()
  in
  { fd; port; pipe_r; pipe_w; thread }

let port t = t.port

let stop t =
  (try ignore (Unix.write t.pipe_w (Bytes.make 1 'x') 0 1)
   with Unix.Unix_error _ -> ());
  Thread.join t.thread;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.fd; t.pipe_r; t.pipe_w ]
