(** [bagcqc top] — live terminal dashboard over a daemon's [stats] verb.

    Polls [stats] every interval and redraws one frame: queue depth and
    in-flight gauges, rolling 1m/5m counter rates, latency-histogram
    percentiles and the cache/store hit ledger.  All numbers are
    computed server-side; this module renders the reply JSON. *)

val render : ?now:float -> addr:string -> Bagcqc_obs.Json.t -> string
(** One dashboard frame for a [stats] reply.  [now] stamps the header
    (defaults to the epoch so tests are deterministic); [addr] is the
    daemon address shown in the header. *)

val run : addr:Protocol.addr -> interval:float -> once:bool -> int
(** Connect and poll until the server closes the connection (exit 0) or
    a reply fails to parse (exit 1).  [once] prints a single frame and
    returns instead of looping; otherwise each frame redraws the
    terminal via ANSI home+clear. *)
