(** Minimal blocking client for the {!Protocol} wire format — the engine
    behind [bagcqc client], the selftest and the serve benchmarks. *)

type t

val connect : ?retry_ms:int -> Protocol.addr -> t
(** Connect to a serve daemon.  [retry_ms] (default 0) keeps retrying
    refused/absent sockets for that many milliseconds — scripts start
    the daemon and the client concurrently and let the client win the
    race.  @raise Unix.Unix_error when the budget runs out. *)

val send_line : t -> string -> unit
(** Write one raw line (newline appended, flushed). *)

val recv_line : t -> string option
(** Read one reply line; [None] on EOF (server drained). *)

val request : t -> Protocol.Json.t -> Protocol.Json.t option
(** [send_line] the JSON, then parse the next reply line.  Only valid
    when requests and replies alternate strictly (one in flight).
    @raise Bagcqc_obs.Json.Parse_error on a malformed reply. *)

val close : t -> unit
(** Idempotent. *)
