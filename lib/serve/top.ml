(* `bagcqc top` — a live terminal dashboard over the daemon's stats verb.

   One strict request/reply client polls `stats` every interval and
   redraws a frame: service gauges (queue depth, in-flight, cache and
   store sizes), rolling 1m/5m rates for the windowed counters, latency
   histogram percentiles, and the cache/store hit ledger.  Everything
   shown is computed server-side from the same registry /metrics reads;
   this module only renders the JSON.

   [render] is a pure function of the reply so the frame layout is unit
   testable without a daemon. *)

module Json = Bagcqc_obs.Json

let field obj name =
  match obj with Json.Obj kvs -> List.assoc_opt name kvs | _ -> None

let num ?(default = 0.0) j =
  match j with Some (Json.Num n) -> n | _ -> default

let int_field obj name = int_of_float (num (field obj name))

let bool_field obj name =
  match field obj name with Some (Json.Bool b) -> b | _ -> false

(* 1234567 -> "1.23M" — totals can be large, columns cannot. *)
let human n =
  if Float.abs n >= 1e9 then Printf.sprintf "%.2fG" (n /. 1e9)
  else if Float.abs n >= 1e6 then Printf.sprintf "%.2fM" (n /. 1e6)
  else if Float.abs n >= 1e4 then Printf.sprintf "%.1fk" (n /. 1e3)
  else if Float.is_integer n then Printf.sprintf "%.0f" n
  else Printf.sprintf "%.2f" n

let pct num den = if den <= 0.0 then "  -  " else Printf.sprintf "%4.1f%%" (100.0 *. num /. den)

let render ?(now = 0.0) ~addr reply =
  let b = Buffer.create 2048 in
  let pr fmt = Printf.bprintf b fmt in
  let tm = Unix.localtime now in
  pr "bagcqc top — %s   %04d-%02d-%02d %02d:%02d:%02d\n" addr
    (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec;
  (match field reply "ok" with
   | Some (Json.Bool true) -> ()
   | _ -> pr "  (stats request failed)\n");
  pr "jobs %d   queue %d   in-flight %d   lp-cache %d   draining %s\n\n"
    (int_field reply "jobs") (int_field reply "queue_depth")
    (int_field reply "in_flight") (int_field reply "cache_size")
    (if bool_field reply "draining" then "YES" else "no");
  (* Rolling rates next to lifetime totals, one row per windowed counter. *)
  let totals =
    [ ("serve.requests", "requests"); ("serve.replies", "replies");
      ("serve.errors", "errors"); ("solver.cache.hits", "cache_hits");
      ("solver.cache.misses", "cache_misses");
      ("solver.store.hits", "store_hits");
      ("solver.store.misses", "store_misses");
      ("lp.solves", "lp_solves") ]
  in
  (match field reply "rates_per_sec" with
   | Some (Json.Obj rates) when rates <> [] ->
     pr "%-26s %10s %9s %9s\n" "counter" "total" "1m/s" "5m/s";
     List.iter
       (fun (name, r) ->
         let total =
           match List.assoc_opt name totals with
           | Some key -> human (num (field reply key))
           | None -> "-"
         in
         pr "%-26s %10s %9.2f %9.2f\n" name total
           (num (field r "1m")) (num (field r "5m")))
       rates;
     pr "\n"
   | _ -> ());
  (match field reply "histograms" with
   | Some (Json.Obj hists) when hists <> [] ->
     pr "%-26s %8s %9s %8s %8s %8s %8s\n" "histogram" "count" "mean" "p50"
       "p90" "p99" "max";
     List.iter
       (fun (name, h) ->
         pr "%-26s %8s %9s %8s %8s %8s %8s\n" name
           (human (num (field h "count")))
           (human (num (field h "mean")))
           (human (num (field h "p50")))
           (human (num (field h "p90")))
           (human (num (field h "p99")))
           (human (num (field h "max"))))
       hists;
     pr "\n"
   | _ -> ());
  let n key = num (field reply key) in
  pr "memo cache  hits %s  misses %s  hit %s\n"
    (human (n "cache_hits")) (human (n "cache_misses"))
    (pct (n "cache_hits") (n "cache_hits" +. n "cache_misses"));
  pr "store       hits %s  misses %s  hit %s   appends %s  loaded %s  rejected %s\n"
    (human (n "store_hits")) (human (n "store_misses"))
    (pct (n "store_hits") (n "store_hits" +. n "store_misses"))
    (human (n "store_appends")) (human (n "store_loaded"))
    (human (n "store_rejected"));
  pr "service     overloaded %s  deadline-expired %s  connections %s\n"
    (human (n "overloaded")) (human (n "deadline_expired"))
    (human (n "connections"));
  Buffer.contents b

let stats_request = Json.Obj [ ("id", Json.Str "top"); ("op", Json.Str "stats") ]

let run ~addr ~interval ~once =
  match Client.connect ~retry_ms:2000 addr with
  | exception Unix.Unix_error (e, _, _) ->
    Format.eprintf "top: cannot connect to %a: %s@." Protocol.pp_addr addr
      (Unix.error_message e);
    1
  | c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let addr_s = Format.asprintf "%a" Protocol.pp_addr addr in
    let code = ref 0 and continue = ref true in
    while !continue do
      (match Client.request c stats_request with
       | exception Json.Parse_error msg ->
         Format.eprintf "top: malformed reply: %s@." msg;
         code := 1;
         continue := false
       | None ->
         (* Server drained — a normal way for a watch to end. *)
         print_string "\nserver closed the connection\n";
         continue := false
       | Some reply ->
         let frame = render ~now:(Unix.gettimeofday ()) ~addr:addr_s reply in
         if once then begin
           print_string frame;
           continue := false
         end
         else begin
           (* Home + clear-to-end redraw: no flicker, no scrollback spam. *)
           print_string "\027[H\027[2J";
           print_string frame;
           flush stdout;
           Thread.delay interval
         end);
      flush stdout
    done;
    !code
