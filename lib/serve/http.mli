(** Minimal HTTP/1.x GET responder — the daemon's telemetry surface.

    Serves [/metrics], [/healthz] and [/readyz] to scrapers, load
    balancers and [curl]: one accept thread on a loopback TCP port,
    each connection answered inline and closed ([Connection: close]).
    Anything that is not a well-formed GET gets 405/400; a handler
    exception becomes a 500.  Not a general web server and not meant to
    face untrusted traffic. *)

type response = { status : int; content_type : string; body : string }

type t

val text : int -> string -> response
(** [text status body] with content type [text/plain; charset=utf-8]. *)

val start : ?host:string -> port:int -> (string -> response) -> t
(** Bind [host:port] (default host 127.0.0.1; port 0 picks an ephemeral
    port — see {!port}) and serve [handler path] on a dedicated thread.
    The [path] argument has any query string stripped.
    @raise Unix.Unix_error when the bind fails (port in use, bad host). *)

val port : t -> int
(** The actually bound port. *)

val stop : t -> unit
(** Wake the accept thread, join it, close the socket.  Idempotence is
    not required of callers: call exactly once. *)
