(* Structured JSONL access log with slow-request capture.

   One line per completed check request ({"type":"access", ...}): the
   echoed id, verdict or error kind, wall/queue/solve microseconds,
   per-request pivot count and cache tier (recovered from the request's
   span subtree when tracing is on), and remaining deadline slack.
   [sample] thins the stream — every Nth request is logged — but slow
   requests and errors always log, so the interesting tail survives any
   sampling rate.

   Slow-request capture: when a request's wall time exceeds [slow_ms],
   its line carries a "spans" array — the request's own span subtree in
   the same shape {!Bagcqc_obs.Export} writes to JSONL traces — so a p99
   outlier arrives with its trace attached instead of a number and a
   shrug.  Requires tracing to be enabled (the serve CLI turns it on
   whenever an access log is configured); with tracing off the line
   still logs, with "pivots"/"cache"/"spans" absent.

   Writers: the dispatcher thread (one line per request, in batch
   completion order).  The mutex exists for the drain path and any
   future multi-writer; lines are flushed eagerly so `tail -f` and the
   smoke tests see requests as they complete. *)

module Obs = Bagcqc_obs
module Json = Bagcqc_obs.Json

type t = {
  oc : out_channel;
  m : Mutex.t;
  sample : int; (* log every Nth check; slow/errored always log *)
  slow_ms : float option;
  mutable seq : int;
}

let open_ ~path ~sample ~slow_ms =
  { oc = open_out path; m = Mutex.create (); sample = max 1 sample; slow_ms;
    seq = 0 }

let close t =
  Mutex.lock t.m;
  (try close_out t.oc with Sys_error _ -> ());
  Mutex.unlock t.m

type entry = {
  id : Json.t;
  verdict : string option;
  wall_us : int;
  queue_us : int;
  solve_us : int;
  deadline_slack_ms : float option;
  error : string option;
  span_id : int; (* the request's root span, -1 when tracing is off *)
}

(* The request's span subtree, ascending span id, from the closed ring.
   Ids are allocated at span open from one monotone counter, so every
   descendant of [span_id] has a larger id: filtering the ring down to
   ids >= span_id first keeps the sort bounded by the current batch's
   spans, not the ring capacity. *)
let subtree span_id =
  if span_id < 0 then []
  else begin
    let candidates =
      List.filter (fun sp -> sp.Obs.Span.id >= span_id) (Obs.Span.closed ())
    in
    let keep = Hashtbl.create 16 in
    Hashtbl.add keep span_id ();
    List.sort (fun a b -> compare a.Obs.Span.id b.Obs.Span.id) candidates
    |> List.filter (fun sp ->
           Hashtbl.mem keep sp.Obs.Span.id
           ||
           if Hashtbl.mem keep sp.Obs.Span.parent then begin
             Hashtbl.add keep sp.Obs.Span.id ();
             true
           end
           else false)
  end

(* Per-request pivots and cache tier, recovered from span attributes:
   pivot counts sum across the subtree's simplex spans; the cache tier
   reported is the deepest tier the request had to reach ("miss" — a
   fresh solve — over "store" over "memo"). *)
let pivots_of spans =
  List.fold_left
    (fun acc sp ->
      List.fold_left
        (fun acc (k, v) ->
          match (k, v) with
          | "pivots", Obs.Span.Int n -> acc + n
          | _ -> acc)
        acc sp.Obs.Span.attrs)
    0 spans

let cache_tier_of spans =
  let seen =
    List.concat_map
      (fun sp ->
        List.filter_map
          (fun (k, v) ->
            match (k, v) with
            | "cache", Obs.Span.Str s -> Some s
            | _ -> None)
          sp.Obs.Span.attrs)
      spans
  in
  if List.mem "miss" seen then Some "miss"
  else if List.mem "store" seen then Some "store"
  else if List.mem "hit" seen then Some "memo"
  else None

let log_check t (e : entry) =
  let slow =
    match t.slow_ms with
    | Some ms -> float_of_int e.wall_us /. 1e3 >= ms
    | None -> false
  in
  Mutex.lock t.m;
  t.seq <- t.seq + 1;
  let sampled = t.seq mod t.sample = 0 in
  Mutex.unlock t.m;
  if slow || e.error <> None || sampled then begin
    let sub = subtree e.span_id in
    let opt_str = function Some s -> Json.Str s | None -> Json.Null in
    let num n = Json.Num (float_of_int n) in
    let fields =
      [ ("type", Json.Str "access"); ("ts", Json.Num (Unix.gettimeofday ()));
        ("id", e.id); ("op", Json.Str "check");
        ("verdict", opt_str e.verdict); ("wall_us", num e.wall_us);
        ("queue_us", num e.queue_us); ("solve_us", num e.solve_us);
        ("deadline_slack_ms",
         match e.deadline_slack_ms with
         | Some ms -> Json.Num ms
         | None -> Json.Null);
        ("error", opt_str e.error); ("slow", Json.Bool slow) ]
      @ (if sub = [] then []
         else
           [ ("pivots", num (pivots_of sub));
             ("cache", opt_str (cache_tier_of sub)) ])
      @
      if slow && sub <> [] then
        [ ("spans", Json.Arr (List.map Obs.Export.span_event sub)) ]
      else []
    in
    let line = Json.to_string (Json.Obj fields) in
    Mutex.lock t.m;
    (try
       output_string t.oc line;
       output_char t.oc '\n';
       flush t.oc
     with Sys_error _ -> ());
    Mutex.unlock t.m
  end
