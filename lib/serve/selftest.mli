(** Scripted end-to-end exercise of a serve daemon — the engine behind
    [bagcqc serve --selftest] and the [serve] test suite.

    Boots an in-process server on a fresh Unix socket, drives one client
    session through the protocol surface (ping; a contained and a
    not-contained check; a repeated check that must be answered without
    any new LP solve; a malformed line; a bad query; an
    already-expired deadline; stats; shutdown), and verifies the server
    drains cleanly: the socket reports EOF and the server thread joins. *)

val run : ?verbose:bool -> unit -> (string list, string) result
(** [Ok steps] lists the checks that passed, in order; [Error msg]
    pinpoints the first failure.  [verbose] (default false) echoes each
    step to stderr as it passes. *)
