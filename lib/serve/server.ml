open Bagcqc_cq
open Bagcqc_core
open Bagcqc_engine
module Obs = Bagcqc_obs
module Json = Bagcqc_obs.Json

(* Service-level counters live in the same metrics registry as the
   solver's, so `stats`, `--stats` and trace export all see them. *)
let c_requests = Obs.Metrics.counter "serve.requests"
let c_replies = Obs.Metrics.counter "serve.replies"
let c_errors = Obs.Metrics.counter "serve.errors"
let c_overloaded = Obs.Metrics.counter "serve.overloaded"
let c_deadline = Obs.Metrics.counter "serve.deadline_expired"
let c_connections = Obs.Metrics.counter "serve.connections"
let h_queue_us = Obs.Metrics.histogram "serve.queue_us"
let h_solve_us = Obs.Metrics.histogram "serve.solve_us"
let h_request_us = Obs.Metrics.histogram "serve.request_us"

(* Live levels for scrapers: queue depth and in-flight refresh at batch
   boundaries and on the telemetry ticker, open connections at
   accept/close.  All of these are levels, not totals — gauges. *)
let g_queue_depth = Obs.Metrics.gauge "serve.queue_depth"
let g_in_flight = Obs.Metrics.gauge "serve.in_flight"
let g_open_conns = Obs.Metrics.gauge "serve.open_connections"

(* Counters whose recent movement the daemon reports as rolling 1m/5m
   rates (decisions/sec, fallback and hit rates) via `stats`//metrics. *)
let windowed_counters =
  [ "serve.requests"; "serve.replies"; "serve.errors";
    "solver.cache.hits"; "solver.cache.misses"; "solver.store.hits";
    "solver.store.misses"; "lp.solves"; "lp.hybrid.float_solves";
    "lp.hybrid.fallbacks"; "cone.lazy.solves"; "cone.lazy.cuts" ]

type config = {
  addr : Protocol.addr;
  max_queue : int;
  default_deadline_ms : float option;
  banner : bool;
  metrics_port : int option;
  access_log : string option;
  log_sample : int;
  slow_ms : float option;
}

let default_config addr =
  { addr; max_queue = 256; default_deadline_ms = None; banner = true;
    metrics_port = None; access_log = None; log_sample = 1; slow_ms = None }

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wm : Mutex.t; (* serializes writes from reader and dispatcher *)
  mutable alive : bool;
}

type pending = {
  conn : conn;
  id : Json.t;
  q1 : Query.t;
  q2 : Query.t;
  max_factors : int;
  want_certificate : bool;
  deadline : float option; (* absolute, Unix.gettimeofday clock *)
  enqueued_at : float;
}

type t = {
  cfg : config;
  qm : Mutex.t;
  qc : Condition.t; (* dispatcher: work available / draining *)
  queue : pending Queue.t;
  mutable draining : bool;
  cm : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  pipe_r : Unix.file_descr; (* self-pipe: wakes the accept loop *)
  pipe_w : Unix.file_descr;
  access : Access_log.t option;
  ticker_stop : bool Atomic.t;
}

(* ---------------- replies ---------------- *)

let send t conn json =
  ignore t;
  Mutex.lock conn.wm;
  (try
     if conn.alive then begin
       output_string conn.oc (Json.to_string json);
       output_char conn.oc '\n';
       flush conn.oc
     end
   with Sys_error _ | Unix.Unix_error _ ->
     (* Client went away mid-reply; the reader thread will see EOF and
        clean up — nothing to do here, and nothing to crash over. *)
     conn.alive <- false);
  Mutex.unlock conn.wm;
  Obs.Metrics.bump c_replies

let send_error t conn err =
  Obs.Metrics.bump c_errors;
  send t conn (Protocol.error_reply err)

(* ---------------- drain ---------------- *)

(* Async-signal-safe wake-up: handlers only write the self-pipe; the
   accept loop does the actual (mutex-taking) state change. *)
let wake t = try ignore (Unix.write t.pipe_w (Bytes.make 1 'x') 0 1) with _ -> ()

let initiate_drain t =
  Mutex.lock t.qm;
  t.draining <- true;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm;
  wake t

(* ---------------- admission ---------------- *)

let expired deadline now =
  match deadline with Some d -> d <= now | None -> false

let enqueue t (p : pending) =
  if expired p.deadline p.enqueued_at then begin
    Obs.Metrics.bump c_deadline;
    send_error t p.conn
      { Protocol.id = p.id; kind = Protocol.Deadline_exceeded;
        message = "deadline expired before admission" }
  end
  else begin
    Mutex.lock t.qm;
    let status =
      if t.draining then `Draining
      else if Queue.length t.queue >= t.cfg.max_queue then `Full
      else begin
        Queue.add p t.queue;
        Obs.Metrics.set_gauge g_queue_depth (Queue.length t.queue);
        Condition.broadcast t.qc;
        `Queued
      end
    in
    Mutex.unlock t.qm;
    match status with
    | `Queued -> Obs.Metrics.bump c_requests
    | `Draining ->
      send_error t p.conn
        { Protocol.id = p.id; kind = Protocol.Shutting_down;
          message = "server is draining" }
    | `Full ->
      Obs.Metrics.bump c_overloaded;
      send_error t p.conn
        { Protocol.id = p.id; kind = Protocol.Overloaded;
          message =
            Printf.sprintf "admission queue full (max %d)" t.cfg.max_queue }
  end

(* ---------------- telemetry ---------------- *)

(* Pull-published gauges: refreshed by the ticker thread and on every
   stats/metrics read, never on the per-request hot path. *)
let publish_gauges t =
  Mutex.lock t.qm;
  let depth = Queue.length t.queue in
  Mutex.unlock t.qm;
  Obs.Metrics.set_gauge g_queue_depth depth;
  Mutex.lock t.cm;
  let open_conns = List.length t.conns in
  Mutex.unlock t.cm;
  Obs.Metrics.set_gauge g_open_conns open_conns;
  Solver.publish_gauges ()

(* ~1 Hz window sampling + gauge refresh; wakes at 4 Hz so drain never
   waits long on the ticker (Window coalesces samples under 0.5s). *)
let ticker_body t =
  while not (Atomic.get t.ticker_stop) do
    Thread.delay 0.25;
    publish_gauges t;
    Obs.Window.tick_all ()
  done

let window_rates () =
  List.concat_map
    (fun w ->
      [ (Obs.Window.name w, "1m", Obs.Window.rate w ~seconds:60.0);
        (Obs.Window.name w, "5m", Obs.Window.rate w ~seconds:300.0) ])
    (Obs.Window.tracked ())

let metrics_body t =
  publish_gauges t;
  Obs.Window.tick_all ();
  Obs.Prom.encode ~rates:(window_rates ()) (Obs.Metrics.snapshot ())

let http_handler t path =
  match path with
  | "/metrics" ->
    { Http.status = 200;
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = metrics_body t }
  | "/healthz" -> Http.text 200 "ok\n"
  | "/readyz" ->
    Mutex.lock t.qm;
    let draining = t.draining in
    Mutex.unlock t.qm;
    if draining then Http.text 503 "draining\n" else Http.text 200 "ready\n"
  | _ -> Http.text 404 "not found\n"

(* ---------------- stats verb ---------------- *)

let stats_fields t =
  publish_gauges t;
  Obs.Window.tick_all ();
  let s = Stats.snapshot () in
  Mutex.lock t.qm;
  let queue_depth = Queue.length t.queue in
  let draining = t.draining in
  Mutex.unlock t.qm;
  let num n = Json.Num (float_of_int n) in
  let latency =
    List.map
      (fun (name, h) ->
        ( name,
          Json.Obj
            [ ("count", num h.Obs.Metrics.count);
              ("mean", Json.Num (Obs.Metrics.mean h));
              ("p50", num (Obs.Metrics.percentile h 0.50));
              ("p90", num (Obs.Metrics.percentile h 0.90));
              ("p99", num (Obs.Metrics.percentile h 0.99));
              ("max", num h.Obs.Metrics.max_value) ] ))
      s.Stats.hists
  in
  let rates =
    List.map
      (fun w ->
        ( Obs.Window.name w,
          Json.Obj
            [ ("1m", Json.Num (Obs.Window.rate w ~seconds:60.0));
              ("5m", Json.Num (Obs.Window.rate w ~seconds:300.0)) ] ))
      (Obs.Window.tracked ())
  in
  [ ("jobs", num (Bagcqc_par.Pool.jobs ()));
    ("queue_depth", num queue_depth);
    ("in_flight", num (Obs.Metrics.gauge_value g_in_flight));
    ("cache_size", num (Solver.cache_size ()));
    ("draining", Json.Bool draining);
    ("histograms", Json.Obj latency);
    ("rates_per_sec", Json.Obj rates);
    ("requests", num (Obs.Metrics.count c_requests));
    ("replies", num (Obs.Metrics.count c_replies));
    ("errors", num (Obs.Metrics.count c_errors));
    ("overloaded", num (Obs.Metrics.count c_overloaded));
    ("deadline_expired", num (Obs.Metrics.count c_deadline));
    ("connections", num (Obs.Metrics.count c_connections));
    ("lp_solves", num s.Stats.lp_solves);
    ("lp_pivots", num s.Stats.lp_pivots);
    ("cache_hits", num s.Stats.cache_hits);
    ("cache_misses", num s.Stats.cache_misses);
    ("store_hits", num s.Stats.store_hits);
    ("store_misses", num s.Stats.store_misses);
    ("store_appends", num s.Stats.store_appends);
    ("store_loaded", num s.Stats.store_loaded);
    ("store_rejected", num s.Stats.store_rejected);
    ("lazy_solves", num s.Stats.lazy_solves);
    ("lazy_rounds", num s.Stats.lazy_rounds);
    ("lazy_cuts", num s.Stats.lazy_cuts);
    ("lazy_fallbacks", num s.Stats.lazy_fallbacks);
    ("orbit_cuts", num s.Stats.orbit_cuts);
    ("orbit_canonicalized", num s.Stats.orbit_canonicalized) ]

(* ---------------- dispatcher ---------------- *)

(* All solving happens on this one thread (fanning out via the pool),
   because the pool admits one region at a time process-wide. *)
let process_batch t batch =
  let now = Unix.gettimeofday () in
  let live, dead = List.partition (fun p -> not (expired p.deadline now)) batch in
  List.iter
    (fun p ->
      Obs.Metrics.bump c_deadline;
      send_error t p.conn
        { Protocol.id = p.id; kind = Protocol.Deadline_exceeded;
          message = "deadline expired while queued" };
      match t.access with
      | None -> ()
      | Some log ->
        let queue_us = int_of_float ((now -. p.enqueued_at) *. 1e6) in
        Access_log.log_check log
          { Access_log.id = p.id; verdict = None; wall_us = queue_us;
            queue_us; solve_us = 0;
            deadline_slack_ms =
              Option.map (fun d -> (d -. now) *. 1e3) p.deadline;
            error = Some (Protocol.kind_name Protocol.Deadline_exceeded);
            span_id = -1 })
    dead;
  (* Booleanization can refuse a pair (head lengths differ); that is the
     client's mistake, not the batch's — answer it typed and keep going. *)
  let jobs =
    List.filter_map
      (fun p ->
        if Query.is_boolean p.q1 && Query.is_boolean p.q2 then
          Some (p, p.q1, p.q2)
        else
          match Reductions.booleanize p.q1 p.q2 with
          | q1, q2 -> Some (p, q1, q2)
          | exception Invalid_argument msg ->
            send_error t p.conn
              { Protocol.id = p.id; kind = Protocol.Bad_request;
                message = msg };
            None)
      live
  in
  if jobs <> [] then begin
    Obs.Metrics.set_gauge g_in_flight (List.length jobs);
    let results =
      Obs.Span.with_span ~name:"serve.batch"
        ~attrs:[ ("requests", Obs.Span.Int (List.length jobs)) ]
      @@ fun () ->
      Bagcqc_par.Pool.parallel_map_list
        (fun (p, q1, q2) ->
          let t0 = Unix.gettimeofday () in
          let r, span_id =
            Obs.Span.with_span ~name:"serve.request" @@ fun () ->
            (* Remembered so a slow request's access-log line can carry
               this span's subtree once it has closed. *)
            let sid = Obs.Span.current_id () in
            (Containment.decide_result ~max_factors:p.max_factors q1 q2, sid)
          in
          (p, r, Unix.gettimeofday () -. t0, span_id))
        jobs
    in
    Obs.Metrics.set_gauge g_in_flight 0;
    List.iter
      (fun ((p : pending), r, solve_s, span_id) ->
        let queue_s = now -. p.enqueued_at in
        (* Latency histograms are always on: one log₂ bucket bump per
           request against timestamps already taken, and they are what
           makes /metrics useful without tracing enabled. *)
        let queue_us = int_of_float (queue_s *. 1e6) in
        let solve_us = int_of_float (solve_s *. 1e6) in
        Obs.Metrics.observe h_queue_us queue_us;
        Obs.Metrics.observe h_solve_us solve_us;
        Obs.Metrics.observe h_request_us (queue_us + solve_us);
        (match r with
         | Ok verdict ->
           send t p.conn
             (Protocol.ok p.id
                (Protocol.verdict_fields
                   ~want_certificate:p.want_certificate verdict
                 @ [ ("queue_ms", Json.Num (queue_s *. 1e3));
                     ("solve_ms", Json.Num (solve_s *. 1e3)) ]))
         | Error e ->
           Obs.Metrics.bump c_errors;
           send t p.conn (Protocol.internal_error ~id:p.id e));
        match t.access with
        | None -> ()
        | Some log ->
          let done_at = now +. solve_s in
          Access_log.log_check log
            { Access_log.id = p.id;
              verdict =
                (match r with
                 | Ok v -> Some (Protocol.verdict_name v)
                 | Error _ -> None);
              wall_us = queue_us + solve_us; queue_us; solve_us;
              deadline_slack_ms =
                Option.map (fun d -> (d -. done_at) *. 1e3) p.deadline;
              error =
                (match r with
                 | Ok _ -> None
                 | Error _ -> Some (Protocol.kind_name Protocol.Internal));
              span_id })
      results
  end

let dispatcher_body t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.qm;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.qc t.qm
    done;
    let batch = ref [] in
    while not (Queue.is_empty t.queue) do
      batch := Queue.pop t.queue :: !batch
    done;
    Obs.Metrics.set_gauge g_queue_depth 0;
    if !batch = [] && t.draining then continue := false;
    Mutex.unlock t.qm;
    match List.rev !batch with
    | [] -> ()
    | batch -> (
      try process_batch t batch
      with e ->
        (* A dispatcher death would hang every queued client; answer what
           we can and keep serving.  decide_result already reifies the
           expected failure modes, so this is strictly a backstop. *)
        let msg = "unexpected server error: " ^ Printexc.to_string e in
        List.iter
          (fun p ->
            send_error t p.conn
              { Protocol.id = p.id; kind = Protocol.Internal; message = msg })
          batch)
  done

(* ---------------- connections ---------------- *)

let close_conn t conn =
  Mutex.lock conn.wm;
  let was_alive = conn.alive in
  conn.alive <- false;
  Mutex.unlock conn.wm;
  if was_alive then begin
    (try flush conn.oc with Sys_error _ -> ());
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* Drop the record so a later drain cannot shoot a reused fd. *)
    Mutex.lock t.cm;
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    Mutex.unlock t.cm
  end

let handle_line t conn line =
  if String.trim line = "" then ()
  else
    match Protocol.parse_line line with
    | Error err -> send_error t conn err
    | Ok env -> (
      match env.Protocol.request with
      | Protocol.Ping ->
        send t conn (Protocol.ok env.Protocol.id [ ("pong", Json.Bool true) ])
      | Protocol.Stats ->
        send t conn (Protocol.ok env.Protocol.id (stats_fields t))
      | Protocol.Shutdown ->
        send t conn
          (Protocol.ok env.Protocol.id [ ("draining", Json.Bool true) ]);
        initiate_drain t
      | Protocol.Check { q1; q2; max_factors; want_certificate } ->
        let now = Unix.gettimeofday () in
        let deadline_ms =
          match env.Protocol.deadline_ms with
          | Some _ as d -> d
          | None -> t.cfg.default_deadline_ms
        in
        let deadline = Option.map (fun ms -> now +. (ms /. 1000.0)) deadline_ms in
        enqueue t
          { conn; id = env.Protocol.id; q1; q2; max_factors;
            want_certificate; deadline; enqueued_at = now })

let reader_body t conn =
  (try
     while conn.alive do
       let line = input_line conn.ic in
       handle_line t conn line
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  close_conn t conn

let spawn_reader t fd =
  let conn =
    { fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      wm = Mutex.create ();
      alive = true }
  in
  Obs.Metrics.bump c_connections;
  Mutex.lock t.cm;
  t.conns <- conn :: t.conns;
  t.readers <- Thread.create (reader_body t) conn :: t.readers;
  Mutex.unlock t.cm

(* ---------------- listen / accept ---------------- *)

let listen_socket = function
  | Protocol.Unix_path path ->
    (* A stale socket file from a crashed predecessor would make bind
       fail forever; connect() semantics distinguish live servers (the
       CLI refuses to clobber a *connectable* socket). *)
    (match Unix.lstat path with
     | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
     | _ -> ()
     | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd
  | Protocol.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found ->
          raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 64
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd

let accept_loop t listen_fd =
  let continue = ref true in
  while !continue do
    match Unix.select [ listen_fd; t.pipe_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      if List.mem t.pipe_r ready then continue := false
      else if List.mem listen_fd ready then (
        match Unix.accept ~cloexec:true listen_fd with
        | fd, _ -> spawn_reader t fd
        | exception Unix.Unix_error _ -> ())
  done

(* ---------------- lifecycle ---------------- *)

let run cfg =
  List.iter (fun n -> ignore (Obs.Window.track n)) windowed_counters;
  (* Baseline sample at boot: movement from the very first request is
     visible to delta/rate even before the ticker's first pass. *)
  Obs.Window.tick_all ();
  let listen_fd = listen_socket cfg.addr in
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  let access =
    Option.map
      (fun path ->
        Access_log.open_ ~path ~sample:cfg.log_sample ~slow_ms:cfg.slow_ms)
      cfg.access_log
  in
  let t =
    { cfg; qm = Mutex.create (); qc = Condition.create ();
      queue = Queue.create (); draining = false; cm = Mutex.create ();
      conns = []; readers = []; pipe_r; pipe_w; access;
      ticker_stop = Atomic.make false }
  in
  let http =
    Option.map (fun port -> Http.start ~port (http_handler t)) cfg.metrics_port
  in
  let ticker = Thread.create ticker_body t in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let on_signal = Sys.Signal_handle (fun _ -> wake t) in
  let old_term = Sys.signal Sys.sigterm on_signal in
  let old_int = Sys.signal Sys.sigint on_signal in
  let dispatcher = Thread.create dispatcher_body t in
  if cfg.banner then begin
    Format.printf "bagcqc serve: listening on %a@." Protocol.pp_addr cfg.addr;
    Option.iter
      (fun h -> Format.printf "bagcqc serve: metrics on 127.0.0.1:%d@." (Http.port h))
      http
  end;
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigpipe old_pipe)
    (fun () ->
      accept_loop t listen_fd;
      (* Drain: no new connections or work; every queued request is still
         answered before any socket closes.  The telemetry listener stays
         up through the whole drain — that is what lets a load balancer
         watch /readyz flip to 503 while in-flight work completes. *)
      initiate_drain t;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match cfg.addr with
       | Protocol.Unix_path path ->
         (try Unix.unlink path with Unix.Unix_error _ -> ())
       | Protocol.Tcp _ -> ());
      Thread.join dispatcher;
      Bagcqc_par.Pool.quiesce ();
      (* Readers may be parked in input_line; shutting the sockets down
         gives them EOF, then they can be joined. *)
      Mutex.lock t.cm;
      let conns = t.conns and readers = t.readers in
      Mutex.unlock t.cm;
      List.iter
        (fun c ->
          try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        conns;
      List.iter Thread.join readers;
      Atomic.set t.ticker_stop true;
      Thread.join ticker;
      Option.iter Http.stop http;
      Option.iter Access_log.close t.access;
      (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
      (try Unix.close t.pipe_w with Unix.Unix_error _ -> ()))
