(** Structured JSONL access log with slow-request capture.

    One {"type":"access"} line per completed check request: echoed id,
    verdict or error kind, wall/queue/solve µs, per-request pivots and
    cache tier (from the request's span subtree, when tracing is on),
    and remaining deadline slack.  Sampling keeps every Nth request;
    slow requests and errors always log.  A request whose wall time
    exceeds [slow_ms] additionally carries its span subtree in a
    ["spans"] array (the {!Bagcqc_obs.Export} JSONL span shape), so tail
    outliers arrive with their own trace attached. *)

module Json := Bagcqc_obs.Json

type t

val open_ : path:string -> sample:int -> slow_ms:float option -> t
(** Truncate-open [path].  [sample <= 1] logs every request. *)

val close : t -> unit

type entry = {
  id : Json.t;  (** echoed request id *)
  verdict : string option;  (** [None] on error *)
  wall_us : int;  (** queue + solve *)
  queue_us : int;
  solve_us : int;
  deadline_slack_ms : float option;
      (** deadline minus completion time; [None] without a deadline *)
  error : string option;  (** protocol error kind *)
  span_id : int;  (** the request's root span id, [-1] when tracing is off *)
}

val log_check : t -> entry -> unit
(** Log (or sample away) one completed check. *)
