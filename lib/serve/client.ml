module Json = Bagcqc_obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable open_ : bool;
}

let sockaddr_of = function
  | Protocol.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Protocol.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found ->
          raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))

let connect ?(retry_ms = 0) addr =
  let domain, sockaddr = sockaddr_of addr in
  let give_up_at = Unix.gettimeofday () +. (float_of_int retry_ms /. 1000.0) in
  let rec go () =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () ->
      { fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
        open_ = true }
    | exception
        Unix.Unix_error ((ECONNREFUSED | ENOENT | ECONNRESET), _, _)
      when Unix.gettimeofday () < give_up_at ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      go ()
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go ()

let send_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv_line c =
  match input_line c.ic with
  | line -> Some line
  | exception End_of_file -> None

let request c json =
  send_line c (Json.to_string json);
  Option.map Json.parse (recv_line c)

let close c =
  if c.open_ then begin
    c.open_ <- false;
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end
