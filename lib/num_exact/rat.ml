(* Rationals in lowest terms with positive denominator. *)

type t = { n : Bigint.t; d : Bigint.t }

let make num den =
  let s = Bigint.sign den in
  if s = 0 then raise Division_by_zero
  else begin
    let num, den = if s < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    if Bigint.is_zero num then { n = Bigint.zero; d = Bigint.one }
    else
      let g = Bigint.gcd num den in
      { n = Bigint.div num g; d = Bigint.div den g }
  end

let of_bigint n = { n; d = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let half = of_ints 1 2

let num x = x.n
let den x = x.d
let sign x = Bigint.sign x.n
let is_zero x = Bigint.is_zero x.n
let is_integer x = Bigint.equal x.d Bigint.one

let equal a b = Bigint.equal a.n b.n && Bigint.equal a.d b.d

let compare a b =
  (* a.n/a.d ? b.n/b.d  <=>  a.n*b.d ? b.n*a.d  (denominators positive). *)
  Bigint.compare (Bigint.mul a.n b.d) (Bigint.mul b.n a.d)

let hash x = (Bigint.hash x.n * 65599) lxor Bigint.hash x.d

let neg x = { x with n = Bigint.neg x.n }
let abs x = { x with n = Bigint.abs x.n }

let inv x =
  if is_zero x then raise Division_by_zero
  else if Bigint.sign x.n > 0 then { n = x.d; d = x.n }
  else { n = Bigint.neg x.d; d = Bigint.neg x.n }

let add a b =
  (* Zero shortcuts: additions against 0 dominate sparse pivoting. *)
  if Bigint.is_zero a.n then b
  else if Bigint.is_zero b.n then a
  else if Bigint.equal a.d b.d then
    (* Common denominator (always true for integers): one gcd in [make]. *)
    make (Bigint.add a.n b.n) a.d
  else
    (* gcd of denominators keeps intermediates small. *)
    let g = Bigint.gcd a.d b.d in
    let da = Bigint.div a.d g and db = Bigint.div b.d g in
    make (Bigint.add (Bigint.mul a.n db) (Bigint.mul b.n da)) (Bigint.mul a.d db)

let sub a b = add a (neg b)

let is_one x = Bigint.equal x.n Bigint.one && Bigint.equal x.d Bigint.one
let is_minus_one x = Bigint.equal x.n Bigint.minus_one && Bigint.equal x.d Bigint.one

let mul a b =
  (* ±1/0 shortcuts: simplex pivots scale rows by 1 and eliminate with ±1
     coefficients far more often than with anything else. *)
  if Bigint.is_zero a.n || Bigint.is_zero b.n then zero
  else if is_one a then b
  else if is_one b then a
  else if is_minus_one a then neg b
  else if is_minus_one b then neg a
  else
    (* Cross-cancel before multiplying. *)
    let g1 = Bigint.gcd (Bigint.abs a.n) b.d in
    let g2 = Bigint.gcd (Bigint.abs b.n) a.d in
    { n = Bigint.mul (Bigint.div a.n g1) (Bigint.div b.n g2);
      d = Bigint.mul (Bigint.div a.d g2) (Bigint.div b.d g1) }

let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor x =
  let q, r = Bigint.divmod x.n x.d in
  if Bigint.sign r < 0 then Bigint.pred q else q

let ceil x =
  let q, r = Bigint.divmod x.n x.d in
  if Bigint.sign r > 0 then Bigint.succ q else q

let to_float x = Bigint.to_float x.n /. Bigint.to_float x.d

(* Every finite float is a dyadic rational m·2^e with |m| < 2^53: frexp
   splits off the exponent, scaling the mantissa by 2^53 makes it an
   exact integer, and the power of two lands in the numerator or the
   denominator depending on the sign of the adjusted exponent.  No
   rounding anywhere. *)
let of_float_dyadic f =
  if not (Float.is_finite f) then
    invalid_arg "Rat.of_float_dyadic: not a finite float";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* |m| ∈ [1/2, 1), so |m·2^53| ∈ [2^52, 2^53) is exactly an int. *)
    let mi = int_of_float (Float.ldexp m 53) in
    let e = e - 53 in
    if e >= 0 then of_bigint (Bigint.shift_left (Bigint.of_int mi) e)
    else make (Bigint.of_int mi) (Bigint.shift_left Bigint.one (-e))
  end

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    make
      (Bigint.of_string (String.sub s 0 i))
      (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if frac = "" then of_bigint (Bigint.of_string int_part)
       else begin
         let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
         let whole = Bigint.of_string (if int_part = "" || int_part = "-" || int_part = "+" then int_part ^ "0" else int_part) in
         let fpart = Bigint.of_string frac in
         let neg_sign = String.length s > 0 && s.[0] = '-' in
         let total =
           Bigint.add (Bigint.mul (Bigint.abs whole) scale) fpart
         in
         make (if neg_sign then Bigint.neg total else total) scale
       end)

let of_string_opt s =
  match of_string s with
  | r -> Some r
  | exception (Invalid_argument _ | Division_by_zero) -> None

let to_string x =
  if is_integer x then Bigint.to_string x.n
  else Bigint.to_string x.n ^ "/" ^ Bigint.to_string x.d

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( +/ ) = add
  let ( -/ ) = sub
  let ( */ ) = mul
  let ( // ) = div
  let ( =/ ) = equal
  let ( </ ) a b = compare a b < 0
  let ( <=/ ) a b = compare a b <= 0
  let ( >/ ) a b = compare a b > 0
  let ( >=/ ) a b = compare a b >= 0
end
