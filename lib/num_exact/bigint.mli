(** Arbitrary-precision signed integers.

    Implemented from scratch (the environment provides no [zarith]) as a
    two-level representation: machine-word values are stored unboxed
    ([Small of int]) with overflow-checked native fast paths for
    add/sub/mul/compare/gcd/divmod, falling back to sign-magnitude numbers
    over base-2{^30} limbs only when a value exceeds 62 bits.  All
    operations are purely functional.  This is the numeric bedrock for the
    exact rational arithmetic ({!Rat}) used by the simplex solver and for
    the exact log-integer comparisons ({!Logint}) used when comparing
    entropies of uniform relations. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_float : t -> float
(** Nearest-float approximation; may overflow to [infinity]. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [r] having the sign of [a]
    (truncation toward zero) and [|r| < |b|].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x k] for [k >= 0].  @raise Invalid_argument on negative [k]. *)

val shift_left : t -> int -> t
(** Multiplication by 2{^k}. *)

val shift_right : t -> int -> t
(** [shift_right x k] shifts the {e magnitude} right by [k] bits (i.e.
    [sign x * (|x| / 2^k)] with truncation toward zero). *)

val testbit : t -> int -> bool
(** [testbit x i] is bit [i] of the magnitude [|x|] (bit 0 is the least
    significant).  False for every [i >= num_bits x]. *)

val min : t -> t -> t
val max : t -> t -> t

val num_bits : t -> int
(** Number of bits of the magnitude; [num_bits zero = 0]. *)

val of_string : string -> t
(** Decimal, with optional leading [-] or [+].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(**/**)

(** Test-only access to the dual representation: lets property tests run
    the magnitude-array slow paths on operands that would normally take
    the native fast path, and observe which representation a value uses.
    [force_big] produces a deliberately {e non-canonical} value — use it
    only as an operand to arithmetic, never compare it structurally. *)
module Testing : sig
  val is_small : t -> bool
  val force_big : t -> t
end

(**/**)
