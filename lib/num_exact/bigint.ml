(* Arbitrary-precision signed integers with a small-integer fast path.

   Representation (see DESIGN.md, "Small/Big bignums"):

     type t = Small of int | Big of { sign; mag }

   [Small n] holds any native int except [min_int]; [Big] is sign-magnitude
   over base-2^30 limbs, little-endian, and is only used for values whose
   magnitude needs more than 62 bits (i.e. |v| > max_int, plus the single
   value [min_int] whose magnitude is not a valid [Small]).  The
   representation is canonical: every value has exactly one encoding, so
   structural equality coincides with numeric equality and [compare] can
   dispatch on the constructor.

   All the hot operations (add/sub/mul/compare/gcd/divmod) take an
   allocation-free native-int path when both operands are [Small] and the
   result provably fits, detecting overflow exactly (sign-algebra checks
   for add/sub, a division check for mul) and falling back to the magnitude
   arrays otherwise.  The entropic LPs solved by {!Bagcqc_lp.Simplex} have
   coefficients that are almost all ±1/±2, so in practice the fallback is
   cold.

   Magnitude invariants: [mag] has no most-significant zero limb;
   [sign = 0] iff [mag] is empty; every limb is in [0, base).  Division
   follows Knuth's Algorithm D; with 63-bit native ints and 30-bit limbs
   every intermediate product (at most 61 bits) fits without overflow. *)

type t =
  | Small of int                          (* any int except min_int *)
  | Big of { sign : int; mag : int array } (* canonical: |v| > max_int *)

let base_bits = 30
let base = 1 lsl base_bits
let limb_mask = base - 1

let zero = Small 0
let one = Small 1
let two = Small 2
let minus_one = Small (-1)

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned little-endian int array) primitives.            *)
(* ------------------------------------------------------------------ *)

let mag_norm a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_of_int n =
  (* n >= 0; [min_int] is handled by the caller. *)
  if n = 0 then [||]
  else if n < base then [| n |]
  else if n lsr base_bits < base then [| n land limb_mask; n lsr base_bits |]
  else
    [| n land limb_mask;
       (n lsr base_bits) land limb_mask;
       n lsr (2 * base_bits) |]

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  mag_norm r

(* Precondition: a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_norm r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let p = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- p land limb_mask;
        carry := p lsr base_bits
      done;
      (* Propagate the final carry (it can exceed one limb only by 0). *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let p = r.(!k) + !carry in
        r.(!k) <- p land limb_mask;
        carry := p lsr base_bits;
        incr k
      done
    done;
    mag_norm r
  end

let mag_shift_left a bits =
  if Array.length a = 0 || bits = 0 then a
  else begin
    let limbs = bits / base_bits and rest = bits mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl rest in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr base_bits
    done;
    mag_norm r
  end

let mag_shift_right a bits =
  let limbs = bits / base_bits and rest = bits mod base_bits in
  let la = Array.length a in
  if limbs >= la then [||]
  else begin
    let lr = la - limbs in
    let r = Array.make lr 0 in
    for i = 0 to lr - 1 do
      let lo = a.(i + limbs) lsr rest in
      let hi = if i + limbs + 1 < la && rest > 0 then a.(i + limbs + 1) lsl (base_bits - rest) else 0 in
      r.(i) <- (lo lor hi) land limb_mask
    done;
    mag_norm r
  end

let limb_leading_zeros v =
  (* Zeros within the 30-bit limb width; v in (0, base). *)
  let rec loop n m = if m land (base lsr 1) <> 0 then n else loop (n + 1) (m lsl 1) in
  loop 0 v

let mag_bits a =
  let n = Array.length a in
  if n = 0 then 0
  else (n - 1) * base_bits + (base_bits - limb_leading_zeros a.(n - 1))

(* Division of magnitudes by a single limb d > 0: returns (quotient, rem). *)
let mag_divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_norm q, !r)

(* Knuth Algorithm D.  Precondition: Array.length v >= 2, u >= v. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  let shift = limb_leading_zeros v.(n - 1) in
  let vn = mag_shift_left v shift in
  let un0 = mag_shift_left u shift in
  let m = Array.length un0 - n in
  (* Working copy with one guaranteed extra high limb. *)
  let un = Array.make (Array.length un0 + 1) 0 in
  Array.blit un0 0 un 0 (Array.length un0);
  let m = if m < 0 then 0 else m in
  let q = Array.make (m + 1) 0 in
  let v_hi = vn.(n - 1) and v_lo = if n >= 2 then vn.(n - 2) else 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (num / v_hi) and rhat = ref (num mod v_hi) in
    let continue_adjust = ref true in
    while !continue_adjust do
      if !qhat >= base || !qhat * v_lo > (!rhat lsl base_bits) lor un.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + v_hi;
        if !rhat >= base then continue_adjust := false
      end
      else continue_adjust := false
    done;
    (* Multiply and subtract qhat * vn from un[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * vn.(i) + !carry in
      carry := p lsr base_bits;
      let d = un.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin un.(i + j) <- d + base; borrow := 1 end
      else begin un.(i + j) <- d; borrow := 0 end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add vn back. *)
      un.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = un.(i + j) + vn.(i) + !c in
        un.(i + j) <- s land limb_mask;
        c := s lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land limb_mask
    end
    else un.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right (mag_norm (Array.sub un 0 n)) shift in
  (mag_norm q, r)

let mag_divmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | _ when mag_cmp u v < 0 -> ([||], u)
  | 1 ->
    let q, r = mag_divmod_limb u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> mag_divmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Canonicalization between the two representations.                   *)
(* ------------------------------------------------------------------ *)

(* [make sign mag] builds the canonical value [sign * mag]: [Small]
   whenever the magnitude fits in 62 bits (|v| <= max_int), [Big]
   otherwise. *)
let make sign mag =
  let mag = mag_norm mag in
  let n = Array.length mag in
  if n = 0 then zero
  else if mag_bits mag <= 62 then begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl base_bits) lor mag.(i)
    done;
    Small (sign * !v)
  end
  else Big { sign; mag }

(* Decompose into (sign, magnitude) for the slow paths.  Safe for any
   [Small] because [min_int] is never stored as [Small]. *)
let parts = function
  | Small n ->
    if n = 0 then (0, [||])
    else if n > 0 then (1, mag_of_int n)
    else (-1, mag_of_int (-n))
  | Big { sign; mag } -> (sign, mag)

(* Identity on canonical values (everything arithmetic builds), so the
   operand-passthrough shortcuts below can return an operand without
   leaking a non-canonical representation — [Testing.force_big] builds
   such operands on purpose to exercise the slow paths. *)
let canon = function
  | Small _ as x -> x
  | Big { sign; mag } -> make sign mag

let of_int n =
  if n = min_int then
    (* |min_int| = 2^62 needs 63 bits of magnitude. *)
    Big { sign = -1; mag = [| 0; 0; 4 |] }
  else Small n

let sign = function Small n -> compare n 0 | Big b -> b.sign
let is_zero = function Small 0 -> true | _ -> false

let neg = function
  | Small n -> Small (-n) (* n <> min_int *)
  | Big b -> Big { b with sign = -b.sign }

let abs x = if sign x < 0 then neg x else x

let compare a b =
  match a, b with
  | Small a, Small b -> Stdlib.compare a b
  | Big x, Big y ->
    if x.sign <> y.sign then Stdlib.compare x.sign y.sign
    else if x.sign >= 0 then mag_cmp x.mag y.mag
    else mag_cmp y.mag x.mag
  (* |Big| > max_int >= any Small, so only the Big's sign matters. *)
  | Small _, Big y -> -y.sign
  | Big x, Small _ -> x.sign

let equal a b =
  match a, b with
  | Small a, Small b -> a = b
  | Big x, Big y -> x.sign = y.sign && mag_cmp x.mag y.mag = 0
  | Small _, Big _ | Big _, Small _ -> false

let hash = function
  | Small n -> n * 1000003
  | Big { sign; mag } ->
    Array.fold_left (fun acc limb -> (acc * 1000003) lxor limb) (sign + 1) mag

(* Slow path over magnitudes, shared by add and sub. *)
let add_parts (sa, ma) (sb, mb) =
  if sa = 0 then make sb mb
  else if sb = 0 then make sa ma
  else if sa = sb then make sa (mag_add ma mb)
  else
    let c = mag_cmp ma mb in
    if c = 0 then zero
    else if c > 0 then make sa (mag_sub ma mb)
    else make sb (mag_sub mb ma)

let add a b =
  match a, b with
  | Small a, Small b ->
    let s = a + b in
    (* Overflow iff both operands have the sign bit opposite to the sum's;
       also shunt [min_int] to the canonical Big form. *)
    if (a lxor s) land (b lxor s) < 0 || s = min_int then
      add_parts (parts (Small a)) (parts (Small b))
    else Small s
  | _ -> add_parts (parts a) (parts b)

let sub a b =
  match a, b with
  | Small a, Small b ->
    let s = a - b in
    if (a lxor b) land (a lxor s) < 0 || s = min_int then
      add_parts (parts (Small a)) (parts (neg (Small b)))
    else Small s
  | _ -> add_parts (parts a) (parts (neg b))

let succ a = add a one
let pred a = sub a one

let mul a b =
  match a, b with
  | Small 0, _ | _, Small 0 -> zero
  | Small 1, b -> canon b
  | a, Small 1 -> canon a
  | Small (-1), b -> neg (canon b)
  | a, Small (-1) -> neg (canon a)
  | Small a, Small b ->
    let p = a * b in
    (* Division-based exact overflow check: operands exclude min_int and
       ±1/0 are handled above, so [p / b] cannot itself overflow, and a
       wrapped product is always at least 1 off after dividing back. *)
    if p <> min_int && p / b = a then Small p
    else
      let sa, ma = parts (Small a) and sb, mb = parts (Small b) in
      make (sa * sb) (mag_mul ma mb)
  | _ ->
    let sa, ma = parts a and sb, mb = parts b in
    if sa = 0 || sb = 0 then zero else make (sa * sb) (mag_mul ma mb)

let divmod a b =
  match a, b with
  | _, Small 0 -> raise Division_by_zero
  | Small 0, _ -> (zero, zero)
  | Small a, Small b ->
    (* min_int / -1 is impossible: min_int is never Small. *)
    (Small (a / b), Small (a mod b))
  | _ ->
    let sa, ma = parts a and sb, mb = parts b in
    if sb = 0 then raise Division_by_zero
    else if sa = 0 then (zero, zero)
    else
      let qm, rm = mag_divmod ma mb in
      (make (sa * sb) qm, make sa rm)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let shift_left x bits =
  if bits = 0 || is_zero x then x
  else
    match x with
    | Small n when bits < 62 ->
      let m = if n > 0 then n else -n in
      (* Shift stays in native range iff the top bit stays below bit 62. *)
      if mag_bits (mag_of_int m) + bits <= 62 then Small (n lsl bits)
      else
        let s, mag = parts x in
        make s (mag_shift_left mag bits)
    | _ ->
      let s, mag = parts x in
      make s (mag_shift_left mag bits)

let num_bits x =
  match x with
  | Small 0 -> 0
  | Small n -> mag_bits (mag_of_int (if n > 0 then n else -n))
  | Big b -> mag_bits b.mag

let shift_right x bits =
  if bits = 0 || is_zero x then canon x
  else
    let s, mag = parts x in
    make s (mag_shift_right mag bits)

let testbit x i =
  match x with
  | Small n ->
    let m = if n >= 0 then n else -n in
    i < 62 && (m lsr i) land 1 = 1
  | Big { mag; _ } ->
    let limb = i / base_bits and off = i mod base_bits in
    limb < Array.length mag && (mag.(limb) lsr off) land 1 = 1

let gcd a b =
  match abs a, abs b with
  | Small 0, y -> canon y
  | x, Small 0 -> canon x
  | Small a, Small b ->
    (* Euclid on non-negative native ints; the result divides both
       operands, so it always fits. *)
    let rec go a b = if b = 0 then a else go b (a mod b) in
    Small (go a b)
  | a, b ->
    (* Binary GCD: avoids full divisions on large operands. *)
    let sm = mag_shift_right and cmp = mag_cmp in
    let rec twos m n = if Array.length m > 0 && m.(0) land 1 = 0 then twos (sm m 1) (n + 1) else (m, n) in
    let ma = snd (parts a) and mb = snd (parts b) in
    if Array.length ma = 0 then make 1 mb
    else if Array.length mb = 0 then make 1 ma
    else
    let ma, ka = twos ma 0 in
    let mb, kb = twos mb 0 in
    let k = if ka < kb then ka else kb in
    let rec loop a b =
      (* Both odd. *)
      let c = cmp a b in
      if c = 0 then a
      else
        let big, small = if c > 0 then (a, b) else (b, a) in
        let d, _ = twos (mag_sub big small) 0 in
        loop d small
    in
    make 1 (mag_shift_left (loop ma mb) k)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else if k land 1 = 1 then go (mul acc b) (mul b b) (k lsr 1)
    else go acc (mul b b) (k lsr 1)
  in
  go one x k

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int_opt = function
  | Small n -> Some n
  | Big _ -> None (* canonical Big never fits (min_int excluded for history) *)

let to_float = function
  | Small n -> float_of_int n
  | Big { sign; mag } ->
    let m = Array.length mag in
    let v = ref 0.0 in
    for i = m - 1 downto 0 do
      v := (!v *. float_of_int base) +. float_of_int mag.(i)
    done;
    float_of_int sign *. !v

let ten = Small 10

let to_string = function
  | Small n -> string_of_int n
  | Big { sign; mag } ->
    let buf = Buffer.create 32 in
    (* Extract base-10^9 digits, least significant first. *)
    let rec chunks acc m =
      if Array.length m = 0 then acc
      else
        let q, r = mag_divmod_limb m 1_000_000_000 in
        chunks (r :: acc) q
    in
    (match chunks [] mag with
     | [] -> assert false
     | d :: rest ->
       if sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int d);
       List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%09d" d)) rest);
    Buffer.contents buf

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
      acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
    | _ -> invalid_arg "Bigint.of_string: invalid character"
  done;
  if neg_sign then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Testing = struct
  let is_small = function Small _ -> true | Big _ -> false

  let force_big x =
    (* Deliberately non-canonical: a value that fits [Small] re-encoded as
       [Big], so property tests can drive the magnitude-array slow paths
       on the same operands the fast paths see.  Only valid as an operand
       to arithmetic (results are re-canonicalized by [make]); never
       compare a forced value structurally. *)
    match x with
    | Big _ -> x
    | Small _ ->
      let s, mag = parts x in
      Big { sign = s; mag }
end
