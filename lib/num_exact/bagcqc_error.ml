type kind =
  | Invariant of string
  | Overflow of string
  | Unsupported of string

type t = { where : string; kind : kind }

exception Error of t

let invariant ~where msg = raise (Error { where; kind = Invariant msg })
let overflow ~where msg = raise (Error { where; kind = Overflow msg })
let unsupported ~where msg = raise (Error { where; kind = Unsupported msg })

let protect f = match f () with v -> Ok v | exception Error e -> Error e

let to_string { where; kind } =
  match kind with
  | Invariant msg -> Printf.sprintf "%s: invariant violation: %s" where msg
  | Overflow msg -> Printf.sprintf "%s: overflow: %s" where msg
  | Unsupported msg -> Printf.sprintf "%s: unsupported: %s" where msg

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* Register a printer so an uncaught Error still names the site instead of
   printing an opaque constructor. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Bagcqc_error.Error: " ^ to_string e)
    | _ -> None)
