(* Formal sums of logarithms with rational coefficients, compared exactly.

   The seed implementation decided the sign of Σ cᵢ·log bᵢ by clearing
   denominators and exponentiating back to integers: compare
   Π bᵢ^eᵢ over positive vs. negative exponents, with Bigint.pow on a
   native-int exponent.  That blows up twice — the powers themselves have
   Θ(eᵢ·log bᵢ) bits, and any exponent beyond native-int range was a
   [failwith].  Entropy comparisons from the paper (Theorem 4.4 against
   |P| = product-of-sizes relations, Example 4.3 scaled by large step
   multiplicities) can legitimately produce such exponents, so [sign] must
   be total.

   The rewrite decides the sign in three stages, none of which ever
   materializes a full power:

   1. {b Coprime refinement} (factor refinement à la Bach–Driscoll–
      Shallit, gcds only): rewrite the term list over a pairwise-coprime
      base set, aggregating coefficients.  Pairwise-coprime integers > 1
      have multiplicatively independent logarithms (their powers have
      disjoint prime supports), so the sum is exactly zero iff {e every}
      aggregated coefficient is zero.  This settles all exact
      cancellations — e.g. ½·log 9 − log 3, or log(2^k) vs k·log 2 for
      astronomical k — with no exponentiation at all.

   2. {b Interval fast path}: evaluate Σ Eⱼ·log₂ qⱼ in floating point
      with a conservative error bound; decided whenever zero lies outside
      the interval.  After stage 1 the sum is known nonzero, so this
      resolves the overwhelming majority of inputs.

   3. {b Chunked exact fallback}: on overlap, compare
      Π qⱼ^Eⱼ⁺ against Π qⱼ^Eⱼ⁻ in directed-rounding big-float
      arithmetic — mantissas truncated to [prec] bits (rounded down for
      the lower bound, up for the upper), exponents kept as Bigints —
      with each power computed by binary exponentiation over the bits of
      the Bigint exponent ([num_bits E] squarings of [prec]-bit
      mantissas, never a full power).  Precision escalates geometrically
      until the two intervals separate; stage 1 guarantees the compared
      values differ, so separation is reached at some finite precision.
      A generous defensive ceiling turns a (mathematically impossible)
      non-separation into a typed {!Bagcqc_error} rather than a loop. *)

module BMap = Map.Make (struct
  type t = Bigint.t
  let compare = Bigint.compare
end)

type t = Rat.t BMap.t
(* Invariant: keys > 1, values nonzero. *)

let zero = BMap.empty

let log a =
  if Bigint.sign a <= 0 then invalid_arg "Logint.log: non-positive argument";
  if Bigint.equal a Bigint.one then BMap.empty else BMap.singleton a Rat.one

let log_int n = log (Bigint.of_int n)

let add_term base coeff m =
  if Bigint.equal base Bigint.one || Rat.is_zero coeff then m
  else
    BMap.update base
      (function
        | None -> Some coeff
        | Some c ->
          let c' = Rat.add c coeff in
          if Rat.is_zero c' then None else Some c')
      m

let add a b = BMap.fold add_term b a
let neg a = BMap.map Rat.neg a
let sub a b = add a (neg b)

let scale c a = if Rat.is_zero c then zero else BMap.map (Rat.mul c) a

(* ------------------------------------------------------------------ *)
(* Stage 1: coprime (factor) refinement.                               *)
(* ------------------------------------------------------------------ *)

(* Rewrite [(b, c)] terms over pairwise-coprime bases.  One step: a pair
   with g = gcd(b₁,b₂) > 1 becomes (b₁/g, c₁), (b₂/g, c₂), (g, c₁+c₂) —
   value-preserving since b₁^c₁·b₂^c₂ = (b₁/g)^c₁·(b₂/g)^c₂·g^(c₁+c₂).
   Each step divides the product of all bases by g ≥ 2, so the fixpoint
   (all pairs coprime) is reached after at most log₂(Π bᵢ) steps.  Bases
   equal to 1 and zero coefficients contribute nothing and are dropped as
   they appear. *)
let refine terms =
  let merge l =
    BMap.bindings (List.fold_left (fun m (b, c) -> add_term b c m) BMap.empty l)
  in
  let rec split_pair l =
    (* First pair (i < j) with a nontrivial gcd, if any. *)
    match l with
    | [] -> None
    | (b1, c1) :: rest ->
      let rec scan acc = function
        | [] -> None
        | (b2, c2) :: tl ->
          let g = Bigint.gcd b1 b2 in
          if Bigint.equal g Bigint.one then scan ((b2, c2) :: acc) tl
          else
            Some
              ((Bigint.div b1 g, c1) :: (Bigint.div b2 g, c2)
               :: (g, Rat.add c1 c2) :: List.rev_append acc tl)
      in
      (match scan [] rest with
       | Some l' -> Some l'
       | None ->
         (match split_pair rest with
          | Some rest' -> Some ((b1, c1) :: rest')
          | None -> None))
  in
  let rec fix l =
    match split_pair l with None -> l | Some l' -> fix (merge l')
  in
  fix (merge terms)

(* ------------------------------------------------------------------ *)
(* Stage 2: float interval.                                            *)
(* ------------------------------------------------------------------ *)

(* log₂ of a positive Bigint with ~1 ulp relative error even when the
   value overflows float range: split off all but the top 53 bits. *)
let log2_bigint b =
  let nb = Bigint.num_bits b in
  if nb <= 53 then Float.log (Bigint.to_float b) /. Float.log 2.0
  else
    let s = nb - 53 in
    (Float.log (Bigint.to_float (Bigint.shift_right b s)) /. Float.log 2.0)
    +. float_of_int s

(* Same trick for a Rat coefficient: to_float would hit infinity on huge
   numerators/denominators, so go through log₂|num| − log₂ den and the
   magnitude-split above.  Returns (sign, log₂ |c|). *)
let log2_rat c =
  (Rat.sign c, log2_bigint (Bigint.abs (Rat.num c)) -. log2_bigint (Rat.den c))

(* Decide the sign of Σ cⱼ·log₂ qⱼ from floats when the accumulated error
   bound allows it.  Terms are evaluated as sign·2^(log₂|c| + log₂log₂ q)
   so no intermediate ever overflows for any Bigint sizes.  The bound is
   deliberately loose (1e-9 relative): stage 3 is exact, so the only cost
   of declining here is time. *)
let float_interval_sign terms =
  let sum = ref 0.0 and abs_sum = ref 0.0 in
  let ok = ref true in
  List.iter
    (fun (b, c) ->
      let sc, lc = log2_rat c in
      let lb = log2_bigint b in
      (* lb > 0 since b >= 2. *)
      let mag = lc +. Float.log lb /. Float.log 2.0 in
      if mag > 900.0 then ok := false (* would overflow float range *)
      else begin
        let contrib = float_of_int sc *. (2.0 ** mag) in
        sum := !sum +. contrib;
        abs_sum := !abs_sum +. Float.abs contrib
      end)
    terms;
  if not !ok then None
  else
    let tol = (!abs_sum *. 1e-9) +. 1e-300 in
    if Float.abs !sum > tol && Float.is_finite !sum then
      Some (Float.compare !sum 0.0)
    else None

(* ------------------------------------------------------------------ *)
(* Stage 3: directed-rounding big-floats, escalating precision.        *)
(* ------------------------------------------------------------------ *)

(* A positive value m·2^e with m a positive Bigint mantissa and e a
   Bigint exponent — the exponent of qⱼ^Eⱼ is ~Eⱼ·log₂ qⱼ, far beyond
   native range, but as a *number* it is tiny for Bigint. *)
type bf = { m : Bigint.t; e : Bigint.t }

let bf_one = { m = Bigint.one; e = Bigint.zero }

let bf_of_bigint b = { m = b; e = Bigint.zero }

(* Truncate the mantissa to [prec] bits, rounding the value down or up. *)
let bf_round ~up ~prec { m; e } =
  let nb = Bigint.num_bits m in
  if nb <= prec then { m; e }
  else begin
    let s = nb - prec in
    let q = Bigint.shift_right m s in
    let q =
      if up && not (Bigint.equal (Bigint.shift_left q s) m) then Bigint.succ q
      else q
    in
    { m = q; e = Bigint.add e (Bigint.of_int s) }
  end

let bf_mul ~up ~prec a b =
  bf_round ~up ~prec { m = Bigint.mul a.m b.m; e = Bigint.add a.e b.e }

(* base^expo by square-and-multiply over the bits of the Bigint exponent:
   [num_bits expo] squarings, each on [<= 2·prec]-bit mantissas — the
   "chunked" exponentiation that replaces the seed's full Bigint.pow. *)
let bf_pow ~up ~prec base expo =
  let nbits = Bigint.num_bits expo in
  let acc = ref bf_one in
  let sq = ref (bf_round ~up ~prec (bf_of_bigint base)) in
  for i = 0 to nbits - 1 do
    if Bigint.testbit expo i then acc := bf_mul ~up ~prec !acc !sq;
    if i < nbits - 1 then sq := bf_mul ~up ~prec !sq !sq
  done;
  !acc

(* Compare positive big-floats exactly.  The top-bit positions decide
   unless equal, in which case the exponent difference is at most the
   mantissa-width difference and the mantissas can be aligned cheaply. *)
let bf_compare a b =
  let top x = Bigint.add x.e (Bigint.of_int (Bigint.num_bits x.m)) in
  let c = Bigint.compare (top a) (top b) in
  if c <> 0 then c
  else
    match Bigint.to_int_opt (Bigint.sub a.e b.e) with
    | Some k when k >= 0 -> Bigint.compare (Bigint.shift_left a.m k) b.m
    | Some k -> Bigint.compare a.m (Bigint.shift_left b.m (-k))
    | None ->
      (* Equal top-bit positions force |a.e − b.e| ≤ max mantissa width. *)
      Bagcqc_error.invariant ~where:"Logint.sign"
        "big-float exponents misaligned despite equal magnitudes"

(* Defensive ceiling for the escalation loop.  Stage 1 proves the
   compared products differ, so some precision separates them; the cap
   only exists so a solver bug surfaces as a typed error, not a hang. *)
let max_precision = 1 lsl 20

(* Sign of Σ Eⱼ·log qⱼ with qⱼ pairwise coprime (> 1) and Eⱼ nonzero
   Bigints, known nonzero. *)
let escalating_sign terms =
  let pos = List.filter (fun (_, e) -> Bigint.sign e > 0) terms in
  let neg = List.filter (fun (_, e) -> Bigint.sign e < 0) terms in
  match pos, neg with
  | [], [] ->
    Bagcqc_error.invariant ~where:"Logint.sign" "escalation reached on zero"
  | _, [] -> 1 (* Π q^E with q ≥ 2, E > 0 is > 1 = empty product *)
  | [], _ -> -1
  | _ ->
    let product ~up ~prec side =
      List.fold_left
        (fun acc (q, e) -> bf_mul ~up ~prec acc (bf_pow ~up ~prec q (Bigint.abs e)))
        bf_one side
    in
    let rec go prec =
      if prec > max_precision then
        Bagcqc_error.overflow ~where:"Logint.sign"
          (Printf.sprintf
             "interval comparison still ambiguous at %d mantissa bits \
              (values provably distinct; this is a solver bug)"
             max_precision)
      else begin
        let p_lo = product ~up:false ~prec pos
        and p_hi = product ~up:true ~prec pos
        and n_lo = product ~up:false ~prec neg
        and n_hi = product ~up:true ~prec neg in
        if bf_compare p_lo n_hi > 0 then 1
        else if bf_compare p_hi n_lo < 0 then -1
        else go (prec * 2)
      end
    in
    go 64

let sign t =
  match refine (BMap.bindings t) with
  | [] -> 0
  | refined ->
    (* Clear denominators: D = lcm of the coefficient denominators; the
       integer exponents Eⱼ = numⱼ·(D/denⱼ) stay Bigints throughout. *)
    let d =
      List.fold_left
        (fun acc (_, c) ->
          let dc = Rat.den c in
          Bigint.mul acc (Bigint.div dc (Bigint.gcd acc dc)))
        Bigint.one refined
    in
    let iterms =
      List.map
        (fun (b, c) ->
          (b, Bigint.mul (Rat.num c) (Bigint.div d (Rat.den c))))
        refined
    in
    (match float_interval_sign refined with
     | Some s -> s
     | None -> escalating_sign iterms)

let compare a b = sign (sub a b)
let equal a b = compare a b = 0

let sign_float_interval t = float_interval_sign (BMap.bindings t)

let to_float t =
  BMap.fold
    (fun base c acc ->
      let sc, lc = log2_rat c in
      acc +. (float_of_int sc *. (2.0 ** lc) *. log2_bigint base))
    t 0.0

let terms t = BMap.bindings t

let pp fmt t =
  if BMap.is_empty t then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    BMap.iter
      (fun base c ->
        if not !first then Format.pp_print_string fmt " + ";
        first := false;
        Format.fprintf fmt "%a*log(%a)" Rat.pp c Bigint.pp base)
      t
  end
