(** Structured, typed errors for the whole solver stack.

    The decision procedures are only trustworthy if the substrate is
    {e total}: a recoverable condition that aborts the process (an
    [assert false], a bare [failwith]) is indistinguishable from a wrong
    answer to a caller operating at scale.  Every layer — [num_exact],
    [lp], [engine], [entropy], [core] — reports internal trouble through
    this one type, so callers can catch {!Error} (or use the [_result]
    entry points built on {!protect}) and degrade gracefully instead of
    dying.

    Two kinds of condition flow through here:

    - {b Invariant violations}: cross-checks between independent
      computations disagreed (e.g. the Farkas LP says "no certificate"
      while the refutation LP also says "no refuter", or a phase-1
      simplex objective claims to be unbounded).  Mathematically these
      are unreachable; if one fires it is a bug in the solver, and the
      structured error names the site and the evidence instead of
      aborting.
    - {b Resource overflows}: an exact computation whose result would be
      astronomically large (documented per call site).  After the total
      [Logint.sign] rewrite no such site remains reachable on valid
      inputs in [num_exact]/[lp]/[entropy]; the constructor is kept for
      defensive caps (e.g. the precision-escalation ceiling).

    Caller-precondition violations (bad argument shapes) remain ordinary
    [Invalid_argument] — those are programming errors at the call site,
    not internal failures. *)

type kind =
  | Invariant of string
      (** An internal cross-check failed; carries the evidence.  Always a
          solver bug, never the caller's fault. *)
  | Overflow of string
      (** An exact computation exceeded a documented defensive cap. *)
  | Unsupported of string
      (** The input is valid but outside what this build can decide. *)

type t = {
  where : string;  (** The raising site, e.g. ["Cones.valid_max_cert"]. *)
  kind : kind;
}

exception Error of t

val invariant : where:string -> string -> 'a
(** [invariant ~where msg] raises {!Error} with [Invariant msg].  Use in
    place of [assert false] on documented-unreachable branches. *)

val overflow : where:string -> string -> 'a
val unsupported : where:string -> string -> 'a

val protect : (unit -> 'a) -> ('a, t) result
(** [protect f] runs [f], converting a raised {!Error} into [Error t].
    All other exceptions pass through unchanged. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
