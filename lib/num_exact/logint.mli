(** Exact arithmetic on formal sums [Σ cᵢ · log₂ aᵢ].

    Entropies of (totally) uniform relations are logarithms of positive
    integers, and the expressions the paper compares — [log |P|] against
    [(E_T ∘ φ)(h)] in Theorem 4.4, the Vee example 4.3, witness
    verification — are rational combinations of such logarithms.  This
    module decides their sign {i exactly} and {i totally}: the terms are
    rewritten over a pairwise-coprime base set (which settles exact
    cancellation by multiplicative independence, with no exponentiation),
    then compared by a float interval and — only on overlap — by
    directed-rounding big-float products at escalating precision.  No
    input, however large its exponents, aborts or materializes a full
    power. *)

type t

val zero : t

val log : Bigint.t -> t
(** [log a] is the formal [log₂ a].  @raise Invalid_argument if [a <= 0]. *)

val log_int : int -> t

val scale : Rat.t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val sign : t -> int
(** Exact sign of the real number denoted: [-1], [0] or [1].  Total: the
    seed implementation raised [Failure] when a cleared-denominator
    exponent exceeded native-int range; this one handles any exponent
    size (see the module doc for the three-stage algorithm). *)

val sign_float_interval : t -> int option
(** Cheap one-sided oracle: the sign as decided by a floating-point
    evaluation with a conservative error bound, or [None] when zero lies
    inside the error interval.  When it answers, the answer agrees with
    {!sign}; the differential fuzzer cross-checks exactly that. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_float : t -> float
(** Floating-point approximation (for display only). *)

val terms : t -> (Bigint.t * Rat.t) list
(** The normalized term list [(base, coefficient)], bases distinct, > 1,
    coefficients nonzero, sorted by base. *)

val pp : Format.formatter -> t -> unit
