(** Exact rational numbers over {!Bigint}.

    Values are kept in lowest terms with a positive denominator, so
    structural equality coincides with numeric equality.  These are the
    scalars of the simplex solver and of all polymatroid computations. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalizes the fraction [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints a b] is the rational [a/b]. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val to_float : t -> float
(** Nearest-float approximation, computed as
    [Bigint.to_float n /. Bigint.to_float d].

    {b Rounding contract.}  Each of the two conversions rounds to
    nearest and the IEEE division rounds the quotient to nearest again,
    so the result is within 2 ulp of the true value — close enough for
    the float-first LP pipeline, whose verdicts never depend on this
    value (every accepted answer is re-verified in exact arithmetic).
    The rounding is {e not} directed: callers must not assume
    [to_float x <= x] or [>= x].  Values beyond the float range come
    back as [infinity]/[-infinity] (consumers with totality obligations,
    e.g. {!Fsimplex}, check finiteness on ingestion); in particular a
    denominator above [2^1024] overflows to [infinity] and the result
    collapses to [0.], so the round-trip law
    [to_float (of_float_dyadic f) = f] holds for every {e normal} finite
    [f] but not for subnormals. *)

val of_float_dyadic : float -> t
(** Exact dyadic conversion: the rational whose value is {e exactly} the
    finite float [f] (every finite IEEE-754 double is [m·2^e] with
    integer [m], so no rounding is involved; denominators are powers of
    two).  Subnormals convert exactly too, though {!to_float} cannot
    round-trip them (see above).
    @raise Invalid_argument on NaN or infinities. *)

val of_string : string -> t
(** Accepts ["a"], ["a/b"] and decimal ["a.b"] forms.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
(** Total variant of {!of_string}: [None] on malformed input (including a
    zero denominator). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Infix operators, for arithmetic-heavy call sites (LP pivoting). *)
module Infix : sig
  val ( +/ ) : t -> t -> t
  val ( -/ ) : t -> t -> t
  val ( */ ) : t -> t -> t
  val ( // ) : t -> t -> t
  val ( =/ ) : t -> t -> bool
  val ( </ ) : t -> t -> bool
  val ( <=/ ) : t -> t -> bool
  val ( >/ ) : t -> t -> bool
  val ( >=/ ) : t -> t -> bool
end
