(** Exact rational numbers over {!Bigint}.

    Values are kept in lowest terms with a positive denominator, so
    structural equality coincides with numeric equality.  These are the
    scalars of the simplex solver and of all polymatroid computations. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalizes the fraction [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints a b] is the rational [a/b]. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val to_float : t -> float

val of_string : string -> t
(** Accepts ["a"], ["a/b"] and decimal ["a.b"] forms.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
(** Total variant of {!of_string}: [None] on malformed input (including a
    zero denominator). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Infix operators, for arithmetic-heavy call sites (LP pivoting). *)
module Infix : sig
  val ( +/ ) : t -> t -> t
  val ( -/ ) : t -> t -> t
  val ( */ ) : t -> t -> t
  val ( // ) : t -> t -> t
  val ( =/ ) : t -> t -> bool
  val ( </ ) : t -> t -> bool
  val ( <=/ ) : t -> t -> bool
  val ( >/ ) : t -> t -> bool
  val ( >=/ ) : t -> t -> bool
end
