(** Memoizing LP solver: the single chokepoint between the decision
    procedures and the simplex.

    Every solve is keyed on the canonical {!Problem} IR; structurally
    identical systems (the same cone check reached through renamed
    homomorphism sides, repeated [decide] calls on the same pair, …) are
    answered from the memo table without touching the simplex.  Counters
    flow into {!Stats} either way.

    Cached solutions are returned as fresh copies, so callers may treat
    the arrays as their own.

    The table is sharded by problem hash (per-shard mutex), so [solve]
    is safe from pool workers; racing solves of the same problem are
    deduplicated in-flight, keeping hit/miss counters exactly equal to a
    sequential run.  Lifecycle mutation ({!clear}) must happen between
    parallel regions — see the initialization order in
    {!Bagcqc_par.Pool}.

    The sharded table is {e tier 0}.  When a persistent {!Store} is
    attached ({!Store.attach}, [check --store], [serve]), a tier-0 miss
    consults it before running the simplex, and fresh [Optimal] solves
    are appended to it — restarts and sibling processes start warm.
    Store entries are re-verified in exact arithmetic on load, so the
    cache never trusts the disk (see {!Store}). *)

open Bagcqc_num
open Bagcqc_lp

val caching : bool ref
(** Memoization switch, on by default.  Benchmarks that want to time the
    underlying simplex (not the table lookup) flip it off around the
    measured region — same discipline as {!Simplex.default_engine}:
    restore with [Fun.protect]. *)

val solve : Problem.t -> Simplex.outcome
(** Cached {!Simplex.solve} on the lowered problem. *)

val solve_using :
  Problem.t -> solver:(Problem.t -> Simplex.outcome) -> Simplex.outcome
(** {!solve} with a caller-supplied solving function, run only on a
    genuine miss of both cache tiers — the lazy cone driver routes its
    warm-started per-round LPs through this so they share the memo
    table, the persistent store, in-flight dedup and the [Stats]
    pivot accounting with every other solve.  The function must return
    an outcome valid for the problem {e as given} (same variable
    order); warm-start state may live in its closure. *)

val solve_result : Problem.t -> (Simplex.outcome, Bagcqc_error.t) result
(** {!solve} with internal invariant violations reified as a typed
    [Error] (see {!Simplex.solve_result}). *)

val feasible : Problem.t -> Rat.t array option
(** Cached feasibility: [Some x] is a point of the polyhedron.  The
    problem's objective is ignored (pass a pure feasibility problem). *)

val clear : unit -> unit
(** Drop every memoized solve from tier 0 (does not touch {!Stats} or an
    attached {!Store}).
    @raise Invalid_argument when called inside a parallel region. *)

val cache_size : unit -> int
(** Number of distinct problems currently memoized. *)

val publish_gauges : unit -> unit
(** Refresh the [solver.cache.size] gauge from {!cache_size} — called by
    the serving layer's ticker and metrics scrape, not per solve. *)
