open Bagcqc_lp

module Table = Hashtbl.Make (struct
  type t = Problem.t

  let equal = Problem.equal
  let hash = Problem.hash
end)

let caching = ref true
let cache : Simplex.outcome Table.t = Table.create 256

let clear () = Table.reset cache
let cache_size () = Table.length cache

(* The memo table owns its outcome values; hand callers copies so a
   caller mutating a solution array cannot poison later hits. *)
let copy_outcome = function
  | Simplex.Optimal (v, x) -> Simplex.Optimal (v, Array.copy x)
  | (Simplex.Unbounded | Simplex.Infeasible) as o -> o

let solve_uncached problem =
  let p0 = Simplex.pivot_count () in
  let outcome = Simplex.solve (Problem.to_simplex problem) in
  Stats.note_solve ~pivots:(Simplex.pivot_count () - p0);
  outcome

let solve problem =
  if not !caching then solve_uncached problem
  else
    match Table.find_opt cache problem with
    | Some outcome ->
      Stats.note_cache_hit ();
      copy_outcome outcome
    | None ->
      Stats.note_cache_miss ();
      let outcome = solve_uncached problem in
      Table.replace cache problem outcome;
      copy_outcome outcome

let feasible problem =
  match solve problem with
  | Simplex.Optimal (_, x) -> Some x
  | Simplex.Infeasible -> None
  | Simplex.Unbounded -> assert false (* feasibility objective is constant *)
