open Bagcqc_lp
module Obs = Bagcqc_obs

module Table = Hashtbl.Make (struct
  type t = Problem.t

  let equal = Problem.equal
  let hash = Problem.hash
end)

let caching = ref true
let cache : Simplex.outcome Table.t = Table.create 256

(* Hash-collision probe: on every cache-miss store we record how many
   problems with the same [Problem.hash] were already resident.  A healthy
   hash keeps this histogram pinned at bucket 0; mass in higher buckets
   means distinct canonical problems are sharing hash values and the memo
   table is degrading toward a list scan. *)
let h_hash_collisions = Obs.Metrics.histogram "solver.cache.hash_collisions"
let hash_seen : (int, int) Hashtbl.t = Hashtbl.create 256

let clear () =
  Table.reset cache;
  Hashtbl.reset hash_seen

let cache_size () = Table.length cache

(* The memo table owns its outcome values; hand callers copies so a
   caller mutating a solution array cannot poison later hits. *)
let copy_outcome = function
  | Simplex.Optimal (v, x) -> Simplex.Optimal (v, Array.copy x)
  | (Simplex.Unbounded | Simplex.Infeasible) as o -> o

let solve_uncached problem =
  let p0 = Simplex.pivot_count () in
  let outcome = Simplex.solve (Problem.to_simplex problem) in
  Stats.note_solve ~pivots:(Simplex.pivot_count () - p0);
  outcome

let note_store problem =
  if !Obs.Runtime.enabled then begin
    let h = Problem.hash problem in
    let prior = Option.value ~default:0 (Hashtbl.find_opt hash_seen h) in
    Obs.Metrics.observe h_hash_collisions prior;
    Hashtbl.replace hash_seen h (prior + 1)
  end

let solve problem =
  Obs.Span.with_span ~name:"solver.solve"
    ~attrs:
      [ ("tag", Obs.Span.Str (Problem.tag problem));
        ("rows", Obs.Span.Int (Problem.num_rows problem));
        ("vars", Obs.Span.Int (Problem.num_vars problem)) ]
  @@ fun () ->
  if not !caching then begin
    Obs.Span.add_attr "cache" (Obs.Span.Str "off");
    solve_uncached problem
  end
  else
    match Table.find_opt cache problem with
    | Some outcome ->
      Stats.note_cache_hit ();
      Obs.Span.add_attr "cache" (Obs.Span.Str "hit");
      copy_outcome outcome
    | None ->
      Stats.note_cache_miss ();
      Obs.Span.add_attr "cache" (Obs.Span.Str "miss");
      let outcome = solve_uncached problem in
      Table.replace cache problem outcome;
      note_store problem;
      copy_outcome outcome

let feasible problem =
  match solve problem with
  | Simplex.Optimal (_, x) -> Some x
  | Simplex.Infeasible -> None
  | Simplex.Unbounded -> assert false (* feasibility objective is constant *)
