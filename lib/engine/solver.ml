open Bagcqc_lp
module Obs = Bagcqc_obs

module Table = Hashtbl.Make (struct
  type t = Problem.t

  let equal = Problem.equal
  let hash = Problem.hash
end)

let caching = ref true

(* The memo table is sharded by problem hash so concurrent solves from
   pool workers contend only when they touch the same slice of the key
   space.  Each shard carries its own mutex, its resident problems, an
   in-flight set, and the hash-collision probe state.

   This sharded table is tier 0 of a two-tier cache: on a tier-0 miss
   the attached persistent [Store] (tier 1) is consulted before the
   simplex runs, and fresh solves are recorded back to it.  With no
   store attached (the default) the code path and every counter are
   exactly the single-tier behaviour.

   In-flight dedup keeps (hits, misses) exactly equal to a sequential
   run: when two domains race on the same problem, the first to arrive
   registers it in-flight and counts the miss; the others block on the
   shard condition and count a hit once the outcome lands — just as the
   second of two sequential identical solves would have.  Without the
   dedup both would miss and solve, and the counter-equality property
   (test_par) would fail. *)
type shard = {
  m : Mutex.t;
  cond : Condition.t; (* signalled when an in-flight solve resolves *)
  table : Simplex.outcome Table.t;
  in_flight : unit Table.t;
  hash_seen : (int, int) Hashtbl.t;
}

let nshards = 16

let shards =
  Array.init nshards (fun _ ->
      { m = Mutex.create (); cond = Condition.create ();
        table = Table.create 64; in_flight = Table.create 8;
        hash_seen = Hashtbl.create 64 })

let shard_of problem = shards.(Problem.hash problem land (nshards - 1))

(* Hash-collision probe: on every cache-miss store we record how many
   problems with the same [Problem.hash] were already resident.  A healthy
   hash keeps this histogram pinned at bucket 0; mass in higher buckets
   means distinct canonical problems are sharing hash values and the memo
   table is degrading toward a list scan. *)
let h_hash_collisions = Obs.Metrics.histogram "solver.cache.hash_collisions"

let clear () =
  if Bagcqc_par.Pool.in_parallel_region () then
    invalid_arg
      "Solver.clear: cannot drop the memo cache inside a parallel region \
       (clear between regions; see Bagcqc_par.Pool initialization order)";
  Array.iter
    (fun s ->
      Mutex.lock s.m;
      Table.reset s.table;
      Table.reset s.in_flight;
      Hashtbl.reset s.hash_seen;
      Mutex.unlock s.m)
    shards

let cache_size () =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.m;
      let n = Table.length s.table in
      Mutex.unlock s.m;
      acc + n)
    0 shards

(* Pull-published: walking 16 shard mutexes per memoized solve would be
   silly, so the serving layer refreshes this gauge on its ticker/scrape
   path instead. *)
let g_cache_size = Obs.Metrics.gauge "solver.cache.size"
let publish_gauges () = Obs.Metrics.set_gauge g_cache_size (cache_size ())

(* The memo table owns its outcome values; hand callers copies so a
   caller mutating a solution array cannot poison later hits. *)
let copy_outcome = function
  | Simplex.Optimal (v, x) -> Simplex.Optimal (v, Array.copy x)
  | (Simplex.Unbounded | Simplex.Infeasible) as o -> o

(* Wrap any solving function with the pivot-delta accounting every
   cache miss performs, so custom solvers (the lazy cone driver's
   warm-started rounds) count in [Stats] exactly like the default. *)
let instrument solver problem =
  let p0 = Simplex.pivot_count () in
  let outcome = solver problem in
  Stats.note_solve ~pivots:(Simplex.pivot_count () - p0);
  outcome

(* Called with the shard mutex held. *)
let note_store s problem =
  if !Obs.Runtime.enabled then begin
    let h = Problem.hash problem in
    let prior = Option.value ~default:0 (Hashtbl.find_opt s.hash_seen h) in
    Obs.Metrics.observe h_hash_collisions prior;
    Hashtbl.replace s.hash_seen h (prior + 1)
  end

let solve_cached ~solver problem =
  let s = shard_of problem in
  Mutex.lock s.m;
  let rec resolve () =
    match Table.find_opt s.table problem with
    | Some outcome ->
      Stats.note_cache_hit ();
      Mutex.unlock s.m;
      Obs.Span.add_attr "cache" (Obs.Span.Str "hit");
      copy_outcome outcome
    | None ->
      if Table.mem s.in_flight problem then begin
        (* Another domain is already solving exactly this problem; wait
           for it and take the hit instead of duplicating the solve. *)
        Condition.wait s.cond s.m;
        resolve ()
      end
      else begin
        Table.replace s.in_flight problem ();
        Stats.note_cache_miss ();
        Mutex.unlock s.m;
        (* Tier 1: the persistent store, when attached.  Consulted only
           on a tier-0 miss and outside the shard mutex (it does its own
           locking and possibly file work); in-flight registration above
           means racing domains still agree on exactly one resolver. *)
        let store = Store.attached () in
        let from_store =
          match store with
          | None -> None
          | Some st -> Store.lookup st problem
        in
        match
          (match from_store with
           | Some outcome ->
             Obs.Span.add_attr "cache" (Obs.Span.Str "store");
             outcome
           | None ->
             Obs.Span.add_attr "cache" (Obs.Span.Str "miss");
             let outcome = instrument solver problem in
             Option.iter (fun st -> Store.record st problem outcome) store;
             outcome)
        with
        | outcome ->
          Mutex.lock s.m;
          Table.replace s.table problem outcome;
          note_store s problem;
          Table.remove s.in_flight problem;
          Condition.broadcast s.cond;
          Mutex.unlock s.m;
          copy_outcome outcome
        | exception e ->
          (* Un-register so a waiter can take over as the solver rather
             than block forever on an outcome that will never land. *)
          Mutex.lock s.m;
          Table.remove s.in_flight problem;
          Condition.broadcast s.cond;
          Mutex.unlock s.m;
          raise e
      end
  in
  resolve ()

let solve_using problem ~solver =
  Obs.Span.with_span ~name:"solver.solve"
    ~attrs:
      [ ("tag", Obs.Span.Str (Problem.tag problem));
        ("rows", Obs.Span.Int (Problem.num_rows problem));
        ("vars", Obs.Span.Int (Problem.num_vars problem)) ]
  @@ fun () ->
  if not !caching then begin
    Obs.Span.add_attr "cache" (Obs.Span.Str "off");
    instrument solver problem
  end
  else solve_cached ~solver problem

let solve problem =
  solve_using problem ~solver:(fun p -> Simplex.solve (Problem.to_simplex p))

let solve_result problem = Bagcqc_num.Bagcqc_error.protect (fun () -> solve problem)

let feasible problem =
  match solve problem with
  | Simplex.Optimal (_, x) -> Some x
  | Simplex.Infeasible -> None
  | Simplex.Unbounded ->
    (* Feasibility problems carry a constant objective; an unbounded
       verdict can only come from a simplex bug. *)
    Bagcqc_num.Bagcqc_error.invariant ~where:"Solver.feasible"
      "constant objective reported unbounded"
