open Bagcqc_num
open Bagcqc_lp
module Obs = Bagcqc_obs
module Json = Bagcqc_obs.Json

module Table = Hashtbl.Make (struct
  type t = Problem.t

  let equal = Problem.equal
  let hash = Problem.hash
end)

(* Store traffic is part of the cache story [--stats] tells, so the
   counters live in the same obs registry the Stats snapshot reads. *)
let c_hits = Obs.Metrics.counter "solver.store.hits"
let c_misses = Obs.Metrics.counter "solver.store.misses"
let c_appends = Obs.Metrics.counter "solver.store.appends"
let c_loaded = Obs.Metrics.counter "solver.store.loaded"
let c_rejected = Obs.Metrics.counter "solver.store.rejected"

(* Entry count of the attached store, maintained at attach/append/detach
   so a metrics scrape never has to take the store mutex. *)
let g_size = Obs.Metrics.gauge "solver.store.size"

type t = {
  path : string;
  m : Mutex.t;
  index : Simplex.outcome Table.t;
  mutable oc : out_channel option;
  mutable needs_newline : bool;
      (* true when the file ends in a truncated tail: the next append
         must first terminate the garbage line so the record after the
         crash point starts clean. *)
  mutable n_loaded : int;
  mutable n_rejected : int;
  mutable n_truncated : int;
}

(* ---------------- per-tag semantic verifiers ---------------- *)

let verifier_mutex = Mutex.create ()
let verifiers : (string, Problem.t -> Rat.t array -> bool) Hashtbl.t =
  Hashtbl.create 4

let register_verifier ~tag f =
  Mutex.lock verifier_mutex;
  let dup = Hashtbl.mem verifiers tag in
  if not dup then Hashtbl.add verifiers tag f;
  Mutex.unlock verifier_mutex;
  if dup then
    invalid_arg ("Store.register_verifier: tag already registered: " ^ tag)

let find_verifier tag =
  Mutex.lock verifier_mutex;
  let v = Hashtbl.find_opt verifiers tag in
  Mutex.unlock verifier_mutex;
  v

(* ---------------- record format ---------------- *)

(* One JSON object per line:
     {"v":1,
      "problem":{"tag":…,"vars":N,"obj":[[col,"rat"],…],
                 "rows":[[[[col,"rat"],…],"le|ge|eq","rat"],…]},
      "outcome":{"value":"rat","point":["rat",…]}}
   Rationals are exact "num/den" strings (Rat.to_string), so the format
   loses nothing; column indices are small integers and survive the
   float-backed JSON numbers exactly. *)

let json_of_rat r = Json.Str (Rat.to_string r)

let json_of_pairs pairs =
  Json.Arr
    (List.map
       (fun (j, c) -> Json.Arr [ Json.Num (float_of_int j); json_of_rat c ])
       pairs)

let op_name = function
  | Simplex.Le -> "le"
  | Simplex.Ge -> "ge"
  | Simplex.Eq -> "eq"

let json_of_problem p =
  Json.Obj
    [ ("tag", Json.Str (Problem.tag p));
      ("vars", Json.Num (float_of_int (Problem.num_vars p)));
      ("obj", json_of_pairs (Problem.objective p));
      ("rows",
       Json.Arr
         (List.map
            (fun (pairs, op, rhs) ->
              Json.Arr [ json_of_pairs pairs; Json.Str (op_name op);
                         json_of_rat rhs ])
            (Problem.rows_list p))) ]

let json_of_entry p v x =
  Json.Obj
    [ ("v", Json.Num 1.0);
      ("problem", json_of_problem p);
      ("outcome",
       Json.Obj
         [ ("value", json_of_rat v);
           ("point", Json.Arr (Array.to_list (Array.map json_of_rat x))) ]) ]

(* Decoding: any malformed shape rejects the whole entry.  [Reject] is
   the local "this record is bad" signal; Json accessor errors and
   [Problem.make]'s own validation ([Invalid_argument] on out-of-range
   columns) funnel into the same rejection. *)
exception Reject

let rat_of_json = function
  | Json.Str s ->
    (match Rat.of_string_opt s with Some r -> r | None -> raise Reject)
  | _ -> raise Reject

let int_of_json = function
  | Json.Num f when Float.is_integer f && Float.abs f <= 1e9 -> int_of_float f
  | _ -> raise Reject

let pairs_of_json = function
  | Json.Arr l ->
    List.map
      (function
        | Json.Arr [ j; c ] -> (int_of_json j, rat_of_json c)
        | _ -> raise Reject)
      l
  | _ -> raise Reject

let op_of_name = function
  | "le" -> Simplex.Le
  | "ge" -> Simplex.Ge
  | "eq" -> Simplex.Eq
  | _ -> raise Reject

let str_of_json = function Json.Str s -> s | _ -> raise Reject

let problem_of_json j =
  let tag = str_of_json (Json.member "tag" j) in
  let num_vars = int_of_json (Json.member "vars" j) in
  let objective = pairs_of_json (Json.member "obj" j) in
  let rows =
    match Json.member "rows" j with
    | Json.Arr l ->
      List.map
        (function
          | Json.Arr [ pairs; Json.Str op; rhs ] ->
            Problem.row (pairs_of_json pairs) (op_of_name op)
              (rat_of_json rhs)
          | _ -> raise Reject)
        l
    | _ -> raise Reject
  in
  Problem.make ~tag ~num_vars ~objective rows

let entry_of_line line =
  match
    (fun () ->
      let j = Json.parse line in
      (match Json.member "v" j with
       | Json.Num 1.0 -> ()
       | _ -> raise Reject);
      let p = problem_of_json (Json.member "problem" j) in
      let o = Json.member "outcome" j in
      let v = rat_of_json (Json.member "value" o) in
      let x =
        match Json.member "point" o with
        | Json.Arr l -> Array.of_list (List.map rat_of_json l)
        | _ -> raise Reject
      in
      (p, v, x))
      ()
  with
  | entry -> Some entry
  | exception (Reject | Json.Parse_error _ | Invalid_argument _) -> None

(* ---------------- verification ---------------- *)

let dot pairs x =
  List.fold_left
    (fun acc (j, c) -> Rat.add acc (Rat.mul c x.(j)))
    Rat.zero pairs

let point_satisfies p v x =
  Array.length x = Problem.num_vars p
  && Array.for_all (fun c -> Rat.sign c >= 0) x
  && List.for_all
       (fun (pairs, op, rhs) ->
         let lhs = dot pairs x in
         match op with
         | Simplex.Le -> Rat.compare lhs rhs <= 0
         | Simplex.Ge -> Rat.compare lhs rhs >= 0
         | Simplex.Eq -> Rat.equal lhs rhs)
       (Problem.rows_list p)
  && Rat.equal v (dot (Problem.objective p) x)

(* Acceptance: the point must verify exactly against the recorded
   problem, and the claim of *optimality* must be provable — trivially
   so for feasibility problems (every feasible point attains the zero
   objective), and by the registered semantic verifier otherwise.  A
   real objective with no verifier is unprovable, hence rejected. *)
let verify_entry p v x =
  point_satisfies p v x
  && (match find_verifier (Problem.tag p) with
      | Some f -> f p x
      | None -> Problem.objective p = [])

(* ---------------- load / open ---------------- *)

let accept t p v x =
  Table.replace t.index p (Simplex.Optimal (v, x));
  t.n_loaded <- t.n_loaded + 1;
  Obs.Metrics.bump c_loaded

let reject t =
  t.n_rejected <- t.n_rejected + 1;
  Obs.Metrics.bump c_rejected

let load t =
  if Sys.file_exists t.path then begin
    let ic = open_in_bin t.path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let n = String.length text in
    if n > 0 && text.[n - 1] <> '\n' then begin
      t.n_truncated <- 1;
      t.needs_newline <- true
    end;
    let lines = String.split_on_char '\n' text in
    (* Without a trailing newline the final element is the truncated
       tail of an interrupted append: ignore it (crash tolerance). *)
    let complete =
      if t.needs_newline then
        match List.rev lines with _ :: rest -> List.rev rest | [] -> []
      else lines
    in
    List.iter
      (fun line ->
        if String.trim line <> "" then
          match entry_of_line line with
          | Some (p, v, x) when verify_entry p v x -> accept t p v x
          | Some _ | None -> reject t)
      complete
  end

let open_ path =
  let t =
    { path; m = Mutex.create (); index = Table.create 64; oc = None;
      needs_newline = false; n_loaded = 0; n_rejected = 0; n_truncated = 0 }
  in
  load t;
  t.oc <- Some (open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path);
  t

let close t =
  Mutex.lock t.m;
  (match t.oc with
   | Some oc ->
     t.oc <- None;
     (try flush oc; close_out_noerr oc with Sys_error _ -> ())
   | None -> ());
  Mutex.unlock t.m

let path t = t.path

let size t =
  Mutex.lock t.m;
  let n = Table.length t.index in
  Mutex.unlock t.m;
  n

let loaded t = t.n_loaded
let rejected t = t.n_rejected
let truncated t = t.n_truncated

(* ---------------- lookup / record ---------------- *)

let copy_outcome = function
  | Simplex.Optimal (v, x) -> Simplex.Optimal (v, Array.copy x)
  | (Simplex.Unbounded | Simplex.Infeasible) as o -> o

let lookup t problem =
  Mutex.lock t.m;
  let found = Table.find_opt t.index problem in
  Mutex.unlock t.m;
  match found with
  | Some o ->
    Obs.Metrics.bump c_hits;
    Some (copy_outcome o)
  | None ->
    Obs.Metrics.bump c_misses;
    None

let record t problem outcome =
  match outcome with
  | Simplex.Unbounded | Simplex.Infeasible ->
    (* No independently checkable proof object exists for these (the
       simplex emits no infeasibility certificate), so they stay tier-0
       only — see the trust model in the interface. *)
    ()
  | Simplex.Optimal (v, x) ->
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
    (match t.oc with
     | None -> ()
     | Some oc ->
       if not (Table.mem t.index problem) then begin
         Table.replace t.index problem (Simplex.Optimal (v, Array.copy x));
         Obs.Metrics.set_gauge g_size (Table.length t.index);
         if t.needs_newline then begin
           output_char oc '\n';
           t.needs_newline <- false
         end;
         output_string oc (Json.to_string (json_of_entry problem v x));
         output_char oc '\n';
         flush oc;
         Obs.Metrics.bump c_appends
       end)

(* ---------------- compaction ---------------- *)

type compaction = {
  kept : int;
  duplicates : int;
  dropped : int;
  had_truncated_tail : bool;
}

let compact path =
  let text =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    end
    else ""
  in
  let n = String.length text in
  let had_truncated_tail = n > 0 && text.[n - 1] <> '\n' in
  let lines = String.split_on_char '\n' text in
  let complete =
    if had_truncated_tail then
      match List.rev lines with _ :: rest -> List.rev rest | [] -> []
    else lines
  in
  (* Last verified entry per canonical key wins — the same rule [load]'s
     Table.replace applies — while the rewrite keeps keys in first-seen
     order so repeated compactions are stable. *)
  let index : (Rat.t * Rat.t array) Table.t = Table.create 64 in
  let order = ref [] in
  let duplicates = ref 0 and dropped = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match entry_of_line line with
        | Some (p, v, x) when verify_entry p v x ->
          if Table.mem index p then incr duplicates else order := p :: !order;
          Table.replace index p (v, x)
        | Some _ | None -> incr dropped)
    complete;
  let order = List.rev !order in
  let tmp = path ^ ".compact.tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  (match
     List.iter
       (fun p ->
         let v, x = Table.find index p in
         output_string oc (Json.to_string (json_of_entry p v x));
         output_char oc '\n')
       order;
     flush oc
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path;
  { kept = List.length order;
    duplicates = !duplicates;
    dropped = !dropped;
    had_truncated_tail }

(* ---------------- the attached store ---------------- *)

let current : t option ref = ref None

let guard_lifecycle what =
  if Bagcqc_par.Pool.in_parallel_region () then
    invalid_arg
      ("Store." ^ what
       ^ ": cannot change the attached store inside a parallel region")

let attach t =
  guard_lifecycle "attach";
  current := Some t;
  Obs.Metrics.set_gauge g_size (size t)

let detach () =
  guard_lifecycle "detach";
  current := None;
  Obs.Metrics.set_gauge g_size 0

let attached () = !current

let with_store path f =
  let t = open_ path in
  attach t;
  Fun.protect
    ~finally:(fun () ->
      detach ();
      close t)
    f
