open Bagcqc_num
open Bagcqc_lp

(* Sparse canonical row: columns strictly increasing, no zero coefficients. *)
type row = {
  cols : int array;
  vals : Rat.t array;
  op : Simplex.op;
  rhs : Rat.t;
}

type t = {
  tag : string;
  num_vars : int;
  objective : (int * Rat.t) list;
  rows : row array;
}

let canonical_pairs pairs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  (* Sum duplicate columns, drop zeros. *)
  let rec merge = function
    | (j, _) :: _ when j < 0 -> invalid_arg "Engine.Problem: negative column"
    | (j, c) :: (j', c') :: rest when j = j' -> merge ((j, Rat.add c c') :: rest)
    | (_, c) :: rest when Rat.is_zero c -> merge rest
    | p :: rest -> p :: merge rest
    | [] -> []
  in
  merge sorted

let row pairs op rhs =
  let pairs = canonical_pairs pairs in
  let n = List.length pairs in
  let cols = Array.make n 0 and vals = Array.make n Rat.zero in
  List.iteri
    (fun k (j, c) ->
      cols.(k) <- j;
      vals.(k) <- c)
    pairs;
  { cols; vals; op; rhs }

let op_rank = function Simplex.Le -> 0 | Simplex.Ge -> 1 | Simplex.Eq -> 2

let compare_row a b =
  let c = compare (op_rank a.op) (op_rank b.op) in
  if c <> 0 then c
  else
    let c = Rat.compare a.rhs b.rhs in
    if c <> 0 then c
    else
      let c = compare a.cols b.cols in
      if c <> 0 then c
      else
        let rec vals i =
          if i >= Array.length a.vals then 0
          else
            let c = Rat.compare a.vals.(i) b.vals.(i) in
            if c <> 0 then c else vals (i + 1)
        in
        let c = compare (Array.length a.vals) (Array.length b.vals) in
        if c <> 0 then c else vals 0

let make ~tag ~num_vars ?(objective = []) rows =
  let check_col j =
    if j >= num_vars then invalid_arg "Engine.Problem: column out of range"
  in
  let objective = canonical_pairs objective in
  List.iter (fun (j, _) -> check_col j) objective;
  List.iter
    (fun r -> Array.iter check_col r.cols)
    rows;
  { tag; num_vars; objective; rows = Array.of_list (List.sort compare_row rows) }

let tag p = p.tag
let num_vars p = p.num_vars
let num_rows p = Array.length p.rows
let objective p = p.objective

let rows_list p =
  Array.to_list
    (Array.map
       (fun r ->
         (Array.to_list (Array.mapi (fun k j -> (j, r.vals.(k))) r.cols),
          r.op, r.rhs))
       p.rows)

let compare a b =
  let c = Stdlib.compare a.tag b.tag in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.num_vars b.num_vars in
    if c <> 0 then c
    else
      let rec cmp_obj x y =
        match (x, y) with
        | [], [] -> 0
        | [], _ -> -1
        | _, [] -> 1
        | (j, c1) :: xs, (k, c2) :: ys ->
          let c = Stdlib.compare j k in
          if c <> 0 then c
          else
            let c = Rat.compare c1 c2 in
            if c <> 0 then c else cmp_obj xs ys
      in
      let c = cmp_obj a.objective b.objective in
      if c <> 0 then c
      else
        let c = Stdlib.compare (Array.length a.rows) (Array.length b.rows) in
        if c <> 0 then c
        else
          let rec rows i =
            if i >= Array.length a.rows then 0
            else
              let c = compare_row a.rows.(i) b.rows.(i) in
              if c <> 0 then c else rows (i + 1)
          in
          rows 0

let equal a b = compare a b = 0

(* FNV-style mixing over the canonical structure; Rat.hash is structural,
   so equal problems hash equal. *)
let hash p =
  let mix h x = (h * 16777619) lxor x in
  let h = ref (mix (Hashtbl.hash p.tag) p.num_vars) in
  List.iter (fun (j, c) -> h := mix (mix !h j) (Rat.hash c)) p.objective;
  Array.iter
    (fun r ->
      h := mix !h (op_rank r.op);
      h := mix !h (Rat.hash r.rhs);
      Array.iteri
        (fun k j -> h := mix (mix !h j) (Rat.hash r.vals.(k)))
        r.cols)
    p.rows;
  !h land max_int

let to_simplex p =
  let objective = Array.make p.num_vars Rat.zero in
  List.iter (fun (j, c) -> objective.(j) <- c) p.objective;
  let constraints =
    Array.to_list
      (Array.map
         (fun r ->
           Simplex.sparse_constr
             (Array.to_list (Array.mapi (fun k j -> (j, r.vals.(k))) r.cols))
             r.op r.rhs)
         p.rows)
  in
  { Simplex.num_vars = p.num_vars; objective; constraints }
