type snapshot = {
  lp_solves : int;
  lp_pivots : int;
  cache_hits : int;
  cache_misses : int;
  elemental_hits : int;
  elemental_misses : int;
  hom_enumerations : int;
  stages : (string * float) list;
}

let lp_solves = ref 0
let lp_pivots = ref 0
let cache_hits = ref 0
let cache_misses = ref 0
let elemental_hits = ref 0
let elemental_misses = ref 0
let hom_enumerations = ref 0

(* Stage buckets in first-use order, so `pp` prints the pipeline in the
   order it actually ran. *)
let stage_order : string list ref = ref []
let stage_time : (string, float) Hashtbl.t = Hashtbl.create 8

let reset () =
  lp_solves := 0;
  lp_pivots := 0;
  cache_hits := 0;
  cache_misses := 0;
  elemental_hits := 0;
  elemental_misses := 0;
  hom_enumerations := 0;
  stage_order := [];
  Hashtbl.reset stage_time

let snapshot () =
  { lp_solves = !lp_solves;
    lp_pivots = !lp_pivots;
    cache_hits = !cache_hits;
    cache_misses = !cache_misses;
    elemental_hits = !elemental_hits;
    elemental_misses = !elemental_misses;
    hom_enumerations = !hom_enumerations;
    stages =
      List.rev_map
        (fun name -> (name, Hashtbl.find stage_time name))
        !stage_order }

let note_solve ~pivots =
  incr lp_solves;
  lp_pivots := !lp_pivots + pivots

let note_cache_hit () = incr cache_hits
let note_cache_miss () = incr cache_misses
let note_elemental_hit () = incr elemental_hits
let note_elemental_miss () = incr elemental_misses
let note_hom_enumeration () = incr hom_enumerations

let time_stage name f =
  (* Register the bucket on entry so first-use order means the order
     stages started, not the order they finished (nested stages end
     before their parent does). *)
  if not (Hashtbl.mem stage_time name) then begin
    stage_order := name :: !stage_order;
    Hashtbl.add stage_time name 0.0
  end;
  let t0 = Unix.gettimeofday () in
  let record () =
    let dt = Unix.gettimeofday () -. t0 in
    Hashtbl.replace stage_time name (Hashtbl.find stage_time name +. dt)
  in
  Fun.protect ~finally:record f

let cache_hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int total

let pp fmt s =
  Format.fprintf fmt "engine stats:@.";
  Format.fprintf fmt "  LP solves:          %d (%d pivots)@." s.lp_solves
    s.lp_pivots;
  Format.fprintf fmt "  LP cache:           %d hits / %d misses (%.0f%% hit rate)@."
    s.cache_hits s.cache_misses (100.0 *. cache_hit_rate s);
  Format.fprintf fmt "  elemental tables:   %d hits / %d generated@."
    s.elemental_hits s.elemental_misses;
  Format.fprintf fmt "  hom enumerations:   %d@." s.hom_enumerations;
  List.iter
    (fun (name, t) -> Format.fprintf fmt "  stage %-12s  %.6fs@." name t)
    s.stages
