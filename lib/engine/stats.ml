(* Engine.Stats is now a *view* over the obs layer (see DESIGN.md §4c):
   every counter in the snapshot is a Bagcqc_obs.Metrics counter bumped
   at the same call sites as before, so the public API and its always-on
   cost (one integer store per event) are unchanged while the same
   events also feed trace exports.

   Stage timers remain always-on here (the [--stats] path must work
   without tracing enabled) and additionally open an obs span, so the
   eq8/maxii/witness stages appear in trace trees.  Re-entrancy fix: a
   per-name activation depth makes wall time accumulate only across the
   *outermost* activation — the old implementation added the inner
   duration of a self-nested [time_stage "maxii"] twice. *)

module Obs = Bagcqc_obs

type snapshot = {
  lp_solves : int;
  lp_pivots : int;
  cache_hits : int;
  cache_misses : int;
  elemental_hits : int;
  elemental_misses : int;
  hom_enumerations : int;
  hybrid_float_solves : int;
  hybrid_repairs : int;
  hybrid_repair_failures : int;
  hybrid_fallbacks : int;
  store_hits : int;
  store_misses : int;
  store_appends : int;
  store_loaded : int;
  store_rejected : int;
  lazy_solves : int;
  lazy_rounds : int;
  lazy_cuts : int;
  lazy_fallbacks : int;
  orbit_cuts : int;
  orbit_canonicalized : int;
  stages : (string * float) list;
  hists : (string * Obs.Metrics.hist_snapshot) list;
}

let c_lp_solves = Obs.Metrics.counter "lp.solves"
let c_lp_pivots = Obs.Metrics.counter "lp.pivots"
let c_cache_hits = Obs.Metrics.counter "solver.cache.hits"
let c_cache_misses = Obs.Metrics.counter "solver.cache.misses"
let c_elemental_hits = Obs.Metrics.counter "elemental.hits"
let c_elemental_misses = Obs.Metrics.counter "elemental.misses"
let c_hom_enumerations = Obs.Metrics.counter "hom.enumerations"

(* Views over counters bumped inside Bagcqc_lp.Simplex's hybrid driver —
   the registry keys counters by name, so these are the same cells. *)
let c_hybrid_float_solves = Obs.Metrics.counter "lp.hybrid.float_solves"
let c_hybrid_repairs = Obs.Metrics.counter "lp.hybrid.repairs"
let c_hybrid_repair_failures = Obs.Metrics.counter "lp.hybrid.repair_failures"
let c_hybrid_fallbacks = Obs.Metrics.counter "lp.hybrid.fallbacks"

(* Views over the lazy cone driver's counters, bumped inside
   Bagcqc_entropy.Separation — same name-keyed registry cells. *)
let c_lazy_solves = Obs.Metrics.counter "cone.lazy.solves"
let c_lazy_rounds = Obs.Metrics.counter "cone.lazy.rounds"
let c_lazy_cuts = Obs.Metrics.counter "cone.lazy.cuts"
let c_lazy_fallbacks = Obs.Metrics.counter "cone.lazy.fallbacks"
let c_orbit_cuts = Obs.Metrics.counter "cone.orbit.cuts"
let c_orbit_canonicalized = Obs.Metrics.counter "cone.orbit.canonicalized"

(* Views over the persistent-store counters bumped inside Store — same
   registry cells, by name, like the hybrid counters above. *)
let c_store_hits = Obs.Metrics.counter "solver.store.hits"
let c_store_misses = Obs.Metrics.counter "solver.store.misses"
let c_store_appends = Obs.Metrics.counter "solver.store.appends"
let c_store_loaded = Obs.Metrics.counter "solver.store.loaded"
let c_store_rejected = Obs.Metrics.counter "solver.store.rejected"

(* Stage buckets in first-use order, so `pp` prints the pipeline in the
   order it actually ran.  [active] is the current activation depth of
   the name; [t0] the entry time of the outermost activation.

   Activation state is per-domain ([Domain.DLS]): each domain times its
   own outermost activation of a name, so pool workers timing the same
   stage never clobber each other's [t0].  The first-use order and the
   snapshot merge (summing each name's total across domains) are global,
   guarded by [stage_mutex].  Summing means a stage running on k domains
   at once reports k× wall time — CPU-seconds, the honest unit for
   parallel stage accounting. *)
type stage = { mutable active : int; mutable t0 : float; mutable total : float }

let stage_mutex = Mutex.create ()
let stage_order : string list ref = ref [] (* newest first *)
let stage_seen : (string, unit) Hashtbl.t = Hashtbl.create 8
let stage_stores : (string, stage) Hashtbl.t list ref = ref []

let stage_key =
  Domain.DLS.new_key (fun () ->
      let tbl : (string, stage) Hashtbl.t = Hashtbl.create 8 in
      Mutex.lock stage_mutex;
      stage_stores := tbl :: !stage_stores;
      Mutex.unlock stage_mutex;
      tbl)

let stage_total name =
  List.fold_left
    (fun acc tbl ->
      match Hashtbl.find_opt tbl name with
      | Some st -> acc +. st.total
      | None -> acc)
    0.0 !stage_stores

let reset () =
  Obs.Metrics.reset ();
  Mutex.lock stage_mutex;
  stage_order := [];
  Hashtbl.reset stage_seen;
  List.iter Hashtbl.reset !stage_stores;
  Mutex.unlock stage_mutex

let snapshot () =
  { lp_solves = Obs.Metrics.count c_lp_solves;
    lp_pivots = Obs.Metrics.count c_lp_pivots;
    cache_hits = Obs.Metrics.count c_cache_hits;
    cache_misses = Obs.Metrics.count c_cache_misses;
    elemental_hits = Obs.Metrics.count c_elemental_hits;
    elemental_misses = Obs.Metrics.count c_elemental_misses;
    hom_enumerations = Obs.Metrics.count c_hom_enumerations;
    hybrid_float_solves = Obs.Metrics.count c_hybrid_float_solves;
    hybrid_repairs = Obs.Metrics.count c_hybrid_repairs;
    hybrid_repair_failures = Obs.Metrics.count c_hybrid_repair_failures;
    hybrid_fallbacks = Obs.Metrics.count c_hybrid_fallbacks;
    store_hits = Obs.Metrics.count c_store_hits;
    store_misses = Obs.Metrics.count c_store_misses;
    store_appends = Obs.Metrics.count c_store_appends;
    store_loaded = Obs.Metrics.count c_store_loaded;
    store_rejected = Obs.Metrics.count c_store_rejected;
    lazy_solves = Obs.Metrics.count c_lazy_solves;
    lazy_rounds = Obs.Metrics.count c_lazy_rounds;
    lazy_cuts = Obs.Metrics.count c_lazy_cuts;
    lazy_fallbacks = Obs.Metrics.count c_lazy_fallbacks;
    orbit_cuts = Obs.Metrics.count c_orbit_cuts;
    orbit_canonicalized = Obs.Metrics.count c_orbit_canonicalized;
    stages =
      (Mutex.lock stage_mutex;
       let rows = List.rev_map (fun name -> (name, stage_total name)) !stage_order in
       Mutex.unlock stage_mutex;
       rows);
    hists =
      List.filter
        (fun (_, h) -> h.Obs.Metrics.count > 0)
        (Obs.Metrics.snapshot ()).Obs.Metrics.histograms }

let note_solve ~pivots =
  Obs.Metrics.bump c_lp_solves;
  Obs.Metrics.add c_lp_pivots pivots

let note_cache_hit () = Obs.Metrics.bump c_cache_hits
let note_cache_miss () = Obs.Metrics.bump c_cache_misses
let note_elemental_hit () = Obs.Metrics.bump c_elemental_hits
let note_elemental_miss () = Obs.Metrics.bump c_elemental_misses
let note_hom_enumeration () = Obs.Metrics.bump c_hom_enumerations

let time_stage name f =
  let tbl = Domain.DLS.get stage_key in
  let st =
    match Hashtbl.find_opt tbl name with
    | Some st -> st
    | None ->
      (* Register on entry so first-use order means the order stages
         started, not the order they finished. *)
      let st = { active = 0; t0 = 0.0; total = 0.0 } in
      Hashtbl.add tbl name st;
      Mutex.lock stage_mutex;
      if not (Hashtbl.mem stage_seen name) then begin
        Hashtbl.add stage_seen name ();
        stage_order := name :: !stage_order
      end;
      Mutex.unlock stage_mutex;
      st
  in
  if st.active = 0 then st.t0 <- Unix.gettimeofday ();
  st.active <- st.active + 1;
  let record () =
    st.active <- st.active - 1;
    if st.active = 0 then
      st.total <- st.total +. (Unix.gettimeofday () -. st.t0)
  in
  Fun.protect ~finally:record (fun () -> Obs.Span.with_span ~name f)

let cache_hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int total

let fallback_rate s =
  if s.hybrid_float_solves = 0 then 0.0
  else float_of_int s.hybrid_fallbacks /. float_of_int s.hybrid_float_solves

let lazy_fallback_rate s =
  if s.lazy_solves = 0 then 0.0
  else float_of_int s.lazy_fallbacks /. float_of_int s.lazy_solves

let pp fmt s =
  Format.fprintf fmt "engine stats:@.";
  Format.fprintf fmt "  LP solves:          %d (%d pivots)@." s.lp_solves
    s.lp_pivots;
  Format.fprintf fmt "  LP cache:           %d hits / %d misses (%.0f%% hit rate)@."
    s.cache_hits s.cache_misses (100.0 *. cache_hit_rate s);
  Format.fprintf fmt "  elemental tables:   %d hits / %d generated@."
    s.elemental_hits s.elemental_misses;
  Format.fprintf fmt "  hom enumerations:   %d@." s.hom_enumerations;
  (* Only when the hybrid engine actually ran: exact-mode output stays
     byte-for-byte what it was before float-first existed. *)
  if s.hybrid_float_solves > 0 then
    Format.fprintf fmt
      "  hybrid LP:          %d float solves, %d repaired, %d fallbacks \
       (%.1f%% fallback rate)@."
      s.hybrid_float_solves s.hybrid_repairs s.hybrid_fallbacks
      (100.0 *. fallback_rate s);
  (* Only when the lazy cone driver ran: --cone-engine full keeps the
     historical output byte-for-byte, like the hybrid section above. *)
  if s.lazy_solves > 0 then
    Format.fprintf fmt
      "  lazy cone:          %d decisions, %d rounds, %d cuts (%d via \
       orbits), %d canonicalized, %d fallbacks@."
      s.lazy_solves s.lazy_rounds s.lazy_cuts s.orbit_cuts
      s.orbit_canonicalized s.lazy_fallbacks;
  (* Only when a persistent store was in play: runs without --store /
     serve keep the historical output byte-for-byte. *)
  if s.store_hits + s.store_misses + s.store_appends + s.store_loaded
     + s.store_rejected > 0
  then
    Format.fprintf fmt
      "  LP store:           %d hits / %d misses, %d appended; loaded %d \
       verified, rejected %d@."
      s.store_hits s.store_misses s.store_appends s.store_loaded
      s.store_rejected;
  List.iter
    (fun (name, t) -> Format.fprintf fmt "  stage %-12s  %.6fs@." name t)
    s.stages;
  if s.hists <> [] then begin
    Format.fprintf fmt "  %-24s %9s %9s %7s %7s %7s %7s@." "histogram" "count"
      "mean" "p50" "p90" "p99" "max";
    List.iter
      (fun (name, h) ->
        Format.fprintf fmt "  %-24s %9d %9.1f %7d %7d %7d %7d@." name
          h.Obs.Metrics.count (Obs.Metrics.mean h)
          (Obs.Metrics.percentile h 0.50)
          (Obs.Metrics.percentile h 0.90)
          (Obs.Metrics.percentile h 0.99)
          h.Obs.Metrics.max_value)
      s.hists
  end
