(** Persistent, certificate-verified tier of the solver cache.

    The sharded in-memory table in {!Solver} is tier 0; this module is
    the optional tier 1: an append-only log of solved problems keyed by
    the canonical {!Problem} normal form, with an in-memory index built
    at {!open_} time.  It is what makes restarts warm and lets a fleet
    of workers share verdicts through a file.

    {2 Trust model: verify on load, never on faith}

    A store file is untrusted input — it may be truncated by a crash,
    corrupted on disk, or forged.  Every entry is therefore re-verified
    in exact rational arithmetic before it can ever be served:

    - only [Optimal] outcomes are persisted, because the solution point
      is an independently checkable proof object (for the Farkas LPs it
      {e is} the containment certificate);
    - on load, the recorded point must satisfy every row of the recorded
      problem exactly (with [x ≥ 0], the solver's implicit bound) and
      reproduce the recorded objective value;
    - for pure feasibility problems (empty objective — every problem the
      decision procedures build) that check is complete.  An entry whose
      problem carries a real objective is accepted only if a registered
      per-tag verifier vouches for it, since feasibility alone does not
      prove optimality;
    - per-tag verifiers add semantic checks on top: the gamma backend
      registers one for ["gamma/farkas"] problems that reconstructs the
      full {!Bagcqc_entropy.Certificate} from the point and accepts only
      if [Certificate.check] passes.

    Entries failing any check are dropped and counted ({!rejected}),
    never served; a truncated final line (crash mid-append) is ignored
    ({!truncated}).  A forged-but-self-consistent record can only ever
    be indexed under the problem it actually solves — lookups for other
    problems cannot match it — so serving remains sound even against an
    adversarial store file.

    {2 Concurrency}

    One writer process per store file (appends are not interleaved
    across processes); within a process every operation is mutex-guarded
    and safe from pool workers.  {!attach}/{!detach} are lifecycle
    mutations and must happen between parallel regions, like
    {!Solver.clear}. *)

open Bagcqc_num
open Bagcqc_lp

type t

val open_ : string -> t
(** Open (creating if absent) the store at this path and load its index,
    verifying every entry as described above.
    @raise Sys_error if the path cannot be read or created. *)

val close : t -> unit
(** Flush and close the append channel (idempotent).  A closed store can
    still be read from its in-memory index but rejects {!record}. *)

val path : t -> string
val size : t -> int
(** Number of verified entries currently indexed. *)

val loaded : t -> int
(** Entries accepted (verified) at {!open_} time. *)

val rejected : t -> int
(** Entries dropped at {!open_} time: unparseable lines, malformed
    records, or records whose outcome failed exact re-verification. *)

val truncated : t -> int
(** Trailing bytes without a final newline, ignored as a crash artifact
    (0 or 1 per load). *)

val lookup : t -> Problem.t -> Simplex.outcome option
(** Verified outcome for this problem, as a fresh copy.  Bumps the
    [solver.store.hits]/[solver.store.misses] counters. *)

val record : t -> Problem.t -> Simplex.outcome -> unit
(** Append the entry if it is persistable ([Optimal] outcome, open
    store, not already indexed) and index it; otherwise do nothing.
    Bumps [solver.store.appends] on a real append. *)

(** {2 Compaction}

    An append-only log only grows: bulk sweeps with [--store] leave
    behind rejected lines, crash tails and (across processes) duplicate
    records for the same problem.  Compaction rewrites the file keeping
    exactly one verified entry — the {e last} one, matching the
    last-wins index {!load} builds — per canonical problem key, then
    atomically renames the rewrite over the original, so a reader or a
    crash at any moment sees either the old file or the new one, never a
    half-written hybrid. *)

type compaction = {
  kept : int;        (** verified entries surviving into the new file *)
  duplicates : int;  (** verified entries superseded by a later record
                         for the same canonical problem *)
  dropped : int;     (** unparseable / unverified entries discarded *)
  had_truncated_tail : bool;
      (** the input ended in a crash-truncated line (also discarded) *)
}

val compact : string -> compaction
(** Compact the store file at this path in place (creating an empty,
    valid store if the file is missing).  Must not run concurrently with
    a process appending to the same path — the writer's channel would
    keep appending to the unlinked old file.
    @raise Sys_error if the path cannot be read or the rewrite cannot be
    created/renamed. *)

val register_verifier : tag:string -> (Problem.t -> Rat.t array -> bool) -> unit
(** Install the semantic load-time verifier for problems with this tag
    (see the trust model above).  One verifier per tag.
    @raise Invalid_argument if the tag already has one. *)

(** {2 The attached store}

    {!Solver} consults one process-global store, when attached — the
    two-tier wiring used by [serve] and [check --store]. *)

val attach : t -> unit
(** Make this store tier 1 of {!Solver}'s cache (replacing any previous
    attachment).
    @raise Invalid_argument inside a parallel region. *)

val detach : unit -> unit
(** Stop consulting a store (idempotent; does not close it).
    @raise Invalid_argument inside a parallel region. *)

val attached : unit -> t option

val with_store : string -> (unit -> 'a) -> 'a
(** [with_store path f]: {!open_}, {!attach}, run [f], then detach and
    close — exception-safe.  The warm-start wrapper behind
    [check --store] and [BAGCQC_STORE]. *)
