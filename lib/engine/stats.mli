(** Pipeline instrumentation for the solver-engine layer.

    One process-global set of counters, always on (each event is a single
    integer bump, negligible next to the exact-rational pivots it counts).
    The CLI's [--stats] flag and [bench/main.exe --json] read a
    {!snapshot}; long-running callers {!reset} between measurements.

    Stage timers nest: [time_stage "decide" f] attributes the wall-clock
    time of [f] (inclusive of nested stages) to the ["decide"] bucket. *)

type snapshot = {
  lp_solves : int;        (** simplex invocations actually performed *)
  lp_pivots : int;        (** Gaussian pivots across those solves *)
  cache_hits : int;       (** LP solves answered from the engine cache *)
  cache_misses : int;     (** LP solves that went to the simplex *)
  elemental_hits : int;   (** memoized elemental-family lookups *)
  elemental_misses : int; (** elemental families actually generated *)
  hom_enumerations : int; (** homomorphism enumeration/counting passes *)
  hybrid_float_solves : int;
      (** float-first simplex proposals attempted (0 in exact mode) *)
  hybrid_repairs : int;   (** proposals repaired to verified exact answers *)
  hybrid_repair_failures : int;
      (** proposals whose exact repair was rejected *)
  hybrid_fallbacks : int; (** solves re-run on the exact simplex *)
  store_hits : int;       (** tier-0 misses answered by the persistent store *)
  store_misses : int;     (** tier-0 misses the store could not answer *)
  store_appends : int;    (** fresh solves appended to the store *)
  store_loaded : int;     (** store entries verified and indexed at open *)
  store_rejected : int;
      (** store entries dropped at open: corrupt, forged, or failing
          exact re-verification — never served *)
  lazy_solves : int;
      (** lazy cone decisions started (0 under [--cone-engine full]) *)
  lazy_rounds : int;   (** solve–separate rounds across those decisions *)
  lazy_cuts : int;     (** elemental cuts added by the separation oracle *)
  lazy_fallbacks : int;
      (** lazy certificates rejected by the exact check and re-derived
          (expected 0; any bump is a repaired solver bug) *)
  orbit_cuts : int;
      (** cuts added as symmetry-orbit images of a violated cut, beyond
          the violated cut itself *)
  orbit_canonicalized : int;
      (** lazy decisions whose instance was renamed to a canonical
          orbit representative before solving *)
  stages : (string * float) list;
      (** cumulative wall-clock seconds per named stage, insertion order *)
  hists : (string * Bagcqc_obs.Metrics.hist_snapshot) list;
      (** every non-empty obs histogram ([lp.*], [serve.*], …), sorted by
          name — the percentile source for [--stats] and the [stats]
          serve verb *)
}

val reset : unit -> unit
(** Zero every counter and stage timer. *)

val snapshot : unit -> snapshot

val note_solve : pivots:int -> unit
val note_cache_hit : unit -> unit
val note_cache_miss : unit -> unit
val note_elemental_hit : unit -> unit
val note_elemental_miss : unit -> unit
val note_hom_enumeration : unit -> unit

val time_stage : string -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock duration to the named stage
    bucket (created on first use).  Exceptions propagate; the time is
    recorded regardless. *)

val cache_hit_rate : snapshot -> float
(** [hits / (hits + misses)], or 0 when no cached solve was attempted. *)

val fallback_rate : snapshot -> float
(** [hybrid_fallbacks / hybrid_float_solves], or 0 when the float-first
    engine never ran. *)

val lazy_fallback_rate : snapshot -> float
(** [lazy_fallbacks / lazy_solves], or 0 when the lazy cone driver never
    ran. *)

val pp : Format.formatter -> snapshot -> unit
(** Multi-line human-readable rendering (the [--stats] output),
    including a p50/p90/p99 table for every non-empty histogram. *)
