(** Canonical LP problem IR — the cache key of the solver engine.

    Every decision procedure in this repro bottoms out in "is this
    polyhedron empty / what is this optimum", and structurally identical
    systems recur constantly (the same cone check across renamed
    homomorphism sides, across tree decompositions, across repeated
    [decide] calls).  This module gives those systems one normal form:

    - rows are sparse [(column, coefficient)] forms with zero
      coefficients dropped, columns strictly increasing, and duplicate
      columns summed;
    - the row {e set} is sorted under a total order, so two problems that
      list the same constraints in different orders are equal;
    - the objective is a sparse sorted form (empty = pure feasibility);
    - a [tag] names the cone/backend family that built the problem, so
      distinct encodings with coincidentally equal matrices never collide.

    Structural {!equal}/{!hash} over this normal form key the
    {!Solver} memo table. *)

open Bagcqc_num
open Bagcqc_lp

type row

val row : (int * Rat.t) list -> Simplex.op -> Rat.t -> row
(** Sparse row [pairs · x op rhs]; pairs may arrive unsorted, duplicate
    columns are summed, zero coefficients dropped.
    @raise Invalid_argument on a negative column. *)

type t

val make : tag:string -> num_vars:int -> ?objective:(int * Rat.t) list -> row list -> t
(** Canonicalize.  [objective] (to {e minimize}) defaults to the zero
    objective, i.e. a pure feasibility problem.
    @raise Invalid_argument if a row or objective column is [>= num_vars]. *)

val tag : t -> string
val num_vars : t -> int
val num_rows : t -> int

val objective : t -> (int * Rat.t) list
(** The canonical sparse objective (empty for feasibility problems). *)

val rows_list : t -> ((int * Rat.t) list * Simplex.op * Rat.t) list
(** The canonical rows as [(pairs, op, rhs)] triples, in row order.
    Feeding these (and {!objective}) back through {!row}/{!make}
    reconstructs a problem {!equal} to this one — the serialization
    contract of the persistent {!Store}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_simplex : t -> Simplex.problem
(** Lower to the solver's representation (dense objective, sparse
    constraints). *)
