(** Prometheus text exposition (version 0.0.4): encoder, parser, linter.

    {!encode} renders a {!Metrics.snapshot} for [GET /metrics]: counters
    as [bagcqc_<name>_total] counter families, gauges as gauge families,
    histograms as cumulative [le] buckets derived from the log₂ bucket
    upper bounds plus exact [_sum]/[_count], and optional {!Window}
    rates as one labelled [bagcqc_rate_per_sec] gauge family.

    {!parse}/{!lint} read the same format back — the in-tree validator
    used by the encoder's tests and the [promlint] CLI verb, so CI can
    check a live daemon's scrape without external tooling. *)

val metric_name : string -> string
(** Sanitized, ["bagcqc_"]-prefixed family name: characters outside
    [\[a-zA-Z0-9_:\]] become ['_']. *)

val encode : ?rates:(string * string * float) list -> Metrics.snapshot -> string
(** The exposition document.  [rates] rows are (source counter, window
    label, per-second rate), e.g. [("serve.replies", "1m", 12.5)]. *)

(** {2 Parser} *)

type mtype = Counter | Gauge | Histogram

type sample = {
  sname : string;
  labels : (string * string) list;
  value : float;
}

type exposition = {
  types : (string * mtype) list;  (** family types, declaration order *)
  samples : sample list;  (** line order *)
}

val parse : string -> (exposition, string) result

val find_sample : exposition -> string -> (string * string) list -> float option
(** Value of the sample with this name whose labels are exactly the
    given set (order-insensitive). *)

val lint : string -> (int, string) result
(** Parse plus the format invariants the encoder promises: every sample
    belongs to a declared family, histogram [le] strictly increasing
    with cumulative-monotone counts, ["+Inf"] bucket present and equal
    to [_count], [_sum]/[_count] present.  Returns the family count. *)
