(* Minimal JSON: the repo's one and only JSON dialect.  The build
   environment has no JSON library, so this module serves every JSON
   consumer and producer in the tree: the trace exporters and the report
   reader, the bench comparator (bench/compare.ml), the persistent solve
   store (lib/engine/store.ml) and the serve wire protocol
   (lib/serve/protocol.ml). *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

(* ---------------- printing ---------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
        advance ();
        Buffer.contents buf
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'u' ->
           (* \uXXXX: decode the BMP code point to UTF-8 (surrogate pairs
              are not recombined; the exporter never emits them). *)
           advance ();
           let hex = Buffer.create 4 in
           for _ = 1 to 4 do
             Buffer.add_char hex (peek ());
             advance ()
           done;
           pos := !pos - 1;
           (match int_of_string_opt ("0x" ^ Buffer.contents hex) with
            | Some cp when cp < 0x80 -> Buffer.add_char buf (Char.chr cp)
            | Some cp when cp < 0x800 ->
              Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            | Some cp ->
              Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            | None -> fail "bad \\u escape")
         | _ -> fail "unsupported escape");
        advance ();
        go ()
      | '\000' -> fail "unterminated string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while number_char (peek ()) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((key, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------- accessors ---------------- *)

let find_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let member key v =
  match find_opt key v with
  | Some x -> x
  | None -> raise (Parse_error ("missing field " ^ key))

let as_arr = function Arr l -> l | _ -> raise (Parse_error "expected array")
let as_obj = function Obj l -> l | _ -> raise (Parse_error "expected object")
let as_str = function Str s -> s | _ -> raise (Parse_error "expected string")
let as_num = function Num f -> f | _ -> raise (Parse_error "expected number")
let as_int v = int_of_float (as_num v)
