(* Trace exporters.

   Two formats over the same data (the span ring + the metrics registry):

   - Chrome trace-event JSON: an object with a "traceEvents" array of
     complete ("ph":"X") events, loadable by chrome://tracing and
     Perfetto.  Span ids, parent ids and self-times ride in "args" under
     reserved keys, and the full metrics snapshot rides in a "bagcqc"
     top-level object — both ignored by the viewers but read back by
     {!Report}, so report output is computed from exactly what the file
     says, not from in-process state.

   - JSONL: one event object per line ("meta", "span", "counter",
     "histogram" records), for streaming consumers.

   [write] dispatches on the file extension: ".jsonl" selects JSONL,
   anything else the Chrome format. *)

let schema = "bagcqc-trace/1"

(* Reserved arg keys carrying span structure; everything else in "args"
   is a user attribute. *)
let key_id = "id"
let key_parent = "parent"
let key_self = "self_us"

let json_of_attr : Span.attr -> Json.t = function
  | Span.Int i -> Json.Num (float_of_int i)
  | Span.Float f -> Json.Num f
  | Span.Str s -> Json.Str s
  | Span.Bool b -> Json.Bool b

let us t = t *. 1e6

let span_args sp =
  (key_id, Json.Num (float_of_int sp.Span.id))
  :: (key_parent, Json.Num (float_of_int sp.Span.parent))
  :: (key_self, Json.Num (us (Span.self sp)))
  :: List.rev_map (fun (k, v) -> (k, json_of_attr v)) sp.Span.attrs

let span_event sp =
  Json.Obj
    [ ("type", Json.Str "span"); ("name", Json.Str sp.Span.name);
      ("ts", Json.Num (us (Float.max 0.0 (sp.Span.start -. !Runtime.epoch))));
      ("dur", Json.Num (us sp.Span.dur)); ("args", Json.Obj (span_args sp)) ]

let chrome_event sp =
  Json.Obj
    [ ("name", Json.Str sp.Span.name); ("cat", Json.Str "bagcqc");
      ("ph", Json.Str "X");
      ("ts", Json.Num (us (Float.max 0.0 (sp.Span.start -. !Runtime.epoch))));
      ("dur", Json.Num (us sp.Span.dur)); ("pid", Json.Num 1.0);
      ("tid", Json.Num 1.0); ("args", Json.Obj (span_args sp)) ]

let json_of_hist (h : Metrics.hist_snapshot) =
  Json.Obj
    [ ("count", Json.Num (float_of_int h.Metrics.count));
      ("sum", Json.Num (float_of_int h.Metrics.sum));
      ("min", Json.Num (float_of_int h.Metrics.min_value));
      ("max", Json.Num (float_of_int h.Metrics.max_value));
      ("buckets",
       Json.Arr
         (List.map
            (fun (i, c) ->
              Json.Arr [ Json.Num (float_of_int i); Json.Num (float_of_int c) ])
            h.Metrics.buckets)) ]

let metrics_json (s : Metrics.snapshot) =
  Json.Obj
    [ ("counters",
       Json.Obj
         (List.map (fun (n, v) -> (n, Json.Num (float_of_int v))) s.Metrics.counters));
      ("histograms",
       Json.Obj
         (List.filter_map
            (fun (n, h) ->
              if h.Metrics.count = 0 then None else Some (n, json_of_hist h))
            s.Metrics.histograms));
      ("gauges",
       Json.Obj
         (List.map (fun (n, v) -> (n, Json.Num (float_of_int v))) s.Metrics.gauges)) ]

let chrome () =
  Json.Obj
    [ ("traceEvents", Json.Arr (List.map chrome_event (Span.closed ())));
      ("displayTimeUnit", Json.Str "ms");
      ("bagcqc",
       Json.Obj
         [ ("schema", Json.Str schema);
           ("dropped", Json.Num (float_of_int (Span.dropped ())));
           ("depth_dropped", Json.Num (float_of_int (Span.depth_dropped ())));
           ("metrics", metrics_json (Metrics.snapshot ())) ]) ]

let jsonl_lines () =
  let meta =
    Json.Obj
      [ ("type", Json.Str "meta"); ("schema", Json.Str schema);
        ("dropped", Json.Num (float_of_int (Span.dropped ())));
        ("depth_dropped", Json.Num (float_of_int (Span.depth_dropped ()))) ]
  in
  let spans = List.map span_event (Span.closed ()) in
  let s = Metrics.snapshot () in
  let counters =
    List.map
      (fun (n, v) ->
        Json.Obj
          [ ("type", Json.Str "counter"); ("name", Json.Str n);
            ("value", Json.Num (float_of_int v)) ])
      s.Metrics.counters
  in
  let hists =
    List.filter_map
      (fun (n, h) ->
        if h.Metrics.count = 0 then None
        else
          Some
            (Json.Obj
               [ ("type", Json.Str "histogram"); ("name", Json.Str n);
                 ("data", json_of_hist h) ]))
      s.Metrics.histograms
  in
  let gauges =
    List.map
      (fun (n, v) ->
        Json.Obj
          [ ("type", Json.Str "gauge"); ("name", Json.Str n);
            ("value", Json.Num (float_of_int v)) ])
      s.Metrics.gauges
  in
  (meta :: spans) @ counters @ gauges @ hists

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

let write_chrome path =
  let buf = Buffer.create 4096 in
  Json.to_buffer buf (chrome ());
  Buffer.add_char buf '\n';
  write_file path (Buffer.contents buf)

let write_jsonl path =
  let buf = Buffer.create 4096 in
  List.iter
    (fun line ->
      Json.to_buffer buf line;
      Buffer.add_char buf '\n')
    (jsonl_lines ());
  write_file path (Buffer.contents buf)

let write path =
  if Filename.check_suffix path ".jsonl" then write_jsonl path
  else write_chrome path
