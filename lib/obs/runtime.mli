(** Global switches and the trace clock for the obs layer.

    [enabled] gates every recording path: instrumented code must check it
    (or go through an entry point that does) before paying for
    timestamps, attribute lists, or histogram updates, so that untraced
    runs cost a single branch per instrumentation point. *)

val enabled : bool ref
(** Master switch.  Flip through {!Obs.enable}/{!Obs.disable} rather than
    directly, so the span store and epoch stay consistent. *)

val ring_capacity : int ref
(** Capacity of the completed-span ring buffer (applied on {!Span.reset}). *)

val max_depth : int ref
(** Spans nested deeper than this run uninstrumented (counted as
    depth-dropped). *)

val sample_every : int ref
(** Samplers on per-pivot paths record every k-th observation. *)

val now : unit -> float
(** Wall-clock seconds, forced non-decreasing across calls. *)

val epoch : float ref
(** Trace epoch; exported timestamps are relative to it. *)
