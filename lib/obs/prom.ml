(* Prometheus text exposition (version 0.0.4): encoder and parser.

   The encoder maps the obs registry onto the three family kinds a
   scraper understands:

   - counters  -> "# TYPE bagcqc_<name>_total counter" with one sample;
   - gauges    -> "# TYPE bagcqc_<name> gauge" with one sample;
   - histograms-> cumulative [le] buckets derived from the log₂ bucket
     upper bounds ({!Metrics.bucket_hi}), a "+Inf" bucket, and the exact
     [_sum]/[_count] the snapshot carries;
   - rolling rates ({!Window}) -> one "bagcqc_rate_per_sec" gauge family
     labelled by source counter and window.

   The parser is the other half of the contract: an in-tree reader of
   the same format, used by the golden/property tests and by the
   [promlint] CLI verb so CI can validate a live daemon's /metrics
   output without any external tooling.  It is deliberately strict
   about what the encoder promises (name syntax, one TYPE per family,
   numeric sample values) and [lint] layers the histogram invariants on
   top: [le] strictly increasing, cumulative counts monotone, "+Inf"
   present and equal to [_count]. *)

let prefix = "bagcqc_"

(* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; obs names use
   dots ("serve.queue_us"), which map to underscores. *)
let metric_name name =
  let b = Buffer.create (String.length name + String.length prefix) in
  Buffer.add_string b prefix;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(* ---------------- encoder ---------------- *)

let add_family b ~name ~mtype = Printf.bprintf b "# TYPE %s %s\n" name mtype

let encode_histogram b name (h : Metrics.hist_snapshot) =
  add_family b ~name ~mtype:"histogram";
  let cum = ref 0 in
  List.iter
    (fun (i, c) ->
      cum := !cum + c;
      Printf.bprintf b "%s_bucket{le=\"%d\"} %d\n" name (Metrics.bucket_hi i)
        !cum)
    h.Metrics.buckets;
  Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.count;
  Printf.bprintf b "%s_sum %d\n" name h.Metrics.sum;
  Printf.bprintf b "%s_count %d\n" name h.Metrics.count

let encode ?(rates = []) (s : Metrics.snapshot) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (n, v) ->
      let name = metric_name n ^ "_total" in
      add_family b ~name ~mtype:"counter";
      Printf.bprintf b "%s %d\n" name v)
    s.Metrics.counters;
  List.iter
    (fun (n, v) ->
      let name = metric_name n in
      add_family b ~name ~mtype:"gauge";
      Printf.bprintf b "%s %d\n" name v)
    s.Metrics.gauges;
  List.iter
    (fun (n, h) -> encode_histogram b (metric_name n) h)
    s.Metrics.histograms;
  (match rates with
   | [] -> ()
   | _ ->
     let name = prefix ^ "rate_per_sec" in
     add_family b ~name ~mtype:"gauge";
     List.iter
       (fun (counter, window, r) ->
         Printf.bprintf b "%s{counter=\"%s\",window=\"%s\"} %s\n" name
           (escape_label_value counter) (escape_label_value window)
           (float_str r))
       rates);
  Buffer.contents b

(* ---------------- parser ---------------- *)

type mtype = Counter | Gauge | Histogram

type sample = {
  sname : string;
  labels : (string * string) list;
  value : float;
}

type exposition = {
  types : (string * mtype) list; (* declaration order *)
  samples : sample list; (* line order *)
}

exception Bad of string

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let parse_name line i =
  let n = String.length line in
  if i >= n || not (is_name_start line.[i]) then
    raise (Bad "expected a metric name");
  let j = ref (i + 1) in
  while !j < n && is_name_char line.[!j] do incr j done;
  (String.sub line i (!j - i), !j)

let skip_ws line i =
  let n = String.length line in
  let j = ref i in
  while !j < n && (line.[!j] = ' ' || line.[!j] = '\t') do incr j done;
  !j

let parse_label_value line i =
  let n = String.length line in
  if i >= n || line.[i] <> '"' then raise (Bad "expected '\"'");
  let b = Buffer.create 16 in
  let j = ref (i + 1) in
  let fin = ref (-1) in
  while !fin < 0 do
    if !j >= n then raise (Bad "unterminated label value");
    (match line.[!j] with
     | '\\' ->
       if !j + 1 >= n then raise (Bad "dangling escape");
       (match line.[!j + 1] with
        | '\\' -> Buffer.add_char b '\\'
        | '"' -> Buffer.add_char b '"'
        | 'n' -> Buffer.add_char b '\n'
        | c -> raise (Bad (Printf.sprintf "bad escape '\\%c'" c)));
       j := !j + 2
     | '"' ->
       fin := !j;
       incr j
     | c ->
       Buffer.add_char b c;
       incr j);
  done;
  (Buffer.contents b, !j)

let parse_labels line i =
  (* caller consumed '{' *)
  let n = String.length line in
  let labels = ref [] in
  let j = ref (skip_ws line i) in
  if !j < n && line.[!j] = '}' then (List.rev !labels, !j + 1)
  else begin
    let fin = ref (-1) in
    while !fin < 0 do
      let k, j1 = parse_name line (skip_ws line !j) in
      let j2 = skip_ws line j1 in
      if j2 >= n || line.[j2] <> '=' then raise (Bad "expected '='");
      let v, j3 = parse_label_value line (skip_ws line (j2 + 1)) in
      labels := (k, v) :: !labels;
      let j4 = skip_ws line j3 in
      if j4 < n && line.[j4] = ',' then j := j4 + 1
      else if j4 < n && line.[j4] = '}' then fin := j4 + 1
      else raise (Bad "expected ',' or '}'")
    done;
    (List.rev !labels, !fin)
  end

let parse_sample line =
  let sname, i = parse_name line 0 in
  let labels, i =
    if i < String.length line && line.[i] = '{' then parse_labels line (i + 1)
    else ([], i)
  in
  let rest = String.trim (String.sub line i (String.length line - i)) in
  (* value [timestamp]; we only emit values, but tolerate a timestamp *)
  let value_str =
    match String.index_opt rest ' ' with
    | Some k -> String.sub rest 0 k
    | None -> rest
  in
  if value_str = "" then raise (Bad "missing sample value");
  let value =
    match float_of_string_opt value_str with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "bad sample value %S" value_str))
  in
  { sname; labels; value }

let parse text =
  let types = ref [] in
  let samples = ref [] in
  let lineno = ref 0 in
  try
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           incr lineno;
           let line = String.trim line in
           if line = "" then ()
           else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
             let rest = String.sub line 7 (String.length line - 7) in
             let name, i = parse_name rest 0 in
             let mtype =
               match String.trim (String.sub rest i (String.length rest - i)) with
               | "counter" -> Counter
               | "gauge" -> Gauge
               | "histogram" -> Histogram
               | t -> raise (Bad (Printf.sprintf "unsupported type %S" t))
             in
             if List.mem_assoc name !types then
               raise (Bad (Printf.sprintf "duplicate TYPE for %s" name));
             types := (name, mtype) :: !types
           end
           else if line.[0] = '#' then () (* HELP / comment *)
           else samples := parse_sample line :: !samples);
    Ok { types = List.rev !types; samples = List.rev !samples }
  with Bad msg -> Error (Printf.sprintf "line %d: %s" !lineno msg)

let find_sample e name labels =
  List.find_map
    (fun s ->
      if s.sname = name
         && List.length s.labels = List.length labels
         && List.for_all
              (fun (k, v) -> List.assoc_opt k s.labels = Some v)
              labels
      then Some s.value
      else None)
    e.samples

(* ---------------- lint ---------------- *)

let hist_suffixes = [ "_bucket"; "_sum"; "_count" ]

let base_of name =
  List.find_map
    (fun suf ->
      if Filename.check_suffix name suf then
        Some (Filename.chop_suffix name suf)
      else None)
    hist_suffixes

let lint_histogram e name =
  let buckets =
    List.filter_map
      (fun s ->
        if s.sname = name ^ "_bucket" then
          match List.assoc_opt "le" s.labels with
          | None -> raise (Bad (name ^ ": bucket without le label"))
          | Some le -> Some (le, s.value)
        else None)
      e.samples
  in
  if buckets = [] then raise (Bad (name ^ ": histogram with no buckets"));
  let le_val le =
    match float_of_string_opt le with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "%s: bad le %S" name le))
  in
  let rec check_mono = function
    | (le1, c1) :: ((le2, c2) :: _ as rest) ->
      if le_val le1 >= le_val le2 then
        raise (Bad (Printf.sprintf "%s: le not increasing (%s >= %s)" name le1 le2));
      if c1 > c2 then
        raise
          (Bad
             (Printf.sprintf "%s: bucket counts not cumulative (%g > %g at le=%s)"
                name c1 c2 le2));
      check_mono rest
    | _ -> ()
  in
  check_mono buckets;
  let inf_le, inf_count = List.nth buckets (List.length buckets - 1) in
  if le_val inf_le <> Float.infinity then
    raise (Bad (name ^ ": last bucket is not +Inf"));
  (match find_sample e (name ^ "_count") [] with
   | None -> raise (Bad (name ^ ": missing _count"))
   | Some c ->
     if c <> inf_count then
       raise
         (Bad (Printf.sprintf "%s: +Inf bucket %g <> _count %g" name inf_count c)));
  if find_sample e (name ^ "_sum") [] = None then
    raise (Bad (name ^ ": missing _sum"))

let lint text =
  match parse text with
  | Error _ as e -> e
  | Ok e ->
    (try
       (* Every sample must belong to a declared family. *)
       List.iter
         (fun s ->
           let declared name = List.mem_assoc name e.types in
           let ok =
             declared s.sname
             || match base_of s.sname with
                | Some base -> List.assoc_opt base e.types = Some Histogram
                | None -> false
           in
           if not ok then raise (Bad (s.sname ^ ": sample without a TYPE")))
         e.samples;
       List.iter
         (fun (name, t) -> if t = Histogram then lint_histogram e name)
         e.types;
       Ok (List.length e.types)
     with Bad msg -> Error msg)
