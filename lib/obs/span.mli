(** Nested timed spans with attributes, recorded into a bounded ring.

    [with_span] is safe on hot paths: with tracing disabled it is a
    single branch around the thunk.  Enabled, it assigns the span an id
    and a parent (the innermost open span), timestamps it with the
    monotonic trace clock, and on close pushes the completed record into
    a fixed-capacity ring buffer (oldest spans are overwritten first).
    Spans nested deeper than {!Runtime.max_depth} run uninstrumented and
    are counted, not recorded.

    Invariant on every completed span: [self sp +. sp.children = sp.dur]
    exactly (self-time is inclusive time minus the sum of direct
    children's inclusive times). *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  id : int;
  parent : int;  (** id of the enclosing span, [-1] for a root *)
  depth : int;
  name : string;
  mutable attrs : (string * attr) list;
  start : float;  (** absolute seconds; subtract {!Runtime.epoch} to export *)
  mutable dur : float;  (** inclusive wall-clock seconds *)
  mutable children : float;  (** Σ inclusive durations of direct children *)
}

val with_span : name:string -> ?attrs:(string * attr) list -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  Exceptions propagate; the span closes
    regardless.  Disabled: calls the thunk directly. *)

val add_attr : string -> attr -> unit
(** Attach an attribute to the innermost open span (no-op when disabled
    or when no span is open).  Use for facts only known mid-span:
    pivot counts, cache hit/miss, verdicts. *)

val self : t -> float
(** Self-time: inclusive duration minus children's inclusive durations. *)

val on_close : (t -> unit) -> unit
(** Subscribe to span completions (called, newest subscriber first, each
    time a span closes while tracing is enabled). *)

val closed : unit -> t list
(** Completed spans still in the ring, oldest first. *)

val dropped : unit -> int
(** Completed spans overwritten by ring wrap-around since the last reset. *)

val depth_dropped : unit -> int
(** Spans skipped because they exceeded {!Runtime.max_depth}. *)

val open_depth : unit -> int
(** Number of currently open spans (0 between top-level operations). *)

val current_id : unit -> int
(** Id of this domain's innermost open span, [-1] when none is open or
    tracing is disabled.  Lets a caller remember which span covered a
    piece of work and later collect that span's subtree from {!closed}
    (slow-request capture). *)

val reset : unit -> unit
(** Clear the ring, the open stack, and ids; re-arm the trace epoch.
    Idempotent.  Does not clear subscribers. *)
