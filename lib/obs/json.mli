(** Minimal JSON (objects, arrays, strings, numbers, booleans, null) —
    the subset the trace exporters emit and the report reader consumes.
    The build environment has no JSON library. *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val parse : string -> t
(** @raise Parse_error on malformed input (with an offset). *)

val find_opt : string -> t -> t option
val member : string -> t -> t
(** @raise Parse_error when the field is missing or [t] is not an object. *)

val as_arr : t -> t list
val as_obj : t -> (string * t) list
val as_str : t -> string
val as_num : t -> float
val as_int : t -> int
