(** Rolling windows over counters: recent deltas and rates.

    A window samples one counter's cumulative value into a bounded ring
    (one sample per {!tick_all}, coalesced below 0.5s apart, 512 slots —
    at 1 Hz that covers well past 5 minutes).  {!delta} and {!rate}
    answer "how much did this counter move over the last N seconds" by
    diffing the live count against the newest sample at least that old.

    Rates are honest about coverage: when the ring does not yet reach N
    seconds back (fresh boot), the divisor is the time actually covered,
    which {!delta} also returns. *)

type t

val track : string -> t
(** Find-or-create the window over the counter with this name. *)

val name : t -> string

val tracked : unit -> t list
(** Every window, in creation order. *)

val tick_all : unit -> unit
(** Sample every tracked counter now.  Call ~1/s (ticker thread); extra
    calls within 0.5s of the last sample are dropped. *)

val delta : t -> seconds:float -> int * float
(** [(d, covered)]: the counter moved by [d] over the last [covered]
    seconds, where [covered <= seconds] (shorter when the ring is young,
    slightly longer when the baseline sample predates the cutoff).
    [(0, 0.)] before the first tick. *)

val rate : t -> seconds:float -> float
(** Per-second rate over the covered period; 0 when coverage is under
    the sampling gap. *)

val reset : unit -> unit
(** Drop every ring's samples (window handles stay valid). *)
