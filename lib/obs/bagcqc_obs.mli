(** Structured tracing & metrics for the whole pipeline.

    The event model has three parts (see DESIGN.md §4c):

    - {!Span}: nested timed regions with attributes, recorded into a
      bounded ring buffer — the trace tree;
    - {!Metrics}: named counters, log-bucketed histograms and
      last-writer-wins gauges, handle-based so a counter event is one
      integer store;
    - {!Window}: rolling deltas/rates over counters (decisions/sec over
      the last 1m/5m for a long-running daemon);
    - {!Prom}: Prometheus text exposition encoder + in-tree parser;
    - {!Export}/{!Report}: Chrome-trace / JSONL serialization and the
      reader behind the [report] CLI subcommand.

    With tracing {e disabled} (the default) every span entry point is a
    single branch; counters stay live (they are what {!Bagcqc_engine.Stats}
    snapshots), and histogram call sites are expected to gate themselves
    on {!enabled}.

    {2 Initialization order under parallelism}

    Collection is per-domain (each domain owns its span ring and metric
    cells; snapshots merge them), so recording is always safe inside the
    {!Bagcqc_par.Pool} — but the lifecycle calls below walk and clear
    every domain's store and therefore must run while the pool is
    quiescent.  Configure in this order: pool size
    ([--jobs] / [BAGCQC_JOBS] / [Bagcqc_par.Pool.set_jobs]), then
    {!enable}/{!reset}, then parallel work.  {!enable}, {!disable} and
    {!reset} raise [Invalid_argument] when called from inside a parallel
    region. *)

module Runtime = Runtime
module Span = Span
module Metrics = Metrics
module Window = Window
module Prom = Prom
module Json = Json
module Export = Export
module Report = Report

val enabled : unit -> bool

val enable :
  ?ring_capacity:int -> ?max_depth:int -> ?sample_every:int -> unit -> unit
(** Turn span recording on (idempotent; re-enabling while already enabled
    only updates the knobs, which take effect at the next {!reset}).  A
    disabled→enabled transition starts a fresh span store and epoch. *)

val disable : unit -> unit
(** Stop recording; already collected data stays readable/exportable. *)

val reset : unit -> unit
(** Fresh trace: clear spans (ring, ids, epoch), zero all metrics and
    drop window samples.  Idempotent. *)
