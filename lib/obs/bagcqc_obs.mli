(** Structured tracing & metrics for the whole pipeline.

    The event model has three parts (see DESIGN.md §4c):

    - {!Span}: nested timed regions with attributes, recorded into a
      bounded ring buffer — the trace tree;
    - {!Metrics}: named counters and log-bucketed histograms, handle-based
      so a counter event is one integer store;
    - {!Export}/{!Report}: Chrome-trace / JSONL serialization and the
      reader behind the [report] CLI subcommand.

    With tracing {e disabled} (the default) every span entry point is a
    single branch; counters stay live (they are what {!Bagcqc_engine.Stats}
    snapshots), and histogram call sites are expected to gate themselves
    on {!enabled}. *)

module Runtime = Runtime
module Span = Span
module Metrics = Metrics
module Json = Json
module Export = Export
module Report = Report

val enabled : unit -> bool

val enable :
  ?ring_capacity:int -> ?max_depth:int -> ?sample_every:int -> unit -> unit
(** Turn span recording on (idempotent; re-enabling while already enabled
    only updates the knobs, which take effect at the next {!reset}).  A
    disabled→enabled transition starts a fresh span store and epoch. *)

val disable : unit -> unit
(** Stop recording; already collected data stays readable/exportable. *)

val reset : unit -> unit
(** Fresh trace: clear spans (ring, ids, epoch) and zero all metrics.
    Idempotent. *)
