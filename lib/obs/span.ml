(* Span trees: nested timed regions with per-span attributes.

   One process-global stack of open spans (the workloads here are
   single-threaded); completed spans land in a bounded ring buffer so
   always-on tracing cannot grow memory without bound.  Parent/child
   structure is recorded explicitly (ids), so the tree survives export
   and re-import even though the ring only stores a flat sequence.

   Self-time accounting: every span accumulates the inclusive duration
   of its direct children as they close; [self] is then inclusive minus
   that sum, and the identity [self + Σ children = dur] holds exactly
   (same float additions on both sides). *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  id : int;
  parent : int; (* -1 for a root span *)
  depth : int;
  name : string;
  mutable attrs : (string * attr) list;
  start : float; (* absolute seconds (Runtime.now) *)
  mutable dur : float; (* inclusive, seconds *)
  mutable children : float; (* Σ inclusive durations of direct children *)
}

let self sp = sp.dur -. sp.children

(* ---------------- state ---------------- *)

let next_id = ref 0
let stack : t list ref = ref [] (* innermost open span first *)

let ring : t option array ref = ref [||]
let widx = ref 0
let written = ref 0
let depth_dropped_n = ref 0

let subscribers : (t -> unit) list ref = ref []

let on_close f = subscribers := f :: !subscribers

let reset () =
  stack := [];
  next_id := 0;
  let cap = max 0 !Runtime.ring_capacity in
  if Array.length !ring <> cap then ring := Array.make cap None
  else Array.fill !ring 0 cap None;
  widx := 0;
  written := 0;
  depth_dropped_n := 0;
  Runtime.epoch := Runtime.now ()

let record sp =
  let cap = Array.length !ring in
  if cap > 0 then begin
    !ring.(!widx) <- Some sp;
    widx := (!widx + 1) mod cap;
    incr written
  end

let dropped () = max 0 (!written - Array.length !ring)
let depth_dropped () = !depth_dropped_n
let open_depth () = List.length !stack

(* Completed spans, oldest first (eviction order). *)
let closed () =
  let cap = Array.length !ring in
  if cap = 0 then []
  else begin
    let acc = ref [] in
    for k = cap - 1 downto 0 do
      match !ring.((!widx + k) mod cap) with
      | Some sp -> acc := sp :: !acc
      | None -> ()
    done;
    !acc
  end

(* ---------------- recording ---------------- *)

let add_attr key v =
  if !Runtime.enabled then
    match !stack with
    | [] -> ()
    | sp :: _ -> sp.attrs <- (key, v) :: sp.attrs

let with_span ~name ?(attrs = []) f =
  if not !Runtime.enabled then f ()
  else begin
    let depth = match !stack with [] -> 0 | p :: _ -> p.depth + 1 in
    if depth > !Runtime.max_depth then begin
      incr depth_dropped_n;
      f ()
    end
    else begin
      let parent = match !stack with [] -> -1 | p :: _ -> p.id in
      let id = !next_id in
      incr next_id;
      let sp =
        { id; parent; depth; name; attrs; start = Runtime.now (); dur = 0.0;
          children = 0.0 }
      in
      stack := sp :: !stack;
      let finish () =
        sp.dur <- Runtime.now () -. sp.start;
        (* Pop back to (and including) sp: recovers from instrumented code
           that escaped a nested span with an effect the nested [finish]
           never saw (cannot happen with Fun.protect, but stay safe). *)
        let rec pop = function
          | [] -> []
          | top :: rest -> if top == sp then rest else pop rest
        in
        stack := pop !stack;
        (match !stack with
         | p :: _ -> p.children <- p.children +. sp.dur
         | [] -> ());
        record sp;
        List.iter (fun k -> k sp) !subscribers
      in
      Fun.protect ~finally:finish f
    end
  end
