(* Span trees: nested timed regions with per-span attributes.

   Each domain owns an open-span stack and a bounded ring of completed
   spans (reached through [Domain.DLS]), so pool workers trace their
   chunks without contending on — or corrupting — a shared stack.
   Parent/child structure is per-domain: a pool task starts a fresh root
   span on its worker, which is the truthful shape (the coordinating
   domain is blocked, not "calling" the chunk).  Ids come from one
   process-wide atomic so they are unique across domains, and [closed]
   merges every ring sorted by (start, id), which on a single domain
   reproduces exactly the old completion order.

   Self-time accounting: every span accumulates the inclusive duration
   of its direct children as they close; [self] is then inclusive minus
   that sum, and the identity [self + Σ children = dur] holds exactly
   (same float additions on both sides). *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  id : int;
  parent : int; (* -1 for a root span *)
  depth : int;
  name : string;
  mutable attrs : (string * attr) list;
  start : float; (* absolute seconds (Runtime.now) *)
  mutable dur : float; (* inclusive, seconds *)
  mutable children : float; (* Σ inclusive durations of direct children *)
}

let self sp = sp.dur -. sp.children

(* ---------------- state ---------------- *)

let next_id = Atomic.make 0

type dstore = {
  mutable stack : t list; (* innermost open span first *)
  mutable ring : t option array;
  mutable widx : int;
  mutable written : int;
  mutable depth_dropped_n : int;
}

let reg_mutex = Mutex.create ()
let dstores : dstore list ref = ref []

let dstore_key =
  Domain.DLS.new_key (fun () ->
      let d =
        { stack = []; ring = Array.make (max 0 !Runtime.ring_capacity) None;
          widx = 0; written = 0; depth_dropped_n = 0 }
      in
      Mutex.lock reg_mutex;
      dstores := d :: !dstores;
      Mutex.unlock reg_mutex;
      d)

let all_dstores () =
  Mutex.lock reg_mutex;
  let ds = !dstores in
  Mutex.unlock reg_mutex;
  ds

let subscribers : (t -> unit) list ref = ref []

let on_close f = subscribers := f :: !subscribers

(* Quiescence contract: reset between parallel regions (the obs layer
   refuses to flip recording inside one), so walking the other domains'
   stores here cannot race their writes. *)
let reset () =
  Atomic.set next_id 0;
  let cap = max 0 !Runtime.ring_capacity in
  List.iter
    (fun d ->
      d.stack <- [];
      if Array.length d.ring <> cap then d.ring <- Array.make cap None
      else Array.fill d.ring 0 cap None;
      d.widx <- 0;
      d.written <- 0;
      d.depth_dropped_n <- 0)
    (all_dstores ());
  Runtime.epoch := Runtime.now ()

let record d sp =
  let cap = Array.length d.ring in
  if cap > 0 then begin
    d.ring.(d.widx) <- Some sp;
    d.widx <- (d.widx + 1) mod cap;
    d.written <- d.written + 1
  end

let dropped () =
  List.fold_left
    (fun acc d -> acc + max 0 (d.written - Array.length d.ring))
    0 (all_dstores ())

let depth_dropped () =
  List.fold_left (fun acc d -> acc + d.depth_dropped_n) 0 (all_dstores ())

let open_depth () = List.length (Domain.DLS.get dstore_key).stack

let current_id () =
  if not !Runtime.enabled then -1
  else
    match (Domain.DLS.get dstore_key).stack with
    | [] -> -1
    | sp :: _ -> sp.id

(* Completed spans in one ring, oldest first (eviction order). *)
let ring_closed d =
  let cap = Array.length d.ring in
  if cap = 0 then []
  else begin
    let acc = ref [] in
    for k = cap - 1 downto 0 do
      match d.ring.((d.widx + k) mod cap) with
      | Some sp -> acc := sp :: !acc
      | None -> ()
    done;
    !acc
  end

(* All completed spans, merged across domains by (start, id).  Ids are
   allocated from one atomic at span open, so on a single domain this is
   the old insertion order; across domains it interleaves by the
   monotonic trace clock. *)
let closed () =
  match all_dstores () with
  | [ d ] -> ring_closed d
  | ds ->
    List.concat_map ring_closed ds
    |> List.sort (fun a b ->
           match compare a.start b.start with 0 -> compare a.id b.id | c -> c)

(* ---------------- recording ---------------- *)

let add_attr key v =
  if !Runtime.enabled then
    match (Domain.DLS.get dstore_key).stack with
    | [] -> ()
    | sp :: _ -> sp.attrs <- (key, v) :: sp.attrs

let with_span ~name ?(attrs = []) f =
  if not !Runtime.enabled then f ()
  else begin
    let d = Domain.DLS.get dstore_key in
    let depth = match d.stack with [] -> 0 | p :: _ -> p.depth + 1 in
    if depth > !Runtime.max_depth then begin
      d.depth_dropped_n <- d.depth_dropped_n + 1;
      f ()
    end
    else begin
      let parent = match d.stack with [] -> -1 | p :: _ -> p.id in
      let id = Atomic.fetch_and_add next_id 1 in
      let sp =
        { id; parent; depth; name; attrs; start = Runtime.now (); dur = 0.0;
          children = 0.0 }
      in
      d.stack <- sp :: d.stack;
      let finish () =
        sp.dur <- Runtime.now () -. sp.start;
        (* Pop back to (and including) sp: recovers from instrumented code
           that escaped a nested span with an effect the nested [finish]
           never saw (cannot happen with Fun.protect, but stay safe). *)
        let rec pop = function
          | [] -> []
          | top :: rest -> if top == sp then rest else pop rest
        in
        d.stack <- pop d.stack;
        (match d.stack with
         | p :: _ -> p.children <- p.children +. sp.dur
         | [] -> ());
        record d sp;
        List.iter (fun k -> k sp) !subscribers
      in
      Fun.protect ~finally:finish f
    end
  end
