(* Rolling counter windows.

   A window tracks one counter by sampling its cumulative value into a
   bounded ring of (time, value) pairs; [delta]/[rate] then answer "how
   much did this counter move over the last N seconds" by diffing the
   live value against the newest sample at least that old.  This is how
   a long-running daemon reports decisions/sec and hit rates over the
   last 1m/5m instead of since-boot totals.

   Sampling is pull-based: someone (the serve ticker thread, or a
   metrics scrape) calls [tick_all] about once a second.  Samples closer
   together than [min_gap] are coalesced, so opportunistic ticks from
   request handlers cannot flood the ring.  The ring holds [capacity]
   samples — at one per second that covers ~8.5 minutes, comfortably
   past the 5m window.

   Honesty rule: a freshly booted daemon has no sample 5 minutes old, so
   [rate] divides by the time actually covered (now minus the baseline
   sample's time) and reports that coverage, rather than amortizing a
   10-second burst over a fictional 5 minutes. *)

type t = {
  wname : string;
  counter : Metrics.counter;
  times : float array;
  values : int array;
  mutable widx : int; (* next write slot *)
  mutable filled : int; (* valid samples in the ring *)
}

let capacity = 512
let min_gap = 0.5

let reg_mutex = Mutex.create ()
let windows : t list ref = ref []

let track name =
  Mutex.lock reg_mutex;
  let w =
    match List.find_opt (fun w -> w.wname = name) !windows with
    | Some w -> w
    | None ->
      let w =
        { wname = name; counter = Metrics.counter name;
          times = Array.make capacity 0.0; values = Array.make capacity 0;
          widx = 0; filled = 0 }
      in
      windows := w :: !windows;
      w
  in
  Mutex.unlock reg_mutex;
  w

let name w = w.wname

let tracked () =
  Mutex.lock reg_mutex;
  let ws = List.rev !windows in
  Mutex.unlock reg_mutex;
  ws

(* Newest sample, if any.  Caller holds reg_mutex. *)
let newest w =
  if w.filled = 0 then None
  else begin
    let i = (w.widx + capacity - 1) mod capacity in
    Some (w.times.(i), w.values.(i))
  end

let tick w =
  let now = Runtime.now () in
  let v = Metrics.count w.counter in
  Mutex.lock reg_mutex;
  (match newest w with
   | Some (t, _) when now -. t < min_gap -> ()
   | _ ->
     w.times.(w.widx) <- now;
     w.values.(w.widx) <- v;
     w.widx <- (w.widx + 1) mod capacity;
     if w.filled < capacity then w.filled <- w.filled + 1);
  Mutex.unlock reg_mutex

let tick_all () = List.iter tick (tracked ())

(* Baseline for a window of [seconds]: the newest sample at least that
   old, else the oldest sample we have.  Caller holds reg_mutex. *)
let baseline w ~seconds ~now =
  if w.filled = 0 then None
  else begin
    let cutoff = now -. seconds in
    let best = ref None in
    let oldest = ref None in
    for k = 0 to w.filled - 1 do
      let i = (w.widx + capacity - w.filled + k) mod capacity in
      let t = w.times.(i) and v = w.values.(i) in
      if !oldest = None then oldest := Some (t, v);
      if t <= cutoff then best := Some (t, v)
    done;
    match !best with Some _ as b -> b | None -> !oldest
  end

let delta w ~seconds =
  let now = Runtime.now () in
  let live = Metrics.count w.counter in
  Mutex.lock reg_mutex;
  let b = baseline w ~seconds ~now in
  Mutex.unlock reg_mutex;
  match b with
  | None -> (0, 0.0)
  | Some (t, v) -> (live - v, Float.max 0.0 (now -. t))

let rate w ~seconds =
  let d, covered = delta w ~seconds in
  if covered < min_gap then 0.0 else float_of_int d /. covered

let reset () =
  Mutex.lock reg_mutex;
  List.iter
    (fun w ->
      w.widx <- 0;
      w.filled <- 0)
    !windows;
  Mutex.unlock reg_mutex
