(* Trace reader + top-down report printer.

   Loads a file written by {!Export} (either format), rebuilds the span
   tree from the explicit id/parent args, and prints:

   - a top-down tree with inclusive and self time per node, siblings
     aggregated by name (a node line "simplex.solve ×37" is 37 sibling
     solves summed), with numeric attributes summed and string/bool
     attributes tallied per value — so "which cone's LP dominates" is one
     glance, not printf archaeology;
   - every counter, and percentiles (p50/p90/p99) for every histogram.

   Everything printed comes from the file alone, never from in-process
   obs state: the report of a trace is the same tomorrow as today. *)

type node = {
  name : string;
  id : int;
  parent_id : int;
  ts_us : float;
  dur_us : float;
  self_us : float;
  attrs : (string * Json.t) list;
  mutable kids : node list; (* start-time order *)
}

type t = {
  roots : node list; (* start-time order *)
  nspans : int;
  dropped : int;
  depth_dropped : int;
  metrics : Metrics.snapshot;
}

let span_count t = t.nspans

(* ---------------- decoding ---------------- *)

let reserved = [ Export.key_id; Export.key_parent; Export.key_self ]

let node_of_args ~name ~ts_us ~dur_us args =
  let id = Json.as_int (Json.member Export.key_id args) in
  let parent_id = Json.as_int (Json.member Export.key_parent args) in
  let self_us = Json.as_num (Json.member Export.key_self args) in
  let attrs =
    List.filter (fun (k, _) -> not (List.mem k reserved)) (Json.as_obj args)
  in
  { name; id; parent_id; ts_us; dur_us; self_us; attrs; kids = [] }

let hist_of_json j =
  Metrics.
    { count = Json.as_int (Json.member "count" j);
      sum = Json.as_int (Json.member "sum" j);
      min_value = Json.as_int (Json.member "min" j);
      max_value = Json.as_int (Json.member "max" j);
      buckets =
        List.map
          (fun pair ->
            match Json.as_arr pair with
            | [ i; c ] -> (Json.as_int i, Json.as_int c)
            | _ -> raise (Json.Parse_error "bad histogram bucket"))
          (Json.as_arr (Json.member "buckets" j)) }

let metrics_of_json j =
  Metrics.snapshot_of
    ~gauges:
      (match Json.find_opt "gauges" j with
       | None -> []
       | Some g -> List.map (fun (n, v) -> (n, Json.as_int v)) (Json.as_obj g))
    ~counters:
      (List.map
         (fun (n, v) -> (n, Json.as_int v))
         (Json.as_obj (Json.member "counters" j)))
    ~histograms:
      (List.map
         (fun (n, h) -> (n, hist_of_json h))
         (Json.as_obj (Json.member "histograms" j)))
    ()

let of_chrome root =
  (match Json.find_opt "traceEvents" root with
   | Some _ -> ()
   | None -> raise (Json.Parse_error "not a bagcqc trace (no traceEvents)"));
  let nodes =
    List.filter_map
      (fun ev ->
        match Json.find_opt "ph" ev with
        | Some (Json.Str "X") ->
          Some
            (node_of_args
               ~name:(Json.as_str (Json.member "name" ev))
               ~ts_us:(Json.as_num (Json.member "ts" ev))
               ~dur_us:(Json.as_num (Json.member "dur" ev))
               (Json.member "args" ev))
        | _ -> None)
      (Json.as_arr (Json.member "traceEvents" root))
  in
  let meta = Json.find_opt "bagcqc" root in
  let meta_int key =
    match meta with
    | None -> 0
    | Some m ->
      (match Json.find_opt key m with Some v -> Json.as_int v | None -> 0)
  in
  let metrics =
    match meta with
    | Some m ->
      (match Json.find_opt "metrics" m with
       | Some j -> metrics_of_json j
       | None -> Metrics.snapshot_of ~counters:[] ~histograms:[] ())
    | None -> Metrics.snapshot_of ~counters:[] ~histograms:[] ()
  in
  (nodes, meta_int "dropped", meta_int "depth_dropped", metrics)

let of_jsonl lines =
  let nodes = ref [] in
  let counters = ref [] in
  let hists = ref [] in
  let gauges = ref [] in
  let dropped = ref 0 in
  let depth_dropped = ref 0 in
  List.iter
    (fun line ->
      match Json.find_opt "type" line with
      | Some (Json.Str "span") ->
        nodes :=
          node_of_args
            ~name:(Json.as_str (Json.member "name" line))
            ~ts_us:(Json.as_num (Json.member "ts" line))
            ~dur_us:(Json.as_num (Json.member "dur" line))
            (Json.member "args" line)
          :: !nodes
      | Some (Json.Str "counter") ->
        counters :=
          (Json.as_str (Json.member "name" line),
           Json.as_int (Json.member "value" line))
          :: !counters
      | Some (Json.Str "histogram") ->
        hists :=
          (Json.as_str (Json.member "name" line),
           hist_of_json (Json.member "data" line))
          :: !hists
      | Some (Json.Str "gauge") ->
        gauges :=
          (Json.as_str (Json.member "name" line),
           Json.as_int (Json.member "value" line))
          :: !gauges
      | Some (Json.Str "meta") ->
        (match Json.find_opt "dropped" line with
         | Some v -> dropped := Json.as_int v
         | None -> ());
        (match Json.find_opt "depth_dropped" line with
         | Some v -> depth_dropped := Json.as_int v
         | None -> ())
      | _ -> ())
    lines;
  ( List.rev !nodes, !dropped, !depth_dropped,
    Metrics.snapshot_of ~gauges:(List.rev !gauges) ~counters:!counters
      ~histograms:!hists () )

let link nodes dropped depth_dropped metrics =
  let by_id = Hashtbl.create (2 * List.length nodes + 1) in
  List.iter (fun nd -> Hashtbl.replace by_id nd.id nd) nodes;
  let roots = ref [] in
  (* Spans close child-before-parent, so walk newest-first to append kids
     in forward order. *)
  List.iter
    (fun nd ->
      match Hashtbl.find_opt by_id nd.parent_id with
      | Some p when nd.parent_id <> nd.id -> p.kids <- nd :: p.kids
      | _ -> roots := nd :: !roots)
    (List.rev nodes);
  let by_ts a b = compare a.ts_us b.ts_us in
  let rec sort_kids nd =
    nd.kids <- List.sort by_ts nd.kids;
    List.iter sort_kids nd.kids
  in
  let roots = List.sort by_ts !roots in
  List.iter sort_kids roots;
  { roots; nspans = List.length nodes; dropped; depth_dropped; metrics }

let of_json root =
  let nodes, d, dd, m = of_chrome root in
  link nodes d dd m

let parse text =
  (* A Chrome trace is one JSON object with "traceEvents"; anything else
     (including a file that fails to parse as a single value) is treated
     as JSONL. *)
  match Json.parse text with
  | root when Json.find_opt "traceEvents" root <> None -> of_json root
  | root when Json.find_opt "type" root <> None ->
    let nodes, d, dd, m = of_jsonl [ root ] in
    link nodes d dd m
  | _ -> raise (Json.Parse_error "not a bagcqc trace")
  | exception Json.Parse_error _ ->
    let lines =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
      |> List.map Json.parse
    in
    let nodes, d, dd, m = of_jsonl lines in
    link nodes d dd m

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text

(* ---------------- printing ---------------- *)

let ms us = us /. 1e3

(* Aggregate a sibling list by name, preserving first-start order. *)
let group_by_name nodes =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun nd ->
      match Hashtbl.find_opt tbl nd.name with
      | Some group -> group := nd :: !group
      | None ->
        Hashtbl.add tbl nd.name (ref [ nd ]);
        order := nd.name :: !order)
    nodes;
  List.rev_map (fun name -> (name, List.rev !(Hashtbl.find tbl name))) !order

(* Summarize attributes across an aggregated group: numeric values sum;
   string/bool values tally per distinct value. *)
let attr_summary group =
  let order = ref [] in
  let sums : (string, float ref) Hashtbl.t = Hashtbl.create 8 in
  let tallies : (string, (string * int ref) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let seen key = if not (List.mem key !order) then order := !order @ [ key ] in
  let tally k s =
    seen k;
    let t =
      match Hashtbl.find_opt tallies k with
      | Some t -> t
      | None ->
        let t = ref [] in
        Hashtbl.add tallies k t;
        t
    in
    match List.assoc_opt s !t with
    | Some r -> incr r
    | None -> t := !t @ [ (s, ref 1) ]
  in
  List.iter
    (fun nd ->
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Num f ->
            seen k;
            (match Hashtbl.find_opt sums k with
             | Some r -> r := !r +. f
             | None -> Hashtbl.add sums k (ref f))
          | Json.Str s -> tally k s
          | Json.Bool b -> tally k (string_of_bool b)
          | _ -> ())
        nd.attrs)
    group;
  List.filter_map
    (fun k ->
      match Hashtbl.find_opt sums k with
      | Some r ->
        let f = !r in
        Some
          (if Float.is_integer f then Printf.sprintf "%s=%.0f" k f
           else Printf.sprintf "%s=%.3g" k f)
      | None ->
        (match Hashtbl.find_opt tallies k with
         | Some t ->
           Some
             (Printf.sprintf "%s{%s}" k
                (String.concat ","
                   (List.map (fun (s, r) -> Printf.sprintf "%s:%d" s !r) !t)))
         | None -> None))
    !order

let pp_tree fmt roots =
  let rec go indent nodes =
    List.iter
      (fun (name, group) ->
        let incl = List.fold_left (fun a nd -> a +. nd.dur_us) 0.0 group in
        let self = List.fold_left (fun a nd -> a +. nd.self_us) 0.0 group in
        let label =
          Printf.sprintf "%s%s %s" indent name
            (if List.length group > 1 then
               Printf.sprintf "×%d" (List.length group)
             else "")
        in
        let attrs = attr_summary group in
        Format.fprintf fmt "  %-44s %10.3f %10.3f%s@." label (ms incl)
          (ms self)
          (match attrs with
           | [] -> ""
           | l -> "   [" ^ String.concat " " l ^ "]");
        go (indent ^ "  ") (group_by_name (List.concat_map (fun nd -> nd.kids) group)))
      nodes
  in
  go "" (group_by_name roots)

let pp fmt t =
  Format.fprintf fmt "trace: %d span%s (%d evicted, %d depth-limited)@."
    t.nspans
    (if t.nspans = 1 then "" else "s")
    t.dropped t.depth_dropped;
  if t.roots <> [] then begin
    Format.fprintf fmt "@.span tree (siblings aggregated by name):@.";
    Format.fprintf fmt "  %-44s %10s %10s@." "" "incl ms" "self ms";
    pp_tree fmt t.roots
  end;
  let { Metrics.counters; histograms; gauges } = t.metrics in
  let nonzero = List.filter (fun (_, v) -> v <> 0) counters in
  if nonzero <> [] then begin
    Format.fprintf fmt "@.counters:@.";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "  %-36s %12d@." n v)
      nonzero
  end;
  let live_gauges = List.filter (fun (_, v) -> v <> 0) gauges in
  if live_gauges <> [] then begin
    Format.fprintf fmt "@.gauges:@.";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "  %-36s %12d@." n v)
      live_gauges
  end;
  let live = List.filter (fun (_, h) -> h.Metrics.count > 0) histograms in
  if live <> [] then begin
    Format.fprintf fmt "@.histograms:@.";
    Format.fprintf fmt "  %-36s %9s %9s %7s %7s %7s %7s@." "" "count" "mean"
      "p50" "p90" "p99" "max";
    List.iter
      (fun (n, h) ->
        Format.fprintf fmt "  %-36s %9d %9.1f %7d %7d %7d %7d@." n
          h.Metrics.count (Metrics.mean h)
          (Metrics.percentile h 0.50)
          (Metrics.percentile h 0.90)
          (Metrics.percentile h 0.99)
          h.Metrics.max_value)
      live
  end
