(** Named counters and base-2 log-bucketed histograms.

    Handles are obtained once (typically at module initialization) and
    bumped with plain field updates: a counter event is one integer
    store into the calling domain's cell ([Domain.DLS]); {!count} and
    {!snapshot} sum/merge across domains.  Merged values are exact
    whenever the reader is ordered after the writers — which the
    {!Bagcqc_par.Pool} guarantees at the end of every parallel region.
    {!reset} zeroes values but keeps every handle valid; like snapshots,
    it assumes pool quiescence.

    Histogram buckets: bucket 0 holds exactly 0; bucket [i >= 1] holds
    the integers in [\[2^(i-1), 2^i - 1\]], so an exact power of two
    [2^k] lands in bucket [k+1] as that bucket's lower bound.  Negative
    observations are clamped to 0. *)

type counter

val counter : string -> counter
(** Find-or-create the counter with this name (one instance per name). *)

val bump : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

type histogram

val histogram : string -> histogram
(** Find-or-create the histogram with this name. *)

val observe : histogram -> int -> unit

type gauge

val gauge : string -> gauge
(** Find-or-create the gauge with this name.  A gauge is a point-in-time
    level (queue depth, store size), not an accumulator: across domains
    the most recent {!set_gauge} wins (one global write sequence decides
    "most recent"), so concurrent writers from different domains merge
    last-writer-wins rather than summing. *)

val set_gauge : gauge -> int -> unit

val gauge_value : gauge -> int
(** Current value under last-writer-wins; 0 if never set (or since
    {!reset}). *)

val nbuckets : int
val bucket_of : int -> int
(** Bucket index of a value (see the bucketing rule above). *)

val bucket_lo : int -> int
(** Smallest value in a bucket ([bucket_lo (bucket_of (1 lsl k)) = 1 lsl k]). *)

val bucket_hi : int -> int
(** Largest value in a bucket. *)

val reset : unit -> unit
(** Zero every counter and histogram; handles stay valid.  Idempotent. *)

(** {2 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : int;
  min_value : int;  (** [max_int] when [count = 0] *)
  max_value : int;  (** [min_int] when [count = 0] *)
  buckets : (int * int) list;
      (** (bucket index, count), ascending indices, counts > 0 *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
}

val empty_hist : hist_snapshot

val snapshot : unit -> snapshot
(** Canonical snapshot of every registered counter, histogram and
    gauge. *)

val snapshot_of :
  ?gauges:(string * int) list ->
  counters:(string * int) list ->
  histograms:(string * hist_snapshot) list ->
  unit ->
  snapshot
(** Canonicalize an externally assembled snapshot (sorts names, merges
    duplicate counters/histograms, drops empty buckets) — the
    constructor used by trace import and by tests.  On a duplicate gauge
    name the entry later in the list wins ([gauges] defaults to []). *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise union: counters add, histogram buckets add, min/max fold —
    associative and commutative on canonical snapshots.  Gauges are
    last-writer-wins, so [merge] is right-biased on them ([b] wins on a
    common name). *)

val percentile : hist_snapshot -> float -> int
(** [percentile h p] for [p ∈ \[0,1\]]: lower bound of the bucket holding
    the [ceil(p·count)]-th smallest observation, clamped to
    [\[min_value, max_value\]]; 0 when empty. *)

val mean : hist_snapshot -> float
