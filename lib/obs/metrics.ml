(* Named counters and log-bucketed histograms.

   Call sites obtain a handle once (module-initialization time) and then
   bump it with plain field updates, so the steady-state cost of a
   counter event is one integer store — the same budget the old
   Engine.Stats counters had.  [reset] zeroes values but keeps handles
   valid, so resetting between CLI subcommands never invalidates an
   instrumentation point.

   Histograms are base-2 log-bucketed over non-negative integers:
   bucket 0 holds exactly the value 0, bucket i (i >= 1) holds
   [2^(i-1), 2^i - 1].  An exact power of two 2^k therefore lands in
   bucket k+1, whose lower bound it is.  This suits the quantities we
   track (pivot counts, bigint bit widths, candidate-set sizes): cheap
   to bucket, faithful at small values, and percentiles stay meaningful
   over many orders of magnitude. *)

type counter = { cname : string; mutable count : int }

let nbuckets = 63 (* bucket 62 holds everything >= 2^61 *)

type histogram = {
  hname : string;
  buckets : int array; (* length nbuckets *)
  mutable total : int;
  mutable vsum : int;
  mutable vmin : int; (* max_int when empty *)
  mutable vmax : int; (* min_int when empty *)
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { cname = name; count = 0 } in
    Hashtbl.add counters name c;
    c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      { hname = name; buckets = Array.make nbuckets 0; total = 0; vsum = 0;
        vmin = max_int; vmax = min_int }
    in
    Hashtbl.add histograms name h;
    h

let bump c = c.count <- c.count + 1
let add c k = c.count <- c.count + k
let count c = c.count

let bucket_of v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 and x = ref v in
    while !x <> 0 do
      incr bits;
      x := !x lsr 1
    done;
    min !bits (nbuckets - 1)
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i <= 0 then 0 else (1 lsl i) - 1

let observe h v =
  let v = max v 0 in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.total <- h.total + 1;
  h.vsum <- h.vsum + v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 nbuckets 0;
      h.total <- 0;
      h.vsum <- 0;
      h.vmin <- max_int;
      h.vmax <- min_int)
    histograms

(* ---------------- snapshots ---------------- *)

type hist_snapshot = {
  count : int;
  sum : int;
  min_value : int; (* max_int when count = 0 *)
  max_value : int; (* min_int when count = 0 *)
  buckets : (int * int) list; (* (bucket index, count), ascending, counts > 0 *)
}

type snapshot = {
  counters : (string * int) list; (* name-sorted *)
  histograms : (string * hist_snapshot) list; (* name-sorted *)
}

let empty_hist =
  { count = 0; sum = 0; min_value = max_int; max_value = min_int; buckets = [] }

let hist_snapshot_of (h : histogram) =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  { count = h.total; sum = h.vsum; min_value = h.vmin; max_value = h.vmax;
    buckets = !buckets }

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  { counters =
      Hashtbl.fold
        (fun name (c : counter) acc -> (name, c.count) :: acc)
        counters []
      |> List.sort by_name;
    histograms =
      Hashtbl.fold
        (fun name h acc -> (name, hist_snapshot_of h) :: acc)
        histograms []
      |> List.sort by_name }

(* Canonicalizing constructor for externally assembled snapshots (trace
   import, tests): sorts, merges duplicate names, drops empty buckets. *)
let snapshot_of ~counters:cs ~histograms:hs =
  let merge_counters cs =
    List.sort by_name cs
    |> List.fold_left
         (fun acc (name, v) ->
           match acc with
           | (n0, v0) :: rest when n0 = name -> (n0, v0 + v) :: rest
           | _ -> (name, v) :: acc)
         []
    |> List.rev
  in
  let canon_hist h =
    let arr = Array.make nbuckets 0 in
    List.iter
      (fun (i, c) ->
        if i >= 0 && i < nbuckets && c > 0 then arr.(i) <- arr.(i) + c)
      h.buckets;
    let buckets = ref [] in
    for i = nbuckets - 1 downto 0 do
      if arr.(i) > 0 then buckets := (i, arr.(i)) :: !buckets
    done;
    { h with buckets = !buckets }
  in
  let merge_hist a b =
    canon_hist
      { count = a.count + b.count; sum = a.sum + b.sum;
        min_value = min a.min_value b.min_value;
        max_value = max a.max_value b.max_value;
        buckets = a.buckets @ b.buckets }
  in
  let merge_hists hs =
    List.sort by_name hs
    |> List.fold_left
         (fun acc (name, h) ->
           match acc with
           | (n0, h0) :: rest when n0 = name -> (n0, merge_hist h0 h) :: rest
           | _ -> (name, canon_hist h) :: acc)
         []
    |> List.rev
  in
  { counters = merge_counters cs; histograms = merge_hists hs }

let merge a b =
  snapshot_of
    ~counters:(a.counters @ b.counters)
    ~histograms:(a.histograms @ b.histograms)

(* ---------------- percentiles ---------------- *)

(* Value at quantile p ∈ [0,1]: the lower bound of the log bucket holding
   the ceil(p·count)-th smallest observation (clamped into [min,max] so a
   histogram of identical values reports that value at every quantile). *)
let percentile h p =
  if h.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let rec go seen = function
      | [] -> h.max_value
      | (i, c) :: rest ->
        if seen + c >= rank then
          let lo = bucket_lo i in
          if lo < h.min_value then h.min_value
          else if lo > h.max_value then h.max_value
          else lo
        else go (seen + c) rest
    in
    go 0 h.buckets
  end

let mean h =
  if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count
