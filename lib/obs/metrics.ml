(* Named counters and log-bucketed histograms, collected per domain.

   Handles are global and immutable (a dense id plus the name); the
   mutable state lives in one store per domain, reached through
   [Domain.DLS].  A counter event is therefore a DLS load plus an integer
   store — unchanged in spirit from the old single-cell design, and the
   extra load is what buys race-free collection under the domain pool:
   every domain bumps only its own cells, and [snapshot] merges all
   per-domain stores through the same canonical snapshot merge that
   [merge] exposes.

   Exactness contract: merged values are exact whenever the reader is
   ordered after the writers — which the pool guarantees (a parallel
   region's completion is a happens-before edge), so snapshots taken
   between regions equal what a sequential run would have counted.
   Reading {e during} a region can observe slightly stale cells (never
   torn ones).

   Histograms are base-2 log-bucketed over non-negative integers:
   bucket 0 holds exactly the value 0, bucket i (i >= 1) holds
   [2^(i-1), 2^i - 1].  An exact power of two 2^k therefore lands in
   bucket k+1, whose lower bound it is.  This suits the quantities we
   track (pivot counts, bigint bit widths, candidate-set sizes): cheap
   to bucket, faithful at small values, and percentiles stay meaningful
   over many orders of magnitude. *)

type counter = { cid : int; cname : string }
type histogram = { hid : int; hname : string }
type gauge = { gid : int; gname : string }

let nbuckets = 63 (* bucket 62 holds everything >= 2^61 *)

(* ---------------- registry (names -> dense ids) ---------------- *)

(* Handle creation is module-initialization-rare; one mutex covers the
   name tables and the store list. *)
let reg_mutex = Mutex.create ()
let counters_by_name : (string, counter) Hashtbl.t = Hashtbl.create 16
let histograms_by_name : (string, histogram) Hashtbl.t = Hashtbl.create 16
let gauges_by_name : (string, gauge) Hashtbl.t = Hashtbl.create 16
let n_counters = ref 0
let n_histograms = ref 0
let n_gauges = ref 0

let counter name =
  Mutex.lock reg_mutex;
  let c =
    match Hashtbl.find_opt counters_by_name name with
    | Some c -> c
    | None ->
      let c = { cid = !n_counters; cname = name } in
      incr n_counters;
      Hashtbl.add counters_by_name name c;
      c
  in
  Mutex.unlock reg_mutex;
  c

let histogram name =
  Mutex.lock reg_mutex;
  let h =
    match Hashtbl.find_opt histograms_by_name name with
    | Some h -> h
    | None ->
      let h = { hid = !n_histograms; hname = name } in
      incr n_histograms;
      Hashtbl.add histograms_by_name name h;
      h
  in
  Mutex.unlock reg_mutex;
  h

let gauge name =
  Mutex.lock reg_mutex;
  let g =
    match Hashtbl.find_opt gauges_by_name name with
    | Some g -> g
    | None ->
      let g = { gid = !n_gauges; gname = name } in
      incr n_gauges;
      Hashtbl.add gauges_by_name name g;
      g
  in
  Mutex.unlock reg_mutex;
  g

(* ---------------- per-domain stores ---------------- *)

type hstate = {
  buckets : int array; (* length nbuckets *)
  mutable total : int;
  mutable vsum : int;
  mutable vmin : int; (* max_int when empty *)
  mutable vmax : int; (* min_int when empty *)
}

type store = {
  mutable cvals : int array; (* indexed by cid, grown on demand *)
  mutable hstates : hstate option array; (* indexed by hid *)
  mutable gseqs : int array; (* indexed by gid; 0 = never set here *)
  mutable gvals : int array; (* indexed by gid *)
}

(* A gauge is last-writer-wins across domains: every [set_gauge] draws a
   ticket from one global sequence, and the reader picks the value with
   the highest ticket.  Within a domain the (seq, value) pair is two
   plain stores into domain-owned cells, so the staleness contract is
   the same as for counters: reads ordered after the writers are exact. *)
let gauge_seq = Atomic.make 1

(* Every store ever created (worker domains are long-lived, so stores are
   never retired); [snapshot]/[reset] walk this list. *)
let stores : store list ref = ref []

let store_key =
  Domain.DLS.new_key (fun () ->
      let s = { cvals = [||]; hstates = [||]; gseqs = [||]; gvals = [||] } in
      Mutex.lock reg_mutex;
      stores := s :: !stores;
      Mutex.unlock reg_mutex;
      s)

let ensure_counter s id =
  if id >= Array.length s.cvals then begin
    let n = max 16 (max (id + 1) (2 * Array.length s.cvals)) in
    let a = Array.make n 0 in
    Array.blit s.cvals 0 a 0 (Array.length s.cvals);
    s.cvals <- a
  end

let ensure_gauge s id =
  if id >= Array.length s.gseqs then begin
    let n = max 16 (max (id + 1) (2 * Array.length s.gseqs)) in
    let sq = Array.make n 0 and vl = Array.make n 0 in
    Array.blit s.gseqs 0 sq 0 (Array.length s.gseqs);
    Array.blit s.gvals 0 vl 0 (Array.length s.gvals);
    s.gseqs <- sq;
    s.gvals <- vl
  end

let fresh_hstate () =
  { buckets = Array.make nbuckets 0; total = 0; vsum = 0; vmin = max_int;
    vmax = min_int }

let hstate_of s id =
  if id >= Array.length s.hstates then begin
    let n = max 16 (max (id + 1) (2 * Array.length s.hstates)) in
    let a = Array.make n None in
    Array.blit s.hstates 0 a 0 (Array.length s.hstates);
    s.hstates <- a
  end;
  match s.hstates.(id) with
  | Some st -> st
  | None ->
    let st = fresh_hstate () in
    s.hstates.(id) <- Some st;
    st

let bump c =
  let s = Domain.DLS.get store_key in
  ensure_counter s c.cid;
  s.cvals.(c.cid) <- s.cvals.(c.cid) + 1

let add c k =
  let s = Domain.DLS.get store_key in
  ensure_counter s c.cid;
  s.cvals.(c.cid) <- s.cvals.(c.cid) + k

let all_stores () =
  Mutex.lock reg_mutex;
  let ss = !stores in
  Mutex.unlock reg_mutex;
  ss

let count c =
  List.fold_left
    (fun acc s -> if c.cid < Array.length s.cvals then acc + s.cvals.(c.cid) else acc)
    0 (all_stores ())

let set_gauge g v =
  let s = Domain.DLS.get store_key in
  ensure_gauge s g.gid;
  let seq = Atomic.fetch_and_add gauge_seq 1 in
  s.gvals.(g.gid) <- v;
  s.gseqs.(g.gid) <- seq

let gauge_value g =
  List.fold_left
    (fun (best_seq, best_v) s ->
      if g.gid < Array.length s.gseqs && s.gseqs.(g.gid) > best_seq then
        (s.gseqs.(g.gid), s.gvals.(g.gid))
      else (best_seq, best_v))
    (0, 0) (all_stores ())
  |> snd

let bucket_of v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 and x = ref v in
    while !x <> 0 do
      incr bits;
      x := !x lsr 1
    done;
    min !bits (nbuckets - 1)
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i <= 0 then 0 else (1 lsl i) - 1

let observe h v =
  let s = Domain.DLS.get store_key in
  let st = hstate_of s h.hid in
  let v = max v 0 in
  st.buckets.(bucket_of v) <- st.buckets.(bucket_of v) + 1;
  st.total <- st.total + 1;
  st.vsum <- st.vsum + v;
  if v < st.vmin then st.vmin <- v;
  if v > st.vmax then st.vmax <- v

(* Quiescence contract as for [snapshot]: resetting while a parallel
   region runs would race the workers' bumps. *)
let reset () =
  List.iter
    (fun s ->
      Array.fill s.cvals 0 (Array.length s.cvals) 0;
      Array.fill s.gseqs 0 (Array.length s.gseqs) 0;
      Array.fill s.gvals 0 (Array.length s.gvals) 0;
      Array.iter
        (function
          | Some st ->
            Array.fill st.buckets 0 nbuckets 0;
            st.total <- 0;
            st.vsum <- 0;
            st.vmin <- max_int;
            st.vmax <- min_int
          | None -> ())
        s.hstates)
    (all_stores ())

(* ---------------- snapshots ---------------- *)

type hist_snapshot = {
  count : int;
  sum : int;
  min_value : int; (* max_int when count = 0 *)
  max_value : int; (* min_int when count = 0 *)
  buckets : (int * int) list; (* (bucket index, count), ascending, counts > 0 *)
}

type snapshot = {
  counters : (string * int) list; (* name-sorted *)
  histograms : (string * hist_snapshot) list; (* name-sorted *)
  gauges : (string * int) list; (* name-sorted *)
}

let empty_hist =
  { count = 0; sum = 0; min_value = max_int; max_value = min_int; buckets = [] }

let hist_snapshot_of (st : hstate) =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if st.buckets.(i) > 0 then buckets := (i, st.buckets.(i)) :: !buckets
  done;
  { count = st.total; sum = st.vsum; min_value = st.vmin; max_value = st.vmax;
    buckets = !buckets }

let by_name (a, _) (b, _) = compare (a : string) b

(* Canonicalizing constructor for externally assembled snapshots (trace
   import, tests) and the per-domain merge below: sorts, merges duplicate
   names, drops empty buckets.  Gauges are not additive: on a duplicate
   name the entry later in the input list wins (the list-order analogue
   of last-writer-wins). *)
let snapshot_of ?(gauges = []) ~counters:cs ~histograms:hs () =
  let merge_counters cs =
    List.sort by_name cs
    |> List.fold_left
         (fun acc (name, v) ->
           match acc with
           | (n0, v0) :: rest when n0 = name -> (n0, v0 + v) :: rest
           | _ -> (name, v) :: acc)
         []
    |> List.rev
  in
  let canon_hist h =
    let arr = Array.make nbuckets 0 in
    List.iter
      (fun (i, c) ->
        if i >= 0 && i < nbuckets && c > 0 then arr.(i) <- arr.(i) + c)
      h.buckets;
    let buckets = ref [] in
    for i = nbuckets - 1 downto 0 do
      if arr.(i) > 0 then buckets := (i, arr.(i)) :: !buckets
    done;
    { h with buckets = !buckets }
  in
  let merge_hist a b =
    canon_hist
      { count = a.count + b.count; sum = a.sum + b.sum;
        min_value = min a.min_value b.min_value;
        max_value = max a.max_value b.max_value;
        buckets = a.buckets @ b.buckets }
  in
  let merge_hists hs =
    List.sort by_name hs
    |> List.fold_left
         (fun acc (name, h) ->
           match acc with
           | (n0, h0) :: rest when n0 = name -> (n0, merge_hist h0 h) :: rest
           | _ -> (name, canon_hist h) :: acc)
         []
    |> List.rev
  in
  let canon_gauges gs =
    let tbl = Hashtbl.create 8 in
    List.iter (fun (name, v) -> Hashtbl.replace tbl name v) gs;
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
    |> List.sort by_name
  in
  { counters = merge_counters cs; histograms = merge_hists hs;
    gauges = canon_gauges gauges }

(* The per-domain collection points straight at the canonical merge: each
   store contributes its (name, value) rows, and [snapshot_of] folds the
   duplicates — associative and commutative, so domain order is
   irrelevant. *)
let snapshot () =
  let ss = all_stores () in
  let names_c =
    Mutex.lock reg_mutex;
    let l = Hashtbl.fold (fun name c acc -> (name, c.cid) :: acc) counters_by_name [] in
    Mutex.unlock reg_mutex;
    l
  in
  let names_h =
    Mutex.lock reg_mutex;
    let l =
      Hashtbl.fold (fun name h acc -> (name, h.hid) :: acc) histograms_by_name []
    in
    Mutex.unlock reg_mutex;
    l
  in
  let counters =
    List.concat_map
      (fun (name, id) ->
        List.filter_map
          (fun s ->
            if id < Array.length s.cvals then Some (name, s.cvals.(id)) else None)
          ss
        |> function
        | [] -> [ (name, 0) ]
        | rows -> rows)
      names_c
  in
  let histograms =
    List.concat_map
      (fun (name, id) ->
        List.filter_map
          (fun s ->
            if id < Array.length s.hstates then
              Option.map (fun st -> (name, hist_snapshot_of st)) s.hstates.(id)
            else None)
          ss
        |> function
        | [] -> [ (name, empty_hist) ]
        | rows -> rows)
      names_h
  in
  let names_g =
    Mutex.lock reg_mutex;
    let l = Hashtbl.fold (fun name g acc -> (name, g) :: acc) gauges_by_name [] in
    Mutex.unlock reg_mutex;
    l
  in
  let gauges = List.map (fun (name, g) -> (name, gauge_value g)) names_g in
  snapshot_of ~gauges ~counters ~histograms ()

(* Counters and histograms union pointwise (associative, commutative);
   gauges are LWW, so [merge] is right-biased on them: [b]'s value wins
   on a common name. *)
let merge a b =
  snapshot_of
    ~gauges:(a.gauges @ b.gauges)
    ~counters:(a.counters @ b.counters)
    ~histograms:(a.histograms @ b.histograms)
    ()

(* ---------------- percentiles ---------------- *)

(* Value at quantile p ∈ [0,1]: the lower bound of the log bucket holding
   the ceil(p·count)-th smallest observation (clamped into [min,max] so a
   histogram of identical values reports that value at every quantile). *)
let percentile h p =
  if h.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let rec go seen = function
      | [] -> h.max_value
      | (i, c) :: rest ->
        if seen + c >= rank then
          let lo = bucket_lo i in
          if lo < h.min_value then h.min_value
          else if lo > h.max_value then h.max_value
          else lo
        else go (seen + c) rest
    in
    go 0 h.buckets
  end

let mean h =
  if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count
