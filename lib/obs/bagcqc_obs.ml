(* Umbrella: one module to open for the whole obs layer, plus the
   enable/disable/reset lifecycle.  All three lifecycle calls are
   idempotent, so CLI subcommands can unconditionally install the layer
   at startup without tracking prior state. *)

module Runtime = Runtime
module Span = Span
module Metrics = Metrics
module Window = Window
module Prom = Prom
module Json = Json
module Export = Export
module Report = Report

let enabled () = !Runtime.enabled

(* Lifecycle transitions walk (and clear) every domain's span/metric
   store, which is only safe while no parallel region is running. *)
let guard_quiescent what =
  if Bagcqc_par.Pool.in_parallel_region () then
    invalid_arg
      (Printf.sprintf
         "Obs.%s: cannot change the obs lifecycle inside a parallel region \
          (configure observability before starting parallel work; see \
          Bagcqc_par.Pool initialization order)"
         what)

let enable ?ring_capacity ?max_depth ?sample_every () =
  guard_quiescent "enable";
  Option.iter (fun c -> Runtime.ring_capacity := max 0 c) ring_capacity;
  Option.iter (fun d -> Runtime.max_depth := max 0 d) max_depth;
  Option.iter (fun k -> Runtime.sample_every := max 1 k) sample_every;
  if not !Runtime.enabled then begin
    Runtime.enabled := true;
    Span.reset ()
  end

let disable () =
  guard_quiescent "disable";
  Runtime.enabled := false

let reset () =
  guard_quiescent "reset";
  Span.reset ();
  Metrics.reset ();
  Window.reset ()
