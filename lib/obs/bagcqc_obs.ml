(* Umbrella: one module to open for the whole obs layer, plus the
   enable/disable/reset lifecycle.  All three lifecycle calls are
   idempotent, so CLI subcommands can unconditionally install the layer
   at startup without tracking prior state. *)

module Runtime = Runtime
module Span = Span
module Metrics = Metrics
module Json = Json
module Export = Export
module Report = Report

let enabled () = !Runtime.enabled

let enable ?ring_capacity ?max_depth ?sample_every () =
  Option.iter (fun c -> Runtime.ring_capacity := max 0 c) ring_capacity;
  Option.iter (fun d -> Runtime.max_depth := max 0 d) max_depth;
  Option.iter (fun k -> Runtime.sample_every := max 1 k) sample_every;
  if not !Runtime.enabled then begin
    Runtime.enabled := true;
    Span.reset ()
  end

let disable () = Runtime.enabled := false

let reset () =
  Span.reset ();
  Metrics.reset ()
