(** Serialize the current span ring and metrics registry to a trace file.

    The Chrome format is an object with a ["traceEvents"] array of
    complete events (loadable by chrome://tracing and Perfetto) plus a
    ["bagcqc"] object carrying the schema tag, drop counts, and a full
    metrics snapshot; {!Report} reads that same file back.  The JSONL
    format emits one event object per line. *)

val schema : string
(** Schema tag written into every trace file (["bagcqc-trace/1"]). *)

val key_id : string
val key_parent : string
val key_self : string
(** Reserved ["args"] keys carrying span structure (id, parent id,
    self-time in µs); all other arg fields are span attributes. *)

val chrome : unit -> Json.t
(** The Chrome trace object for the current obs state. *)

val span_event : Span.t -> Json.t
(** The JSONL ["span"] record for one completed span — also the shape
    embedded in access-log slow-request captures. *)

val metrics_json : Metrics.snapshot -> Json.t
(** The metrics object embedded in traces: ["counters"], ["histograms"]
    (empty ones omitted) and ["gauges"]. *)

val jsonl_lines : unit -> Json.t list
(** The JSONL event stream for the current obs state, one value per line. *)

val write_chrome : string -> unit
val write_jsonl : string -> unit

val write : string -> unit
(** Dispatch on extension: [".jsonl"] writes JSONL, anything else Chrome. *)
