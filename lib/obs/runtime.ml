(* Process-global observability switches and the trace clock.

   Everything in the obs layer funnels through [enabled]: when it is
   false, every instrumentation entry point must reduce to a single
   branch (no timestamps, no allocation), so always-on call sites in hot
   code cost nothing on untraced runs.

   The clock is wall time forced monotonic: [now] never goes backwards
   even if the system clock is stepped, so span durations and Chrome
   trace timestamps are always well ordered. *)

let enabled = ref false

(* Tuning knobs, applied by [Span.reset] / the samplers on next use. *)
let ring_capacity = ref 65536
let max_depth = ref 64
let sample_every = ref 16

(* High-water mark of the clock, shared by all domains.  The CAS loop
   keeps [now] monotonic under concurrent callers: a reader either
   advances the mark to its own (later) sample or inherits a mark some
   other domain already pushed past it. *)
let last = Atomic.make 0.0

let rec now () =
  let t = Unix.gettimeofday () in
  let l = Atomic.get last in
  if t > l then if Atomic.compare_and_set last l t then t else now ()
  else l

(* Trace epoch: exported timestamps are relative to this, set whenever
   the span store is reset. *)
let epoch = ref 0.0
