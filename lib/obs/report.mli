(** Trace reader and top-down report printer for files written by
    {!Export} (Chrome or JSONL format).

    Everything printed is computed from the file alone — never from the
    in-process obs state — so the exporter→reader pair round-trips. *)

type node = {
  name : string;
  id : int;
  parent_id : int;
  ts_us : float;
  dur_us : float;
  self_us : float;
  attrs : (string * Json.t) list;
  mutable kids : node list;  (** start-time order *)
}

type t = {
  roots : node list;  (** start-time order; evicted parents orphan to roots *)
  nspans : int;
  dropped : int;
  depth_dropped : int;
  metrics : Metrics.snapshot;
}

val load : string -> t
(** Read and decode a trace file.
    @raise Json.Parse_error on malformed input.
    @raise Sys_error when the file cannot be read. *)

val parse : string -> t
(** Decode trace text (auto-detects Chrome vs JSONL). *)

val of_json : Json.t -> t
(** Decode an already parsed Chrome trace object. *)

val span_count : t -> int

val pp : Format.formatter -> t -> unit
(** The [report] subcommand's output: span tree with inclusive/self
    milliseconds (siblings aggregated by name, numeric attributes
    summed, string attributes tallied), then counters, then histogram
    percentiles. *)
