.PHONY: all build test check fuzz bench bench-json compare trace-demo \
	serve-smoke corpus sweep corpus-smoke clean

all: build

build:
	dune build

test: build
	dune runtest

# Tier-1 gate plus a smoke run of the JSON bench harness: builds, runs the
# full test suite, and verifies `--json` still emits a file the comparator
# can parse (smoke sizes, so this stays fast).
check: build
	dune runtest
	dune exec bench/main.exe -- --json /tmp/bagcqc-bench-smoke.json --smoke
	dune exec bench/compare.exe -- /tmp/bagcqc-bench-smoke.json /tmp/bagcqc-bench-smoke.json

# Differential fuzzing (DESIGN.md §4e): every suite, deterministic in
# SEED, at a heavier budget than the in-suite smoke tests.  On a finding
# the shrunk case and its replay line land in fuzz-repro-<suite>.txt.
FUZZ_ITERS ?= 10000
SEED ?= 42

fuzz: build
	dune exec bin/fuzz.exe -- --iters $(FUZZ_ITERS) --seed $(SEED)

# Full experiment harness (tables + bechamel timings).  With JSON=1 it
# instead runs the JSON timing suites (including the jobs-scaling `par`
# suite, which rides in the lp file) and gates them against the
# checked-in baselines (what CI runs).  BENCH_OUT picks where the fresh
# JSON lands, so CI can keep it as an artifact.
BENCH_OUT ?= /tmp

bench: build
ifeq ($(JSON),1)
	mkdir -p $(BENCH_OUT)
	dune exec bench/main.exe -- --json $(BENCH_OUT)/bagcqc-bench-new-lp.json --only lp
	dune exec bench/compare.exe -- BENCH_lp.json $(BENCH_OUT)/bagcqc-bench-new-lp.json
	dune exec bench/main.exe -- --json $(BENCH_OUT)/bagcqc-bench-new-hom.json --only hom
	dune exec bench/compare.exe -- BENCH_hom.json $(BENCH_OUT)/bagcqc-bench-new-hom.json
else
	dune exec bench/main.exe
endif

# Regenerate the checked-in bench baselines.
bench-json: build
	dune exec bench/main.exe -- --json BENCH_lp.json --only lp
	dune exec bench/main.exe -- --json BENCH_hom.json --only hom

# End-to-end daemon smoke (what CI's serve-smoke job runs): a real
# `bagcqc serve` process with a persistent store, driven over its Unix
# socket by `bagcqc client` — cold and cached checks, typed protocol
# errors, SIGTERM drain, a warm restart answered from the store with
# zero simplex pivots, and a corrupted store entry rejected by
# verify-on-load.  See scripts/serve_smoke.sh.
serve-smoke: build
	scripts/serve_smoke.sh

# Regenerate the checked-in evaluation corpora (DESIGN.md §4j).  The
# generator is deterministic in CORPUS_SEED, so this is reproducible:
# same seed, byte-identical files.
CORPUS_SEED ?= 42

corpus: build
	dune exec bench/sweep.exe -- gen --kind check --seed $(CORPUS_SEED) \
	  --total 10000 -o corpus/check-10k.jsonl
	dune exec bench/sweep.exe -- gen --kind iip --seed $(CORPUS_SEED) \
	  --total 2000 -o corpus/iip-2k.jsonl

# Full fleet sweep over the checked-in corpora: throughput + tail
# latency at jobs 1 and 4, then the 8-configuration engine-matrix
# differential audit (cone lazy/full x LP float_first/exact x jobs 1/4)
# with every certificate re-checked exactly.  Tables via
# scripts/sweep_tables.py; see EXPERIMENTS.md for a recorded run.
SWEEP_OUT ?= /tmp/bagcqc-sweep.jsonl

sweep: build
	dune exec bench/sweep.exe -- run corpus/check-10k.jsonl --jobs 1 \
	  --label check-10k-j1 -o $(SWEEP_OUT)
	dune exec bench/sweep.exe -- run corpus/check-10k.jsonl --jobs 4 \
	  --label check-10k-j4 -o $(SWEEP_OUT) --append
	dune exec bench/sweep.exe -- run corpus/iip-2k.jsonl --jobs 1 \
	  --label iip-2k-j1 -o $(SWEEP_OUT) --append
	dune exec bench/sweep.exe -- run corpus/iip-2k.jsonl --jobs 4 \
	  --label iip-2k-j4 -o $(SWEEP_OUT) --append
	dune exec bench/sweep.exe -- audit corpus/check-10k.jsonl \
	  -o $(SWEEP_OUT) --append
	dune exec bench/sweep.exe -- audit corpus/iip-2k.jsonl \
	  -o $(SWEEP_OUT) --append
	python3 scripts/sweep_tables.py $(SWEEP_OUT)

# CI-sized version: a small freshly generated corpus, sweeps at jobs 1
# and 4, the engine-matrix audit, and the analysis script (which exits
# nonzero on any verdict mismatch or certificate failure).
SMOKE_OUT ?= /tmp/bagcqc-sweep-smoke

corpus-smoke: build
	mkdir -p $(SMOKE_OUT)
	dune exec bench/sweep.exe -- gen --kind check --seed $(CORPUS_SEED) \
	  --total 400 -o $(SMOKE_OUT)/check-smoke.jsonl
	dune exec bench/sweep.exe -- gen --kind iip --seed $(CORPUS_SEED) \
	  --total 120 -o $(SMOKE_OUT)/iip-smoke.jsonl
	dune exec bench/sweep.exe -- run $(SMOKE_OUT)/check-smoke.jsonl \
	  --jobs 1 --label smoke-check-j1 -o $(SMOKE_OUT)/sweep.jsonl
	dune exec bench/sweep.exe -- run $(SMOKE_OUT)/check-smoke.jsonl \
	  --jobs 4 --label smoke-check-j4 -o $(SMOKE_OUT)/sweep.jsonl --append
	dune exec bench/sweep.exe -- run $(SMOKE_OUT)/iip-smoke.jsonl \
	  --jobs 1 --label smoke-iip-j1 -o $(SMOKE_OUT)/sweep.jsonl --append
	dune exec bench/sweep.exe -- run $(SMOKE_OUT)/iip-smoke.jsonl \
	  --jobs 4 --label smoke-iip-j4 -o $(SMOKE_OUT)/sweep.jsonl --append
	dune exec bench/sweep.exe -- audit $(SMOKE_OUT)/check-smoke.jsonl \
	  -o $(SMOKE_OUT)/sweep.jsonl --append
	python3 scripts/sweep_tables.py $(SMOKE_OUT)/sweep.jsonl

# Observability demo: run a traced containment check and print the span
# tree, cache traffic, and histogram percentiles back out of the file.
trace-demo: build
	dune exec bin/main.exe -- check 'R(x,y), R(y,z), R(z,x)' 'R(u,v), R(u,w)' \
	  --trace /tmp/bagcqc-trace-demo.json
	dune exec bin/main.exe -- report /tmp/bagcqc-trace-demo.json

# Compare a fresh run against the checked-in baselines.
compare: build
	mkdir -p $(BENCH_OUT)
	dune exec bench/main.exe -- --json $(BENCH_OUT)/bagcqc-bench-new-lp.json --only lp
	dune exec bench/compare.exe -- BENCH_lp.json $(BENCH_OUT)/bagcqc-bench-new-lp.json
	dune exec bench/main.exe -- --json $(BENCH_OUT)/bagcqc-bench-new-hom.json --only hom
	dune exec bench/compare.exe -- BENCH_hom.json $(BENCH_OUT)/bagcqc-bench-new-hom.json

clean:
	dune clean
