.PHONY: all build test check fuzz bench bench-json compare trace-demo \
	serve-smoke clean

all: build

build:
	dune build

test: build
	dune runtest

# Tier-1 gate plus a smoke run of the JSON bench harness: builds, runs the
# full test suite, and verifies `--json` still emits a file the comparator
# can parse (smoke sizes, so this stays fast).
check: build
	dune runtest
	dune exec bench/main.exe -- --json /tmp/bagcqc-bench-smoke.json --smoke
	dune exec bench/compare.exe -- /tmp/bagcqc-bench-smoke.json /tmp/bagcqc-bench-smoke.json

# Differential fuzzing (DESIGN.md §4e): every suite, deterministic in
# SEED, at a heavier budget than the in-suite smoke tests.  On a finding
# the shrunk case and its replay line land in fuzz-repro-<suite>.txt.
FUZZ_ITERS ?= 10000
SEED ?= 42

fuzz: build
	dune exec bin/fuzz.exe -- --iters $(FUZZ_ITERS) --seed $(SEED)

# Full experiment harness (tables + bechamel timings).  With JSON=1 it
# instead runs the JSON timing suites (including the jobs-scaling `par`
# suite, which rides in the lp file) and gates them against the
# checked-in baselines (what CI runs).  BENCH_OUT picks where the fresh
# JSON lands, so CI can keep it as an artifact.
BENCH_OUT ?= /tmp

bench: build
ifeq ($(JSON),1)
	mkdir -p $(BENCH_OUT)
	dune exec bench/main.exe -- --json $(BENCH_OUT)/bagcqc-bench-new-lp.json --only lp
	dune exec bench/compare.exe -- BENCH_lp.json $(BENCH_OUT)/bagcqc-bench-new-lp.json
	dune exec bench/main.exe -- --json $(BENCH_OUT)/bagcqc-bench-new-hom.json --only hom
	dune exec bench/compare.exe -- BENCH_hom.json $(BENCH_OUT)/bagcqc-bench-new-hom.json
else
	dune exec bench/main.exe
endif

# Regenerate the checked-in bench baselines.
bench-json: build
	dune exec bench/main.exe -- --json BENCH_lp.json --only lp
	dune exec bench/main.exe -- --json BENCH_hom.json --only hom

# End-to-end daemon smoke (what CI's serve-smoke job runs): a real
# `bagcqc serve` process with a persistent store, driven over its Unix
# socket by `bagcqc client` — cold and cached checks, typed protocol
# errors, SIGTERM drain, a warm restart answered from the store with
# zero simplex pivots, and a corrupted store entry rejected by
# verify-on-load.  See scripts/serve_smoke.sh.
serve-smoke: build
	scripts/serve_smoke.sh

# Observability demo: run a traced containment check and print the span
# tree, cache traffic, and histogram percentiles back out of the file.
trace-demo: build
	dune exec bin/main.exe -- check 'R(x,y), R(y,z), R(z,x)' 'R(u,v), R(u,w)' \
	  --trace /tmp/bagcqc-trace-demo.json
	dune exec bin/main.exe -- report /tmp/bagcqc-trace-demo.json

# Compare a fresh run against the checked-in baselines.
compare: build
	mkdir -p $(BENCH_OUT)
	dune exec bench/main.exe -- --json $(BENCH_OUT)/bagcqc-bench-new-lp.json --only lp
	dune exec bench/compare.exe -- BENCH_lp.json $(BENCH_OUT)/bagcqc-bench-new-lp.json
	dune exec bench/main.exe -- --json $(BENCH_OUT)/bagcqc-bench-new-hom.json --only hom
	dune exec bench/compare.exe -- BENCH_hom.json $(BENCH_OUT)/bagcqc-bench-new-hom.json

clean:
	dune clean
