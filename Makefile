.PHONY: all build test check bench bench-json compare clean

all: build

build:
	dune build

test: build
	dune runtest

# Tier-1 gate plus a smoke run of the JSON bench harness: builds, runs the
# full test suite, and verifies `--json` still emits a file the comparator
# can parse (smoke sizes, so this stays fast).
check: build
	dune runtest
	dune exec bench/main.exe -- --json /tmp/bagcqc-bench-smoke.json --smoke
	dune exec bench/compare.exe -- /tmp/bagcqc-bench-smoke.json /tmp/bagcqc-bench-smoke.json

# Full experiment harness (tables + bechamel timings).  With JSON=1 it
# instead runs the JSON timing suites and gates them against the
# checked-in baselines (what CI runs).
bench: build
ifeq ($(JSON),1)
	dune exec bench/main.exe -- --json /tmp/bagcqc-bench-new-lp.json --only lp
	dune exec bench/compare.exe -- BENCH_lp.json /tmp/bagcqc-bench-new-lp.json
	dune exec bench/main.exe -- --json /tmp/bagcqc-bench-new-hom.json --only hom
	dune exec bench/compare.exe -- BENCH_hom.json /tmp/bagcqc-bench-new-hom.json
else
	dune exec bench/main.exe
endif

# Regenerate the checked-in bench baselines.
bench-json: build
	dune exec bench/main.exe -- --json BENCH_lp.json --only lp
	dune exec bench/main.exe -- --json BENCH_hom.json --only hom

# Compare a fresh run against the checked-in baselines.
compare: build
	dune exec bench/main.exe -- --json /tmp/bagcqc-bench-new-lp.json --only lp
	dune exec bench/compare.exe -- BENCH_lp.json /tmp/bagcqc-bench-new-lp.json
	dune exec bench/main.exe -- --json /tmp/bagcqc-bench-new-hom.json --only hom
	dune exec bench/compare.exe -- BENCH_hom.json /tmp/bagcqc-bench-new-hom.json

clean:
	dune clean
