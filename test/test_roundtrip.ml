(* Parser / printer round-trip: parsing what Query.pp prints yields the
   same query back.

   The parser assigns variable indices by first occurrence (head first,
   then body, left to right), so the property holds exactly for queries
   whose variables are numbered in first-occurrence order; the generator
   produces arbitrary queries and then renumbers them into that canonical
   order, which loses nothing — Query.equal is structural on indices and
   ignores names. *)

open Bagcqc_cq

(* Renumber a query's variables by first occurrence in (head, then atom
   args) order — the order the parser will rediscover them in. *)
let canonicalize ~head ~nvars atoms =
  let order = Array.make nvars (-1) in
  let next = ref 0 in
  let visit v =
    if order.(v) < 0 then begin
      order.(v) <- !next;
      incr next
    end
  in
  List.iter visit head;
  List.iter (fun a -> List.iter visit (Array.to_list a.Query.args)) atoms;
  let head = List.map (fun v -> order.(v)) head in
  let atoms =
    List.map
      (fun a ->
        Query.atom a.Query.rel (List.map (fun v -> order.(v)) (Array.to_list a.Query.args)))
      atoms
  in
  Query.make ~head ~nvars atoms

let arb_query =
  let gen =
    QCheck.Gen.(
      let* nvars = int_range 1 4 in
      let* natoms = int_range 1 4 in
      let gen_atom =
        (* One arity per relation name — Query.make enforces a consistent
           vocabulary. *)
        let* rel, arity = oneofl [ ("R", 2); ("S", 1); ("Tr", 3) ] in
        let* args = list_repeat arity (int_range 0 (nvars - 1)) in
        return (Query.atom rel args)
      in
      let* atoms = list_repeat natoms gen_atom in
      (* Query.make requires every variable to occur somewhere; a chain
         atom guarantees it (and "true"-bodied queries cannot arise). *)
      let cover =
        List.init nvars (fun v -> Query.atom "R" [ v; (v + 1) mod nvars ])
      in
      let atoms = atoms @ cover in
      let* head_len = int_range 0 nvars in
      let* head = list_repeat head_len (int_range 0 (nvars - 1)) in
      return (canonicalize ~head ~nvars atoms))
  in
  QCheck.make ~print:Query.to_string gen

let prop_parse_print_id =
  QCheck.Test.make ~name:"parse (print q) = q" ~count:300 arb_query (fun q ->
      match Parser.parse_result (Query.to_string q) with
      | Ok q' -> Query.equal q q'
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg)

let prop_print_parse_print_fixpoint =
  (* On arbitrary well-formed input strings that parse, printing is a
     fixpoint after one normalization. *)
  QCheck.Test.make ~name:"print is a fixpoint of parse . print" ~count:300
    arb_query (fun q ->
      let s = Query.to_string q in
      match Parser.parse_result s with
      | Ok q' -> String.equal s (Query.to_string q')
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg)

let test_examples () =
  (* Hand-picked shapes: boolean, head with repeats, primed names. *)
  List.iter
    (fun s ->
      match Parser.parse_result s with
      | Error msg -> Alcotest.failf "%s: %s" s msg
      | Ok q ->
        (match Parser.parse_result (Query.to_string q) with
         | Ok q' ->
           Alcotest.(check bool) ("round trip: " ^ s) true (Query.equal q q')
         | Error msg -> Alcotest.failf "re-parse of %s: %s" s msg))
    [ "R(x,y), R(y,z), R(z,x)";
      "Q(x) :- R(x,y), R(x,z)";
      "Q(x,x) :- R(x,y)";
      "A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')" ]

let suite =
  ("examples round trip", `Quick, test_examples)
  :: List.map QCheck_alcotest.to_alcotest
       [ prop_parse_print_id; prop_print_parse_print_fixpoint ]
