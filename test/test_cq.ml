(* Tests for the conjunctive-query substrate: parser, homomorphism
   counting, Gaifman graphs, chordality, junction trees, tree
   decompositions, E_T, GYO acyclicity, Appendix A reductions. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq

let vs = Varset.of_list

let triangle = Parser.parse "R(x,y), R(y,z), R(z,x)"
let vee = Parser.parse "R(y1,y2), R(y1,y3)"

(* ------------------------------------------------------------------ *)
(* Parser / Query                                                      *)
(* ------------------------------------------------------------------ *)

let test_parser () =
  let q = Parser.parse "Q(x,z) :- R(x,y), S(y,z), T(z,z)." in
  Alcotest.(check int) "nvars" 3 (Query.nvars q);
  (* Head variables are indexed first: x=0, z=1, then y=2. *)
  Alcotest.(check (list int)) "head" [ 0; 1 ] (Query.head q);
  Alcotest.(check int) "atoms" 3 (List.length (Query.atoms q));
  Alcotest.(check string) "var names" "x" (Query.var_name q 0);
  let voc = Query.vocabulary q in
  Alcotest.(check (list (pair string int))) "vocabulary"
    [ ("R", 2); ("S", 2); ("T", 2) ] voc;
  (* Headless form *)
  let b = Parser.parse "R(x,y), R(y,x)" in
  Alcotest.(check bool) "boolean" true (Query.is_boolean b);
  (* Empty head *)
  let b2 = Parser.parse "Q() :- R(x)" in
  Alcotest.(check bool) "boolean with empty head" true (Query.is_boolean b2);
  (* Repeated variables in an atom *)
  let r = Parser.parse "R(x,x,y)" in
  (match Query.atoms r with
   | [ a ] -> Alcotest.(check bool) "repeated var" true (a.Query.args = [| 0; 0; 1 |])
   | _ -> Alcotest.fail "expected one atom")

let test_parser_errors () =
  let bad s =
    match Parser.parse_result s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error on %S" s
  in
  bad "R(x,";
  bad "R(x))";
  bad "Q(w) :- R(x,y)";
  (* head var not in body *)
  bad "R(x,y) extra";
  (* unbalanced parens, both directions *)
  bad "R(x";
  bad "R x,y)";
  (* a body atom with no arguments constrains nothing *)
  bad "R()";
  bad "R(x,y), S()";
  (* trailing garbage after a complete query *)
  bad "R(x,y).)";
  bad "R(x,y), ";
  (* grammar-valid but Query.make-invalid inputs must come back as
     Error, not escape as Invalid_argument: inconsistent arities and a
     variable count past Varset.max_vars *)
  bad "R(x), R(x,y)";
  bad
    ("R("
    ^ String.concat "," (List.init 70 (fun i -> Printf.sprintf "v%d" i))
    ^ ")");
  (* duplicate head variables are legal output tuples, not errors *)
  (match Parser.parse_result "Q(x,x) :- R(x,y)" with
   | Ok q -> Alcotest.(check (list int)) "head repeats" [ 0; 0 ] (Query.head q)
   | Error msg -> Alcotest.failf "Q(x,x) should parse: %s" msg)

let prop_parse_result_never_raises =
  (* Totality of the parser on genuinely arbitrary bytes — printable or
     not.  Any exception (including Invalid_argument out of Query.make)
     fails the property. *)
  QCheck.Test.make ~name:"parse_result never raises" ~count:2000
    QCheck.(string_gen Gen.char)
    (fun s ->
      match Parser.parse_result s with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "parse_result %S raised %s" s
          (Printexc.to_string e))

let test_query_ops () =
  Alcotest.(check int) "triangle components" 1
    (List.length (Query.connected_components triangle));
  let two = Query.disjoint_union triangle triangle in
  Alcotest.(check int) "union nvars" 6 (Query.nvars two);
  Alcotest.(check int) "union components" 2
    (List.length (Query.connected_components two));
  let p3 = Query.power 3 vee in
  Alcotest.(check int) "power nvars" 9 (Query.nvars p3);
  Alcotest.(check int) "power atoms" 6 (List.length (Query.atoms p3));
  (* dedup *)
  let d = Parser.parse "R(x,y), R(x,y), S(y)" in
  Alcotest.(check int) "dedup" 2 (List.length (Query.atoms (Query.dedup_atoms d)));
  Alcotest.check_raises "unused variable rejected"
    (Invalid_argument "Query.make: every variable must occur in some atom")
    (fun () -> ignore (Query.make ~nvars:2 [ Query.atom "R" [ 0 ] ]))

(* ------------------------------------------------------------------ *)
(* Hom counting                                                        *)
(* ------------------------------------------------------------------ *)

let test_hom_count () =
  (* Directed triangle into itself: the 3 rotations. *)
  Alcotest.(check int) "triangle self-homs" 3
    (Hom.count triangle (Database.canonical triangle));
  (* Vee into triangle: Example 4.3 says there are 3. *)
  Alcotest.(check int) "vee -> triangle" 3 (Hom.count_between vee triangle);
  (* Triangle into vee: none (vee has no cycle). *)
  Alcotest.(check int) "triangle -> vee" 0 (Hom.count_between triangle vee);
  (* Vee on a complete binary digraph K2: 2 choices for y1, 2 for y2, 2 for y3. *)
  let k2 = Database.of_int_rows [ ("R", [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]) ] in
  Alcotest.(check int) "vee on K2" 8 (Hom.count vee k2);
  Alcotest.(check int) "triangle on K2" 8 (Hom.count triangle k2);
  (* Early exit *)
  Alcotest.(check int) "limit" 5 (Hom.count ~limit:5 vee k2);
  Alcotest.(check bool) "exists" true (Hom.exists vee k2);
  let empty_db = Database.empty in
  Alcotest.(check bool) "no hom into empty" false (Hom.exists vee empty_db)

let test_hom_repeated_vars () =
  (* R(x,x) only matches loops. *)
  let q = Parser.parse "R(x,x)" in
  let db = Database.of_int_rows [ ("R", [ [ 0; 0 ]; [ 0; 1 ]; [ 2; 2 ] ]) ] in
  Alcotest.(check int) "loops only" 2 (Hom.count q db)

let test_answers_bagset () =
  (* Q(x) :- R(x,y): multiplicity of x = out-degree. *)
  let q = Parser.parse "Q(x) :- R(x,y)" in
  let db = Database.of_int_rows [ ("R", [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ]) ] in
  let ans = Hom.answers q db in
  let find v =
    match List.find_opt (fun (k, _) -> k = [| Value.Int v |]) ans with
    | Some (_, c) -> c
    | None -> 0
  in
  Alcotest.(check int) "deg 0" 2 (find 0);
  Alcotest.(check int) "deg 1" 1 (find 1);
  Alcotest.(check int) "deg 2" 0 (find 2);
  (* contained_on *)
  let q2 = Parser.parse "Q(x) :- R(x,y), R(x,z)" in
  Alcotest.(check bool) "Q <= Q^2 on db" true (Hom.contained_on q q2 db);
  Alcotest.(check bool) "Q^2 </= Q on db" false (Hom.contained_on q2 q db)

let test_empty_query () =
  let q = Query.make ~nvars:0 [] in
  Alcotest.(check int) "one empty hom" 1 (Hom.count q Database.empty)

(* ------------------------------------------------------------------ *)
(* Graph: chordality etc.                                              *)
(* ------------------------------------------------------------------ *)

let test_gaifman () =
  let g = Graph.gaifman triangle in
  Alcotest.(check int) "K3 edges" 3 (List.length (Graph.edges g));
  Alcotest.(check bool) "K3 chordal" true (Graph.is_chordal g);
  let q = Parser.parse "R(w,x), S(x,y), T(y,z), U(z,w)" in
  let c4 = Graph.gaifman q in
  Alcotest.(check bool) "C4 not chordal" false (Graph.is_chordal c4);
  let q' = Parser.parse "R(w,x), S(x,y), T(y,z), U(z,w), V(w,y)" in
  Alcotest.(check bool) "C4+chord chordal" true (Graph.is_chordal (Graph.gaifman q'))

let test_maximal_cliques () =
  let g = Graph.gaifman triangle in
  Alcotest.(check int) "one clique" 1 (List.length (Graph.maximal_cliques_chordal g));
  let path = Graph.gaifman (Parser.parse "R(a,b), S(b,c)") in
  let cliques = Graph.maximal_cliques_chordal path in
  Alcotest.(check int) "two cliques" 2 (List.length cliques);
  Alcotest.(check bool) "cliques correct" true
    (List.sort compare cliques = List.sort compare [ vs [ 0; 1 ]; vs [ 1; 2 ] ])

let test_triangulation () =
  let q = Parser.parse "R(w,x), S(x,y), T(y,z), U(z,w)" in
  let g = Graph.gaifman q in
  let tg = Graph.min_fill_triangulation g in
  Alcotest.(check bool) "triangulated is chordal" true (Graph.is_chordal tg);
  (* Original edges preserved *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "edge kept" true (Graph.has_edge tg a b))
    (Graph.edges g)

(* ------------------------------------------------------------------ *)
(* Treedec                                                             *)
(* ------------------------------------------------------------------ *)

let test_acyclicity () =
  Alcotest.(check bool) "vee acyclic" true (Treedec.is_acyclic vee);
  Alcotest.(check bool) "triangle not acyclic" false (Treedec.is_acyclic triangle);
  let path = Parser.parse "R(a,b), S(b,c), T(c,d)" in
  Alcotest.(check bool) "path acyclic" true (Treedec.is_acyclic path);
  (* A cyclic query that IS chordal: triangle with ternary atom is acyclic. *)
  let tri3 = Parser.parse "R(x,y,z), S(x,y), T(y,z)" in
  Alcotest.(check bool) "covered triangle acyclic" true (Treedec.is_acyclic tri3);
  (* Example 3.5's Q2 is acyclic. *)
  let q2 = Parser.parse "A(y1,y2), B(y1,y3), C(y4,y2)" in
  Alcotest.(check bool) "Ex 3.5 Q2 acyclic" true (Treedec.is_acyclic q2)

let test_join_tree_example_3_5 () =
  (* The paper gives the simple junction tree {y1,y3}-{y1,y2}-{y2,y4}. *)
  let q2 = Parser.parse "A(y1,y2), B(y1,y3), C(y4,y2)" in
  match Treedec.join_tree q2 with
  | None -> Alcotest.fail "expected a join tree"
  | Some t ->
    Alcotest.(check bool) "valid" true (Treedec.is_valid_for q2 t);
    Alcotest.(check bool) "simple" true (Treedec.is_simple t);
    Alcotest.(check int) "three bags" 3 (Treedec.n_nodes t);
    Alcotest.(check int) "two edges" 2 (List.length (Treedec.tree_edges t))

let test_junction_tree () =
  let g = Graph.gaifman triangle in
  (match Treedec.junction_tree g with
   | None -> Alcotest.fail "K3 is chordal"
   | Some t ->
     Alcotest.(check int) "single bag" 1 (Treedec.n_nodes t);
     Alcotest.(check bool) "valid" true (Treedec.is_valid_for triangle t));
  let c4 = Graph.gaifman (Parser.parse "R(w,x), S(x,y), T(y,z), U(z,w)") in
  Alcotest.(check bool) "no junction tree for C4" true
    (Treedec.junction_tree c4 = None)

let test_et_vee () =
  (* Example 4.3: E_T = h(Y1Y2) + h(Y3|Y1) = h(Y1Y2) + h(Y1Y3) - h(Y1). *)
  let t = Option.get (Treedec.join_tree vee) in
  let e = Cexpr.to_linexpr (Treedec.et t) in
  let q = Rat.of_int in
  Alcotest.(check bool) "coeff Y1Y2" true (Rat.equal (Linexpr.coeff e (vs [ 0; 1 ])) (q 1));
  Alcotest.(check bool) "coeff Y1Y3" true (Rat.equal (Linexpr.coeff e (vs [ 0; 2 ])) (q 1));
  Alcotest.(check bool) "coeff Y1" true (Rat.equal (Linexpr.coeff e (vs [ 0 ])) (q (-1)));
  Alcotest.(check bool) "et = separators form" true
    (Linexpr.equal e (Treedec.et_via_separators t));
  Alcotest.(check bool) "simple as Cexpr" true (Cexpr.is_simple (Treedec.et t))

let test_treedec_validity_checks () =
  (* A bogus decomposition violating running intersection. *)
  let bags = [| vs [ 0; 1 ]; vs [ 1; 2 ]; vs [ 0; 2 ] |] in
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Treedec.make: edges contain a cycle") (fun () ->
      ignore (Treedec.make ~bags ~edges:[ (0, 1); (1, 2); (2, 0) ]));
  let path = Parser.parse "R(a,b), S(b,c)" in
  let bad = Treedec.make ~bags:[| vs [ 0; 1 ]; vs [ 2 ] |] ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "coverage fails" false (Treedec.is_valid_for path bad);
  let disconnected =
    Treedec.make ~bags:[| vs [ 0; 1 ]; vs [ 2 ]; vs [ 1; 2 ] |] ~edges:[ (0, 1); (1, 2) ]
  in
  (* Variable 1 appears in bags 0 and 2, which are separated by bag 1
     that does not contain it: running intersection fails. *)
  Alcotest.(check bool) "running intersection fails" false
    (Treedec.is_valid_for path disconnected)

let test_prune () =
  let bags = [| vs [ 0; 1 ]; vs [ 0 ]; vs [ 1; 2 ] |] in
  let t = Treedec.make ~bags ~edges:[ (0, 1); (0, 2) ] in
  let p = Treedec.prune t in
  Alcotest.(check int) "pruned to 2 nodes" 2 (Treedec.n_nodes p);
  (* E_T unchanged by pruning. *)
  Alcotest.(check bool) "E_T preserved" true
    (Linexpr.equal
       (Cexpr.to_linexpr (Treedec.et t))
       (Cexpr.to_linexpr (Treedec.et p)))

let test_totally_disconnected () =
  let t = Treedec.make ~bags:[| vs [ 0; 1 ]; vs [ 2; 3 ] |] ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "totally disconnected" true (Treedec.is_totally_disconnected t);
  Alcotest.(check bool) "also simple" true (Treedec.is_simple t)

(* Random queries: of_query always produces a valid decomposition, and the
   two E_T forms agree. *)
let arb_query =
  let gen =
    QCheck.Gen.(
      let* nv = int_range 1 5 in
      let* natoms = int_range 1 5 in
      let* atoms =
        list_repeat natoms
          (let* arity = int_range 1 3 in
           let* rel = int_range 0 2 in
           let* args = list_repeat arity (int_range 0 (nv - 1)) in
           (* Encode the arity in the name so vocabularies stay consistent. *)
           return (Query.atom (Printf.sprintf "R%d_%d" arity rel) args))
      in
      (* Make sure every variable occurs: append a covering atom. *)
      let cover = Query.atom "COV" (List.init nv Fun.id) in
      return (Query.make ~nvars:nv (cover :: atoms)))
  in
  QCheck.make ~print:Query.to_string gen

let prop_of_query_valid =
  QCheck.Test.make ~name:"of_query yields a valid tree decomposition" ~count:200
    arb_query
    (fun q ->
      let t = Treedec.of_query q in
      Treedec.is_valid_for q t
      && Linexpr.equal (Cexpr.to_linexpr (Treedec.et t)) (Treedec.et_via_separators t))

let prop_et_on_modular =
  (* On a modular h, E_T(h) >= h(V) for every valid decomposition (each
     variable is counted at least once across the bags). *)
  QCheck.Test.make ~name:"E_T(h) >= h(V) on modular h" ~count:100 arb_query
    (fun q ->
      let t = Treedec.of_query q in
      let n = Query.nvars q in
      let h = Polymatroid.modular_of_weights (Array.make n Rat.one) in
      Rat.compare
        (Polymatroid.eval_cexpr h (Treedec.et t))
        (Polymatroid.value h (Varset.full n))
      >= 0)

(* ------------------------------------------------------------------ *)
(* Reductions (Appendix A)                                             *)
(* ------------------------------------------------------------------ *)

let test_booleanize_example_a2 () =
  let q1 = Parser.parse "Q(x,z) :- P(x), S(u,x), S(v,z), R(z)" in
  let q2 = Parser.parse "Q(x,z) :- P(x), S(u,y), S(v,y), R(z)" in
  let b1, b2 = Reductions.booleanize q1 q2 in
  Alcotest.(check bool) "b1 boolean" true (Query.is_boolean b1);
  Alcotest.(check int) "b1 two extra atoms" 6 (List.length (Query.atoms b1));
  Alcotest.(check int) "b2 two extra atoms" 6 (List.length (Query.atoms b2));
  (* Acyclicity is preserved (Lemma A.1). *)
  Alcotest.(check bool) "q2 acyclic" true (Treedec.is_acyclic q2);
  Alcotest.(check bool) "b2 acyclic" true (Treedec.is_acyclic b2)

let test_atom_closure () =
  let q = Parser.parse "R(x,y,z)" in
  let c = Reductions.atom_closure q in
  (* 2^3 - 2 = 6 proper nonempty subsets. *)
  Alcotest.(check int) "closure adds projections" 7 (List.length (Query.atoms c));
  (* Closure + closed database preserves hom counts. *)
  let db = Database.of_int_rows [ ("R", [ [ 0; 1; 2 ]; [ 0; 0; 1 ]; [ 2; 1; 0 ] ]) ] in
  let db' = Reductions.close_database q db in
  Alcotest.(check int) "hom count preserved" (Hom.count q db) (Hom.count c db')

let prop_closure_preserves_homs =
  QCheck.Test.make ~name:"atom closure preserves hom counts" ~count:100
    (QCheck.pair arb_query
       (QCheck.make
          QCheck.Gen.(list_size (int_range 0 6) (list_repeat 5 (int_range 0 2)))))
    (fun (q, raw_rows) ->
      let db =
        List.fold_left
          (fun db (rel, arity) ->
            let rows = List.map (fun r -> List.filteri (fun i _ -> i < arity) r) raw_rows in
            List.fold_left
              (fun db row ->
                Database.add_row rel (Array.of_list (List.map (fun i -> Value.Int i) row)) db)
              db rows)
          Database.empty (Query.vocabulary q)
      in
      let qc = Reductions.atom_closure q in
      let dbc = Reductions.close_database q db in
      Hom.count q db = Hom.count qc dbc)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_of_query_valid; prop_et_on_modular; prop_closure_preserves_homs;
      prop_parse_result_never_raises ]

let suite =
  [ ("parser", `Quick, test_parser);
    ("parser errors", `Quick, test_parser_errors);
    ("query ops", `Quick, test_query_ops);
    ("hom count", `Quick, test_hom_count);
    ("hom repeated vars", `Quick, test_hom_repeated_vars);
    ("bag-set answers", `Quick, test_answers_bagset);
    ("empty query", `Quick, test_empty_query);
    ("gaifman/chordality", `Quick, test_gaifman);
    ("maximal cliques", `Quick, test_maximal_cliques);
    ("triangulation", `Quick, test_triangulation);
    ("acyclicity (GYO)", `Quick, test_acyclicity);
    ("join tree Ex 3.5", `Quick, test_join_tree_example_3_5);
    ("junction tree", `Quick, test_junction_tree);
    ("E_T for vee (Ex 4.3)", `Quick, test_et_vee);
    ("treedec validity", `Quick, test_treedec_validity_checks);
    ("prune", `Quick, test_prune);
    ("totally disconnected", `Quick, test_totally_disconnected);
    ("booleanize (Ex A.2)", `Quick, test_booleanize_example_a2);
    ("atom closure (Fact A.3)", `Quick, test_atom_closure) ]
  @ qtests
