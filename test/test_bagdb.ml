(* Tests for bag databases and the bag-bag -> bag-set reduction
   (paper Section 2.2). *)

open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq
open Bagcqc_core

let vi i = Value.Int i

let test_multiplicity () =
  let db =
    Bagdb.of_int_rows [ ("R", [ ([ 0; 1 ], 3); ([ 1; 2 ], 1); ([ 0; 1 ], 2) ]) ]
  in
  Alcotest.(check int) "accumulated" 5 (Bagdb.multiplicity db "R" [| vi 0; vi 1 |]);
  Alcotest.(check int) "single" 1 (Bagdb.multiplicity db "R" [| vi 1; vi 2 |]);
  Alcotest.(check int) "absent" 0 (Bagdb.multiplicity db "R" [| vi 9; vi 9 |]);
  Alcotest.check_raises "bad count"
    (Invalid_argument "Bagdb.add_row: count must be positive") (fun () ->
      ignore (Bagdb.add_row ~count:0 "R" [| vi 0 |] db))

let test_count_bag () =
  let db = Bagdb.of_int_rows [ ("R", [ ([ 0; 1 ], 3); ([ 1; 2 ], 2) ]) ] in
  (* Single atom: sum of multiplicities. *)
  Alcotest.(check int) "edge count" 5 (Bagdb.count_bag (Parser.parse "R(x,y)") db);
  (* Path: product along the join: 3*2. *)
  Alcotest.(check int) "path count" 6
    (Bagdb.count_bag (Parser.parse "R(x,y), R(y,z)") db);
  (* Repeated atom SQUARES the multiplicity: 3² + 2². *)
  Alcotest.(check int) "repeated atom" 13
    (Bagdb.count_bag (Parser.parse "R(x,y), R(x,y)") db)

let test_reduction_identity () =
  let db = Bagdb.of_int_rows [ ("R", [ ([ 0; 1 ], 3); ([ 1; 1 ], 2) ]) ] in
  let check q =
    let q = Parser.parse q in
    Alcotest.(check int)
      (Query.to_string q)
      (Bagdb.count_bag q db)
      (Hom.count (Bagdb.lift_query q) (Bagdb.to_set_database db))
  in
  check "R(x,y)";
  check "R(x,y), R(y,z)";
  check "R(x,y), R(x,y)";
  check "R(x,x)"

let test_lift_query () =
  let q = Parser.parse "Q(x) :- R(x,y), R(x,y)" in
  let l = Bagdb.lift_query q in
  Alcotest.(check int) "two fresh vars" (Query.nvars q + 2) (Query.nvars l);
  Alcotest.(check (list int)) "head preserved" (Query.head q) (Query.head l);
  (* The two atom occurrences are now distinct. *)
  Alcotest.(check int) "atoms distinct" 2
    (List.length (Query.atoms (Query.dedup_atoms l)))

let test_bag_bag_containment () =
  (* Under bag-set semantics R(x,y),R(x,y) ≡ R(x,y); under bag-bag
     semantics the duplicate atom squares multiplicities, so containment
     holds one way only. *)
  let dup = Parser.parse "R(x,y), R(x,y)" in
  let single = Parser.parse "R(x,y)" in
  (match Containment.decide (Query.dedup_atoms dup) single with
   | Containment.Contained cert ->
     Alcotest.(check bool) "certificate re-verifies" true (Certificate.check cert)
   | _ -> Alcotest.fail "bag-set: dup ≡ single");
  (match Containment.decide_bag_bag single dup with
   | Containment.Contained cert ->
     Alcotest.(check bool) "certificate re-verifies" true (Certificate.check cert)
   | _ -> Alcotest.fail "bag-bag: m <= m^2");
  (match Containment.decide_bag_bag dup single with
   | Containment.Not_contained w ->
     Alcotest.(check bool) "verified" true (w.Containment.hom2 < w.Containment.card_p)
   | Containment.Contained _ -> Alcotest.fail "bag-bag: m^2 is not <= m"
   | Containment.Unknown { reason; _ } -> Alcotest.failf "Unknown: %s" reason)

(* Property: the reduction identity on random bag databases and queries. *)
let prop_reduction_identity =
  let gen =
    QCheck.Gen.(
      let* rows =
        list_size (int_range 1 5)
          (pair (list_repeat 2 (int_range 0 2)) (int_range 1 3))
      in
      let* q =
        oneofl
          [ "R(x,y)"; "R(x,y), R(y,z)"; "R(x,y), R(x,y)"; "R(x,x)";
            "R(x,y), R(y,x)"; "R(x,y), R(y,z), R(z,x)" ]
      in
      return (rows, q))
  in
  QCheck.Test.make ~name:"bag-bag reduction: count_bag = lifted bag-set count"
    ~count:200
    (QCheck.make
       ~print:(fun (rows, q) ->
         q ^ " on "
         ^ String.concat ";"
             (List.map
                (fun (r, c) ->
                  Printf.sprintf "(%s)x%d" (String.concat "," (List.map string_of_int r)) c)
                rows))
       gen)
    (fun (rows, qs) ->
      let db = Bagdb.of_int_rows [ ("R", rows) ] in
      let q = Parser.parse qs in
      Bagdb.count_bag q db
      = Hom.count (Bagdb.lift_query q) (Bagdb.to_set_database db))

let qtests = List.map QCheck_alcotest.to_alcotest [ prop_reduction_identity ]

let suite =
  [ ("multiplicity", `Quick, test_multiplicity);
    ("count_bag", `Quick, test_count_bag);
    ("reduction identity", `Quick, test_reduction_identity);
    ("lift_query", `Quick, test_lift_query);
    ("bag-bag containment", `Quick, test_bag_bag_containment) ]
  @ qtests
