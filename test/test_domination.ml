(* lib/core/domination.ml: argument validation and the worked
   Kopparty–Rossman-style examples behind the exponent reduction
   |hom(A,D)|^(num/den) <= |hom(B,D)|  iff  A^num ⪯ B^den. *)

open Bagcqc_entropy
open Bagcqc_cq
open Bagcqc_core

let edge = Parser.parse "R(x,y)"
let vee = Parser.parse "R(x,y), R(x,z)"
let triangle = Parser.parse "R(x,y), R(y,z), R(z,x)"

let cert_ok = function
  | Containment.Contained cert ->
    Alcotest.(check bool) "certificate re-verifies" true (Certificate.check cert)
  | Containment.Not_contained _ -> Alcotest.fail "expected containment"
  | Containment.Unknown { reason; _ } -> Alcotest.failf "Unknown: %s" reason

let test_arg_validation () =
  let invalid num den =
    Alcotest.check_raises
      (Printf.sprintf "num=%d den=%d rejected" num den)
      (Invalid_argument "Domination.exponent_dominates")
      (fun () -> ignore (Domination.exponent_dominates ~num ~den edge vee))
  in
  invalid 0 1;
  invalid 1 0;
  invalid (-1) 2;
  invalid 3 (-2)

let test_dominates_is_containment () =
  (* dominates is bag containment on queries-as-structures: the two entry
     points must agree on both definitive answers. *)
  cert_ok (Domination.dominates triangle vee);
  (match Domination.dominates vee triangle with
   | Containment.Not_contained _ -> ()
   | _ -> Alcotest.fail "vee is not dominated by triangle")

let test_exponent_worked_example () =
  (* The paper's Section 2.1 example (Kopparty–Rossman):
     #vee <= #edge^2, i.e. Σ_x deg(x)^2 >= (Σ_x deg(x))^2 is FALSE, while
     #vee^(1/2) <= #edge — Cauchy–Schwarz — holds and the reduction
     proves it via vee^1 ⪯ edge^2. *)
  cert_ok (Domination.exponent_dominates ~num:1 ~den:2 vee edge);
  (match Domination.exponent_dominates ~num:2 ~den:1 edge vee with
   | Containment.Not_contained w ->
     Alcotest.(check bool) "witness verified" true
       (w.Containment.hom2 < w.Containment.card_p)
   | _ -> Alcotest.fail "#edge^2 <= #vee must fail");
  (* Degenerate exponent 1/1 coincides with plain domination. *)
  cert_ok (Domination.exponent_dominates ~num:1 ~den:1 triangle vee)

let test_exponent_uses_powers () =
  (* A^2 really is two disjoint copies: hom counts square, so A^2 ⪯ A^2
     trivially, and A^2 ⪯ A fails on databases with >1 hom. *)
  cert_ok (Domination.exponent_dominates ~num:2 ~den:2 edge edge);
  (match Domination.exponent_dominates ~num:2 ~den:1 edge edge with
   | Containment.Not_contained w ->
     Alcotest.(check bool) "witness verified" true
       (w.Containment.hom2 < w.Containment.card_p)
   | _ -> Alcotest.fail "#edge^2 <= #edge must fail")

let suite =
  [ ("argument validation", `Quick, test_arg_validation);
    ("dominates = containment", `Quick, test_dominates_is_containment);
    ("exponent worked example", `Quick, test_exponent_worked_example);
    ("exponent uses powers", `Quick, test_exponent_uses_powers) ]
