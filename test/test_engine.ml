(* The solver-engine layer: canonical problem IR, the LP solve cache and
   its copy-on-hit discipline, instrumentation counters, the independent
   certificate verifier, and the pluggable cone-backend registry. *)

open Bagcqc_num
open Bagcqc_lp
open Bagcqc_engine
open Bagcqc_entropy

let q = Rat.of_int
let vs = Varset.of_list

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ---------------- Problem IR ---------------- *)

let test_problem_canonical () =
  (* Row order, term order, duplicate columns and zero coefficients all
     normalize away; the memo table must see one key. *)
  let r1 = Problem.row [ (0, q 1); (1, q 2) ] Simplex.Le (q 3) in
  let r1' =
    Problem.row [ (1, q 1); (0, q 1); (1, q 1); (2, q 0) ] Simplex.Le (q 3)
  in
  let r2 = Problem.row [ (2, q 1) ] Simplex.Ge (q 0) in
  let p1 = Problem.make ~tag:"t" ~num_vars:3 [ r1; r2 ] in
  let p2 = Problem.make ~tag:"t" ~num_vars:3 [ r2; r1' ] in
  Alcotest.(check bool) "structurally equal" true (Problem.equal p1 p2);
  Alcotest.(check int) "hashes agree" (Problem.hash p1) (Problem.hash p2);
  Alcotest.(check int) "compare agrees" 0 (Problem.compare p1 p2);
  Alcotest.(check int) "rows counted" 2 (Problem.num_rows p1);
  (* The tag keeps distinct encodings apart even on equal matrices. *)
  let p3 = Problem.make ~tag:"u" ~num_vars:3 [ r1; r2 ] in
  Alcotest.(check bool) "tag distinguishes" false (Problem.equal p1 p3);
  (* And so does the objective. *)
  let p4 =
    Problem.make ~tag:"t" ~num_vars:3 ~objective:[ (0, q 1) ] [ r1; r2 ]
  in
  Alcotest.(check bool) "objective distinguishes" false (Problem.equal p1 p4)

let test_problem_validation () =
  Alcotest.(check bool) "negative column rejected" true
    (raises_invalid (fun () -> Problem.row [ (-1, q 1) ] Simplex.Le (q 0)));
  let r = Problem.row [ (3, q 1) ] Simplex.Le (q 0) in
  Alcotest.(check bool) "column beyond num_vars rejected" true
    (raises_invalid (fun () -> Problem.make ~tag:"t" ~num_vars:3 [ r ]));
  Alcotest.(check bool) "objective beyond num_vars rejected" true
    (raises_invalid (fun () ->
         Problem.make ~tag:"t" ~num_vars:1 ~objective:[ (5, q 1) ] []))

(* ---------------- solve cache ---------------- *)

let test_solver_cache () =
  Solver.clear ();
  Stats.reset ();
  let p =
    Problem.make ~tag:"test/cache" ~num_vars:2
      [ Problem.row [ (0, q 1); (1, q 1) ] Simplex.Ge (q 1);
        Problem.row [ (0, q 1) ] Simplex.Le (q 2) ]
  in
  let x1 =
    match Solver.feasible p with
    | Some x -> x
    | None -> Alcotest.fail "system is feasible"
  in
  let s1 = Stats.snapshot () in
  Alcotest.(check int) "first solve misses" 1 s1.Stats.cache_misses;
  Alcotest.(check int) "no hit yet" 0 s1.Stats.cache_hits;
  Alcotest.(check bool) "a real solve happened" true (s1.Stats.lp_solves >= 1);
  (* A structurally equal problem built independently must hit. *)
  let p' =
    Problem.make ~tag:"test/cache" ~num_vars:2
      [ Problem.row [ (0, q 1) ] Simplex.Le (q 2);
        Problem.row [ (1, q 1); (0, q 1) ] Simplex.Ge (q 1) ]
  in
  ignore (Solver.feasible p');
  let s2 = Stats.snapshot () in
  Alcotest.(check int) "second solve hits" 1 s2.Stats.cache_hits;
  Alcotest.(check int) "no extra miss" 1 s2.Stats.cache_misses;
  Alcotest.(check int) "one entry" 1 (Solver.cache_size ());
  Alcotest.(check bool) "hit rate is 1/2" true
    (abs_float (Stats.cache_hit_rate s2 -. 0.5) < 1e-9);
  (* Copy-on-hit: mutating a returned solution must not poison the
     table. *)
  x1.(0) <- q 99;
  (match Solver.feasible p with
   | Some x3 ->
     Alcotest.(check bool) "cache not poisoned" false (Rat.equal x3.(0) (q 99))
   | None -> Alcotest.fail "still feasible");
  (* With caching off, solves bypass the table entirely. *)
  let saved = !Solver.caching in
  Solver.caching := false;
  Fun.protect ~finally:(fun () -> Solver.caching := saved) @@ fun () ->
  let before = (Stats.snapshot ()).Stats.lp_solves in
  ignore (Solver.feasible p);
  let s4 = Stats.snapshot () in
  Alcotest.(check int) "uncached solve went to the simplex" (before + 1)
    s4.Stats.lp_solves;
  Alcotest.(check int) "hits unchanged" 2 s4.Stats.cache_hits

let test_cones_share_cache () =
  (* The same cone check issued twice — e.g. across repeated decide calls
     — must be answered from the cache the second time. *)
  Solver.clear ();
  Stats.reset ();
  let e = Linexpr.sub (Linexpr.term (vs [ 0; 1 ])) (Linexpr.term (vs [ 0 ])) in
  Alcotest.(check bool) "monotonicity is Shannon" true (Cones.valid_shannon ~n:2 e);
  let s1 = Stats.snapshot () in
  Alcotest.(check bool) "cold run misses" true (s1.Stats.cache_misses >= 1);
  Alcotest.(check bool) "renamed copy also Shannon" true
    (Cones.valid_shannon ~n:2 (Linexpr.rename (fun v -> v) e));
  let s2 = Stats.snapshot () in
  Alcotest.(check int) "warm run adds no miss" s1.Stats.cache_misses
    s2.Stats.cache_misses;
  Alcotest.(check bool) "warm run hits" true
    (s2.Stats.cache_hits > s1.Stats.cache_hits)

(* ---------------- stats ---------------- *)

let test_stats_stages () =
  Stats.reset ();
  let r = Stats.time_stage "outer" (fun () -> Stats.time_stage "inner" (fun () -> 7)) in
  Alcotest.(check int) "stage result threads through" 7 r;
  let s = Stats.snapshot () in
  let names = List.map fst s.Stats.stages in
  Alcotest.(check (list string)) "buckets in first-use order"
    [ "outer"; "inner" ] names;
  List.iter
    (fun (_, dt) -> Alcotest.(check bool) "non-negative time" true (dt >= 0.))
    s.Stats.stages;
  (* Exceptions still record the stage. *)
  (try Stats.time_stage "boom" (fun () -> failwith "x") with Failure _ -> ());
  let s' = Stats.snapshot () in
  Alcotest.(check bool) "exceptional stage recorded" true
    (List.mem_assoc "boom" s'.Stats.stages);
  Stats.reset ();
  let z = Stats.snapshot () in
  Alcotest.(check int) "reset zeroes counters" 0 z.Stats.cache_hits;
  Alcotest.(check int) "reset clears stages" 0 (List.length z.Stats.stages)

(* ---------------- certificates ---------------- *)

let submod01 =
  (* 0 <= h(X1) + h(X2) - h(X1X2): elemental at n = 2. *)
  Linexpr.sub
    (Linexpr.add (Linexpr.term (vs [ 0 ])) (Linexpr.term (vs [ 1 ])))
    (Linexpr.term (vs [ 0; 1 ]))

let test_certificate_check_and_tamper () =
  let cert =
    match Cones.valid_max_cert Cones.Gamma ~n:2 [ submod01 ] with
    | Ok (Some c) -> c
    | _ -> Alcotest.fail "submodularity is valid over Γ2"
  in
  Alcotest.(check bool) "genuine certificate verifies" true
    (Certificate.check cert);
  Alcotest.(check bool) "proves its own statement" true
    (Certificate.proves cert ~n:2 [ submod01 ]);
  Alcotest.(check bool) "does not prove a different statement" false
    (Certificate.proves cert ~n:2 [ Linexpr.neg submod01 ]);
  (* Tampering with any component must be caught. *)
  let rebuild ~lambda ~mu ~sides =
    Certificate.make ~n:2 ~cone:"gamma" ~sides ~lambda ~mu
  in
  let lambda = Certificate.lambda cert
  and mu = Certificate.convex_weights cert
  and sides = Certificate.sides cert in
  let doubled =
    rebuild ~mu ~sides
      ~lambda:(List.map (fun (e, l) -> (e, Rat.add l l)) lambda)
  in
  Alcotest.(check bool) "scaled multipliers rejected" false
    (Certificate.check doubled);
  let negated =
    rebuild ~lambda ~sides ~mu:(List.map Rat.neg mu)
  in
  Alcotest.(check bool) "negative convex weights rejected" false
    (Certificate.check negated);
  let non_elemental =
    rebuild ~mu ~sides
      ~lambda:(List.map (fun (e, l) -> (Linexpr.scale (q 2) e, l)) lambda)
  in
  Alcotest.(check bool) "non-elemental axiom rejected" false
    (Certificate.check non_elemental);
  let wrong_side = rebuild ~lambda ~mu ~sides:(List.map Linexpr.neg sides) in
  Alcotest.(check bool) "altered sides rejected" false
    (Certificate.check wrong_side);
  Alcotest.(check bool) "mu length mismatch rejected at construction" true
    (raises_invalid (fun () -> rebuild ~lambda ~mu:(Rat.one :: mu) ~sides))

let test_certificate_multi_side () =
  (* A genuinely max certificate: 0 <= max(h(1)-h(2), h(2)-h(1)). *)
  let d = Linexpr.sub (Linexpr.term (vs [ 0 ])) (Linexpr.term (vs [ 1 ])) in
  let sides = [ d; Linexpr.neg d ] in
  match Cones.valid_max_cert Cones.Gamma ~n:2 sides with
  | Ok (Some c) ->
    Alcotest.(check bool) "verifies" true (Certificate.check c);
    Alcotest.(check bool) "proves sides in any order" true
      (Certificate.proves c ~n:2 (List.rev sides));
    let total = List.fold_left Rat.add Rat.zero (Certificate.convex_weights c) in
    Alcotest.(check bool) "weights sum to one" true (Rat.equal total Rat.one)
  | _ -> Alcotest.fail "opposite differences are valid over Γ2"

(* ---------------- backend registry ---------------- *)

let test_backend_registry () =
  Alcotest.(check (list string)) "built-ins registered"
    [ "gamma"; "modular"; "normal" ]
    (Cones.backend_names ());
  Alcotest.(check bool) "duplicate name rejected" true
    (raises_invalid (fun () ->
         Cones.register
           { (Option.get (Cones.find_backend "gamma")) with
             Cones.name = "gamma" }));
  (* A brand-new cone: the non-negative orthant on singleton coordinates,
     i.e. "valid iff no point with all coordinates >= 0 makes every side
     <= -1".  Registering it makes every generic entry point accept it. *)
  Cones.register
    { Cones.name = "test-orthant";
      refutation =
        (fun ~n es ->
          let sparse e =
            List.filter_map
              (fun (s, c) ->
                if Varset.cardinal s = 1 then
                  Some (List.hd (Varset.to_list s), c)
                else None)
              (Linexpr.terms e)
          in
          Problem.make ~tag:"test-orthant/refute" ~num_vars:n
            (List.map (fun e -> Problem.row (sparse e) Simplex.Le (q (-1))) es));
      refuter_of_point = (fun ~n:_ w -> Polymatroid.modular_of_weights w);
      farkas = None };
  let k = Cones.Registered "test-orthant" in
  let h1 = Linexpr.term (vs [ 0 ]) in
  Alcotest.(check bool) "0 <= h(X1) valid on the orthant" true
    (Result.is_ok (Cones.valid k ~n:2 h1));
  Alcotest.(check bool) "0 <= -h(X1) refuted on the orthant" true
    (Result.is_error (Cones.valid k ~n:2 (Linexpr.neg h1)));
  Alcotest.(check bool) "unknown backend rejected" true
    (raises_invalid (fun () ->
         Cones.valid (Cones.Registered "no-such-cone") ~n:1 h1))

let suite =
  [ ("problem canonicalization", `Quick, test_problem_canonical);
    ("problem validation", `Quick, test_problem_validation);
    ("solve cache", `Quick, test_solver_cache);
    ("cone checks share the cache", `Quick, test_cones_share_cache);
    ("stats stages", `Quick, test_stats_stages);
    ("certificate check and tamper", `Quick, test_certificate_check_and_tamper);
    ("multi-side certificate", `Quick, test_certificate_multi_side);
    ("backend registry", `Quick, test_backend_registry) ]
