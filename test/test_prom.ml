(* The Prometheus surface: golden exposition output, the in-tree
   parser/linter agreeing with the encoder (qcheck round-trip over
   canonical snapshots), gauge last-writer-wins semantics, rolling
   windows, and the empty-histogram percentile/mean edge cases. *)

module Obs = Bagcqc_obs
module M = Bagcqc_obs.Metrics
module Prom = Bagcqc_obs.Prom

let hist ~count ~sum ~mn ~mx buckets =
  { M.count; sum; min_value = mn; max_value = mx; buckets }

(* ---------------- golden exposition ---------------- *)

let test_golden () =
  let snap =
    M.snapshot_of
      ~gauges:[ ("serve.queue_depth", 2) ]
      ~counters:[ ("serve.requests", 3) ]
      ~histograms:
        [ ("serve.request_us",
           hist ~count:3 ~sum:74 ~mn:4 ~mx:40 [ (3, 2); (6, 1) ]) ]
      ()
  in
  let expected =
    String.concat "\n"
      [ "# TYPE bagcqc_serve_requests_total counter";
        "bagcqc_serve_requests_total 3";
        "# TYPE bagcqc_serve_queue_depth gauge";
        "bagcqc_serve_queue_depth 2";
        "# TYPE bagcqc_serve_request_us histogram";
        "bagcqc_serve_request_us_bucket{le=\"7\"} 2";
        "bagcqc_serve_request_us_bucket{le=\"63\"} 3";
        "bagcqc_serve_request_us_bucket{le=\"+Inf\"} 3";
        "bagcqc_serve_request_us_sum 74";
        "bagcqc_serve_request_us_count 3";
        "# TYPE bagcqc_rate_per_sec gauge";
        "bagcqc_rate_per_sec{counter=\"serve.requests\",window=\"1m\"} 1.5";
        "" ]
  in
  Alcotest.(check string) "exact exposition"
    expected
    (Prom.encode ~rates:[ ("serve.requests", "1m", 1.5) ] snap)

let test_golden_lints () =
  let snap =
    M.snapshot_of
      ~gauges:[ ("g", 0) ]
      ~counters:[ ("a", 0); ("b", 17) ]
      ~histograms:[ ("h", hist ~count:1 ~sum:5 ~mn:5 ~mx:5 [ (3, 1) ]) ]
      ()
  in
  match Prom.lint (Prom.encode snap) with
  | Ok families -> Alcotest.(check int) "family count" 4 families
  | Error msg -> Alcotest.failf "golden document does not lint: %s" msg

let test_parse_labels () =
  (* Escapes in label values and tolerated timestamps. *)
  let doc =
    "# TYPE x gauge\n\
     x{a=\"q\\\"uo\\\\te\\nnl\",b=\"plain\"} 4 1700000000\n"
  in
  match Prom.parse doc with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok e ->
    (match Prom.find_sample e "x" [ ("b", "plain"); ("a", "q\"uo\\te\nnl") ] with
     | Some v -> Alcotest.(check (float 0.0)) "labelled sample value" 4.0 v
     | None -> Alcotest.fail "labelled sample not found")

let test_lint_rejects () =
  let reject name doc =
    match Prom.lint doc with
    | Ok _ -> Alcotest.failf "lint accepted %s" name
    | Error _ -> ()
  in
  reject "sample without TYPE" "no_type_metric 1\n";
  reject "missing _count"
    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 3\n";
  reject "missing +Inf"
    "# TYPE h histogram\nh_bucket{le=\"7\"} 1\nh_sum 3\nh_count 1\n";
  reject "non-cumulative buckets"
    "# TYPE h histogram\nh_bucket{le=\"7\"} 2\nh_bucket{le=\"63\"} 1\n\
     h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n";
  reject "le not increasing"
    "# TYPE h histogram\nh_bucket{le=\"63\"} 1\nh_bucket{le=\"7\"} 1\n\
     h_bucket{le=\"+Inf\"} 1\nh_sum 3\nh_count 1\n";
  reject "+Inf disagrees with _count"
    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 3\nh_count 2\n";
  reject "duplicate TYPE" "# TYPE x gauge\n# TYPE x counter\nx 1\n"

(* ---------------- qcheck: encoder against the parser ---------------- *)

(* Canonical snapshots with gauges; histogram count always equals the
   bucket total, as live collection guarantees.  Name pools are disjoint
   per kind — in the registry, one obs name never denotes two metric
   kinds (a gauge "x" and a histogram "x" would collide on the same
   exposition family, which the linter rightly rejects). *)
let arb_prom_snapshot =
  let open QCheck.Gen in
  let cname = oneofl [ "ca"; "cb.cc"; "cd_us"; "c:e" ] in
  let hname = oneofl [ "ha"; "hb.cc"; "hd_us" ] in
  let gname = oneofl [ "ga"; "gb.cc"; "gd_us" ] in
  let hist =
    let* pairs = list_size (int_range 1 4) (pair (int_range 0 10) (int_range 1 5)) in
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 pairs in
    let* sum = int_range 0 500 in
    return (hist ~count:total ~sum ~mn:0 ~mx:1024 pairs)
  in
  let snap =
    let* cs = list_size (int_range 0 3) (pair cname (int_range 0 1000)) in
    let* hs = list_size (int_range 0 3) (pair hname hist) in
    let* gs = list_size (int_range 0 3) (pair gname (int_range (-50) 50)) in
    return (M.snapshot_of ~gauges:gs ~counters:cs ~histograms:hs ())
  in
  QCheck.make ~print:(fun s -> Prom.encode s) snap

let prop_encode_lints =
  QCheck.Test.make ~name:"encoded snapshots always lint" ~count:300
    arb_prom_snapshot (fun s ->
      match Prom.lint (Prom.encode s) with Ok _ -> true | Error _ -> false)

let prop_roundtrip =
  QCheck.Test.make ~name:"parse recovers every encoded series" ~count:300
    arb_prom_snapshot (fun s ->
      match Prom.parse (Prom.encode s) with
      | Error _ -> false
      | Ok e ->
        List.for_all
          (fun (n, v) ->
            Prom.find_sample e (Prom.metric_name n ^ "_total") []
            = Some (float_of_int v))
          s.M.counters
        && List.for_all
             (fun (n, v) ->
               Prom.find_sample e (Prom.metric_name n) []
               = Some (float_of_int v))
             s.M.gauges
        && List.for_all
             (fun (n, h) ->
               let base = Prom.metric_name n in
               Prom.find_sample e (base ^ "_count") []
               = Some (float_of_int h.M.count)
               && Prom.find_sample e (base ^ "_sum") []
                  = Some (float_of_int h.M.sum)
               && Prom.find_sample e (base ^ "_bucket") [ ("le", "+Inf") ]
                  = Some (float_of_int h.M.count))
             s.M.histograms)

(* ---------------- gauges: last writer wins ---------------- *)

let test_gauge_lww () =
  let g = M.gauge "test.prom.lww" in
  M.set_gauge g 5;
  M.set_gauge g 3;
  Alcotest.(check int) "last write wins" 3 (M.gauge_value g);
  let snap = M.snapshot () in
  Alcotest.(check (option int)) "snapshot carries the last value" (Some 3)
    (List.assoc_opt "test.prom.lww" snap.M.gauges)

let test_gauge_merge_right_bias () =
  let a = M.snapshot_of ~gauges:[ ("g", 1); ("only_a", 7) ] ~counters:[] ~histograms:[] () in
  let b = M.snapshot_of ~gauges:[ ("g", 2) ] ~counters:[] ~histograms:[] () in
  let m = M.merge a b in
  Alcotest.(check (option int)) "shared gauge takes b (newer) side" (Some 2)
    (List.assoc_opt "g" m.M.gauges);
  Alcotest.(check (option int)) "a-only gauge survives" (Some 7)
    (List.assoc_opt "only_a" m.M.gauges)

(* ---------------- histograms: empty-distribution edges ---------------- *)

let test_empty_histogram_edges () =
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "empty percentile p=%.2f" p)
        0
        (M.percentile M.empty_hist p))
    [ 0.0; 0.5; 0.99; 1.0 ];
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (M.mean M.empty_hist);
  (* One observation: every percentile and the mean collapse onto it. *)
  let one = hist ~count:1 ~sum:42 ~mn:42 ~mx:42 [ (M.bucket_of 42, 1) ] in
  Alcotest.(check int) "single-sample p50" 42 (M.percentile one 0.5);
  Alcotest.(check int) "single-sample p99" 42 (M.percentile one 0.99);
  Alcotest.(check (float 0.0)) "single-sample mean" 42.0 (M.mean one)

(* ---------------- rolling windows ---------------- *)

let test_window_delta () =
  Obs.Window.reset ();
  let c = M.counter "test.prom.window" in
  let w = Obs.Window.track "test.prom.window" in
  Alcotest.(check string) "window name" "test.prom.window" (Obs.Window.name w);
  Obs.Window.tick_all ();
  M.add c 7;
  let d, _covered = Obs.Window.delta w ~seconds:60.0 in
  Alcotest.(check int) "delta sees movement since the tick" 7 d;
  (* A window with no samples yet reports zero coverage, not garbage. *)
  let fresh = Obs.Window.track "test.prom.window_fresh" in
  Alcotest.(check (pair int (float 0.0))) "untouched window" (0, 0.0)
    (Obs.Window.delta fresh ~seconds:60.0);
  Alcotest.(check (float 0.0)) "rate under coverage gap is 0" 0.0
    (Obs.Window.rate fresh ~seconds:60.0);
  Alcotest.(check bool) "track is find-or-create" true
    (Obs.Window.track "test.prom.window" == w)

let suite =
  [ Alcotest.test_case "golden exposition" `Quick test_golden;
    Alcotest.test_case "golden document lints" `Quick test_golden_lints;
    Alcotest.test_case "label escapes and timestamps" `Quick test_parse_labels;
    Alcotest.test_case "lint rejects invalid documents" `Quick test_lint_rejects;
    Alcotest.test_case "gauge last-writer-wins" `Quick test_gauge_lww;
    Alcotest.test_case "gauge merge right bias" `Quick test_gauge_merge_right_bias;
    Alcotest.test_case "empty-histogram percentiles" `Quick
      test_empty_histogram_edges;
    Alcotest.test_case "window delta" `Quick test_window_delta ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_encode_lints; prop_roundtrip ]
