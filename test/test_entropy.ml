(* Tests for the entropy substrate: Varset, Linexpr, Cexpr, Polymatroid,
   Cones, Normalize, Maxii.  Includes the paper's Examples 3.8, B.4, C.4
   (Figure 1) and a property-test of Theorem 3.6 itself. *)

open Bagcqc_num
open Bagcqc_entropy

let q = Rat.of_int
let qf = Rat.of_ints
let rt = Alcotest.testable Rat.pp Rat.equal
let vs = Varset.of_list

(* ------------------------------------------------------------------ *)
(* Varset                                                              *)
(* ------------------------------------------------------------------ *)

let test_varset_basic () =
  Alcotest.(check int) "cardinal full 5" 5 (Varset.cardinal (Varset.full 5));
  Alcotest.(check int) "cardinal empty" 0 (Varset.cardinal Varset.empty);
  Alcotest.(check (list int)) "to_list" [ 0; 2; 4 ] (Varset.to_list (vs [ 4; 0; 2 ]));
  Alcotest.(check bool) "subset yes" true (Varset.subset (vs [ 1 ]) (vs [ 0; 1 ]));
  Alcotest.(check bool) "subset no" false (Varset.subset (vs [ 2 ]) (vs [ 0; 1 ]));
  Alcotest.(check bool) "mem" true (Varset.mem 3 (vs [ 3 ]));
  Alcotest.(check int) "union" 7 (Varset.union (vs [ 0; 1 ]) (vs [ 2 ]));
  Alcotest.(check int) "inter" 2 (Varset.inter (vs [ 0; 1 ]) (vs [ 1; 2 ]));
  Alcotest.(check int) "diff" 1 (Varset.diff (vs [ 0; 1 ]) (vs [ 1; 2 ]))

let test_varset_subsets () =
  let count = ref 0 in
  Varset.iter_subsets (vs [ 0; 2; 5 ]) (fun _ -> incr count);
  Alcotest.(check int) "8 subsets of a 3-set" 8 !count;
  let supers = ref [] in
  Varset.iter_supersets ~n:3 (vs [ 0 ]) (fun s -> supers := s :: !supers);
  Alcotest.(check int) "4 supersets of {0} in [3]" 4 (List.length !supers);
  List.iter
    (fun s -> Alcotest.(check bool) "superset contains 0" true (Varset.mem 0 s))
    !supers

let prop_subset_enum_complete =
  QCheck.Test.make ~name:"varset: subset enumeration is exhaustive" ~count:200
    (QCheck.int_range 0 1023)
    (fun mask ->
      let seen = Hashtbl.create 16 in
      Varset.iter_subsets mask (fun s ->
          if Hashtbl.mem seen s then failwith "duplicate";
          Hashtbl.add seen s ());
      Hashtbl.length seen = 1 lsl Varset.cardinal mask
      && Hashtbl.fold (fun s () acc -> acc && Varset.subset s mask) seen true)

(* ------------------------------------------------------------------ *)
(* Linexpr / Cexpr                                                     *)
(* ------------------------------------------------------------------ *)

let test_linexpr_algebra () =
  let e1 = Linexpr.term (vs [ 0; 1 ]) in
  let e2 = Linexpr.term ~coeff:(q 2) (vs [ 1 ]) in
  let s = Linexpr.add e1 e2 in
  Alcotest.check rt "coeff 01" Rat.one (Linexpr.coeff s (vs [ 0; 1 ]));
  Alcotest.check rt "coeff 1" (q 2) (Linexpr.coeff s (vs [ 1 ]));
  Alcotest.check rt "coeff absent" Rat.zero (Linexpr.coeff s (vs [ 0 ]));
  Alcotest.(check bool) "cancellation" true
    (Linexpr.is_zero (Linexpr.sub s s));
  (* cond: h(Y|X) = h(YX) - h(X) *)
  let c = Linexpr.cond (vs [ 1 ]) (vs [ 0 ]) in
  Alcotest.check rt "cond +" Rat.one (Linexpr.coeff c (vs [ 0; 1 ]));
  Alcotest.check rt "cond -" Rat.minus_one (Linexpr.coeff c (vs [ 0 ]));
  (* h(∅) is never stored *)
  let m = Linexpr.mutual (vs [ 0 ]) (vs [ 1 ]) Varset.empty in
  Alcotest.(check int) "mutual support size" 3 (List.length (Linexpr.support m))

let test_linexpr_eval_rename () =
  let h x = q (Varset.cardinal x) in
  (* |X| is (the rank function of the free matroid) a modular h. *)
  let e =
    Linexpr.sum
      [ Linexpr.term ~coeff:(q 3) (vs [ 0 ]);
        Linexpr.term ~coeff:(q 4) (vs [ 1; 2 ]);
        Linexpr.term ~coeff:(q (-6)) (vs [ 2 ]) ]
  in
  Alcotest.check rt "eval" (q 5) (Linexpr.eval h e);
  (* Example 4.1: rename Y1↦X1, Y2,Y3↦X2 on 3h(Y1)+4h(Y2Y3)-6h(Y3)
     gives 3h(X1)+4h(X2)-6h(X2) = 3h(X1)-2h(X2). *)
  let e' = Linexpr.rename (fun i -> if i = 0 then 0 else 1) e in
  Alcotest.check rt "rename merge +" (q 3) (Linexpr.coeff e' (vs [ 0 ]));
  Alcotest.check rt "rename merge -" (q (-2)) (Linexpr.coeff e' (vs [ 1 ]))

let test_cexpr () =
  let e =
    Cexpr.sum
      [ Cexpr.entropy (vs [ 0; 1 ]);
        Cexpr.part (vs [ 1 ]) (vs [ 0 ]) ]
  in
  Alcotest.(check bool) "simple" true (Cexpr.is_simple e);
  Alcotest.(check bool) "not unconditioned" false (Cexpr.is_unconditioned e);
  let flat = Cexpr.to_linexpr e in
  (* h(X1X2) + h(X2|X1) = 2h(X1X2) - h(X1) *)
  Alcotest.check rt "flat 01" (q 2) (Linexpr.coeff flat (vs [ 0; 1 ]));
  Alcotest.check rt "flat 0" Rat.minus_one (Linexpr.coeff flat (vs [ 0 ]));
  (* |x| = 2 conditioning is neither simple nor unconditioned *)
  let e2 = Cexpr.part (vs [ 2 ]) (vs [ 0; 1 ]) in
  Alcotest.(check bool) "not simple" false (Cexpr.is_simple e2);
  Alcotest.check_raises "negative coeff"
    (Invalid_argument "Cexpr.part: negative coefficient") (fun () ->
      ignore (Cexpr.part ~coeff:Rat.minus_one (vs [ 0 ]) Varset.empty))

(* ------------------------------------------------------------------ *)
(* Polymatroid                                                         *)
(* ------------------------------------------------------------------ *)

let test_step_function () =
  (* Paper Sec. 3.2: h_W(X) = 0 if X ⊆ W else 1. *)
  let h = Polymatroid.step 3 (vs [ 0 ]) in
  Alcotest.check rt "inside W" Rat.zero (Polymatroid.value h (vs [ 0 ]));
  Alcotest.check rt "outside W" Rat.one (Polymatroid.value h (vs [ 1 ]));
  Alcotest.check rt "mixed" Rat.one (Polymatroid.value h (vs [ 0; 1 ]));
  Alcotest.(check bool) "step is polymatroid" true (Polymatroid.is_polymatroid h);
  Alcotest.(check bool) "step is normal" true (Polymatroid.is_normal h);
  Alcotest.check_raises "full W rejected"
    (Invalid_argument "Polymatroid.step: W must be proper") (fun () ->
      ignore (Polymatroid.step 2 (Varset.full 2)))

let test_parity_example_b4 () =
  (* Example B.4: h(X)=h(Y)=h(Z)=1, all pairs and triple = 2. *)
  let h = Polymatroid.parity in
  Alcotest.check rt "h(X)" Rat.one (Polymatroid.value h (vs [ 0 ]));
  Alcotest.check rt "h(XY)" (q 2) (Polymatroid.value h (vs [ 0; 1 ]));
  Alcotest.check rt "h(XYZ)" (q 2) (Polymatroid.value h (Varset.full 3));
  Alcotest.(check bool) "parity is polymatroid" true (Polymatroid.is_polymatroid h);
  (* Corollary B.8: parity is not normal. *)
  Alcotest.(check bool) "parity not normal" false (Polymatroid.is_normal h);
  Alcotest.(check bool) "no decomposition" true
    (Polymatroid.normal_decomposition h = None);
  (* Möbius inverse table from Appendix B:
     g(∅)=+1 g(X)=g(Y)=g(Z)=-1 g(pairs)=0 g(XYZ)=+2. *)
  Alcotest.check rt "g(empty)" Rat.one (Polymatroid.mobius h Varset.empty);
  Alcotest.check rt "g(X)" Rat.minus_one (Polymatroid.mobius h (vs [ 0 ]));
  Alcotest.check rt "g(XY)" Rat.zero (Polymatroid.mobius h (vs [ 0; 1 ]));
  Alcotest.check rt "g(XYZ)" (q 2) (Polymatroid.mobius h (Varset.full 3))

let test_modular () =
  let h = Polymatroid.modular_of_weights [| q 1; q 2; q 3 |] in
  Alcotest.check rt "h(02)" (q 4) (Polymatroid.value h (vs [ 0; 2 ]));
  Alcotest.(check bool) "modular" true (Polymatroid.is_modular h);
  Alcotest.(check bool) "modular is normal" true (Polymatroid.is_normal h);
  Alcotest.(check bool) "modular is polymatroid" true (Polymatroid.is_polymatroid h);
  Alcotest.(check bool) "parity not modular" false
    (Polymatroid.is_modular Polymatroid.parity)

let test_mobius_roundtrip () =
  let h = Polymatroid.parity in
  let h' = Polymatroid.of_mobius 3 (Polymatroid.mobius h) in
  Alcotest.(check bool) "mobius roundtrip" true (Polymatroid.equal h h')

let test_normal_decomposition () =
  let coeffs = [ (vs [ 0 ], qf 3 2); (vs [ 1; 2 ], q 2); (Varset.empty, Rat.one) ] in
  let h = Polymatroid.normal_of_steps 3 coeffs in
  Alcotest.(check bool) "normal" true (Polymatroid.is_normal h);
  (match Polymatroid.normal_decomposition h with
   | None -> Alcotest.fail "expected decomposition"
   | Some d ->
     let h' = Polymatroid.normal_of_steps 3 d in
     Alcotest.(check bool) "decomposition reconstructs" true (Polymatroid.equal h h'))

let test_cond_mutual () =
  let h = Polymatroid.parity in
  (* Functional dependency XY -> Z: h(Z|XY) = 0. *)
  Alcotest.check rt "h(Z|XY)=0" Rat.zero (Polymatroid.cond h (vs [ 2 ]) (vs [ 0; 1 ]));
  (* Pairwise independence: I(X;Y) = 0. *)
  Alcotest.check rt "I(X;Y)=0" Rat.zero
    (Polymatroid.mutual h (vs [ 0 ]) (vs [ 1 ]) Varset.empty);
  (* But I(X;Y|Z) = 1. *)
  Alcotest.check rt "I(X;Y|Z)=1" Rat.one
    (Polymatroid.mutual h (vs [ 0 ]) (vs [ 1 ]) (vs [ 2 ]))

(* Sums of truncated modular functions: a rich polymatroid generator
   (includes parity = trunc(2, 1+1+1)). *)
let arb_polymatroid n =
  let gen =
    QCheck.Gen.(
      let* pieces =
        list_size (int_range 1 3)
          (pair (int_range 1 6) (list_repeat n (int_range 0 4)))
      in
      let trunc (cap, ws) =
        let ws = Array.of_list (List.map q ws) in
        Polymatroid.make n (fun x ->
            let s =
              Varset.fold_elements (fun i acc -> Rat.add acc ws.(i)) x Rat.zero
            in
            Rat.min (q cap) s)
      in
      return (List.fold_left (fun acc p -> Polymatroid.add acc (trunc p)) (Polymatroid.zero n) pieces))
  in
  QCheck.make ~print:(Format.asprintf "%a" (Polymatroid.pp ())) gen

let prop_truncated_modular_is_polymatroid =
  QCheck.Test.make ~name:"sum of truncated modulars is a polymatroid" ~count:100
    (arb_polymatroid 4) Polymatroid.is_polymatroid

(* ------------------------------------------------------------------ *)
(* Cones: Shannon validity                                             *)
(* ------------------------------------------------------------------ *)

let i_pair a b x = Linexpr.mutual (vs [ a ]) (vs [ b ]) (vs x)

let test_shannon_basic () =
  (* Submodularity h(1)+h(2) >= h(12) is Shannon. *)
  let e =
    Linexpr.sub
      (Linexpr.add (Linexpr.term (vs [ 0 ])) (Linexpr.term (vs [ 1 ])))
      (Linexpr.term (vs [ 0; 1 ]))
  in
  Alcotest.(check bool) "submodularity" true (Cones.valid_shannon ~n:2 e);
  (* Monotonicity composite h(123) >= h(1). *)
  let e2 = Linexpr.sub (Linexpr.term (Varset.full 3)) (Linexpr.term (vs [ 0 ])) in
  Alcotest.(check bool) "monotonicity" true (Cones.valid_shannon ~n:3 e2);
  (* h(2) - h(1) >= 0 is false. *)
  let e3 = Linexpr.sub (Linexpr.term (vs [ 1 ])) (Linexpr.term (vs [ 0 ])) in
  Alcotest.(check bool) "false inequality" false (Cones.valid_shannon ~n:2 e3)

let test_shannon_certificate () =
  let e =
    Linexpr.sub
      (Linexpr.add (Linexpr.term (vs [ 0 ])) (Linexpr.term (vs [ 1 ])))
      (Linexpr.term (vs [ 0; 1 ]))
  in
  (match Cones.shannon_certificate ~n:2 e with
   | None -> Alcotest.fail "expected certificate"
   | Some cert ->
     let recombined =
       Linexpr.sum (List.map (fun (el, l) -> Linexpr.scale l el) cert)
     in
     Alcotest.(check bool) "certificate recombines exactly" true
       (Linexpr.equal recombined e));
  let bad = Linexpr.sub (Linexpr.term (vs [ 1 ])) (Linexpr.term (vs [ 0 ])) in
  Alcotest.(check bool) "no certificate for invalid" true
    (Cones.shannon_certificate ~n:2 bad = None)

let test_zhang_yeung_not_shannon () =
  (* Zhang-Yeung 1998: 2I(C;D) <= I(A;B) + I(A;CD) + 3I(C;D|A) + I(C;D|B)
     is valid over Γ*4 but NOT a Shannon inequality; the Γ4 test must
     refute it, and the refuting polymatroid must not be normal
     (it is not entropic). Variables: A=0 B=1 C=2 D=3. *)
  let lhs = Linexpr.scale (q 2) (i_pair 2 3 []) in
  let rhs =
    Linexpr.sum
      [ i_pair 0 1 [];
        Linexpr.mutual (vs [ 0 ]) (vs [ 2; 3 ]) Varset.empty;
        Linexpr.scale (q 3) (i_pair 2 3 [ 0 ]);
        i_pair 2 3 [ 1 ] ]
  in
  let e = Linexpr.sub rhs lhs in
  (match Cones.valid Cones.Gamma ~n:4 e with
   | Ok () -> Alcotest.fail "Zhang-Yeung must not be Shannon"
   | Error h ->
     Alcotest.(check bool) "witness is a polymatroid" true
       (Polymatroid.is_polymatroid h);
     Alcotest.(check bool) "witness violates" true
       (Rat.sign (Polymatroid.eval h e) < 0));
  (* But it does hold over the normal cone (normal functions are entropic). *)
  Alcotest.(check bool) "valid over Nn" true
    (Result.is_ok (Cones.valid Cones.Normal ~n:4 e))

let test_ingleton_unknown_path () =
  (* Ingleton: I(A;B) <= I(A;B|C) + I(A;B|D) + I(C;D): fails over Γ*4 and
     over Γ4, but holds over Nn — exercising Maxii's Unknown verdict. *)
  let e =
    Linexpr.sub
      (Linexpr.sum [ i_pair 0 1 [ 2 ]; i_pair 0 1 [ 3 ]; i_pair 2 3 [] ])
      (i_pair 0 1 [])
  in
  let t = Maxii.general ~n:4 [ e ] in
  (match Maxii.decide t with
   | Maxii.Unknown h ->
     Alcotest.(check bool) "refuter is polymatroid" true (Polymatroid.is_polymatroid h);
     Alcotest.(check bool) "refuter not normal" false (Polymatroid.is_normal h)
   | Maxii.Valid _ -> Alcotest.fail "Ingleton is not valid over Γ4"
   | Maxii.Invalid _ -> Alcotest.fail "Ingleton holds over N4, cannot be Invalid")

let test_example_3_8 () =
  (* Example 3.8: h(X1X2X3) <= max(E1, E2, E3) with
     E1 = h(X1X2)+h(X2|X1), E2 = h(X2X3)+h(X3|X2), E3 = h(X1X3)+h(X1|X3). *)
  let e1 = Cexpr.add (Cexpr.entropy (vs [ 0; 1 ])) (Cexpr.part (vs [ 1 ]) (vs [ 0 ])) in
  let e2 = Cexpr.add (Cexpr.entropy (vs [ 1; 2 ])) (Cexpr.part (vs [ 2 ]) (vs [ 1 ])) in
  let e3 = Cexpr.add (Cexpr.entropy (vs [ 0; 2 ])) (Cexpr.part (vs [ 0 ]) (vs [ 2 ])) in
  let t = Maxii.conditional ~n:3 ~q:Rat.one [ e1; e2; e3 ] in
  Alcotest.(check bool) "simple shape" true (Maxii.shape t = Maxii.Simple);
  (match Maxii.decide t with
   | Maxii.Valid cert ->
     Alcotest.(check bool) "certificate proves exactly these sides" true
       (Certificate.proves cert ~n:3 (Maxii.sides t))
   | _ -> Alcotest.fail "Example 3.8 inequality must be valid");
  (* Any single side alone is NOT sufficient: h(X1X2X3) <= E1 fails. *)
  let t1 = Maxii.conditional ~n:3 ~q:Rat.one [ e1 ] in
  (match Maxii.decide t1 with
   | Maxii.Invalid h ->
     Alcotest.(check bool) "normal refuter" true (Polymatroid.is_normal h);
     let side = List.hd (Maxii.sides t1) in
     Alcotest.(check bool) "refutes" true (Rat.sign (Polymatroid.eval h side) < 0)
   | _ -> Alcotest.fail "single side must be refuted with a normal witness")

let test_max_needs_all_sides () =
  (* 0 <= max(h(1)-h(2), h(2)-h(1)) is valid over every cone, while each
     side alone is invalid: the genuinely "max" part of Max-IIP. *)
  let d12 = Linexpr.sub (Linexpr.term (vs [ 0 ])) (Linexpr.term (vs [ 1 ])) in
  let t = Maxii.general ~n:2 [ d12; Linexpr.neg d12 ] in
  (match Maxii.decide t with
   | Maxii.Valid cert ->
     Alcotest.(check bool) "certificate proves exactly these sides" true
       (Certificate.proves cert ~n:2 (Maxii.sides t))
   | _ -> Alcotest.fail "max of opposite differences is valid");
  (match Maxii.decide (Maxii.general ~n:2 [ d12 ]) with
   | Maxii.Invalid _ -> ()
   | _ -> Alcotest.fail "one side alone is invalid")

(* Theorem 3.6 (ii) as a property: for random SIMPLE conditional
   max-inequalities, validity over Nn coincides with validity over Γn. *)
let prop_theorem_3_6 =
  let n = 3 in
  let gen_cexpr =
    QCheck.Gen.(
      let gen_part =
        let* y = int_range 1 ((1 lsl n) - 1) in
        let* x = oneof [ return Varset.empty; map Varset.singleton (int_range 0 (n - 1)) ] in
        return (Cexpr.part (Varset.diff y x) x)
      in
      let* parts = list_size (int_range 1 3) gen_part in
      return (Cexpr.sum parts))
  in
  let gen =
    QCheck.Gen.(
      let* k = int_range 1 3 in
      let* sides = list_repeat k gen_cexpr in
      let* qv = int_range 1 2 in
      return (Maxii.conditional ~n ~q:(q qv) sides))
  in
  QCheck.Test.make
    ~name:"Theorem 3.6(ii): simple max-inequalities are essentially Shannon"
    ~count:150
    (QCheck.make ~print:(Format.asprintf "%a" (Maxii.pp ())) gen)
    (fun t ->
      QCheck.assume (Maxii.shape t = Maxii.Simple || Maxii.shape t = Maxii.Unconditioned);
      Result.is_ok (Maxii.valid_over Cones.Normal t)
      = Result.is_ok (Maxii.valid_over Cones.Gamma t))

(* Soundness of counterexamples: whenever a cone check fails, the witness
   really is in the cone and really violates all sides. *)
let prop_counterexample_sound =
  let n = 3 in
  let gen_expr =
    QCheck.Gen.(
      let* terms =
        list_size (int_range 1 4)
          (pair (int_range 1 ((1 lsl n) - 1)) (int_range (-3) 3))
      in
      return
        (Linexpr.sum
           (List.map (fun (m, c) -> Linexpr.term ~coeff:(q c) m) terms)))
  in
  let gen = QCheck.Gen.(list_size (int_range 1 2) gen_expr) in
  QCheck.Test.make ~name:"cone counterexamples are sound" ~count:100
    (QCheck.make
       ~print:(fun es -> String.concat " | " (List.map (Format.asprintf "%a" (Linexpr.pp ())) es))
       gen)
    (fun es ->
      List.for_all
        (fun cone ->
          match Cones.valid_max cone ~n es with
          | Ok () -> true
          | Error h ->
            Polymatroid.is_polymatroid h
            && (match cone with
                | Cones.Gamma | Cones.Registered _ -> true
                | Cones.Normal -> Polymatroid.is_normal h
                | Cones.Modular -> Polymatroid.is_modular h)
            && List.for_all (fun e -> Rat.sign (Polymatroid.eval h e) < 0) es)
        [ Cones.Gamma; Cones.Normal; Cones.Modular ])

(* Cone containment Mn ⊆ Nn ⊆ Γn at the level of validity:
   valid over Γn ⇒ valid over Nn ⇒ valid over Mn. *)
let prop_cone_chain =
  let n = 3 in
  let gen_expr =
    QCheck.Gen.(
      let* terms =
        list_size (int_range 1 4)
          (pair (int_range 1 ((1 lsl n) - 1)) (int_range (-3) 3))
      in
      return
        (Linexpr.sum
           (List.map (fun (m, c) -> Linexpr.term ~coeff:(q c) m) terms)))
  in
  QCheck.Test.make ~name:"validity is monotone along Mn ⊆ Nn ⊆ Γn" ~count:100
    (QCheck.make ~print:(Format.asprintf "%a" (Linexpr.pp ())) gen_expr)
    (fun e ->
      let v cone = Result.is_ok (Cones.valid cone ~n e) in
      (not (v Cones.Gamma) || v Cones.Normal)
      && (not (v Cones.Normal) || v Cones.Modular))

(* ------------------------------------------------------------------ *)
(* Normalize: Lemma 3.7 / Theorem C.3 / Figure 1                       *)
(* ------------------------------------------------------------------ *)

let test_figure_1 () =
  (* Example C.4 / Figure 1: normalizing the parity function gives
     h'(1)=h'(2)=h'(3)=1, h'(12)=1, h'(13)=h'(23)=2, h'(123)=2. *)
  let h' = Normalize.normalize Polymatroid.parity in
  let v l = Polymatroid.value h' (vs l) in
  Alcotest.check rt "h'(1)" Rat.one (v [ 0 ]);
  Alcotest.check rt "h'(2)" Rat.one (v [ 1 ]);
  Alcotest.check rt "h'(3)" Rat.one (v [ 2 ]);
  Alcotest.check rt "h'(12)" Rat.one (v [ 0; 1 ]);
  Alcotest.check rt "h'(13)" (q 2) (v [ 0; 2 ]);
  Alcotest.check rt "h'(23)" (q 2) (v [ 1; 2 ]);
  Alcotest.check rt "h'(123)" (q 2) (v [ 0; 1; 2 ]);
  Alcotest.(check bool) "h' is normal" true (Polymatroid.is_normal h');
  (* Möbius inverse of h' per Figure 1 (bottom-left): g'(3) = -1,
     g'(12) = -1, g'(123) = +2, rest 0. *)
  Alcotest.check rt "g'(3)" Rat.minus_one (Polymatroid.mobius h' (vs [ 2 ]));
  Alcotest.check rt "g'(12)" Rat.minus_one (Polymatroid.mobius h' (vs [ 0; 1 ]));
  Alcotest.check rt "g'(123)" (q 2) (Polymatroid.mobius h' (Varset.full 3));
  Alcotest.check rt "g'(1)" Rat.zero (Polymatroid.mobius h' (vs [ 0 ]))

let test_modularize_basic () =
  let h = Polymatroid.parity in
  let h' = Normalize.modularize h in
  Alcotest.(check bool) "modular" true (Polymatroid.is_modular h');
  Alcotest.(check bool) "dominated" true (Polymatroid.dominates h h');
  Alcotest.check rt "top preserved"
    (Polymatroid.value h (Varset.full 3))
    (Polymatroid.value h' (Varset.full 3))

let prop_normalize_lemma_3_7 =
  QCheck.Test.make ~name:"Lemma 3.7(2): normalize gives normal h' ≤ h, same top & singletons"
    ~count:60 (arb_polymatroid 4)
    (fun h ->
      let h' = Normalize.normalize h in
      let n = Polymatroid.n_vars h in
      Polymatroid.is_polymatroid h'
      && Polymatroid.is_normal h'
      && Polymatroid.dominates h h'
      && Rat.equal (Polymatroid.value h (Varset.full n)) (Polymatroid.value h' (Varset.full n))
      && List.for_all
           (fun i ->
             Rat.equal
               (Polymatroid.value h (Varset.singleton i))
               (Polymatroid.value h' (Varset.singleton i)))
           (Varset.to_list (Varset.full n)))

let prop_modularize_lemma_3_7 =
  QCheck.Test.make ~name:"Lemma 3.7(1): modularize gives modular h' ≤ h, same top"
    ~count:60 (arb_polymatroid 4)
    (fun h ->
      let h' = Normalize.modularize h in
      let n = Polymatroid.n_vars h in
      Polymatroid.is_modular h'
      && Polymatroid.dominates h h'
      && Rat.equal (Polymatroid.value h (Varset.full n)) (Polymatroid.value h' (Varset.full n)))

(* ------------------------------------------------------------------ *)
(* Lazy Shannon engine: membership, symmetry, lazy-vs-full (ISSUE 9)   *)
(* ------------------------------------------------------------------ *)

let with_engine eng f =
  let old = !Cones.default_engine in
  Cones.default_engine := eng;
  Fun.protect ~finally:(fun () -> Cones.default_engine := old) f

let test_is_elemental_membership () =
  let n = 4 in
  let fam = Elemental.list ~n in
  Alcotest.(check int) "family size n=4" (Elemental.desc_count ~n)
    (List.length fam);
  List.iter
    (fun e ->
      Alcotest.(check bool) "every family member is elemental" true
        (Elemental.is_elemental ~n e))
    fam;
  Alcotest.(check bool) "plain term is not elemental" false
    (Elemental.is_elemental ~n (Linexpr.term (vs [ 0 ])));
  Alcotest.(check bool) "scaled elemental is not elemental" false
    (Elemental.is_elemental ~n (Linexpr.scale (q 2) (List.hd fam)));
  Alcotest.(check bool) "I(01;2) is valid but not elemental" false
    (Elemental.is_elemental ~n
       (Linexpr.mutual (vs [ 0; 1 ]) (vs [ 2 ]) Varset.empty));
  Alcotest.(check bool) "I(0;1) is elemental" true
    (Elemental.is_elemental ~n (i_pair 0 1 []))

let test_symmetry_canonicalization () =
  let n = 3 in
  (* I(0;1) and I(1;2) are renamings of each other: same canonical form. *)
  let e1 = i_pair 0 1 [] and e2 = i_pair 1 2 [] in
  let a1 = Symmetry.analyze ~n [ e1 ] and a2 = Symmetry.analyze ~n [ e2 ] in
  Alcotest.(check bool) "orbit members share a canonical instance" true
    (List.equal Linexpr.equal a1.Symmetry.canonical a2.Symmetry.canonical);
  Alcotest.(check bool) "to_canon maps the instance to its canonical form"
    true
    (List.equal Linexpr.equal
       (List.map (Symmetry.apply_expr a1.Symmetry.to_canon) [ e1 ])
       a1.Symmetry.canonical);
  (* The stabilizer fixes the canonical multiset and contains id. *)
  Alcotest.(check bool) "stabilizer contains the identity" true
    (List.exists Symmetry.is_identity a1.Symmetry.stabilizer);
  List.iter
    (fun s ->
      Alcotest.(check bool) "stabilizer element fixes the canonical form"
        true
        (List.equal Linexpr.equal
           (List.map (Symmetry.apply_expr s) a1.Symmetry.canonical)
           a1.Symmetry.canonical))
    a1.Symmetry.stabilizer;
  (* I(i;j) fixes the pair {i,j} setwise: stabilizer has order 2 here. *)
  Alcotest.(check int) "stabilizer order of I(i;j) at n=3" 2
    (List.length a1.Symmetry.stabilizer)

(* The decisions the two engines must agree on: a valid submodularity,
   a valid monotonicity, Zhang-Yeung (refuted over Γ4) and Ingleton
   (refuted over Γ4). *)
let lazy_vs_full_instances () =
  let submod =
    Linexpr.sub
      (Linexpr.add (Linexpr.term (vs [ 0 ])) (Linexpr.term (vs [ 1 ])))
      (Linexpr.term (vs [ 0; 1 ]))
  in
  let mono =
    Linexpr.sub (Linexpr.term (vs [ 0; 1; 2; 3 ])) (Linexpr.term (vs [ 0; 2 ]))
  in
  let zy =
    Linexpr.sub
      (Linexpr.sum
         [ i_pair 0 1 [];
           Linexpr.mutual (vs [ 0 ]) (vs [ 2; 3 ]) Varset.empty;
           Linexpr.scale (q 3) (i_pair 2 3 [ 0 ]);
           i_pair 2 3 [ 1 ] ])
      (Linexpr.scale (q 2) (i_pair 2 3 []))
  in
  let ingleton =
    Linexpr.sub
      (Linexpr.sum [ i_pair 0 1 [ 2 ]; i_pair 0 1 [ 3 ]; i_pair 2 3 [] ])
      (i_pair 0 1 [])
  in
  [ (submod, true); (mono, true); (zy, false); (ingleton, false) ]

let test_lazy_engine_agrees_with_full () =
  List.iter
    (fun (e, expected) ->
      let lz = with_engine Cones.Lazy (fun () -> Cones.valid_shannon ~n:4 e) in
      let fl = with_engine Cones.Full (fun () -> Cones.valid_shannon ~n:4 e) in
      Alcotest.(check bool) "lazy verdict" expected lz;
      Alcotest.(check bool) "full verdict" expected fl)
    (lazy_vs_full_instances ())

let test_lazy_certificates_check () =
  List.iter
    (fun (e, expected) ->
      match
        with_engine Cones.Lazy (fun () ->
            Cones.valid_max_cert Cones.Gamma ~n:4 [ e ])
      with
      | Ok (Some cert) ->
        Alcotest.(check bool) "instance expected valid" true expected;
        Alcotest.(check bool) "lazy certificate passes Certificate.check"
          true (Certificate.check cert)
      | Ok None -> Alcotest.fail "Gamma must produce certificates"
      | Error h ->
        Alcotest.(check bool) "instance expected refuted" false expected;
        Alcotest.(check bool) "refuter is a polymatroid" true
          (Polymatroid.is_polymatroid h);
        Alcotest.(check bool) "refuter violates the inequality" true
          (Rat.sign (Polymatroid.eval h e) < 0))
    (lazy_vs_full_instances ())

let test_valid_shannon_many_dedup () =
  let instances = List.map fst (lazy_vs_full_instances ()) in
  (* A batch with heavy repetition must equal the per-element map. *)
  let batch = instances @ List.rev instances @ instances in
  with_engine Cones.Lazy (fun () ->
      Alcotest.(check (list bool)) "batched = mapped"
        (List.map (Cones.valid_shannon ~n:4) batch)
        (Cones.valid_shannon_many ~n:4 batch))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_subset_enum_complete; prop_truncated_modular_is_polymatroid;
      prop_theorem_3_6; prop_counterexample_sound; prop_cone_chain;
      prop_normalize_lemma_3_7; prop_modularize_lemma_3_7 ]

let suite =
  [ ("varset basic", `Quick, test_varset_basic);
    ("varset subsets", `Quick, test_varset_subsets);
    ("linexpr algebra", `Quick, test_linexpr_algebra);
    ("linexpr eval/rename (Ex 4.1)", `Quick, test_linexpr_eval_rename);
    ("cexpr", `Quick, test_cexpr);
    ("step function", `Quick, test_step_function);
    ("parity (Ex B.4)", `Quick, test_parity_example_b4);
    ("modular", `Quick, test_modular);
    ("mobius roundtrip", `Quick, test_mobius_roundtrip);
    ("normal decomposition", `Quick, test_normal_decomposition);
    ("cond/mutual on parity", `Quick, test_cond_mutual);
    ("shannon basic", `Quick, test_shannon_basic);
    ("shannon certificate", `Quick, test_shannon_certificate);
    ("Zhang-Yeung not Shannon", `Quick, test_zhang_yeung_not_shannon);
    ("Ingleton: Unknown path", `Quick, test_ingleton_unknown_path);
    ("Example 3.8", `Quick, test_example_3_8);
    ("max needs all sides", `Quick, test_max_needs_all_sides);
    ("Figure 1 (Ex C.4)", `Quick, test_figure_1);
    ("modularize basic", `Quick, test_modularize_basic);
    ("elemental membership", `Quick, test_is_elemental_membership);
    ("symmetry canonicalization", `Quick, test_symmetry_canonicalization);
    ("lazy engine agrees with full", `Quick, test_lazy_engine_agrees_with_full);
    ("lazy certificates check", `Quick, test_lazy_certificates_check);
    ("valid_shannon_many dedup", `Quick, test_valid_shannon_many_dedup) ]
  @ qtests
