(* Unit and property tests for the exact-arithmetic substrate:
   Bigint, Rat, Logint. *)

open Bagcqc_num

let bi = Bigint.of_int
let bi_s = Bigint.of_string

let check_bi msg expected actual =
  Alcotest.(check string) msg expected (Bigint.to_string actual)

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_bigint_basic () =
  check_bi "zero" "0" Bigint.zero;
  check_bi "of_int" "42" (bi 42);
  check_bi "neg" "-42" (bi (-42));
  check_bi "add" "100" (Bigint.add (bi 58) (bi 42));
  check_bi "add neg" "-16" (Bigint.add (bi (-58)) (bi 42));
  check_bi "sub" "16" (Bigint.sub (bi 58) (bi 42));
  check_bi "mul" "2436" (Bigint.mul (bi 58) (bi 42));
  check_bi "mul sign" "-2436" (Bigint.mul (bi (-58)) (bi 42));
  Alcotest.(check int) "sign pos" 1 (Bigint.sign (bi 5));
  Alcotest.(check int) "sign neg" (-1) (Bigint.sign (bi (-5)));
  Alcotest.(check int) "sign zero" 0 (Bigint.sign Bigint.zero)

let test_bigint_large () =
  let a = bi_s "123456789012345678901234567890" in
  let b = bi_s "987654321098765432109876543210" in
  check_bi "large add" "1111111110111111111011111111100" (Bigint.add a b);
  check_bi "large mul"
    "121932631137021795226185032733622923332237463801111263526900"
    (Bigint.mul a b);
  check_bi "large sub" "864197532086419753208641975320" (Bigint.sub b a);
  let q, r = Bigint.divmod b a in
  check_bi "large div" "8" q;
  check_bi "large rem" "9000000000900000000090" r;
  (* a = q*b + r reconstruction *)
  check_bi "reconstruct" (Bigint.to_string b) (Bigint.add (Bigint.mul q a) r)

let test_bigint_divmod_signs () =
  (* Truncation toward zero; remainder has the sign of the dividend. *)
  let dm a b =
    let q, r = Bigint.divmod (bi a) (bi b) in
    (Bigint.to_string q, Bigint.to_string r)
  in
  Alcotest.(check (pair string string)) "7/2" ("3", "1") (dm 7 2);
  Alcotest.(check (pair string string)) "-7/2" ("-3", "-1") (dm (-7) 2);
  Alcotest.(check (pair string string)) "7/-2" ("-3", "1") (dm 7 (-2));
  Alcotest.(check (pair string string)) "-7/-2" ("3", "-1") (dm (-7) (-2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod (bi 1) Bigint.zero))

let test_bigint_pow_gcd () =
  check_bi "2^100" "1267650600228229401496703205376" (Bigint.pow (bi 2) 100);
  check_bi "pow 0" "1" (Bigint.pow (bi 7) 0);
  check_bi "gcd" "6" (Bigint.gcd (bi 54) (bi 24));
  check_bi "gcd neg" "6" (Bigint.gcd (bi (-54)) (bi 24));
  check_bi "gcd zero" "24" (Bigint.gcd Bigint.zero (bi 24));
  check_bi "gcd big"
    "6"
    (Bigint.gcd (bi_s "123456789123456789123456786") (bi_s "18"));
  Alcotest.check_raises "pow neg" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (Bigint.pow (bi 2) (-1)))

let test_bigint_string_roundtrip () =
  let cases = ["0"; "1"; "-1"; "1073741824"; "-1073741823";
               "999999999999999999999999999999999999"; "-123456789012345678901234567890"] in
  List.iter (fun s -> check_bi s s (bi_s s)) cases;
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (bi_s ""))

let test_bigint_to_int () =
  Alcotest.(check (option int)) "small" (Some 42) (Bigint.to_int_opt (bi 42));
  Alcotest.(check (option int)) "neg" (Some (-42)) (Bigint.to_int_opt (bi (-42)));
  Alcotest.(check (option int)) "big" None
    (Bigint.to_int_opt (bi_s "99999999999999999999999"));
  Alcotest.(check (option int)) "max_int" (Some max_int)
    (Bigint.to_int_opt (bi max_int))

let test_bigint_bits () =
  Alcotest.(check int) "bits 0" 0 (Bigint.num_bits Bigint.zero);
  Alcotest.(check int) "bits 1" 1 (Bigint.num_bits Bigint.one);
  Alcotest.(check int) "bits 255" 8 (Bigint.num_bits (bi 255));
  Alcotest.(check int) "bits 256" 9 (Bigint.num_bits (bi 256));
  Alcotest.(check int) "bits 2^100" 101 (Bigint.num_bits (Bigint.pow (bi 2) 100));
  check_bi "shift" "1024" (Bigint.shift_left Bigint.one 10)

(* ------------------------------------------------------------------ *)
(* Bigint properties                                                   *)
(* ------------------------------------------------------------------ *)

let arb_bigint =
  (* Random bigints built from several machine-int factors, so they span
     many limb counts. *)
  let gen =
    QCheck.Gen.(
      let* parts = list_size (int_range 1 4) (int_range (-1_000_000_000) 1_000_000_000) in
      return (List.fold_left (fun acc p -> Bigint.add (Bigint.mul acc (Bigint.of_int 1_000_003)) (Bigint.of_int p)) Bigint.one parts))
  in
  QCheck.make ~print:Bigint.to_string gen

let prop_add_commutes =
  QCheck.Test.make ~name:"bigint add commutes" ~count:500
    (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) -> Bigint.equal (Bigint.add a b) (Bigint.add b a))

let prop_mul_distributes =
  QCheck.Test.make ~name:"bigint mul distributes over add" ~count:300
    (QCheck.triple arb_bigint arb_bigint arb_bigint)
    (fun (a, b, c) ->
      Bigint.equal
        (Bigint.mul a (Bigint.add b c))
        (Bigint.add (Bigint.mul a b) (Bigint.mul a c)))

let prop_divmod_roundtrip =
  QCheck.Test.make ~name:"bigint divmod: a = q*b + r, |r|<|b|" ~count:500
    (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) ->
      QCheck.assume (not (Bigint.is_zero b));
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a))

let prop_small_agree =
  QCheck.Test.make ~name:"bigint agrees with int on small values" ~count:1000
    (QCheck.pair (QCheck.int_range (-10000) 10000) (QCheck.int_range (-10000) 10000))
    (fun (a, b) ->
      let ba = bi a and bb = bi b in
      Bigint.to_int_opt (Bigint.add ba bb) = Some (a + b)
      && Bigint.to_int_opt (Bigint.mul ba bb) = Some (a * b)
      && Bigint.to_int_opt (Bigint.sub ba bb) = Some (a - b)
      && Bigint.compare ba bb = compare a b)

let prop_gcd_divides =
  QCheck.Test.make ~name:"bigint gcd divides both" ~count:300
    (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) ->
      QCheck.assume (not (Bigint.is_zero a) || not (Bigint.is_zero b));
      let g = Bigint.gcd a b in
      Bigint.is_zero (Bigint.rem a g) && Bigint.is_zero (Bigint.rem b g))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint to_string/of_string roundtrip" ~count:300
    arb_bigint
    (fun a -> Bigint.equal a (Bigint.of_string (Bigint.to_string a)))

(* ------------------------------------------------------------------ *)
(* Rat tests                                                           *)
(* ------------------------------------------------------------------ *)

let rt = Alcotest.testable Rat.pp Rat.equal

let test_rat_basic () =
  Alcotest.check rt "normalization" (Rat.of_ints 1 2) (Rat.of_ints 17 34);
  Alcotest.check rt "neg den" (Rat.of_ints (-1) 2) (Rat.of_ints 3 (-6));
  Alcotest.check rt "add" (Rat.of_ints 5 6) (Rat.add (Rat.of_ints 1 2) (Rat.of_ints 1 3));
  Alcotest.check rt "sub" (Rat.of_ints 1 6) (Rat.sub (Rat.of_ints 1 2) (Rat.of_ints 1 3));
  Alcotest.check rt "mul" (Rat.of_ints 1 6) (Rat.mul (Rat.of_ints 1 2) (Rat.of_ints 1 3));
  Alcotest.check rt "div" (Rat.of_ints 3 2) (Rat.div (Rat.of_ints 1 2) (Rat.of_ints 1 3));
  Alcotest.check rt "inv" (Rat.of_ints (-3) 2) (Rat.inv (Rat.of_ints (-2) 3));
  Alcotest.(check int) "compare" (-1) (Rat.compare (Rat.of_ints 1 3) (Rat.of_ints 1 2));
  Alcotest.(check bool) "is_integer" true (Rat.is_integer (Rat.of_ints 4 2));
  Alcotest.check_raises "zero den" Division_by_zero (fun () ->
      ignore (Rat.make Bigint.one Bigint.zero))

let test_rat_floor_ceil () =
  let check_fc name x f c =
    check_bi (name ^ " floor") f (Rat.floor x);
    check_bi (name ^ " ceil") c (Rat.ceil x)
  in
  check_fc "7/2" (Rat.of_ints 7 2) "3" "4";
  check_fc "-7/2" (Rat.of_ints (-7) 2) "-4" "-3";
  check_fc "4" (Rat.of_int 4) "4" "4"

let test_rat_of_string () =
  Alcotest.check rt "frac" (Rat.of_ints 3 4) (Rat.of_string "3/4");
  Alcotest.check rt "int" (Rat.of_int (-5)) (Rat.of_string "-5");
  Alcotest.check rt "decimal" (Rat.of_ints 5 4) (Rat.of_string "1.25");
  Alcotest.check rt "neg decimal" (Rat.of_ints (-5) 4) (Rat.of_string "-1.25")

let arb_rat =
  let gen =
    QCheck.Gen.(
      let* n = int_range (-100000) 100000 in
      let* d = int_range 1 100000 in
      return (Rat.of_ints n d))
  in
  QCheck.make ~print:Rat.to_string gen

let prop_rat_field =
  QCheck.Test.make ~name:"rat field laws" ~count:500
    (QCheck.triple arb_rat arb_rat arb_rat)
    (fun (a, b, c) ->
      Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c)
      && Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c))
      && Rat.equal (Rat.sub (Rat.add a b) b) a
      && (Rat.is_zero b || Rat.equal (Rat.mul (Rat.div a b) b) a))

let prop_rat_compare_antisym =
  QCheck.Test.make ~name:"rat compare antisymmetric, float-consistent" ~count:500
    (QCheck.pair arb_rat arb_rat)
    (fun (a, b) ->
      let c = Rat.compare a b in
      c = -Rat.compare b a
      && (c = 0 || Float.compare (Rat.to_float a) (Rat.to_float b) = c))

(* of_float_dyadic: every finite float is an exact dyadic rational, so
   converting back must round-trip bit-for-bit (to_float's ≤2ulp slack
   never bites on values that are already representable). *)
let arb_finite_float =
  let gen =
    QCheck.Gen.(
      let* m = int_range (-(1 lsl 53)) (1 lsl 53) in
      let* e = int_range (-60) 60 in
      return (Float.ldexp (float_of_int m) e))
  in
  QCheck.make ~print:(Printf.sprintf "%h") gen

let prop_dyadic_roundtrip =
  QCheck.Test.make ~name:"of_float_dyadic/to_float roundtrip" ~count:1000
    arb_finite_float
    (fun f -> Rat.to_float (Rat.of_float_dyadic f) = f)

(* On exact dyadics, Rat.compare must agree with Float.compare — the
   float engine's pricing decisions and the exact repair see the same
   order. *)
let prop_dyadic_ordering =
  QCheck.Test.make ~name:"of_float_dyadic preserves order" ~count:1000
    (QCheck.pair arb_finite_float arb_finite_float)
    (fun (a, b) ->
      Rat.compare (Rat.of_float_dyadic a) (Rat.of_float_dyadic b)
      = Float.compare a b)

let test_of_float_dyadic_edges () =
  Alcotest.check rt "zero" Rat.zero (Rat.of_float_dyadic 0.0);
  Alcotest.check rt "neg zero" Rat.zero (Rat.of_float_dyadic (-0.0));
  Alcotest.check rt "one" Rat.one (Rat.of_float_dyadic 1.0);
  Alcotest.check rt "0.5" (Rat.of_ints 1 2) (Rat.of_float_dyadic 0.5);
  Alcotest.check rt "-0.75" (Rat.of_ints (-3) 4) (Rat.of_float_dyadic (-0.75));
  (* 0.1 is NOT 1/10 in binary: the exact mantissa must surface. *)
  Alcotest.(check bool) "0.1 <> 1/10" false
    (Rat.equal (Rat.of_float_dyadic 0.1) (Rat.of_ints 1 10));
  Alcotest.(check bool) "0.1 round-trips" true
    (Rat.to_float (Rat.of_float_dyadic 0.1) = 0.1);
  List.iter
    (fun f ->
      Alcotest.check_raises (Printf.sprintf "%h rejected" f)
        (Invalid_argument "Rat.of_float_dyadic: not a finite float")
        (fun () -> ignore (Rat.of_float_dyadic f)))
    [ Float.infinity; Float.neg_infinity; Float.nan ]

(* ------------------------------------------------------------------ *)
(* Logint tests                                                        *)
(* ------------------------------------------------------------------ *)

let test_logint_basic () =
  Alcotest.(check int) "log 1 = 0" 0 (Logint.sign (Logint.log Bigint.one));
  Alcotest.(check int) "log 2 > 0" 1 (Logint.sign (Logint.log_int 2));
  Alcotest.(check int) "-log 2 < 0" (-1) (Logint.sign (Logint.neg (Logint.log_int 2)));
  (* log 8 = 3 log 2 *)
  Alcotest.(check bool) "log 8 = 3 log 2" true
    (Logint.equal (Logint.log_int 8) (Logint.scale (Rat.of_int 3) (Logint.log_int 2)));
  (* log 6 = log 2 + log 3 — distinct bases, still equal as reals *)
  Alcotest.(check bool) "log 6 = log 2 + log 3" true
    (Logint.equal (Logint.log_int 6) (Logint.add (Logint.log_int 2) (Logint.log_int 3)));
  (* 2 log 3 > 3 log 2  (9 > 8) *)
  Alcotest.(check int) "2 log 3 vs 3 log 2" 1
    (Logint.compare
       (Logint.scale Rat.two (Logint.log_int 3))
       (Logint.scale (Rat.of_int 3) (Logint.log_int 2)));
  (* (1/2) log 9 = log 3 *)
  Alcotest.(check bool) "half log 9 = log 3" true
    (Logint.equal (Logint.scale Rat.half (Logint.log_int 9)) (Logint.log_int 3));
  Alcotest.check_raises "log 0" (Invalid_argument "Logint.log: non-positive argument")
    (fun () -> ignore (Logint.log Bigint.zero))

let test_logint_sign_large_exponents () =
  (* Coefficients whose cleared-denominator exponents are 33-digit
     integers — far past [Bigint.to_int_opt] range, where the seed
     implementation of [sign] raised [Failure] out of the exponent
     conversion.  Verified three ways: against the float approximation
     where it is decisive, against a [Bigint.pow] oracle on an
     exponent-range instance whose sign is invariant under scaling, and
     on an exact cancellation only the refinement stage can settle. *)
  let huge = Rat.make (Bigint.of_string "123456789012345678901234567890123")
      (Bigint.of_int 7) in
  let t =
    Logint.sub
      (Logint.scale huge (Logint.log_int 2))
      (Logint.scale huge (Logint.log_int 3))
  in
  Alcotest.(check int) "huge*(log 2 - log 3) < 0" (-1) (Logint.sign t);
  Alcotest.(check int) "negated" 1 (Logint.sign (Logint.neg t));
  Alcotest.(check bool) "float approximation agrees" true
    (Logint.to_float t < 0.0);
  (match Logint.sign_float_interval t with
   | Some s -> Alcotest.(check int) "float-interval oracle agrees" (-1) s
   | None -> ());
  (* Exact zero at huge exponents: huge·log 36 − 2·huge·log 6 = 0. *)
  let z =
    Logint.sub
      (Logint.scale huge (Logint.log_int 36))
      (Logint.scale (Rat.mul huge Rat.two) (Logint.log_int 6))
  in
  Alcotest.(check int) "exact zero at huge exponents" 0 (Logint.sign z);
  (* A continued-fraction near-tie: 125743/79335 approximates log₂3 to
     ~7e-11 relative, so the float interval must abstain and the
     directed-rounding big-float stage decides.  Its sign is established
     independently by comparing the full powers 2^125743 vs 3^79335, and
     must survive scaling by 10^30 — exponents the pow oracle could
     never materialize. *)
  let near =
    Logint.sub
      (Logint.scale (Rat.of_int 125743) (Logint.log_int 2))
      (Logint.scale (Rat.of_int 79335) (Logint.log_int 3))
  in
  Alcotest.(check (option int)) "float interval abstains on the near-tie"
    None
    (Logint.sign_float_interval near);
  let c =
    Bigint.compare (Bigint.pow Bigint.two 125743)
      (Bigint.pow (Bigint.of_int 3) 79335)
  in
  let expected = if c > 0 then 1 else -1 in
  Alcotest.(check int) "near-tie matches the Bigint.pow oracle" expected
    (Logint.sign near);
  let m = Rat.of_bigint (Bigint.pow (Bigint.of_int 10) 30) in
  Alcotest.(check int) "near-tie sign survives a 10^30 scale" expected
    (Logint.sign (Logint.scale m near))

let prop_logint_sign_matches_float =
  QCheck.Test.make ~name:"logint sign matches float approximation" ~count:300
    (QCheck.pair
       (QCheck.pair (QCheck.int_range 2 60) (QCheck.int_range (-6) 6))
       (QCheck.pair (QCheck.int_range 2 60) (QCheck.int_range (-6) 6)))
    (fun ((a, ca), (b, cb)) ->
      let t =
        Logint.add
          (Logint.scale (Rat.of_int ca) (Logint.log_int a))
          (Logint.scale (Rat.of_int cb) (Logint.log_int b))
      in
      let f = Logint.to_float t in
      if Float.abs f > 1e-9 then Logint.sign t = Float.compare f 0.0
      else true)

let prop_logint_additive =
  QCheck.Test.make ~name:"logint log(a*b) = log a + log b" ~count:300
    (QCheck.pair (QCheck.int_range 1 10000) (QCheck.int_range 1 10000))
    (fun (a, b) ->
      Logint.equal
        (Logint.log (Bigint.mul (Bigint.of_int a) (Bigint.of_int b)))
        (Logint.add (Logint.log_int a) (Logint.log_int b)))

(* ------------------------------------------------------------------ *)
(* Fast-path vs slow-path cross-checks.  [Bigint.Testing.force_big]     *)
(* re-encodes a [Small] value as a (non-canonical) magnitude array, so   *)
(* the same operands can be pushed through both the native-int fast     *)
(* paths and the limb-array slow paths; results must agree.  Operands   *)
(* cluster around the overflow boundaries where the fast paths bail     *)
(* out: max_int/min_int (62-bit boundary) and the 2^30/2^31 limb edges. *)
(* ------------------------------------------------------------------ *)

let boundary_int =
  let boundaries =
    [ 0; 1; -1; 7; -7; 1000003;
      max_int; max_int - 1; min_int; min_int + 1; max_int / 3;
      1 lsl 30; (1 lsl 30) - 1; -(1 lsl 30);
      1 lsl 31; (1 lsl 31) - 1; -(1 lsl 31);
      1 lsl 60; -(1 lsl 60); 1 lsl 61; -(1 lsl 61) ]
  in
  (* Offsets may wrap around min_int/max_int; any resulting int is a valid
     operand, so that is fine. *)
  QCheck.(
    map ~rev:(fun n -> (n, 0))
      (fun (b, o) -> b + o)
      (pair (oneofl boundaries) (int_range (-3) 3)))

let force = Bigint.Testing.force_big

(* Both results are produced by canonicalizing constructors, so they must
   agree in value (to_string) and representation (is_small) even though
   one computation ran entirely on magnitude arrays. *)
let cross_check f a b =
  let fast = f (bi a) (bi b) in
  let slow = f (force (bi a)) (force (bi b)) in
  let mixed = f (bi a) (force (bi b)) in
  Bigint.to_string fast = Bigint.to_string slow
  && Bigint.to_string fast = Bigint.to_string mixed
  && Bigint.Testing.is_small fast = Bigint.Testing.is_small slow

let prop_fast_slow op_name f =
  QCheck.Test.make
    ~name:("bigint fast vs slow: " ^ op_name)
    ~count:1000
    (QCheck.pair boundary_int boundary_int)
    (fun (a, b) -> cross_check f a b)

let prop_fast_slow_add = prop_fast_slow "add" Bigint.add
let prop_fast_slow_sub = prop_fast_slow "sub" Bigint.sub
let prop_fast_slow_mul = prop_fast_slow "mul" Bigint.mul
let prop_fast_slow_gcd = prop_fast_slow "gcd" Bigint.gcd

let prop_fast_slow_compare =
  QCheck.Test.make ~name:"bigint fast vs slow: compare" ~count:1000
    (QCheck.pair boundary_int boundary_int)
    (fun (a, b) ->
      (* Mixed Small/Big comparisons assume canonical values, so only the
         all-forced form is meaningful here. *)
      let sgn n = Stdlib.compare n 0 in
      sgn (Bigint.compare (bi a) (bi b))
      = sgn (Bigint.compare (force (bi a)) (force (bi b)))
      && sgn (Bigint.compare (bi a) (bi b)) = sgn (Stdlib.compare a b))

let prop_fast_slow_divmod =
  QCheck.Test.make ~name:"bigint fast vs slow: divmod" ~count:1000
    (QCheck.pair boundary_int boundary_int)
    (fun (a, b) ->
      b = 0
      ||
      let qf, rf = Bigint.divmod (bi a) (bi b) in
      let qs, rs = Bigint.divmod (force (bi a)) (force (bi b)) in
      Bigint.to_string qf = Bigint.to_string qs
      && Bigint.to_string rf = Bigint.to_string rs)

let test_small_boundary () =
  (* min_int does not fit the 62-bit Small range; max_int does. *)
  Alcotest.(check bool) "max_int is Small" true
    (Bigint.Testing.is_small (bi max_int));
  Alcotest.(check bool) "min_int is Big" false
    (Bigint.Testing.is_small (bi min_int));
  Alcotest.(check bool) "min_int+1 is Small" true
    (Bigint.Testing.is_small (bi (min_int + 1)));
  check_bi "min_int value" (string_of_int min_int) (bi min_int);
  check_bi "neg min_int" "4611686018427387904" (Bigint.neg (bi min_int));
  (* Crossing the boundary in both directions re-canonicalizes. *)
  Alcotest.(check bool) "max_int+1 is Big" false
    (Bigint.Testing.is_small (Bigint.succ (bi max_int)));
  Alcotest.(check bool) "(max_int+1)-1 is Small" true
    (Bigint.Testing.is_small (Bigint.pred (Bigint.succ (bi max_int))));
  check_bi "max_int+1" "4611686018427387904" (Bigint.succ (bi max_int));
  (* Products that overflow native ints land in Big with exact values. *)
  check_bi "overflowing square"
    "5316911983139663496226914259548766209"
    (Bigint.mul (bi ((1 lsl 61) + 1)) (bi ((1 lsl 61) + 1)))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_commutes; prop_mul_distributes; prop_divmod_roundtrip;
      prop_small_agree; prop_gcd_divides; prop_string_roundtrip;
      prop_fast_slow_add; prop_fast_slow_sub; prop_fast_slow_mul;
      prop_fast_slow_gcd; prop_fast_slow_compare; prop_fast_slow_divmod;
      prop_rat_field; prop_rat_compare_antisym;
      prop_dyadic_roundtrip; prop_dyadic_ordering;
      prop_logint_sign_matches_float; prop_logint_additive ]

let suite =
  [ ("bigint basic", `Quick, test_bigint_basic);
    ("bigint large", `Quick, test_bigint_large);
    ("bigint divmod signs", `Quick, test_bigint_divmod_signs);
    ("bigint pow/gcd", `Quick, test_bigint_pow_gcd);
    ("bigint string roundtrip", `Quick, test_bigint_string_roundtrip);
    ("bigint to_int", `Quick, test_bigint_to_int);
    ("bigint bits/shift", `Quick, test_bigint_bits);
    ("bigint small boundary", `Quick, test_small_boundary);
    ("rat basic", `Quick, test_rat_basic);
    ("rat floor/ceil", `Quick, test_rat_floor_ceil);
    ("rat of_string", `Quick, test_rat_of_string);
    ("rat of_float_dyadic edges", `Quick, test_of_float_dyadic_edges);
    ("logint basic", `Quick, test_logint_basic);
    ("logint sign on large exponents", `Quick,
     test_logint_sign_large_exponents) ]
  @ qtests
