(* Smoke-run of the differential fuzzing suites (lib/check): a few
   hundred seeded iterations per suite as part of the ordinary test run,
   so an oracle disagreement shows up in `dune runtest` long before the
   dedicated CI fuzz job.  The full budget lives in bin/fuzz.exe. *)

open Bagcqc_check

let run_suite s () =
  let r = Runner.run ~iters:300 ~seed:7 s in
  match r.Runner.failure with
  | None -> ()
  | Some f ->
    Alcotest.failf "%s"
      (Format.asprintf "%a" (Runner.pp_failure ~suite:r.Runner.suite) f)

let test_deterministic () =
  (* Same (seed, iteration) must rebuild the same case: the reproducer
     contract the failure reports rely on. *)
  let sample rng =
    List.init 8 (fun _ -> Rng.int rng 1000)
  in
  Alcotest.(check (list int)) "derive is deterministic"
    (sample (Rng.derive 99 5))
    (sample (Rng.derive 99 5));
  Alcotest.(check bool) "iteration streams differ" true
    (sample (Rng.derive 99 5) <> sample (Rng.derive 99 6))

let suite =
  ("rng determinism", `Quick, test_deterministic)
  :: List.map
       (fun s -> ("fuzz smoke: " ^ Runner.name s, `Quick, run_suite s))
       Suites.all
