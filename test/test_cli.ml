(* Integration tests for the bagcqc CLI: run the built executable and
   check its output and exit codes.  The test runner executes in
   _build/default/test, so the binary lives at ../bin/main.exe (declared
   as a dune dependency). *)

let binary = Filename.concat Filename.parent_dir_name "bin/main.exe"

let run args =
  let cmd =
    String.concat " " (binary :: List.map Filename.quote args) ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1 in
  (code, Buffer.contents buf)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_output msg args expected_code expected_substrings =
  let code, out = run args in
  Alcotest.(check int) (msg ^ ": exit code") expected_code code;
  List.iter
    (fun s ->
      if not (contains out s) then
        Alcotest.failf "%s: output %S does not contain %S" msg out s)
    expected_substrings

let test_check_contained () =
  check_output "triangle in vee"
    [ "check"; "R(x,y), R(y,z), R(z,x)"; "R(u,v), R(u,w)" ]
    0 [ "CONTAINED" ]

let test_check_not_contained () =
  check_output "path not in edge"
    [ "check"; "R(x,y), S(y,z)"; "R(x,y)" ]
    0 [ "NOT CONTAINED"; "Fact 3.2" ]

let test_check_heads () =
  check_output "head variables"
    [ "check"; "Q(x) :- R(x,y)"; "Q(x) :- R(x,y), R(x,z)" ]
    0 [ "CONTAINED" ]

let test_classify () =
  check_output "classify acyclic simple"
    [ "classify"; "A(y1,y2), B(y1,y3), C(y4,y2)" ]
    0 [ "acyclic with a simple join tree"; "E_T" ]

let test_iip_valid () =
  check_output "submodularity"
    [ "iip"; "-n"; "2"; "1 h(1) 1 h(2) -1 h(1,2)" ]
    0 [ "VALID" ]

let test_iip_invalid () =
  check_output "false inequality"
    [ "iip"; "-n"; "2"; "1 h(1) -1 h(1,2)" ]
    0 [ "INVALID"; "refuted" ]

let test_iip_unknown () =
  (* Ingleton in raw coefficients: not Shannon, no normal refuter. *)
  check_output "Ingleton"
    [ "iip"; "-n"; "4"; "--";
      "-1 h(1) -1 h(2) 1 h(1,2) 1 h(1,3) 1 h(2,3) -1 h(1,2,3) 1 h(1,4) 1 h(2,4) -1 h(1,2,4) -1 h(3,4)" ]
    2 [ "NOT SHANNON" ]

let test_reduce () =
  check_output "reduce"
    [ "reduce"; "-n"; "1"; "--"; "-1 h(1)" ]
    0 [ "Q1:"; "Q2:"; "Q2 is acyclic: true" ]

let test_homcount () =
  check_output "homcount vee triangle"
    [ "homcount"; "R(y1,y2), R(y1,y3)"; "R(x,y), R(y,z), R(z,x)" ]
    0 [ "3" ]

let test_eq8 () =
  check_output "eq8 vee"
    [ "eq8"; "R(x,y), R(y,z), R(z,x)"; "R(u,v), R(u,w)" ]
    0 [ "h(xyz) <= max("; "valid over" ]

let test_bad_query () =
  let code, _ = run [ "check"; "R(x,"; "R(x,y)" ] in
  Alcotest.(check bool) "syntax error is a CLI error" true (code <> 0)

let test_trace_report () =
  let tmp = Filename.temp_file "bagcqc_cli_trace" ".json" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
  @@ fun () ->
  check_output "traced check"
    [ "check"; "R(x,y), R(y,z), R(z,x)"; "R(u,v), R(u,w)"; "--trace"; tmp ]
    0 [ "CONTAINED" ];
  check_output "report on the trace" [ "report"; tmp ] 0
    [ "cli.check"; "containment.decide"; "simplex.solve"; "span tree";
      "histograms"; "lp.pivots_per_solve" ]

let test_report_bad_file () =
  let code, _ = run [ "report"; "/nonexistent/trace.json" ] in
  Alcotest.(check int) "missing trace file exits 2" 2 code

let suite =
  [ ("check contained", `Quick, test_check_contained);
    ("check not contained", `Quick, test_check_not_contained);
    ("check with heads", `Quick, test_check_heads);
    ("classify", `Quick, test_classify);
    ("iip valid", `Quick, test_iip_valid);
    ("iip invalid", `Quick, test_iip_invalid);
    ("iip unknown (Ingleton)", `Quick, test_iip_unknown);
    ("reduce", `Quick, test_reduce);
    ("homcount", `Quick, test_homcount);
    ("eq8", `Quick, test_eq8);
    ("bad query", `Quick, test_bad_query);
    ("trace + report round trip", `Quick, test_trace_report);
    ("report on a missing file", `Quick, test_report_bad_file) ]
