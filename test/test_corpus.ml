(* The stratified corpus generator behind the sweep harness: quota
   apportionment, byte-level determinism (same seed => identical file),
   the stratification invariants every checked-in corpus relies on
   (declared verdict = oracle verdict, acyclicity/size/arity match the
   stratum), and the JSONL round-trip. *)

open Bagcqc_cq
open Bagcqc_check

(* The oracle consults the ambient engine configuration; pin it so the
   tests mean the same thing under every CI matrix leg. *)
let with_default_engines f =
  let lp = !Bagcqc_lp.Simplex.default_mode
  and cone = !Bagcqc_entropy.Cones.default_engine in
  Bagcqc_lp.Simplex.default_mode := Bagcqc_lp.Simplex.Float_first;
  Bagcqc_entropy.Cones.default_engine := Bagcqc_entropy.Cones.Lazy;
  Fun.protect
    ~finally:(fun () ->
      Bagcqc_lp.Simplex.default_mode := lp;
      Bagcqc_entropy.Cones.default_engine := cone)
    f

let serialize kind ~seed insts =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Corpus.header_line kind ~seed ~count:(List.length insts));
  Buffer.add_char buf '\n';
  List.iter
    (fun i ->
      Buffer.add_string buf (Corpus.instance_line i);
      Buffer.add_char buf '\n')
    insts;
  Buffer.contents buf

let test_quotas () =
  List.iter
    (fun kind ->
      let nstrata = List.length (Corpus.strata kind) in
      List.iter
        (fun total ->
          let qs = Corpus.quotas kind ~total in
          let sum = List.fold_left (fun a (_, q) -> a + q) 0 qs in
          Alcotest.(check int)
            (Printf.sprintf "quotas sum to total=%d" total)
            total sum;
          if total >= nstrata then
            List.iter
              (fun (name, q) ->
                Alcotest.(check bool)
                  (Printf.sprintf "stratum %s non-empty at total=%d" name total)
                  true (q >= 1))
              qs)
        [ 1; nstrata; 37; 100; 1000; 10_000 ])
    [ Corpus.Check; Corpus.Iip ]

let test_determinism () =
  with_default_engines @@ fun () ->
  List.iter
    (fun (kind, total) ->
      let a = Corpus.generate kind ~seed:5 ~total in
      let b = Corpus.generate kind ~seed:5 ~total in
      Alcotest.(check string)
        (Corpus.kind_name kind ^ ": same seed, same bytes")
        (serialize kind ~seed:5 a)
        (serialize kind ~seed:5 b);
      let c = Corpus.generate kind ~seed:6 ~total in
      Alcotest.(check bool)
        (Corpus.kind_name kind ^ ": different seed, different corpus")
        false
        (String.equal (serialize kind ~seed:5 a) (serialize kind ~seed:6 c)))
    [ (Corpus.Check, 40); (Corpus.Iip, 16) ]

let stratum_parts name = String.split_on_char '/' name

let check_instance_invariants inst =
  let parts = stratum_parts inst.Corpus.stratum in
  (match inst.Corpus.payload with
   | Corpus.Check_pair { q1; q2 } ->
     Alcotest.(check int) "n is Q1's variable count" (Query.nvars q1)
       inst.Corpus.n;
     Alcotest.(check bool) "acyclic flag matches Treedec"
       (Treedec.is_acyclic q2) inst.Corpus.acyclic
   | Corpus.Iip_sides { n; _ } ->
     Alcotest.(check int) "n recorded" n inst.Corpus.n);
  List.iter
    (fun part ->
      match part with
      | "contained" | "not_contained" | "valid" | "invalid" ->
        Alcotest.(check string) "verdict matches stratum" part
          inst.Corpus.verdict
      | "acyclic" ->
        Alcotest.(check bool) "acyclic stratum" true inst.Corpus.acyclic
      | "cyclic" ->
        Alcotest.(check bool) "cyclic stratum" false inst.Corpus.acyclic
      | "small" ->
        Alcotest.(check bool) "small: n <= 2" true (inst.Corpus.n <= 2)
      | "large" ->
        Alcotest.(check bool) "large: n >= 3" true (inst.Corpus.n >= 3)
      | "ternary" ->
        Alcotest.(check int) "ternary: arity 3" 3 inst.Corpus.arity
      | part when String.length part = 2 && part.[0] = 'n' ->
        Alcotest.(check int) "IIP n from stratum"
          (Char.code part.[1] - Char.code '0')
          inst.Corpus.n
      | _ -> ())
    parts

let test_stratification () =
  with_default_engines @@ fun () ->
  List.iter
    (fun (kind, total) ->
      let insts = Corpus.generate kind ~seed:11 ~total in
      Alcotest.(check int) "total honoured" total (List.length insts);
      (* ids are positional *)
      List.iteri
        (fun i inst -> Alcotest.(check int) "positional id" i inst.Corpus.id)
        insts;
      (* per-stratum counts equal the quotas *)
      List.iter
        (fun (name, quota) ->
          let got =
            List.length
              (List.filter (fun i -> String.equal i.Corpus.stratum name) insts)
          in
          Alcotest.(check int) ("quota met for " ^ name) quota got)
        (Corpus.quotas kind ~total);
      List.iter check_instance_invariants insts;
      (* the declared verdict is the oracle's verdict (sampled) *)
      List.iteri
        (fun i inst ->
          if i mod 7 = 0 then
            Alcotest.(check string)
              ("oracle agrees on instance " ^ string_of_int i)
              inst.Corpus.verdict
              (Corpus.oracle inst.Corpus.payload))
        insts)
    [ (Corpus.Check, 40); (Corpus.Iip, 16) ]

let with_temp_file f =
  let path = Filename.temp_file "bagcqc_corpus" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_roundtrip () =
  with_default_engines @@ fun () ->
  List.iter
    (fun (kind, total) ->
      let insts = Corpus.generate kind ~seed:3 ~total in
      with_temp_file @@ fun path ->
      let oc = open_out_bin path in
      Corpus.write oc kind ~seed:3 insts;
      close_out oc;
      match Corpus.load path with
      | Error msg -> Alcotest.fail msg
      | Ok (header, loaded) ->
        Alcotest.(check string) "kind survives" (Corpus.kind_name kind)
          (Corpus.kind_name header.Corpus.h_kind);
        Alcotest.(check int) "seed survives" 3 header.Corpus.h_seed;
        Alcotest.(check int) "count survives" total header.Corpus.h_count;
        (* Loaded instances re-serialize to the identical bytes: parse /
           print is the identity on corpus files. *)
        Alcotest.(check string) "byte-stable reload"
          (serialize kind ~seed:3 insts)
          (serialize kind ~seed:3 loaded))
    [ (Corpus.Check, 24); (Corpus.Iip, 16) ]

let test_load_errors () =
  with_temp_file @@ fun path ->
  let write text =
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc
  in
  write "";
  (match Corpus.load path with
   | Error msg ->
     Alcotest.(check bool) "empty file reported" true
       (String.length msg > 0)
   | Ok _ -> Alcotest.fail "empty file must not load");
  write
    (Corpus.header_line Corpus.Check ~seed:1 ~count:1
     ^ "\n{\"id\":0,\"stratum\":\"x\",\"n\":1,\"arity\":2,\"acyclic\":true,"
     ^ "\"verdict\":\"contained\",\"q1\":\"not a query\",\"q2\":\"Q() :- R(x,y)\"}\n");
  (match Corpus.load path with
   | Error msg ->
     Alcotest.(check bool) "line number in the error" true
       (String.length msg > 0
        && String.split_on_char ':' msg |> List.exists (fun s -> s = "2"))
   | Ok _ -> Alcotest.fail "malformed query must not load")

let suite =
  [ Alcotest.test_case "corpus: quotas apportion exactly" `Quick test_quotas;
    Alcotest.test_case "corpus: same seed, byte-identical corpus" `Quick
      test_determinism;
    Alcotest.test_case "corpus: stratification invariants hold" `Quick
      test_stratification;
    Alcotest.test_case "corpus: JSONL round-trip is byte-stable" `Quick
      test_roundtrip;
    Alcotest.test_case "corpus: malformed files produce located errors"
      `Quick test_load_errors ]
