(* Validity tests for tree decompositions (Definition 2.6) on the paper's
   example queries: atom coverage (every atom's variables inside some
   bag), running intersection (the bags holding any one variable form a
   connected subforest), and width.  [Treedec.is_valid_for] implements
   the same definition; here the two halves are re-checked independently
   so a bug in the library predicate can't hide one in the builders. *)

open Bagcqc_entropy
open Bagcqc_cq

let vs = Varset.of_list

let triangle = Parser.parse "R(x,y), R(y,z), R(z,x)"
let vee = Parser.parse "R(y1,y2), R(y1,y3)"
let path4 = Parser.parse "R(x,y), R(y,z), R(z,w)"
let c4 = Parser.parse "R(w,x), S(x,y), T(y,z), U(z,w)"

(* Example 3.5's containing query: acyclic, join tree not simple. *)
let ex35_q2 = Parser.parse "A(y1,y2), B(y1,y3), C(y4,y2)"

(* K4 minus an edge: chordal but its junction tree is not simple. *)
let k4_minus = Parser.parse "R(x,y), R(x,z), R(y,z), R(y,w), R(z,w)"

let atom_varset (a : Query.atom) = vs (Array.to_list a.Query.args)

(* Independent re-implementation of Definition 2.6's two conditions. *)
let covers_atoms q t =
  let bags = Treedec.bags t in
  List.for_all
    (fun a -> Array.exists (fun bag -> Varset.subset (atom_varset a) bag) bags)
    (Query.atoms q)

let running_intersection q t =
  let bags = Treedec.bags t in
  let nnodes = Array.length bags in
  let adj = Array.make nnodes [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    (Treedec.tree_edges t);
  let connected_for v =
    let holders =
      List.filter (fun i -> Varset.mem v bags.(i)) (List.init nnodes Fun.id)
    in
    match holders with
    | [] | [ _ ] -> true
    | start :: _ ->
      let seen = Array.make nnodes false in
      let rec dfs i =
        if not seen.(i) then begin
          seen.(i) <- true;
          List.iter (fun j -> if Varset.mem v bags.(j) then dfs j) adj.(i)
        end
      in
      dfs start;
      List.for_all (fun i -> seen.(i)) holders
  in
  List.for_all connected_for (List.init (Query.nvars q) Fun.id)

let check_decomposition name q t ~max_width =
  Alcotest.(check bool) (name ^ ": library validity") true
    (Treedec.is_valid_for q t);
  Alcotest.(check bool) (name ^ ": every atom covered") true (covers_atoms q t);
  Alcotest.(check bool) (name ^ ": running intersection") true
    (running_intersection q t);
  Alcotest.(check bool)
    (Printf.sprintf "%s: width %d <= %d" name (Treedec.width t) max_width)
    true
    (Treedec.width t <= max_width)

let test_paper_examples () =
  (* Triangle: Gaifman graph is K3, one-bag junction tree of width 2. *)
  check_decomposition "triangle" triangle (Treedec.of_query triangle)
    ~max_width:2;
  (* Vee and the path are acyclic with binary atoms: width 1. *)
  check_decomposition "vee" vee (Treedec.of_query vee) ~max_width:1;
  check_decomposition "path4" path4 (Treedec.of_query path4) ~max_width:1;
  (* C4 is neither acyclic nor chordal; the min-fill triangulation adds
     one chord, so the decomposition has width 2. *)
  check_decomposition "C4" c4 (Treedec.of_query c4) ~max_width:2;
  (* Example 3.5's Q2: acyclic (join tree exists), width 1. *)
  check_decomposition "Example 3.5 Q2" ex35_q2 (Treedec.of_query ex35_q2)
    ~max_width:1;
  (* K4 minus an edge: junction tree over cliques {x,y,z}, {y,z,w}. *)
  check_decomposition "K4 minus edge" k4_minus (Treedec.of_query k4_minus)
    ~max_width:2

let test_acyclicity_and_join_trees () =
  Alcotest.(check bool) "path acyclic" true (Treedec.is_acyclic path4);
  Alcotest.(check bool) "vee acyclic" true (Treedec.is_acyclic vee);
  Alcotest.(check bool) "Ex 3.5 Q2 acyclic" true (Treedec.is_acyclic ex35_q2);
  Alcotest.(check bool) "triangle cyclic" false (Treedec.is_acyclic triangle);
  Alcotest.(check bool) "C4 cyclic" false (Treedec.is_acyclic c4);
  (* A GYO join tree uses only atom variable-sets as bags. *)
  match Treedec.join_tree path4 with
  | None -> Alcotest.fail "path must have a join tree"
  | Some t ->
    let atom_sets = List.map atom_varset (Query.atoms path4) in
    Array.iter
      (fun bag ->
        Alcotest.(check bool) "join-tree bag is an atom varset" true
          (List.exists (Varset.equal bag) atom_sets))
      (Treedec.bags t)

let test_invalid_decompositions () =
  (* Missing coverage: no bag contains {z,x}. *)
  let missing =
    Treedec.make
      ~bags:[| vs [ 0; 1 ]; vs [ 1; 2 ] |]
      ~edges:[ (0, 1) ]
  in
  Alcotest.(check bool) "missing atom coverage rejected" false
    (Treedec.is_valid_for triangle missing);
  Alcotest.(check bool) "still fails the independent coverage check" false
    (covers_atoms triangle missing);
  (* Coverage holds but running intersection fails: x lives in bags 0 and
     2, which are not adjacent. *)
  let disconnected =
    Treedec.make
      ~bags:[| vs [ 0; 1 ]; vs [ 1; 2 ]; vs [ 0; 2 ] |]
      ~edges:[ (0, 1); (1, 2) ]
  in
  Alcotest.(check bool) "coverage holds" true (covers_atoms triangle disconnected);
  Alcotest.(check bool) "running intersection violated" false
    (running_intersection triangle disconnected);
  Alcotest.(check bool) "library agrees" false
    (Treedec.is_valid_for triangle disconnected);
  (* The node graph must be a forest. *)
  Alcotest.check_raises "cyclic node graph rejected"
    (Invalid_argument "Treedec.make: edges contain a cycle")
    (fun () ->
      ignore
        (Treedec.make
           ~bags:[| vs [ 0 ]; vs [ 1 ]; vs [ 2 ] |]
           ~edges:[ (0, 1); (1, 2); (2, 0) ]))

let test_prune_preserves_validity () =
  List.iter
    (fun q ->
      let t = Treedec.of_query q in
      let p = Treedec.prune t in
      Alcotest.(check bool) "pruned still valid" true (Treedec.is_valid_for q p);
      Alcotest.(check bool) "pruned running intersection" true
        (running_intersection q p);
      Alcotest.(check bool) "pruning never widens" true
        (Treedec.width p <= Treedec.width t))
    [ triangle; vee; path4; c4; ex35_q2; k4_minus ]

let suite =
  [ ("paper examples are valid", `Quick, test_paper_examples);
    ("acyclicity and join trees", `Quick, test_acyclicity_and_join_trees);
    ("invalid decompositions rejected", `Quick, test_invalid_decompositions);
    ("prune preserves validity", `Quick, test_prune_preserves_validity) ]
