(* The persistent solver-cache tier: append-only log round-trips, crash
   tolerance (truncated tails), verify-on-load (corrupt and forged
   entries rejected, never served), the optimality policy (entries with
   a real objective need a semantic verifier), and the two-tier wiring
   through Solver — a warm store answers tier-0 misses without touching
   the simplex. *)

open Bagcqc_num
open Bagcqc_lp
open Bagcqc_engine
open Bagcqc_entropy

let q = Rat.of_int

let with_temp_store f =
  let path = Filename.temp_file "bagcqc_store" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* A tiny feasibility problem with a unique enough solution space; the
   tag carries no registered verifier, so acceptance rides on the
   generic exact point check (complete for empty objectives). *)
let feas_problem () =
  Problem.make ~tag:"test/store" ~num_vars:2
    [ Problem.row [ (0, q 1); (1, q 1) ] Simplex.Ge (q 2);
      Problem.row [ (0, q 1) ] Simplex.Le (q 1) ]

let outcome_testable =
  let pp fmt = function
    | Simplex.Optimal (v, x) ->
      Format.fprintf fmt "Optimal(%a,[%s])" Rat.pp v
        (String.concat ";" (Array.to_list (Array.map Rat.to_string x)))
    | Simplex.Unbounded -> Format.fprintf fmt "Unbounded"
    | Simplex.Infeasible -> Format.fprintf fmt "Infeasible"
  in
  let eq a b =
    match (a, b) with
    | Simplex.Optimal (v, x), Simplex.Optimal (w, y) ->
      Rat.equal v w
      && Array.length x = Array.length y
      && Array.for_all2 Rat.equal x y
    | Simplex.Unbounded, Simplex.Unbounded
    | Simplex.Infeasible, Simplex.Infeasible -> true
    | _ -> false
  in
  Alcotest.testable pp eq

let test_roundtrip () =
  with_temp_store @@ fun path ->
  let p = feas_problem () in
  let outcome = Solver.solve p in
  let st = Store.open_ path in
  Store.record st p outcome;
  Alcotest.(check int) "indexed after record" 1 (Store.size st);
  Store.close st;
  (* Restart: the entry must re-verify exactly and come back intact. *)
  let st2 = Store.open_ path in
  Alcotest.(check int) "loaded on reopen" 1 (Store.loaded st2);
  Alcotest.(check int) "nothing rejected" 0 (Store.rejected st2);
  (match Store.lookup st2 p with
   | Some o -> Alcotest.check outcome_testable "outcome survives" outcome o
   | None -> Alcotest.fail "warm entry missing");
  (* Served outcomes are fresh copies: mutating one cannot poison the
     index. *)
  (match Store.lookup st2 p with
   | Some (Simplex.Optimal (_, x)) -> x.(0) <- q 999
   | _ -> Alcotest.fail "expected Optimal");
  (match Store.lookup st2 p with
   | Some (Simplex.Optimal (_, x)) ->
     Alcotest.(check bool) "copy-on-lookup" false (Rat.equal x.(0) (q 999))
   | _ -> Alcotest.fail "expected Optimal");
  Store.close st2

let test_infeasible_not_persisted () =
  with_temp_store @@ fun path ->
  let p =
    Problem.make ~tag:"test/store_infeas" ~num_vars:1
      [ Problem.row [ (0, q 1) ] Simplex.Le (q (-1)) ]
  in
  let outcome = Solver.solve p in
  Alcotest.check outcome_testable "infeasible" Simplex.Infeasible outcome;
  let st = Store.open_ path in
  Store.record st p outcome;
  Alcotest.(check int) "not indexed" 0 (Store.size st);
  Store.close st;
  let st2 = Store.open_ path in
  Alcotest.(check int) "nothing on disk" 0 (Store.loaded st2);
  Store.close st2

let test_truncated_tail_ignored () =
  with_temp_store @@ fun path ->
  let p = feas_problem () in
  let st = Store.open_ path in
  Store.record st p (Solver.solve p);
  Store.close st;
  (* Simulate a crash mid-append: garbage with no trailing newline. *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc "{\"v\":1,\"problem\":{\"tag\":\"test/st";
  close_out oc;
  let st2 = Store.open_ path in
  Alcotest.(check int) "good prefix loads" 1 (Store.loaded st2);
  Alcotest.(check int) "tail is a crash artifact, not corruption" 0
    (Store.rejected st2);
  Alcotest.(check int) "truncation counted" 1 (Store.truncated st2);
  (* The next append terminates the garbage line first, so the file
     heals: everything (old entry + new entry) loads on the next open. *)
  let p2 =
    Problem.make ~tag:"test/store2" ~num_vars:1
      [ Problem.row [ (0, q 1) ] Simplex.Ge (q 1) ]
  in
  Store.record st2 p2 (Solver.solve p2);
  Store.close st2;
  let st3 = Store.open_ path in
  Alcotest.(check int) "healed file loads both entries" 2 (Store.loaded st3);
  Alcotest.(check int) "garbage line rejected, counted" 1 (Store.rejected st3);
  Store.close st3

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_corrupt_entry_rejected () =
  with_temp_store @@ fun path ->
  let p = feas_problem () in
  let st = Store.open_ path in
  Store.record st p (Solver.solve p);
  Store.close st;
  (* Flip bytes inside the record (a digit in the point), keeping the
     line syntactically plausible: verification must catch it. *)
  let text = read_file path in
  let idx = ref (-1) in
  String.iteri
    (fun i c -> if !idx < 0 && (c = '1' || c = '2') then idx := i)
    text;
  Alcotest.(check bool) "found a digit to corrupt" true (!idx >= 0);
  let corrupted = Bytes.of_string text in
  Bytes.set corrupted !idx '7';
  write_file path (Bytes.to_string corrupted);
  let st2 = Store.open_ path in
  Alcotest.(check int) "corrupt entry rejected" 1 (Store.rejected st2);
  Alcotest.(check int) "nothing served" 0 (Store.loaded st2);
  Alcotest.(check bool) "lookup misses" true (Store.lookup st2 p = None);
  Store.close st2

let test_forged_point_rejected () =
  with_temp_store @@ fun path ->
  (* A syntactically perfect record whose point violates a row: the
     exact re-verification must drop it even though parsing succeeds. *)
  write_file path
    ("{\"v\":1,\"problem\":{\"tag\":\"test/store\",\"vars\":2,\"obj\":[],"
     ^ "\"rows\":[[[[0,\"1\"],[1,\"1\"]],\"ge\",\"2\"],[[[0,\"1\"]],\"le\",\"1\"]]},"
     ^ "\"outcome\":{\"value\":\"0\",\"point\":[\"0\",\"0\"]}}\n");
  let st = Store.open_ path in
  Alcotest.(check int) "forged point rejected" 1 (Store.rejected st);
  Alcotest.(check int) "never indexed" 0 (Store.size st);
  Store.close st

let test_objective_needs_verifier () =
  with_temp_store @@ fun path ->
  (* Feasibility of the point proves nothing about *optimality* when the
     problem has a real objective; with no semantic verifier registered
     for the tag, the entry must be refused on load. *)
  let p =
    Problem.make ~tag:"test/store_obj" ~num_vars:1
      ~objective:[ (0, q 1) ]
      [ Problem.row [ (0, q 1) ] Simplex.Ge (q 1) ]
  in
  let outcome = Solver.solve p in
  (match outcome with
   | Simplex.Optimal (v, _) ->
     Alcotest.(check bool) "solver found the optimum" true
       (Rat.equal v (q 1))
   | _ -> Alcotest.fail "expected Optimal");
  let st = Store.open_ path in
  Store.record st p outcome;
  Store.close st;
  let st2 = Store.open_ path in
  Alcotest.(check int) "unprovable optimality rejected" 1 (Store.rejected st2);
  Alcotest.(check int) "not loaded" 0 (Store.loaded st2);
  Store.close st2

(* ---------------- two-tier wiring through Solver ---------------- *)

let with_attached path f =
  let st = Store.open_ path in
  Store.attach st;
  Fun.protect
    ~finally:(fun () ->
      Store.detach ();
      Store.close st)
    (fun () -> f st)

let test_solver_warm_start () =
  with_temp_store @@ fun path ->
  let p = feas_problem () in
  (* Cold run with the store attached: miss both tiers, solve, append. *)
  Solver.clear ();
  Stats.reset ();
  with_attached path (fun _ ->
      ignore (Solver.solve p);
      let s = Stats.snapshot () in
      Alcotest.(check int) "cold: one real solve" 1 s.Stats.lp_solves;
      Alcotest.(check int) "cold: store consulted, missed" 1
        s.Stats.store_misses;
      Alcotest.(check int) "cold: solve appended" 1 s.Stats.store_appends);
  (* Warm restart: drop tier 0, reopen the store; the solve must be
     served from disk without touching the simplex. *)
  Solver.clear ();
  Stats.reset ();
  with_attached path (fun st ->
      Alcotest.(check int) "warm: entry re-verified on load" 1
        (Store.loaded st);
      let outcome = Solver.solve p in
      (match outcome with
       | Simplex.Optimal _ -> ()
       | _ -> Alcotest.fail "expected Optimal");
      let s = Stats.snapshot () in
      Alcotest.(check int) "warm: zero simplex runs" 0 s.Stats.lp_solves;
      Alcotest.(check int) "warm: one store hit" 1 s.Stats.store_hits;
      (* Tier 0 was populated by the store hit: a second solve is a
         plain memory hit, no second store lookup. *)
      ignore (Solver.solve p);
      let s2 = Stats.snapshot () in
      Alcotest.(check int) "warm: tier-0 hit after install" 1
        s2.Stats.cache_hits;
      Alcotest.(check int) "warm: store not re-consulted" 1
        s2.Stats.store_hits);
  Solver.clear ();
  Stats.reset ()

(* Pin the Γn driver for a test: the two Farkas roundtrip tests below
   exercise the full-family "gamma/farkas" store verifier, which only
   the Full engine emits; the lazy engine gets its own roundtrip test. *)
let with_cone engine f =
  let saved = !Cones.default_engine in
  Cones.default_engine := engine;
  Fun.protect ~finally:(fun () -> Cones.default_engine := saved) f

let test_farkas_certificate_verified_roundtrip () =
  with_cone Cones.Full @@ fun () ->
  with_temp_store @@ fun path ->
  (* End-to-end over the real decision pipeline: a Contained-style
     Farkas solve lands in the store, survives a restart only because
     its reconstructed certificate passes Certificate.check, and then
     answers the warm run with zero LP solves. *)
  let n = 2 in
  let es = [ Linexpr.mutual (Varset.singleton 0) (Varset.singleton 1) Varset.empty ] in
  Solver.clear ();
  Stats.reset ();
  with_attached path (fun _ ->
      match Cones.valid_max_cert Cones.Gamma ~n es with
      | Ok (Some cert) ->
        Alcotest.(check bool) "certificate checks" true (Certificate.check cert)
      | Ok None | Error _ -> Alcotest.fail "I(0;1) >= 0 must be Shannon-valid");
  Solver.clear ();
  Stats.reset ();
  with_attached path (fun st ->
      Alcotest.(check int) "farkas entry re-verified via Certificate.check" 1
        (Store.loaded st);
      Alcotest.(check int) "nothing rejected" 0 (Store.rejected st);
      (match Cones.valid_max_cert Cones.Gamma ~n es with
       | Ok (Some cert) ->
         Alcotest.(check bool) "warm certificate checks" true
           (Certificate.check cert)
       | Ok None | Error _ -> Alcotest.fail "warm verdict flipped");
      let s = Stats.snapshot () in
      Alcotest.(check int) "warm verdict with zero simplex runs" 0
        s.Stats.lp_solves;
      Alcotest.(check bool) "served from the store" true
        (s.Stats.store_hits >= 1));
  Solver.clear ();
  Stats.reset ()

let test_farkas_tampered_entry_dropped () =
  with_cone Cones.Full @@ fun () ->
  with_temp_store @@ fun path ->
  let n = 2 in
  let es = [ Linexpr.mutual (Varset.singleton 0) (Varset.singleton 1) Varset.empty ] in
  Solver.clear ();
  Stats.reset ();
  with_attached path (fun _ ->
      ignore (Cones.valid_max_cert Cones.Gamma ~n es));
  (* Tamper with the recorded Farkas point (first rational in the point
     array): the entry must be dropped on load and the warm run must
     fall back to a real solve with the correct verdict. *)
  let text = read_file path in
  let marker = "\"point\":[\"" in
  let at =
    let rec find i =
      if i + String.length marker > String.length text then -1
      else if String.sub text i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "found the point" true (at >= 0);
  let b = Bytes.of_string text in
  Bytes.set b at (if Bytes.get b at = '9' then '8' else '9');
  write_file path (Bytes.to_string b);
  Solver.clear ();
  Stats.reset ();
  with_attached path (fun st ->
      Alcotest.(check int) "tampered entry rejected" 1 (Store.rejected st);
      Alcotest.(check int) "nothing loaded" 0 (Store.loaded st);
      (match Cones.valid_max_cert Cones.Gamma ~n es with
       | Ok (Some cert) ->
         Alcotest.(check bool) "verdict re-derived correctly" true
           (Certificate.check cert)
       | Ok None | Error _ -> Alcotest.fail "verdict flipped after tampering");
      let s = Stats.snapshot () in
      Alcotest.(check bool) "re-solved for real" true (s.Stats.lp_solves >= 1));
  Solver.clear ();
  Stats.reset ()

let test_lazy_store_roundtrip () =
  with_cone Cones.Lazy @@ fun () ->
  with_temp_store @@ fun path ->
  (* The lazy driver persists its Optimal per-round solves (the final
     restricted Farkas, any feasible refutation rounds) under its own
     pure-feasibility tags; a warm restart must re-verify them, serve
     the Farkas from disk, and reach the same certified verdict.  The
     valid side's terminal refutation LP is Infeasible, which the store
     never persists (no proof object), so the warm run still pays that
     one small re-solve — but not the Farkas. *)
  let n = 3 in
  let es =
    [ Linexpr.mutual (Varset.singleton 0) (Varset.singleton 1)
        (Varset.singleton 2) ]
  in
  Solver.clear ();
  Stats.reset ();
  let cold_solves =
    with_attached path (fun _ ->
        (match Cones.valid_max_cert Cones.Gamma ~n es with
         | Ok (Some cert) ->
           Alcotest.(check bool) "certificate checks" true
             (Certificate.check cert)
         | Ok None | Error _ -> Alcotest.fail "I(0;1|2) >= 0 must be valid");
        (Stats.snapshot ()).Stats.lp_solves)
  in
  Solver.clear ();
  Stats.reset ();
  with_attached path (fun st ->
      Alcotest.(check int) "lazy entries re-verified on load" 0
        (Store.rejected st);
      Alcotest.(check bool) "something persisted" true (Store.loaded st >= 1);
      (match Cones.valid_max_cert Cones.Gamma ~n es with
       | Ok (Some cert) ->
         Alcotest.(check bool) "warm certificate checks" true
           (Certificate.check cert)
       | Ok None | Error _ -> Alcotest.fail "warm verdict flipped");
      let s = Stats.snapshot () in
      Alcotest.(check bool) "warm run solves less than cold" true
        (s.Stats.lp_solves < cold_solves);
      Alcotest.(check bool) "served from the store" true
        (s.Stats.store_hits >= 1));
  Solver.clear ();
  Stats.reset ()

(* ---------------- compaction ---------------- *)

let test_compact_dedups_and_drops () =
  with_temp_store @@ fun path ->
  let p = feas_problem () in
  let p2 =
    Problem.make ~tag:"test/store2" ~num_vars:1
      [ Problem.row [ (0, q 1) ] Simplex.Ge (q 1) ]
  in
  let st = Store.open_ path in
  Store.record st p (Solver.solve p);
  Store.record st p2 (Solver.solve p2);
  Store.close st;
  (* Cross-process duplication plus on-disk rot: double the log, add an
     unparseable line and a crash-truncated tail. *)
  let text = read_file path in
  write_file path (text ^ text ^ "garbage\n{\"v\":1,\"probl");
  let c = Store.compact path in
  Alcotest.(check int) "kept one entry per key" 2 c.Store.kept;
  Alcotest.(check int) "duplicates counted" 2 c.Store.duplicates;
  Alcotest.(check int) "garbage dropped" 1 c.Store.dropped;
  Alcotest.(check bool) "truncated tail seen" true c.Store.had_truncated_tail;
  (* The compacted file is pristine: everything loads, nothing rejected,
     and lookups still serve. *)
  let st2 = Store.open_ path in
  Alcotest.(check int) "compacted file loads clean" 2 (Store.loaded st2);
  Alcotest.(check int) "nothing rejected after compaction" 0
    (Store.rejected st2);
  Alcotest.(check int) "no tail after compaction" 0 (Store.truncated st2);
  Alcotest.(check bool) "entry still served" true (Store.lookup st2 p <> None);
  Store.close st2

let test_compact_last_wins () =
  with_temp_store @@ fun path ->
  (* Two verified records for the same canonical problem with different
     (equally feasible) points: compaction must keep the later one —
     the same last-wins rule the loader's Table.replace applies. *)
  let entry point =
    "{\"v\":1,\"problem\":{\"tag\":\"test/store\",\"vars\":2,\"obj\":[],"
    ^ "\"rows\":[[[[0,\"1\"],[1,\"1\"]],\"ge\",\"2\"],[[[0,\"1\"]],\"le\",\"1\"]]},"
    ^ "\"outcome\":{\"value\":\"0\",\"point\":[" ^ point ^ "]}}\n"
  in
  write_file path (entry "\"1\",\"1\"" ^ entry "\"0\",\"2\"");
  let c = Store.compact path in
  Alcotest.(check int) "one survivor" 1 c.Store.kept;
  Alcotest.(check int) "one superseded" 1 c.Store.duplicates;
  let st = Store.open_ path in
  (match Store.lookup st (feas_problem ()) with
   | Some (Simplex.Optimal (_, x)) ->
     Alcotest.(check bool) "the later point won" true
       (Rat.equal x.(0) (q 0) && Rat.equal x.(1) (q 2))
   | _ -> Alcotest.fail "expected the compacted entry");
  Store.close st

let test_compact_idempotent_and_missing () =
  with_temp_store @@ fun path ->
  Sys.remove path;
  (* Compacting a missing store creates an empty, valid one. *)
  let c0 = Store.compact path in
  Alcotest.(check int) "nothing kept from nothing" 0 c0.Store.kept;
  Alcotest.(check bool) "file exists afterwards" true (Sys.file_exists path);
  let st = Store.open_ path in
  Store.record st (feas_problem ()) (Solver.solve (feas_problem ()));
  Store.close st;
  let c1 = Store.compact path in
  let once = read_file path in
  let c2 = Store.compact path in
  Alcotest.(check int) "stable entry count" c1.Store.kept c2.Store.kept;
  Alcotest.(check int) "second pass finds no duplicates" 0 c2.Store.duplicates;
  Alcotest.(check int) "second pass drops nothing" 0 c2.Store.dropped;
  Alcotest.(check string) "compaction is idempotent byte-for-byte" once
    (read_file path)

let suite =
  [ Alcotest.test_case "store: record/reopen round-trip" `Quick test_roundtrip;
    Alcotest.test_case "store: infeasible outcomes stay tier-0 only" `Quick
      test_infeasible_not_persisted;
    Alcotest.test_case "store: truncated tail ignored and healed" `Quick
      test_truncated_tail_ignored;
    Alcotest.test_case "store: corrupted entry rejected" `Quick
      test_corrupt_entry_rejected;
    Alcotest.test_case "store: forged point rejected" `Quick
      test_forged_point_rejected;
    Alcotest.test_case "store: real objective needs a verifier" `Quick
      test_objective_needs_verifier;
    Alcotest.test_case "solver: cold run appends, warm run skips simplex"
      `Quick test_solver_warm_start;
    Alcotest.test_case "farkas: store entry verified via Certificate.check"
      `Quick test_farkas_certificate_verified_roundtrip;
    Alcotest.test_case "farkas: tampered store entry dropped, verdict intact"
      `Quick test_farkas_tampered_entry_dropped;
    Alcotest.test_case "lazy: per-round entries persist and re-verify"
      `Quick test_lazy_store_roundtrip;
    Alcotest.test_case "compact: dedups, drops rot, survives reopen" `Quick
      test_compact_dedups_and_drops;
    Alcotest.test_case "compact: last verified entry per key wins" `Quick
      test_compact_last_wins;
    Alcotest.test_case "compact: idempotent; missing file becomes empty store"
      `Quick test_compact_idempotent_and_missing ]
