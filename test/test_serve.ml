(* The serve daemon: wire-protocol codec and an end-to-end scripted
   session against an in-process server. *)

open Bagcqc_serve
module Json = Bagcqc_obs.Json

let kind_t =
  Alcotest.testable
    (fun fmt k -> Format.pp_print_string fmt (Protocol.kind_name k))
    ( = )

(* ---------------- request parsing ---------------- *)

let test_parse_check () =
  match
    Protocol.parse_line
      {|{"id":1,"op":"check","q1":"R(x,y), R(y,z)","q2":"R(x,y)"}|}
  with
  | Error e -> Alcotest.failf "parse failed: %s" e.Protocol.message
  | Ok env ->
    (match env.Protocol.id with
     | Json.Num 1.0 -> ()
     | j -> Alcotest.failf "id not echoed: %s" (Json.to_string j));
    Alcotest.(check (option (float 0.0))) "no deadline" None env.Protocol.deadline_ms;
    (match env.Protocol.request with
     | Protocol.Check { max_factors; want_certificate; _ } ->
       Alcotest.(check int) "default max_factors" 14 max_factors;
       Alcotest.(check bool) "default certificate" false want_certificate
     | _ -> Alcotest.fail "not parsed as check")

let test_parse_options () =
  match
    Protocol.parse_line
      {|{"id":"a","op":"check","q1":"R(x,y)","q2":"R(x,y)","max_factors":5,"certificate":true,"deadline_ms":250}|}
  with
  | Error e -> Alcotest.failf "parse failed: %s" e.Protocol.message
  | Ok env ->
    Alcotest.(check (option (float 0.0))) "deadline" (Some 250.0)
      env.Protocol.deadline_ms;
    (match env.Protocol.request with
     | Protocol.Check { max_factors; want_certificate; _ } ->
       Alcotest.(check int) "max_factors" 5 max_factors;
       Alcotest.(check bool) "certificate" true want_certificate
     | _ -> Alcotest.fail "not parsed as check")

let expect_kind msg kind line =
  match Protocol.parse_line line with
  | Ok _ -> Alcotest.failf "%s: unexpectedly parsed" msg
  | Error e -> Alcotest.check kind_t msg kind e.Protocol.kind

let test_parse_errors () =
  expect_kind "not JSON" Protocol.Parse "this is not JSON";
  expect_kind "not an object" Protocol.Parse "[1,2,3]";
  expect_kind "missing op" Protocol.Bad_request {|{"id":1}|};
  expect_kind "unknown op" Protocol.Bad_request {|{"id":1,"op":"frobnicate"}|};
  expect_kind "composite id" Protocol.Bad_request {|{"id":[1],"op":"ping"}|};
  expect_kind "missing q2" Protocol.Bad_request {|{"op":"check","q1":"R(x,y)"}|};
  expect_kind "query syntax" Protocol.Bad_request
    {|{"op":"check","q1":"R(x,","q2":"R(x,y)"}|};
  expect_kind "max_factors zero" Protocol.Bad_request
    {|{"op":"check","q1":"R(x,y)","q2":"R(x,y)","max_factors":0}|};
  expect_kind "max_factors fractional" Protocol.Bad_request
    {|{"op":"check","q1":"R(x,y)","q2":"R(x,y)","max_factors":3.5}|};
  expect_kind "negative deadline" Protocol.Bad_request
    {|{"op":"ping","deadline_ms":-5}|};
  (* The id must still be echoed on a bad request when extractable. *)
  (match Protocol.parse_line {|{"id":"req-7","op":"frobnicate"}|} with
   | Error { Protocol.id = Json.Str "req-7"; _ } -> ()
   | Error e -> Alcotest.failf "id lost: %s" (Json.to_string e.Protocol.id)
   | Ok _ -> Alcotest.fail "unexpectedly parsed")

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      match Protocol.kind_of_name (Protocol.kind_name k) with
      | Some k' -> Alcotest.check kind_t (Protocol.kind_name k) k k'
      | None -> Alcotest.failf "%s does not round-trip" (Protocol.kind_name k))
    [ Protocol.Parse; Protocol.Bad_request; Protocol.Deadline_exceeded;
      Protocol.Overloaded; Protocol.Shutting_down; Protocol.Internal ]

let test_reply_shapes () =
  let reply =
    Protocol.error_reply
      { Protocol.id = Json.Str "r"; kind = Protocol.Overloaded;
        message = "queue full" }
  in
  (* Replies must round-trip through our own parser: the wire format is
     self-hosting. *)
  let j = Json.parse (Json.to_string reply) in
  (match Json.find_opt "ok" j with
   | Some (Json.Bool false) -> ()
   | _ -> Alcotest.fail "error reply not ok:false");
  (match Json.find_opt "error" j with
   | Some e ->
     (match Json.find_opt "kind" e with
      | Some (Json.Str "overloaded") -> ()
      | _ -> Alcotest.fail "kind not serialized")
   | None -> Alcotest.fail "no error object");
  let ok = Protocol.ok (Json.Num 3.0) [ ("pong", Json.Bool true) ] in
  match Json.find_opt "ok" (Json.parse (Json.to_string ok)) with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "ok reply not ok:true"

(* ---------------- end to end ---------------- *)

let test_selftest () =
  match Selftest.run () with
  | Error msg -> Alcotest.failf "serve selftest: %s" msg
  | Ok steps ->
    Alcotest.(check (list string)) "all steps ran"
      [ "ping"; "check contained"; "cached re-check"; "check not contained";
        "check with heads"; "malformed line"; "bad query"; "unknown op";
        "deadline exceeded"; "extended stats"; "graceful drain" ]
      steps

let suite =
  [ Alcotest.test_case "parse check defaults" `Quick test_parse_check;
    Alcotest.test_case "parse check options" `Quick test_parse_options;
    Alcotest.test_case "parse typed errors" `Quick test_parse_errors;
    Alcotest.test_case "error kind names" `Quick test_kind_names_roundtrip;
    Alcotest.test_case "reply shapes" `Quick test_reply_shapes;
    Alcotest.test_case "end-to-end selftest" `Quick test_selftest ]
