(* End-to-end tests of the core containment procedure: the paper's
   Examples 3.5 and 4.3, class detection, witness machinery, domination,
   and a randomized soundness property. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq
open Bagcqc_core

let triangle = Parser.parse "R(x,y), R(y,z), R(z,x)"
let vee = Parser.parse "R(y1,y2), R(y1,y3)"

(* Every definitive Contained verdict must survive the independent
   certificate verifier — exact arithmetic only, no LP re-solve. *)
let cert_ok cert =
  Alcotest.(check bool) "Farkas certificate re-verifies" true
    (Certificate.check cert)

let test_classify () =
  let check msg q expected =
    Alcotest.(check bool) msg true (Containment.classify q = expected)
  in
  check "vee acyclic simple" vee Containment.Acyclic_simple;
  check "triangle chordal simple" triangle Containment.Chordal_simple;
  check "C4 general" (Parser.parse "R(w,x), S(x,y), T(y,z), U(z,w)")
    Containment.General;
  (* Acyclic but with a 2-variable separator: R(x,y,z), S(y,z,w). *)
  check "acyclic non-simple" (Parser.parse "R(x,y,z), S(y,z,w)") Containment.Acyclic;
  (* Chordal, not acyclic, not simple: K4 minus an edge as binary atoms,
     separator {y,z} has two variables. *)
  check "chordal non-simple"
    (Parser.parse "R(x,y), R(x,z), R(y,z), R(y,w), R(z,w)")
    Containment.Chordal

let test_example_4_3_vee () =
  (* Example 4.3 (Eric Vee): triangle ⊑ vee. *)
  (match Containment.decide triangle vee with
   | Containment.Contained cert -> cert_ok cert
   | _ -> Alcotest.fail "triangle must be contained in vee");
  (* The reverse fails: no homomorphism vee <- ... triangle has no hom into
     vee, so already hom(Q2,Q1) = ∅. *)
  (match Containment.decide vee triangle with
   | Containment.Not_contained w ->
     Alcotest.(check bool) "witness verified" true (w.Containment.hom2 < w.Containment.card_p)
   | _ -> Alcotest.fail "vee must not be contained in triangle")

let ex35_q1 =
  Parser.parse
    "A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')"

let ex35_q2 = Parser.parse "A(y1,y2), B(y1,y3), C(y4,y2)"

let test_example_3_5 () =
  (* Example 3.5: Q1 ⋢ Q2, with a normal witness but no product witness. *)
  (match Containment.decide ex35_q1 ex35_q2 with
   | Containment.Not_contained w ->
     Alcotest.(check bool) "|P| > hom2" true (w.Containment.hom2 < w.Containment.card_p);
     (* The database also carries at least |P| homomorphisms of Q1. *)
     let hom1 = Hom.count ~limit:w.Containment.card_p ex35_q1 w.Containment.db in
     Alcotest.(check bool) "hom1 >= |P|" true (hom1 >= w.Containment.card_p)
   | Containment.Contained _ -> Alcotest.fail "Example 3.5 is a non-containment"
   | Containment.Unknown { reason; _ } -> Alcotest.failf "unexpected Unknown: %s" reason);
  (* The paper's hand witness P = {(u,u,v,v) | u,v ∈ [n]} for n = 3:
     |P| = 9 > n = hom(Q2, Π_Q1(P)). *)
  let p =
    Relation.of_int_rows ~arity:4
      (List.concat_map (fun u -> List.map (fun v -> [ u; u; v; v ]) [ 0; 1; 2 ]) [ 0; 1; 2 ])
  in
  (match Containment.verify_witness ex35_q1 ex35_q2 p with
   | Some (card, hom2) ->
     Alcotest.(check int) "|P| = 9" 9 card;
     Alcotest.(check bool) "hom2 < 9" true (hom2 < 9)
   | None -> Alcotest.fail "paper witness must verify");
  (* No product witness: over the modular cone the inequality is valid
     (Theorem 3.4(i) machinery; Q2's junction tree is simple but not
     totally disconnected). *)
  let ineq = Containment.eq8 ex35_q1 ex35_q2 in
  Alcotest.(check bool) "valid over Mn (no product witness)" true
    (Result.is_ok (Maxii.valid_over Cones.Modular ineq));
  Alcotest.(check bool) "invalid over Nn (normal witness exists)" true
    (Result.is_error (Maxii.valid_over Cones.Normal ineq))

let test_reflexive_and_trivial () =
  (match Containment.decide triangle triangle with
   | Containment.Contained cert -> cert_ok cert
   | _ -> Alcotest.fail "Q ⊑ Q must hold");
  (* Dropping an atom breaks containment in general: R(x,y),S(y,z) vs
     R(x,y): S can multiply counts. *)
  let q1 = Parser.parse "R(x,y), S(y,z)" in
  let q2 = Parser.parse "R(x,y)" in
  (match Containment.decide q1 q2 with
   | Containment.Not_contained w ->
     Alcotest.(check bool) "verified" true (w.Containment.hom2 < w.Containment.card_p)
   | _ -> Alcotest.fail "R,S ⋢ R");
  (* And adding an atom also breaks it (extra atom may be empty). *)
  (match Containment.decide q2 q1 with
   | Containment.Not_contained _ -> ()
   | _ -> Alcotest.fail "R ⋢ R,S")

let test_contained_with_extra_join () =
  (* Q1 = R(x,y) ⊑ Q2 = R(x,y),R(x,z): counts are deg vs Σ deg², and
     pointwise hom(Q1) = Σ_x deg(x) ≤ Σ_x deg(x)² = hom(Q2). *)
  let q1 = Parser.parse "R(x,y)" in
  let q2 = Parser.parse "R(x,y), R(x,z)" in
  (match Containment.decide q1 q2 with
   | Containment.Contained cert -> cert_ok cert
   | _ -> Alcotest.fail "deg ≤ deg² containment must be proved");
  (match Containment.decide q2 q1 with
   | Containment.Not_contained _ -> ()
   | _ -> Alcotest.fail "deg² ⋢ deg")

let test_decide_with_heads () =
  let q1 = Parser.parse "Q(x) :- R(x,y)" in
  let q2 = Parser.parse "Q(x) :- R(x,y), R(x,z)" in
  (match Containment.decide_with_heads q1 q2 with
   | Containment.Contained cert -> cert_ok cert
   | _ -> Alcotest.fail "head version: deg ≤ deg²");
  (match Containment.decide_with_heads q2 q1 with
   | Containment.Not_contained _ -> ()
   | _ -> Alcotest.fail "head version: deg² ⋢ deg");
  Alcotest.check_raises "head mismatch"
    (Invalid_argument "Reductions.booleanize: head arity mismatch") (fun () ->
      ignore
        (Containment.decide_with_heads (Parser.parse "Q(x) :- R(x,y)")
           (Parser.parse "Q() :- R(x,y)")))

let test_eq8_requires_boolean () =
  Alcotest.check_raises "boolean required"
    (Invalid_argument "Containment: queries must be Boolean (use decide_with_heads)")
    (fun () -> ignore (Containment.eq8 (Parser.parse "Q(x) :- R(x,y)") vee))

let test_scale_steps () =
  let vs = Varset.of_list in
  let scaled =
    Containment.scale_steps
      [ (vs [ 0 ], Rat.of_ints 1 2); (vs [ 1 ], Rat.of_ints 2 3); (vs [], Rat.zero) ]
  in
  Alcotest.(check (list (pair int int))) "lcm scaling"
    [ (vs [ 0 ], 3); (vs [ 1 ], 4) ]
    scaled

let test_witness_from_normal_direct () =
  (* Feed the paper's Example 3.5 refuter shape by hand: the normal
     function h = h_W1 + h_W2 with W1 = {x1,x2}, W2 = {x1',x2'}
     (independent pairs, each pair perfectly correlated). *)
  let vs = Varset.of_list in
  let h =
    Polymatroid.normal_of_steps 4 [ (vs [ 0; 1 ], Rat.one); (vs [ 2; 3 ], Rat.one) ]
  in
  (* This h refutes Eq. 8 for Example 3.5 (it is the entropy, in bits, of
     P = {(u,u,v,v)}). *)
  let sides = Maxii.sides (Containment.eq8 ex35_q1 ex35_q2) in
  Alcotest.(check bool) "h refutes all sides" true
    (List.for_all (fun e -> Rat.sign (Polymatroid.eval h e) < 0) sides);
  match Containment.witness_from_normal ex35_q1 ex35_q2 h with
  | Some w ->
    Alcotest.(check bool) "witness verified" true (w.Containment.hom2 < w.Containment.card_p)
  | None -> Alcotest.fail "witness construction must succeed"

let test_witness_theorem_3_4 () =
  (* applicable: which witness class Theorem 3.4 guarantees. *)
  Alcotest.(check bool) "loop atom: product" true
    (Witness.applicable (Parser.parse "R(u,u)") = Some Witness.Product);
  Alcotest.(check bool) "two unary atoms: product" true
    (Witness.applicable (Parser.parse "A(y1), B(y2)") = Some Witness.Product);
  Alcotest.(check bool) "vee: normal" true
    (Witness.applicable vee = Some Witness.Normal);
  Alcotest.(check bool) "Ex 3.5 Q2: normal" true
    (Witness.applicable ex35_q2 = Some Witness.Normal);
  Alcotest.(check bool) "C4: none" true
    (Witness.applicable (Parser.parse "R(w,x), S(x,y), T(y,z), U(z,w)") = None);
  (* R(x,y) ⋢ R(u,u): witnessed by a PRODUCT relation (Thm 3.4(i)). *)
  let q1 = Parser.parse "R(x,y)" and q2 = Parser.parse "R(u,u)" in
  (match Witness.product_witness q1 q2 with
   | Some (p, card, hom2) ->
     Alcotest.(check bool) "product verifies" true (hom2 < card);
     Alcotest.(check bool) "really is a product" true
       (Relation.cardinal p = card)
   | None -> Alcotest.fail "product witness must exist");
  (* Example 3.5 has a normal witness but NO product witness. *)
  Alcotest.(check bool) "Ex 3.5: no product witness" true
    (Witness.product_witness ex35_q1 ex35_q2 = None);
  (match Witness.normal_witness ex35_q1 ex35_q2 with
   | Some w -> Alcotest.(check bool) "normal verifies" true
                 (w.Containment.hom2 < w.Containment.card_p)
   | None -> Alcotest.fail "Ex 3.5 normal witness must exist");
  (* Contained pairs admit no witness of either kind. *)
  Alcotest.(check bool) "no witness when contained" true
    (Witness.normal_witness triangle vee = None
     && Witness.product_witness triangle vee = None)

let test_set_semantics_contrast () =
  (* R(x,y) and R(x,y),R(x,z) are set-equivalent but bag-incomparable one
     way: exactly the Chaudhuri-Vardi phenomenon. *)
  let q1 = Parser.parse "R(x,y)" in
  let q2 = Parser.parse "R(x,y), R(x,z)" in
  Alcotest.(check bool) "set: q1 in q2" true (Containment.contained_set q1 q2);
  Alcotest.(check bool) "set: q2 in q1" true (Containment.contained_set q2 q1);
  (match Containment.decide q2 q1 with
   | Containment.Not_contained _ -> ()
   | _ -> Alcotest.fail "bag: q2 not in q1");
  (* Triangle vs vee: no hom triangle <- vee ... vee -> triangle exists, so
     set-containment triangle in vee holds; and no hom triangle -> vee. *)
  Alcotest.(check bool) "set: triangle in vee" true
    (Containment.contained_set triangle vee);
  Alcotest.(check bool) "set: vee not in triangle" false
    (Containment.contained_set vee triangle);
  (* With heads. *)
  Alcotest.(check bool) "set with heads" true
    (Containment.contained_set
       (Parser.parse "Q(x) :- R(x,y)")
       (Parser.parse "Q(u) :- R(u,v)"))

let test_locality_property () =
  (* Example E.2: the parity relation violates locality for the triangle
     query (Q1 = Q2, phi = identity). *)
  let q = Parser.parse "R(x1,x2), S(x2,x3), T(x3,x1)" in
  let parity =
    Relation.of_int_rows ~arity:3
      [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]
  in
  Alcotest.(check bool) "parity breaks locality (Ex E.2)" false
    (Witness.locality_holds q q parity ~phi:[| 0; 1; 2 |]);
  (* Lemma E.1: normal relations satisfy locality for chordal Q2. *)
  let vsl = Varset.of_list in
  let normal = Relation.of_normal_steps ~n:3 [ (vsl [ 0 ], 1); (vsl [ 1; 2 ], 1) ] in
  Alcotest.(check bool) "normal relation satisfies locality" true
    (Witness.locality_holds q q normal ~phi:[| 0; 1; 2 |]);
  (* Acyclic Q2: locality holds for ANY relation (each bag = one atom) —
     the proof of Theorem 4.4. *)
  let q2 = Parser.parse "R(y1,y2), S(y2,y3)" in
  let q1 = Parser.parse "R(x1,x2), S(x2,x3)" in
  Alcotest.(check bool) "acyclic: locality for parity too" true
    (Witness.locality_holds q1 q2 parity ~phi:[| 0; 1; 2 |])

(* Lemma E.1's locality property as a qcheck property: random normal
   relations vs the chordal triangle query. *)
let prop_locality_normal =
  let gen =
    QCheck.Gen.(list_size (int_range 1 3) (int_range 0 6))
  in
  QCheck.Test.make ~name:"Lemma E.1: normal relations satisfy locality" ~count:60
    (QCheck.make ~print:(fun l -> String.concat "," (List.map string_of_int l)) gen)
    (fun ws ->
      let q = Parser.parse "R(x1,x2), S(x2,x3), T(x3,x1)" in
      let steps = List.sort_uniq compare (List.map (fun w -> (w land 6, 1)) ws) in
      let p = Relation.of_normal_steps ~n:3 steps in
      Witness.locality_holds q q p ~phi:[| 0; 1; 2 |])

let test_domination () =
  (* DOM: triangle ⪯ vee (Example 4.3 again through the DOM lens). *)
  (match Domination.dominates triangle vee with
   | Containment.Contained cert -> cert_ok cert
   | _ -> Alcotest.fail "triangle ⪯ vee");
  (* Exponent domination: hom(vee) ≤ hom(edge)²  (Cauchy–Schwarz-ish). *)
  let edge = Parser.parse "R(x,y)" in
  (match Domination.exponent_dominates ~num:1 ~den:2 vee edge with
   | Containment.Contained cert -> cert_ok cert
   | _ -> Alcotest.fail "hom(vee) ≤ hom(edge)^2");
  (* But hom(edge)² ≤ hom(vee) fails. *)
  (match Domination.exponent_dominates ~num:2 ~den:1 edge vee with
   | Containment.Not_contained _ -> ()
   | _ -> Alcotest.fail "hom(edge)^2 ≰ hom(vee)");
  Alcotest.check_raises "bad exponent" (Invalid_argument "Domination.exponent_dominates")
    (fun () -> ignore (Domination.exponent_dominates ~num:0 ~den:1 edge vee))

(* Randomized soundness: whatever `decide` answers definitively must agree
   with brute-force bag-set evaluation on random small databases /
   explicit witnesses. *)
let arb_pair =
  let gen =
    QCheck.Gen.(
      let* nv = int_range 1 3 in
      let gen_query =
        let* natoms = int_range 1 3 in
        let* atoms =
          list_repeat natoms
            (let* rel = int_range 0 1 in
             let* a = int_range 0 (nv - 1) in
             let* b = int_range 0 (nv - 1) in
             return (Query.atom (if rel = 0 then "R" else "S") [ a; b ]))
        in
        (* Ensure all variables occur. *)
        let chain = List.init nv (fun v -> Query.atom "R" [ v; (v + 1) mod nv ]) in
        return (Query.dedup_atoms (Query.make ~nvars:nv (atoms @ chain)))
      in
      pair gen_query gen_query)
  in
  QCheck.make
    ~print:(fun (a, b) -> Query.to_string a ^ "  vs  " ^ Query.to_string b)
    gen

let random_db seed =
  let st = Random.State.make [| seed |] in
  List.fold_left
    (fun db rel ->
      List.fold_left
        (fun db _ ->
          let a = Random.State.int st 3 and b = Random.State.int st 3 in
          Database.add_row rel [| Value.Int a; Value.Int b |] db)
        db
        (List.init (1 + Random.State.int st 5) Fun.id))
    Database.empty [ "R"; "S" ]

let prop_decide_sound =
  QCheck.Test.make ~name:"decide is sound vs brute-force evaluation" ~count:40
    (QCheck.pair arb_pair QCheck.small_int)
    (fun ((q1, q2), seed) ->
      match Containment.decide ~max_factors:10 q1 q2 with
      | Containment.Contained cert ->
        (* The proof object must re-verify, and the verdict must
           spot-check on several random databases. *)
        Certificate.check cert
        && List.for_all
          (fun i ->
            let db = random_db (seed + i) in
            Hom.count q1 db <= Hom.count q2 db)
          [ 0; 1; 2; 3; 4 ]
      | Containment.Not_contained w ->
        Hom.count ~limit:w.Containment.card_p q2 w.Containment.db
        = w.Containment.hom2
        && w.Containment.hom2 < w.Containment.card_p
        && Hom.count ~limit:w.Containment.card_p q1 w.Containment.db
           >= w.Containment.card_p
      | Containment.Unknown _ -> true)

(* Random acyclic (path-shaped) and chordal (triangle-closed) containing
   queries: every Contained verdict's Farkas certificate must pass the
   independent exact-arithmetic verifier, and must certify exactly the
   Eq. 8 sides it claims to. *)
let arb_acyclic_or_chordal_pair =
  let gen =
    QCheck.Gen.(
      let* nv = int_range 2 3 in
      let* chordal = bool in
      let q2 =
        if chordal then
          (* Triangle on the first three variables (or an edge at nv=2):
             chordal, simple junction tree. *)
          Query.make ~nvars:nv
            (List.init nv (fun v -> Query.atom "R" [ v; (v + 1) mod nv ]))
        else
          (* A path: acyclic with a simple join tree. *)
          Query.make ~nvars:nv
            (List.init (nv - 1) (fun v -> Query.atom "R" [ v; v + 1 ]))
      in
      let* extra = int_range 0 2 in
      let* atoms =
        list_repeat extra
          (let* a = int_range 0 (nv - 1) in
           let* b = int_range 0 (nv - 1) in
           return (Query.atom "R" [ a; b ]))
      in
      let chain = List.init nv (fun v -> Query.atom "R" [ v; (v + 1) mod nv ]) in
      let q1 = Query.dedup_atoms (Query.make ~nvars:nv (atoms @ chain)) in
      return (q1, q2))
  in
  QCheck.make
    ~print:(fun (a, b) -> Query.to_string a ^ "  vs  " ^ Query.to_string b)
    gen

let prop_certificates_verify =
  QCheck.Test.make
    ~name:"Contained certificates re-verify on acyclic/chordal instances"
    ~count:60 arb_acyclic_or_chordal_pair (fun (q1, q2) ->
      match Containment.decide ~max_factors:8 q1 q2 with
      | Containment.Contained cert ->
        Certificate.check cert
        && Certificate.proves cert ~n:(Query.nvars q1)
             (Maxii.sides (Containment.eq8 q1 q2))
      | Containment.Not_contained _ | Containment.Unknown _ -> true)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_decide_sound; prop_locality_normal; prop_certificates_verify ]

let suite =
  [ ("classify", `Quick, test_classify);
    ("Example 4.3 (vee)", `Quick, test_example_4_3_vee);
    ("Example 3.5 (normal witness)", `Quick, test_example_3_5);
    ("reflexive and trivial", `Quick, test_reflexive_and_trivial);
    ("contained with extra join", `Quick, test_contained_with_extra_join);
    ("decide with heads", `Quick, test_decide_with_heads);
    ("eq8 requires boolean", `Quick, test_eq8_requires_boolean);
    ("scale_steps", `Quick, test_scale_steps);
    ("witness from normal (Ex 3.5)", `Quick, test_witness_from_normal_direct);
    ("domination", `Quick, test_domination); ("witness theory (Thm 3.4)", `Quick, test_witness_theorem_3_4); ("set semantics contrast", `Quick, test_set_semantics_contrast); ("locality (Ex E.2, Lemma E.1)", `Quick, test_locality_property) ]
  @ qtests
