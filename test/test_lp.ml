(* Tests for the exact simplex solver. *)

open Bagcqc_num
open Bagcqc_lp

let q = Rat.of_int
let qa l = Array.of_list (List.map q l)
let qf a b = Rat.of_ints a b

let rt = Alcotest.testable Rat.pp Rat.equal

let check_optimal msg expected = function
  | Simplex.Optimal (v, _) -> Alcotest.check rt msg expected v
  | Simplex.Unbounded -> Alcotest.failf "%s: unexpected Unbounded" msg
  | Simplex.Infeasible -> Alcotest.failf "%s: unexpected Infeasible" msg

let test_basic_min () =
  (* min x + y  s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
     Optimum at intersection: x = 8/5, y = 6/5, value = 14/5. *)
  let p =
    Simplex.{
      num_vars = 2;
      objective = qa [1; 1];
      constraints =
        [ constr (qa [1; 2]) Ge (q 4);
          constr (qa [3; 1]) Ge (q 6) ];
    }
  in
  check_optimal "min value" (qf 14 5) (Simplex.solve p);
  (match Simplex.solve p with
   | Simplex.Optimal (_, x) ->
     Alcotest.check rt "x" (qf 8 5) x.(0);
     Alcotest.check rt "y" (qf 6 5) x.(1)
   | _ -> Alcotest.fail "expected optimal")

let test_basic_max () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: classic, opt 36. *)
  let p =
    Simplex.{
      num_vars = 2;
      objective = qa [3; 5];
      constraints =
        [ constr (qa [1; 0]) Le (q 4);
          constr (qa [0; 2]) Le (q 12);
          constr (qa [3; 2]) Le (q 18) ];
    }
  in
  check_optimal "max value" (q 36) (Simplex.maximize p)

let test_infeasible () =
  let p =
    Simplex.{
      num_vars = 1;
      objective = qa [1];
      constraints =
        [ constr (qa [1]) Ge (q 3);
          constr (qa [1]) Le (q 2) ];
    }
  in
  (match Simplex.solve p with
   | Simplex.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  (* min -x s.t. x >= 1: unbounded below. *)
  let p =
    Simplex.{
      num_vars = 1;
      objective = qa [-1];
      constraints = [ constr (qa [1]) Ge (q 1) ];
    }
  in
  (match Simplex.solve p with
   | Simplex.Unbounded -> ()
   | _ -> Alcotest.fail "expected unbounded")

let test_equality () =
  (* min x + 2y s.t. x + y = 10, x - y = 2  =>  x = 6, y = 4, value 14. *)
  let p =
    Simplex.{
      num_vars = 2;
      objective = qa [1; 2];
      constraints =
        [ constr (qa [1; 1]) Eq (q 10);
          constr (qa [1; -1]) Eq (q 2) ];
    }
  in
  (match Simplex.solve p with
   | Simplex.Optimal (v, x) ->
     Alcotest.check rt "value" (q 14) v;
     Alcotest.check rt "x" (q 6) x.(0);
     Alcotest.check rt "y" (q 4) x.(1)
   | _ -> Alcotest.fail "expected optimal")

let test_degenerate_cycling () =
  (* Beale's classic cycling example: Dantzig's rule cycles on it; Bland's
     rule must terminate.  min -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7 s.t. ... *)
  let p =
    Simplex.{
      num_vars = 4;
      objective = [| qf (-3) 4; q 150; qf (-1) 50; q 6 |];
      constraints =
        [ constr [| qf 1 4; q (-60); qf (-1) 25; q 9 |] Le Rat.zero;
          constr [| qf 1 2; q (-90); qf (-1) 50; q 3 |] Le Rat.zero;
          constr [| Rat.zero; Rat.zero; Rat.one; Rat.zero |] Le Rat.one ];
    }
  in
  check_optimal "beale optimum" (qf (-1) 20) (Simplex.solve p)

let test_negative_rhs () =
  (* Constraint given with negative rhs must be normalized correctly:
     -x <= -3  <=>  x >= 3. *)
  let p =
    Simplex.{
      num_vars = 1;
      objective = qa [1];
      constraints = [ constr (qa [-1]) Le (q (-3)) ];
    }
  in
  check_optimal "value" (q 3) (Simplex.solve p)

let test_zero_objective_feasibility () =
  (match Simplex.feasible ~num_vars:2
           [ Simplex.constr (qa [1; 1]) Simplex.Ge (q 2);
             Simplex.constr (qa [1; -1]) Simplex.Eq (q 0) ]
   with
   | Some x ->
     Alcotest.check rt "x = y" x.(0) x.(1);
     Alcotest.(check bool) "x + y >= 2" true
       Rat.(compare (add x.(0) x.(1)) (q 2) >= 0)
   | None -> Alcotest.fail "expected feasible");
  (match Simplex.feasible ~num_vars:1
           [ Simplex.constr (qa [1]) Simplex.Le (q (-1)) ]
   with
   | None -> ()
   | Some _ -> Alcotest.fail "expected infeasible (x >= 0 and x <= -1)")

let test_redundant_equalities () =
  (* Duplicate equality rows leave a zero artificial in the basis; the
     solver must cope. *)
  let p =
    Simplex.{
      num_vars = 2;
      objective = qa [1; 1];
      constraints =
        [ constr (qa [1; 1]) Eq (q 4);
          constr (qa [2; 2]) Eq (q 8);
          constr (qa [1; 0]) Ge (q 1) ];
    }
  in
  check_optimal "value" (q 4) (Simplex.solve p)

let test_dimension_mismatch () =
  let p =
    Simplex.{
      num_vars = 2;
      objective = qa [1];
      constraints = [];
    }
  in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Simplex.solve: objective length mismatch")
    (fun () -> ignore (Simplex.solve p))

(* Property: on random bounded LPs, the reported solution is feasible and
   attains the reported value; and it is no worse than a sample of random
   feasible points obtained by rounding. *)
let prop_solution_feasible =
  let gen =
    QCheck.Gen.(
      let* nv = int_range 1 4 in
      let* nc = int_range 1 5 in
      let* obj = list_repeat nv (int_range 0 9) in
      let* rows = list_repeat nc (list_repeat nv (int_range 0 5)) in
      let* rhss = list_repeat nc (int_range 1 20) in
      return (nv, obj, rows, rhss))
  in
  let print (nv, obj, rows, rhss) =
    Printf.sprintf "nv=%d obj=[%s] rows=%s rhs=[%s]" nv
      (String.concat ";" (List.map string_of_int obj))
      (String.concat "|"
         (List.map (fun r -> String.concat ";" (List.map string_of_int r)) rows))
      (String.concat ";" (List.map string_of_int rhss))
  in
  QCheck.Test.make ~name:"simplex solution is feasible and attains value" ~count:200
    (QCheck.make ~print gen)
    (fun (nv, obj, rows, rhss) ->
      (* min (non-negative objective) s.t. row·x >= rhs: feasible (large x)
         and bounded (objective >= 0 on x >= 0) unless some row is all
         zeros with positive rhs — then infeasible, also fine. *)
      let constraints =
        List.map2
          (fun row rhs -> Simplex.constr (qa row) Simplex.Ge (q rhs))
          rows rhss
      in
      let p = Simplex.{ num_vars = nv; objective = qa obj; constraints } in
      match Simplex.solve p with
      | Simplex.Unbounded -> false
      | Simplex.Infeasible ->
        (* Only possible when some all-zero row has rhs > 0. *)
        List.exists (fun row -> List.for_all (( = ) 0) row) rows
      | Simplex.Optimal (v, x) ->
        let dot r = Array.fold_left Rat.add Rat.zero (Array.mapi (fun i c -> Rat.mul c x.(i)) r) in
        let feas =
          List.for_all2
            (fun row rhs -> Rat.compare (dot (qa row)) (q rhs) >= 0)
            rows rhss
          && Array.for_all (fun xi -> Rat.sign xi >= 0) x
        in
        feas && Rat.equal v (dot (qa obj)))

(* Property: the sparse engine is a drop-in replacement for the dense
   reference implementation — same verdict and same optimal value on random
   LPs mixing Le/Ge/Eq rows with signed coefficients and right-hand sides
   (the mix produces feasible, infeasible, unbounded, and degenerate
   instances; optimal *points* may legitimately differ when the optimum
   face is not a vertex, so only values are compared). *)
let outcomes_agree a b =
  match a, b with
  | Simplex.Optimal (va, _), Simplex.Optimal (vb, _) -> Rat.equal va vb
  | Simplex.Unbounded, Simplex.Unbounded -> true
  | Simplex.Infeasible, Simplex.Infeasible -> true
  | _ -> false

let random_problem st =
  let rand_rat () =
    Rat.of_ints (Random.State.int st 21 - 10) (1 + Random.State.int st 4)
  in
  let nv = 1 + Random.State.int st 4 in
  let nc = 1 + Random.State.int st 6 in
  let constraints =
    List.init nc (fun _ ->
        let row = Array.init nv (fun _ -> rand_rat ()) in
        let op =
          match Random.State.int st 3 with
          | 0 -> Simplex.Le
          | 1 -> Simplex.Ge
          | _ -> Simplex.Eq
        in
        Simplex.constr row op (rand_rat ()))
  in
  Simplex.{ num_vars = nv;
            objective = Array.init nv (fun _ -> rand_rat ());
            constraints }

let prop_engines_agree =
  QCheck.Test.make ~name:"sparse and dense engines agree" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = random_problem (Random.State.make [| seed |]) in
      outcomes_agree
        (Simplex.solve_with Simplex.Dense p)
        (Simplex.solve_with Simplex.Sparse p))

(* Same LP given densely and as reversed (column, coefficient) pairs must
   solve identically under either engine. *)
let prop_sparse_ingestion =
  QCheck.Test.make ~name:"sparse_constr matches constr" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed + 17 |] in
      let rand_rat () =
        Rat.of_ints (Random.State.int st 21 - 10) (1 + Random.State.int st 4)
      in
      let nv = 1 + Random.State.int st 4 in
      let nc = 1 + Random.State.int st 6 in
      let dense_rows, sparse_rows =
        List.split
          (List.init nc (fun _ ->
               let row = Array.init nv (fun _ -> rand_rat ()) in
               let op =
                 match Random.State.int st 3 with
                 | 0 -> Simplex.Le
                 | 1 -> Simplex.Ge
                 | _ -> Simplex.Eq
               in
               let rhs = rand_rat () in
               let pairs =
                 (* Reversed order: ingestion must not care about order. *)
                 List.rev (Array.to_list (Array.mapi (fun i c -> (i, c)) row))
               in
               (Simplex.constr row op rhs, Simplex.sparse_constr pairs op rhs)))
      in
      let objective = Array.init nv (fun _ -> rand_rat ()) in
      let pd = Simplex.{ num_vars = nv; objective; constraints = dense_rows } in
      let ps = Simplex.{ num_vars = nv; objective; constraints = sparse_rows } in
      outcomes_agree (Simplex.solve pd) (Simplex.solve ps)
      && outcomes_agree
           (Simplex.solve_with Simplex.Dense pd)
           (Simplex.solve_with Simplex.Sparse ps))

let test_sparse_constr_validation () =
  Alcotest.check_raises "negative column"
    (Invalid_argument "Simplex.sparse_constr: negative column")
    (fun () -> ignore (Simplex.sparse_constr [ (-1, q 1) ] Simplex.Le (q 0)));
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Simplex.sparse_constr: duplicate column")
    (fun () ->
      ignore (Simplex.sparse_constr [ (0, q 1); (0, q 2) ] Simplex.Le (q 0)))

(* ---------------- hybrid (float-first) engine ---------------- *)

let test_mode_selector () =
  Alcotest.(check string) "exact name" "exact" (Simplex.mode_name Simplex.Exact);
  Alcotest.(check string) "float_first name" "float_first"
    (Simplex.mode_name Simplex.Float_first);
  let parses s expected =
    match Simplex.mode_of_string s, expected with
    | Some Simplex.Exact, `Exact | Some Simplex.Float_first, `Float -> ()
    | None, `None -> ()
    | _ -> Alcotest.failf "mode_of_string %S" s
  in
  parses "exact" `Exact;
  parses "float_first" `Float;
  parses "float-first" `Float;
  parses "fast-but-wrong" `None

(* Float-first and exact modes must return the same verdict and the same
   optimal value on random signed LPs, and any hybrid optimum must be an
   exactly feasible point attaining that value — the repair step is what
   makes this a theorem rather than a hope, so the property doubles as a
   regression net for it. *)
let prop_hybrid_agrees =
  QCheck.Test.make ~name:"float_first and exact modes agree" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed + 211 |] in
      let rand_rat () =
        Rat.of_ints (Random.State.int st 21 - 10) (1 + Random.State.int st 4)
      in
      let nv = 1 + Random.State.int st 4 in
      let nc = 1 + Random.State.int st 6 in
      let rows =
        List.init nc (fun _ ->
            let row = Array.init nv (fun _ -> rand_rat ()) in
            let op =
              match Random.State.int st 3 with
              | 0 -> Simplex.Le
              | 1 -> Simplex.Ge
              | _ -> Simplex.Eq
            in
            (row, op, rand_rat ()))
      in
      let objective = Array.init nv (fun _ -> rand_rat ()) in
      let p =
        Simplex.{ num_vars = nv; objective;
                  constraints =
                    List.map (fun (r, op, b) -> constr r op b) rows }
      in
      let exact = Simplex.solve ~mode:Simplex.Exact p in
      let hybrid = Simplex.solve ~mode:Simplex.Float_first p in
      let dot r x =
        Array.fold_left Rat.add Rat.zero (Array.mapi (fun i c -> Rat.mul c x.(i)) r)
      in
      outcomes_agree exact hybrid
      && (match hybrid with
          | Simplex.Optimal (v, x) ->
            Array.for_all (fun xi -> Rat.sign xi >= 0) x
            && List.for_all
                 (fun (row, op, rhs) ->
                   let lhs = dot row x in
                   match op with
                   | Simplex.Le -> Rat.compare lhs rhs <= 0
                   | Simplex.Ge -> Rat.compare lhs rhs >= 0
                   | Simplex.Eq -> Rat.equal lhs rhs)
                 rows
            && Rat.equal v (dot objective x)
          | Simplex.Unbounded | Simplex.Infeasible -> true))

(* A coefficient of 2^5000 overflows [Rat.to_float] to infinity; the
   float engine must report a typed [Overflow] error from ingestion (not
   propagate inf/NaN into pricing), and the hybrid driver must fall back
   to the exact engine and still return the exact optimum. *)
let huge = Rat.of_bigint (Bigint.shift_left Bigint.one 5000)

let test_float_overflow_is_typed () =
  let p =
    { Lp_layout.num_vars = 1;
      objective = [| Rat.one |];
      constraints = [ Lp_layout.constr [| huge |] Lp_layout.Ge Rat.one ] }
  in
  match Fsimplex.propose p (Lp_layout.layout_of p) with
  | Error { Bagcqc_error.kind = Bagcqc_error.Overflow _; where } ->
    Alcotest.(check string) "where" "Fsimplex.propose" where
  | Error e ->
    Alcotest.failf "expected Overflow, got %s" (Bagcqc_error.to_string e)
  | Ok _ -> Alcotest.fail "expected ingestion overflow, got a proposal"

let test_hybrid_falls_back_on_overflow () =
  let p =
    Simplex.{
      num_vars = 1;
      objective = qa [1];
      constraints = [ constr [| huge |] Ge Rat.one ];
    }
  in
  (* min x s.t. 2^5000 x >= 1: optimum x = 2^-5000, far below float range
     in the constraint and subnormal in the answer — only the exact
     fallback can get this right. *)
  match Simplex.solve ~mode:Simplex.Float_first p with
  | Simplex.Optimal (v, x) ->
    Alcotest.check rt "value" (Rat.inv huge) v;
    Alcotest.check rt "point" (Rat.inv huge) x.(0)
  | _ -> Alcotest.fail "expected optimal via exact fallback"

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_solution_feasible; prop_engines_agree; prop_sparse_ingestion;
      prop_hybrid_agrees ]

let suite =
  [ ("basic min", `Quick, test_basic_min);
    ("basic max", `Quick, test_basic_max);
    ("infeasible", `Quick, test_infeasible);
    ("unbounded", `Quick, test_unbounded);
    ("equality", `Quick, test_equality);
    ("beale cycling", `Quick, test_degenerate_cycling);
    ("negative rhs", `Quick, test_negative_rhs);
    ("feasibility", `Quick, test_zero_objective_feasibility);
    ("redundant equalities", `Quick, test_redundant_equalities);
    ("dimension mismatch", `Quick, test_dimension_mismatch);
    ("sparse_constr validation", `Quick, test_sparse_constr_validation);
    ("mode selector", `Quick, test_mode_selector);
    ("float overflow is typed", `Quick, test_float_overflow_is_typed);
    ("hybrid falls back on overflow", `Quick, test_hybrid_falls_back_on_overflow) ]
  @ qtests
